//===- fuzz/Differential.cpp - Differential CPR oracle --------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Differential.h"

#include "ir/Verifier.h"
#include "pipeline/PipelineRun.h"
#include "support/Error.h"

#include <cstring>

using namespace cpr;

const char *cpr::fuzzOutcomeName(FuzzOutcome O) {
  switch (O) {
  case FuzzOutcome::Pass:
    return "pass";
  case FuzzOutcome::VerifierReject:
    return "verifier-reject";
  case FuzzOutcome::LintReject:
    return "lint-reject";
  case FuzzOutcome::Crash:
    return "crash";
  case FuzzOutcome::Mismatch:
    return "mismatch";
  }
  return "unknown";
}

int cpr::fuzzOutcomeSeverity(FuzzOutcome O) {
  switch (O) {
  case FuzzOutcome::Pass:
    return 0;
  case FuzzOutcome::VerifierReject:
    return 1;
  case FuzzOutcome::LintReject:
    return 2;
  case FuzzOutcome::Crash:
    return 3;
  case FuzzOutcome::Mismatch:
    return 4;
  }
  return 0;
}

std::vector<FuzzVariant> cpr::defaultFuzzVariants() {
  std::vector<FuzzVariant> Vs;
  {
    FuzzVariant V;
    V.Name = "default";
    Vs.push_back(V);
  }
  {
    FuzzVariant V;
    V.Name = "aggressive";
    V.CPR.ExitWeightThreshold = 0.50;
    V.CPR.PredictTakenThreshold = 0.50;
    V.CPR.MinBranchesPerBlock = 1;
    V.CPR.MaxBranchesPerBlock = 32;
    Vs.push_back(V);
  }
  {
    FuzzVariant V;
    V.Name = "no-taken";
    V.CPR.EnableTakenVariation = false;
    Vs.push_back(V);
  }
  {
    FuzzVariant V;
    V.Name = "no-spec";
    V.CPR.EnablePredicateSpeculation = false;
    Vs.push_back(V);
  }
  {
    FuzzVariant V;
    V.Name = "unroll2";
    V.UnrollFactor = 2;
    Vs.push_back(V);
  }
  return Vs;
}

DifferentialRunner::DifferentialRunner(std::vector<FuzzVariant> VariantsIn,
                                       std::vector<MachineDesc> MachinesIn)
    : Variants(std::move(VariantsIn)), Machines(std::move(MachinesIn)) {
  if (Variants.empty())
    Variants = defaultFuzzVariants();
  if (Machines.empty())
    Machines = {MachineDesc::medium(), MachineDesc::wide()};
}

namespace {

/// verifyOrDie's messages start with this prefix, which is how a trapped
/// FatalError is told apart from other fatal stage failures.
bool isVerifierMessage(const std::string &Msg) {
  return Msg.rfind("IR verification failed (", 0) == 0;
}

} // namespace

CellResult DifferentialRunner::runCell(const KernelProgram &P,
                                       size_t VariantIdx,
                                       size_t MachineIdx) const {
  const FuzzVariant &Variant = Variants[VariantIdx];
  const MachineDesc &Machine = Machines[MachineIdx];
  CellResult Res;

  // Private deep copy: sessions mutate their program (unrolling, lazy
  // stage state), and cells of one case may run concurrently.
  KernelProgram Copy;
  Copy.Func = P.Func->clone();
  Copy.InitRegs = P.InitRegs;
  Copy.InitMem = P.InitMem;
  Copy.Description = P.Description;

  PipelineOptions Opts;
  Opts.CPR = Variant.CPR;
  Opts.UnrollFactor = Variant.UnrollFactor;
  Opts.Machines = {Machine};
  Opts.CheckEquivalence = false; // the non-fatal oracle runs below
  // Strict mode, explicitly: fail-safe rollback would *hide* the defects
  // this campaign exists to find. Fatal stage failures surface through
  // the trap below; miscompiles through the oracle.
  Opts.FailSafe = false;

  // Fatal errors (reportFatalError, CPR_UNREACHABLE) on this thread now
  // throw instead of aborting, so one broken cell cannot take down the
  // campaign.
  ScopedFatalErrorTrap Trap;
  try {
    PipelineRun Session(std::move(Copy), Opts);
    const Function &Treated = Session.treated();
    std::vector<std::string> Violations = verifyFunction(Treated);
    if (!Violations.empty()) {
      Res.Outcome = FuzzOutcome::VerifierReject;
      Res.Detail = "treated function fails verification: " + Violations[0];
      return Res;
    }
    const EquivResult &E = Session.checkEquivalenceResult();
    if (!E.Equivalent) {
      Res.Outcome = FuzzOutcome::Mismatch;
      Res.Divergence = E.Kind;
      Res.Detail = "[" + Variant.Name + " x " + Machine.getName() + "] " +
                   E.Detail;
      return Res;
    }
    // Downstream crash coverage: force the treated profile and the
    // machine estimate so scheduler/estimator faults surface here too.
    Session.prepare();
    (void)Session.estimateMachine(Machine);
  } catch (const FatalError &E) {
    Res.Outcome = isVerifierMessage(E.message()) ? FuzzOutcome::VerifierReject
                                                 : FuzzOutcome::Crash;
    Res.Detail = "[" + Variant.Name + " x " + Machine.getName() + "] " +
                 E.message();
  }
  return Res;
}

CaseResult DifferentialRunner::runCase(const KernelProgram &P) const {
  CaseResult Case;
  Case.Cells.reserve(numCells());
  for (size_t V = 0; V < Variants.size(); ++V) {
    for (size_t M = 0; M < Machines.size(); ++M) {
      CellResult Cell = runCell(P, V, M);
      if (fuzzOutcomeSeverity(Cell.Outcome) >
          fuzzOutcomeSeverity(Case.Worst)) {
        Case.Worst = Cell.Outcome;
        Case.WorstVariant = V;
        Case.WorstMachine = M;
      }
      Case.Cells.push_back(std::move(Cell));
    }
  }
  return Case;
}

//===- fuzz/Generator.h - Random program generation and mutation *- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's program source: a seeded, config-driven random IR
/// generator, and IR-level mutations of existing corpus programs.
///
/// The generator generalizes workloads/SyntheticProgram.h from "one
/// SPEC-shaped family" to structured random programs: a recursive region
/// grammar emits straight-line arithmetic, predicated operations,
/// aliased/disambiguated memory traffic, biased side exits with off-trace
/// stubs, and counted nested loops. Every program halts by construction
/// (all loops are counted, every side exit rejoins its region before the
/// loop tail that decrements the trip register), verifies, and
/// interprets in well under a second -- properties the differential
/// oracle (fuzz/Differential.h) relies on.
///
/// Determinism contract: generateProgram(Seed, Cfg) is a pure function
/// of its arguments; ProgramMutator::mutate draws only from the RNG it
/// is handed. No global state, no wall clock.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_GENERATOR_H
#define FUZZ_GENERATOR_H

#include "support/RNG.h"
#include "workloads/Kernels.h"

namespace cpr {

/// Shape knobs of the random program generator. Defaults produce small
/// programs (tens to a few hundred static operations) that stress every
/// phase of the CPR pipeline.
struct GeneratorConfig {
  /// Maximum loop nesting depth (0 = straight-line programs only).
  unsigned MaxLoopDepth = 2;
  /// Maximum region items (op runs / side exits / loops) per region.
  unsigned MaxItemsPerRegion = 5;
  /// Soft cap on total blocks: region expansion stops adding items once
  /// the function reaches it (structures already begun still complete,
  /// so the real count can exceed this slightly). Bounds the superlinear
  /// per-block analysis cost of the CPR phases on worst-case draws.
  unsigned MaxBlocks = 40;
  /// Maximum operations per straight-line run.
  unsigned MaxOpsPerRun = 6;
  /// Probability that a non-branch operation is guarded by a computed
  /// predicate (exercises FRP/speculation on pre-predicated inputs).
  double PredicateDensity = 0.2;
  /// Probability that a memory operation uses alias class 0 (aliases
  /// everything, defeating separability) instead of a distinct class.
  double AliasChaos = 0.3;
  /// Probability that a side exit's taken bias is ~0.5 instead of rare.
  double UnbiasedFrac = 0.2;
  /// Mean fall-through probability of biased side exits.
  double FallThroughBias = 0.9;
  /// Loop trip count range. The generator additionally caps the product
  /// of nested trip counts so runs stay short.
  unsigned MinTrips = 2;
  unsigned MaxTrips = 16;
  /// Cap on the product of trip counts along any loop nest.
  uint64_t MaxIterationProduct = 2048;
  /// Fraction of cases drawn from the SPEC-shaped synthetic-application
  /// family (workloads/SyntheticProgram.h) instead of the region grammar.
  double SyntheticFrac = 0.25;
};

/// Generates one executable fuzz program from \p Seed. Deterministic.
/// The result verifies and halts within ~1e6 interpreter steps.
KernelProgram generateProgram(uint64_t Seed, const GeneratorConfig &Cfg);

/// IR-level mutations of corpus programs. Each mutate() call produces a
/// program that still verifies and halts (candidates are screened with
/// the verifier and a bounded interpretation; after bounded retries the
/// unmutated clone is returned).
class ProgramMutator {
public:
  explicit ProgramMutator(const GeneratorConfig &Cfg) : Cfg(Cfg) {}

  /// Returns a mutated deep copy of \p P, drawing from \p Rng.
  KernelProgram mutate(const KernelProgram &P, RNG &Rng) const;

private:
  GeneratorConfig Cfg;
};

} // namespace cpr

#endif // FUZZ_GENERATOR_H

//===- fuzz/Differential.h - Differential CPR oracle ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fuzzer's oracle: run one PipelineRun session per
/// (program x CPROptions variant x machine) cell, compare baseline and
/// treated code on identical inputs, and classify the outcome:
///
///  - Pass            the treated code is observationally equivalent and
///                    every downstream stage (scheduling estimates)
///                    completed;
///  - Mismatch        the equivalence oracle found a diverging artifact
///                    (a miscompile -- the prize);
///  - VerifierReject  the transform produced structurally invalid IR;
///  - LintReject      the transform produced verifier-clean IR that the
///                    static checks of src/lint/ prove violates a CPR
///                    invariant (the static-oracle campaign's prize --
///                    caught without ever running the interpreter);
///  - Crash           a stage died through reportFatalError /
///                    CPR_UNREACHABLE (contained by the thread-local
///                    ScopedFatalErrorTrap, support/Error.h).
///
/// Cells are independent and runCell is const, so a campaign can fan
/// cells or cases out on the ThreadPool; results are pure functions of
/// (program, variant, machine) and classification is identical at any
/// thread count.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_DIFFERENTIAL_H
#define FUZZ_DIFFERENTIAL_H

#include "interp/Profiler.h"
#include "machine/MachineDesc.h"
#include "pipeline/CompilerPipeline.h"

#include <string>
#include <vector>

namespace cpr {

/// Outcome classification of one differential cell, ordered by rising
/// severity (see fuzzOutcomeSeverity).
enum class FuzzOutcome {
  Pass,
  VerifierReject,
  LintReject,
  Crash,
  Mismatch,
};

/// Name of \p O for reports ("pass", "mismatch", ...).
const char *fuzzOutcomeName(FuzzOutcome O);

/// Severity rank: Pass (0) < VerifierReject < LintReject < Crash <
/// Mismatch (4). A mismatch outranks a crash because silent wrong code is
/// the failure mode this subsystem exists to hunt; a lint reject outranks
/// a verifier reject because it is a proved semantic violation, not just
/// a malformed artifact.
int fuzzOutcomeSeverity(FuzzOutcome O);

/// One transformation configuration under test.
struct FuzzVariant {
  std::string Name;
  CPROptions CPR;
  unsigned UnrollFactor = 1;
};

/// The default variant sweep: paper-default heuristics, an aggressive
/// formation policy, each ablation knob, and an unrolled substrate.
std::vector<FuzzVariant> defaultFuzzVariants();

/// Result of one (program x variant x machine) cell.
struct CellResult {
  FuzzOutcome Outcome = FuzzOutcome::Pass;
  /// For Mismatch: which artifact diverged first.
  EquivResult::Divergence Divergence = EquivResult::Divergence::None;
  /// Human-readable diagnostic (empty for Pass).
  std::string Detail;
};

/// Result of one program across every cell.
struct CaseResult {
  /// Most severe outcome across the cells.
  FuzzOutcome Worst = FuzzOutcome::Pass;
  /// Variant/machine indices of the first (variant-major order) cell
  /// whose outcome equals Worst; 0 when every cell passed.
  size_t WorstVariant = 0;
  size_t WorstMachine = 0;
  /// All cells, variant-major: Cells[V * numMachines + M].
  std::vector<CellResult> Cells;
};

/// Drives differential sessions over a fixed (variants x machines) grid.
class DifferentialRunner {
public:
  /// Empty \p Variants / \p Machines select the defaults
  /// (defaultFuzzVariants(), {medium, wide}).
  explicit DifferentialRunner(std::vector<FuzzVariant> Variants = {},
                              std::vector<MachineDesc> Machines = {});

  const std::vector<FuzzVariant> &variants() const { return Variants; }
  const std::vector<MachineDesc> &machines() const { return Machines; }
  size_t numCells() const { return Variants.size() * Machines.size(); }

  /// Runs one cell on a private deep copy of \p P. Thread-safe.
  CellResult runCell(const KernelProgram &P, size_t VariantIdx,
                     size_t MachineIdx) const;

  /// Runs every cell of the grid (serially) and aggregates.
  CaseResult runCase(const KernelProgram &P) const;

private:
  std::vector<FuzzVariant> Variants;
  std::vector<MachineDesc> Machines;
};

} // namespace cpr

#endif // FUZZ_DIFFERENTIAL_H

//===- fuzz/Fuzzer.h - Differential fuzzing campaigns -----------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The campaign layer tying the subsystem together: draw cases (fresh
/// generations and corpus mutations), fan them out on the ThreadPool
/// through the differential oracle, then serially reduce each failure
/// and write a minimal `.ir` reproducer.
///
/// Determinism contract: each case's program is a pure function of
/// (campaign seed, case index), results land in preallocated per-case
/// slots, and reduction runs serially in case order -- so the outcome
/// classification, failure list, reproducers, and stats counters are
/// identical at any --threads setting.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_FUZZER_H
#define FUZZ_FUZZER_H

#include "fuzz/Differential.h"
#include "fuzz/Generator.h"
#include "fuzz/Reducer.h"

#include <iosfwd>

namespace cpr {

class StatsRegistry;

struct FuzzCampaignOptions {
  uint64_t Seed = 1;
  unsigned Runs = 100;
  /// Worker threads; 1 = serial, 0 = one per hardware thread.
  unsigned Threads = 1;
  /// With a non-empty corpus: fraction of cases that mutate a corpus
  /// entry instead of generating a fresh program.
  double MutateFrac = 0.5;
  GeneratorConfig Generator;
  /// Variant/machine grid (empty selects the defaults).
  std::vector<FuzzVariant> Variants;
  std::vector<MachineDesc> Machines;
  /// Reduce failures and write reproducers into OutDir.
  bool Reduce = false;
  ReducerOptions Reducer;
  /// Directory of seed `.ir` programs (read-only; may be empty/missing).
  std::string CorpusDir;
  /// Directory reproducers are written to (must exist; empty disables
  /// writing).
  std::string OutDir;
  /// Plant the hidden compensation-skip miscompile (self-test of the
  /// oracle and reducer; see support/TestHooks.h).
  bool InjectDefect = false;
  /// Optional counter sink (campaign tallies, reduction sizes).
  StatsRegistry *Stats = nullptr;
  /// Optional progress stream (one line per failure).
  std::ostream *Log = nullptr;
};

/// One failing case, post-reduction.
struct FuzzFailure {
  size_t CaseIndex = 0;
  uint64_t CaseSeed = 0;
  FuzzOutcome Outcome = FuzzOutcome::Pass;
  EquivResult::Divergence Divergence = EquivResult::Divergence::None;
  /// Grid cell the failure was reduced against.
  std::string VariantName, MachineName;
  std::string Detail;
  /// Serialized reduced reproducer (corpus format).
  std::string ReducedText;
  size_t OriginalOps = 0, ReducedOps = 0;
  /// Path the reproducer was written to ("" when OutDir is empty or
  /// reduction is off).
  std::string ReproducerPath;
};

struct FuzzCampaignResult {
  unsigned Cases = 0;
  unsigned Passes = 0;
  unsigned Mismatches = 0;
  unsigned VerifierRejects = 0;
  unsigned LintRejects = 0;
  unsigned Crashes = 0;
  /// Static-oracle campaigns: cases whose *baseline* already carried a
  /// lint finding, excluded from the differential comparison.
  unsigned LintBaselineDirty = 0;
  /// Cross-validation campaigns: discrepancy tallies by direction (see
  /// runCrossValidationCampaign).
  unsigned CrossConfirmedButPass = 0;
  unsigned CrossMismatchUnproved = 0;
  /// Failures in case order (deterministic).
  std::vector<FuzzFailure> Failures;

  bool clean() const { return Failures.empty(); }
  /// One-line deterministic summary ("cases=... pass=... mismatch=...";
  /// lint-reject and baseline-dirty tallies appear when nonzero).
  std::string summary() const;
};

/// Runs one campaign. Deterministic at any Opts.Threads (see file
/// comment). InjectDefect toggles a process-global hook and must not be
/// used concurrently with other campaigns.
FuzzCampaignResult runFuzzCampaign(const FuzzCampaignOptions &Opts);

/// The static-oracle campaign (docs/LINT.md): same case construction as
/// runFuzzCampaign, but the oracle never executes a program. Each case is
/// given a synthetic heavily-biased profile (every branch reached often
/// and rarely taken, the shape CPR forms blocks for), transformed under a
/// fail-safe CPRContext, and judged *differentially* by the cpr-lint
/// checks: a case whose baseline already carries an error finding is
/// excluded (LintBaselineDirty), and a finding that is new in the treated
/// function is a LintReject failure. Reduction is unsupported here
/// (failures keep their full program text). Deterministic at any
/// Opts.Threads.
FuzzCampaignResult runStaticLintCampaign(const FuzzCampaignOptions &Opts);

/// The cross-validation campaign (docs/FUZZING.md): every case is judged
/// by BOTH oracles over the same treated function -- the differential
/// interpreter comparison, and the witness-producing static checks with
/// each witness replayed through the interpreter -- and the verdicts are
/// required to agree. A disagreement is a *harness* bug, not (only) a
/// compiler bug:
///  - differential pass + an error finding whose witness CONFIRMS on
///    replay: the replay exhibited the proved violation on inputs the
///    single-input equivalence comparison never tried
///    ("confirmed-witness-differential-pass");
///  - differential mismatch + no error finding: a miscompile the static
///    oracle failed to prove -- in this harness the transform is the only
///    miscompile source and its invariant breaks are what the checks
///    prove ("differential-mismatch-no-finding").
/// Discrepancies are classified in Fail.Detail, tallied in
/// CrossConfirmedButPass / CrossMismatchUnproved, and -- with Opts.Reduce
/// -- reduced with the discrepancy itself as the oracle (reduceCaseWith).
/// Deterministic at any Opts.Threads.
FuzzCampaignResult runCrossValidationCampaign(const FuzzCampaignOptions &Opts);

} // namespace cpr

#endif // FUZZ_FUZZER_H

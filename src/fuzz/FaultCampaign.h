//===- fuzz/FaultCampaign.h - Fault-injection campaigns ---------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fail-safe counterpart of the differential fuzzing campaign
/// (docs/ROBUSTNESS.md): instead of hunting for compiler defects, it
/// *plants* them -- arming every registered fault site
/// (support/FaultInjector.h) in turn, at several hit counts, over a
/// deterministic set of generated programs run through a fail-safe
/// pipeline session -- and asserts the recovery contract:
///
///   injected fault  =>  the affected region rolls back (or the session
///   falls back to the baseline), the final output still verifies and is
///   observationally equivalent to the baseline, and the process neither
///   crashes nor miscompiles.
///
/// Campaigns run strictly serially: arming a fault site is process-global
/// state (see FaultInjector.h's thread-safety contract).
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_FAULTCAMPAIGN_H
#define FUZZ_FAULTCAMPAIGN_H

#include "fuzz/Generator.h"

#include <iosfwd>

namespace cpr {

class StatsRegistry;

struct FaultCampaignOptions {
  uint64_t Seed = 1;
  /// Generated programs per fault site.
  unsigned CasesPerSite = 3;
  /// Each site is armed for its 1st..NthHits-th hit on every case (an
  /// arming that never fires -- the program has too few CPR blocks -- is
  /// counted but trivially passes).
  unsigned NthHits = 2;
  /// Sites to inject (empty = every registered site).
  std::vector<std::string> Sites;
  GeneratorConfig Generator;
  /// Interpreter step cap for the session's profiling runs (0 = default).
  uint64_t InterpMaxSteps = 0;
  /// Optional counter sink (injections, fires, rollbacks, failures).
  StatsRegistry *Stats = nullptr;
  /// Optional progress stream (one line per contract violation).
  std::ostream *Log = nullptr;
};

struct FaultCampaignResult {
  unsigned Injections = 0; ///< armed runs performed
  unsigned Fired = 0;      ///< runs whose armed fault actually fired
  unsigned Recovered = 0;  ///< fired runs that rolled/fell back
  unsigned Crashes = 0;    ///< fatal errors that escaped a stage
  unsigned Mismatches = 0; ///< final output diverged from the baseline
  unsigned VerifyFails = 0;///< final output failed verification
  /// One line per contract violation, in deterministic order.
  std::vector<std::string> Failures;

  bool clean() const { return Failures.empty(); }
  /// "injections=N fired=N recovered=N crash=N mismatch=N verify-fail=N".
  std::string summary() const;
};

/// Runs one fault-injection campaign. Deterministic for a fixed
/// Opts.Seed. Arms/disarms the process-global fault registry; must not
/// run concurrently with any other work using it.
FaultCampaignResult runFaultCampaign(const FaultCampaignOptions &Opts);

} // namespace cpr

#endif // FUZZ_FAULTCAMPAIGN_H

//===- fuzz/Generator.cpp - Random program generation and mutation --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Generator.h"

#include "interp/Interpreter.h"
#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "workloads/SyntheticProgram.h"

#include <algorithm>
#include <string>

using namespace cpr;

namespace {

/// Address-space layout of generated programs. The condition-data table
/// is read-only (so its distinct alias class is truthful) and disjoint
/// from the output window.
constexpr int64_t DataBase = 30'000'000;
constexpr int64_t OutBase = 40'000'000;
constexpr int64_t DataMask = 255; ///< table size 256 words
constexpr int64_t OutWindow = 128;
constexpr int64_t CondRange = 1000;
constexpr uint8_t AliasData = 1;
constexpr uint8_t AliasOut = 2;

/// Step budget for screening mutants: generous versus the iteration caps
/// of generated programs, so only genuinely runaway mutants are culled.
constexpr uint64_t ScreenStepBudget = 20'000'000;

/// Generation state threaded through the region grammar.
struct GenState {
  Function &F;
  IRBuilder B;
  RNG &Rng;
  const GeneratorConfig &Cfg;

  Reg Ofs; ///< data-table offset, masked to the table in loop tails
  Reg Out; ///< output-window base (initial-register bound)
  Reg Acc; ///< observable accumulator

  std::vector<Reg> Pool;  ///< GPR values usable as sources
  std::vector<Reg> Preds; ///< predicates usable as guards (current block)

  /// A side-exit stub whose body is emitted at the end, once its rejoin
  /// block exists.
  struct StubReq {
    Block *Stub;
    Block *Rejoin;
    unsigned Flavor;
  };
  std::vector<StubReq> Pending; ///< awaiting a rejoin block
  std::vector<StubReq> Done;    ///< rejoin fixed

  uint64_t IterProduct = 1; ///< product of enclosing trip counts
  size_t ChainLen = 0;      ///< chain blocks so far (layout prefix)
  unsigned NextName = 0;
  unsigned NextStub = 0;

  GenState(Function &F, RNG &Rng, const GeneratorConfig &Cfg)
      : F(F), B(F), Rng(Rng), Cfg(Cfg) {}
};

/// Starts the next fall-through block of the main chain. Chain blocks
/// occupy the layout prefix; stub blocks accumulate behind them, so a
/// new chain block is an *insert*, not an append. Stubs pending since
/// the previous chain block rejoin here (guaranteeing forward progress:
/// every rejoin target is created after the exiting branch).
Block &startChainBlock(GenState &S) {
  Block &Blk = S.F.insertBlock(S.ChainLen++,
                               "B" + std::to_string(S.NextName++));
  for (GenState::StubReq &Req : S.Pending) {
    Req.Rejoin = &Blk;
    S.Done.push_back(Req);
  }
  S.Pending.clear();
  S.B.setInsertBlock(Blk);
  // Predicates are only used as guards within their defining block, so
  // the transform sees block-local predicate lifetimes.
  S.Preds.clear();
  return Blk;
}

Reg pickSrc(GenState &S) {
  return S.Pool[S.Rng.nextBelow(S.Pool.size())];
}

Reg pickGuard(GenState &S) {
  if (!S.Preds.empty() && S.Rng.nextBool(S.Cfg.PredicateDensity))
    return S.Preds[S.Rng.nextBelow(S.Preds.size())];
  return Reg::truePred();
}

/// Emits one random non-branch operation into the current block.
///
/// Value-magnitude discipline (keeps every intermediate far from int64
/// overflow, which matters under UBSan): two-register sources only
/// combine through bitwise/min/max opcodes; Add/Sub always take a small
/// immediate second source, so magnitudes grow at most linearly in the
/// static operation count.
void genOp(GenState &S) {
  unsigned Kind = static_cast<unsigned>(S.Rng.nextBelow(100));
  if (Kind < 45) { // arithmetic
    Reg A = pickSrc(S);
    Reg Dst;
    if (S.Rng.nextBool(0.5)) {
      static const Opcode BitOps[] = {Opcode::And, Opcode::Or, Opcode::Xor,
                                      Opcode::Min, Opcode::Max};
      Dst = S.B.emitArith(BitOps[S.Rng.nextBelow(5)], Operand::reg(A),
                          Operand::reg(pickSrc(S)), pickGuard(S));
    } else {
      Dst = S.B.emitArith(S.Rng.nextBool(0.5) ? Opcode::Add : Opcode::Sub,
                          Operand::reg(A),
                          Operand::imm(S.Rng.nextRange(-1024, 1024)),
                          pickGuard(S));
    }
    S.Pool.push_back(Dst);
    if (S.Pool.size() > 12)
      S.Pool.erase(S.Pool.begin() +
                   static_cast<ptrdiff_t>(S.Rng.nextBelow(S.Pool.size())));
  } else if (Kind < 62) { // load
    bool FromOut = S.Rng.nextBool(0.3);
    int64_t Base = FromOut ? OutBase : DataBase;
    int64_t Off = S.Rng.nextRange(0, FromOut ? OutWindow - 1 : 63);
    Reg T = S.B.emitArith(Opcode::Add, Operand::reg(S.Ofs),
                          Operand::imm(Off));
    Reg A = S.B.emitArith(Opcode::Add, Operand::reg(T), Operand::imm(Base));
    uint8_t AC = S.Rng.nextBool(S.Cfg.AliasChaos)
                     ? uint8_t{0}
                     : (FromOut ? AliasOut : AliasData);
    S.Pool.push_back(S.B.emitLoad(A, AC, pickGuard(S)));
  } else if (Kind < 75) { // store (to the output window only)
    Reg A = S.B.emitArith(Opcode::Add, Operand::reg(S.Out),
                          Operand::imm(S.Rng.nextRange(0, OutWindow - 1)));
    uint8_t AC = S.Rng.nextBool(S.Cfg.AliasChaos) ? uint8_t{0} : AliasOut;
    S.B.emitStore(A, Operand::reg(pickSrc(S)), AC, pickGuard(S));
  } else if (Kind < 87) { // compare-to-predicate over a pool value
    static const CompareCond Conds[] = {CompareCond::LT, CompareCond::LE,
                                        CompareCond::GT, CompareCond::GE,
                                        CompareCond::EQ, CompareCond::NE};
    CompareCond C = Conds[S.Rng.nextBelow(6)];
    Operand Rhs = S.Rng.nextBool(0.5)
                      ? Operand::imm(S.Rng.nextRange(-64, CondRange))
                      : Operand::reg(pickSrc(S));
    if (S.Rng.nextBool(0.3)) {
      auto [P1, P2] = S.B.emitCmpp2(C, Operand::reg(pickSrc(S)), Rhs,
                                    CmppAction::UN, CmppAction::UC);
      S.Preds.push_back(P1);
      S.Preds.push_back(P2);
    } else {
      S.Preds.push_back(S.B.emitCmpp1(C, Operand::reg(pickSrc(S)), Rhs,
                                      CmppAction::UN));
    }
  } else if (Kind < 95) { // fold into the observable accumulator
    S.B.emitArithTo(S.Acc, Opcode::Xor, Operand::reg(S.Acc),
                    Operand::reg(pickSrc(S)), pickGuard(S));
  } else { // floating-point filler, result stored so it stays live
    Reg FA = S.F.newReg(RegClass::FPR);
    S.B.emitMovTo(FA, Operand::imm(S.Rng.nextRange(1, 8)));
    Reg FB = S.B.emitArith(Opcode::FAdd, Operand::reg(FA), Operand::reg(FA));
    Reg A = S.B.emitArith(Opcode::Add, Operand::reg(S.Out),
                          Operand::imm(OutWindow - 1));
    S.B.emitStore(A, Operand::reg(FB), AliasOut);
  }
}

/// Emits a biased interior side exit: load a condition word, compare,
/// branch to a stub created behind the chain. Taken when the word is
/// *above* the threshold, so unwritten (zero) cells fall through.
void genSideExit(GenState &S) {
  Reg T = S.B.emitArith(Opcode::Add, Operand::reg(S.Ofs),
                        Operand::imm(S.Rng.nextRange(0, 63)));
  Reg A = S.B.emitArith(Opcode::Add, Operand::reg(T),
                        Operand::imm(DataBase));
  uint8_t AC = S.Rng.nextBool(S.Cfg.AliasChaos) ? uint8_t{0} : AliasData;
  Reg V = S.B.emitLoad(A, AC);
  double FallThrough;
  if (S.Rng.nextBool(S.Cfg.UnbiasedFrac))
    FallThrough = 0.45 + 0.10 * S.Rng.nextDouble();
  else
    FallThrough = std::min(
        0.999, std::max(0.5, S.Cfg.FallThroughBias +
                                 0.08 * (S.Rng.nextDouble() - 0.5)));
  int64_t Thresh = static_cast<int64_t>(
      static_cast<double>(CondRange) * FallThrough);
  Reg PT = S.B.emitCmpp1(CompareCond::GE, Operand::reg(V),
                         Operand::imm(Thresh), CmppAction::UN);
  Block &Stub = S.F.addBlock("S" + std::to_string(S.NextStub++));
  S.Pending.push_back(
      {&Stub, nullptr, static_cast<unsigned>(S.Rng.nextBelow(4))});
  S.B.emitBranchTo(Stub, PT);
}

/// One chain block: straight-line runs separated by interior side exits
/// (superblock shape -- several branches per block is what CPR block
/// formation feeds on).
void genRun(GenState &S) {
  startChainBlock(S);
  unsigned Exits = static_cast<unsigned>(S.Rng.nextBelow(4));
  for (unsigned E = 0; E <= Exits; ++E) {
    unsigned N = 1 + static_cast<unsigned>(S.Rng.nextBelow(S.Cfg.MaxOpsPerRun));
    for (unsigned K = 0; K < N; ++K)
      genOp(S);
    if (E < Exits)
      genSideExit(S);
  }
}

void genRegion(GenState &S, unsigned Depth);

/// A counted loop: init block, head, recursive body, tail. The tail is
/// the only place the trip register is decremented, and every side exit
/// inside the body rejoins a body block before the tail, so each
/// iteration decrements exactly once and the loop terminates.
void genLoop(GenState &S, unsigned Depth) {
  uint64_t Cap = S.Cfg.MaxIterationProduct / S.IterProduct;
  uint64_t Hi = std::min<uint64_t>(S.Cfg.MaxTrips, Cap);
  if (Hi < S.Cfg.MinTrips) {
    genRun(S);
    return;
  }
  uint64_t Trips =
      S.Cfg.MinTrips + S.Rng.nextBelow(Hi - S.Cfg.MinTrips + 1);
  startChainBlock(S); // trip init (also flushes pending stub rejoins)
  Reg Trip = S.F.newReg(RegClass::GPR);
  S.B.emitMovTo(Trip, Operand::imm(static_cast<int64_t>(Trips)));
  Block &Head = startChainBlock(S);
  S.IterProduct *= Trips;
  genRegion(S, Depth + 1);
  startChainBlock(S); // loop tail
  int64_t Stride = S.Rng.nextRange(1, 4);
  Reg T = S.B.emitArith(Opcode::Add, Operand::reg(S.Ofs),
                        Operand::imm(Stride));
  S.B.emitArithTo(S.Ofs, Opcode::And, Operand::reg(T),
                  Operand::imm(DataMask));
  S.B.emitArithTo(Trip, Opcode::Sub, Operand::reg(Trip), Operand::imm(1));
  Reg PM = S.B.emitCmpp1(CompareCond::GT, Operand::reg(Trip),
                         Operand::imm(0), CmppAction::UN);
  S.B.emitBranchTo(Head, PM);
  S.IterProduct /= Trips;
}

void genRegion(GenState &S, unsigned Depth) {
  unsigned Items =
      1 + static_cast<unsigned>(S.Rng.nextBelow(S.Cfg.MaxItemsPerRegion));
  for (unsigned I = 0; I < Items; ++I) {
    if (S.F.numBlocks() >= S.Cfg.MaxBlocks)
      break; // soft size cap; see GeneratorConfig::MaxBlocks
    bool CanLoop =
        Depth < S.Cfg.MaxLoopDepth &&
        S.IterProduct * S.Cfg.MinTrips <= S.Cfg.MaxIterationProduct;
    if (CanLoop && S.Rng.nextBool(0.35))
      genLoop(S, Depth);
    else
      genRun(S);
  }
}

KernelProgram generateFromGrammar(uint64_t Seed, const GeneratorConfig &Cfg,
                                  RNG &Rng) {
  KernelProgram P;
  P.Description = "fuzz grammar program, seed " + std::to_string(Seed);
  P.Func = std::make_unique<Function>("fuzz_" + std::to_string(Seed));
  Function &F = *P.Func;
  GenState S(F, Rng, Cfg);

  Block &Entry = F.addBlock("Entry");
  S.ChainLen = 1;
  S.B.setInsertBlock(Entry);
  S.Ofs = F.newReg(RegClass::GPR);
  S.Out = F.newReg(RegClass::GPR);
  S.Acc = F.newReg(RegClass::GPR);
  S.B.emitMovTo(S.Acc, Operand::imm(0));
  S.Pool.push_back(S.Ofs);
  for (unsigned I = 0; I < 3; ++I)
    S.Pool.push_back(S.B.emitMovImm(Rng.nextRange(-100, 100)));
  F.observableRegs().push_back(S.Acc);

  genRegion(S, 0);

  // Final chain block: fold, publish, leave. Its unconditional branch to
  // the exit keeps control from falling into the stub region behind it.
  startChainBlock(S);
  S.B.emitArithTo(S.Acc, Opcode::Xor, Operand::reg(S.Acc),
                  Operand::reg(pickSrc(S)));
  Reg OutSlot = S.B.emitArith(Opcode::Add, Operand::reg(S.Out),
                              Operand::imm(0));
  S.B.emitStore(OutSlot, Operand::reg(S.Acc), AliasOut);
  Block &Exit = F.addBlock("Exit");
  S.B.emitBranchTo(Exit, Reg::truePred());
  for (GenState::StubReq &Req : S.Pending) { // exits in the final block
    Req.Rejoin = &Exit;
    S.Done.push_back(Req);
  }
  S.Pending.clear();

  // Stub bodies: a little observable off-trace work, then rejoin.
  for (const GenState::StubReq &Req : S.Done) {
    S.B.setInsertBlock(*Req.Stub);
    S.B.emitArithTo(S.Acc, Opcode::Add, Operand::reg(S.Acc),
                    Operand::imm(1 + static_cast<int64_t>(Req.Flavor)));
    if (Req.Flavor & 1) {
      Reg A = S.B.emitArith(Opcode::Add, Operand::reg(S.Out),
                            Operand::imm(96 + Req.Flavor));
      S.B.emitStore(A, Operand::reg(S.Acc), AliasOut);
    }
    S.B.emitBranchTo(*Req.Rejoin, Reg::truePred());
  }

  S.B.setInsertBlock(Exit);
  S.B.emitHalt();

  verifyOrDie(F, "fuzz-generated program");

  // Condition data: uniform words over the whole (small) table.
  for (int64_t I = 0; I <= DataMask; ++I)
    P.InitMem.store(DataBase + I, Rng.nextRange(0, CondRange - 1));
  P.InitRegs = {{S.Ofs, Rng.nextRange(0, DataMask)}, {S.Out, OutBase}};
  return P;
}

} // namespace

KernelProgram cpr::generateProgram(uint64_t Seed, const GeneratorConfig &Cfg) {
  RNG Rng(Seed * 0x9e3779b97f4a7c15ULL + 0xfeedULL);
  if (Rng.nextBool(Cfg.SyntheticFrac)) {
    SyntheticParams SP = randomSyntheticParams(Rng);
    // Keep the SPEC-shaped family as quick as the grammar family.
    SP.Trips = std::min(SP.Trips, 32u);
    return buildSyntheticProgram("fuzz_syn_" + std::to_string(Seed), SP);
  }
  return generateFromGrammar(Seed, Cfg, Rng);
}

//===----------------------------------------------------------------------===//
// Mutation
//===----------------------------------------------------------------------===//

namespace {

KernelProgram cloneProgram(const KernelProgram &P) {
  KernelProgram C;
  C.Func = P.Func->clone();
  C.InitRegs = P.InitRegs;
  C.InitMem = P.InitMem;
  C.Description = P.Description;
  return C;
}

/// Collects (block index, op index) of every non-control operation.
std::vector<std::pair<size_t, size_t>> nonControlSites(const Function &F) {
  std::vector<std::pair<size_t, size_t>> Sites;
  for (size_t BI = 0; BI < F.numBlocks(); ++BI) {
    const Block &Blk = F.block(BI);
    for (size_t OI = 0; OI < Blk.size(); ++OI)
      if (!Blk.ops()[OI].isControl())
        Sites.push_back({BI, OI});
  }
  return Sites;
}

/// Applies one random mutation to \p P in place. Returns false when the
/// drawn mutation has no applicable site. Mutations are conservative
/// about what they tell the compiler: alias classes only move toward
/// class 0 (more conservative), so a surviving mismatch is always a
/// compiler bug, never a lying annotation.
bool applyOneMutation(KernelProgram &P, RNG &Rng) {
  Function &F = *P.Func;
  unsigned Kind = static_cast<unsigned>(Rng.nextBelow(8));
  switch (Kind) {
  case 0: { // tweak an immediate operand
    std::vector<Operand *> Imms;
    for (size_t BI = 0; BI < F.numBlocks(); ++BI)
      for (Operation &Op : F.block(BI).ops())
        if (!Op.isControl())
          for (Operand &Src : Op.srcs())
            if (Src.isImm())
              Imms.push_back(&Src);
    if (Imms.empty())
      return false;
    Operand &Target = *Imms[Rng.nextBelow(Imms.size())];
    int64_t V = Target.getImm();
    switch (Rng.nextBelow(4)) {
    case 0:
      V += Rng.nextRange(-8, 8);
      break;
    case 1:
      V = 0;
      break;
    case 2:
      V = 1;
      break;
    default:
      V = -V;
      break;
    }
    // Keep magnitudes tame so arithmetic cannot creep toward overflow.
    V = std::max<int64_t>(-(1 << 24), std::min<int64_t>(1 << 24, V));
    Target = Operand::imm(V);
    return true;
  }
  case 1: { // delete a non-control operation
    auto Sites = nonControlSites(F);
    if (Sites.empty())
      return false;
    auto [BI, OI] = Sites[Rng.nextBelow(Sites.size())];
    auto &Ops = F.block(BI).ops();
    Ops.erase(Ops.begin() + static_cast<ptrdiff_t>(OI));
    return true;
  }
  case 2: { // duplicate a non-control operation (fresh id)
    auto Sites = nonControlSites(F);
    if (Sites.empty())
      return false;
    auto [BI, OI] = Sites[Rng.nextBelow(Sites.size())];
    auto &Ops = F.block(BI).ops();
    Operation Copy = Ops[OI];
    Copy.setId(F.newOpId());
    Ops.insert(Ops.begin() + static_cast<ptrdiff_t>(OI) + 1, Copy);
    return true;
  }
  case 3: { // swap two adjacent non-control operations
    auto Sites = nonControlSites(F);
    std::vector<std::pair<size_t, size_t>> Pairs;
    for (auto [BI, OI] : Sites)
      if (OI + 1 < F.block(BI).size() &&
          !F.block(BI).ops()[OI + 1].isControl())
        Pairs.push_back({BI, OI});
    if (Pairs.empty())
      return false;
    auto [BI, OI] = Pairs[Rng.nextBelow(Pairs.size())];
    std::swap(F.block(BI).ops()[OI], F.block(BI).ops()[OI + 1]);
    return true;
  }
  case 4: { // demote a memory operation's alias class to 0
    std::vector<Operation *> Mems;
    for (size_t BI = 0; BI < F.numBlocks(); ++BI)
      for (Operation &Op : F.block(BI).ops())
        if ((Op.isLoad() || Op.isStore()) && Op.getAliasClass() != 0)
          Mems.push_back(&Op);
    if (Mems.empty())
      return false;
    Mems[Rng.nextBelow(Mems.size())]->setAliasClass(0);
    return true;
  }
  case 5: { // flip a cmpp condition
    std::vector<Operation *> Cmps;
    for (size_t BI = 0; BI < F.numBlocks(); ++BI)
      for (Operation &Op : F.block(BI).ops())
        if (Op.isCmpp())
          Cmps.push_back(&Op);
    if (Cmps.empty())
      return false;
    static const CompareCond Conds[] = {CompareCond::LT, CompareCond::LE,
                                        CompareCond::GT, CompareCond::GE,
                                        CompareCond::EQ, CompareCond::NE};
    Cmps[Rng.nextBelow(Cmps.size())]->setCond(Conds[Rng.nextBelow(6)]);
    return true;
  }
  case 6: { // tweak an initial register value
    if (P.InitRegs.empty())
      return false;
    RegBinding &B = P.InitRegs[Rng.nextBelow(P.InitRegs.size())];
    int64_t V = B.Value + Rng.nextRange(-64, 64);
    B.Value = std::max<int64_t>(-(1LL << 30),
                                std::min<int64_t>(1LL << 30, V));
    return true;
  }
  default: { // tweak an initial memory cell
    const auto &Cells = P.InitMem.cells();
    if (Cells.empty())
      return false;
    // Deterministic choice despite unordered storage: pick the k-th
    // lowest address.
    std::vector<int64_t> Addrs;
    Addrs.reserve(Cells.size());
    for (const auto &[Addr, Val] : Cells)
      Addrs.push_back(Addr);
    std::sort(Addrs.begin(), Addrs.end());
    int64_t Addr = Addrs[Rng.nextBelow(Addrs.size())];
    P.InitMem.store(Addr, Rng.nextRange(0, CondRange - 1));
    return true;
  }
  }
}

/// A mutant is viable when it still verifies and its baseline halts
/// within the screening budget (no mutation may turn the oracle's
/// baseline run into a hang).
bool screenMutant(const KernelProgram &P) {
  if (!verifyFunction(*P.Func).empty())
    return false;
  Memory Mem = P.InitMem;
  InterpOptions Opts;
  Opts.MaxSteps = ScreenStepBudget;
  RunResult R = interpret(*P.Func, Mem, P.InitRegs, Opts);
  return R.halted();
}

} // namespace

KernelProgram ProgramMutator::mutate(const KernelProgram &P, RNG &Rng) const {
  for (unsigned Attempt = 0; Attempt < 16; ++Attempt) {
    KernelProgram Candidate = cloneProgram(P);
    unsigned Mutations = 1 + static_cast<unsigned>(Rng.nextBelow(3));
    bool Applied = false;
    for (unsigned I = 0; I < Mutations; ++I)
      Applied |= applyOneMutation(Candidate, Rng);
    if (Applied && screenMutant(Candidate)) {
      Candidate.Description = P.Description + " (mutated)";
      return Candidate;
    }
  }
  return cloneProgram(P); // no viable mutation found
}

//===- fuzz/Corpus.h - Fuzz-program serialization and corpora ---*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The on-disk format of fuzz programs, corpus entries, and minimized
/// reproducers. A fuzz program is an executable case: a function plus the
/// initial register bindings and memory cells it runs against. It is
/// stored as plain textual IR (ir/IRPrinter.h) preceded by comment
/// directives the IR parser ignores, so every corpus file and reproducer
/// is simultaneously a valid `cprc` input:
///
/// \code
/// ; cpr-fuzz-program-v1
/// ; reg r1=256
/// ; mem 10000000=421
/// func @fuzz_001 { ... }
/// \endcode
///
/// Serialization is deterministic: registers in binding order, memory
/// cells sorted by address. See docs/FUZZING.md.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_CORPUS_H
#define FUZZ_CORPUS_H

#include "workloads/Kernels.h"

#include <string>
#include <vector>

namespace cpr {

/// Magic first line of a serialized fuzz program.
inline constexpr const char *FuzzProgramMagic = "; cpr-fuzz-program-v1";

/// Renders \p P in the corpus format (deterministically).
std::string serializeFuzzProgram(const KernelProgram &P);

/// Result of parsing a corpus entry.
struct FuzzParseResult {
  KernelProgram Program;
  std::string Error; ///< empty on success

  explicit operator bool() const { return Error.empty(); }
};

/// Parses a corpus entry. Accepts plain IR without directives too (the
/// program then starts with empty registers and memory). Does not run the
/// verifier; callers do.
FuzzParseResult parseFuzzProgram(const std::string &Text);

/// Reads and parses the file at \p Path.
FuzzParseResult loadFuzzProgramFile(const std::string &Path);

/// Writes \p P to \p Path; returns false with a message in \p Error
/// (when non-null) on I/O failure.
bool writeFuzzProgramFile(const KernelProgram &P, const std::string &Path,
                          std::string *Error = nullptr);

/// Lists the ".ir" files of directory \p Dir, sorted by name so corpus
/// iteration order is deterministic. Returns an empty list for a missing
/// directory.
std::vector<std::string> listCorpusFiles(const std::string &Dir);

} // namespace cpr

#endif // FUZZ_CORPUS_H

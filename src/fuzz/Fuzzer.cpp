//===- fuzz/Fuzzer.cpp - Differential fuzzing campaigns -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Corpus.h"
#include "fuzz/Reducer.h"
#include "ir/Verifier.h"
#include "lint/Lint.h"
#include "lint/Witness.h"
#include "pipeline/PipelineRun.h"
#include "regions/LoopUnroller.h"
#include "support/Error.h"
#include "support/Statistics.h"
#include "support/TestHooks.h"
#include "support/ThreadPool.h"

#include <filesystem>
#include <memory>
#include <ostream>
#include <sstream>

using namespace cpr;

std::string FuzzCampaignResult::summary() const {
  std::ostringstream Out;
  Out << "cases=" << Cases << " pass=" << Passes
      << " mismatch=" << Mismatches << " verifier-reject=" << VerifierRejects
      << " crash=" << Crashes;
  if (LintRejects > 0)
    Out << " lint-reject=" << LintRejects;
  if (LintBaselineDirty > 0)
    Out << " lint-baseline-dirty=" << LintBaselineDirty;
  if (CrossConfirmedButPass > 0)
    Out << " cross-confirmed-but-pass=" << CrossConfirmedButPass;
  if (CrossMismatchUnproved > 0)
    Out << " cross-mismatch-unproved=" << CrossMismatchUnproved;
  return Out.str();
}

namespace {

std::string hexSeed(uint64_t Seed) {
  std::ostringstream Out;
  Out << std::hex << Seed;
  return Out.str();
}

/// Builds case \p Index deterministically from its seed: either a fresh
/// generation or a mutation of a corpus entry. Pure function of
/// (CaseSeed, corpus contents, generator config).
KernelProgram buildCase(uint64_t CaseSeed, const FuzzCampaignOptions &Opts,
                        const std::vector<KernelProgram> &Corpus,
                        const ProgramMutator &Mutator) {
  RNG CaseRng(CaseSeed);
  if (!Corpus.empty() && CaseRng.nextBool(Opts.MutateFrac)) {
    const KernelProgram &Base = Corpus[CaseRng.nextBelow(Corpus.size())];
    return Mutator.mutate(Base, CaseRng);
  }
  return generateProgram(CaseSeed, Opts.Generator);
}

/// Loads Opts.CorpusDir in sorted-filename order for determinism.
std::vector<KernelProgram> loadCorpus(const FuzzCampaignOptions &Opts) {
  std::vector<KernelProgram> Corpus;
  if (Opts.CorpusDir.empty())
    return Corpus;
  for (const std::string &Path : listCorpusFiles(Opts.CorpusDir)) {
    FuzzParseResult PR = loadFuzzProgramFile(Path);
    if (!PR) {
      if (Opts.Log)
        *Opts.Log << "fuzz: skipping unparseable corpus entry: " << PR.Error
                  << "\n";
      if (Opts.Stats)
        Opts.Stats->addCount("fuzz/corpus_skipped");
      continue;
    }
    Corpus.push_back(std::move(PR.Program));
  }
  if (Opts.Stats)
    Opts.Stats->addCount("fuzz/corpus_loaded",
                         static_cast<double>(Corpus.size()));
  return Corpus;
}

/// The static campaign's stand-in for a profiling run: every branch is
/// hot and almost never taken -- exactly the bias the CPR heuristics
/// form on-trace blocks for -- so the transform exercises its full
/// machinery on every case without an interpreter in the loop.
ProfileData syntheticBiasedProfile(const Function &F) {
  ProfileData Prof;
  for (size_t B = 0; B < F.numBlocks(); ++B)
    for (const Operation &Op : F.block(B).ops())
      if (Op.isBranch()) {
        Prof.addBranchReached(Op.getId(), 100);
        Prof.addBranchTaken(Op.getId(), 2);
      }
  return Prof;
}

} // namespace

FuzzCampaignResult cpr::runFuzzCampaign(const FuzzCampaignOptions &Opts) {
  FuzzCampaignResult Res;
  Res.Cases = Opts.Runs;

  if (!Opts.OutDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Opts.OutDir, EC);
    if (EC && Opts.Log)
      *Opts.Log << "fuzz: cannot create --out directory '" << Opts.OutDir
                << "': " << EC.message() << "\n";
  }

  std::vector<KernelProgram> Corpus = loadCorpus(Opts);

  DifferentialRunner Runner(Opts.Variants, Opts.Machines);
  ProgramMutator Mutator(Opts.Generator);

  // Per-case seeds are drawn serially up front so case I's program never
  // depends on scheduling.
  std::vector<uint64_t> CaseSeeds(Opts.Runs);
  {
    RNG Base(Opts.Seed);
    for (uint64_t &S : CaseSeeds)
      S = Base.next();
  }

  // The fault-injection hook is a plain global: set it strictly before
  // the worker pool exists (thread creation publishes it) and restore it
  // after the pool has been joined.
  test_hooks::ScopedSkipCompensation Inject(Opts.InjectDefect);

  std::vector<CaseResult> Cases(Opts.Runs);
  {
    std::unique_ptr<ThreadPool> Pool;
    if (Opts.Threads != 1)
      Pool = std::make_unique<ThreadPool>(Opts.Threads);
    PassTimer T(Opts.Stats, "fuzz/run_cases");
    parallelFor(Pool.get(), Opts.Runs, [&](size_t I) {
      PassTimer CT(Opts.Stats, "fuzz/case/" + std::to_string(I));
      KernelProgram P = buildCase(CaseSeeds[I], Opts, Corpus, Mutator);
      Cases[I] = Runner.runCase(P);
    });
  }

  // Serial triage + reduction, in case order.
  for (size_t I = 0; I < Cases.size(); ++I) {
    const CaseResult &Case = Cases[I];
    switch (Case.Worst) {
    case FuzzOutcome::Pass:
      ++Res.Passes;
      continue;
    case FuzzOutcome::Mismatch:
      ++Res.Mismatches;
      break;
    case FuzzOutcome::VerifierReject:
      ++Res.VerifierRejects;
      break;
    case FuzzOutcome::LintReject: // static-oracle campaigns only
      ++Res.LintRejects;
      break;
    case FuzzOutcome::Crash:
      ++Res.Crashes;
      break;
    }

    FuzzFailure Fail;
    Fail.CaseIndex = I;
    Fail.CaseSeed = CaseSeeds[I];
    Fail.Outcome = Case.Worst;
    const CellResult &Worst =
        Case.Cells[Case.WorstVariant * Runner.machines().size() +
                   Case.WorstMachine];
    Fail.Divergence = Worst.Divergence;
    Fail.Detail = Worst.Detail;
    Fail.VariantName = Runner.variants()[Case.WorstVariant].Name;
    Fail.MachineName = Runner.machines()[Case.WorstMachine].getName();

    // The case program is a pure function of its seed, so the serial
    // phase simply rebuilds it instead of shipping programs out of the
    // parallel phase.
    KernelProgram P = buildCase(CaseSeeds[I], Opts, Corpus, Mutator);
    Fail.OriginalOps = P.Func->totalOps();
    Fail.ReducedOps = Fail.OriginalOps;
    if (Opts.Log)
      *Opts.Log << "fuzz: case " << I << " (seed 0x" << hexSeed(Fail.CaseSeed)
                << ") " << fuzzOutcomeName(Fail.Outcome) << ": "
                << Fail.Detail << "\n";

    if (Opts.Reduce) {
      ReduceResult RR = reduceCase(P, Runner, Case.WorstVariant,
                                   Case.WorstMachine, Opts.Reducer);
      Fail.ReducedOps = RR.ReducedOps;
      Fail.ReducedText = serializeFuzzProgram(RR.Reduced);
      if (Opts.Stats) {
        Opts.Stats->addCount("fuzz/reduce/oracle_runs",
                             static_cast<double>(RR.OracleRuns));
        Opts.Stats->addCount("fuzz/reduce/ops_removed",
                             static_cast<double>(RR.OriginalOps -
                                                 RR.ReducedOps));
      }
      if (!Opts.OutDir.empty()) {
        std::string Path = Opts.OutDir + "/repro-" + hexSeed(Fail.CaseSeed) +
                           "-" + Fail.VariantName + "-" + Fail.MachineName +
                           ".ir";
        std::string Error;
        if (writeFuzzProgramFile(RR.Reduced, Path, &Error)) {
          Fail.ReproducerPath = Path;
        } else if (Opts.Log) {
          *Opts.Log << "fuzz: cannot write reproducer: " << Error << "\n";
        }
      }
      if (Opts.Log)
        *Opts.Log << "fuzz:   reduced " << Fail.OriginalOps << " -> "
                  << Fail.ReducedOps << " ops ("
                  << (Fail.ReproducerPath.empty() ? "not written"
                                                  : Fail.ReproducerPath)
                  << ")\n";
    } else {
      Fail.ReducedText = serializeFuzzProgram(P);
    }
    Res.Failures.push_back(std::move(Fail));
  }

  if (Opts.Stats) {
    Opts.Stats->addCount("fuzz/cases", Res.Cases);
    Opts.Stats->addCount("fuzz/pass", Res.Passes);
    Opts.Stats->addCount("fuzz/mismatch", Res.Mismatches);
    Opts.Stats->addCount("fuzz/verifier_reject", Res.VerifierRejects);
    Opts.Stats->addCount("fuzz/crash", Res.Crashes);
    for (const FuzzFailure &F : Res.Failures)
      if (F.Outcome == FuzzOutcome::Mismatch)
        Opts.Stats->addCount(std::string("fuzz/divergence/") +
                             divergenceName(F.Divergence));
  }
  return Res;
}

FuzzCampaignResult
cpr::runStaticLintCampaign(const FuzzCampaignOptions &Opts) {
  FuzzCampaignResult Res;
  Res.Cases = Opts.Runs;

  std::vector<KernelProgram> Corpus = loadCorpus(Opts);
  ProgramMutator Mutator(Opts.Generator);
  std::vector<FuzzVariant> Variants =
      Opts.Variants.empty() ? defaultFuzzVariants() : Opts.Variants;
  LintOptions LintOpts;
  LintOpts.Machines =
      Opts.Machines.empty()
          ? std::vector<MachineDesc>{MachineDesc::medium(),
                                     MachineDesc::wide()}
          : Opts.Machines;
  LintDriver Linter = LintDriver::withBuiltinPasses(std::move(LintOpts));

  std::vector<uint64_t> CaseSeeds(Opts.Runs);
  {
    RNG Base(Opts.Seed);
    for (uint64_t &S : CaseSeeds)
      S = Base.next();
  }

  test_hooks::ScopedSkipCompensation Inject(Opts.InjectDefect);

  /// Worst outcome of one case across the variant sweep.
  struct StaticCase {
    FuzzOutcome Outcome = FuzzOutcome::Pass;
    bool BaselineDirty = false;
    size_t Variant = 0;
    std::string Detail;
  };
  std::vector<StaticCase> Cases(Opts.Runs);
  {
    std::unique_ptr<ThreadPool> Pool;
    if (Opts.Threads != 1)
      Pool = std::make_unique<ThreadPool>(Opts.Threads);
    PassTimer T(Opts.Stats, "fuzz/lint/run_cases");
    parallelFor(Pool.get(), Opts.Runs, [&](size_t I) {
      KernelProgram P = buildCase(CaseSeeds[I], Opts, Corpus, Mutator);
      StaticCase &SC = Cases[I];
      auto Worsen = [&SC](FuzzOutcome O, size_t V, std::string Detail) {
        if (fuzzOutcomeSeverity(O) <= fuzzOutcomeSeverity(SC.Outcome))
          return;
        SC.Outcome = O;
        SC.Variant = V;
        SC.Detail = std::move(Detail);
      };
      for (size_t V = 0; V < Variants.size(); ++V) {
        const FuzzVariant &Variant = Variants[V];
        ScopedFatalErrorTrap Trap;
        try {
          std::unique_ptr<Function> F = P.Func->clone();
          if (Variant.UnrollFactor >= 2)
            for (size_t B = 0; B < F->numBlocks(); ++B)
              unrollLoop(*F, F->block(B), Variant.UnrollFactor);
          // Differential gate: findings the substrate already has are
          // the generator's, not the transform's.
          LintResult BL = Linter.run(*F, nullptr, &P.InitRegs);
          if (BL.errorCount() > 0) {
            SC.BaselineDirty = true;
            continue;
          }
          // Fail-safe context: ordinary transform failures roll back and
          // stay silent; a verifier-clean invariant break (the planted
          // compensation-skip defect) commits and is the lint's to find.
          CPRContext Ctx;
          Ctx.FailSafe = true;
          ProfileData Prof = syntheticBiasedProfile(*F);
          runControlCPR(*F, Prof, Variant.CPR, Ctx);
          LintResult TL = Linter.run(*F, nullptr, &P.InitRegs);
          for (const LintFinding &Finding : TL.Findings)
            if (Finding.Severity == DiagSeverity::Error) {
              Worsen(FuzzOutcome::LintReject, V,
                     "[" + Variant.Name + "] " + Finding.str());
              break;
            }
        } catch (const FatalError &E) {
          bool Verifier =
              E.message().rfind("IR verification failed (", 0) == 0;
          Worsen(Verifier ? FuzzOutcome::VerifierReject : FuzzOutcome::Crash,
                 V, "[" + Variant.Name + "] " + E.message());
        }
      }
    });
  }

  // Serial triage, in case order (no reduction in static mode: the
  // reducer's oracle is the differential runner).
  for (size_t I = 0; I < Cases.size(); ++I) {
    const StaticCase &Case = Cases[I];
    if (Case.BaselineDirty)
      ++Res.LintBaselineDirty;
    switch (Case.Outcome) {
    case FuzzOutcome::Pass:
      ++Res.Passes;
      continue;
    case FuzzOutcome::Mismatch: // not produced by this oracle
      ++Res.Mismatches;
      break;
    case FuzzOutcome::VerifierReject:
      ++Res.VerifierRejects;
      break;
    case FuzzOutcome::LintReject:
      ++Res.LintRejects;
      break;
    case FuzzOutcome::Crash:
      ++Res.Crashes;
      break;
    }

    FuzzFailure Fail;
    Fail.CaseIndex = I;
    Fail.CaseSeed = CaseSeeds[I];
    Fail.Outcome = Case.Outcome;
    Fail.VariantName = Variants[Case.Variant].Name;
    Fail.Detail = Case.Detail;
    KernelProgram P = buildCase(CaseSeeds[I], Opts, Corpus, Mutator);
    Fail.OriginalOps = P.Func->totalOps();
    Fail.ReducedOps = Fail.OriginalOps;
    Fail.ReducedText = serializeFuzzProgram(P);
    if (Opts.Log)
      *Opts.Log << "fuzz: case " << I << " (seed 0x" << hexSeed(Fail.CaseSeed)
                << ") " << fuzzOutcomeName(Fail.Outcome) << ": "
                << Fail.Detail << "\n";
    Res.Failures.push_back(std::move(Fail));
  }

  if (Opts.Stats) {
    Opts.Stats->addCount("fuzz/lint/cases", Res.Cases);
    Opts.Stats->addCount("fuzz/lint/pass", Res.Passes);
    Opts.Stats->addCount("fuzz/lint/reject", Res.LintRejects);
    Opts.Stats->addCount("fuzz/lint/baseline_dirty", Res.LintBaselineDirty);
    Opts.Stats->addCount("fuzz/lint/crash", Res.Crashes);
  }
  return Res;
}

namespace {

/// Agreement classification of one case x variant under both oracles.
enum class CrossClass {
  Agree,
  BaselineDirty,     ///< excluded: the substrate already lints dirty
  ConfirmedButPass,  ///< confirmed witness, differential equivalence pass
  MismatchUnproved,  ///< differential mismatch, no error finding
};

/// Runs both oracles over one (program x variant) and compares verdicts.
/// \p Detail receives the discrepancy description. FatalError escapes to
/// the caller (trap there).
CrossClass crossValidateOnce(const KernelProgram &P,
                             const FuzzVariant &Variant,
                             const LintDriver &Linter,
                             std::string &Detail) {
  KernelProgram Copy;
  Copy.Func = P.Func->clone();
  Copy.InitRegs = P.InitRegs;
  Copy.InitMem = P.InitMem;
  Copy.Description = P.Description;

  PipelineOptions POpts;
  POpts.CPR = Variant.CPR;
  POpts.UnrollFactor = Variant.UnrollFactor;
  POpts.CheckEquivalence = false; // the non-fatal oracle runs below
  POpts.FailSafe = false;         // rollback would hide what we compare
  PipelineRun Session(std::move(Copy), POpts);
  const Function &Treated = Session.treated();
  if (!verifyFunction(Treated).empty())
    return CrossClass::Agree; // runFuzzCampaign's territory, not ours

  // Differential gate, same as the static campaign: findings the
  // substrate already has are the generator's.
  if (Linter.run(Session.baseline(), nullptr, &P.InitRegs).errorCount() > 0)
    return CrossClass::BaselineDirty;

  const EquivResult &E = Session.checkEquivalenceResult();
  LintResult TL = Linter.run(Treated, nullptr, &P.InitRegs);

  // Replay every solved error-finding witness; the first confirmation
  // suffices to establish the static side's concrete claim.
  const LintFinding *ConfirmedOn = nullptr;
  for (const LintFinding &Fd : TL.Findings) {
    if (Fd.Severity != DiagSeverity::Error || !Fd.Witness ||
        !Fd.Witness->Solved)
      continue;
    WitnessConfirmation WC = confirmWitness(Treated, *Fd.Witness);
    if (WC.Confirmed) {
      ConfirmedOn = &Fd;
      break;
    }
  }

  if (E.Equivalent && ConfirmedOn) {
    Detail = "cross-validate[confirmed-witness-differential-pass] [" +
             Variant.Name + "] " + ConfirmedOn->str();
    return CrossClass::ConfirmedButPass;
  }
  if (!E.Equivalent && TL.errorCount() == 0) {
    Detail = "cross-validate[differential-mismatch-no-finding] [" +
             Variant.Name + " | " + divergenceName(E.Kind) + "] " + E.Detail;
    return CrossClass::MismatchUnproved;
  }
  return CrossClass::Agree;
}

} // namespace

FuzzCampaignResult
cpr::runCrossValidationCampaign(const FuzzCampaignOptions &Opts) {
  FuzzCampaignResult Res;
  Res.Cases = Opts.Runs;

  if (!Opts.OutDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Opts.OutDir, EC);
    if (EC && Opts.Log)
      *Opts.Log << "fuzz: cannot create --out directory '" << Opts.OutDir
                << "': " << EC.message() << "\n";
  }

  std::vector<KernelProgram> Corpus = loadCorpus(Opts);
  ProgramMutator Mutator(Opts.Generator);
  std::vector<FuzzVariant> Variants =
      Opts.Variants.empty() ? defaultFuzzVariants() : Opts.Variants;
  LintOptions LintOpts;
  LintOpts.Machines =
      Opts.Machines.empty()
          ? std::vector<MachineDesc>{MachineDesc::medium(),
                                     MachineDesc::wide()}
          : Opts.Machines;
  LintDriver Linter = LintDriver::withBuiltinPasses(std::move(LintOpts));

  std::vector<uint64_t> CaseSeeds(Opts.Runs);
  {
    RNG Base(Opts.Seed);
    for (uint64_t &S : CaseSeeds)
      S = Base.next();
  }

  test_hooks::ScopedSkipCompensation Inject(Opts.InjectDefect);

  /// Worst discrepancy of one case across the variant sweep.
  struct CrossCase {
    CrossClass Class = CrossClass::Agree;
    bool BaselineDirty = false;
    bool Crashed = false;
    size_t Variant = 0;
    std::string Detail;
  };
  std::vector<CrossCase> Cases(Opts.Runs);
  {
    std::unique_ptr<ThreadPool> Pool;
    if (Opts.Threads != 1)
      Pool = std::make_unique<ThreadPool>(Opts.Threads);
    PassTimer T(Opts.Stats, "fuzz/crossval/run_cases");
    parallelFor(Pool.get(), Opts.Runs, [&](size_t I) {
      KernelProgram P = buildCase(CaseSeeds[I], Opts, Corpus, Mutator);
      CrossCase &CC = Cases[I];
      for (size_t V = 0; V < Variants.size(); ++V) {
        ScopedFatalErrorTrap Trap;
        try {
          std::string Detail;
          CrossClass Class =
              crossValidateOnce(P, Variants[V], Linter, Detail);
          if (Class == CrossClass::BaselineDirty) {
            CC.BaselineDirty = true;
            continue;
          }
          if (Class != CrossClass::Agree &&
              CC.Class == CrossClass::Agree) {
            CC.Class = Class;
            CC.Variant = V;
            CC.Detail = std::move(Detail);
          }
        } catch (const FatalError &E) {
          // Strict-mode stage crashes (incl. verifier deaths) belong to
          // the differential campaign; here they just end this variant.
          if (!CC.Crashed) {
            CC.Crashed = true;
            CC.Detail = "[" + Variants[V].Name + "] " + E.message();
          }
        }
      }
    });
  }

  // Serial triage + reduction, in case order.
  for (size_t I = 0; I < Cases.size(); ++I) {
    const CrossCase &Case = Cases[I];
    if (Case.BaselineDirty)
      ++Res.LintBaselineDirty;
    if (Case.Class == CrossClass::Agree) {
      if (Case.Crashed)
        ++Res.Crashes;
      else
        ++Res.Passes;
      continue;
    }
    if (Case.Class == CrossClass::ConfirmedButPass)
      ++Res.CrossConfirmedButPass;
    else
      ++Res.CrossMismatchUnproved;
    ++Res.Mismatches;

    FuzzFailure Fail;
    Fail.CaseIndex = I;
    Fail.CaseSeed = CaseSeeds[I];
    Fail.Outcome = FuzzOutcome::Mismatch;
    Fail.VariantName = Variants[Case.Variant].Name;
    Fail.Detail = Case.Detail;
    KernelProgram P = buildCase(CaseSeeds[I], Opts, Corpus, Mutator);
    Fail.OriginalOps = P.Func->totalOps();
    Fail.ReducedOps = Fail.OriginalOps;
    if (Opts.Log)
      *Opts.Log << "fuzz: case " << I << " (seed 0x" << hexSeed(Fail.CaseSeed)
                << ") " << fuzzOutcomeName(Fail.Outcome) << ": "
                << Fail.Detail << "\n";

    if (Opts.Reduce) {
      // The oracle is the discrepancy itself: a candidate reproduces only
      // if the same disagreement class recurs on the same variant.
      const FuzzVariant &Variant = Variants[Case.Variant];
      CrossClass Want = Case.Class;
      CaseOracle Oracle = [&Variant, &Linter,
                           Want](const KernelProgram &Cand) {
        ScopedFatalErrorTrap Trap;
        try {
          std::string Detail;
          return OracleVerdict{crossValidateOnce(Cand, Variant, Linter,
                                                 Detail) == Want
                                   ? FuzzOutcome::Mismatch
                                   : FuzzOutcome::Pass,
                               EquivResult::Divergence::None};
        } catch (const FatalError &) {
          return OracleVerdict{FuzzOutcome::Pass,
                               EquivResult::Divergence::None};
        }
      };
      ReduceResult RR = reduceCaseWith(P, Oracle, Opts.Reducer);
      Fail.ReducedOps = RR.ReducedOps;
      Fail.ReducedText = serializeFuzzProgram(RR.Reduced);
      if (Opts.Stats) {
        Opts.Stats->addCount("fuzz/reduce/oracle_runs",
                             static_cast<double>(RR.OracleRuns));
        Opts.Stats->addCount("fuzz/reduce/ops_removed",
                             static_cast<double>(RR.OriginalOps -
                                                 RR.ReducedOps));
      }
      if (!Opts.OutDir.empty()) {
        std::string Path = Opts.OutDir + "/crossval-" +
                           hexSeed(Fail.CaseSeed) + "-" + Fail.VariantName +
                           ".ir";
        std::string Error;
        if (writeFuzzProgramFile(RR.Reduced, Path, &Error)) {
          Fail.ReproducerPath = Path;
        } else if (Opts.Log) {
          *Opts.Log << "fuzz: cannot write reproducer: " << Error << "\n";
        }
      }
    } else {
      Fail.ReducedText = serializeFuzzProgram(P);
    }
    Res.Failures.push_back(std::move(Fail));
  }

  if (Opts.Stats) {
    Opts.Stats->addCount("fuzz/crossval/cases", Res.Cases);
    Opts.Stats->addCount("fuzz/crossval/pass", Res.Passes);
    Opts.Stats->addCount("fuzz/crossval/confirmed_but_pass",
                         Res.CrossConfirmedButPass);
    Opts.Stats->addCount("fuzz/crossval/mismatch_unproved",
                         Res.CrossMismatchUnproved);
    Opts.Stats->addCount("fuzz/crossval/baseline_dirty",
                         Res.LintBaselineDirty);
    Opts.Stats->addCount("fuzz/crossval/crash", Res.Crashes);
  }
  return Res;
}

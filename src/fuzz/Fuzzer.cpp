//===- fuzz/Fuzzer.cpp - Differential fuzzing campaigns -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Fuzzer.h"

#include "fuzz/Corpus.h"
#include "fuzz/Reducer.h"
#include "support/Statistics.h"
#include "support/TestHooks.h"
#include "support/ThreadPool.h"

#include <filesystem>
#include <memory>
#include <ostream>
#include <sstream>

using namespace cpr;

std::string FuzzCampaignResult::summary() const {
  std::ostringstream Out;
  Out << "cases=" << Cases << " pass=" << Passes
      << " mismatch=" << Mismatches << " verifier-reject=" << VerifierRejects
      << " crash=" << Crashes;
  return Out.str();
}

namespace {

std::string hexSeed(uint64_t Seed) {
  std::ostringstream Out;
  Out << std::hex << Seed;
  return Out.str();
}

/// Builds case \p Index deterministically from its seed: either a fresh
/// generation or a mutation of a corpus entry. Pure function of
/// (CaseSeed, corpus contents, generator config).
KernelProgram buildCase(uint64_t CaseSeed, const FuzzCampaignOptions &Opts,
                        const std::vector<KernelProgram> &Corpus,
                        const ProgramMutator &Mutator) {
  RNG CaseRng(CaseSeed);
  if (!Corpus.empty() && CaseRng.nextBool(Opts.MutateFrac)) {
    const KernelProgram &Base = Corpus[CaseRng.nextBelow(Corpus.size())];
    return Mutator.mutate(Base, CaseRng);
  }
  return generateProgram(CaseSeed, Opts.Generator);
}

} // namespace

FuzzCampaignResult cpr::runFuzzCampaign(const FuzzCampaignOptions &Opts) {
  FuzzCampaignResult Res;
  Res.Cases = Opts.Runs;

  if (!Opts.OutDir.empty()) {
    std::error_code EC;
    std::filesystem::create_directories(Opts.OutDir, EC);
    if (EC && Opts.Log)
      *Opts.Log << "fuzz: cannot create --out directory '" << Opts.OutDir
                << "': " << EC.message() << "\n";
  }

  // Corpus seeds, in sorted-filename order for determinism.
  std::vector<KernelProgram> Corpus;
  if (!Opts.CorpusDir.empty()) {
    for (const std::string &Path : listCorpusFiles(Opts.CorpusDir)) {
      FuzzParseResult PR = loadFuzzProgramFile(Path);
      if (!PR) {
        if (Opts.Log)
          *Opts.Log << "fuzz: skipping unparseable corpus entry: " << PR.Error
                    << "\n";
        if (Opts.Stats)
          Opts.Stats->addCount("fuzz/corpus_skipped");
        continue;
      }
      Corpus.push_back(std::move(PR.Program));
    }
    if (Opts.Stats)
      Opts.Stats->addCount("fuzz/corpus_loaded",
                           static_cast<double>(Corpus.size()));
  }

  DifferentialRunner Runner(Opts.Variants, Opts.Machines);
  ProgramMutator Mutator(Opts.Generator);

  // Per-case seeds are drawn serially up front so case I's program never
  // depends on scheduling.
  std::vector<uint64_t> CaseSeeds(Opts.Runs);
  {
    RNG Base(Opts.Seed);
    for (uint64_t &S : CaseSeeds)
      S = Base.next();
  }

  // The fault-injection hook is a plain global: set it strictly before
  // the worker pool exists (thread creation publishes it) and restore it
  // after the pool has been joined.
  test_hooks::ScopedSkipCompensation Inject(Opts.InjectDefect);

  std::vector<CaseResult> Cases(Opts.Runs);
  {
    std::unique_ptr<ThreadPool> Pool;
    if (Opts.Threads != 1)
      Pool = std::make_unique<ThreadPool>(Opts.Threads);
    PassTimer T(Opts.Stats, "fuzz/run_cases");
    parallelFor(Pool.get(), Opts.Runs, [&](size_t I) {
      PassTimer CT(Opts.Stats, "fuzz/case/" + std::to_string(I));
      KernelProgram P = buildCase(CaseSeeds[I], Opts, Corpus, Mutator);
      Cases[I] = Runner.runCase(P);
    });
  }

  // Serial triage + reduction, in case order.
  for (size_t I = 0; I < Cases.size(); ++I) {
    const CaseResult &Case = Cases[I];
    switch (Case.Worst) {
    case FuzzOutcome::Pass:
      ++Res.Passes;
      continue;
    case FuzzOutcome::Mismatch:
      ++Res.Mismatches;
      break;
    case FuzzOutcome::VerifierReject:
      ++Res.VerifierRejects;
      break;
    case FuzzOutcome::Crash:
      ++Res.Crashes;
      break;
    }

    FuzzFailure Fail;
    Fail.CaseIndex = I;
    Fail.CaseSeed = CaseSeeds[I];
    Fail.Outcome = Case.Worst;
    const CellResult &Worst =
        Case.Cells[Case.WorstVariant * Runner.machines().size() +
                   Case.WorstMachine];
    Fail.Divergence = Worst.Divergence;
    Fail.Detail = Worst.Detail;
    Fail.VariantName = Runner.variants()[Case.WorstVariant].Name;
    Fail.MachineName = Runner.machines()[Case.WorstMachine].getName();

    // The case program is a pure function of its seed, so the serial
    // phase simply rebuilds it instead of shipping programs out of the
    // parallel phase.
    KernelProgram P = buildCase(CaseSeeds[I], Opts, Corpus, Mutator);
    Fail.OriginalOps = P.Func->totalOps();
    Fail.ReducedOps = Fail.OriginalOps;
    if (Opts.Log)
      *Opts.Log << "fuzz: case " << I << " (seed 0x" << hexSeed(Fail.CaseSeed)
                << ") " << fuzzOutcomeName(Fail.Outcome) << ": "
                << Fail.Detail << "\n";

    if (Opts.Reduce) {
      ReduceResult RR = reduceCase(P, Runner, Case.WorstVariant,
                                   Case.WorstMachine, Opts.Reducer);
      Fail.ReducedOps = RR.ReducedOps;
      Fail.ReducedText = serializeFuzzProgram(RR.Reduced);
      if (Opts.Stats) {
        Opts.Stats->addCount("fuzz/reduce/oracle_runs",
                             static_cast<double>(RR.OracleRuns));
        Opts.Stats->addCount("fuzz/reduce/ops_removed",
                             static_cast<double>(RR.OriginalOps -
                                                 RR.ReducedOps));
      }
      if (!Opts.OutDir.empty()) {
        std::string Path = Opts.OutDir + "/repro-" + hexSeed(Fail.CaseSeed) +
                           "-" + Fail.VariantName + "-" + Fail.MachineName +
                           ".ir";
        std::string Error;
        if (writeFuzzProgramFile(RR.Reduced, Path, &Error)) {
          Fail.ReproducerPath = Path;
        } else if (Opts.Log) {
          *Opts.Log << "fuzz: cannot write reproducer: " << Error << "\n";
        }
      }
      if (Opts.Log)
        *Opts.Log << "fuzz:   reduced " << Fail.OriginalOps << " -> "
                  << Fail.ReducedOps << " ops ("
                  << (Fail.ReproducerPath.empty() ? "not written"
                                                  : Fail.ReproducerPath)
                  << ")\n";
    } else {
      Fail.ReducedText = serializeFuzzProgram(P);
    }
    Res.Failures.push_back(std::move(Fail));
  }

  if (Opts.Stats) {
    Opts.Stats->addCount("fuzz/cases", Res.Cases);
    Opts.Stats->addCount("fuzz/pass", Res.Passes);
    Opts.Stats->addCount("fuzz/mismatch", Res.Mismatches);
    Opts.Stats->addCount("fuzz/verifier_reject", Res.VerifierRejects);
    Opts.Stats->addCount("fuzz/crash", Res.Crashes);
    for (const FuzzFailure &F : Res.Failures)
      if (F.Outcome == FuzzOutcome::Mismatch)
        Opts.Stats->addCount(std::string("fuzz/divergence/") +
                             divergenceName(F.Divergence));
  }
  return Res;
}

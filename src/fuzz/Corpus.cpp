//===- fuzz/Corpus.cpp - Fuzz-program serialization and corpora -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Corpus.h"

#include "ir/IRParser.h"
#include "ir/IRPrinter.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

using namespace cpr;

std::string cpr::serializeFuzzProgram(const KernelProgram &P) {
  std::ostringstream Out;
  Out << FuzzProgramMagic << "\n";
  if (!P.Description.empty())
    Out << "; desc " << P.Description << "\n";
  for (const RegBinding &B : P.InitRegs)
    Out << "; reg " << regClassPrefix(B.R.getClass()) << B.R.getId() << "="
        << B.Value << "\n";
  std::vector<std::pair<int64_t, int64_t>> Cells(P.InitMem.cells().begin(),
                                                 P.InitMem.cells().end());
  std::sort(Cells.begin(), Cells.end());
  for (const auto &[Addr, Val] : Cells)
    Out << "; mem " << Addr << "=" << Val << "\n";
  Out << printFunction(*P.Func);
  return Out.str();
}

namespace {

/// Parses "r12" / "f3" / "p2" / "b1" (plain digits, no pretty names).
bool parseRegName(const std::string &Name, Reg &Out) {
  if (Name.size() < 2)
    return false;
  RegClass RC;
  switch (Name[0]) {
  case 'r':
    RC = RegClass::GPR;
    break;
  case 'f':
    RC = RegClass::FPR;
    break;
  case 'p':
    RC = RegClass::PR;
    break;
  case 'b':
    RC = RegClass::BTR;
    break;
  default:
    return false;
  }
  char *End = nullptr;
  unsigned long Id = std::strtoul(Name.c_str() + 1, &End, 10);
  if (End != Name.c_str() + Name.size())
    return false;
  Out = Reg(RC, static_cast<uint32_t>(Id));
  return true;
}

/// Splits "lhs=rhs"; returns false when '=' is absent.
bool splitAssign(const std::string &S, std::string &Lhs, std::string &Rhs) {
  size_t Eq = S.find('=');
  if (Eq == std::string::npos)
    return false;
  Lhs = S.substr(0, Eq);
  Rhs = S.substr(Eq + 1);
  return !Lhs.empty() && !Rhs.empty();
}

std::string trim(const std::string &S) {
  size_t B = S.find_first_not_of(" \t\r");
  if (B == std::string::npos)
    return "";
  size_t E = S.find_last_not_of(" \t\r");
  return S.substr(B, E - B + 1);
}

} // namespace

FuzzParseResult cpr::parseFuzzProgram(const std::string &Text) {
  FuzzParseResult Res;
  std::istringstream In(Text);
  std::string Line;
  unsigned LineNo = 0;
  while (std::getline(In, Line)) {
    ++LineNo;
    std::string T = trim(Line);
    if (T.empty())
      continue;
    if (T[0] != ';')
      break; // IR starts; directives only appear above it.
    std::string Body = trim(T.substr(1));
    std::istringstream Dir(Body);
    std::string Kw;
    Dir >> Kw;
    if (Kw == "reg") {
      std::string Spec, Lhs, Rhs;
      Dir >> Spec;
      Reg R;
      if (!splitAssign(Spec, Lhs, Rhs) || !parseRegName(Lhs, R)) {
        Res.Error = "line " + std::to_string(LineNo) +
                    ": malformed reg directive: " + Body;
        return Res;
      }
      Res.Program.InitRegs.push_back(
          {R, std::strtoll(Rhs.c_str(), nullptr, 10)});
    } else if (Kw == "mem") {
      std::string Spec, Lhs, Rhs;
      Dir >> Spec;
      if (!splitAssign(Spec, Lhs, Rhs)) {
        Res.Error = "line " + std::to_string(LineNo) +
                    ": malformed mem directive: " + Body;
        return Res;
      }
      Res.Program.InitMem.store(std::strtoll(Lhs.c_str(), nullptr, 10),
                                std::strtoll(Rhs.c_str(), nullptr, 10));
    } else if (Kw == "desc") {
      std::string Rest;
      std::getline(Dir, Rest);
      Res.Program.Description = trim(Rest);
    }
    // Unknown directives (including the magic) are ignored: forward
    // compatibility, and plain comments stay legal.
  }
  ParseResult PR = parseFunction(Text);
  if (!PR) {
    Res.Error = "line " + std::to_string(PR.Line) + ": " + PR.Error;
    return Res;
  }
  Res.Program.Func = std::move(PR.Func);
  return Res;
}

FuzzParseResult cpr::loadFuzzProgramFile(const std::string &Path) {
  std::ifstream In(Path);
  if (!In) {
    FuzzParseResult Res;
    Res.Error = "cannot open " + Path;
    return Res;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  FuzzParseResult Res = parseFuzzProgram(Buf.str());
  if (!Res)
    Res.Error = Path + ": " + Res.Error;
  return Res;
}

bool cpr::writeFuzzProgramFile(const KernelProgram &P, const std::string &Path,
                               std::string *Error) {
  std::ofstream Out(Path);
  if (!Out) {
    if (Error)
      *Error = "cannot open " + Path + " for writing";
    return false;
  }
  Out << serializeFuzzProgram(P);
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write to " + Path + " failed";
    return false;
  }
  return true;
}

std::vector<std::string> cpr::listCorpusFiles(const std::string &Dir) {
  std::vector<std::string> Files;
  std::error_code EC;
  for (const auto &Entry : std::filesystem::directory_iterator(Dir, EC)) {
    if (!Entry.is_regular_file())
      continue;
    if (Entry.path().extension() == ".ir")
      Files.push_back(Entry.path().string());
  }
  std::sort(Files.begin(), Files.end());
  return Files;
}

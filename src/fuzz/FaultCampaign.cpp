//===- fuzz/FaultCampaign.cpp - Fault-injection campaigns -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/FaultCampaign.h"

#include "interp/Profiler.h"
#include "ir/Verifier.h"
#include "pipeline/PipelineRun.h"
#include "support/Error.h"
#include "support/FaultInjector.h"
#include "support/Statistics.h"

#include <ostream>

using namespace cpr;

std::string FaultCampaignResult::summary() const {
  return "injections=" + std::to_string(Injections) +
         " fired=" + std::to_string(Fired) +
         " recovered=" + std::to_string(Recovered) +
         " crash=" + std::to_string(Crashes) +
         " mismatch=" + std::to_string(Mismatches) +
         " verify-fail=" + std::to_string(VerifyFails);
}

namespace {

/// One armed run of one program through a fail-safe session. Returns the
/// contract-violation description, or "" on a pass.
std::string runInjection(const KernelProgram &P, const std::string &Site,
                         uint64_t NthHit, const FaultCampaignOptions &Opts,
                         FaultCampaignResult &Res) {
  KernelProgram Copy;
  Copy.Func = P.Func->clone();
  Copy.InitRegs = P.InitRegs;
  Copy.InitMem = P.InitMem;
  Copy.Description = P.Description;

  PipelineOptions SessionOpts;
  SessionOpts.FailSafe = true;
  // The equivalence re-check is what turns verifier-clean miscompiles
  // (site cpr.restructure.compensation) into rollbacks.
  SessionOpts.RegionEquivalence = true;
  SessionOpts.CheckEquivalence = true;
  SessionOpts.InterpMaxSteps = Opts.InterpMaxSteps;
  SessionOpts.Machines = {MachineDesc::medium()};
  DiagnosticEngine Diags(Opts.Stats, "fault/");
  SessionOpts.Diags = &Diags;

  ++Res.Injections;
  fault::arm(Site, NthHit);
  bool DidFire = false;
  CPRResult CPR;
  bool FellBack = false;
  std::unique_ptr<Function> Treated;
  {
    // The contract says faults never escalate to a fatal error in
    // fail-safe mode; the trap turns a violation into a caught crash
    // instead of taking the campaign down.
    ScopedFatalErrorTrap Trap;
    try {
      PipelineRun Session(std::move(Copy), SessionOpts);
      Status S = Session.tryPrepare();
      DidFire = fault::fired();
      if (!S.ok()) {
        fault::disarm();
        ++Res.Crashes; // a failed *session* is as bad as a crash here
        return "site " + Site + " nth=" + std::to_string(NthHit) +
               ": session failed: " + S.diagnostic().str();
      }
      CPR = Session.cprResult();
      FellBack = Session.fellBack();
      Treated = Session.finish().Treated;
    } catch (const FatalError &E) {
      DidFire = DidFire || fault::fired();
      fault::disarm();
      ++Res.Crashes;
      return "site " + Site + " nth=" + std::to_string(NthHit) +
             ": fatal error escaped the fail-safe layer: " + E.message();
    }
  }
  fault::disarm();

  if (DidFire)
    ++Res.Fired;
  if (DidFire && (CPR.BlocksRolledBack > 0 || FellBack))
    ++Res.Recovered;

  // The output must be runnable regardless of what was injected.
  std::vector<std::string> Violations = verifyFunction(*Treated);
  if (!Violations.empty()) {
    ++Res.VerifyFails;
    return "site " + Site + " nth=" + std::to_string(NthHit) +
           ": output fails verification: " + Violations.front();
  }
  // ... and observationally equivalent to the untouched input (faults are
  // disarmed now, so this oracle run is trustworthy).
  EquivResult E =
      checkEquivalence(*P.Func, *Treated, P.InitMem, P.InitRegs);
  if (!E.Equivalent) {
    ++Res.Mismatches;
    return "site " + Site + " nth=" + std::to_string(NthHit) +
           ": miscompile survived [" + divergenceName(E.Kind) +
           "]: " + E.Detail;
  }
  return "";
}

} // namespace

FaultCampaignResult cpr::runFaultCampaign(const FaultCampaignOptions &Opts) {
  FaultCampaignResult Res;
  std::vector<std::string> Sites =
      Opts.Sites.empty() ? fault::sites() : Opts.Sites;

  // One shared program set across sites: case programs are a pure
  // function of (seed, case index), so a campaign is reproducible from
  // its seed alone.
  std::vector<KernelProgram> Programs;
  Programs.reserve(Opts.CasesPerSite);
  for (unsigned I = 0; I < Opts.CasesPerSite; ++I)
    Programs.push_back(
        generateProgram(Opts.Seed + 0x9e3779b97f4a7c15ull * (I + 1),
                        Opts.Generator));

  for (const std::string &Site : Sites) {
    for (unsigned CaseIdx = 0; CaseIdx < Programs.size(); ++CaseIdx) {
      for (uint64_t Nth = 1; Nth <= Opts.NthHits; ++Nth) {
        std::string Failure =
            runInjection(Programs[CaseIdx], Site, Nth, Opts, Res);
        if (!Failure.empty()) {
          Res.Failures.push_back("case " + std::to_string(CaseIdx) + ": " +
                                 Failure);
          if (Opts.Log)
            (*Opts.Log) << "fault-campaign: " << Res.Failures.back()
                        << "\n";
        }
      }
    }
  }

  if (Opts.Stats) {
    Opts.Stats->addCount("fault/injections", Res.Injections);
    Opts.Stats->addCount("fault/fired", Res.Fired);
    Opts.Stats->addCount("fault/recovered", Res.Recovered);
    Opts.Stats->addCount("fault/crashes", Res.Crashes);
    Opts.Stats->addCount("fault/mismatches", Res.Mismatches);
    Opts.Stats->addCount("fault/verify_fails", Res.VerifyFails);
  }
  return Res;
}

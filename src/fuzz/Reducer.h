//===- fuzz/Reducer.h - Delta-debugging test-case reduction -----*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Shrinks a failing fuzz program to a minimal reproducer while
/// preserving its failure signature (outcome classification plus, for
/// mismatches, the kind of diverging artifact) on the same
/// (variant, machine) cell. ddmin-style passes iterate to a fixpoint:
///
///   1. whole-block removal;
///   2. operation-chunk removal (halving chunk sizes down to 1);
///   3. immediate canonicalization (toward 0);
///   4. initial-memory-cell and initial-register removal.
///
/// Every candidate must still pass the IR verifier before the oracle
/// re-runs; invalid candidates are rejected without an oracle run. The
/// reduction itself is deterministic (pure function of the input and
/// the runner's grid), so two reductions of the same finding emit
/// byte-identical reproducers.
///
//===----------------------------------------------------------------------===//

#ifndef FUZZ_REDUCER_H
#define FUZZ_REDUCER_H

#include "fuzz/Differential.h"
#include "support/Budget.h"

#include <functional>

namespace cpr {

struct ReducerOptions {
  /// Budget for oracle invocations (each "step" is one full differential
  /// cell) and, optionally, reduction wall-clock (support/Budget.h).
  /// Exhaustion stops the reduction at the best candidate so far -- a
  /// degradation, not a failure.
  Budget OracleBudget = {/*MaxSteps=*/600, /*MaxWallMs=*/0.0};
  /// Run the immediate-canonicalization pass.
  bool CanonicalizeImms = true;
};

struct ReduceResult {
  KernelProgram Reduced;
  /// Failure signature of the reduced program (same as the input's).
  FuzzOutcome Outcome = FuzzOutcome::Pass;
  EquivResult::Divergence Divergence = EquivResult::Divergence::None;
  size_t OracleRuns = 0;
  size_t OriginalOps = 0;
  size_t ReducedOps = 0;
};

/// Verdict of a pluggable reduction oracle (reduceCaseWith).
struct OracleVerdict {
  FuzzOutcome Outcome = FuzzOutcome::Pass;
  EquivResult::Divergence Divergence = EquivResult::Divergence::None;
};

/// Classifies one candidate program. Must be a pure function of the
/// program (the reduction is deterministic only if the oracle is), and
/// must not let FatalError escape -- contain stage crashes and return
/// the verdict they map to.
using CaseOracle = std::function<OracleVerdict(const KernelProgram &)>;

/// Reduces \p P against cell (\p VariantIdx, \p MachineIdx) of \p Runner.
/// \p P must currently fail that cell (Outcome != Pass); when it does
/// not, the input is returned unreduced with Outcome == Pass.
ReduceResult reduceCase(const KernelProgram &P,
                        const DifferentialRunner &Runner, size_t VariantIdx,
                        size_t MachineIdx,
                        const ReducerOptions &Opts = ReducerOptions());

/// Same ddmin loop against an arbitrary classification oracle -- the
/// cross-validation campaign reduces against the *discrepancy between two
/// oracles*, which no single differential cell expresses. The preserved
/// signature is \p Oracle's verdict on the unreduced \p P.
ReduceResult reduceCaseWith(const KernelProgram &P, const CaseOracle &Oracle,
                            const ReducerOptions &Opts = ReducerOptions());

} // namespace cpr

#endif // FUZZ_REDUCER_H

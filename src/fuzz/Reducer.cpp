//===- fuzz/Reducer.cpp - Delta-debugging test-case reduction -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "fuzz/Reducer.h"

#include "interp/Interpreter.h"
#include "ir/Verifier.h"

#include <algorithm>

using namespace cpr;

namespace {

KernelProgram cloneProgram(const KernelProgram &P) {
  KernelProgram C;
  C.Func = P.Func->clone();
  C.InitRegs = P.InitRegs;
  C.InitMem = P.InitMem;
  C.Description = P.Description;
  return C;
}

/// Shared state of one reduction: the classification oracle, the failure
/// signature to preserve, and the oracle budget.
struct ReduceCtx {
  const CaseOracle &Oracle;
  FuzzOutcome WantOutcome;
  EquivResult::Divergence WantKind;
  /// Unified oracle-run / wall-clock budget (support/Budget.h); one step
  /// is one differential cell.
  BudgetTracker Tracker;
  /// Step bound for the cheap halting pre-screen, derived from the
  /// original program's own run length.
  uint64_t StepBudget = 0;

  bool budgetLeft() const { return !Tracker.exhausted(); }

  /// The reduction predicate: candidate verifies, its baseline still
  /// halts quickly, and the oracle reproduces the same signature.
  bool stillFails(const KernelProgram &Cand) {
    if (!budgetLeft())
      return false;
    if (!verifyFunction(*Cand.Func).empty())
      return false;
    if (StepBudget > 0) {
      Memory Mem = Cand.InitMem;
      InterpOptions IO;
      IO.MaxSteps = StepBudget;
      RunResult R = interpret(*Cand.Func, Mem, Cand.InitRegs, IO);
      if (!R.halted())
        return false;
    }
    if (!Tracker.consume())
      return false;
    OracleVerdict V = Oracle(Cand);
    if (V.Outcome != WantOutcome)
      return false;
    if (WantOutcome == FuzzOutcome::Mismatch && V.Divergence != WantKind)
      return false;
    return true;
  }

  bool tryReplace(KernelProgram &Best, KernelProgram Cand) {
    if (!stillFails(Cand))
      return false;
    Best = std::move(Cand);
    return true;
  }
};

/// Removes the ops at flattened indices [Start, Start+Len) of \p F.
void removeOpRange(Function &F, size_t Start, size_t Len) {
  for (size_t BI = 0; BI < F.numBlocks() && Len > 0; ++BI) {
    auto &Ops = F.block(BI).ops();
    size_t Size = Ops.size();
    if (Start >= Size) {
      Start -= Size; // range begins in a later block
      continue;
    }
    size_t Hi = std::min(Size, Start + Len);
    Ops.erase(Ops.begin() + static_cast<ptrdiff_t>(Start),
              Ops.begin() + static_cast<ptrdiff_t>(Hi));
    Len -= Hi - Start;
    Start = 0; // the remainder starts at the next block's first op
  }
}

bool blockRemovalPass(KernelProgram &Best, ReduceCtx &Ctx) {
  bool Progress = false;
  size_t BI = 0;
  while (Ctx.budgetLeft() && BI < Best.Func->numBlocks() &&
         Best.Func->numBlocks() > 1) {
    KernelProgram Cand = cloneProgram(Best);
    Cand.Func->removeBlock(Cand.Func->block(BI).getId());
    if (Ctx.tryReplace(Best, std::move(Cand)))
      Progress = true; // same index now names the next block
    else
      ++BI;
  }
  return Progress;
}

/// ddmin over the flattened operation list: chunk sizes n/2, n/4, ..., 1.
bool opChunkPass(KernelProgram &Best, ReduceCtx &Ctx) {
  bool Progress = false;
  size_t Chunk = std::max<size_t>(1, Best.Func->totalOps() / 2);
  while (Ctx.budgetLeft()) {
    size_t Start = 0;
    while (Ctx.budgetLeft() && Start < Best.Func->totalOps()) {
      KernelProgram Cand = cloneProgram(Best);
      removeOpRange(*Cand.Func, Start, Chunk);
      if (Ctx.tryReplace(Best, std::move(Cand)))
        Progress = true; // list shifted; retry the same start
      else
        Start += Chunk;
    }
    if (Chunk == 1)
      break;
    Chunk = std::max<size_t>(1, Chunk / 2);
  }
  return Progress;
}

bool immCanonPass(KernelProgram &Best, ReduceCtx &Ctx) {
  bool Progress = false;
  for (size_t BI = 0; Ctx.budgetLeft() && BI < Best.Func->numBlocks(); ++BI) {
    for (size_t OI = 0; Ctx.budgetLeft() && OI < Best.Func->block(BI).size();
         ++OI) {
      // Index, don't hold a reference: a successful tryReplace move-assigns
      // Best and frees the operation storage the reference pointed into.
      for (size_t SI = 0;
           Ctx.budgetLeft() && SI < Best.Func->block(BI).ops()[OI].srcs().size();
           ++SI) {
        const Operand &Src = Best.Func->block(BI).ops()[OI].srcs()[SI];
        if (!Src.isImm() || Src.getImm() == 0)
          continue;
        KernelProgram Cand = cloneProgram(Best);
        Cand.Func->block(BI).ops()[OI].srcs()[SI] = Operand::imm(0);
        if (Ctx.tryReplace(Best, std::move(Cand)))
          Progress = true;
      }
    }
  }
  return Progress;
}

bool inputsPass(KernelProgram &Best, ReduceCtx &Ctx) {
  bool Progress = false;
  // Memory cells, chunked over the sorted address list.
  std::vector<int64_t> Addrs;
  for (const auto &[Addr, Val] : Best.InitMem.cells())
    Addrs.push_back(Addr);
  std::sort(Addrs.begin(), Addrs.end());
  size_t Chunk = std::max<size_t>(1, Addrs.size() / 2);
  while (Ctx.budgetLeft() && !Addrs.empty()) {
    size_t Start = 0;
    while (Ctx.budgetLeft() && Start < Addrs.size()) {
      KernelProgram Cand = cloneProgram(Best);
      Memory Mem;
      size_t End = std::min(Addrs.size(), Start + Chunk);
      for (size_t I = 0; I < Addrs.size(); ++I)
        if (I < Start || I >= End)
          Mem.store(Addrs[I], Best.InitMem.load(Addrs[I]));
      Cand.InitMem = Mem;
      if (Ctx.tryReplace(Best, std::move(Cand))) {
        Progress = true;
        Addrs.erase(Addrs.begin() + static_cast<ptrdiff_t>(Start),
                    Addrs.begin() + static_cast<ptrdiff_t>(End));
      } else {
        Start += Chunk;
      }
    }
    if (Chunk == 1)
      break;
    Chunk = std::max<size_t>(1, Chunk / 2);
  }
  // Register bindings, one at a time (unbound registers read as zero).
  for (size_t I = 0; Ctx.budgetLeft() && I < Best.InitRegs.size();) {
    KernelProgram Cand = cloneProgram(Best);
    Cand.InitRegs.erase(Cand.InitRegs.begin() + static_cast<ptrdiff_t>(I));
    if (Ctx.tryReplace(Best, std::move(Cand)))
      Progress = true; // same index now names the next binding
    else
      ++I;
  }
  return Progress;
}

} // namespace

ReduceResult cpr::reduceCase(const KernelProgram &P,
                             const DifferentialRunner &Runner,
                             size_t VariantIdx, size_t MachineIdx,
                             const ReducerOptions &Opts) {
  CaseOracle Oracle = [&Runner, VariantIdx,
                       MachineIdx](const KernelProgram &Cand) {
    CellResult Cell = Runner.runCell(Cand, VariantIdx, MachineIdx);
    return OracleVerdict{Cell.Outcome, Cell.Divergence};
  };
  return reduceCaseWith(P, Oracle, Opts);
}

ReduceResult cpr::reduceCaseWith(const KernelProgram &P,
                                 const CaseOracle &Oracle,
                                 const ReducerOptions &Opts) {
  ReduceResult Res;
  Res.Reduced = cloneProgram(P);
  Res.OriginalOps = P.Func->totalOps();
  Res.ReducedOps = Res.OriginalOps;

  // Establish the signature to preserve.
  OracleVerdict Seed = Oracle(P);
  Res.Outcome = Seed.Outcome;
  Res.Divergence = Seed.Divergence;
  Res.OracleRuns = 1;
  if (Seed.Outcome == FuzzOutcome::Pass)
    return Res; // nothing to reduce

  ReduceCtx Ctx{Oracle, Seed.Outcome, Seed.Divergence,
                BudgetTracker(Opts.OracleBudget)};
  // Halting pre-screen budget: 4x the original's own run length (the
  // interesting candidates shrink the program, not grow its runtime).
  {
    Memory Mem = P.InitMem;
    RunResult R = interpret(*P.Func, Mem, P.InitRegs);
    if (R.halted())
      Ctx.StepBudget = 4 * R.Steps + 10'000;
  }

  bool Progress = true;
  while (Progress && Ctx.budgetLeft()) {
    Progress = false;
    Progress |= blockRemovalPass(Res.Reduced, Ctx);
    Progress |= opChunkPass(Res.Reduced, Ctx);
    if (Opts.CanonicalizeImms)
      Progress |= immCanonPass(Res.Reduced, Ctx);
    Progress |= inputsPass(Res.Reduced, Ctx);
  }

  Res.OracleRuns += Ctx.Tracker.steps();
  Res.ReducedOps = Res.Reduced.Func->totalOps();
  Res.Reduced.Description =
      "reduced reproducer (" + std::string(fuzzOutcomeName(Res.Outcome)) +
      (Res.Outcome == FuzzOutcome::Mismatch
           ? std::string(", ") + divergenceName(Res.Divergence)
           : std::string()) +
      ")";
  return Res;
}

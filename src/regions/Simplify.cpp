//===- regions/Simplify.cpp - Local scalar optimizations -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/Simplify.h"

#include "support/Error.h"

#include <map>
#include <unordered_map>

using namespace cpr;

namespace {

/// Evaluates a two-source integer op over constants (mirrors the
/// interpreter's semantics, including division-by-zero-as-zero).
int64_t foldIntArith(Opcode Opc, int64_t A, int64_t B) {
  switch (Opc) {
  case Opcode::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                static_cast<uint64_t>(B));
  case Opcode::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(A) -
                                static_cast<uint64_t>(B));
  case Opcode::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(A) *
                                static_cast<uint64_t>(B));
  case Opcode::Div:
    return B == 0 ? 0 : A / B;
  case Opcode::Rem:
    return B == 0 ? 0 : A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(A)
                                << (static_cast<uint64_t>(B) & 63));
  case Opcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(A) >>
                                (static_cast<uint64_t>(B) & 63));
  case Opcode::Min:
    return A < B ? A : B;
  case Opcode::Max:
    return A > B ? A : B;
  default:
    CPR_UNREACHABLE("not a foldable opcode");
  }
}

/// Value identity for CSE: (opcode, operand identities) where a register
/// identity is its defining epoch.
struct ExprKey {
  Opcode Opc;
  // Per operand: (isImm, imm) or (reg class/id, epoch).
  struct Part {
    bool IsImm;
    int64_t Imm;
    Reg R;
    uint64_t Epoch;
    bool operator<(const Part &O) const {
      if (IsImm != O.IsImm)
        return IsImm < O.IsImm;
      if (IsImm)
        return Imm < O.Imm;
      if (R != O.R)
        return R < O.R;
      return Epoch < O.Epoch;
    }
  };
  Part A, B;

  bool operator<(const ExprKey &O) const {
    if (Opc != O.Opc)
      return Opc < O.Opc;
    if (A < O.A || O.A < A)
      return A < O.A;
    return B < O.B;
  }
};

} // namespace

SimplifyStats cpr::simplifyBlock(Function &F, Block &B) {
  (void)F;
  SimplifyStats Stats;

  // Register facts. Epochs change on every definition.
  std::unordered_map<Reg, uint64_t> Epoch;
  uint64_t NextEpoch = 1;
  std::unordered_map<Reg, int64_t> Constants;
  std::unordered_map<Reg, Reg> Copies; // dst -> src (with src epoch)
  std::unordered_map<Reg, uint64_t> CopySrcEpoch;
  // Available expressions: key -> (result reg, its epoch).
  std::map<ExprKey, std::pair<Reg, uint64_t>> Exprs;

  auto CurEpoch = [&](Reg R) {
    auto It = Epoch.find(R);
    return It == Epoch.end() ? uint64_t{0} : It->second;
  };
  auto Invalidate = [&](Reg R) {
    Epoch[R] = NextEpoch++;
    Constants.erase(R);
    Copies.erase(R);
  };

  for (Operation &Op : B.ops()) {
    bool Unconditional = Op.getGuard().isTruePred();

    // --- Use rewriting ---------------------------------------------------
    for (Operand &S : Op.srcs()) {
      if (!S.isReg() || S.getReg().getClass() != RegClass::GPR)
        continue;
      Reg R = S.getReg();
      // Copy propagation (only when the copied-from value is unchanged).
      auto CIt = Copies.find(R);
      if (CIt != Copies.end() &&
          CurEpoch(CIt->second) == CopySrcEpoch[R]) {
        S = Operand::reg(CIt->second);
        R = CIt->second;
        ++Stats.CopiesPropagated;
      }
      // Constant propagation.
      auto KIt = Constants.find(R);
      if (KIt != Constants.end()) {
        S = Operand::imm(KIt->second);
        ++Stats.ConstantsFolded;
      }
    }

    // --- Folding / CSE of pure integer arithmetic ------------------------
    bool IsFoldable = opcodeIsIntArith(Op.getOpcode()) &&
                      Op.getOpcode() != Opcode::Mov &&
                      Op.defs().size() == 1 &&
                      Op.defs()[0].R.getClass() == RegClass::GPR;
    if (IsFoldable && Op.srcs()[0].isImm() && Op.srcs()[1].isImm()) {
      int64_t V = foldIntArith(Op.getOpcode(), Op.srcs()[0].getImm(),
                               Op.srcs()[1].getImm());
      Reg Dst = Op.defs()[0].R;
      Operation NewOp(Op.getId(), Opcode::Mov);
      NewOp.setGuard(Op.getGuard());
      NewOp.setFrpGuard(Op.isFrpGuard());
      NewOp.addDef(Dst);
      NewOp.addSrc(Operand::imm(V));
      Op = NewOp;
      ++Stats.ConstantsFolded;
    } else if (IsFoldable && Unconditional) {
      ExprKey Key;
      Key.Opc = Op.getOpcode();
      auto MakePart = [&](const Operand &S) {
        ExprKey::Part P;
        P.IsImm = S.isImm();
        if (P.IsImm) {
          P.Imm = S.getImm();
          P.R = Reg();
          P.Epoch = 0;
        } else {
          P.Imm = 0;
          P.R = S.getReg();
          P.Epoch = CurEpoch(S.getReg());
        }
        return P;
      };
      Key.A = MakePart(Op.srcs()[0]);
      Key.B = MakePart(Op.srcs()[1]);
      auto EIt = Exprs.find(Key);
      if (EIt != Exprs.end() &&
          CurEpoch(EIt->second.first) == EIt->second.second) {
        // Same value already available: become a copy of it.
        Reg Dst = Op.defs()[0].R;
        Reg Src = EIt->second.first;
        if (Src != Dst) {
          Operation NewOp(Op.getId(), Opcode::Mov);
          NewOp.setGuard(Op.getGuard());
          NewOp.addDef(Dst);
          NewOp.addSrc(Operand::reg(Src));
          Op = NewOp;
          ++Stats.ExpressionsReused;
        }
      } else {
        // Record after the definition below (epoch known then).
        // Deferred via post-def insertion handled after Invalidate.
        // Stash the key in a local and fall through.
        for (const DefSlot &D : Op.defs())
          Invalidate(D.R);
        Exprs[Key] = {Op.defs()[0].R, CurEpoch(Op.defs()[0].R)};
        continue; // defs already invalidated
      }
    }

    // --- Fact updates on definitions -------------------------------------
    for (const DefSlot &D : Op.defs())
      Invalidate(D.R);

    if (Op.getOpcode() == Opcode::Mov && Unconditional &&
        Op.defs().size() == 1 &&
        Op.defs()[0].R.getClass() == RegClass::GPR) {
      Reg Dst = Op.defs()[0].R;
      const Operand &Src = Op.srcs()[0];
      if (Src.isImm()) {
        Constants[Dst] = Src.getImm();
      } else if (Src.isReg() && Src.getReg().getClass() == RegClass::GPR &&
                 Src.getReg() != Dst) {
        Copies[Dst] = Src.getReg();
        CopySrcEpoch[Dst] = CurEpoch(Src.getReg());
      }
    }
  }
  return Stats;
}

SimplifyStats cpr::simplifyFunction(Function &F) {
  SimplifyStats Total;
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I) {
    Block &B = F.block(I);
    if (B.isCompensation())
      continue;
    SimplifyStats S = simplifyBlock(F, B);
    Total.ConstantsFolded += S.ConstantsFolded;
    Total.CopiesPropagated += S.CopiesPropagated;
    Total.ExpressionsReused += S.ExpressionsReused;
  }
  return Total;
}

//===- regions/IfConversion.h - Hyperblock formation ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// If-conversion (Allen et al. [AKPW83], Mahlke et al. [MLC+92]): folds a
/// rarely taken side path back into its region using predication instead
/// of control flow, producing the hyperblock inputs the paper's ICBM is
/// designed to accept ("predicated execution is often introduced prior to
/// control CPR").
///
/// Pattern handled: a branch in block P targeting a small block T, where T
/// ends with an unconditional branch back to P's layout successor J (the
/// "if-then, rejoin" diamond half):
///
///   P: ... branch(p, @T) ... (rest)        T: ops...; branch(T, @J)
///
/// becomes
///
///   P: ... cmpp-guarded rest ... T's ops guarded by p ...
///
/// i.e. the branch disappears, the remainder of P is guarded by the
/// fall-through predicate, and T's operations run predicated on the taken
/// predicate at the end of P. Operations of T that are unsafe to
/// predicate this way (further branches, halt) disqualify the pattern.
///
//===----------------------------------------------------------------------===//

#ifndef REGIONS_IFCONVERSION_H
#define REGIONS_IFCONVERSION_H

#include "ir/Function.h"

namespace cpr {

/// Options for if-conversion.
struct IfConversionOptions {
  /// Maximum operation count of a side block to fold.
  unsigned MaxSideOps = 8;
  /// Only fold when the branch's profiled taken ratio is below this (use
  /// 1.0 to ignore profiles). Requires a profile via the pointer below.
  double MaxTakenRatio = 1.0;
  const class ProfileData *Profile = nullptr;
};

/// Results of one if-conversion run.
struct IfConversionStats {
  unsigned BranchesConverted = 0;
  unsigned OpsPredicated = 0;
};

/// If-converts eligible side exits of every non-compensation block of
/// \p F. Side blocks that become unreachable are left for dead-block
/// cleanup (they are simply never entered).
IfConversionStats ifConvert(Function &F,
                            const IfConversionOptions &Opts =
                                IfConversionOptions());

} // namespace cpr

#endif // REGIONS_IFCONVERSION_H

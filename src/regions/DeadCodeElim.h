//===- regions/DeadCodeElim.h - Dead code elimination -----------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Liveness-driven dead code elimination, run after ICBM as the paper does
/// (Section 5): operations computing unreferenced predicates disappear, and
/// cmpp operations with one dead destination lose that destination slot
/// (e.g. the UC target of a compare whose fall-through predicate was
/// re-wired to the on-trace FRP).
///
//===----------------------------------------------------------------------===//

#ifndef REGIONS_DEADCODEELIM_H
#define REGIONS_DEADCODEELIM_H

#include "ir/Function.h"

namespace cpr {

/// Results of one DCE run.
struct DCEStats {
  unsigned OpsRemoved = 0;
  unsigned DestsRemoved = 0;
};

/// Removes dead operations and dead cmpp destinations from \p F, iterating
/// to a fixed point. Side-effecting operations (stores, branches,
/// terminators) and pbr operations feeding branches are always kept.
DCEStats eliminateDeadCode(Function &F);

} // namespace cpr

#endif // REGIONS_DEADCODEELIM_H

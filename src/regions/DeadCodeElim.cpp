//===- regions/DeadCodeElim.cpp - Dead code elimination --------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/DeadCodeElim.h"

#include "analysis/CFG.h"
#include "analysis/Liveness.h"

using namespace cpr;

namespace {

/// One DCE sweep. Returns true if anything changed.
bool sweepOnce(Function &F, DCEStats &Stats) {
  Liveness LV(F);
  bool Changed = false;

  for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
    Block &B = F.block(BI);

    // Intra-block backward liveness over sets, seeded from the block-level
    // results, folding in interior exit contributions at their positions.
    RegSet Live = LV.liveOut(B.getId());
    // liveOut over-approximates (it unions all exits); recompute the
    // fall-through component precisely.
    Live.clear();
    if (BI + 1 < F.numBlocks()) {
      const RegSet &NextIn = LV.liveIn(F.block(BI + 1).getId());
      Live.insert(NextIn.begin(), NextIn.end());
    }
    for (Reg R : F.observableRegs())
      Live.insert(R);

    // Walk backward, marking dead defs.
    std::vector<bool> RemoveOp(B.size(), false);
    std::vector<std::vector<bool>> RemoveDef(B.size());
    for (size_t OI = B.size(); OI-- > 0;) {
      Operation &Op = B.ops()[OI];
      if (Op.isBranch()) {
        RegSet ExitLive = LV.liveAtExit(F, B, OI);
        Live.insert(ExitLive.begin(), ExitLive.end());
      } else if (Op.getOpcode() == Opcode::Halt ||
                 Op.getOpcode() == Opcode::Trap) {
        for (Reg R : F.observableRegs())
          Live.insert(R);
      }

      RemoveDef[OI].assign(Op.defs().size(), false);
      bool AnyLiveDef = false;
      for (size_t DI = 0; DI < Op.defs().size(); ++DI) {
        if (Live.count(Op.defs()[DI].R))
          AnyLiveDef = true;
        else
          RemoveDef[OI][DI] = true;
      }

      bool MustKeep = Op.hasSideEffects() || Op.getOpcode() == Opcode::Pbr;
      // Pbr results feed branches; keep them only if some branch uses the
      // BTR (covered by liveness: if the branch exists, the BTR is live).
      if (Op.getOpcode() == Opcode::Pbr && !AnyLiveDef &&
          !Live.count(Op.defs()[0].R))
        MustKeep = false;

      if (!MustKeep && !AnyLiveDef && !Op.defs().empty()) {
        RemoveOp[OI] = true;
        continue; // a removed op contributes no uses or kills
      }
      if (Op.getOpcode() == Opcode::Nop) {
        RemoveOp[OI] = true;
        continue;
      }

      // Standard backward transfer.
      for (size_t DI = 0; DI < Op.defs().size(); ++DI) {
        const DefSlot &D = Op.defs()[DI];
        bool AlwaysWrites =
            Op.isCmpp()
                ? (D.Act == CmppAction::UN || D.Act == CmppAction::UC)
                : (Op.getGuard().isTruePred() || Op.isFrpGuard());
        if (AlwaysWrites && !RemoveDef[OI][DI])
          Live.erase(D.R);
      }
      if (!Op.getGuard().isTruePred())
        Live.insert(Op.getGuard());
      for (const Operand &S : Op.srcs())
        if (S.isReg())
          Live.insert(S.getReg());
    }

    // Apply removals (backward so indices stay valid).
    for (size_t OI = B.size(); OI-- > 0;) {
      if (RemoveOp[OI]) {
        B.ops().erase(B.ops().begin() + static_cast<ptrdiff_t>(OI));
        ++Stats.OpsRemoved;
        Changed = true;
        continue;
      }
      Operation &Op = B.ops()[OI];
      if (!Op.isCmpp() || Op.defs().size() < 2)
        continue;
      for (size_t DI = Op.defs().size(); DI-- > 0;) {
        if (RemoveDef[OI][DI] && Op.defs().size() > 1) {
          Op.defs().erase(Op.defs().begin() + static_cast<ptrdiff_t>(DI));
          ++Stats.DestsRemoved;
          Changed = true;
        }
      }
    }
  }
  return Changed;
}

} // namespace

DCEStats cpr::eliminateDeadCode(Function &F) {
  DCEStats Stats;
  while (sweepOnce(F, Stats)) {
  }
  return Stats;
}

//===- regions/Simplify.h - Local scalar optimizations ----------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Local (per-block) scalar optimizations: constant folding, copy
/// propagation, and common-subexpression elimination for pure integer
/// operations. The paper's inputs are "after unrolling and other
/// traditional code optimizations" (Section 6); this pass provides that
/// preparation, and in particular cleans up the base+offset arithmetic the
/// loop unroller materializes.
///
/// The pass is predication-aware in the conservative direction: facts
/// (constant values, copies, available expressions) are only recorded for
/// unconditional definitions, and any definition of a register invalidates
/// facts about it.
///
//===----------------------------------------------------------------------===//

#ifndef REGIONS_SIMPLIFY_H
#define REGIONS_SIMPLIFY_H

#include "ir/Function.h"

namespace cpr {

/// Results of one simplification run.
struct SimplifyStats {
  unsigned ConstantsFolded = 0;
  unsigned CopiesPropagated = 0;
  unsigned ExpressionsReused = 0; ///< CSE hits (op rewritten to a mov)
};

/// Simplifies block \p B of \p F in place. Does not remove operations
/// (dead ones become movs for DCE to collect), so operation ids and
/// positions stay stable for profiles.
SimplifyStats simplifyBlock(Function &F, Block &B);

/// Simplifies every non-compensation block, then runs nothing else
/// (callers chain DCE).
SimplifyStats simplifyFunction(Function &F);

} // namespace cpr

#endif // REGIONS_SIMPLIFY_H

//===- regions/FRPConversion.cpp - Fully-resolved predicates --------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
//
// The conversion walks the region once, maintaining a symbolic (BDD)
// expression for the path predicate -- the condition under which control
// reaches the current position -- and for every predicate register defined
// so far. For each operation it compares the guard's value expression gE
// with the path expression PathE:
//
//   - gE implies PathE: the guard already refines the position; keep it.
//     (This is the common case for if-converted code whose compare was
//     itself re-guarded by the path predicate earlier in this walk.)
//   - PathE implies gE: the guard is weaker than the position (guard T, or
//     an outer path predicate); replace it with the current path predicate
//     register and mark it positional (isFrpGuard) so predicate
//     speculation may freely promote it back.
//   - otherwise: materialize newGuard = Path & oldGuard with two moves
//     (rare: predication unrelated to the branch structure).
//
// At each branch the controlling compare gains a UC fall-through
// destination which becomes the next path predicate register, provided the
// compare's guard expression equals the path expression exactly (otherwise
// the walk continues with a path expression but no register, and later
// re-guards materialize).
//
//===----------------------------------------------------------------------===//

#include "regions/FRPConversion.h"

#include "analysis/BDD.h"
#include "support/Error.h"

#include <unordered_map>

using namespace cpr;

FRPConversionStats cpr::convertToFRP(Function &F, Block &B) {
  FRPConversionStats Stats;
  std::vector<Operation> &Ops = B.ops();

  BDD Mgr;
  uint32_t NextVar = 0;
  // Value expression per predicate register (fresh atom when unknown).
  std::unordered_map<Reg, BDD::NodeRef> PredVal;
  auto PredExpr = [&](Reg R) -> BDD::NodeRef {
    if (R.isTruePred())
      return BDD::True;
    auto [It, Inserted] = PredVal.try_emplace(R, BDD::Invalid);
    if (Inserted)
      It->second = Mgr.var(NextVar++);
    return It->second;
  };

  BDD::NodeRef PathE = BDD::True;
  Reg PathReg = Reg::truePred();
  bool PathRegExact = true; // PathReg's value expression equals PathE

  // One fresh condition atom per compare operation (conservative: no
  // sharing; the conversion needs only implication structure).
  std::unordered_map<OpId, BDD::NodeRef> CondAtom;
  auto CondExpr = [&](const Operation &Cmpp) -> BDD::NodeRef {
    auto [It, Inserted] = CondAtom.try_emplace(Cmpp.getId(), BDD::Invalid);
    if (Inserted)
      It->second = Mgr.var(NextVar++);
    return It->second;
  };

  auto Implies = [&](BDD::NodeRef A, BDD::NodeRef Bn) {
    return Mgr.implies(A, Bn);
  };

  for (size_t I = 0; I < Ops.size(); ++I) {
    // --- Re-guard the operation ---------------------------------------
    if (!Ops[I].isBranch()) {
      Reg G = Ops[I].getGuard();
      BDD::NodeRef GE = PredExpr(G);
      if (G == PathReg || Implies(GE, PathE)) {
        // Keep: the guard already encodes (at least) the position.
      } else if (PathRegExact && Implies(PathE, GE)) {
        Ops[I].setGuard(PathReg);
        Ops[I].setFrpGuard(true);
        ++Stats.GuardsRewritten;
      } else {
        // Materialize newGuard = Path & oldGuard.
        Reg NewGuard = F.newReg(RegClass::PR);
        Operation Init = F.makeOp(Opcode::Mov);
        Init.addDef(NewGuard);
        Init.addSrc(Operand::imm(0));
        Operation Copy = F.makeOp(Opcode::Mov);
        Copy.setGuard(PathRegExact ? PathReg : Reg::truePred());
        Copy.addDef(NewGuard);
        Copy.addSrc(Operand::reg(G));
        // Without an exact path register the conjunction degenerates to a
        // plain copy, which is still correct (weaker guard, original
        // position still protects the operation).
        Ops.insert(Ops.begin() + static_cast<ptrdiff_t>(I), {Init, Copy});
        I += 2;
        Ops[I].setGuard(NewGuard);
        PredVal[NewGuard] =
            Mgr.mkAnd(PathRegExact ? PathE : BDD::True, PredExpr(G));
        ++Stats.MaterializedConjunctions;
      }
    }

    Operation &Op = Ops[I];

    // --- Update predicate value expressions ----------------------------
    BDD::NodeRef GE = PredExpr(Op.getGuard());
    if (Op.isCmpp()) {
      BDD::NodeRef C = CondExpr(Op);
      for (const DefSlot &D : Op.defs()) {
        BDD::NodeRef Old = PredExpr(D.R);
        BDD::NodeRef New = BDD::Invalid;
        switch (D.Act) {
        case CmppAction::UN:
          New = Mgr.mkAnd(GE, C);
          break;
        case CmppAction::UC:
          New = Mgr.mkAnd(GE, Mgr.mkNot(C));
          break;
        case CmppAction::ON:
          New = Mgr.mkOr(Old, Mgr.mkAnd(GE, C));
          break;
        case CmppAction::OC:
          New = Mgr.mkOr(Old, Mgr.mkAnd(GE, Mgr.mkNot(C)));
          break;
        case CmppAction::AN:
          New = Mgr.mkAnd(Old, Mgr.mkOr(Mgr.mkNot(GE), C));
          break;
        case CmppAction::AC:
          New = Mgr.mkAnd(Old, Mgr.mkOr(Mgr.mkNot(GE), Mgr.mkNot(C)));
          break;
        case CmppAction::None:
          CPR_UNREACHABLE("cmpp destination without action");
        }
        if (New == BDD::Invalid)
          New = Mgr.var(NextVar++);
        PredVal[D.R] = New;
      }
    } else if (Op.getOpcode() == Opcode::Mov && !Op.defs().empty() &&
               Op.defs()[0].R.isPred()) {
      const Operand &Src = Op.srcs()[0];
      BDD::NodeRef SrcE = Src.isImm()
                              ? (Src.getImm() ? BDD::True : BDD::False)
                              : PredExpr(Src.getReg());
      BDD::NodeRef Old = PredExpr(Op.defs()[0].R);
      BDD::NodeRef New = Mgr.ite(GE, SrcE, Old);
      if (New == BDD::Invalid)
        New = Mgr.var(NextVar++);
      PredVal[Op.defs()[0].R] = New;
    }

    if (!Op.isBranch())
      continue;

    // --- Cross a branch: refine the path --------------------------------
    Reg TakenPred = Op.branchPred();
    BDD::NodeRef TakenE = PredExpr(TakenPred);
    BDD::NodeRef NewPathE = Mgr.mkAnd(PathE, Mgr.mkNot(TakenE));
    if (NewPathE == BDD::Invalid)
      NewPathE = Mgr.var(NextVar++);

    // Locate the controlling compare to obtain/install the fall-through
    // predicate register.
    int CmppIdx = B.lastDefBefore(TakenPred, I);
    Reg FallPred;
    bool HaveFall = false;
    bool Exact = false;
    if (CmppIdx >= 0) {
      Operation &Cmpp = Ops[static_cast<size_t>(CmppIdx)];
      bool IsUN = false;
      if (Cmpp.isCmpp())
        for (const DefSlot &D : Cmpp.defs())
          if (D.R == TakenPred && D.Act == CmppAction::UN)
            IsUN = true;
      if (IsUN) {
        ++Stats.BranchesConverted;
        for (const DefSlot &D : Cmpp.defs())
          if (D.Act == CmppAction::UC) {
            FallPred = D.R;
            HaveFall = true;
          }
        bool IsLastOp = I + 1 == Ops.size();
        if (!HaveFall && !IsLastOp) {
          FallPred = F.newReg(RegClass::PR);
          Cmpp.addDef(FallPred, CmppAction::UC);
          PredVal[FallPred] = Mgr.mkAnd(PredExpr(Cmpp.getGuard()),
                                        Mgr.mkNot(CondExpr(Cmpp)));
          ++Stats.CmppDestsAdded;
          HaveFall = true;
        }
        // The fall-through predicate is an exact path register only when
        // the compare's guard expression equals the path expression.
        if (HaveFall)
          Exact = PredVal[FallPred] == NewPathE;
      }
    }

    PathE = NewPathE;
    if (HaveFall && Exact) {
      PathReg = FallPred;
      PathRegExact = true;
    } else if (HaveFall) {
      PathReg = FallPred;
      PathRegExact = false;
    } else {
      PathRegExact = false;
    }
  }
  return Stats;
}

FRPConversionStats cpr::convertFunctionToFRP(Function &F) {
  FRPConversionStats Total;
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I) {
    Block &B = F.block(I);
    if (B.isCompensation())
      continue;
    FRPConversionStats S = convertToFRP(F, B);
    Total.BranchesConverted += S.BranchesConverted;
    Total.CmppDestsAdded += S.CmppDestsAdded;
    Total.GuardsRewritten += S.GuardsRewritten;
    Total.MaterializedConjunctions += S.MaterializedConjunctions;
  }
  return Total;
}

//===- regions/IfConversion.cpp - Hyperblock formation ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/IfConversion.h"

#include "analysis/CFG.h"
#include "analysis/ProfileData.h"
#include "support/Error.h"

using namespace cpr;

namespace {

/// Counts control-flow edges into \p Target across the function.
unsigned countEntries(const Function &F, BlockId Target) {
  unsigned N = 0;
  for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI)
    for (const BlockExit &E : blockExits(F, BI))
      if (E.Target == Target)
        ++N;
  return N;
}

/// True if \p Op may be folded into the region under a guard: pure or a
/// store, unconditional, and not a compare (unconditional cmpp targets
/// write even under a false guard, which would clobber state the
/// not-taken path must preserve).
bool predicable(const Operation &Op) {
  if (!Op.getGuard().isTruePred())
    return false;
  switch (Op.getOpcode()) {
  case Opcode::Cmpp:
  case Opcode::Branch:
  case Opcode::Pbr:
  case Opcode::Halt:
  case Opcode::Trap:
    return false;
  default:
    return true;
  }
}

} // namespace

IfConversionStats cpr::ifConvert(Function &F,
                                 const IfConversionOptions &Opts) {
  IfConversionStats Stats;

  for (size_t PI = 0; PI < F.numBlocks(); ++PI) {
    Block &P = F.block(PI);
    if (P.isCompensation() || PI + 1 >= F.numBlocks())
      continue;
    BlockId JoinId = F.block(PI + 1).getId();

    // Scan for a convertible branch; restart after each conversion (the
    // block changed under us).
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (size_t OI = 0; OI < P.size(); ++OI) {
        const Operation &Br = P.ops()[OI];
        if (!Br.isBranch())
          continue;
        BlockId TargetId = resolveBranchTarget(P, OI);
        if (TargetId == InvalidBlockId || TargetId == P.getId() ||
            TargetId == JoinId)
          continue;
        Block *T = F.blockById(TargetId);
        if (!T || T->isCompensation())
          continue;

        // Profile gate.
        if (Opts.Profile &&
            Opts.Profile->takenRatio(Br.getId()) > Opts.MaxTakenRatio)
          continue;

        // The side block must be singly entered, small, fully predicable,
        // and end with an unconditional branch back to the join block.
        if (countEntries(F, TargetId) != 1)
          continue;
        if (T->size() < 2 || T->size() > Opts.MaxSideOps + 2)
          continue;
        const Operation &TBr = T->ops().back();
        if (!TBr.isBranch() || !TBr.branchPred().isTruePred() ||
            !TBr.getGuard().isTruePred())
          continue;
        if (resolveBranchTarget(*T, T->size() - 1) != JoinId)
          continue;
        const Operation &TPbr = T->ops()[T->size() - 2];
        if (TPbr.getOpcode() != Opcode::Pbr)
          continue;
        bool AllPredicable = true;
        for (size_t I = 0; I + 2 < T->size(); ++I)
          if (!predicable(T->ops()[I]))
            AllPredicable = false;
        if (!AllPredicable)
          continue;

        // The remainder of P must be re-guardable by the fall-through
        // predicate: plain unconditional non-control operations (a halt
        // is fine; it simply becomes guarded).
        bool RestOk = true;
        for (size_t I = OI + 1; I < P.size(); ++I) {
          const Operation &Op = P.ops()[I];
          if (Op.isCmpp() || Op.isBranch() ||
              Op.getOpcode() == Opcode::Pbr ||
              !Op.getGuard().isTruePred()) {
            RestOk = false;
            break;
          }
        }
        if (!RestOk)
          continue;

        // The branch's controlling compare must expose (or gain) a UC
        // fall-through destination.
        Reg Taken = Br.branchPred();
        int CmppIdx = P.lastDefBefore(Taken, OI);
        if (CmppIdx < 0 || !P.ops()[static_cast<size_t>(CmppIdx)].isCmpp())
          continue;
        Operation &Cmpp = P.ops()[static_cast<size_t>(CmppIdx)];
        bool IsUN = false;
        Reg Fall;
        bool HasFall = false;
        for (const DefSlot &D : Cmpp.defs()) {
          if (D.R == Taken && D.Act == CmppAction::UN)
            IsUN = true;
          if (D.Act == CmppAction::UC) {
            Fall = D.R;
            HasFall = true;
          }
        }
        if (!IsUN)
          continue;
        if (!HasFall) {
          Fall = F.newReg(RegClass::PR);
          Cmpp.addDef(Fall, CmppAction::UC);
        }

        // --- Apply -------------------------------------------------------
        // 1. Re-guard the remainder of P by the fall-through predicate.
        for (size_t I = OI + 1; I < P.size(); ++I) {
          P.ops()[I].setGuard(Fall);
          ++Stats.OpsPredicated;
        }
        // 2. Splice T's body (minus its terminator pair) to P's end,
        //    guarded by the taken predicate.
        for (size_t I = 0; I + 2 < T->size(); ++I) {
          Operation Op = T->ops()[I];
          Op.setGuard(Taken);
          P.ops().push_back(std::move(Op));
          ++Stats.OpsPredicated;
        }
        T->ops().clear(); // T is now unreachable and empty
        // 3. Remove the branch and its pbr (the BTR has no other reader:
        //    pbr results are single-use by construction).
        int PbrIdx = P.lastDefBefore(Br.branchTargetReg(), OI);
        P.ops().erase(P.ops().begin() + static_cast<ptrdiff_t>(OI));
        if (PbrIdx >= 0 &&
            P.ops()[static_cast<size_t>(PbrIdx)].getOpcode() == Opcode::Pbr)
          P.ops().erase(P.ops().begin() + PbrIdx);

        ++Stats.BranchesConverted;
        Changed = true;
        break;
      }
    }
  }
  return Stats;
}

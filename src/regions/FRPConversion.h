//===- regions/FRPConversion.h - Fully-resolved predicates ------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// FRP conversion of linear regions (paper Section 4.1 and Figure 6(b->c)).
///
/// In a conventional superblock, operations below a side-exit branch are
/// guarded by their position: they execute only because the branch fell
/// through. FRP conversion makes that guard explicit: each exit branch's
/// controlling compare gains a UC (fall-through) predicate destination,
/// compares are themselves guarded by the path predicate reaching them, and
/// every operation after the branch is re-guarded by the fall-through
/// predicate. Afterwards the branch predicates of the region are mutually
/// exclusive, which converts the chain of branch dependences into a chain
/// of data dependences through the compares -- the precondition for ICBM's
/// height reduction.
///
//===----------------------------------------------------------------------===//

#ifndef REGIONS_FRPCONVERSION_H
#define REGIONS_FRPCONVERSION_H

#include "ir/Function.h"

namespace cpr {

/// Statistics from one conversion.
struct FRPConversionStats {
  unsigned BranchesConverted = 0;
  unsigned CmppDestsAdded = 0;
  unsigned GuardsRewritten = 0;
  unsigned MaterializedConjunctions = 0;
};

/// FRP-converts block \p B of \p F in place.
///
/// Preconditions: every interior branch's taken predicate is produced by a
/// cmpp (with an unconditional target) earlier in the block. Branches whose
/// predicate has no in-block compare definition (or a non-UN definition)
/// terminate the converted prefix: conversion stops there, leaving the
/// remainder of the block untouched (conservative, still correct).
FRPConversionStats convertToFRP(Function &F, Block &B);

/// Converts every non-compensation block of \p F.
FRPConversionStats convertFunctionToFRP(Function &F);

} // namespace cpr

#endif // REGIONS_FRPCONVERSION_H

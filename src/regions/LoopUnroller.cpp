//===- regions/LoopUnroller.cpp - Superblock loop unrolling ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "regions/LoopUnroller.h"

#include "analysis/Liveness.h"
#include "support/Error.h"

#include <unordered_map>

using namespace cpr;

namespace {

/// Remaps a register through the per-copy renaming table.
Reg remap(const std::unordered_map<Reg, Reg> &Map, Reg R) {
  auto It = Map.find(R);
  return It == Map.end() ? R : It->second;
}

} // namespace

UnrollResult cpr::unrollLoop(Function &F, Block &B, unsigned Factor) {
  UnrollResult Res;
  if (Factor < 2) {
    Res.Reason = "unroll factor must be at least 2";
    return Res;
  }
  if (B.size() < 2) {
    Res.Reason = "block too small to be a loop";
    return Res;
  }

  // Recognize the backedge: the final operation must be a branch whose
  // pbr targets this very block.
  const Operation &Back = B.ops().back();
  if (!Back.isBranch()) {
    Res.Reason = "block does not end in a branch";
    return Res;
  }
  int PbrIdx = B.lastDefBefore(Back.branchTargetReg(), B.size() - 1);
  if (PbrIdx < 0 ||
      B.ops()[static_cast<size_t>(PbrIdx)].getOpcode() != Opcode::Pbr) {
    Res.Reason = "backedge target not prepared in the block";
    return Res;
  }
  if (B.ops()[static_cast<size_t>(PbrIdx)].pbrTarget() != B.getId()) {
    Res.Reason = "final branch is not a self backedge";
    return Res;
  }
  // The fall-through successor is where a failed backedge leaves the
  // loop; every replicated backedge test exits there as well.
  int LayoutIdx = F.layoutIndex(B.getId());
  if (LayoutIdx < 0 || static_cast<size_t>(LayoutIdx) + 1 >= F.numBlocks()) {
    Res.Reason = "loop has no fall-through exit block";
    return Res;
  }
  const Block &ExitBlock = F.block(static_cast<size_t>(LayoutIdx) + 1);

  // The backedge predicate must be computed in the block with a UN
  // target, so the copies can branch on its complement... equivalently,
  // the copies keep the same compare but redirect the branch: copy k's
  // "stay in the loop" test becomes "leave if the condition fails", i.e.
  // a branch on a UC destination of the same compare.
  Reg BackPred = Back.branchPred();
  int CmppIdx = B.lastDefBefore(BackPred, B.size() - 1);
  if (CmppIdx < 0 || !B.ops()[static_cast<size_t>(CmppIdx)].isCmpp()) {
    Res.Reason = "backedge predicate has no in-block compare";
    return Res;
  }

  // Registers visible outside the block (live in or out, or observable)
  // must keep their names: renaming exists only to break false
  // dependences between block-local temporaries of different copies.
  std::unordered_map<Reg, bool> Escapes;
  {
    Liveness LV(F);
    for (Reg R : LV.liveIn(B.getId()))
      Escapes[R] = true;
    for (Reg R : LV.liveOut(B.getId()))
      Escapes[R] = true;
    for (Reg R : F.observableRegs())
      Escapes[R] = true;
  }

  std::vector<Operation> Body = B.ops();
  std::vector<Operation> Out;
  Out.reserve(Body.size() * Factor);

  // Induction variables: escaping GPRs whose only definition in the body
  // is a single unguarded "r = add(r, C)" / "r = sub(r, C)". Their
  // updates are strength-reduced: non-final copies drop the update and
  // materialize "r + k*C" offsets at uses instead, so the copies' address
  // arithmetic stays parallel (as in the paper's IMPACT-prepared unrolled
  // code); the final copy applies one cumulative update.
  struct Induction {
    size_t DefIdx;
    int64_t Step;
  };
  std::unordered_map<Reg, Induction> Inductions;
  {
    std::unordered_map<Reg, unsigned> DefCount;
    for (const Operation &Op : Body)
      for (const DefSlot &D : Op.defs())
        ++DefCount[D.R];
    for (size_t I = 0; I < Body.size(); ++I) {
      const Operation &Op = Body[I];
      if ((Op.getOpcode() != Opcode::Add && Op.getOpcode() != Opcode::Sub) ||
          !Op.getGuard().isTruePred() || Op.defs().size() != 1)
        continue;
      Reg R = Op.defs()[0].R;
      if (R.getClass() != RegClass::GPR || !Escapes.count(R) ||
          DefCount[R] != 1)
        continue;
      if (Op.srcs().size() != 2 || !Op.srcs()[0].isReg() ||
          Op.srcs()[0].getReg() != R || !Op.srcs()[1].isImm())
        continue;
      int64_t Step = Op.srcs()[1].getImm();
      if (Op.getOpcode() == Opcode::Sub)
        Step = -Step;
      Inductions[R] = Induction{I, Step};
    }
  }
  // Accumulated offset of each induction variable relative to its value
  // at loop entry, and the materialized "base + offset" registers.
  std::unordered_map<Reg, int64_t> Pending;
  std::unordered_map<Reg, std::unordered_map<int64_t, Reg>> OffsetRegs;

  // Running renaming: register -> current name. Starts empty (copy 0 uses
  // original names). Each copy renames the registers it defines; uses read
  // the previous copy's names.
  std::unordered_map<Reg, Reg> Names;

  for (unsigned Copy = 0; Copy < Factor; ++Copy) {
    bool Last = Copy + 1 == Factor;
    for (size_t I = 0; I < Body.size(); ++I) {
      bool IsBackedgeBranch = I + 1 == Body.size();
      bool IsBackedgePbr = static_cast<int>(I) == PbrIdx;
      Operation Op = Body[I];
      Op.setId(Copy == 0 ? Op.getId() : F.newOpId());

      // Induction update handling: non-final copies drop the update and
      // accumulate the offset; the final copy applies the total.
      {
        bool IsInductionDef = false;
        for (const auto &[R, Ind] : Inductions)
          if (Ind.DefIdx == I) {
            IsInductionDef = true;
            if (!Last) {
              Pending[R] += Ind.Step;
            } else {
              int64_t Total = Pending[R] + Ind.Step;
              Op = F.makeOp(Opcode::Add);
              Op.setId(Copy == 0 ? Body[I].getId() : Op.getId());
              Op.addDef(R);
              Op.addSrc(Operand::reg(R));
              Op.addSrc(Operand::imm(Total));
              Pending[R] = 0;
              OffsetRegs[R].clear();
            }
            break;
          }
        if (IsInductionDef && !Last)
          continue; // dropped; offsets carry the effect
      }

      // Rewire uses through the current renaming, materializing
      // base+offset registers for induction variables with a pending
      // offset.
      Op.setGuard(remap(Names, Op.getGuard()));
      for (Operand &S : Op.srcs()) {
        if (!S.isReg())
          continue;
        Reg R = S.getReg();
        auto IndIt = Inductions.find(R);
        if (IndIt != Inductions.end() && Pending[R] != 0) {
          int64_t Off = Pending[R];
          auto [OffIt, Inserted] = OffsetRegs[R].try_emplace(Off, Reg());
          if (Inserted) {
            OffIt->second = F.newReg(RegClass::GPR);
            Operation Mat = F.makeOp(Opcode::Add);
            Mat.addDef(OffIt->second);
            Mat.addSrc(Operand::reg(R));
            Mat.addSrc(Operand::imm(Off));
            Out.push_back(std::move(Mat));
          }
          S = Operand::reg(OffIt->second);
          continue;
        }
        S = Operand::reg(remap(Names, R));
      }

      // Non-final copies: the backedge pair becomes a side exit taken
      // when the loop condition FAILS. Realized by branching on the UC
      // complement of the backedge compare (added below if missing).
      if (!Last && IsBackedgePbr) {
        Op.srcs()[0] = Operand::label(ExitBlock.getId());
      }
      if (!Last && IsBackedgeBranch) {
        // The copy's exit condition is the *complement* of the backedge
        // test. ICBM's suitability test requires branch predicates to be
        // computed by an unconditional-normal (UN) compare target, so a
        // fresh inverted-sense compare is emitted rather than branching
        // on a UC complement of the original.
        Reg Pred = Op.branchPred();
        int DefIdx = -1;
        for (size_t J = Out.size(); J-- > 0;)
          if (Out[J].definesReg(Pred)) {
            DefIdx = static_cast<int>(J);
            break;
          }
        if (DefIdx < 0 || !Out[static_cast<size_t>(DefIdx)].isCmpp()) {
          Res.Reason = "renamed backedge compare not found";
          return Res;
        }
        const Operation &Cmpp = Out[static_cast<size_t>(DefIdx)];
        Reg ExitPred = F.newReg(RegClass::PR);
        Operation ExitCmpp = F.makeOp(Opcode::Cmpp);
        ExitCmpp.setGuard(Cmpp.getGuard());
        ExitCmpp.setFrpGuard(Cmpp.isFrpGuard());
        ExitCmpp.setCond(invertCompareCond(Cmpp.getCond()));
        ExitCmpp.addDef(ExitPred, CmppAction::UN);
        for (const Operand &S : Cmpp.srcs())
          ExitCmpp.addSrc(S);
        Out.push_back(std::move(ExitCmpp));
        Op.srcs()[0] = Operand::reg(ExitPred);
      }

      // Rename definitions. Only *unconditional* writes may take a fresh
      // per-copy name; a guarded or wired definition merges with the
      // register's previous value, so it must keep the current name (the
      // renaming exists to break false dependences, and keeping a name is
      // always correct, merely less parallel).
      for (DefSlot &D : Op.defs()) {
        bool Unconditional =
            Op.isCmpp()
                ? (D.Act == CmppAction::UN || D.Act == CmppAction::UC)
                : Op.getGuard().isTruePred();
        if (Copy == 0) {
          Names[D.R] = D.R;
          continue;
        }
        if (Unconditional && !Escapes.count(D.R)) {
          Reg NewName = F.newReg(D.R.getClass());
          Names[D.R] = NewName;
          D.R = NewName;
        } else {
          D.R = remap(Names, D.R);
        }
      }
      Out.push_back(std::move(Op));
    }
  }

  B.ops() = std::move(Out);
  Res.Unrolled = true;
  return Res;
}

//===- regions/LoopUnroller.h - Superblock loop unrolling -------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unrolls single-block loops. The paper's evaluation consumes unrolled
/// superblock loops (its strcpy example is unrolled four times by the
/// IMPACT baseline before ICBM sees it); this pass provides that
/// preparation for loops written at unroll factor one.
///
/// A candidate loop is one block whose final operation is a backedge
/// branch to itself (with its pbr and controlling compare in the block).
/// Unrolling replicates the body, renaming every register defined in the
/// body per copy and rewiring uses to the most recent definition, so
/// loop-carried values flow copy to copy. Each copy's backedge test turns
/// into a side exit that leaves the loop when the original condition
/// fails (branching to the loop's layout successor via a fresh exit
/// trampoline); the final copy keeps the backedge.
///
//===----------------------------------------------------------------------===//

#ifndef REGIONS_LOOPUNROLLER_H
#define REGIONS_LOOPUNROLLER_H

#include "ir/Function.h"

namespace cpr {

/// Result of an unrolling attempt.
struct UnrollResult {
  bool Unrolled = false;
  std::string Reason; ///< why unrolling was refused (when !Unrolled)
};

/// Tries to unroll the self-loop block \p B of \p F by \p Factor.
/// Returns why it could not when the block does not match the supported
/// shape. \p Factor must be at least 2.
UnrollResult unrollLoop(Function &F, Block &B, unsigned Factor);

} // namespace cpr

#endif // REGIONS_LOOPUNROLLER_H

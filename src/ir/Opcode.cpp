//===- ir/Opcode.cpp - Operation opcodes and traits -----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Opcode.h"

#include "support/Error.h"

#include <cstring>

using namespace cpr;

namespace {
struct OpcodeInfo {
  const char *Name;
  UnitKind Unit;
  bool SideEffects;
  bool Control;
};

// Indexed by Opcode value; order must match the enum.
constexpr OpcodeInfo Infos[NumOpcodes] = {
    {"add", UnitKind::Int, false, false},
    {"sub", UnitKind::Int, false, false},
    {"mul", UnitKind::Int, false, false},
    {"div", UnitKind::Int, false, false},
    {"rem", UnitKind::Int, false, false},
    {"and", UnitKind::Int, false, false},
    {"or", UnitKind::Int, false, false},
    {"xor", UnitKind::Int, false, false},
    {"shl", UnitKind::Int, false, false},
    {"shr", UnitKind::Int, false, false},
    {"min", UnitKind::Int, false, false},
    {"max", UnitKind::Int, false, false},
    {"mov", UnitKind::Int, false, false},
    {"fadd", UnitKind::Float, false, false},
    {"fsub", UnitKind::Float, false, false},
    {"fmul", UnitKind::Float, false, false},
    {"fdiv", UnitKind::Float, false, false},
    {"load", UnitKind::Mem, false, false},
    {"store", UnitKind::Mem, true, false},
    {"cmpp", UnitKind::Int, false, false},
    {"pbr", UnitKind::Branch, false, false},
    {"branch", UnitKind::Branch, true, true},
    {"halt", UnitKind::Branch, true, true},
    {"trap", UnitKind::Branch, true, true},
    {"nop", UnitKind::Int, false, false},
};
} // namespace

const char *cpr::opcodeName(Opcode Opc) {
  return Infos[static_cast<unsigned>(Opc)].Name;
}

std::optional<Opcode> cpr::parseOpcode(const char *Name) {
  for (unsigned I = 0; I < NumOpcodes; ++I)
    if (std::strcmp(Infos[I].Name, Name) == 0)
      return static_cast<Opcode>(I);
  return std::nullopt;
}

UnitKind cpr::opcodeUnit(Opcode Opc) {
  return Infos[static_cast<unsigned>(Opc)].Unit;
}

bool cpr::opcodeHasSideEffects(Opcode Opc) {
  return Infos[static_cast<unsigned>(Opc)].SideEffects;
}

bool cpr::opcodeIsControl(Opcode Opc) {
  return Infos[static_cast<unsigned>(Opc)].Control;
}

bool cpr::opcodeIsIntArith(Opcode Opc) {
  return Opc >= Opcode::Add && Opc <= Opcode::Max;
}

bool cpr::opcodeIsFloatArith(Opcode Opc) {
  return Opc >= Opcode::FAdd && Opc <= Opcode::FDiv;
}

//===- ir/IRParser.cpp - Textual IR input ---------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRParser.h"

#include "ir/IRPrinter.h"
#include "support/Error.h"

#include <cctype>
#include <cstdlib>

using namespace cpr;

namespace {

/// Token kinds of the IR text format.
enum class Tok : uint8_t {
  Ident,   // func, block, add, Loop, r21, T, m1 ...
  Integer, // 42, -7
  At,      // @
  LBrace,
  RBrace,
  LParen,
  RParen,
  Comma,
  Colon,
  Dot,
  Equal,
  Eof,
};

struct Token {
  Tok Kind;
  std::string Text;
  unsigned Line;
};

/// Hand-written tokenizer; ';' starts a comment until end of line.
class Lexer {
public:
  explicit Lexer(const std::string &Text) : Text(Text) {}

  Token next() {
    skipWhitespaceAndComments();
    if (Pos >= Text.size())
      return {Tok::Eof, "", Line};
    char C = Text[Pos];
    unsigned StartLine = Line;
    auto Single = [&](Tok K) {
      ++Pos;
      return Token{K, std::string(1, C), StartLine};
    };
    switch (C) {
    case '@':
      return Single(Tok::At);
    case '{':
      return Single(Tok::LBrace);
    case '}':
      return Single(Tok::RBrace);
    case '(':
      return Single(Tok::LParen);
    case ')':
      return Single(Tok::RParen);
    case ',':
      return Single(Tok::Comma);
    case ':':
      return Single(Tok::Colon);
    case '.':
      return Single(Tok::Dot);
    case '=':
      return Single(Tok::Equal);
    default:
      break;
    }
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      ++Pos;
      while (Pos < Text.size() &&
             std::isdigit(static_cast<unsigned char>(Text[Pos])))
        ++Pos;
      return {Tok::Integer, Text.substr(Start, Pos - Start), StartLine};
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Text.size() &&
             (std::isalnum(static_cast<unsigned char>(Text[Pos])) ||
              Text[Pos] == '_'))
        ++Pos;
      return {Tok::Ident, Text.substr(Start, Pos - Start), StartLine};
    }
    return {Tok::Eof, std::string("<bad char '") + C + "'>", StartLine};
  }

private:
  void skipWhitespaceAndComments() {
    while (Pos < Text.size()) {
      char C = Text[Pos];
      if (C == '\n') {
        ++Line;
        ++Pos;
      } else if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
      } else if (C == ';') {
        while (Pos < Text.size() && Text[Pos] != '\n')
          ++Pos;
      } else {
        break;
      }
    }
  }

  const std::string &Text;
  size_t Pos = 0;
  unsigned Line = 1;
};

/// Recursive-descent parser over the token stream.
class Parser {
public:
  explicit Parser(const std::string &Text) : Lex(Text) { advance(); }

  ParseResult run() {
    parseFunctionBody();
    ParseResult R;
    if (!ErrorMsg.empty()) {
      R.Error = ErrorMsg;
      R.Line = ErrorLine;
      return R;
    }
    R.Func = std::move(F);
    return R;
  }

private:
  void advance() { Cur = Lex.next(); }

  bool failed() const { return !ErrorMsg.empty(); }

  void error(const std::string &Msg) {
    if (ErrorMsg.empty()) {
      ErrorMsg = Msg + " (got '" + Cur.Text + "')";
      ErrorLine = Cur.Line;
    }
  }

  bool expect(Tok K, const char *What) {
    if (failed())
      return false;
    if (Cur.Kind != K) {
      error(std::string("expected ") + What);
      return false;
    }
    advance();
    return true;
  }

  std::string expectIdent(const char *What) {
    if (Cur.Kind != Tok::Ident) {
      error(std::string("expected ") + What);
      return "";
    }
    std::string S = Cur.Text;
    advance();
    return S;
  }

  /// Parses a register name: T, r21, p61, f3, b41.
  Reg parseReg() {
    if (Cur.Kind != Tok::Ident) {
      error("expected register");
      return Reg();
    }
    const std::string &S = Cur.Text;
    Reg R;
    if (S == "T") {
      R = Reg::truePred();
    } else {
      RegClass RC;
      switch (S[0]) {
      case 'r':
        RC = RegClass::GPR;
        break;
      case 'f':
        RC = RegClass::FPR;
        break;
      case 'p':
        RC = RegClass::PR;
        break;
      case 'b':
        RC = RegClass::BTR;
        break;
      default:
        error("expected register");
        return Reg();
      }
      if (S.size() < 2) {
        error("register needs a numeric id");
        return Reg();
      }
      for (size_t I = 1; I < S.size(); ++I)
        if (!std::isdigit(static_cast<unsigned char>(S[I]))) {
          error("register needs a numeric id");
          return Reg();
        }
      R = Reg(RC, static_cast<uint32_t>(std::strtoul(S.c_str() + 1, nullptr,
                                                     10)));
    }
    advance();
    F->reserveRegId(R);
    return R;
  }

  void parseFunctionBody() {
    if (Cur.Kind == Tok::Ident && Cur.Text == "func")
      advance();
    else {
      error("expected 'func'");
      return;
    }
    expect(Tok::At, "'@'");
    std::string Name = expectIdent("function name");
    if (failed())
      return;
    F = std::make_unique<Function>(Name);
    expect(Tok::LBrace, "'{'");

    // Blocks were pre-collected by run()'s caller path; do it lazily here
    // by rescanning the raw text is not possible, so collectBlocks was
    // invoked from the constructor path instead. See parseFunction().
    for (const std::string &BN : PendingBlocks)
      if (!F->blockByName(BN))
        F->addBlock(BN);

    // Optional observable list.
    if (Cur.Kind == Tok::Ident && Cur.Text == "observable") {
      advance();
      while (!failed()) {
        Reg R = parseReg();
        if (failed())
          return;
        F->observableRegs().push_back(R);
        if (Cur.Kind != Tok::Comma)
          break;
        advance();
      }
    }

    Block *CurBlock = nullptr;
    while (!failed() && Cur.Kind != Tok::RBrace && Cur.Kind != Tok::Eof) {
      if (Cur.Kind == Tok::Ident && Cur.Text == "block") {
        advance();
        expect(Tok::At, "'@'");
        std::string BName = expectIdent("block name");
        expect(Tok::Colon, "':'");
        if (failed())
          return;
        CurBlock = F->blockByName(BName);
        if (!CurBlock) {
          error("unknown block @" + BName);
          return;
        }
        if (Cur.Kind == Tok::Ident && Cur.Text == "compensation") {
          CurBlock->setCompensation(true);
          advance();
        }
        continue;
      }
      if (!CurBlock) {
        error("operation outside any block");
        return;
      }
      parseOperation(*CurBlock);
    }
    expect(Tok::RBrace, "'}'");
  }

  /// Parses "[defs =] mnemonic[.decor](operands) [if guard]".
  void parseOperation(Block &B) {
    std::vector<DefSlot> Defs;
    std::vector<std::string> Mnemonic; // dot-separated parts
    // Lookahead problem: "r21 = add(...)" vs "halt". Parse first ident,
    // then decide by the following token.
    std::string First = expectIdent("operation");
    if (failed())
      return;

    bool HasDefs = false;
    if (Cur.Kind == Tok::Equal || Cur.Kind == Tok::Comma ||
        Cur.Kind == Tok::Colon)
      HasDefs = true;

    if (HasDefs) {
      // Re-interpret First as the first destination register.
      Reg D = identToReg(First);
      if (failed())
        return;
      CmppAction Act = CmppAction::None;
      if (Cur.Kind == Tok::Colon) {
        advance();
        std::string ActName = expectIdent("action specifier");
        auto A = parseCmppAction(ActName.c_str());
        if (!A) {
          error("unknown action '" + ActName + "'");
          return;
        }
        Act = *A;
      }
      Defs.push_back(DefSlot{D, Act});
      while (Cur.Kind == Tok::Comma) {
        advance();
        Reg D2 = parseReg();
        if (failed())
          return;
        CmppAction Act2 = CmppAction::None;
        if (Cur.Kind == Tok::Colon) {
          advance();
          std::string ActName = expectIdent("action specifier");
          auto A = parseCmppAction(ActName.c_str());
          if (!A) {
            error("unknown action '" + ActName + "'");
            return;
          }
          Act2 = *A;
        }
        Defs.push_back(DefSlot{D2, Act2});
      }
      expect(Tok::Equal, "'='");
      First = expectIdent("operation mnemonic");
      if (failed())
        return;
    }

    Mnemonic.push_back(First);
    while (Cur.Kind == Tok::Dot) {
      advance();
      Mnemonic.push_back(expectIdent("mnemonic suffix"));
      if (failed())
        return;
    }

    auto Opc = parseOpcode(Mnemonic[0].c_str());
    if (!Opc) {
      error("unknown opcode '" + Mnemonic[0] + "'");
      return;
    }

    Operation Op = F->makeOp(*Opc);
    for (const DefSlot &D : Defs)
      Op.addDef(D.R, D.Act);

    // Decorations: cmpp condition, memory alias class.
    for (size_t I = 1; I < Mnemonic.size(); ++I) {
      const std::string &Part = Mnemonic[I];
      if (auto C = parseCompareCond(Part.c_str())) {
        Op.setCond(*C);
        continue;
      }
      if (Part.size() >= 2 && Part[0] == 'm') {
        Op.setAliasClass(
            static_cast<uint8_t>(std::strtoul(Part.c_str() + 1, nullptr, 10)));
        continue;
      }
      error("unknown mnemonic suffix '" + Part + "'");
      return;
    }

    // Operand list.
    if (Cur.Kind == Tok::LParen) {
      advance();
      if (Cur.Kind != Tok::RParen) {
        while (!failed()) {
          parseSrcOperand(Op);
          if (Cur.Kind != Tok::Comma)
            break;
          advance();
        }
      }
      expect(Tok::RParen, "')'");
    }

    // Optional guard.
    if (Cur.Kind == Tok::Ident && Cur.Text == "if") {
      advance();
      Reg G = parseReg();
      if (failed())
        return;
      if (!G.isPred()) {
        error("guard must be a predicate register");
        return;
      }
      Op.setGuard(G);
      if (Cur.Kind == Tok::Ident && Cur.Text == "frp") {
        Op.setFrpGuard(true);
        advance();
      }
    }
    if (!failed())
      B.ops().push_back(std::move(Op));
  }

  void parseSrcOperand(Operation &Op) {
    if (Cur.Kind == Tok::Integer) {
      Op.addSrc(Operand::imm(std::strtoll(Cur.Text.c_str(), nullptr, 10)));
      advance();
      return;
    }
    if (Cur.Kind == Tok::At) {
      advance();
      std::string Name = expectIdent("block label");
      if (failed())
        return;
      Block *Target = F->blockByName(Name);
      if (!Target) {
        error("unknown block @" + Name);
        return;
      }
      Op.addSrc(Operand::label(Target->getId()));
      return;
    }
    Reg R = parseReg();
    if (!failed())
      Op.addSrc(Operand::reg(R));
  }

  /// Converts an already-consumed identifier to a register.
  Reg identToReg(const std::string &S) {
    if (S == "T")
      return Reg::truePred();
    if (S.size() < 2) {
      error("expected register, got '" + S + "'");
      return Reg();
    }
    RegClass RC;
    switch (S[0]) {
    case 'r':
      RC = RegClass::GPR;
      break;
    case 'f':
      RC = RegClass::FPR;
      break;
    case 'p':
      RC = RegClass::PR;
      break;
    case 'b':
      RC = RegClass::BTR;
      break;
    default:
      error("expected register, got '" + S + "'");
      return Reg();
    }
    for (size_t I = 1; I < S.size(); ++I)
      if (!std::isdigit(static_cast<unsigned char>(S[I]))) {
        error("expected register, got '" + S + "'");
        return Reg();
      }
    Reg R(RC, static_cast<uint32_t>(std::strtoul(S.c_str() + 1, nullptr, 10)));
    F->reserveRegId(R);
    return R;
  }

public:
  /// Block names discovered by a pre-scan, applied when F is created.
  std::vector<std::string> PendingBlocks;

private:
  Lexer Lex;
  Token Cur{Tok::Eof, "", 0};
  std::unique_ptr<Function> F;
  std::string ErrorMsg;
  unsigned ErrorLine = 0;
};

} // namespace

ParseResult cpr::parseFunction(const std::string &Text) {
  // Pre-scan for block declarations so labels can reference blocks forward.
  Lexer Pre(Text);
  std::vector<std::string> BlockNames;
  Token T = Pre.next();
  while (T.Kind != Tok::Eof) {
    if (T.Kind == Tok::Ident && T.Text == "block") {
      Token AtTok = Pre.next();
      Token NameTok = Pre.next();
      if (AtTok.Kind == Tok::At && NameTok.Kind == Tok::Ident)
        BlockNames.push_back(NameTok.Text);
      T = Pre.next();
      continue;
    }
    T = Pre.next();
  }
  for (size_t I = 0; I < BlockNames.size(); ++I)
    for (size_t J = I + 1; J < BlockNames.size(); ++J)
      if (BlockNames[I] == BlockNames[J]) {
        ParseResult R;
        R.Error = "duplicate block @" + BlockNames[I];
        R.Line = 1;
        return R;
      }

  Parser P(Text);
  P.PendingBlocks = std::move(BlockNames);
  return P.run();
}

std::unique_ptr<Function> cpr::parseFunctionOrDie(const std::string &Text) {
  ParseResult R = parseFunction(Text);
  if (!R)
    reportFatalError("IR parse error at line " + std::to_string(R.Line) +
                     ": " + R.Error);
  return std::move(R.Func);
}

//===- ir/Verifier.h - Structural IR validity checks ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural validity checks for IR functions. The verifier runs after
/// construction, after parsing, and between every transformation phase in
/// tests; it is the first line of defense against malformed rewrites.
///
//===----------------------------------------------------------------------===//

#ifndef IR_VERIFIER_H
#define IR_VERIFIER_H

#include "ir/Function.h"

#include <string>
#include <vector>

namespace cpr {

class DiagnosticEngine;

/// Verifies structural invariants of \p F:
///  - the function has an entry block;
///  - operation ids are unique and valid;
///  - guards are predicate registers; the opcode-specific shapes of
///    destinations and sources hold (classes, counts, cmpp actions);
///  - label operands reference existing blocks;
///  - every branch's BTR operand has a defining pbr earlier in its block;
///  - moves to predicate registers use a 0/1 immediate or a PR source.
///
/// \returns the list of violations (empty when valid).
std::vector<std::string> verifyFunction(const Function &F);

/// Aborts with a diagnostic if \p F fails verification. \p Context is
/// included in the message (e.g. the phase that just ran).
void verifyOrDie(const Function &F, const std::string &Context);

/// Reports *every* verifier violation of \p F into \p Diags as an
/// error-severity VerifyFailed diagnostic at \p Site, so one run shows
/// the complete list instead of stopping at the first (cpr-lint and
/// `cprc --fail-safe` both rely on this). \p Context names the phase.
/// Returns the number of violations reported.
unsigned reportVerification(const Function &F, DiagnosticEngine &Diags,
                            const std::string &Context,
                            const std::string &Site = "ir.verify");

} // namespace cpr

#endif // IR_VERIFIER_H

//===- ir/IRParser.h - Textual IR input -------------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parses the textual IR format produced by IRPrinter. Used heavily by
/// tests: transformation inputs can be written as readable listings instead
/// of builder call chains. The parser reports the first error with a line
/// number; it does not run the verifier (callers do).
///
//===----------------------------------------------------------------------===//

#ifndef IR_IRPARSER_H
#define IR_IRPARSER_H

#include "ir/Function.h"

#include <memory>
#include <string>

namespace cpr {

/// Result of parsing: a function on success, otherwise an error message.
struct ParseResult {
  std::unique_ptr<Function> Func;
  std::string Error; ///< empty on success
  unsigned Line = 0; ///< 1-based line of the first error

  explicit operator bool() const { return Func != nullptr; }
};

/// Parses one function from \p Text.
ParseResult parseFunction(const std::string &Text);

/// Parses one function or aborts with a diagnostic. For tests.
std::unique_ptr<Function> parseFunctionOrDie(const std::string &Text);

} // namespace cpr

#endif // IR_IRPARSER_H

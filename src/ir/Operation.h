//===- ir/Operation.h - Predicated EPIC operations --------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A single predicated PlayDoh-style operation. Every operation carries a
/// guard predicate register (p0 = "if T" for unpredicated code). Compare
/// operations (cmpp) have up to two predicate destinations, each with an
/// action specifier (Table 1 of the paper); all other operations have plain
/// destinations. Memory operations carry an alias class: two memory
/// operations with different nonzero alias classes are known independent,
/// which is how workload builders communicate the memory disambiguation the
/// paper's separability discussion depends on.
///
//===----------------------------------------------------------------------===//

#ifndef IR_OPERATION_H
#define IR_OPERATION_H

#include "ir/CmppAction.h"
#include "ir/CompareCond.h"
#include "ir/Opcode.h"
#include "ir/Operand.h"
#include "ir/Register.h"

#include <cassert>
#include <string>
#include <vector>

namespace cpr {

/// Unique (per Function) operation identifier. Ids survive code motion, so
/// profile data keyed by id remains valid across transformation.
using OpId = uint32_t;

/// An invalid operation id.
inline constexpr OpId InvalidOpId = 0;

/// One destination of an operation. For cmpp destinations \c Act selects
/// the Table 1 action; for all other operations \c Act is None.
struct DefSlot {
  Reg R;
  CmppAction Act = CmppAction::None;

  bool operator==(const DefSlot &O) const { return R == O.R && Act == O.Act; }
};

/// A single predicated operation.
class Operation {
public:
  Operation() = default;
  Operation(OpId Id, Opcode Opc) : Id(Id), Opc(Opc) {}

  OpId getId() const { return Id; }
  void setId(OpId NewId) { Id = NewId; }

  Opcode getOpcode() const { return Opc; }

  /// The guard predicate; p0 means "always execute" ("if T").
  Reg getGuard() const { return Guard; }
  void setGuard(Reg G) {
    assert(G.isPred() && "guard must be a predicate register");
    Guard = G;
  }

  const std::vector<DefSlot> &defs() const { return Defs; }
  std::vector<DefSlot> &defs() { return Defs; }
  const std::vector<Operand> &srcs() const { return Srcs; }
  std::vector<Operand> &srcs() { return Srcs; }

  void addDef(Reg R, CmppAction Act = CmppAction::None) {
    Defs.push_back(DefSlot{R, Act});
  }
  void addSrc(Operand O) { Srcs.push_back(O); }

  CompareCond getCond() const { return Cond; }
  void setCond(CompareCond C) { Cond = C; }

  /// Alias class of a memory operation. Class 0 conservatively aliases
  /// everything; two different nonzero classes never alias.
  uint8_t getAliasClass() const { return AliasClass; }
  void setAliasClass(uint8_t AC) { AliasClass = AC; }

  /// True when the guard was installed by FRP conversion on an operation
  /// whose execution condition was purely positional (guard T, below a
  /// branch). Promoting such a guard back to T faithfully mirrors the
  /// original code (paper Section 6), so predicate speculation may do it
  /// without a liveness proof.
  bool isFrpGuard() const { return FrpGuard; }
  void setFrpGuard(bool V) { FrpGuard = V; }

  bool isCmpp() const { return Opc == Opcode::Cmpp; }
  bool isBranch() const { return Opc == Opcode::Branch; }
  bool isLoad() const { return Opc == Opcode::Load; }
  bool isStore() const { return Opc == Opcode::Store; }

  /// Returns true for operations that terminate or may transfer control.
  bool isControl() const { return opcodeIsControl(Opc); }

  /// Returns true for operations with side effects (stores, control).
  bool hasSideEffects() const { return opcodeHasSideEffects(Opc); }

  /// For a Branch: the predicate register whose truth makes it take.
  Reg branchPred() const {
    assert(isBranch() && Srcs.size() == 2 && Srcs[0].isReg());
    return Srcs[0].getReg();
  }

  /// For a Branch: the branch-target register operand.
  Reg branchTargetReg() const {
    assert(isBranch() && Srcs.size() == 2 && Srcs[1].isReg());
    return Srcs[1].getReg();
  }

  /// For a Pbr: the target block label.
  BlockId pbrTarget() const {
    assert(Opc == Opcode::Pbr && Srcs.size() == 1 && Srcs[0].isLabel());
    return Srcs[0].getLabel();
  }

  /// Returns true if \p R appears among the destinations.
  bool definesReg(Reg R) const {
    for (const DefSlot &D : Defs)
      if (D.R == R)
        return true;
    return false;
  }

  /// Returns true if \p R appears among the sources or as the guard.
  bool readsReg(Reg R) const {
    if (Guard == R)
      return true;
    for (const Operand &S : Srcs)
      if (S.isReg() && S.getReg() == R)
        return true;
    return false;
  }

private:
  OpId Id = InvalidOpId;
  Opcode Opc = Opcode::Nop;
  Reg Guard = Reg::truePred();
  std::vector<DefSlot> Defs;
  std::vector<Operand> Srcs;
  CompareCond Cond = CompareCond::None;
  uint8_t AliasClass = 0;
  bool FrpGuard = false;
};

} // namespace cpr

#endif // IR_OPERATION_H

//===- ir/Operand.h - Operation source operands -----------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source operands of IR operations: a register, a signed immediate, or a
/// block label (used by pbr). A small tagged value type.
///
//===----------------------------------------------------------------------===//

#ifndef IR_OPERAND_H
#define IR_OPERAND_H

#include "ir/Register.h"

#include <cassert>
#include <cstdint>

namespace cpr {

/// Identifies a Block within a Function. Stable across block reordering.
using BlockId = uint32_t;

/// An invalid block id.
inline constexpr BlockId InvalidBlockId = ~0u;

/// A source operand: register, immediate, or block label.
class Operand {
public:
  enum class Kind : uint8_t { Register, Imm, Label };

  Operand() : K(Kind::Imm), ImmVal(0) {}

  static Operand reg(Reg R) {
    Operand O;
    O.K = Kind::Register;
    O.R = R;
    return O;
  }
  static Operand imm(int64_t V) {
    Operand O;
    O.K = Kind::Imm;
    O.ImmVal = V;
    return O;
  }
  static Operand label(BlockId B) {
    Operand O;
    O.K = Kind::Label;
    O.LabelVal = B;
    return O;
  }

  Kind kind() const { return K; }
  bool isReg() const { return K == Kind::Register; }
  bool isImm() const { return K == Kind::Imm; }
  bool isLabel() const { return K == Kind::Label; }

  Reg getReg() const {
    assert(isReg() && "not a register operand");
    return R;
  }
  int64_t getImm() const {
    assert(isImm() && "not an immediate operand");
    return ImmVal;
  }
  BlockId getLabel() const {
    assert(isLabel() && "not a label operand");
    return LabelVal;
  }

  bool operator==(const Operand &O) const {
    if (K != O.K)
      return false;
    switch (K) {
    case Kind::Register:
      return R == O.R;
    case Kind::Imm:
      return ImmVal == O.ImmVal;
    case Kind::Label:
      return LabelVal == O.LabelVal;
    }
    return false;
  }
  bool operator!=(const Operand &O) const { return !(*this == O); }

private:
  Kind K;
  Reg R;
  union {
    int64_t ImmVal;
    BlockId LabelVal;
  };
};

} // namespace cpr

#endif // IR_OPERAND_H

//===- ir/Verifier.cpp - Structural IR validity checks --------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Verifier.h"

#include "ir/IRPrinter.h"
#include "support/Diagnostic.h"
#include "support/Error.h"

#include <unordered_set>

using namespace cpr;

namespace {

/// Collects violations for one function.
class VerifierImpl {
public:
  explicit VerifierImpl(const Function &F) : F(F) {}

  std::vector<std::string> run() {
    if (F.numBlocks() == 0) {
      error(nullptr, nullptr, "function has no blocks");
      return std::move(Errors);
    }
    std::unordered_set<OpId> SeenIds;
    for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
      const Block &B = F.block(BI);
      for (size_t OI = 0, OE = B.size(); OI != OE; ++OI) {
        const Operation &Op = B.ops()[OI];
        if (Op.getId() == InvalidOpId)
          error(&B, &Op, "operation has invalid id");
        else if (!SeenIds.insert(Op.getId()).second)
          error(&B, &Op, "duplicate operation id");
        checkOp(B, OI, Op);
      }
    }
    for (Reg R : F.observableRegs())
      if (R.getClass() != RegClass::GPR)
        error(nullptr, nullptr, "observable register is not a GPR");
    return std::move(Errors);
  }

private:
  void error(const Block *B, const Operation *Op, const std::string &Msg) {
    std::string Out = Msg;
    if (B)
      Out += " in block @" + B->getName();
    if (Op)
      Out += ": " + printOperation(F, *Op);
    Errors.push_back(Out);
  }

  void expectDefs(const Block &B, const Operation &Op, size_t N,
                  RegClass RC) {
    if (Op.defs().size() != N) {
      error(&B, &Op, "wrong destination count");
      return;
    }
    for (const DefSlot &D : Op.defs()) {
      if (D.R.getClass() != RC)
        error(&B, &Op, "destination has wrong register class");
      if (!Op.isCmpp() && D.Act != CmppAction::None)
        error(&B, &Op, "non-cmpp destination carries an action");
    }
  }

  void expectSrcReg(const Block &B, const Operation &Op, size_t I,
                    RegClass RC) {
    if (I >= Op.srcs().size() || !Op.srcs()[I].isReg() ||
        Op.srcs()[I].getReg().getClass() != RC)
      error(&B, &Op, "source " + std::to_string(I) +
                         " must be a register of the right class");
  }

  /// GPR register or immediate.
  void expectSrcValue(const Block &B, const Operation &Op, size_t I,
                      RegClass RC) {
    if (I >= Op.srcs().size()) {
      error(&B, &Op, "missing source operand");
      return;
    }
    const Operand &S = Op.srcs()[I];
    if (S.isLabel() || (S.isReg() && S.getReg().getClass() != RC))
      error(&B, &Op, "source " + std::to_string(I) + " has wrong kind");
  }

  void checkOp(const Block &B, size_t OI, const Operation &Op) {
    if (!Op.getGuard().isPred())
      error(&B, &Op, "guard is not a predicate register");
    if (Op.isCmpp() != (Op.getCond() != CompareCond::None))
      error(&B, &Op, "compare condition mismatch");
    if (!opcodeIsMemory(Op.getOpcode()) && Op.getAliasClass() != 0)
      error(&B, &Op, "alias class on a non-memory operation");

    // Label operands must reference existing blocks.
    for (const Operand &S : Op.srcs())
      if (S.isLabel() && !F.blockById(S.getLabel()))
        error(&B, &Op, "label operand references unknown block");

    Opcode Opc = Op.getOpcode();
    if (opcodeIsIntArith(Opc) && Opc != Opcode::Mov) {
      expectDefs(B, Op, 1, RegClass::GPR);
      if (Op.srcs().size() != 2)
        error(&B, &Op, "arithmetic needs two sources");
      for (size_t I = 0; I < Op.srcs().size() && I < 2; ++I)
        expectSrcValue(B, Op, I, RegClass::GPR);
      return;
    }
    if (opcodeIsFloatArith(Opc)) {
      expectDefs(B, Op, 1, RegClass::FPR);
      if (Op.srcs().size() != 2)
        error(&B, &Op, "arithmetic needs two sources");
      for (size_t I = 0; I < Op.srcs().size() && I < 2; ++I)
        expectSrcValue(B, Op, I, RegClass::FPR);
      return;
    }

    switch (Opc) {
    case Opcode::Mov: {
      if (Op.defs().size() != 1 || Op.srcs().size() != 1) {
        error(&B, &Op, "mov needs one destination and one source");
        return;
      }
      Reg Dst = Op.defs()[0].R;
      const Operand &Src = Op.srcs()[0];
      if (Op.defs()[0].Act != CmppAction::None)
        error(&B, &Op, "mov destination carries an action");
      if (Dst.getClass() == RegClass::PR) {
        // PR moves initialize wired predicates; only 0/1 or PR sources.
        bool Ok = (Src.isImm() && (Src.getImm() == 0 || Src.getImm() == 1)) ||
                  (Src.isReg() && Src.getReg().isPred());
        if (!Ok)
          error(&B, &Op, "mov to predicate needs 0/1 or a PR source");
        return;
      }
      if (Dst.getClass() == RegClass::BTR) {
        error(&B, &Op, "mov cannot target a branch-target register");
        return;
      }
      if (Src.isLabel() ||
          (Src.isReg() && Src.getReg().getClass() != Dst.getClass()))
        error(&B, &Op, "mov source class mismatch");
      return;
    }
    case Opcode::Load:
      expectDefs(B, Op, 1, RegClass::GPR);
      if (Op.srcs().size() != 1)
        error(&B, &Op, "load needs one source");
      else
        expectSrcReg(B, Op, 0, RegClass::GPR);
      return;
    case Opcode::Store:
      if (!Op.defs().empty())
        error(&B, &Op, "store has no destinations");
      if (Op.srcs().size() != 2) {
        error(&B, &Op, "store needs (address, value) sources");
        return;
      }
      expectSrcReg(B, Op, 0, RegClass::GPR);
      // The stored value may be an immediate, a GPR, or an FPR (stored as
      // its integral image; memory is untyped 64-bit words).
      {
        const Operand &V = Op.srcs()[1];
        bool Ok = V.isImm() ||
                  (V.isReg() && (V.getReg().getClass() == RegClass::GPR ||
                                 V.getReg().getClass() == RegClass::FPR));
        if (!Ok)
          error(&B, &Op, "store value has wrong kind");
      }
      return;
    case Opcode::Cmpp: {
      if (Op.defs().empty() || Op.defs().size() > 2) {
        error(&B, &Op, "cmpp needs one or two destinations");
        return;
      }
      for (const DefSlot &D : Op.defs()) {
        if (D.R.getClass() != RegClass::PR)
          error(&B, &Op, "cmpp destination must be a predicate");
        if (D.R.isTruePred())
          error(&B, &Op, "cmpp may not write the hardwired true predicate");
        if (D.Act == CmppAction::None)
          error(&B, &Op, "cmpp destination needs an action specifier");
      }
      if (Op.srcs().size() != 2) {
        error(&B, &Op, "cmpp needs two sources");
        return;
      }
      for (size_t I = 0; I < 2; ++I)
        expectSrcValue(B, Op, I, RegClass::GPR);
      return;
    }
    case Opcode::Pbr:
      expectDefs(B, Op, 1, RegClass::BTR);
      if (Op.srcs().size() != 1 || !Op.srcs()[0].isLabel())
        error(&B, &Op, "pbr needs a label source");
      return;
    case Opcode::Branch: {
      if (!Op.defs().empty())
        error(&B, &Op, "branch has no destinations");
      if (Op.srcs().size() != 2) {
        error(&B, &Op, "branch needs (predicate, target) sources");
        return;
      }
      expectSrcReg(B, Op, 0, RegClass::PR);
      expectSrcReg(B, Op, 1, RegClass::BTR);
      if (Op.srcs()[1].isReg() &&
          Op.srcs()[1].getReg().getClass() == RegClass::BTR &&
          B.lastDefBefore(Op.srcs()[1].getReg(), OI) < 0)
        error(&B, &Op, "branch target register has no preparing pbr in block");
      return;
    }
    case Opcode::Halt:
    case Opcode::Trap:
    case Opcode::Nop:
      if (!Op.defs().empty() || !Op.srcs().empty())
        error(&B, &Op, "terminator/nop takes no operands");
      return;
    default:
      CPR_UNREACHABLE("unhandled opcode in verifier");
    }
  }

  const Function &F;
  std::vector<std::string> Errors;
};

} // namespace

std::vector<std::string> cpr::verifyFunction(const Function &F) {
  return VerifierImpl(F).run();
}

void cpr::verifyOrDie(const Function &F, const std::string &Context) {
  std::vector<std::string> Errors = verifyFunction(F);
  if (Errors.empty())
    return;
  std::string Msg = "IR verification failed (" + Context + "):\n";
  for (const std::string &E : Errors)
    Msg += "  " + E + "\n";
  Msg += printFunction(F);
  reportFatalError(Msg);
}

unsigned cpr::reportVerification(const Function &F, DiagnosticEngine &Diags,
                                 const std::string &Context,
                                 const std::string &Site) {
  std::vector<std::string> Errors = verifyFunction(F);
  for (const std::string &E : Errors)
    Diags.report(DiagSeverity::Error, DiagCode::VerifyFailed,
                 Context.empty() ? E : E + " (" + Context + ")", Site);
  return static_cast<unsigned>(Errors.size());
}

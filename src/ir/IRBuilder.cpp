//===- ir/IRBuilder.cpp - Convenience IR construction ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRBuilder.h"

#include "support/Error.h"

using namespace cpr;

Operation &IRBuilder::append(Operation Op) {
  assert(B && "no insertion block selected");
  B->ops().push_back(std::move(Op));
  return B->ops().back();
}

Reg IRBuilder::emitArith(Opcode Opc, Operand A, Operand Bo, Reg Guard) {
  Reg Dst = F.newReg(opcodeIsFloatArith(Opc) ? RegClass::FPR : RegClass::GPR);
  emitArithTo(Dst, Opc, A, Bo, Guard);
  return Dst;
}

void IRBuilder::emitArithTo(Reg Dst, Opcode Opc, Operand A, Operand Bo,
                            Reg Guard) {
  assert((opcodeIsIntArith(Opc) || opcodeIsFloatArith(Opc)) &&
         "emitArithTo requires an arithmetic opcode");
  Operation Op = F.makeOp(Opc);
  Op.setGuard(Guard);
  Op.addDef(Dst);
  Op.addSrc(A);
  Op.addSrc(Bo);
  append(std::move(Op));
}

void IRBuilder::emitMovTo(Reg Dst, Operand Src, Reg Guard) {
  Operation Op = F.makeOp(Opcode::Mov);
  Op.setGuard(Guard);
  Op.addDef(Dst);
  Op.addSrc(Src);
  append(std::move(Op));
}

Reg IRBuilder::emitMovImm(int64_t V, Reg Guard) {
  Reg Dst = F.newReg(RegClass::GPR);
  emitMovTo(Dst, Operand::imm(V), Guard);
  return Dst;
}

Reg IRBuilder::emitLoad(Reg Addr, uint8_t AliasClass, Reg Guard) {
  Reg Dst = F.newReg(RegClass::GPR);
  emitLoadTo(Dst, Addr, AliasClass, Guard);
  return Dst;
}

void IRBuilder::emitLoadTo(Reg Dst, Reg Addr, uint8_t AliasClass, Reg Guard) {
  Operation Op = F.makeOp(Opcode::Load);
  Op.setGuard(Guard);
  Op.addDef(Dst);
  Op.addSrc(Operand::reg(Addr));
  Op.setAliasClass(AliasClass);
  append(std::move(Op));
}

void IRBuilder::emitStore(Reg Addr, Operand Value, uint8_t AliasClass,
                          Reg Guard) {
  Operation Op = F.makeOp(Opcode::Store);
  Op.setGuard(Guard);
  Op.addSrc(Operand::reg(Addr));
  Op.addSrc(Value);
  Op.setAliasClass(AliasClass);
  append(std::move(Op));
}

std::pair<Reg, Reg> IRBuilder::emitCmpp2(CompareCond Cond, Operand A,
                                         Operand Bo, CmppAction Act1,
                                         CmppAction Act2, Reg Guard) {
  Reg D1 = F.newReg(RegClass::PR);
  Reg D2 = F.newReg(RegClass::PR);
  emitCmppTo(D1, Act1, D2, Act2, Cond, A, Bo, Guard);
  return {D1, D2};
}

Reg IRBuilder::emitCmpp1(CompareCond Cond, Operand A, Operand Bo,
                         CmppAction Act, Reg Guard) {
  Reg D = F.newReg(RegClass::PR);
  emitCmppTo(D, Act, Reg(), CmppAction::None, Cond, A, Bo, Guard);
  return D;
}

void IRBuilder::emitCmppTo(Reg Dst1, CmppAction Act1, Reg Dst2,
                           CmppAction Act2, CompareCond Cond, Operand A,
                           Operand Bo, Reg Guard) {
  assert(Act1 != CmppAction::None && "first cmpp destination needs an action");
  Operation Op = F.makeOp(Opcode::Cmpp);
  Op.setGuard(Guard);
  Op.setCond(Cond);
  Op.addDef(Dst1, Act1);
  if (Dst2.isValid()) {
    assert(Act2 != CmppAction::None && "second destination needs an action");
    Op.addDef(Dst2, Act2);
  }
  Op.addSrc(A);
  Op.addSrc(Bo);
  append(std::move(Op));
}

Reg IRBuilder::emitPbr(const Block &Target, Reg Guard) {
  Reg Dst = F.newReg(RegClass::BTR);
  Operation Op = F.makeOp(Opcode::Pbr);
  Op.setGuard(Guard);
  Op.addDef(Dst);
  Op.addSrc(Operand::label(Target.getId()));
  append(std::move(Op));
  return Dst;
}

void IRBuilder::emitBranch(Reg Pred, Reg Btr) {
  assert(Pred.isPred() && Btr.getClass() == RegClass::BTR &&
         "branch operands are (predicate, branch-target)");
  Operation Op = F.makeOp(Opcode::Branch);
  Op.addSrc(Operand::reg(Pred));
  Op.addSrc(Operand::reg(Btr));
  append(std::move(Op));
}

void IRBuilder::emitBranchTo(const Block &Target, Reg Pred, Reg PbrGuard) {
  Reg Btr = emitPbr(Target, PbrGuard);
  emitBranch(Pred, Btr);
}

void IRBuilder::emitHalt() { append(F.makeOp(Opcode::Halt)); }

void IRBuilder::emitTrap() { append(F.makeOp(Opcode::Trap)); }

void IRBuilder::emitNop() { append(F.makeOp(Opcode::Nop)); }

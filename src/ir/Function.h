//===- ir/Function.h - Blocks and functions ---------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Blocks and functions of the EPIC IR.
///
/// A Block is a *linear code region*, not a classic basic block: it may
/// contain interior (side-exit) branches, exactly like the superblock
/// listings in the paper's Figure 6. Control enters at the top and leaves
/// either through a taken branch or by falling through to the next block in
/// function layout order. A superblock/hyperblock -- the input region of
/// ICBM -- is therefore simply one Block.
///
//===----------------------------------------------------------------------===//

#ifndef IR_FUNCTION_H
#define IR_FUNCTION_H

#include "ir/Operation.h"

#include <memory>
#include <string>
#include <vector>

namespace cpr {

/// A linear code region (superblock-style: interior exit branches allowed).
class Block {
public:
  Block(BlockId Id, std::string Name) : Id(Id), Name(std::move(Name)) {}

  BlockId getId() const { return Id; }
  const std::string &getName() const { return Name; }

  std::vector<Operation> &ops() { return Ops; }
  const std::vector<Operation> &ops() const { return Ops; }

  bool empty() const { return Ops.empty(); }
  size_t size() const { return Ops.size(); }

  /// Marks blocks created by ICBM to hold off-trace code.
  bool isCompensation() const { return Compensation; }
  void setCompensation(bool V) { Compensation = V; }

  /// Returns the index of the operation with \p Id, or -1 if absent.
  int indexOfOp(OpId Id) const;

  /// Returns the index of the last operation before \p Index (exclusive)
  /// that defines register \p R, or -1 if none. Used to resolve a branch's
  /// BTR operand to its preparing pbr.
  int lastDefBefore(Reg R, size_t Index) const;

private:
  BlockId Id;
  std::string Name;
  std::vector<Operation> Ops;
  bool Compensation = false;
};

/// Snapshot of a Function's id allocators (blocks, registers, ops). Two
/// functions with equal text and equal allocator state allocate identical
/// ids for identical request sequences -- the property the region
/// memoization cache (cpr/RegionMemo.h) relies on to replay a cached
/// transform with byte-identical output.
struct AllocatorState {
  BlockId NextBlockId = 0;
  uint32_t NextRegId[NumRegClasses] = {1, 1, 1, 1};
  OpId NextOpId = 1;

  bool operator==(const AllocatorState &O) const {
    if (NextBlockId != O.NextBlockId || NextOpId != O.NextOpId)
      return false;
    for (unsigned I = 0; I < NumRegClasses; ++I)
      if (NextRegId[I] != O.NextRegId[I])
        return false;
    return true;
  }
  bool operator!=(const AllocatorState &O) const { return !(*this == O); }
};

/// A function: an ordered list of blocks plus register/op-id allocators.
/// Block order is the code layout: control falls through block boundaries.
class Function {
public:
  explicit Function(std::string Name) : Name(std::move(Name)) {}

  Function(const Function &) = delete;
  Function &operator=(const Function &) = delete;

  const std::string &getName() const { return Name; }

  /// Appends a new block named \p BlockName and returns it.
  Block &addBlock(const std::string &BlockName);

  /// Inserts a new block at layout position \p LayoutIndex.
  Block &insertBlock(size_t LayoutIndex, const std::string &BlockName);

  size_t numBlocks() const { return Blocks.size(); }
  Block &block(size_t LayoutIndex) { return *Blocks[LayoutIndex]; }
  const Block &block(size_t LayoutIndex) const { return *Blocks[LayoutIndex]; }

  /// Returns the block with \p Id, or nullptr.
  Block *blockById(BlockId Id);
  const Block *blockById(BlockId Id) const;

  /// Returns the block named \p BlockName, or nullptr.
  Block *blockByName(const std::string &BlockName);

  /// Returns the layout index of block \p Id, or -1.
  int layoutIndex(BlockId Id) const;

  /// Removes the block with \p Id from the layout. Branches targeting it
  /// are left dangling (the verifier rejects them); callers such as the
  /// fuzzer's reducer re-verify after every removal. Returns false if no
  /// such block exists. The entry block (layout index 0) is removable
  /// like any other; the next block becomes the entry.
  bool removeBlock(BlockId Id);

  /// The entry block (layout index 0).
  Block &entry() { return *Blocks.front(); }
  const Block &entry() const { return *Blocks.front(); }

  /// Allocates a fresh virtual register of class \p RC.
  Reg newReg(RegClass RC);

  /// Notes that register \p R is in use so newReg never returns it. The
  /// parser calls this for every register it reads.
  void reserveRegId(Reg R);

  /// Allocates a fresh operation id.
  OpId newOpId() { return NextOpId++; }

  /// Creates an operation with a fresh id (not yet placed in a block).
  Operation makeOp(Opcode Opc) { return Operation(newOpId(), Opc); }

  /// Registers observed at Halt for equivalence checking and as DCE roots.
  std::vector<Reg> &observableRegs() { return Observable; }
  const std::vector<Reg> &observableRegs() const { return Observable; }

  /// Total static operation count across all blocks.
  size_t totalOps() const;

  /// Finds the operation with id \p Id anywhere in the function.
  /// Returns {block layout index, op index} or {-1, -1}.
  std::pair<int, int> findOp(OpId Id) const;

  /// Deep copy, preserving block ids, operation ids, and allocator state.
  std::unique_ptr<Function> clone() const;

  /// Reads / restores the id-allocator counters. setAllocatorState may
  /// only move counters forward (it asserts ids already handed out are
  /// not reissued); the region memo cache uses it to fast-forward a
  /// function to the exact post-transform allocator position.
  AllocatorState allocatorState() const;
  void setAllocatorState(const AllocatorState &S);

private:
  std::string Name;
  std::vector<std::unique_ptr<Block>> Blocks;
  BlockId NextBlockId = 0;
  uint32_t NextRegId[NumRegClasses] = {1, 1, 1, 1}; // p0 reserved = true.
  OpId NextOpId = 1;
  std::vector<Reg> Observable;
};

} // namespace cpr

#endif // IR_FUNCTION_H

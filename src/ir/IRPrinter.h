//===- ir/IRPrinter.h - Textual IR output -----------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Prints IR in a textual form close to the paper's PlayDoh listings, e.g.
///
/// \code
/// func @strcpy {
/// block @Loop:
///   r21 = add(r2, 0)
///   store.m1(r21, r34)
///   p51:un, p61:uc = cmpp.eq(r31, 0)
///   b41 = pbr(@Exit)
///   branch(p51, b41)
/// }
/// \endcode
///
/// The guard suffix "if pN" is omitted for the true predicate; memory
/// operations print their alias class as ".m<k>" when nonzero. The format
/// round-trips through IRParser.
///
//===----------------------------------------------------------------------===//

#ifndef IR_IRPRINTER_H
#define IR_IRPRINTER_H

#include "ir/Function.h"

#include <string>

namespace cpr {

/// Printing options.
struct PrintOptions {
  /// Prefix each operation with its id in brackets ("[12] ..."). Ids are
  /// stable across transformation, so this makes before/after walkthroughs
  /// (like the paper's Figures 6-7) easy to follow. Not parseable.
  bool ShowOpIds = false;
};

/// Renders one operation (no trailing newline).
std::string printOperation(const Function &F, const Operation &Op,
                           const PrintOptions &Opts = PrintOptions());

/// Renders one block, including its "block @Name:" header line.
std::string printBlock(const Function &F, const Block &B,
                       const PrintOptions &Opts = PrintOptions());

/// Renders the whole function.
std::string printFunction(const Function &F,
                          const PrintOptions &Opts = PrintOptions());

} // namespace cpr

#endif // IR_IRPRINTER_H

//===- ir/Register.h - Virtual register model -------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Virtual registers for the PlayDoh-style EPIC IR. Four register classes
/// exist, mirroring the HPL PlayDoh architecture specification the paper
/// builds on: general-purpose (GPR), floating-point (FPR), one-bit predicate
/// (PR), and branch-target (BTR) registers. Predicate register p0 is
/// hardwired to true and serves as the "if T" guard of unpredicated
/// operations.
///
//===----------------------------------------------------------------------===//

#ifndef IR_REGISTER_H
#define IR_REGISTER_H

#include <cstdint>
#include <functional>
#include <string>

namespace cpr {

/// The register classes of the PlayDoh-style machine.
enum class RegClass : uint8_t {
  GPR, ///< 64-bit integer register ("r").
  FPR, ///< floating-point register ("f").
  PR,  ///< one-bit predicate register ("p"); p0 is hardwired true.
  BTR, ///< branch-target register ("b"), written by prepare-to-branch.
};

/// Number of distinct register classes.
inline constexpr unsigned NumRegClasses = 4;

/// Returns the printable single-letter prefix for \p RC ("r", "f", "p", "b").
const char *regClassPrefix(RegClass RC);

/// A virtual register: a class plus an id. Ids are unique per class within a
/// Function. Value type; freely copyable.
class Reg {
public:
  Reg() : Class(RegClass::GPR), Id(~0u) {}
  Reg(RegClass RC, uint32_t Id) : Class(RC), Id(Id) {}

  static Reg gpr(uint32_t Id) { return Reg(RegClass::GPR, Id); }
  static Reg fpr(uint32_t Id) { return Reg(RegClass::FPR, Id); }
  static Reg pred(uint32_t Id) { return Reg(RegClass::PR, Id); }
  static Reg btr(uint32_t Id) { return Reg(RegClass::BTR, Id); }

  /// The hardwired always-true predicate register p0.
  static Reg truePred() { return pred(0); }

  RegClass getClass() const { return Class; }
  uint32_t getId() const { return Id; }

  bool isValid() const { return Id != ~0u; }
  bool isPred() const { return Class == RegClass::PR; }

  /// Returns true if this is the hardwired true predicate p0.
  bool isTruePred() const { return Class == RegClass::PR && Id == 0; }

  bool operator==(const Reg &O) const { return Class == O.Class && Id == O.Id; }
  bool operator!=(const Reg &O) const { return !(*this == O); }
  bool operator<(const Reg &O) const {
    if (Class != O.Class)
      return Class < O.Class;
    return Id < O.Id;
  }

  /// Returns the printable name, e.g. "r21", "p61", or "T" for p0.
  std::string str() const;

private:
  RegClass Class;
  uint32_t Id;
};

} // namespace cpr

namespace std {
template <> struct hash<cpr::Reg> {
  size_t operator()(const cpr::Reg &R) const {
    return (static_cast<size_t>(R.getClass()) << 32) ^ R.getId();
  }
};
} // namespace std

#endif // IR_REGISTER_H

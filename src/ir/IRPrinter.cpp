//===- ir/IRPrinter.cpp - Textual IR output -------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/IRPrinter.h"

#include "support/Error.h"

using namespace cpr;

namespace {

std::string printOperand(const Function &F, const Operand &O) {
  switch (O.kind()) {
  case Operand::Kind::Register:
    return O.getReg().str();
  case Operand::Kind::Imm:
    return std::to_string(O.getImm());
  case Operand::Kind::Label: {
    const Block *B = F.blockById(O.getLabel());
    return "@" + (B ? B->getName() : std::string("<badlabel>"));
  }
  }
  CPR_UNREACHABLE("bad operand kind");
}

std::string printSrcList(const Function &F, const Operation &Op) {
  std::string Out = "(";
  for (size_t I = 0, E = Op.srcs().size(); I != E; ++I) {
    if (I)
      Out += ", ";
    Out += printOperand(F, Op.srcs()[I]);
  }
  Out += ")";
  return Out;
}

} // namespace

std::string cpr::printOperation(const Function &F, const Operation &Op,
                                const PrintOptions &Opts) {
  std::string Out;
  if (Opts.ShowOpIds)
    Out += "[" + std::to_string(Op.getId()) + "] ";

  // Destination list.
  if (!Op.defs().empty()) {
    for (size_t I = 0, E = Op.defs().size(); I != E; ++I) {
      const DefSlot &D = Op.defs()[I];
      if (I)
        Out += ", ";
      Out += D.R.str();
      if (D.Act != CmppAction::None) {
        Out += ":";
        Out += cmppActionName(D.Act);
      }
    }
    Out += " = ";
  }

  // Mnemonic with cmpp condition / alias class decorations.
  Out += opcodeName(Op.getOpcode());
  if (Op.isCmpp()) {
    Out += ".";
    Out += compareCondName(Op.getCond());
  }
  if (opcodeIsMemory(Op.getOpcode()) && Op.getAliasClass() != 0)
    Out += ".m" + std::to_string(Op.getAliasClass());

  if (!Op.srcs().empty() || Op.getOpcode() != Opcode::Halt)
    if (Op.getOpcode() != Opcode::Halt && Op.getOpcode() != Opcode::Trap &&
        Op.getOpcode() != Opcode::Nop)
      Out += printSrcList(F, Op);

  if (!Op.getGuard().isTruePred()) {
    Out += " if " + Op.getGuard().str();
    if (Op.isFrpGuard())
      Out += " frp";
  }
  return Out;
}

std::string cpr::printBlock(const Function &F, const Block &B,
                            const PrintOptions &Opts) {
  std::string Out = "block @" + B.getName() + ":";
  if (B.isCompensation())
    Out += " compensation";
  Out += "\n";
  for (const Operation &Op : B.ops()) {
    Out += "  ";
    Out += printOperation(F, Op, Opts);
    Out += "\n";
  }
  return Out;
}

std::string cpr::printFunction(const Function &F, const PrintOptions &Opts) {
  std::string Out = "func @" + F.getName() + " {\n";
  if (!F.observableRegs().empty()) {
    Out += "  observable ";
    for (size_t I = 0, E = F.observableRegs().size(); I != E; ++I) {
      if (I)
        Out += ", ";
      Out += F.observableRegs()[I].str();
    }
    Out += "\n";
  }
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I)
    Out += printBlock(F, F.block(I), Opts);
  Out += "}\n";
  return Out;
}

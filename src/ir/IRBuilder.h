//===- ir/IRBuilder.h - Convenience IR construction -------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A convenience builder for constructing IR programs in tests, examples,
/// and workload generators. Appends operations to the current insertion
/// block, allocating fresh registers and operation ids from the Function.
///
//===----------------------------------------------------------------------===//

#ifndef IR_IRBUILDER_H
#define IR_IRBUILDER_H

#include "ir/Function.h"

namespace cpr {

/// Appends operations to a block, one call per operation.
class IRBuilder {
public:
  explicit IRBuilder(Function &F) : F(F), B(nullptr) {}
  IRBuilder(Function &F, Block &B) : F(F), B(&B) {}

  Function &function() { return F; }

  /// Selects the block subsequent emissions append to.
  void setInsertBlock(Block &NewBlock) { B = &NewBlock; }
  Block &insertBlock() { return *B; }

  /// Emits a two-source arithmetic operation into a fresh register.
  Reg emitArith(Opcode Opc, Operand A, Operand Bo, Reg Guard = Reg::truePred());

  /// Emits a two-source arithmetic operation into \p Dst.
  void emitArithTo(Reg Dst, Opcode Opc, Operand A, Operand Bo,
                   Reg Guard = Reg::truePred());

  /// Emits dst = mov(src). The destination class is taken from \p Dst.
  void emitMovTo(Reg Dst, Operand Src, Reg Guard = Reg::truePred());

  /// Emits a move of an immediate into a fresh GPR.
  Reg emitMovImm(int64_t V, Reg Guard = Reg::truePred());

  /// Emits a load from address register \p Addr into a fresh GPR.
  Reg emitLoad(Reg Addr, uint8_t AliasClass = 0, Reg Guard = Reg::truePred());

  /// Emits a load into \p Dst.
  void emitLoadTo(Reg Dst, Reg Addr, uint8_t AliasClass = 0,
                  Reg Guard = Reg::truePred());

  /// Emits a store of \p Value to address register \p Addr.
  void emitStore(Reg Addr, Operand Value, uint8_t AliasClass = 0,
                 Reg Guard = Reg::truePred());

  /// Emits a two-destination cmpp into fresh predicate registers.
  /// \returns {first dest, second dest}.
  std::pair<Reg, Reg> emitCmpp2(CompareCond Cond, Operand A, Operand Bo,
                                CmppAction Act1, CmppAction Act2,
                                Reg Guard = Reg::truePred());

  /// Emits a single-destination cmpp into a fresh predicate register.
  Reg emitCmpp1(CompareCond Cond, Operand A, Operand Bo, CmppAction Act,
                Reg Guard = Reg::truePred());

  /// Emits a cmpp with explicit destination registers. Pass an invalid Reg
  /// as \p Dst2 to emit a single-destination compare.
  void emitCmppTo(Reg Dst1, CmppAction Act1, Reg Dst2, CmppAction Act2,
                  CompareCond Cond, Operand A, Operand Bo,
                  Reg Guard = Reg::truePred());

  /// Emits a prepare-to-branch targeting \p Target into a fresh BTR.
  Reg emitPbr(const Block &Target, Reg Guard = Reg::truePred());

  /// Emits a branch that takes when \p Pred is true, to the target in \p Btr.
  void emitBranch(Reg Pred, Reg Btr);

  /// Emits the PlayDoh pbr + branch pair targeting \p Target.
  void emitBranchTo(const Block &Target, Reg Pred,
                    Reg PbrGuard = Reg::truePred());

  void emitHalt();
  void emitTrap();
  void emitNop();

private:
  Operation &append(Operation Op);

  Function &F;
  Block *B;
};

} // namespace cpr

#endif // IR_IRBUILDER_H

//===- ir/Function.cpp - Blocks and functions -----------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Function.h"

#include "support/Error.h"

using namespace cpr;

int Block::indexOfOp(OpId OpIdToFind) const {
  for (size_t I = 0, E = Ops.size(); I != E; ++I)
    if (Ops[I].getId() == OpIdToFind)
      return static_cast<int>(I);
  return -1;
}

int Block::lastDefBefore(Reg R, size_t Index) const {
  assert(Index <= Ops.size() && "index out of range");
  for (size_t I = Index; I-- > 0;)
    if (Ops[I].definesReg(R))
      return static_cast<int>(I);
  return -1;
}

Block &Function::addBlock(const std::string &BlockName) {
  Blocks.push_back(std::make_unique<Block>(NextBlockId++, BlockName));
  return *Blocks.back();
}

Block &Function::insertBlock(size_t LayoutIndex, const std::string &BlockName) {
  assert(LayoutIndex <= Blocks.size() && "layout index out of range");
  auto It = Blocks.begin() + static_cast<ptrdiff_t>(LayoutIndex);
  It = Blocks.insert(It, std::make_unique<Block>(NextBlockId++, BlockName));
  return **It;
}

Block *Function::blockById(BlockId Id) {
  for (auto &B : Blocks)
    if (B->getId() == Id)
      return B.get();
  return nullptr;
}

const Block *Function::blockById(BlockId Id) const {
  for (const auto &B : Blocks)
    if (B->getId() == Id)
      return B.get();
  return nullptr;
}

Block *Function::blockByName(const std::string &BlockName) {
  for (auto &B : Blocks)
    if (B->getName() == BlockName)
      return B.get();
  return nullptr;
}

bool Function::removeBlock(BlockId Id) {
  for (size_t I = 0, E = Blocks.size(); I != E; ++I) {
    if (Blocks[I]->getId() == Id) {
      Blocks.erase(Blocks.begin() + static_cast<ptrdiff_t>(I));
      return true;
    }
  }
  return false;
}

int Function::layoutIndex(BlockId Id) const {
  for (size_t I = 0, E = Blocks.size(); I != E; ++I)
    if (Blocks[I]->getId() == Id)
      return static_cast<int>(I);
  return -1;
}

Reg Function::newReg(RegClass RC) {
  unsigned Idx = static_cast<unsigned>(RC);
  return Reg(RC, NextRegId[Idx]++);
}

void Function::reserveRegId(Reg R) {
  unsigned Idx = static_cast<unsigned>(R.getClass());
  if (R.getId() + 1 > NextRegId[Idx])
    NextRegId[Idx] = R.getId() + 1;
}

size_t Function::totalOps() const {
  size_t N = 0;
  for (const auto &B : Blocks)
    N += B->size();
  return N;
}

std::unique_ptr<Function> Function::clone() const {
  auto Copy = std::make_unique<Function>(Name);
  for (const auto &B : Blocks) {
    // Recreate blocks with identical ids by steering the allocator.
    Copy->NextBlockId = B->getId();
    Block &NB = Copy->addBlock(B->getName());
    NB.setCompensation(B->isCompensation());
    NB.ops() = B->ops();
  }
  Copy->NextBlockId = NextBlockId;
  for (unsigned I = 0; I < NumRegClasses; ++I)
    Copy->NextRegId[I] = NextRegId[I];
  Copy->NextOpId = NextOpId;
  Copy->Observable = Observable;
  return Copy;
}

AllocatorState Function::allocatorState() const {
  AllocatorState S;
  S.NextBlockId = NextBlockId;
  for (unsigned I = 0; I < NumRegClasses; ++I)
    S.NextRegId[I] = NextRegId[I];
  S.NextOpId = NextOpId;
  return S;
}

void Function::setAllocatorState(const AllocatorState &S) {
  assert(S.NextBlockId >= NextBlockId && "allocator state moved backward");
  assert(S.NextOpId >= NextOpId && "allocator state moved backward");
  NextBlockId = S.NextBlockId;
  for (unsigned I = 0; I < NumRegClasses; ++I) {
    assert(S.NextRegId[I] >= NextRegId[I] && "allocator state moved backward");
    NextRegId[I] = S.NextRegId[I];
  }
  NextOpId = S.NextOpId;
}

std::pair<int, int> Function::findOp(OpId Id) const {
  for (size_t BI = 0, BE = Blocks.size(); BI != BE; ++BI) {
    int OI = Blocks[BI]->indexOfOp(Id);
    if (OI >= 0)
      return {static_cast<int>(BI), OI};
  }
  return {-1, -1};
}

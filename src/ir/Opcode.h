//===- ir/Opcode.h - Operation opcodes and traits ---------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Opcodes of the PlayDoh-style EPIC IR and their static traits. The set
/// mirrors what the paper's code listings use: integer and floating-point
/// arithmetic, load/store, the two-target compare-to-predicate (cmpp), the
/// three-operation branch realization (cmpp + pbr + branch), and program
/// terminators. Trap exists purely as a self-checking canary: ICBM places it
/// at the end of fall-through-variation compensation blocks, where the
/// suitability theorem guarantees control never falls through.
///
//===----------------------------------------------------------------------===//

#ifndef IR_OPCODE_H
#define IR_OPCODE_H

#include <cstdint>
#include <optional>

namespace cpr {

/// Functional-unit kind an operation executes on (machine resource class).
enum class UnitKind : uint8_t {
  Int,    ///< integer ALU ("I" in the paper's (I,F,M,B) tuples).
  Float,  ///< floating-point unit ("F").
  Mem,    ///< memory port ("M").
  Branch, ///< branch unit ("B").
};

/// Operation opcode.
enum class Opcode : uint8_t {
  // Integer arithmetic (Int unit).
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  And,
  Or,
  Xor,
  Shl,
  Shr,
  Min,
  Max,
  /// Register/immediate move; destination may be any class, including PR.
  Mov,
  // Floating-point arithmetic (Float unit).
  FAdd,
  FSub,
  FMul,
  FDiv,
  // Memory (Mem unit). load: dst = mem[addr]; store: mem[addr] = value.
  Load,
  Store,
  /// Two-target compare-to-predicate (Int unit).
  Cmpp,
  /// Prepare-to-branch: writes a branch-target register from a label.
  Pbr,
  /// Conditional branch: takes when its source predicate is true; target is
  /// the BTR written by a dominating pbr in the same block.
  Branch,
  /// Terminates the program normally.
  Halt,
  /// Aborts execution; must never execute in a correct program.
  Trap,
  /// No operation (Int unit).
  Nop,
};

/// Number of opcodes (for table sizing).
inline constexpr unsigned NumOpcodes = static_cast<unsigned>(Opcode::Nop) + 1;

/// Returns the lowercase mnemonic of \p Opc.
const char *opcodeName(Opcode Opc);

/// Parses a mnemonic; returns std::nullopt if unknown.
std::optional<Opcode> parseOpcode(const char *Name);

/// Returns the functional-unit kind \p Opc executes on.
UnitKind opcodeUnit(Opcode Opc);

/// Returns true for operations with side effects beyond their register
/// results (stores, branches, terminators). Side-effecting operations may
/// not be speculated above a branch that guards them.
bool opcodeHasSideEffects(Opcode Opc);

/// Returns true for control-transfer operations (branch, halt, trap).
bool opcodeIsControl(Opcode Opc);

/// Returns true for operations that access memory.
inline bool opcodeIsMemory(Opcode Opc) {
  return Opc == Opcode::Load || Opc == Opcode::Store;
}

/// Returns true for two-source integer arithmetic opcodes (Add..Max).
bool opcodeIsIntArith(Opcode Opc);

/// Returns true for two-source floating-point arithmetic opcodes.
bool opcodeIsFloatArith(Opcode Opc);

} // namespace cpr

#endif // IR_OPCODE_H

//===- ir/CmppAction.h - PlayDoh cmpp destination actions -------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Destination action specifiers for PlayDoh two-target compare-to-predicate
/// operations, exactly as defined in Table 1 of the paper. The first letter
/// selects the action type (Unconditional, wired-Or, wired-And); the second
/// selects the mode (Normal or Complemented). Unconditional targets always
/// write; wired targets conditionally write a fixed value, which is what
/// makes concurrent wired writes to one register well-defined and lets the
/// scheduler treat them as unordered.
///
//===----------------------------------------------------------------------===//

#ifndef IR_CMPPACTION_H
#define IR_CMPPACTION_H

#include <cstdint>
#include <optional>

namespace cpr {

/// Action specifier for one destination of a cmpp operation.
enum class CmppAction : uint8_t {
  None, ///< Not a cmpp destination (normal operation result).
  UN,   ///< Unconditional-normal: dest = guard & cmp (always writes).
  UC,   ///< Unconditional-complement: dest = guard & !cmp (always writes).
  ON,   ///< Wired-or-normal: writes 1 iff guard & cmp.
  OC,   ///< Wired-or-complement: writes 1 iff guard & !cmp.
  AN,   ///< Wired-and-normal: writes 0 iff guard & !cmp.
  AC,   ///< Wired-and-complement: writes 0 iff guard & cmp.
};

/// Returns the lowercase mnemonic ("un", "uc", "on", "oc", "an", "ac").
const char *cmppActionName(CmppAction Act);

/// Parses a mnemonic; returns std::nullopt if \p Name is not an action.
std::optional<CmppAction> parseCmppAction(const char *Name);

/// Evaluates one destination per Table 1 of the paper.
///
/// \param Act the action specifier (must not be None).
/// \param Guard the value of the operation's guard predicate.
/// \param Cmp the result of the comparison.
/// \returns the value written to the destination, or std::nullopt when the
/// destination is left untouched.
std::optional<bool> evalCmppAction(CmppAction Act, bool Guard, bool Cmp);

/// Returns true for the wired actions (ON/OC/AN/AC), whose same-register
/// writes commute and are treated as unordered by the scheduler.
inline bool isWiredAction(CmppAction Act) {
  return Act == CmppAction::ON || Act == CmppAction::OC ||
         Act == CmppAction::AN || Act == CmppAction::AC;
}

/// Returns true for the wired-or actions (ON/OC).
inline bool isWiredOrAction(CmppAction Act) {
  return Act == CmppAction::ON || Act == CmppAction::OC;
}

/// Returns true for the wired-and actions (AN/AC).
inline bool isWiredAndAction(CmppAction Act) {
  return Act == CmppAction::AN || Act == CmppAction::AC;
}

} // namespace cpr

#endif // IR_CMPPACTION_H

//===- ir/Support.cpp - Register, action, and condition helpers -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/CmppAction.h"
#include "ir/CompareCond.h"
#include "ir/Register.h"
#include "support/Error.h"

#include <cstring>

using namespace cpr;

const char *cpr::regClassPrefix(RegClass RC) {
  switch (RC) {
  case RegClass::GPR:
    return "r";
  case RegClass::FPR:
    return "f";
  case RegClass::PR:
    return "p";
  case RegClass::BTR:
    return "b";
  }
  CPR_UNREACHABLE("bad register class");
}

std::string Reg::str() const {
  if (isTruePred())
    return "T";
  return std::string(regClassPrefix(Class)) + std::to_string(Id);
}

const char *cpr::cmppActionName(CmppAction Act) {
  switch (Act) {
  case CmppAction::None:
    return "none";
  case CmppAction::UN:
    return "un";
  case CmppAction::UC:
    return "uc";
  case CmppAction::ON:
    return "on";
  case CmppAction::OC:
    return "oc";
  case CmppAction::AN:
    return "an";
  case CmppAction::AC:
    return "ac";
  }
  CPR_UNREACHABLE("bad cmpp action");
}

std::optional<CmppAction> cpr::parseCmppAction(const char *Name) {
  for (CmppAction A : {CmppAction::UN, CmppAction::UC, CmppAction::ON,
                       CmppAction::OC, CmppAction::AN, CmppAction::AC})
    if (std::strcmp(cmppActionName(A), Name) == 0)
      return A;
  return std::nullopt;
}

std::optional<bool> cpr::evalCmppAction(CmppAction Act, bool Guard, bool Cmp) {
  switch (Act) {
  case CmppAction::None:
    break;
  case CmppAction::UN:
    // Unconditional targets always write, even under a false guard (the
    // "0 / 0" rows of Table 1).
    return Guard && Cmp;
  case CmppAction::UC:
    return Guard && !Cmp;
  case CmppAction::ON:
    if (Guard && Cmp)
      return true;
    return std::nullopt;
  case CmppAction::OC:
    if (Guard && !Cmp)
      return true;
    return std::nullopt;
  case CmppAction::AN:
    if (Guard && !Cmp)
      return false;
    return std::nullopt;
  case CmppAction::AC:
    if (Guard && Cmp)
      return false;
    return std::nullopt;
  }
  CPR_UNREACHABLE("evalCmppAction on a non-cmpp destination");
}

const char *cpr::compareCondName(CompareCond C) {
  switch (C) {
  case CompareCond::None:
    return "none";
  case CompareCond::EQ:
    return "eq";
  case CompareCond::NE:
    return "ne";
  case CompareCond::LT:
    return "lt";
  case CompareCond::LE:
    return "le";
  case CompareCond::GT:
    return "gt";
  case CompareCond::GE:
    return "ge";
  }
  CPR_UNREACHABLE("bad compare condition");
}

std::optional<CompareCond> cpr::parseCompareCond(const char *Name) {
  for (CompareCond C : {CompareCond::EQ, CompareCond::NE, CompareCond::LT,
                        CompareCond::LE, CompareCond::GT, CompareCond::GE})
    if (std::strcmp(compareCondName(C), Name) == 0)
      return C;
  return std::nullopt;
}

bool cpr::evalCompareCond(CompareCond C, int64_t A, int64_t B) {
  switch (C) {
  case CompareCond::None:
    break;
  case CompareCond::EQ:
    return A == B;
  case CompareCond::NE:
    return A != B;
  case CompareCond::LT:
    return A < B;
  case CompareCond::LE:
    return A <= B;
  case CompareCond::GT:
    return A > B;
  case CompareCond::GE:
    return A >= B;
  }
  CPR_UNREACHABLE("evalCompareCond on None");
}

CompareCond cpr::invertCompareCond(CompareCond C) {
  switch (C) {
  case CompareCond::None:
    break;
  case CompareCond::EQ:
    return CompareCond::NE;
  case CompareCond::NE:
    return CompareCond::EQ;
  case CompareCond::LT:
    return CompareCond::GE;
  case CompareCond::LE:
    return CompareCond::GT;
  case CompareCond::GT:
    return CompareCond::LE;
  case CompareCond::GE:
    return CompareCond::LT;
  }
  CPR_UNREACHABLE("invertCompareCond on None");
}

//===- ir/CompareCond.h - Comparison conditions -----------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Signed integer comparison conditions for cmpp operations, with the
/// inversion helper used by the ICBM "taken variation", which flips the
/// sense of the final lookahead compare (paper section 5.3).
///
//===----------------------------------------------------------------------===//

#ifndef IR_COMPARECOND_H
#define IR_COMPARECOND_H

#include <cstdint>
#include <optional>

namespace cpr {

/// Signed comparison condition of a cmpp operation.
enum class CompareCond : uint8_t {
  None, ///< Not a compare operation.
  EQ,
  NE,
  LT,
  LE,
  GT,
  GE,
};

/// Returns the lowercase mnemonic ("eq", "ne", ...).
const char *compareCondName(CompareCond C);

/// Parses a mnemonic; returns std::nullopt if \p Name is not a condition.
std::optional<CompareCond> parseCompareCond(const char *Name);

/// Evaluates \p C on signed operands.
bool evalCompareCond(CompareCond C, int64_t A, int64_t B);

/// Returns the logically complemented condition (EQ <-> NE, LT <-> GE, ...).
CompareCond invertCompareCond(CompareCond C);

} // namespace cpr

#endif // IR_COMPARECOND_H

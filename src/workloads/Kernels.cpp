//===- workloads/Kernels.cpp - Hand-written IR kernels ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/Kernels.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

using namespace cpr;

namespace {

/// Memory layout constants shared by the kernels. Regions are far apart so
/// workloads never overlap them.
constexpr int64_t SrcBase = 1'000'000;
constexpr int64_t SrcBase2 = 2'000'000;
constexpr int64_t DstBase = 3'000'000;
constexpr int64_t CounterBase = 4'000'000;

/// Alias classes for the kernels' distinct memory regions.
constexpr uint8_t AliasSrc = 1;
constexpr uint8_t AliasSrc2 = 2;
constexpr uint8_t AliasDst = 3;
constexpr uint8_t AliasCounter = 4;

} // namespace

KernelProgram cpr::buildStrcpyKernel(unsigned Unroll, size_t StringLen,
                                     uint64_t Seed) {
  assert(Unroll >= 1);
  KernelProgram P;
  P.Description = "strcpy (unroll " + std::to_string(Unroll) + ", len " +
                  std::to_string(StringLen) + ")";
  P.Func = std::make_unique<Function>("strcpy_u" + std::to_string(Unroll));
  Function &F = *P.Func;

  Block &Entry = F.addBlock("Entry");
  Block &Loop = F.addBlock("Loop");
  Block &Exit = F.addBlock("Exit");

  // r1 = source cursor, r2 = destination cursor, rCarry = previously
  // loaded character (software-pipelined as in Figure 6(b)).
  Reg R1 = F.newReg(RegClass::GPR);
  Reg R2 = F.newReg(RegClass::GPR);
  Reg Carry = F.newReg(RegClass::GPR);

  IRBuilder B(F, Entry);
  // Preheader: load A[0]; skip the loop entirely on an empty string.
  B.emitLoadTo(Carry, R1, AliasSrc);
  Reg PEmpty = B.emitCmpp1(CompareCond::EQ, Operand::reg(Carry),
                           Operand::imm(0), CmppAction::UN);
  B.emitBranchTo(Exit, PEmpty);

  B.setInsertBlock(Loop);
  // Body: per unrolled copy i (0-based):
  //   dst  = add(r2, i); store(dst, carry-or-previous-load)
  //   src  = add(r1, i+1); next = load(src)
  //   exit if next == 0 (all but last copy) / loop back if != 0 (last).
  Reg Prev = Carry;
  for (unsigned I = 0; I < Unroll; ++I) {
    Reg Dst = B.emitArith(Opcode::Add, Operand::reg(R2),
                          Operand::imm(static_cast<int64_t>(I)));
    B.emitStore(Dst, Operand::reg(Prev), AliasDst);
    Reg Src = B.emitArith(Opcode::Add, Operand::reg(R1),
                          Operand::imm(static_cast<int64_t>(I) + 1));
    Reg Next = F.newReg(RegClass::GPR);
    bool Last = I + 1 == Unroll;
    if (!Last) {
      B.emitLoadTo(Next, Src, AliasSrc);
      Reg PExit = B.emitCmpp1(CompareCond::EQ, Operand::reg(Next),
                              Operand::imm(0), CmppAction::UN);
      B.emitBranchTo(Exit, PExit);
      Prev = Next;
      continue;
    }
    // Final copy: load into the loop-carried register, bump the cursors,
    // and take the backedge while the character is nonzero.
    B.emitLoadTo(Carry, Src, AliasSrc);
    B.emitArithTo(R1, Opcode::Add, Operand::reg(R1),
                  Operand::imm(static_cast<int64_t>(Unroll)));
    B.emitArithTo(R2, Opcode::Add, Operand::reg(R2),
                  Operand::imm(static_cast<int64_t>(Unroll)));
    Reg PBack = B.emitCmpp1(CompareCond::NE, Operand::reg(Carry),
                            Operand::imm(0), CmppAction::UN);
    B.emitBranchTo(Loop, PBack);
  }

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "strcpy kernel");

  // Inputs: a NUL-terminated string of nonzero bytes.
  RNG Rng(Seed);
  for (size_t I = 0; I < StringLen; ++I)
    P.InitMem.store(SrcBase + static_cast<int64_t>(I),
                    Rng.nextRange(1, 255));
  P.InitMem.store(SrcBase + static_cast<int64_t>(StringLen), 0);
  P.InitRegs = {{R1, SrcBase}, {R2, DstBase}};
  return P;
}

KernelProgram cpr::buildCmpKernel(unsigned Unroll, size_t Len,
                                  size_t MatchPrefix, uint64_t Seed) {
  assert(Unroll >= 1);
  KernelProgram P;
  P.Description = "cmp (unroll " + std::to_string(Unroll) + ", len " +
                  std::to_string(Len) + ")";
  P.Func = std::make_unique<Function>("cmp_u" + std::to_string(Unroll));
  Function &F = *P.Func;

  Block &Entry = F.addBlock("Entry");
  Block &Loop = F.addBlock("Loop");
  Block &Differ = F.addBlock("Differ");
  Block &Exit = F.addBlock("Exit");

  Reg PA = F.newReg(RegClass::GPR);   // cursor into buffer A
  Reg PB = F.newReg(RegClass::GPR);   // cursor into buffer B
  Reg End = F.newReg(RegClass::GPR);  // one-past-end of A
  Reg Res = F.newReg(RegClass::GPR);  // 0 = equal, 1 = differ
  F.observableRegs().push_back(Res);

  IRBuilder B(F, Entry);
  B.emitMovTo(Res, Operand::imm(0));

  B.setInsertBlock(Loop);
  for (unsigned I = 0; I < Unroll; ++I) {
    Reg AddrA = B.emitArith(Opcode::Add, Operand::reg(PA),
                            Operand::imm(static_cast<int64_t>(I)));
    Reg AddrB = B.emitArith(Opcode::Add, Operand::reg(PB),
                            Operand::imm(static_cast<int64_t>(I)));
    Reg VA = B.emitLoad(AddrA, AliasSrc);
    Reg VB = B.emitLoad(AddrB, AliasSrc2);
    Reg PDiff = B.emitCmpp1(CompareCond::NE, Operand::reg(VA),
                            Operand::reg(VB), CmppAction::UN);
    B.emitBranchTo(Differ, PDiff);
  }
  B.emitArithTo(PA, Opcode::Add, Operand::reg(PA),
                Operand::imm(static_cast<int64_t>(Unroll)));
  B.emitArithTo(PB, Opcode::Add, Operand::reg(PB),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore = B.emitCmpp1(CompareCond::LT, Operand::reg(PA),
                          Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore);
  B.emitBranchTo(Exit, Reg::truePred());

  B.setInsertBlock(Differ);
  B.emitMovTo(Res, Operand::imm(1));

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "cmp kernel");

  RNG Rng(Seed);
  for (size_t I = 0; I < Len; ++I) {
    int64_t V = Rng.nextRange(0, 255);
    P.InitMem.store(SrcBase + static_cast<int64_t>(I), V);
    // Identical prefix, then guaranteed-different bytes.
    int64_t W = I < MatchPrefix ? V : V + 1 + Rng.nextRange(0, 100);
    P.InitMem.store(SrcBase2 + static_cast<int64_t>(I), W);
  }
  P.InitRegs = {{PA, SrcBase},
                {PB, SrcBase2},
                {End, SrcBase + static_cast<int64_t>(Len)}};
  return P;
}

KernelProgram cpr::buildGrepKernel(unsigned Unroll, size_t Len,
                                   double HitRate, uint64_t Seed) {
  assert(Unroll >= 1);
  KernelProgram P;
  P.Description = "grep scan (unroll " + std::to_string(Unroll) + ", len " +
                  std::to_string(Len) + ")";
  P.Func = std::make_unique<Function>("grep_u" + std::to_string(Unroll));
  Function &F = *P.Func;

  constexpr int64_t Target = 42;

  Block &Entry = F.addBlock("Entry");
  Block &Loop = F.addBlock("Loop");
  Block &Hit = F.addBlock("Hit");
  Block &Resume = F.addBlock("Resume");
  Block &Exit = F.addBlock("Exit");

  Reg Cur = F.newReg(RegClass::GPR);
  Reg End = F.newReg(RegClass::GPR);
  Reg Hits = F.newReg(RegClass::GPR);
  Reg HitPos = F.newReg(RegClass::GPR); // cursor snapshot at a hit
  F.observableRegs().push_back(Hits);

  IRBuilder B(F, Entry);
  B.emitMovTo(Hits, Operand::imm(0));

  B.setInsertBlock(Loop);
  for (unsigned I = 0; I < Unroll; ++I) {
    Reg Addr = B.emitArith(Opcode::Add, Operand::reg(Cur),
                           Operand::imm(static_cast<int64_t>(I)));
    Reg V = B.emitLoad(Addr, AliasSrc);
    Reg PHit = B.emitCmpp1(CompareCond::EQ, Operand::reg(V),
                           Operand::imm(Target), CmppAction::UN);
    // Record where the hit happened, then leave the trace.
    B.emitMovTo(HitPos, Operand::reg(Addr), PHit);
    B.emitBranchTo(Hit, PHit);
  }
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                          Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore);
  B.emitBranchTo(Exit, Reg::truePred());

  // Off-trace: count the hit, store its position, resume after it.
  B.setInsertBlock(Hit);
  B.emitArithTo(Hits, Opcode::Add, Operand::reg(Hits), Operand::imm(1));
  Reg Slot = B.emitArith(Opcode::Add, Operand::reg(Hits),
                         Operand::imm(CounterBase));
  B.emitStore(Slot, Operand::reg(HitPos), AliasCounter);
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(HitPos), Operand::imm(1));
  B.setInsertBlock(Resume);
  Reg PMore2 = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                           Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore2);

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "grep kernel");

  RNG Rng(Seed);
  for (size_t I = 0; I < Len; ++I) {
    bool IsHit = Rng.nextBool(HitRate);
    int64_t V = IsHit ? Target : Rng.nextRange(0, 255);
    if (!IsHit && V == Target)
      V = Target + 1;
    P.InitMem.store(SrcBase + static_cast<int64_t>(I), V);
  }
  P.InitRegs = {{Cur, SrcBase},
                {End, SrcBase + static_cast<int64_t>(Len)}};
  return P;
}

KernelProgram cpr::buildWcKernel(unsigned Unroll, size_t Len, uint64_t Seed) {
  assert(Unroll >= 1);
  KernelProgram P;
  P.Description = "wc (unroll " + std::to_string(Unroll) + ", len " +
                  std::to_string(Len) + ")";
  P.Func = std::make_unique<Function>("wc_u" + std::to_string(Unroll));
  Function &F = *P.Func;

  constexpr int64_t Newline = 10;
  constexpr int64_t Space = 32;

  Block &Entry = F.addBlock("Entry");
  Block &Loop = F.addBlock("Loop");
  Block &Nl = F.addBlock("SawNewline");
  Block &Exit = F.addBlock("Exit");

  Reg Cur = F.newReg(RegClass::GPR);
  Reg End = F.newReg(RegClass::GPR);
  Reg Chars = F.newReg(RegClass::GPR);
  Reg Lines = F.newReg(RegClass::GPR);
  Reg Words = F.newReg(RegClass::GPR);
  F.observableRegs().push_back(Chars);
  F.observableRegs().push_back(Lines);
  F.observableRegs().push_back(Words);

  IRBuilder B(F, Entry);
  B.emitMovTo(Chars, Operand::imm(0));
  B.emitMovTo(Lines, Operand::imm(0));
  B.emitMovTo(Words, Operand::imm(0));

  B.setInsertBlock(Loop);
  for (unsigned I = 0; I < Unroll; ++I) {
    Reg Addr = B.emitArith(Opcode::Add, Operand::reg(Cur),
                           Operand::imm(static_cast<int64_t>(I)));
    Reg V = B.emitLoad(Addr, AliasSrc);
    B.emitArithTo(Chars, Opcode::Add, Operand::reg(Chars), Operand::imm(1));
    // Word boundary: predicated counter bump, no branch (if-converted).
    Reg PSpace = B.emitCmpp1(CompareCond::EQ, Operand::reg(V),
                             Operand::imm(Space), CmppAction::UN);
    B.emitArithTo(Words, Opcode::Add, Operand::reg(Words), Operand::imm(1),
                  PSpace);
    // Newline: rare branch off-trace.
    Reg PNl = B.emitCmpp1(CompareCond::EQ, Operand::reg(V),
                          Operand::imm(Newline), CmppAction::UN);
    B.emitBranchTo(Nl, PNl);
  }
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                          Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore);
  B.emitBranchTo(Exit, Reg::truePred());

  // Off-trace: bump the line counter and restart the chunk after the
  // newline position (approximate resume as in a buffered scanner).
  B.setInsertBlock(Nl);
  B.emitArithTo(Lines, Opcode::Add, Operand::reg(Lines), Operand::imm(1));
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore2 = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                           Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore2);
  B.emitBranchTo(Exit, Reg::truePred());

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "wc kernel");

  RNG Rng(Seed);
  for (size_t I = 0; I < Len; ++I) {
    // ~2% newlines, ~15% spaces, rest letters.
    int64_t V;
    double D = Rng.nextDouble();
    if (D < 0.02)
      V = Newline;
    else if (D < 0.17)
      V = Space;
    else
      V = Rng.nextRange(97, 122);
    P.InitMem.store(SrcBase + static_cast<int64_t>(I), V);
  }
  P.InitRegs = {{Cur, SrcBase},
                {End, SrcBase + static_cast<int64_t>(Len)}};
  return P;
}

KernelProgram cpr::buildLexKernel(unsigned Unroll, size_t Len,
                                  uint64_t Seed) {
  assert(Unroll >= 1);
  KernelProgram P;
  P.Description = "lex scanner (unroll " + std::to_string(Unroll) + ")";
  P.Func = std::make_unique<Function>("lex_u" + std::to_string(Unroll));
  Function &F = *P.Func;

  // Character classification goes through a class table, as lex-generated
  // scanners do: cls = classTable[c]; a cascade of single-compare tests
  // then dispatches rare classes to the token-action block.
  constexpr int64_t ClassTableBase = SrcBase2;
  constexpr int64_t ClsIdent = 0, ClsNewline = 1, ClsDigit = 2, ClsOper = 3;

  Block &Entry = F.addBlock("Entry");
  Block &Loop = F.addBlock("Loop");
  Block &TokenAction = F.addBlock("TokenAction");
  Block &Exit = F.addBlock("Exit");

  Reg Cur = F.newReg(RegClass::GPR);
  Reg End = F.newReg(RegClass::GPR);
  Reg Tokens = F.newReg(RegClass::GPR);
  Reg Lines = F.newReg(RegClass::GPR);
  Reg ClassCode = F.newReg(RegClass::GPR);
  F.observableRegs().push_back(Tokens);
  F.observableRegs().push_back(Lines);

  IRBuilder B(F, Entry);
  B.emitMovTo(Tokens, Operand::imm(0));
  B.emitMovTo(Lines, Operand::imm(0));
  B.emitMovTo(ClassCode, Operand::imm(0));

  B.setInsertBlock(Loop);
  for (unsigned I = 0; I < Unroll; ++I) {
    Reg Addr = B.emitArith(Opcode::Add, Operand::reg(Cur),
                           Operand::imm(static_cast<int64_t>(I)));
    Reg V = B.emitLoad(Addr, AliasSrc);
    Reg ClsAddr = B.emitArith(Opcode::Add, Operand::reg(V),
                              Operand::imm(ClassTableBase));
    Reg Cls = B.emitLoad(ClsAddr, AliasSrc2);
    // Three rarely-taken class exits per character.
    Reg PNl = B.emitCmpp1(CompareCond::EQ, Operand::reg(Cls),
                          Operand::imm(ClsNewline), CmppAction::UN);
    B.emitMovTo(ClassCode, Operand::imm(ClsNewline), PNl);
    B.emitBranchTo(TokenAction, PNl);
    Reg PDig = B.emitCmpp1(CompareCond::EQ, Operand::reg(Cls),
                           Operand::imm(ClsDigit), CmppAction::UN);
    B.emitMovTo(ClassCode, Operand::imm(ClsDigit), PDig);
    B.emitBranchTo(TokenAction, PDig);
    Reg POp = B.emitCmpp1(CompareCond::EQ, Operand::reg(Cls),
                          Operand::imm(ClsOper), CmppAction::UN);
    B.emitMovTo(ClassCode, Operand::imm(ClsOper), POp);
    B.emitBranchTo(TokenAction, POp);
  }
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                          Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore);
  B.emitBranchTo(Exit, Reg::truePred());

  // Token action: count the token, count lines when it was a newline,
  // skip past the interesting character.
  B.setInsertBlock(TokenAction);
  B.emitArithTo(Tokens, Opcode::Add, Operand::reg(Tokens), Operand::imm(1));
  Reg PWasNl = B.emitCmpp1(CompareCond::EQ, Operand::reg(ClassCode),
                           Operand::imm(ClsNewline), CmppAction::UN);
  B.emitArithTo(Lines, Opcode::Add, Operand::reg(Lines), Operand::imm(1),
                PWasNl);
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore2 = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                           Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore2);
  B.emitBranchTo(Exit, Reg::truePred());

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "lex kernel");

  RNG Rng(Seed);
  // Class table over byte values.
  for (int64_t C = 0; C < 256; ++C) {
    int64_t Cls = ClsIdent;
    if (C == 10)
      Cls = ClsNewline;
    else if (C >= 48 && C <= 57)
      Cls = ClsDigit;
    else if (C >= 33 && C <= 47)
      Cls = ClsOper;
    P.InitMem.store(ClassTableBase + C, Cls);
  }
  for (size_t I = 0; I < Len; ++I) {
    double D = Rng.nextDouble();
    int64_t V;
    if (D < 0.01)
      V = 10; // newline
    else if (D < 0.03)
      V = Rng.nextRange(48, 57); // digit
    else if (D < 0.05)
      V = Rng.nextRange(33, 47); // operator
    else
      V = Rng.nextRange(97, 122); // identifier characters
    P.InitMem.store(SrcBase + static_cast<int64_t>(I), V);
  }
  P.InitRegs = {{Cur, SrcBase},
                {End, SrcBase + static_cast<int64_t>(Len)}};
  return P;
}

KernelProgram cpr::buildCccpKernel(unsigned Unroll, size_t Len,
                                   uint64_t Seed) {
  assert(Unroll >= 1);
  KernelProgram P;
  P.Description = "cccp scan (unroll " + std::to_string(Unroll) + ")";
  P.Func = std::make_unique<Function>("cccp_u" + std::to_string(Unroll));
  Function &F = *P.Func;

  constexpr int64_t Hash = 35;   // '#': directive start
  constexpr int64_t Slash = 47;  // '/': possible comment
  constexpr int64_t Newline = 10;

  Block &Entry = F.addBlock("Entry");
  Block &Loop = F.addBlock("Loop");
  Block &Special = F.addBlock("Special");
  Block &Exit = F.addBlock("Exit");

  Reg Cur = F.newReg(RegClass::GPR);
  Reg End = F.newReg(RegClass::GPR);
  Reg Directives = F.newReg(RegClass::GPR);
  Reg Comments = F.newReg(RegClass::GPR);
  Reg Lines = F.newReg(RegClass::GPR);
  Reg Kind = F.newReg(RegClass::GPR);
  F.observableRegs().push_back(Directives);
  F.observableRegs().push_back(Comments);
  F.observableRegs().push_back(Lines);

  IRBuilder B(F, Entry);
  B.emitMovTo(Directives, Operand::imm(0));
  B.emitMovTo(Comments, Operand::imm(0));
  B.emitMovTo(Lines, Operand::imm(0));
  B.emitMovTo(Kind, Operand::imm(0));

  B.setInsertBlock(Loop);
  for (unsigned I = 0; I < Unroll; ++I) {
    Reg Addr = B.emitArith(Opcode::Add, Operand::reg(Cur),
                           Operand::imm(static_cast<int64_t>(I)));
    Reg V = B.emitLoad(Addr, AliasSrc);
    // Newline bumps the line counter inline (if-converted, no branch).
    Reg PNl = B.emitCmpp1(CompareCond::EQ, Operand::reg(V),
                          Operand::imm(Newline), CmppAction::UN);
    B.emitArithTo(Lines, Opcode::Add, Operand::reg(Lines), Operand::imm(1),
                  PNl);
    // Directive and comment starts leave the fast path.
    Reg PHash = B.emitCmpp1(CompareCond::EQ, Operand::reg(V),
                            Operand::imm(Hash), CmppAction::UN);
    B.emitMovTo(Kind, Operand::imm(1), PHash);
    B.emitBranchTo(Special, PHash);
    Reg PSlash = B.emitCmpp1(CompareCond::EQ, Operand::reg(V),
                             Operand::imm(Slash), CmppAction::UN);
    B.emitMovTo(Kind, Operand::imm(2), PSlash);
    B.emitBranchTo(Special, PSlash);
  }
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                          Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore);
  B.emitBranchTo(Exit, Reg::truePred());

  B.setInsertBlock(Special);
  Reg PDir = B.emitCmpp1(CompareCond::EQ, Operand::reg(Kind),
                         Operand::imm(1), CmppAction::UN);
  B.emitArithTo(Directives, Opcode::Add, Operand::reg(Directives),
                Operand::imm(1), PDir);
  Reg PCom = B.emitCmpp1(CompareCond::EQ, Operand::reg(Kind),
                         Operand::imm(2), CmppAction::UN);
  B.emitArithTo(Comments, Opcode::Add, Operand::reg(Comments),
                Operand::imm(1), PCom);
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore2 = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                           Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore2);
  B.emitBranchTo(Exit, Reg::truePred());

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "cccp kernel");

  RNG Rng(Seed);
  for (size_t I = 0; I < Len; ++I) {
    double D = Rng.nextDouble();
    int64_t V;
    if (D < 0.015)
      V = Hash;
    else if (D < 0.035)
      V = Slash;
    else if (D < 0.07)
      V = Newline;
    else
      V = Rng.nextRange(97, 122);
    P.InitMem.store(SrcBase + static_cast<int64_t>(I), V);
  }
  P.InitRegs = {{Cur, SrcBase},
                {End, SrcBase + static_cast<int64_t>(Len)}};
  return P;
}

KernelProgram cpr::buildYaccKernel(unsigned Unroll, size_t Steps,
                                   uint64_t Seed) {
  assert(Unroll >= 1);
  KernelProgram P;
  P.Description = "yacc parser loop (unroll " + std::to_string(Unroll) + ")";
  P.Func = std::make_unique<Function>("yacc_u" + std::to_string(Unroll));
  Function &F = *P.Func;

  // Transition table: next = table[state*8 + sym], states 0..7, error
  // encoded as a negative entry (never produced by this input).
  constexpr int64_t TableBase = SrcBase2;

  Block &Entry = F.addBlock("Entry");
  Block &Loop = F.addBlock("Loop");
  Block &ErrorBlk = F.addBlock("Error");
  Block &Exit = F.addBlock("Exit");

  Reg Cur = F.newReg(RegClass::GPR);
  Reg End = F.newReg(RegClass::GPR);
  Reg State = F.newReg(RegClass::GPR);
  Reg Sp = F.newReg(RegClass::GPR);
  Reg Errors = F.newReg(RegClass::GPR);
  F.observableRegs().push_back(State);
  F.observableRegs().push_back(Errors);

  IRBuilder B(F, Entry);
  B.emitMovTo(State, Operand::imm(0));
  B.emitMovTo(Errors, Operand::imm(0));

  B.setInsertBlock(Loop);
  for (unsigned I = 0; I < Unroll; ++I) {
    Reg SymAddr = B.emitArith(Opcode::Add, Operand::reg(Cur),
                              Operand::imm(static_cast<int64_t>(I)));
    Reg Sym = B.emitLoad(SymAddr, AliasSrc);
    // Serial chain: index = state*8 + sym; state = table[index].
    Reg Scaled = B.emitArith(Opcode::Shl, Operand::reg(State),
                             Operand::imm(3));
    Reg Idx = B.emitArith(Opcode::Add, Operand::reg(Scaled),
                          Operand::reg(Sym));
    Reg TblAddr = B.emitArith(Opcode::Add, Operand::reg(Idx),
                              Operand::imm(TableBase));
    Reg Next = B.emitLoad(TblAddr, AliasSrc2);
    // Rare error exit.
    Reg PErr = B.emitCmpp1(CompareCond::LT, Operand::reg(Next),
                           Operand::imm(0), CmppAction::UN);
    B.emitBranchTo(ErrorBlk, PErr);
    // Push the state (value stack).
    Reg Slot = B.emitArith(Opcode::Add, Operand::reg(Sp),
                           Operand::imm(static_cast<int64_t>(I)));
    B.emitStore(Slot, Operand::reg(Next), AliasDst);
    B.emitMovTo(State, Operand::reg(Next));
  }
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  B.emitArithTo(Sp, Opcode::Add, Operand::reg(Sp),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                          Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore);
  B.emitBranchTo(Exit, Reg::truePred());

  B.setInsertBlock(ErrorBlk);
  B.emitArithTo(Errors, Opcode::Add, Operand::reg(Errors), Operand::imm(1));
  B.emitMovTo(State, Operand::imm(0));
  B.emitArithTo(Cur, Opcode::Add, Operand::reg(Cur),
                Operand::imm(static_cast<int64_t>(Unroll)));
  B.emitArithTo(Sp, Opcode::Add, Operand::reg(Sp),
                Operand::imm(static_cast<int64_t>(Unroll)));
  Reg PMore2 = B.emitCmpp1(CompareCond::LT, Operand::reg(Cur),
                           Operand::reg(End), CmppAction::UN);
  B.emitBranchTo(Loop, PMore2);
  B.emitBranchTo(Exit, Reg::truePred());

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "yacc kernel");

  RNG Rng(Seed);
  // Symbols 0..7; the transition table is total (no errors on this input),
  // so the error branches are always fall-through, as in a correct parse.
  for (size_t I = 0; I < Steps; ++I)
    P.InitMem.store(SrcBase + static_cast<int64_t>(I), Rng.nextRange(0, 7));
  for (int64_t S = 0; S < 8; ++S)
    for (int64_t Y = 0; Y < 8; ++Y)
      P.InitMem.store(TableBase + S * 8 + Y, (S * 3 + Y * 5 + 1) % 8);
  P.InitRegs = {{Cur, SrcBase},
                {End, SrcBase + static_cast<int64_t>(Steps)},
                {Sp, DstBase}};
  return P;
}

//===- workloads/Kernels.h - Hand-written IR kernels ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Unix-utility kernels of the paper's benchmark suite, written
/// directly in the EPIC IR as unrolled superblock loops with seeded input
/// data:
///
///  - strcpy: the paper's Section 6 worked example (Figure 6(b) shape,
///    software-pipelined: store previous char, load next, exit on NUL);
///  - cmp: compare two buffers, exit at first mismatch;
///  - grep: scan for a first-character match then verify a short needle;
///  - wc: classify characters (newline / space / word) with counters.
///
/// Each builder returns the function plus the initial memory image and
/// register bindings needed to execute it in the interpreter.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_KERNELS_H
#define WORKLOADS_KERNELS_H

#include "interp/Interpreter.h"
#include "ir/Function.h"

#include <memory>
#include <string>

namespace cpr {

/// A runnable IR program: function + inputs.
struct KernelProgram {
  std::unique_ptr<Function> Func;
  std::vector<RegBinding> InitRegs;
  Memory InitMem;
  std::string Description;
};

/// The paper's strcpy example: a while-loop copy of a NUL-terminated
/// string, unrolled \p Unroll times (4 in Figure 6). \p StringLen
/// characters of nonzero data are placed at the source; \p Seed selects
/// the data.
KernelProgram buildStrcpyKernel(unsigned Unroll = 4, size_t StringLen = 4096,
                                uint64_t Seed = 1);

/// cmp: scan two buffers of length \p Len for the first mismatch, unrolled
/// \p Unroll times. \p MatchPrefix controls where the mismatch occurs.
KernelProgram buildCmpKernel(unsigned Unroll = 8, size_t Len = 4096,
                             size_t MatchPrefix = 4000, uint64_t Seed = 2);

/// grep inner loop: scan a buffer for occurrences of a target byte,
/// counting hits, unrolled \p Unroll times. \p HitRate is the expected
/// fraction of positions that match (rare = biased fall-through branches).
KernelProgram buildGrepKernel(unsigned Unroll = 8, size_t Len = 8192,
                              double HitRate = 0.02, uint64_t Seed = 3);

/// wc inner loop: per character, bump the char counter, test for newline
/// and word separator, unrolled \p Unroll times.
KernelProgram buildWcKernel(unsigned Unroll = 4, size_t Len = 8192,
                            uint64_t Seed = 4);

/// lex-style scanner inner loop: per character, a cascade of character
/// class tests (newline, digit, operator) each ending in a rarely-taken
/// exit to a token-action block; unrolled \p Unroll times.
KernelProgram buildLexKernel(unsigned Unroll = 4, size_t Len = 8192,
                             uint64_t Seed = 5);

/// cccp-style preprocessor scan: per character, tests for directive
/// start, comment start, and newline, with counters; unrolled \p Unroll
/// times.
KernelProgram buildCccpKernel(unsigned Unroll = 4, size_t Len = 8192,
                              uint64_t Seed = 6);

/// yacc-style table-driven parser loop: serial state = table[state + sym]
/// lookups with rare error/accept exits and a stack push per step. Low
/// ILP, biased branches.
KernelProgram buildYaccKernel(unsigned Unroll = 4, size_t Steps = 8192,
                              uint64_t Seed = 7);

} // namespace cpr

#endif // WORKLOADS_KERNELS_H

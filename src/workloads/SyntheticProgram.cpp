//===- workloads/SyntheticProgram.cpp - SPEC-like program generator -------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "workloads/SyntheticProgram.h"

#include "ir/IRBuilder.h"
#include "ir/Verifier.h"
#include "support/RNG.h"

#include <algorithm>

using namespace cpr;

namespace {
constexpr int64_t DataBase = 10'000'000;
constexpr int64_t OutBase = 20'000'000;
constexpr uint8_t AliasData = 1;
constexpr uint8_t AliasOut = 2;
/// Branch condition values are uniform in [0, CondRange).
constexpr int64_t CondRange = 1000;
} // namespace

SyntheticParams cpr::randomSyntheticParams(RNG &Rng) {
  SyntheticParams P;
  P.Superblocks = static_cast<unsigned>(Rng.nextRange(1, 4));
  P.RungsPerSuperblock = static_cast<unsigned>(Rng.nextRange(1, 8));
  P.FallThroughBias = 0.80 + 0.19 * Rng.nextDouble();
  P.UnbiasedFrac = Rng.nextBool(0.3) ? Rng.nextDouble() * 0.5 : 0.0;
  P.InseparableFrac = Rng.nextBool(0.4) ? Rng.nextDouble() * 0.6 : 0.0;
  P.ChainLen = static_cast<unsigned>(Rng.nextRange(0, 4));
  P.ParallelOps = static_cast<unsigned>(Rng.nextRange(0, 4));
  P.StoresPerRung = static_cast<unsigned>(Rng.nextRange(0, 2));
  P.FloatOps = static_cast<unsigned>(Rng.nextRange(0, 2));
  P.Trips = static_cast<unsigned>(Rng.nextRange(4, 64));
  P.Seed = Rng.next();
  return P;
}

KernelProgram cpr::buildSyntheticProgram(const std::string &Name,
                                         const SyntheticParams &Params) {
  KernelProgram P;
  P.Description = "synthetic application '" + Name + "'";
  P.Func = std::make_unique<Function>(Name);
  Function &F = *P.Func;
  RNG Rng(Params.Seed);

  unsigned S = std::max(1u, Params.Superblocks);
  unsigned R = std::max(1u, Params.RungsPerSuperblock);

  // Blocks: Entry, SB_0..SB_{S-1}, Tail, Stub_0..Stub_{S-1}, Exit.
  Block &Entry = F.addBlock("Entry");
  std::vector<Block *> SBs;
  for (unsigned K = 0; K < S; ++K)
    SBs.push_back(&F.addBlock("SB" + std::to_string(K)));
  Block &Tail = F.addBlock("Tail");
  std::vector<Block *> Stubs;
  for (unsigned K = 0; K < S; ++K)
    Stubs.push_back(&F.addBlock("Stub" + std::to_string(K)));
  Block &Exit = F.addBlock("Exit");

  Reg Trip = F.newReg(RegClass::GPR);   // remaining trips
  Reg Cursor = F.newReg(RegClass::GPR); // data cursor (one word per rung)
  Reg OutPtr = F.newReg(RegClass::GPR); // output cursor
  Reg Acc = F.newReg(RegClass::GPR);    // live accumulator (observable)
  // Rotating partial accumulators: rungs fold into Lanes[J % NumLanes]
  // and the lanes combine once per superblock, so the data-dependence
  // height through the arithmetic stays shallow and the *branch* chain is
  // the region's height bottleneck -- the application profile control CPR
  // targets.
  constexpr unsigned NumLanes = 4;
  Reg Lanes[NumLanes];
  for (unsigned Q = 0; Q < NumLanes; ++Q)
    Lanes[Q] = F.newReg(RegClass::GPR);
  F.observableRegs().push_back(Acc);

  IRBuilder B(F, Entry);
  B.emitMovTo(Acc, Operand::imm(0));
  for (unsigned Q = 0; Q < NumLanes; ++Q)
    B.emitMovTo(Lanes[Q], Operand::imm(static_cast<int64_t>(Q)));

  // Per-rung fall-through bias, fixed at generation time so the input
  // data below realizes it.
  std::vector<std::vector<double>> Bias(S, std::vector<double>(R));
  std::vector<std::vector<bool>> Insep(S, std::vector<bool>(R));
  for (unsigned K = 0; K < S; ++K)
    for (unsigned J = 0; J < R; ++J) {
      if (Rng.nextBool(Params.UnbiasedFrac))
        Bias[K][J] = 0.45 + 0.10 * Rng.nextDouble();
      else
        Bias[K][J] = std::min(
            0.999, std::max(0.5, Params.FallThroughBias +
                                     0.04 * (Rng.nextDouble() - 0.5)));
      Insep[K][J] = Rng.nextBool(Params.InseparableFrac);
    }

  // --- Superblocks -------------------------------------------------------
  for (unsigned K = 0; K < S; ++K) {
    B.setInsertBlock(*SBs[K]);
    for (unsigned J = 0; J < R; ++J) {
      Reg Lane = Lanes[J % NumLanes];
      // Parallel arithmetic feeding this rung's lane (kept live).
      Reg Par = Lane;
      for (unsigned Q = 0; Q < Params.ParallelOps; ++Q) {
        Reg T = B.emitArith(Opcode::Add, Operand::reg(Cursor),
                            Operand::imm(static_cast<int64_t>(Q + 3)));
        Par = B.emitArith(Opcode::Xor, Operand::reg(Par), Operand::reg(T));
      }
      // Dependent chain.
      Reg Chain = Par;
      for (unsigned Q = 0; Q < Params.ChainLen; ++Q)
        Chain = B.emitArith(Q % 2 ? Opcode::Add : Opcode::Xor,
                            Operand::reg(Chain), Operand::imm(17 + Q));
      B.emitMovTo(Lane, Operand::reg(Chain));

      // Stores of intermediate results.
      for (unsigned Q = 0; Q < Params.StoresPerRung; ++Q) {
        Reg Slot = B.emitArith(Opcode::Add, Operand::reg(OutPtr),
                               Operand::imm(static_cast<int64_t>(Q)));
        B.emitStore(Slot, Operand::reg(Chain), AliasOut);
      }

      // Branch condition: load this rung's data word (a fixed offset from
      // the loop-entry cursor, so all rung conditions of a trip are
      // mutually independent) and compare against the per-rung threshold.
      // An inseparable rung's load carries alias class 0 (may alias the
      // stores above), defeating separability.
      Reg CondAddr = B.emitArith(
          Opcode::Add, Operand::reg(Cursor),
          Operand::imm(static_cast<int64_t>(K) * R + J));
      Reg CondVal =
          B.emitLoad(CondAddr, Insep[K][J] ? uint8_t{0} : AliasData);
      int64_t Threshold = static_cast<int64_t>(
          static_cast<double>(CondRange) * (1.0 - Bias[K][J]));
      Reg PTake = B.emitCmpp1(CompareCond::LT, Operand::reg(CondVal),
                              Operand::imm(Threshold), CmppAction::UN);
      B.emitBranchTo(*Stubs[K], PTake);
    }
    // Fold the lanes into the live accumulator (short tree per block).
    {
      Reg T01 = B.emitArith(Opcode::Xor, Operand::reg(Lanes[0]),
                            Operand::reg(Lanes[1]));
      Reg T23 = B.emitArith(Opcode::Xor, Operand::reg(Lanes[2]),
                            Operand::reg(Lanes[3]));
      Reg T = B.emitArith(Opcode::Xor, Operand::reg(T01), Operand::reg(T23));
      B.emitArithTo(Acc, Opcode::Xor, Operand::reg(Acc), Operand::reg(T));
    }
    // Floating-point filler (uses the F units; result stored to stay
    // live through dead-code elimination).
    if (Params.FloatOps > 0) {
      Reg FAcc = F.newReg(RegClass::FPR);
      B.emitMovTo(FAcc, Operand::imm(1));
      for (unsigned Q = 0; Q < Params.FloatOps; ++Q)
        FAcc = B.emitArith(Opcode::FAdd, Operand::reg(FAcc),
                           Operand::reg(FAcc));
      Reg FSlot = B.emitArith(Opcode::Add, Operand::reg(OutPtr),
                              Operand::imm(61));
      B.emitStore(FSlot, Operand::reg(FAcc), AliasOut);
    }
    B.emitArithTo(OutPtr, Opcode::Add, Operand::reg(OutPtr),
                  Operand::imm(static_cast<int64_t>(Params.StoresPerRung) *
                               R));
    // Fall through to the next superblock (or the tail).
  }

  // --- Loop tail ---------------------------------------------------------
  B.setInsertBlock(Tail);
  B.emitArithTo(Cursor, Opcode::Add, Operand::reg(Cursor),
                Operand::imm(static_cast<int64_t>(S) * R));
  B.emitArithTo(Trip, Opcode::Sub, Operand::reg(Trip), Operand::imm(1));
  Reg PMore = B.emitCmpp1(CompareCond::GT, Operand::reg(Trip),
                          Operand::imm(0), CmppAction::UN);
  B.emitBranchTo(*SBs[0], PMore);
  B.emitBranchTo(Exit, Reg::truePred());

  // --- Off-path stubs ----------------------------------------------------
  for (unsigned K = 0; K < S; ++K) {
    B.setInsertBlock(*Stubs[K]);
    // A little off-trace work, then rejoin at the next superblock.
    B.emitArithTo(Acc, Opcode::Add, Operand::reg(Acc), Operand::imm(1));
    Reg Slot = B.emitArith(Opcode::Add, Operand::reg(OutPtr),
                           Operand::imm(59));
    B.emitStore(Slot, Operand::reg(Acc), AliasOut);
    Block &Rejoin = K + 1 < S ? *SBs[K + 1] : Tail;
    B.emitBranchTo(Rejoin, Reg::truePred());
  }

  B.setInsertBlock(Exit);
  B.emitHalt();

  verifyOrDie(F, "synthetic program " + Name);

  // --- Input data --------------------------------------------------------
  // One condition word per rung per trip. The cursor never resets, so
  // every trip sees fresh data realizing the per-rung biases on average.
  size_t TotalWords =
      static_cast<size_t>(Params.Trips) * static_cast<size_t>(S) *
          static_cast<size_t>(R) +
      64;
  for (size_t I = 0; I < TotalWords; ++I)
    P.InitMem.store(DataBase + static_cast<int64_t>(I),
                    Rng.nextRange(0, CondRange - 1));
  P.InitRegs = {{Trip, static_cast<int64_t>(Params.Trips)},
                {Cursor, DataBase},
                {OutPtr, OutBase}};
  return P;
}

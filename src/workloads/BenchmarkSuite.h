//===- workloads/BenchmarkSuite.h - The paper's benchmark list --*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's benchmark suite (Section 7): SPEC-92 and SPEC-95
/// applications plus common Unix utilities. The utilities are real IR
/// kernels (workloads/Kernels.h); the SPEC applications are synthetic
/// substitutes with per-application branch-structure parameters
/// (workloads/SyntheticProgram.h and DESIGN.md's substitution notes).
///
/// Thread-safety: Build() factories must be pure -- deterministic from
/// their captured parameters (any randomness via a locally seeded RNG,
/// see support/RNG.h) and free of shared mutable state -- because
/// runSuite() invokes them concurrently from thread-pool workers, one
/// per suite row. paperBenchmarkSuite() returns a fresh vector per call
/// and may itself be called from any thread.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_BENCHMARKSUITE_H
#define WORKLOADS_BENCHMARKSUITE_H

#include "workloads/Kernels.h"

#include <functional>
#include <string>
#include <vector>

namespace cpr {

/// One suite entry.
struct BenchmarkSpec {
  std::string Name;                      ///< the paper's row label
  std::function<KernelProgram()> Build;  ///< program factory
  bool InSpec95Mean = false; ///< contributes to the Gmean-spec95 row
};

/// The 24 rows of the paper's Tables 2 and 3 (SPEC-92, SPEC-95, Unix
/// utilities), in the paper's order.
std::vector<BenchmarkSpec> paperBenchmarkSuite();

/// Returns the suite entry named \p Name, aborting if absent.
const BenchmarkSpec &findBenchmark(const std::vector<BenchmarkSpec> &Suite,
                                   const std::string &Name);

} // namespace cpr

#endif // WORKLOADS_BENCHMARKSUITE_H

//===- workloads/BenchmarkSuite.cpp - The paper's benchmark list ----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
//
// Parameter choices: each synthetic application's branch structure is
// tuned to the qualitative description the paper gives of its behavior
// (or, absent any, to a generic application profile):
//
//  - 099.go is "dominated by unbiased branches" -> high UnbiasedFrac;
//  - 023.eqntott forms long superblocks whose delayed exits hurt the
//    sequential/narrow machines -> long regions, moderate bias, low
//    inseparability;
//  - big compilers/interpreters (gcc, cc1, li, perl, vortex) -> shorter
//    regions, moderate bias, some inseparable memory;
//  - numeric/media codes (ear, ijpeg) -> more parallel arithmetic and
//    floating-point mix, well-biased branches.
//
// The utilities are real kernels from workloads/Kernels.h.
//
//===----------------------------------------------------------------------===//

#include "workloads/BenchmarkSuite.h"

#include "support/Error.h"
#include "workloads/SyntheticProgram.h"

using namespace cpr;

namespace {

KernelProgram synth(const char *Name, unsigned SBs, unsigned Rungs,
                    double Bias, double Unbiased, double Insep,
                    unsigned Chain, unsigned Par, unsigned Stores,
                    unsigned FloatOps, unsigned Trips, uint64_t Seed) {
  SyntheticParams P;
  P.Superblocks = SBs;
  P.RungsPerSuperblock = Rungs;
  P.FallThroughBias = Bias;
  P.UnbiasedFrac = Unbiased;
  P.InseparableFrac = Insep;
  P.ChainLen = Chain;
  P.ParallelOps = Par;
  P.StoresPerRung = Stores;
  P.FloatOps = FloatOps;
  P.Trips = Trips;
  P.Seed = Seed;
  return buildSyntheticProgram(Name, P);
}

} // namespace

std::vector<BenchmarkSpec> cpr::paperBenchmarkSuite() {
  std::vector<BenchmarkSpec> Suite;
  auto Add = [&](const std::string &Name, std::function<KernelProgram()> B,
                 bool Spec95 = false) {
    Suite.push_back(BenchmarkSpec{Name, std::move(B), Spec95});
  };

  // --- SPEC-92 -----------------------------------------------------------
  Add("008.espresso", [] {
    return synth("espresso", 5, 6, 0.985, 0.06, 0.10, 2, 3, 1, 0, 300, 9201);
  });
  Add("022.li", [] {
    return synth("li", 6, 4, 0.98, 0.1, 0.20, 3, 2, 1, 0, 300, 9202);
  });
  Add("023.eqntott", [] {
    return synth("eqntott", 3, 12, 0.975, 0.04, 0.05, 2, 3, 1, 0, 300, 9203);
  });
  Add("026.compress", [] {
    return synth("compress92", 4, 5, 0.98, 0.08, 0.15, 3, 2, 1, 0, 300,
                 9204);
  });
  Add("056.ear", [] {
    return synth("ear", 4, 4, 0.99, 0.03, 0.05, 2, 4, 1, 4, 300, 9205);
  });
  Add("072.sc", [] {
    return synth("sc", 5, 5, 0.985, 0.06, 0.12, 2, 3, 1, 0, 300, 9206);
  });
  Add("085.cc1", [] {
    return synth("cc1", 7, 4, 0.98, 0.1, 0.18, 2, 2, 1, 0, 300, 9207);
  });

  // --- SPEC-95 -----------------------------------------------------------
  Add("099.go",
      [] {
        return synth("go", 6, 4, 0.93, 0.55, 0.15, 2, 3, 1, 0, 300, 9501);
      },
      /*Spec95=*/true);
  Add("124.m88ksim",
      [] {
        return synth("m88ksim", 5, 5, 0.985, 0.08, 0.12, 2, 3, 1, 0, 300,
                     9502);
      },
      true);
  Add("126.gcc",
      [] {
        return synth("gcc", 8, 3, 0.975, 0.18, 0.20, 2, 2, 1, 0, 300, 9503);
      },
      true);
  Add("129.compress",
      [] {
        return synth("compress95", 4, 5, 0.98, 0.08, 0.15, 3, 2, 1, 0, 300,
                     9504);
      },
      true);
  Add("130.li",
      [] {
        return synth("li95", 6, 4, 0.98, 0.12, 0.20, 3, 2, 1, 0, 300, 9505);
      },
      true);
  Add("132.ijpeg",
      [] {
        return synth("ijpeg", 4, 5, 0.99, 0.05, 0.08, 2, 4, 1, 2, 300,
                     9506);
      },
      true);
  Add("134.perl",
      [] {
        return synth("perl", 6, 4, 0.98, 0.1, 0.18, 2, 2, 1, 0, 300, 9507);
      },
      true);
  Add("147.vortex",
      [] {
        return synth("vortex", 7, 4, 0.985, 0.08, 0.15, 2, 2, 1, 0, 300,
                     9508);
      },
      true);

  // --- Unix utilities (real kernels) --------------------------------------
  Add("cccp", [] { return buildCccpKernel(4, 16384, 61); });
  Add("cmp", [] { return buildCmpKernel(8, 16384, 16000, 62); });
  Add("eqn", [] {
    return synth("eqn", 4, 5, 0.98, 0.08, 0.10, 2, 2, 1, 0, 300, 9601);
  });
  Add("grep", [] { return buildGrepKernel(8, 16384, 0.01, 63); });
  Add("lex", [] { return buildLexKernel(4, 16384, 64); });
  Add("strcpy", [] { return buildStrcpyKernel(8, 16384, 65); });
  Add("tbl", [] {
    return synth("tbl", 4, 5, 0.975, 0.1, 0.12, 2, 2, 1, 0, 300, 9602);
  });
  Add("wc", [] { return buildWcKernel(4, 16384, 66); });
  Add("yacc", [] { return buildYaccKernel(4, 16384, 67); });

  return Suite;
}

const BenchmarkSpec &cpr::findBenchmark(
    const std::vector<BenchmarkSpec> &Suite, const std::string &Name) {
  for (const BenchmarkSpec &S : Suite)
    if (S.Name == Name)
      return S;
  reportFatalError("unknown benchmark '" + Name + "'");
}

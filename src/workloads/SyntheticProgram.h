//===- workloads/SyntheticProgram.h - SPEC-like program generator *- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Parameterized generator of SPEC-like application programs. The paper's
/// SPEC92/95 binaries and inputs are unavailable, so each application is
/// substituted by a synthetic program whose *branch structure* carries the
/// characteristics that control CPR responds to (see DESIGN.md):
///
///  - branch density and bias distribution (go ~= unbiased, eqntott ~=
///    long superblocks with heavy cumulative exit weight, gcc ~= many
///    short regions, ...);
///  - separability (fraction of branch conditions fed by loads that the
///    "compiler" cannot disambiguate from nearby stores);
///  - available ILP around the branches (dependence chain length vs.
///    parallel width, memory and floating-point operation mix).
///
/// The generated program is fully executable: an outer counted loop walks
/// a table of seeded random data; each branch condition loads from that
/// table and compares against a per-branch threshold chosen so the
/// profiled taken ratio realizes the requested bias.
///
//===----------------------------------------------------------------------===//

#ifndef WORKLOADS_SYNTHETICPROGRAM_H
#define WORKLOADS_SYNTHETICPROGRAM_H

#include "workloads/Kernels.h"

namespace cpr {

/// Shape parameters of one synthetic application.
struct SyntheticParams {
  /// Number of superblocks chained in the loop body.
  unsigned Superblocks = 4;
  /// Branch rungs per superblock.
  unsigned RungsPerSuperblock = 5;
  /// Mean probability that a rung's exit branch falls through.
  double FallThroughBias = 0.96;
  /// Fraction of rungs whose bias is ~0.5 instead (unpredictable).
  double UnbiasedFrac = 0.0;
  /// Fraction of rungs whose condition load shares an alias class with a
  /// preceding store (defeats separability there).
  double InseparableFrac = 0.0;
  /// Length of the dependent arithmetic chain feeding each rung.
  unsigned ChainLen = 2;
  /// Independent (parallel) arithmetic operations per rung.
  unsigned ParallelOps = 2;
  /// Stores per rung (word results written to an output table).
  unsigned StoresPerRung = 1;
  /// Floating-point operations per superblock (exercises the F units).
  unsigned FloatOps = 0;
  /// Outer loop trip count (dynamic scale).
  unsigned Trips = 256;
  /// Data seed.
  uint64_t Seed = 1;
};

/// Builds one synthetic application named \p Name.
KernelProgram buildSyntheticProgram(const std::string &Name,
                                    const SyntheticParams &Params);

class RNG;

/// Draws a randomized parameter set from \p Rng, bounded so the resulting
/// program interprets in well under a second. The fuzzer's generator uses
/// this as its "application-shaped" program family.
SyntheticParams randomSyntheticParams(RNG &Rng);

} // namespace cpr

#endif // WORKLOADS_SYNTHETICPROGRAM_H

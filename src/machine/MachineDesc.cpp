//===- machine/MachineDesc.cpp - EPIC machine models ----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "machine/MachineDesc.h"

#include "support/Error.h"

#include <vector>

using namespace cpr;

MachineDesc::MachineDesc(std::string Name, int I, int F, int M, int B,
                         bool Sequential, int BranchLatency)
    : Name(std::move(Name)), Width{I, F, M, B}, Sequential(Sequential),
      BranchLatency(BranchLatency), MispredictPenalty(BranchLatency + 4),
      BTBMissPenalty(BranchLatency + 1) {
  assert(I >= 1 && F >= 0 && M >= 1 && B >= 1 && "degenerate machine");
  assert(BranchLatency >= 1 && "branch latency must be at least 1");
}

MachineDesc MachineDesc::sequential(int BranchLatency) {
  return MachineDesc("sequential", 1, 1, 1, 1, /*Sequential=*/true,
                     BranchLatency);
}

MachineDesc MachineDesc::narrow(int BranchLatency) {
  return MachineDesc("narrow", 2, 1, 1, 1, /*Sequential=*/false,
                     BranchLatency);
}

MachineDesc MachineDesc::medium(int BranchLatency) {
  return MachineDesc("medium", 4, 2, 2, 1, /*Sequential=*/false,
                     BranchLatency);
}

MachineDesc MachineDesc::wide(int BranchLatency) {
  return MachineDesc("wide", 8, 4, 4, 2, /*Sequential=*/false, BranchLatency);
}

MachineDesc MachineDesc::infinite(int BranchLatency) {
  return MachineDesc("infinite", 75, 25, 25, 25, /*Sequential=*/false,
                     BranchLatency);
}

std::vector<MachineDesc> MachineDesc::paperModels(int BranchLatency) {
  std::vector<MachineDesc> Models;
  Models.push_back(sequential(BranchLatency));
  Models.push_back(narrow(BranchLatency));
  Models.push_back(medium(BranchLatency));
  Models.push_back(wide(BranchLatency));
  Models.push_back(infinite(BranchLatency));
  return Models;
}

int MachineDesc::issueWidth() const {
  if (Sequential)
    return 1;
  int W = 0;
  for (int C : Width)
    W += C;
  return W;
}

int MachineDesc::latency(const Operation &Op) const {
  switch (Op.getOpcode()) {
  case Opcode::Mul:
    return 3; // integer multiply - 3 (paper section 7)
  case Opcode::Div:
  case Opcode::Rem:
    return 8; // integer divide - 8
  case Opcode::FAdd:
  case Opcode::FSub:
    return 3; // simple floating point - 3
  case Opcode::FMul:
    return 3; // floating-point multiply - 3
  case Opcode::FDiv:
    return 8; // floating-point divide - 8
  case Opcode::Load:
    return 2; // memory load - 2
  case Opcode::Store:
    return 1; // memory store - 1
  case Opcode::Branch:
    return BranchLatency;
  default:
    return 1; // simple integer (incl. cmpp, mov, pbr) - 1
  }
}

//===- machine/MachineDesc.h - EPIC machine models --------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Machine descriptions for the class of regular EPIC processors the paper
/// evaluates: a processor is an (I, F, M, B) tuple of integer, float,
/// memory, and branch unit counts, plus the special "sequential" processor
/// that issues exactly one operation of any type per cycle. Operation
/// latencies follow the paper's Section 7: simple integer 1, simple float 3,
/// load 2, store 1, multiply 3, divide 8, branch latency configurable
/// (1 in the paper's main experiment).
///
//===----------------------------------------------------------------------===//

#ifndef MACHINE_MACHINEDESC_H
#define MACHINE_MACHINEDESC_H

#include "ir/Opcode.h"
#include "ir/Operation.h"

#include <string>
#include <vector>

namespace cpr {

/// A regular EPIC processor model.
class MachineDesc {
public:
  /// Builds a custom machine. Pass \p Sequential to model the paper's
  /// one-op-per-cycle sequential processor (unit widths then unused).
  MachineDesc(std::string Name, int I, int F, int M, int B,
              bool Sequential = false, int BranchLatency = 1);

  /// The paper's five named configurations (Section 7).
  static MachineDesc sequential(int BranchLatency = 1);
  static MachineDesc narrow(int BranchLatency = 1);   // (2,1,1,1)
  static MachineDesc medium(int BranchLatency = 1);   // (4,2,2,1)
  static MachineDesc wide(int BranchLatency = 1);     // (8,4,4,2)
  static MachineDesc infinite(int BranchLatency = 1); // (75,25,25,25)

  /// All five models in the paper's column order: Seq, Nar, Med, Wid, Inf.
  static std::vector<MachineDesc> paperModels(int BranchLatency = 1);

  const std::string &getName() const { return Name; }

  /// Returns the number of units of \p Kind.
  int unitCount(UnitKind Kind) const {
    return Width[static_cast<unsigned>(Kind)];
  }

  /// True for the one-op-per-cycle sequential processor.
  bool isSequential() const { return Sequential; }

  /// Total issue width per cycle (1 for sequential).
  int issueWidth() const;

  /// Result latency of \p Op in cycles. Branch latency is the cycle count
  /// before a taken branch redirects fetch (its exposed delay region).
  int latency(const Operation &Op) const;

  /// The configured branch latency.
  int branchLatency() const { return BranchLatency; }

  /// Cycles a mispredicted branch costs beyond its schedule position
  /// (fetch redirect + front-end refill), used by the trace-driven
  /// simulator (sim/TraceSimulator.h). The paper's static methodology
  /// corresponds to a penalty of 0.
  int mispredictPenalty() const { return MispredictPenalty; }
  MachineDesc &setMispredictPenalty(int Cycles) {
    assert(Cycles >= 0 && "penalty cannot be negative");
    MispredictPenalty = Cycles;
    return *this;
  }

  /// Operations the front end can fetch per cycle, used by the simulator's
  /// decoupled-frontend model (sim/TraceSimulator.h). Defaults to the
  /// issue width: a balanced frontend that only stalls on taken-branch
  /// fetch breaks. Narrower widths model a fetch-limited machine.
  int fetchWidth() const { return FetchWidth > 0 ? FetchWidth : issueWidth(); }
  MachineDesc &setFetchWidth(int Ops) {
    assert(Ops >= 1 && "fetch width must be at least 1");
    FetchWidth = Ops;
    return *this;
  }

  /// Cycles a taken branch costs when its target misses the BTB despite a
  /// correct direction prediction (a fetch redirect without a full
  /// pipeline restart); smaller than mispredictPenalty().
  int btbMissPenalty() const { return BTBMissPenalty; }
  MachineDesc &setBTBMissPenalty(int Cycles) {
    assert(Cycles >= 0 && "penalty cannot be negative");
    BTBMissPenalty = Cycles;
    return *this;
  }

private:
  std::string Name;
  int Width[4];
  bool Sequential;
  int BranchLatency;
  /// Default pipeline-restart cost: branch latency plus a short front-end
  /// refill, set in the constructor.
  int MispredictPenalty;
  /// 0 = track the issue width.
  int FetchWidth = 0;
  /// Default redirect cost: the branch latency plus one bubble, set in
  /// the constructor.
  int BTBMissPenalty;
};

} // namespace cpr

#endif // MACHINE_MACHINEDESC_H

//===- interp/Profiler.cpp - Interpreter-driven profiling -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

#include "support/Error.h"

using namespace cpr;

ProfileData cpr::profileRun(const Function &F, Memory &Mem,
                            const std::vector<RegBinding> &InitRegs,
                            DynStats *StatsOut, BranchTrace *TraceOut) {
  ProfileData Profile;
  InterpOptions Opts;
  Opts.Profile = &Profile;
  Opts.Trace = TraceOut;
  RunResult R = interpret(F, Mem, InitRegs, Opts);
  if (!R.halted())
    reportFatalError("profiling run of @" + F.getName() +
                     " did not halt: " + R.ErrorMsg);
  if (StatsOut)
    *StatsOut = R.Stats;
  return Profile;
}

EquivResult cpr::checkEquivalence(const Function &A, const Function &B,
                                  const Memory &Mem,
                                  const std::vector<RegBinding> &InitRegs) {
  EquivResult Res;
  Memory MemA = Mem;
  Memory MemB = Mem;
  RunResult RA = interpret(A, MemA, InitRegs);
  RunResult RB = interpret(B, MemB, InitRegs);

  if (RA.St != RB.St) {
    Res.Detail = "halt status differs: @" + A.getName() + " " +
                 (RA.halted() ? "halted" : RA.ErrorMsg) + " vs @" +
                 B.getName() + " " + (RB.halted() ? "halted" : RB.ErrorMsg);
    return Res;
  }
  if (RA.St != RunResult::Status::Halted) {
    Res.Detail = "both runs failed to halt: " + RA.ErrorMsg;
    return Res;
  }
  if (RA.Observed != RB.Observed) {
    Res.Detail = "observable register values differ";
    return Res;
  }
  // Semantic memory comparison: every address written by either run must
  // read identically (a write of zero to an otherwise-untouched cell is
  // equivalent to no write).
  for (const auto &[Addr, Val] : MemA.cells()) {
    if (MemB.load(Addr) != Val) {
      Res.Detail = "memory differs at address " + std::to_string(Addr) +
                   ": " + std::to_string(Val) + " vs " +
                   std::to_string(MemB.load(Addr));
      return Res;
    }
  }
  for (const auto &[Addr, Val] : MemB.cells()) {
    if (MemA.load(Addr) != Val) {
      Res.Detail = "memory differs at address " + std::to_string(Addr) +
                   ": " + std::to_string(MemA.load(Addr)) + " vs " +
                   std::to_string(Val);
      return Res;
    }
  }
  Res.Equivalent = true;
  return Res;
}

//===- interp/Profiler.cpp - Interpreter-driven profiling -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Profiler.h"

#include "support/Error.h"

using namespace cpr;

ProfileData cpr::profileRun(const Function &F, Memory &Mem,
                            const std::vector<RegBinding> &InitRegs,
                            DynStats *StatsOut, BranchTrace *TraceOut) {
  Expected<ProfileData> P = tryProfileRun(F, Mem, InitRegs, StatsOut, TraceOut);
  if (!P)
    reportFatalError(P.diagnostic().Message);
  return P.takeValue();
}

Expected<ProfileData> cpr::tryProfileRun(const Function &F, Memory &Mem,
                                         const std::vector<RegBinding> &InitRegs,
                                         DynStats *StatsOut,
                                         BranchTrace *TraceOut,
                                         uint64_t MaxSteps) {
  ProfileData Profile;
  InterpOptions Opts;
  Opts.Profile = &Profile;
  Opts.Trace = TraceOut;
  if (MaxSteps != 0)
    Opts.MaxSteps = MaxSteps;
  RunResult R = interpret(F, Mem, InitRegs, Opts);
  if (!R.halted()) {
    std::string Msg = "profiling run of @" + F.getName() +
                      " did not halt: " + R.ErrorMsg;
    if (R.St == RunResult::Status::StepLimit)
      return Status::error(DiagCode::BudgetExhausted,
                           "profiling run of @" + F.getName() +
                               " exhausted its step budget (" +
                               std::to_string(Opts.MaxSteps) + " steps)",
                           "interp.profile");
    return Status::error(DiagCode::RunFailed, std::move(Msg),
                         "interp.profile");
  }
  if (StatsOut)
    *StatsOut = R.Stats;
  return Profile;
}

const char *cpr::divergenceName(EquivResult::Divergence Kind) {
  switch (Kind) {
  case EquivResult::Divergence::None:
    return "none";
  case EquivResult::Divergence::ExitPath:
    return "exit-path";
  case EquivResult::Divergence::Register:
    return "register";
  case EquivResult::Divergence::Memory:
    return "memory";
  }
  return "unknown";
}

namespace {

std::string describeExit(const RunResult &R) {
  switch (R.St) {
  case RunResult::Status::Halted:
    return "halted";
  case RunResult::Status::Trapped:
    return "trapped (compensation canary)";
  case RunResult::Status::StepLimit:
    return "hit the step limit";
  case RunResult::Status::Error:
    return "errored: " + R.ErrorMsg;
  }
  return "unknown";
}

/// The last store either run issued to \p Addr, as triage detail for a
/// memory divergence ("who wrote this last, and what").
std::string describeLastStore(const std::vector<StoreEvent> &Trace,
                              int64_t Addr) {
  for (size_t I = Trace.size(); I-- > 0;)
    if (Trace[I].Addr == Addr)
      return "store #" + std::to_string(I) + " (op id " +
             std::to_string(Trace[I].Op) + ") wrote " +
             std::to_string(Trace[I].Value);
  return "never stored (initial value)";
}

} // namespace

EquivResult cpr::checkEquivalence(const Function &A, const Function &B,
                                  const Memory &Mem,
                                  const std::vector<RegBinding> &InitRegs) {
  EquivResult Res;
  Memory MemA = Mem;
  Memory MemB = Mem;
  std::vector<StoreEvent> StoresA, StoresB;
  InterpOptions OptsA, OptsB;
  OptsA.StoreTrace = &StoresA;
  OptsB.StoreTrace = &StoresB;
  RunResult RA = interpret(A, MemA, InitRegs, OptsA);
  RunResult RB = interpret(B, MemB, InitRegs, OptsB);

  if (RA.St != RB.St) {
    Res.Kind = EquivResult::Divergence::ExitPath;
    Res.Detail = "exit path differs: @" + A.getName() + " " +
                 describeExit(RA) + " after " + std::to_string(RA.Steps) +
                 " steps vs @" + B.getName() + " " + describeExit(RB) +
                 " after " + std::to_string(RB.Steps) + " steps";
    return Res;
  }
  if (RA.St != RunResult::Status::Halted) {
    Res.Kind = EquivResult::Divergence::ExitPath;
    Res.Detail = "both runs failed to halt: " + RA.ErrorMsg;
    return Res;
  }
  if (RA.Observed != RB.Observed) {
    Res.Kind = EquivResult::Divergence::Register;
    // Name the first diverging observable. The lists follow
    // observableRegs() order, which both functions share (the treated
    // code keeps the baseline's observables).
    size_t N = std::min(RA.Observed.size(), RB.Observed.size());
    for (size_t I = 0; I < N; ++I) {
      if (RA.Observed[I] != RB.Observed[I]) {
        std::string Name = I < A.observableRegs().size()
                               ? A.observableRegs()[I].str()
                               : "#" + std::to_string(I);
        Res.Detail = "observable " + Name + " differs: " +
                     std::to_string(RA.Observed[I]) + " vs " +
                     std::to_string(RB.Observed[I]);
        return Res;
      }
    }
    Res.Detail = "observable register count differs: " +
                 std::to_string(RA.Observed.size()) + " vs " +
                 std::to_string(RB.Observed.size());
    return Res;
  }
  // Semantic memory comparison: every address written by either run must
  // read identically (a write of zero to an otherwise-untouched cell is
  // equivalent to no write). Report the lowest diverging address so the
  // diagnostic is deterministic regardless of hash-map iteration order.
  bool HaveDiverging = false;
  int64_t DivergingAddr = 0;
  auto NoteDivergence = [&](int64_t Addr) {
    if (!HaveDiverging || Addr < DivergingAddr) {
      HaveDiverging = true;
      DivergingAddr = Addr;
    }
  };
  for (const auto &[Addr, Val] : MemA.cells())
    if (MemB.load(Addr) != Val)
      NoteDivergence(Addr);
  for (const auto &[Addr, Val] : MemB.cells())
    if (MemA.load(Addr) != Val)
      NoteDivergence(Addr);
  if (HaveDiverging) {
    Res.Kind = EquivResult::Divergence::Memory;
    Res.Detail = "memory differs at address " +
                 std::to_string(DivergingAddr) + ": " +
                 std::to_string(MemA.load(DivergingAddr)) + " vs " +
                 std::to_string(MemB.load(DivergingAddr)) + "; @" +
                 A.getName() + " " + describeLastStore(StoresA, DivergingAddr) +
                 ", @" + B.getName() + " " +
                 describeLastStore(StoresB, DivergingAddr);
    return Res;
  }
  Res.Equivalent = true;
  return Res;
}

//===- interp/Profiler.h - Interpreter-driven profiling ---------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience wrappers: profile a function by running it, and check two
/// functions for observational equivalence on identical inputs (the
/// correctness oracle of the transformation property tests).
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_PROFILER_H
#define INTERP_PROFILER_H

#include "interp/Interpreter.h"

namespace cpr {

/// Runs \p F once and returns its profile. \p Mem is mutated.
/// Aborts if the run does not halt cleanly. When \p TraceOut is non-null
/// the run's branch stream is recorded there as well.
ProfileData profileRun(const Function &F, Memory &Mem,
                       const std::vector<RegBinding> &InitRegs,
                       DynStats *StatsOut = nullptr,
                       BranchTrace *TraceOut = nullptr);

/// Result of an equivalence comparison.
struct EquivResult {
  bool Equivalent = false;
  std::string Detail; ///< human-readable mismatch description
};

/// Runs \p A and \p B from identical initial memory (\p Mem, copied) and
/// register bindings, then compares halt status, final memory, and
/// observable register values.
EquivResult checkEquivalence(const Function &A, const Function &B,
                             const Memory &Mem,
                             const std::vector<RegBinding> &InitRegs);

} // namespace cpr

#endif // INTERP_PROFILER_H

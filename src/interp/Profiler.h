//===- interp/Profiler.h - Interpreter-driven profiling ---------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience wrappers: profile a function by running it, and check two
/// functions for observational equivalence on identical inputs (the
/// correctness oracle of the transformation property tests).
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_PROFILER_H
#define INTERP_PROFILER_H

#include "interp/Interpreter.h"
#include "support/Diagnostic.h"

namespace cpr {

/// Runs \p F once and returns its profile. \p Mem is mutated.
/// Aborts if the run does not halt cleanly. When \p TraceOut is non-null
/// the run's branch stream is recorded there as well.
ProfileData profileRun(const Function &F, Memory &Mem,
                       const std::vector<RegBinding> &InitRegs,
                       DynStats *StatsOut = nullptr,
                       BranchTrace *TraceOut = nullptr);

/// Non-fatal, budget-aware form of profileRun (docs/ROBUSTNESS.md). A run
/// that hits the step cap comes back as a BudgetExhausted diagnostic, any
/// other non-halt as RunFailed; both at site "interp.profile".
/// \p MaxSteps of 0 keeps the interpreter's default cap.
Expected<ProfileData> tryProfileRun(const Function &F, Memory &Mem,
                                    const std::vector<RegBinding> &InitRegs,
                                    DynStats *StatsOut = nullptr,
                                    BranchTrace *TraceOut = nullptr,
                                    uint64_t MaxSteps = 0);

/// Result of an equivalence comparison. On a mismatch, \c Detail names the
/// first diverging artifact -- the exit path, an observable register (by
/// name, with both values), or the lowest diverging memory address (with
/// each run's last store to it) -- deterministically, so fuzz findings and
/// `cprc --check-equivalence` failures are directly triageable.
struct EquivResult {
  /// Which kind of artifact diverged first. Comparison order is fixed:
  /// exit path, then observable registers, then memory.
  enum class Divergence {
    None,     ///< equivalent
    ExitPath, ///< halt/trap/error status differs
    Register, ///< an observable register value differs
    Memory,   ///< a memory cell reads differently after the runs
  };

  bool Equivalent = false;
  Divergence Kind = Divergence::None;
  std::string Detail; ///< human-readable mismatch description
};

/// Name of \p Kind for reports ("exit-path", "register", ...).
const char *divergenceName(EquivResult::Divergence Kind);

/// Runs \p A and \p B from identical initial memory (\p Mem, copied) and
/// register bindings, then compares halt status, observable register
/// values, and final memory (in that order).
EquivResult checkEquivalence(const Function &A, const Function &B,
                             const Memory &Mem,
                             const std::vector<RegBinding> &InitRegs);

} // namespace cpr

#endif // INTERP_PROFILER_H

//===- interp/Interpreter.h - Functional EPIC interpreter -------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A functional (non-timed) interpreter for the EPIC IR. It executes
/// operations in program order with PlayDoh predication semantics:
/// operations whose guard is false are nullified, except cmpp
/// unconditional targets, which write 0 under a false guard (Table 1).
///
/// Three project roles:
///  - correctness oracle: property tests run original and transformed code
///    on identical inputs and compare final memory + observable registers;
///  - profiler: collects branch reach/taken counts and block entry counts
///    (via Profiler.h);
///  - dynamic statistics: operation and branch counts for the paper's
///    Table 3 ("D tot", "D br").
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_INTERPRETER_H
#define INTERP_INTERPRETER_H

#include "analysis/ProfileData.h"
#include "interp/BranchTrace.h"
#include "interp/Memory.h"
#include "ir/Function.h"

#include <string>
#include <vector>

namespace cpr {

/// Dynamic operation counts from one run.
struct DynStats {
  /// Operations dispatched (fetched into issue slots), including nullified
  /// predicated operations -- the EPIC notion of "executed operations" the
  /// paper's Table 3 counts.
  uint64_t OpsDispatched = 0;
  /// Operations whose guard was true.
  uint64_t OpsEffective = 0;
  /// Branch operations dispatched.
  uint64_t BranchesDispatched = 0;
  /// Branch operations that took.
  uint64_t BranchesTaken = 0;

  DynStats &operator+=(const DynStats &O) {
    OpsDispatched += O.OpsDispatched;
    OpsEffective += O.OpsEffective;
    BranchesDispatched += O.BranchesDispatched;
    BranchesTaken += O.BranchesTaken;
    return *this;
  }
};

/// Result of one interpreter run.
struct RunResult {
  enum class Status {
    Halted,    ///< reached Halt
    Trapped,   ///< reached Trap (a correctness canary fired)
    StepLimit, ///< exceeded the step budget
    Error,     ///< malformed execution (fell off the end, bad target, ...)
  };

  Status St = Status::Error;
  std::string ErrorMsg;
  uint64_t Steps = 0;
  DynStats Stats;
  /// Values of the function's observable registers at Halt.
  std::vector<int64_t> Observed;

  bool halted() const { return St == Status::Halted; }
};

/// Initial register bindings for a run.
struct RegBinding {
  Reg R;
  int64_t Value;
};

/// One recorded store (for trace-based debugging and tests).
struct StoreEvent {
  OpId Op;
  int64_t Addr;
  int64_t Value;
  bool operator==(const StoreEvent &O) const {
    return Addr == O.Addr && Value == O.Value;
  }
};

/// Opt-in instrumentation of one operation, keyed by OpId. cpr-lint's
/// witness replay (lint/Witness.h) plants watches on the operations a
/// finding talks about and checks the counters after the run: did the op
/// dispatch, did its guard ever hold, when did it first execute, what did
/// a register hold when control first arrived at it.
struct OpWatch {
  /// Operation to watch.
  OpId Op = InvalidOpId;
  /// Optional register sampled just before the op's first dispatch
  /// (invalid = no sampling). PR values sample as 0/1, FPR/BTR values as
  /// their integer casts.
  Reg SampleReg;

  // --- outputs, written by interpret() ---
  uint64_t Dispatched = 0;
  /// Dispatches whose guard held (a branch is "effective" when its guard
  /// holds, whether or not it takes).
  uint64_t Effective = 0;
  /// Takes, for Branch ops (guard and branch predicate both held).
  uint64_t Taken = 0;
  /// 1-based step number of the first effective dispatch; 0 = never.
  uint64_t FirstEffectiveStep = 0;
  bool Sampled = false;
  int64_t FirstValue = 0;
};

/// Interpreter options.
struct InterpOptions {
  uint64_t MaxSteps = 100'000'000;
  /// When set, branch/block frequencies are accumulated here.
  ProfileData *Profile = nullptr;
  /// When set, every executed store appends an event here.
  std::vector<StoreEvent> *StoreTrace = nullptr;
  /// When set, every dispatched branch appends a BranchEvent here and the
  /// terminating halt/trap is marked (the input of sim/TraceSimulator.h).
  BranchTrace *Trace = nullptr;
  /// When set, each watch's counters are updated as its op dispatches.
  std::vector<OpWatch> *Watches = nullptr;
};

/// Executes \p F starting at its entry block against \p Mem.
/// \p InitRegs seeds GPR values (e.g. array base addresses).
RunResult interpret(const Function &F, Memory &Mem,
                    const std::vector<RegBinding> &InitRegs,
                    const InterpOptions &Opts = InterpOptions());

} // namespace cpr

#endif // INTERP_INTERPRETER_H

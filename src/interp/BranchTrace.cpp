//===- interp/BranchTrace.cpp - Dynamic branch event traces ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/BranchTrace.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <limits>
#include <sstream>

using namespace cpr;

void BranchTrace::record(OpId Op, bool Taken) {
  ++Total;
  if (Capacity == 0 || Buf.size() < Capacity) {
    Buf.push_back(BranchEvent{Op, Taken});
    return;
  }
  // Ring full: overwrite the oldest slot and advance the head.
  Buf[Head] = BranchEvent{Op, Taken};
  Head = (Head + 1) % Capacity;
}

const BranchEvent &BranchTrace::event(size_t I) const {
  assert(I < Buf.size() && "event index out of range");
  return Buf[(Head + I) % Buf.size()];
}

void BranchTrace::clear() {
  Buf.clear();
  Head = 0;
  Total = 0;
  Terminal = InvalidOpId;
}

std::string cpr::serializeBranchTrace(const BranchTrace &T) {
  std::string Out = "btrace v1\n";
  char Line[96];
  if (T.droppedEvents() != 0) {
    std::snprintf(Line, sizeof(Line), "drop %" PRIu64 "\n",
                  T.droppedEvents());
    Out += Line;
  }
  for (size_t I = 0, E = T.size(); I != E;) {
    const BranchEvent &Ev = T.event(I);
    size_t Run = 1;
    while (I + Run != E && T.event(I + Run) == Ev)
      ++Run;
    std::snprintf(Line, sizeof(Line), "ev %u %c %zu\n", Ev.Op,
                  Ev.Taken ? 't' : 'n', Run);
    Out += Line;
    I += Run;
  }
  if (T.hasTerminal()) {
    std::snprintf(Line, sizeof(Line), "term %u\n", T.terminalOp());
    Out += Line;
  }
  return Out;
}

Expected<BranchTrace> cpr::tryParseBranchTrace(const std::string &Text) {
  BranchTrace Trace;
  std::istringstream In(Text);
  std::string LineStr;
  unsigned LineNo = 0;
  bool SawHeader = false;
  auto fail = [&](const std::string &Msg) -> Diagnostic {
    return Diagnostic{DiagSeverity::Error, DiagCode::ParseError,
                      "line " + std::to_string(LineNo) + ": " + Msg,
                      "btrace", LineNo};
  };
  // Numeric fields must fit an OpId: the serializer never writes wider
  // ids, so anything larger (including stream-wrapped negatives) is
  // malformed rather than silently truncated.
  auto validId = [](uint64_t Id) {
    return Id <= std::numeric_limits<OpId>::max();
  };
  while (std::getline(In, LineStr)) {
    ++LineNo;
    size_t Hash = LineStr.find('#');
    if (Hash != std::string::npos)
      LineStr.resize(Hash);
    std::istringstream L(LineStr);
    std::string Kind;
    if (!(L >> Kind))
      continue;
    std::string Extra;
    if (!SawHeader) {
      std::string Version;
      if (Kind != "btrace" || !(L >> Version) || Version != "v1" ||
          L >> Extra)
        return fail("expected 'btrace v1' header");
      SawHeader = true;
      continue;
    }
    if (Kind == "ev") {
      uint64_t Id, Count;
      std::string Dir;
      if (!(L >> Id >> Dir >> Count) || (Dir != "t" && Dir != "n") ||
          Count == 0 || (L >> Extra))
        return fail("bad ev record");
      if (!validId(Id))
        return fail("ev id " + std::to_string(Id) + " is out of range");
      if (Count > MaxTraceRunLength)
        return fail("ev run length " + std::to_string(Count) +
                    " exceeds the limit of " +
                    std::to_string(MaxTraceRunLength));
      if (Trace.hasTerminal())
        return fail("ev record after the term marker");
      for (uint64_t I = 0; I != Count; ++I)
        Trace.record(static_cast<OpId>(Id), Dir == "t");
    } else if (Kind == "term") {
      uint64_t Id;
      if (!(L >> Id) || (L >> Extra))
        return fail("bad term record");
      if (!validId(Id))
        return fail("term id " + std::to_string(Id) + " is out of range");
      if (Trace.hasTerminal())
        return fail("duplicate term record");
      Trace.markTerminal(static_cast<OpId>(Id));
    } else if (Kind == "drop") {
      uint64_t N;
      if (!(L >> N) || (L >> Extra))
        return fail("bad drop record");
      // The serializer writes at most one drop record, before any event;
      // anything else corrupts the Total/retained accounting.
      if (Trace.totalRecorded() != 0 || Trace.hasTerminal())
        return fail("drop record must appear once, before any ev record");
      Trace.addDropped(N);
    } else {
      return fail("unknown record '" + Kind + "'");
    }
  }
  if (!SawHeader)
    return Diagnostic{DiagSeverity::Error, DiagCode::ParseError,
                      "missing 'btrace v1' header", "btrace", 0};
  return Trace;
}

TraceParseResult cpr::parseBranchTrace(const std::string &Text) {
  TraceParseResult Res;
  Expected<BranchTrace> E = tryParseBranchTrace(Text);
  if (E)
    Res.Trace = E.takeValue();
  else
    Res.Error = E.diagnostic().Message;
  return Res;
}

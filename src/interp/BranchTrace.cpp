//===- interp/BranchTrace.cpp - Dynamic branch event traces ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/BranchTrace.h"

#include <cassert>
#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace cpr;

void BranchTrace::record(OpId Op, bool Taken) {
  ++Total;
  if (Capacity == 0 || Buf.size() < Capacity) {
    Buf.push_back(BranchEvent{Op, Taken});
    return;
  }
  // Ring full: overwrite the oldest slot and advance the head.
  Buf[Head] = BranchEvent{Op, Taken};
  Head = (Head + 1) % Capacity;
}

const BranchEvent &BranchTrace::event(size_t I) const {
  assert(I < Buf.size() && "event index out of range");
  return Buf[(Head + I) % Buf.size()];
}

void BranchTrace::clear() {
  Buf.clear();
  Head = 0;
  Total = 0;
  Terminal = InvalidOpId;
}

std::string cpr::serializeBranchTrace(const BranchTrace &T) {
  std::string Out = "btrace v1\n";
  char Line[96];
  if (T.droppedEvents() != 0) {
    std::snprintf(Line, sizeof(Line), "drop %" PRIu64 "\n",
                  T.droppedEvents());
    Out += Line;
  }
  for (size_t I = 0, E = T.size(); I != E;) {
    const BranchEvent &Ev = T.event(I);
    size_t Run = 1;
    while (I + Run != E && T.event(I + Run) == Ev)
      ++Run;
    std::snprintf(Line, sizeof(Line), "ev %u %c %zu\n", Ev.Op,
                  Ev.Taken ? 't' : 'n', Run);
    Out += Line;
    I += Run;
  }
  if (T.hasTerminal()) {
    std::snprintf(Line, sizeof(Line), "term %u\n", T.terminalOp());
    Out += Line;
  }
  return Out;
}

TraceParseResult cpr::parseBranchTrace(const std::string &Text) {
  TraceParseResult Res;
  std::istringstream In(Text);
  std::string LineStr;
  unsigned LineNo = 0;
  bool SawHeader = false;
  auto fail = [&](const std::string &Msg) {
    Res.Error = "line " + std::to_string(LineNo) + ": " + Msg;
  };
  while (std::getline(In, LineStr)) {
    ++LineNo;
    size_t Hash = LineStr.find('#');
    if (Hash != std::string::npos)
      LineStr.resize(Hash);
    std::istringstream L(LineStr);
    std::string Kind;
    if (!(L >> Kind))
      continue;
    if (!SawHeader) {
      std::string Version;
      if (Kind != "btrace" || !(L >> Version) || Version != "v1") {
        fail("expected 'btrace v1' header");
        return Res;
      }
      SawHeader = true;
      continue;
    }
    if (Kind == "ev") {
      uint64_t Id, Count;
      std::string Dir;
      if (!(L >> Id >> Dir >> Count) || (Dir != "t" && Dir != "n") ||
          Count == 0) {
        fail("bad ev record");
        return Res;
      }
      for (uint64_t I = 0; I != Count; ++I)
        Res.Trace.record(static_cast<OpId>(Id), Dir == "t");
    } else if (Kind == "term") {
      uint64_t Id;
      if (!(L >> Id)) {
        fail("bad term record");
        return Res;
      }
      Res.Trace.markTerminal(static_cast<OpId>(Id));
    } else if (Kind == "drop") {
      uint64_t N;
      if (!(L >> N)) {
        fail("bad drop record");
        return Res;
      }
      Res.Trace.addDropped(N);
    } else {
      fail("unknown record '" + Kind + "'");
      return Res;
    }
  }
  if (!SawHeader)
    Res.Error = "missing 'btrace v1' header";
  return Res;
}

//===- interp/Memory.h - Sparse interpreter memory --------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sparse word-addressed memory for the functional interpreter. Every cell
/// reads as zero until written. Snapshots support the store-for-store
/// equivalence checks the property tests run between original and
/// CPR-transformed code.
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_MEMORY_H
#define INTERP_MEMORY_H

#include <cstdint>
#include <unordered_map>

namespace cpr {

/// Sparse 64-bit-word memory; unwritten cells read as zero.
class Memory {
public:
  int64_t load(int64_t Addr) const {
    auto It = Cells.find(Addr);
    return It == Cells.end() ? 0 : It->second;
  }

  void store(int64_t Addr, int64_t Value) { Cells[Addr] = Value; }

  size_t numWrittenCells() const { return Cells.size(); }

  bool operator==(const Memory &O) const { return Cells == O.Cells; }
  bool operator!=(const Memory &O) const { return !(*this == O); }

  const std::unordered_map<int64_t, int64_t> &cells() const { return Cells; }

private:
  std::unordered_map<int64_t, int64_t> Cells;
};

} // namespace cpr

#endif // INTERP_MEMORY_H

//===- interp/Interpreter.cpp - Functional EPIC interpreter ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "ir/IRPrinter.h"
#include "support/Error.h"

#include <cmath>

using namespace cpr;

namespace {

/// Register file: dense per-class vectors, grown on demand.
class RegFile {
public:
  int64_t &gpr(uint32_t Id) { return grow(Gpr, Id); }
  double &fpr(uint32_t Id) { return grow(Fpr, Id); }
  BlockId &btr(uint32_t Id) { return grow(Btr, Id); }

  bool pred(uint32_t Id) {
    if (Id == 0)
      return true; // p0 hardwired
    return grow(Pr, Id) != 0;
  }
  void setPred(uint32_t Id, bool V) {
    assert(Id != 0 && "p0 is read-only");
    grow(Pr, Id) = V ? 1 : 0;
  }

private:
  template <typename T> static T &grow(std::vector<T> &V, uint32_t Id) {
    if (Id >= V.size())
      V.resize(Id + 1, T{});
    return V[Id];
  }
  std::vector<int64_t> Gpr;
  std::vector<double> Fpr;
  std::vector<uint8_t> Pr;
  std::vector<BlockId> Btr;
};

int64_t evalIntArith(Opcode Opc, int64_t A, int64_t B) {
  switch (Opc) {
  case Opcode::Add:
    return static_cast<int64_t>(static_cast<uint64_t>(A) +
                                static_cast<uint64_t>(B));
  case Opcode::Sub:
    return static_cast<int64_t>(static_cast<uint64_t>(A) -
                                static_cast<uint64_t>(B));
  case Opcode::Mul:
    return static_cast<int64_t>(static_cast<uint64_t>(A) *
                                static_cast<uint64_t>(B));
  case Opcode::Div:
    return B == 0 ? 0 : A / B; // division by zero reads as 0 (documented)
  case Opcode::Rem:
    return B == 0 ? 0 : A % B;
  case Opcode::And:
    return A & B;
  case Opcode::Or:
    return A | B;
  case Opcode::Xor:
    return A ^ B;
  case Opcode::Shl:
    return static_cast<int64_t>(static_cast<uint64_t>(A)
                                << (static_cast<uint64_t>(B) & 63));
  case Opcode::Shr:
    return static_cast<int64_t>(static_cast<uint64_t>(A) >>
                                (static_cast<uint64_t>(B) & 63));
  case Opcode::Min:
    return A < B ? A : B;
  case Opcode::Max:
    return A > B ? A : B;
  default:
    CPR_UNREACHABLE("not an integer arithmetic opcode");
  }
}

double evalFloatArith(Opcode Opc, double A, double B) {
  switch (Opc) {
  case Opcode::FAdd:
    return A + B;
  case Opcode::FSub:
    return A - B;
  case Opcode::FMul:
    return A * B;
  case Opcode::FDiv:
    return B == 0.0 ? 0.0 : A / B;
  default:
    CPR_UNREACHABLE("not a float arithmetic opcode");
  }
}

} // namespace

RunResult cpr::interpret(const Function &F, Memory &Mem,
                         const std::vector<RegBinding> &InitRegs,
                         const InterpOptions &Opts) {
  RunResult Res;
  if (F.numBlocks() == 0) {
    Res.ErrorMsg = "function has no blocks";
    return Res;
  }

  RegFile Regs;
  for (const RegBinding &B : InitRegs) {
    switch (B.R.getClass()) {
    case RegClass::GPR:
      Regs.gpr(B.R.getId()) = B.Value;
      break;
    case RegClass::FPR:
      Regs.fpr(B.R.getId()) = static_cast<double>(B.Value);
      break;
    case RegClass::PR:
      Regs.setPred(B.R.getId(), B.Value != 0);
      break;
    case RegClass::BTR:
      Regs.btr(B.R.getId()) = static_cast<BlockId>(B.Value);
      break;
    }
  }

  auto SrcGpr = [&](const Operand &O) -> int64_t {
    if (O.isImm())
      return O.getImm();
    return Regs.gpr(O.getReg().getId());
  };
  auto SrcFpr = [&](const Operand &O) -> double {
    if (O.isImm())
      return static_cast<double>(O.getImm());
    return Regs.fpr(O.getReg().getId());
  };

  size_t BI = 0; // layout index of current block
  size_t OI = 0;
  if (Opts.Profile)
    Opts.Profile->addBlockEntry(F.block(0).getId());

  while (true) {
    if (Res.Steps >= Opts.MaxSteps) {
      Res.St = RunResult::Status::StepLimit;
      return Res;
    }
    const Block &B = F.block(BI);
    if (OI >= B.size()) {
      // Fall through to the next layout block.
      if (BI + 1 >= F.numBlocks()) {
        Res.St = RunResult::Status::Error;
        Res.ErrorMsg = "control fell off the end of the function";
        return Res;
      }
      ++BI;
      OI = 0;
      if (Opts.Profile)
        Opts.Profile->addBlockEntry(F.block(BI).getId());
      continue;
    }

    const Operation &Op = B.ops()[OI];
    ++Res.Steps;
    ++Res.Stats.OpsDispatched;
    bool Guard = Regs.pred(Op.getGuard().getId());
    if (Guard)
      ++Res.Stats.OpsEffective;

    if (Opts.Watches)
      for (OpWatch &W : *Opts.Watches) {
        if (W.Op != Op.getId())
          continue;
        if (W.Dispatched++ == 0 && W.SampleReg.isValid()) {
          W.Sampled = true;
          switch (W.SampleReg.getClass()) {
          case RegClass::GPR:
            W.FirstValue = Regs.gpr(W.SampleReg.getId());
            break;
          case RegClass::FPR:
            W.FirstValue = static_cast<int64_t>(Regs.fpr(W.SampleReg.getId()));
            break;
          case RegClass::PR:
            W.FirstValue = Regs.pred(W.SampleReg.getId()) ? 1 : 0;
            break;
          case RegClass::BTR:
            W.FirstValue = static_cast<int64_t>(Regs.btr(W.SampleReg.getId()));
            break;
          }
        }
        if (Guard) {
          ++W.Effective;
          if (W.FirstEffectiveStep == 0)
            W.FirstEffectiveStep = Res.Steps;
        }
      }

    Opcode Opc = Op.getOpcode();

    // cmpp writes its unconditional targets even under a false guard.
    if (Opc == Opcode::Cmpp) {
      bool Cmp = evalCompareCond(Op.getCond(), SrcGpr(Op.srcs()[0]),
                                 SrcGpr(Op.srcs()[1]));
      for (const DefSlot &D : Op.defs()) {
        std::optional<bool> W = evalCmppAction(D.Act, Guard, Cmp);
        if (W)
          Regs.setPred(D.R.getId(), *W);
      }
      ++OI;
      continue;
    }

    if (Opc == Opcode::Branch) {
      ++Res.Stats.BranchesDispatched;
      if (Opts.Profile)
        Opts.Profile->addBranchReached(Op.getId());
      bool Take = Guard && Regs.pred(Op.branchPred().getId());
      if (Opts.Trace)
        Opts.Trace->record(Op.getId(), Take);
      if (Opts.Watches && Take)
        for (OpWatch &W : *Opts.Watches)
          if (W.Op == Op.getId())
            ++W.Taken;
      if (Take) {
        ++Res.Stats.BranchesTaken;
        if (Opts.Profile)
          Opts.Profile->addBranchTaken(Op.getId());
        BlockId Target = Regs.btr(Op.branchTargetReg().getId());
        int TargetIdx = F.layoutIndex(Target);
        if (TargetIdx < 0) {
          Res.St = RunResult::Status::Error;
          Res.ErrorMsg = "branch to invalid target (uninitialized btr?)";
          return Res;
        }
        BI = static_cast<size_t>(TargetIdx);
        OI = 0;
        if (Opts.Profile)
          Opts.Profile->addBlockEntry(Target);
        continue;
      }
      ++OI;
      continue;
    }

    if (!Guard) {
      ++OI;
      continue; // nullified
    }

    switch (Opc) {
    case Opcode::Mov: {
      const DefSlot &D = Op.defs()[0];
      const Operand &S = Op.srcs()[0];
      switch (D.R.getClass()) {
      case RegClass::GPR:
        Regs.gpr(D.R.getId()) = SrcGpr(S);
        break;
      case RegClass::FPR:
        Regs.fpr(D.R.getId()) = SrcFpr(S);
        break;
      case RegClass::PR:
        Regs.setPred(D.R.getId(), S.isImm() ? S.getImm() != 0
                                            : Regs.pred(S.getReg().getId()));
        break;
      case RegClass::BTR:
        CPR_UNREACHABLE("mov to BTR rejected by verifier");
      }
      break;
    }
    case Opcode::Load:
      Regs.gpr(Op.defs()[0].R.getId()) = Mem.load(SrcGpr(Op.srcs()[0]));
      break;
    case Opcode::Store: {
      const Operand &V = Op.srcs()[1];
      int64_t Value =
          V.isReg() && V.getReg().getClass() == RegClass::FPR
              ? static_cast<int64_t>(Regs.fpr(V.getReg().getId()))
              : SrcGpr(V);
      int64_t Addr = SrcGpr(Op.srcs()[0]);
      if (Opts.StoreTrace)
        Opts.StoreTrace->push_back(StoreEvent{Op.getId(), Addr, Value});
      Mem.store(Addr, Value);
      break;
    }
    case Opcode::Pbr:
      Regs.btr(Op.defs()[0].R.getId()) = Op.pbrTarget();
      break;
    case Opcode::Halt: {
      Res.St = RunResult::Status::Halted;
      if (Opts.Trace)
        Opts.Trace->markTerminal(Op.getId());
      for (Reg R : F.observableRegs())
        Res.Observed.push_back(Regs.gpr(R.getId()));
      return Res;
    }
    case Opcode::Trap:
      Res.St = RunResult::Status::Trapped;
      if (Opts.Trace)
        Opts.Trace->markTerminal(Op.getId());
      Res.ErrorMsg = "trap executed in block @" + B.getName();
      return Res;
    case Opcode::Nop:
      break;
    default:
      if (opcodeIsIntArith(Opc)) {
        Regs.gpr(Op.defs()[0].R.getId()) =
            evalIntArith(Opc, SrcGpr(Op.srcs()[0]), SrcGpr(Op.srcs()[1]));
        break;
      }
      if (opcodeIsFloatArith(Opc)) {
        Regs.fpr(Op.defs()[0].R.getId()) =
            evalFloatArith(Opc, SrcFpr(Op.srcs()[0]), SrcFpr(Op.srcs()[1]));
        break;
      }
      CPR_UNREACHABLE("unhandled opcode in interpreter");
    }
    ++OI;
  }
}

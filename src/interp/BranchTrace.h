//===- interp/BranchTrace.h - Dynamic branch event traces -------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic branch stream of one interpreter run: every dispatched
/// branch operation, in execution order, with its taken outcome, plus a
/// terminal marker naming the halt/trap that ended the run. The trace is
/// what separates the paper's static performance methodology from a
/// dynamic one: replayed through a branch predictor (sim/BranchPredictor.h)
/// it exposes exactly the mispredictions the paper's frequency-weighted
/// formula ignores.
///
/// Storage is an in-memory ring: with a capacity the oldest events are
/// dropped once full (cheap always-on recording); with capacity 0 the
/// trace is unbounded (required for cycle simulation, which must replay
/// the run from its first branch).
///
/// A compact line-oriented serialization lives alongside, in the format
/// family of analysis/ProfileIO.h. Consecutive identical (branch, outcome)
/// events are run-length encoded, which collapses the single-branch-loop
/// traces unrolled kernels produce:
///
///   btrace v1
///   drop <count>              # events lost to the ring (omitted when 0)
///   ev <opId> <t|n> <count>   # <count> consecutive identical events
///   term <opId>               # the halt/trap that ended the run
///
//===----------------------------------------------------------------------===//

#ifndef INTERP_BRANCHTRACE_H
#define INTERP_BRANCHTRACE_H

#include "ir/Operation.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace cpr {

/// One dispatched branch: which operation, and whether it took. Nullified
/// branches (false guard) are recorded as not taken, mirroring the
/// profiler's reached/taken accounting.
struct BranchEvent {
  OpId Op = InvalidOpId;
  bool Taken = false;

  bool operator==(const BranchEvent &O) const {
    return Op == O.Op && Taken == O.Taken;
  }
};

/// Execution-ordered branch events with bounded (ring) or unbounded
/// storage.
class BranchTrace {
public:
  /// \p Capacity of 0 keeps every event; otherwise the trace is a ring
  /// that retains only the newest \p Capacity events.
  explicit BranchTrace(size_t Capacity = 0) : Capacity(Capacity) {}

  /// Appends one event, evicting the oldest when the ring is full.
  void record(OpId Op, bool Taken);

  /// Notes the halt/trap operation that ended the run.
  void markTerminal(OpId Op) { Terminal = Op; }
  bool hasTerminal() const { return Terminal != InvalidOpId; }
  OpId terminalOp() const { return Terminal; }

  /// Number of retained events.
  size_t size() const { return Buf.size(); }
  bool empty() const { return Buf.empty(); }

  /// The \p I-th retained event, oldest first.
  const BranchEvent &event(size_t I) const;

  /// Total events ever recorded, including evicted ones.
  uint64_t totalRecorded() const { return Total; }

  /// Events lost to ring eviction. A simulation requires 0.
  uint64_t droppedEvents() const { return Total - Buf.size(); }

  /// Accounts \p N externally dropped events (used by deserialization to
  /// preserve the drop count of a serialized ring trace).
  void addDropped(uint64_t N) { Total += N; }

  void clear();

private:
  size_t Capacity;
  size_t Head = 0; ///< index of the oldest event when the ring wrapped
  uint64_t Total = 0;
  OpId Terminal = InvalidOpId;
  std::vector<BranchEvent> Buf;
};

/// Serializes \p T in the run-length-encoded text format above.
std::string serializeBranchTrace(const BranchTrace &T);

/// Upper bound on one "ev" record's run length. Legitimate traces are
/// produced by budgeted interpreter runs and stay far below this; a
/// larger count is malformed input that would otherwise materialize an
/// attacker-chosen number of events (the parser expands RLE runs).
inline constexpr uint64_t MaxTraceRunLength = uint64_t(1) << 30;

/// Parses a trace serialized by serializeBranchTrace, rejecting
/// malformed input -- bad records, trailing tokens, operation ids wider
/// than OpId, run lengths above MaxTraceRunLength, records in an order
/// the serializer never emits (events after term, a duplicate or late
/// drop) -- with a recoverable ParseError diagnostic (Line set to the
/// offending 1-based line).
Expected<BranchTrace> tryParseBranchTrace(const std::string &Text);

/// Parse result for branch traces (legacy string-error form).
struct TraceParseResult {
  BranchTrace Trace;
  std::string Error; ///< empty on success
  explicit operator bool() const { return Error.empty(); }
};

/// Parses a trace serialized by serializeBranchTrace. Compatibility shim
/// over tryParseBranchTrace.
TraceParseResult parseBranchTrace(const std::string &Text);

} // namespace cpr

#endif // INTERP_BRANCHTRACE_H

//===- sim/BranchPredictor.cpp - Pluggable branch predictors --------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/BranchPredictor.h"

#include "sim/frontend/TAGE.h"
#include "support/Error.h"

#include <unordered_map>

using namespace cpr;

const std::vector<PredictorInfo> &cpr::predictorRegistry() {
  static const std::vector<PredictorInfo> Registry = {
      {PredictorKind::Static, "static",
       "profile-based fixed direction per branch"},
      {PredictorKind::Bimodal, "bimodal",
       "hashed table of 2-bit saturating counters"},
      {PredictorKind::Gshare, "gshare",
       "2-bit counters indexed by branch id XOR global history"},
      {PredictorKind::Local, "local",
       "two-level predictor with per-branch history registers"},
      {PredictorKind::TageScL, "tage-sc-l",
       "tagged geometric-history tables + statistical corrector + loop "
       "predictor"},
  };
  return Registry;
}

std::string cpr::predictorNamesList() {
  std::string Out;
  for (const PredictorInfo &I : predictorRegistry()) {
    if (!Out.empty())
      Out += ", ";
    Out += I.Name;
  }
  return Out;
}

const char *cpr::predictorKindName(PredictorKind K) {
  for (const PredictorInfo &I : predictorRegistry())
    if (I.Kind == K)
      return I.Name;
  CPR_UNREACHABLE("bad predictor kind");
}

bool cpr::parsePredictorKind(const std::string &Name, PredictorKind &Out) {
  for (const PredictorInfo &I : predictorRegistry()) {
    if (Name == I.Name) {
      Out = I.Kind;
      return true;
    }
  }
  return false;
}

std::vector<PredictorKind> cpr::allPredictorKinds() {
  std::vector<PredictorKind> Kinds;
  for (const PredictorInfo &I : predictorRegistry())
    Kinds.push_back(I.Kind);
  return Kinds;
}

uint32_t cpr::predictorTableIndex(OpId Br, unsigned Bits) {
  uint32_t Mask = Bits >= 32 ? ~0u : ((1u << Bits) - 1);
  return (Br ^ (Br >> Bits)) & Mask;
}

namespace {

/// Saturating 2-bit counter helpers. Counters range 0..3; >= 2 predicts
/// taken. Tables initialize to 1 (weakly not taken), matching the
/// fall-through bias of superblock code.
constexpr uint8_t WeaklyNotTaken = 1;

void train(uint8_t &Counter, bool Taken) {
  if (Taken) {
    if (Counter < 3)
      ++Counter;
  } else if (Counter > 0) {
    --Counter;
  }
}

bool counterTaken(uint8_t Counter) { return Counter >= 2; }

/// Profile-based static prediction: one direction per branch, chosen by
/// its profiled taken ratio, never updated at run time.
class StaticPredictor final : public BranchPredictor {
public:
  explicit StaticPredictor(const PredictorConfig &C) {
    if (!C.Profile)
      return;
    // Snapshot the directions so the predictor does not dangle a profile
    // reference beyond construction.
    Threshold = C.PredictTakenThreshold;
    Profile = *C.Profile;
    HasProfile = true;
  }

  const char *name() const override { return "static"; }

  bool predict(OpId Br) override {
    if (!HasProfile || Profile.branchReached(Br) == 0)
      return false; // fall-through bias
    return Profile.takenRatio(Br) >= Threshold;
  }

  void update(OpId, bool) override {}

  void reset() override { clearStats(); }

private:
  ProfileData Profile;
  double Threshold = 0.5;
  bool HasProfile = false;
};

/// Per-branch 2-bit counters in a hashed direct-mapped table.
class BimodalPredictor final : public BranchPredictor {
public:
  explicit BimodalPredictor(const PredictorConfig &C)
      : Bits(C.TableBits), Table(size_t(1) << C.TableBits, WeaklyNotTaken) {}

  const char *name() const override { return "bimodal"; }

  bool predict(OpId Br) override {
    return counterTaken(Table[predictorTableIndex(Br, Bits)]);
  }

  void update(OpId Br, bool Taken) override {
    train(Table[predictorTableIndex(Br, Bits)], Taken);
  }

  void reset() override {
    std::fill(Table.begin(), Table.end(), WeaklyNotTaken);
    clearStats();
  }

private:
  unsigned Bits;
  std::vector<uint8_t> Table;
};

/// McFarling gshare: counter table indexed by branch id XOR global
/// taken/not-taken history.
class GsharePredictor final : public BranchPredictor {
public:
  explicit GsharePredictor(const PredictorConfig &C)
      : Bits(C.TableBits), Table(size_t(1) << C.TableBits, WeaklyNotTaken),
        HistMask(C.HistoryBits == 0 ? 0
                 : C.HistoryBits >= 32
                     ? ~0u
                     : ((1u << C.HistoryBits) - 1)) {}

  const char *name() const override { return "gshare"; }

  bool predict(OpId Br) override { return counterTaken(Table[index(Br)]); }

  void update(OpId Br, bool Taken) override {
    train(Table[index(Br)], Taken);
    History = ((History << 1) | (Taken ? 1u : 0u)) & HistMask;
  }

  void reset() override {
    std::fill(Table.begin(), Table.end(), WeaklyNotTaken);
    History = 0;
    clearStats();
  }

private:
  uint32_t index(OpId Br) const {
    uint32_t Mask = static_cast<uint32_t>(Table.size() - 1);
    return (predictorTableIndex(Br, Bits) ^ History) & Mask;
  }

  unsigned Bits;
  std::vector<uint8_t> Table;
  uint32_t HistMask;
  uint32_t History = 0;
};

/// Two-level local predictor: a per-branch history table (indexed like
/// bimodal) selects a 2-bit counter in a shared pattern table.
class LocalPredictor final : public BranchPredictor {
public:
  explicit LocalPredictor(const PredictorConfig &C)
      : Bits(C.TableBits), Histories(size_t(1) << C.TableBits, 0),
        Patterns(size_t(1) << C.LocalHistoryBits, WeaklyNotTaken),
        HistMask(static_cast<uint32_t>(Patterns.size() - 1)) {}

  const char *name() const override { return "local"; }

  bool predict(OpId Br) override {
    return counterTaken(Patterns[Histories[predictorTableIndex(Br, Bits)]]);
  }

  void update(OpId Br, bool Taken) override {
    uint32_t &H = Histories[predictorTableIndex(Br, Bits)];
    train(Patterns[H], Taken);
    H = ((H << 1) | (Taken ? 1u : 0u)) & HistMask;
  }

  void reset() override {
    std::fill(Histories.begin(), Histories.end(), 0u);
    std::fill(Patterns.begin(), Patterns.end(), WeaklyNotTaken);
    clearStats();
  }

private:
  unsigned Bits;
  std::vector<uint32_t> Histories;
  std::vector<uint8_t> Patterns;
  uint32_t HistMask;
};

} // namespace

std::unique_ptr<BranchPredictor> cpr::makePredictor(PredictorKind K,
                                                    const PredictorConfig &C) {
  switch (K) {
  case PredictorKind::Static:
    return std::make_unique<StaticPredictor>(C);
  case PredictorKind::Bimodal:
    return std::make_unique<BimodalPredictor>(C);
  case PredictorKind::Gshare:
    return std::make_unique<GsharePredictor>(C);
  case PredictorKind::Local:
    return std::make_unique<LocalPredictor>(C);
  case PredictorKind::TageScL:
    return makeTageScLPredictor(C);
  }
  CPR_UNREACHABLE("bad predictor kind");
}

//===- sim/frontend/BTB.h - Branch target buffer model ----------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative branch target buffer for the trace-driven simulator's
/// decoupled-frontend model (sim/TraceSimulator.h). The frontend can only
/// follow a taken branch without stalling when the BTB supplies its
/// target, so a taken branch whose target misses pays a redirect penalty
/// even when its *direction* was predicted perfectly -- a cost class the
/// flat mispredict-penalty model cannot express.
///
/// This is where control CPR's branch *elimination* shows up under a
/// strong direction predictor: fewer static branches on the hot path
/// means fewer BTB entries competing for the same sets, so the treated
/// code keeps its targets resident where the baseline thrashes.
///
/// Entries are keyed by branch OpId (the IR has no instruction
/// addresses) and store the layout target as a BlockId. Replacement is
/// strict LRU via a monotonic access stamp -- deterministic, like every
/// other simulator structure, so results are byte-identical at any
/// --threads setting.
///
//===----------------------------------------------------------------------===//

#ifndef SIM_FRONTEND_BTB_H
#define SIM_FRONTEND_BTB_H

#include "ir/Operand.h"
#include "ir/Operation.h"

#include <cstdint>
#include <string>
#include <vector>

namespace cpr {

/// Geometry of a BTB: 2^SetBits sets of Ways entries each.
struct BTBConfig {
  unsigned SetBits = 6; ///< log2 of the number of sets (64 sets)
  unsigned Ways = 4;    ///< associativity

  unsigned numSets() const { return 1u << SetBits; }
  unsigned capacity() const { return numSets() * Ways; }

  /// Renders "<sets>x<ways>", e.g. "64x4".
  std::string str() const;
};

/// Parses a geometry rendered by BTBConfig::str() ("64x4"). Sets must be
/// a power of two in [1, 2^20]; ways in [1, 64]. Returns false (leaving
/// \p Out untouched) on anything else.
bool parseBTBConfig(const std::string &Text, BTBConfig &Out);

/// Target-lookup counters, parallel to PredictorStats.
struct BTBStats {
  uint64_t Lookups = 0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;

  double missRate() const {
    return Lookups == 0 ? 0.0
                        : static_cast<double>(Misses) /
                              static_cast<double>(Lookups);
  }
  /// BTB misses per 1000 dispatched operations (\p DynOps).
  double mpki(uint64_t DynOps) const {
    return DynOps == 0 ? 0.0
                       : 1000.0 * static_cast<double>(Misses) /
                             static_cast<double>(DynOps);
  }
};

/// A set-associative, LRU-replaced branch target buffer.
class BTB {
public:
  explicit BTB(const BTBConfig &C = BTBConfig());

  /// Looks up taken branch \p Br expecting target \p Target, counting a
  /// hit only when the resident entry carries that exact target (a stale
  /// target still redirects fetch and is a miss). The entry is then
  /// installed/refreshed with the true target, LRU-evicting within the
  /// set when full. Returns true on a hit.
  bool access(OpId Br, BlockId Target);

  /// Clears all entries and the stats.
  void reset();

  const BTBConfig &config() const { return Config; }
  const BTBStats &stats() const { return Stats; }

private:
  struct Entry {
    OpId Br = InvalidOpId;
    BlockId Target = InvalidBlockId;
    uint64_t Stamp = 0; ///< last-access order, larger = more recent
    bool Valid = false;
  };

  BTBConfig Config;
  BTBStats Stats;
  std::vector<Entry> Entries; ///< set-major: set * Ways + way
  uint64_t Clock = 0;
};

} // namespace cpr

#endif // SIM_FRONTEND_BTB_H

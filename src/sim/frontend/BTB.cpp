//===- sim/frontend/BTB.cpp - Branch target buffer model ------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/frontend/BTB.h"

#include "sim/BranchPredictor.h"

#include <cctype>
#include <cstdlib>

using namespace cpr;

std::string BTBConfig::str() const {
  return std::to_string(numSets()) + "x" + std::to_string(Ways);
}

bool cpr::parseBTBConfig(const std::string &Text, BTBConfig &Out) {
  size_t X = Text.find('x');
  if (X == 0 || X == std::string::npos || X + 1 >= Text.size())
    return false;
  for (size_t I = 0; I < Text.size(); ++I)
    if (I != X && !std::isdigit(static_cast<unsigned char>(Text[I])))
      return false;
  unsigned long Sets = std::strtoul(Text.substr(0, X).c_str(), nullptr, 10);
  unsigned long Ways = std::strtoul(Text.substr(X + 1).c_str(), nullptr, 10);
  if (Sets == 0 || Sets > (1u << 20) || (Sets & (Sets - 1)) != 0)
    return false;
  if (Ways == 0 || Ways > 64)
    return false;
  unsigned Bits = 0;
  while ((1u << Bits) != Sets)
    ++Bits;
  Out.SetBits = Bits;
  Out.Ways = static_cast<unsigned>(Ways);
  return true;
}

BTB::BTB(const BTBConfig &C) : Config(C) {
  Entries.assign(size_t(Config.numSets()) * Config.Ways, Entry());
}

bool BTB::access(OpId Br, BlockId Target) {
  ++Stats.Lookups;
  ++Clock;
  size_t Set = predictorTableIndex(Br, Config.SetBits);
  Entry *Begin = &Entries[Set * Config.Ways];
  Entry *End = Begin + Config.Ways;

  Entry *Victim = Begin;
  for (Entry *E = Begin; E != End; ++E) {
    if (E->Valid && E->Br == Br) {
      bool Hit = E->Target == Target;
      E->Target = Target; // refresh a stale target in place
      E->Stamp = Clock;
      if (Hit)
        ++Stats.Hits;
      else
        ++Stats.Misses;
      return Hit;
    }
    // LRU victim: invalid beats valid, then the oldest stamp. Ties fall
    // to the lowest way, which keeps eviction deterministic.
    if (!Victim->Valid)
      continue;
    if (!E->Valid || E->Stamp < Victim->Stamp)
      Victim = E;
  }

  ++Stats.Misses;
  Victim->Valid = true;
  Victim->Br = Br;
  Victim->Target = Target;
  Victim->Stamp = Clock;
  return false;
}

void BTB::reset() {
  Entries.assign(Entries.size(), Entry());
  Stats = BTBStats();
  Clock = 0;
}

//===- sim/frontend/TAGE.cpp - TAGE-SC-L branch predictor -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/frontend/TAGE.h"

#include <algorithm>
#include <cmath>

using namespace cpr;

std::vector<unsigned> cpr::tageHistoryLengths(unsigned Tables,
                                              unsigned MinHist,
                                              unsigned MaxHist) {
  if (Tables == 0)
    return {};
  MinHist = std::max(1u, MinHist);
  MaxHist = std::max(MinHist, MaxHist);
  std::vector<unsigned> Lengths(Tables);
  if (Tables == 1) {
    Lengths[0] = MaxHist;
    return Lengths;
  }
  double Ratio = std::pow(static_cast<double>(MaxHist) /
                              static_cast<double>(MinHist),
                          1.0 / static_cast<double>(Tables - 1));
  double L = static_cast<double>(MinHist);
  unsigned Prev = 0;
  for (unsigned I = 0; I < Tables; ++I) {
    unsigned Len = static_cast<unsigned>(L + 0.5);
    // Strictly increasing even when rounding collides.
    Len = std::max(Len, Prev + 1);
    Lengths[I] = Len;
    Prev = Len;
    L *= Ratio;
  }
  Lengths[Tables - 1] = std::max(MaxHist, Prev);
  return Lengths;
}

namespace {

/// Signed saturating counter update over [Lo, Hi].
template <typename T> void ctrUpdate(T &Ctr, bool Up, int Lo, int Hi) {
  if (Up) {
    if (Ctr < Hi)
      ++Ctr;
  } else if (Ctr > Lo) {
    --Ctr;
  }
}

struct TageEntry {
  uint16_t Tag = 0;
  int8_t Ctr = 0; ///< 3-bit signed prediction counter, taken when >= 0
  uint8_t U = 0;  ///< 2-bit usefulness counter
  bool Valid = false;
};

struct LoopEntry {
  uint32_t Tag = 0;
  uint16_t PastIters = 0; ///< learned trip count of the last full run
  uint16_t CurrIter = 0;  ///< body iterations seen in the current run
  uint8_t Conf = 0;       ///< consecutive runs with the same trip count
  bool Dir = false;       ///< the loop-body direction being counted
  bool Valid = false;
};

class TageScLPredictor final : public BranchPredictor {
  static constexpr int CtrMax = 3;   // 3-bit signed: [-4, 3]
  static constexpr int CtrMin = -4;
  static constexpr int UMax = 3;     // 2-bit usefulness
  static constexpr int SCMax = 31;   // 6-bit signed SC counters
  static constexpr int SCMin = -32;
  static constexpr int UseAltMax = 7; // 4-bit signed use-alt-on-NA
  static constexpr int UseAltMin = -8;
  static constexpr unsigned LoopConfThreshold = 3;
  static constexpr uint16_t LoopIterMax = 0x3fff;
  static constexpr uint64_t UDecayPeriod = 1u << 18;

public:
  explicit TageScLPredictor(const PredictorConfig &C)
      : TableBits(std::max(2u, C.TageTableBits)),
        TagBits(std::min(15u, std::max(4u, C.TageTagBits))),
        BimodalBits(std::max(1u, C.TableBits)),
        Lengths(tageHistoryLengths(
            std::min(16u, std::max(1u, C.TageTables)), C.TageMinHistory,
            C.TageMaxHistory)),
        UseSC(C.TageUseSC), UseLoop(C.TageUseLoop),
        LoopBits(std::max(1u, C.LoopTableBits)) {
    Bimodal.assign(size_t(1) << BimodalBits, WeaklyNotTaken);
    Tables.assign(Lengths.size(),
                  std::vector<TageEntry>(size_t(1) << TableBits));
    GHist.assign(Lengths.back(), 0);
    // Statistical corrector: an unhistoried bias table plus two short
    // global-history tables (0, min, 2*min bits).
    SCLengths = {0, Lengths.front(), 2 * Lengths.front()};
    SCTables.assign(SCLengths.size(),
                    std::vector<int8_t>(size_t(1) << TableBits, 0));
    Loops.assign(size_t(1) << LoopBits, LoopEntry());
  }

  const char *name() const override { return "tage-sc-l"; }

  bool predict(OpId Br) override {
    Pre = computePrediction(Br);
    return Pre.Final;
  }

  void update(OpId Br, bool Taken) override {
    // predict() caches the component state it derived; recompute when a
    // caller trains without predicting first.
    if (Pre.Br != Br || !Pre.ValidFor)
      Pre = computePrediction(Br);
    Prediction P = Pre;
    Pre.ValidFor = false;

    if (UseLoop)
      updateLoop(Br, Taken, P);
    if (UseSC)
      updateSC(Br, Taken, P);
    updateTage(Br, Taken, P);

    // Advance the global history (newest bit at index 0).
    for (size_t I = GHist.size() - 1; I > 0; --I)
      GHist[I] = GHist[I - 1];
    GHist[0] = Taken ? 1 : 0;
  }

  void reset() override {
    std::fill(Bimodal.begin(), Bimodal.end(), WeaklyNotTaken);
    for (std::vector<TageEntry> &T : Tables)
      std::fill(T.begin(), T.end(), TageEntry());
    for (std::vector<int8_t> &T : SCTables)
      std::fill(T.begin(), T.end(), 0);
    std::fill(Loops.begin(), Loops.end(), LoopEntry());
    std::fill(GHist.begin(), GHist.end(), 0);
    UseAltOnNA = 0;
    WithLoop = 0;
    UpdateCount = 0;
    Pre = Prediction();
    clearStats();
  }

private:
  static constexpr uint8_t WeaklyNotTaken = 1;

  /// Everything predict() derives, reused by update() for training.
  struct Prediction {
    OpId Br = InvalidOpId;
    bool ValidFor = false;
    int Provider = -1;      ///< tagged table of the provider, -1 = bimodal
    int Alt = -1;           ///< tagged table of the alternate, -1 = bimodal
    uint32_t ProviderIdx = 0;
    bool ProviderPred = false;
    bool AltPred = false;
    bool WeakProvider = false; ///< provider entry looks newly allocated
    bool TagePred = false;     ///< after use-alt-on-NA arbitration
    bool LoopValid = false;    ///< loop predictor is confident
    bool LoopPred = false;
    bool SCUsed = false;       ///< statistical corrector reversed the pred
    int SCSum = 0;
    bool Final = false;
    uint32_t Indices[16] = {};
    uint16_t Tags[16] = {};
  };

  /// XORs the newest \p Len history bits into a \p Width-bit register.
  uint32_t foldHistory(unsigned Len, unsigned Width) const {
    uint32_t F = 0;
    unsigned Pos = 0;
    Len = std::min<unsigned>(Len, GHist.size());
    for (unsigned I = 0; I < Len; ++I) {
      F ^= static_cast<uint32_t>(GHist[I] & 1u) << Pos;
      if (++Pos == Width)
        Pos = 0;
    }
    return F;
  }

  uint32_t tableIndex(OpId Br, unsigned Table) const {
    uint32_t Mask = (1u << TableBits) - 1;
    return (predictorTableIndex(Br, TableBits) ^
            foldHistory(Lengths[Table], TableBits) ^
            (foldHistory(Lengths[Table], TableBits - 1) << 1) ^
            (Table + 1)) &
           Mask;
  }

  uint16_t tableTag(OpId Br, unsigned Table) const {
    uint32_t Mask = (1u << TagBits) - 1;
    return static_cast<uint16_t>(
        (Br ^ (Br >> TagBits) ^ foldHistory(Lengths[Table], TagBits) ^
         (foldHistory(Lengths[Table], TagBits - 1) << 1)) &
        Mask);
  }

  bool bimodalPred(OpId Br) const {
    return Bimodal[predictorTableIndex(Br, BimodalBits)] >= 2;
  }

  uint32_t scIndex(OpId Br, unsigned Table) const {
    uint32_t Mask = (1u << TableBits) - 1;
    return (predictorTableIndex(Br, TableBits) ^
            foldHistory(SCLengths[Table], TableBits)) &
           Mask;
  }

  uint32_t loopIndex(OpId Br) const {
    return predictorTableIndex(Br, LoopBits);
  }
  uint32_t loopTag(OpId Br) const { return Br >> LoopBits; }

  Prediction computePrediction(OpId Br) {
    Prediction P;
    P.Br = Br;
    P.ValidFor = true;

    // Tagged-table match: longest history wins, next match is alternate.
    for (unsigned T = 0; T < Tables.size(); ++T) {
      P.Indices[T] = tableIndex(Br, T);
      P.Tags[T] = tableTag(Br, T);
      const TageEntry &E = Tables[T][P.Indices[T]];
      if (E.Valid && E.Tag == P.Tags[T]) {
        P.Alt = P.Provider;
        P.AltPred = P.ProviderPred;
        P.Provider = static_cast<int>(T);
        P.ProviderIdx = P.Indices[T];
        P.ProviderPred = E.Ctr >= 0;
        P.WeakProvider = (E.Ctr == 0 || E.Ctr == -1) && E.U == 0;
      }
    }
    bool Bim = bimodalPred(Br);
    if (P.Provider < 0) {
      P.ProviderPred = Bim;
      P.AltPred = Bim;
    } else if (P.Alt < 0) {
      P.AltPred = Bim;
    }

    // Use the alternate while a freshly allocated provider is untrained.
    P.TagePred = (P.Provider >= 0 && P.WeakProvider && UseAltOnNA >= 0)
                     ? P.AltPred
                     : P.ProviderPred;
    P.Final = P.TagePred;

    // Statistical corrector: reverse a low-confidence prediction the
    // counters disagree with strongly enough.
    if (UseSC) {
      int Sum = 0;
      for (unsigned T = 0; T < SCTables.size(); ++T)
        Sum += 2 * SCTables[T][scIndex(Br, T)] + 1;
      // Center on the TAGE direction so the corrector votes on it.
      Sum += P.Final ? SCBias : -SCBias;
      P.SCSum = Sum;
      bool SCPred = Sum >= 0;
      if (SCPred != P.Final && std::abs(Sum) >= SCThreshold) {
        P.SCUsed = true;
        P.Final = SCPred;
      }
    }

    // Loop predictor: a confident constant-trip-count loop has the final
    // say (it is the only component that can anticipate the exit of a
    // loop longer than the history registers, so the corrector must not
    // outvote it).
    if (UseLoop) {
      const LoopEntry &L = Loops[loopIndex(Br)];
      if (L.Valid && L.Tag == loopTag(Br) && L.Conf >= LoopConfThreshold &&
          L.PastIters > 0) {
        P.LoopValid = true;
        P.LoopPred = L.CurrIter < L.PastIters ? L.Dir : !L.Dir;
        if (WithLoop >= 0)
          P.Final = P.LoopPred;
      }
    }
    return P;
  }

  void updateLoop(OpId Br, bool Taken, const Prediction &P) {
    LoopEntry &L = Loops[loopIndex(Br)];
    uint32_t Tag = loopTag(Br);
    if (!L.Valid || L.Tag != Tag) {
      // Direct-mapped replacement: claim invalid or unconfident slots.
      if (L.Valid && L.Conf != 0) {
        --L.Conf; // age the incumbent instead of thrashing
        return;
      }
      L = LoopEntry();
      L.Valid = true;
      L.Tag = Tag;
      L.Dir = Taken;
      L.CurrIter = 1;
      return;
    }
    if (Taken == L.Dir) {
      if (L.CurrIter < LoopIterMax)
        ++L.CurrIter;
      else
        L.Conf = 0; // runaway run: not a countable loop
      return;
    }
    // The direction flipped: one full run of the loop body ended.
    if (L.CurrIter == L.PastIters) {
      if (L.Conf < 7)
        ++L.Conf;
    } else {
      L.PastIters = L.CurrIter;
      L.Conf = L.PastIters == 0 ? 0 : 1;
    }
    L.CurrIter = 0;
    // Track whether trusting the loop predictor beats the TAGE pred.
    if (P.LoopValid && P.LoopPred != P.TagePred)
      ctrUpdate(WithLoop, P.LoopPred == Taken, UseAltMin, UseAltMax);
  }

  void updateSC(OpId Br, bool Taken, const Prediction &P) {
    // Train on mispredictions and on low-confidence agreement, like the
    // GEHL update rule.
    bool Mispredicted = P.Final != Taken;
    if (!Mispredicted && std::abs(P.SCSum) > SCThreshold + SCMargin)
      return;
    for (unsigned T = 0; T < SCTables.size(); ++T)
      ctrUpdate(SCTables[T][scIndex(Br, T)], Taken, SCMin, SCMax);
  }

  void updateTage(OpId Br, bool Taken, const Prediction &P) {
    bool TageWrong = P.TagePred != Taken;

    if (P.Provider >= 0) {
      TageEntry &E = Tables[P.Provider][P.ProviderIdx];
      // use-alt-on-NA: learn whether untrained entries should be trusted.
      if (P.WeakProvider && P.ProviderPred != P.AltPred)
        ctrUpdate(UseAltOnNA, P.ProviderPred != Taken, UseAltMin,
                  UseAltMax);
      // Usefulness tracks provider-beats-alternate outcomes.
      if (P.ProviderPred != P.AltPred) {
        if (P.ProviderPred == Taken) {
          if (E.U < UMax)
            ++E.U;
        } else if (E.U > 0) {
          --E.U;
        }
      }
      ctrUpdate(E.Ctr, Taken, CtrMin, CtrMax);
      // When the provider's alternate was the bimodal table, keep the
      // base trained too so evicted branches fall back gracefully.
      if (P.Alt < 0) {
        uint8_t &B = Bimodal[predictorTableIndex(Br, BimodalBits)];
        if (Taken) {
          if (B < 3)
            ++B;
        } else if (B > 0) {
          --B;
        }
      }
    } else {
      uint8_t &B = Bimodal[predictorTableIndex(Br, BimodalBits)];
      if (Taken) {
        if (B < 3)
          ++B;
      } else if (B > 0) {
        --B;
      }
    }

    // Deterministic allocation: on a TAGE mispredict, claim the first
    // not-useful entry in a longer-history table; if every candidate is
    // useful, decay them all instead (the reference design picks a
    // random candidate -- determinism forbids that here).
    if (TageWrong && P.Provider + 1 < static_cast<int>(Tables.size())) {
      int Allocated = -1;
      for (unsigned T = P.Provider + 1; T < Tables.size(); ++T) {
        TageEntry &E = Tables[T][P.Indices[T]];
        if (E.U == 0) {
          E.Valid = true;
          E.Tag = P.Tags[T];
          E.Ctr = Taken ? 0 : -1;
          Allocated = static_cast<int>(T);
          break;
        }
      }
      if (Allocated < 0)
        for (unsigned T = P.Provider + 1; T < Tables.size(); ++T) {
          TageEntry &E = Tables[T][P.Indices[T]];
          if (E.U > 0)
            --E.U;
        }
    }

    // Periodic graceful forgetting of usefulness, so stale entries can
    // eventually be reclaimed.
    if (++UpdateCount % UDecayPeriod == 0)
      for (std::vector<TageEntry> &T : Tables)
        for (TageEntry &E : T)
          E.U >>= 1;
  }

  unsigned TableBits;
  unsigned TagBits;
  unsigned BimodalBits;
  std::vector<unsigned> Lengths;
  bool UseSC;
  bool UseLoop;
  unsigned LoopBits;

  static constexpr int SCBias = 4;
  static constexpr int SCThreshold = 5;
  static constexpr int SCMargin = 4;

  std::vector<uint8_t> Bimodal;
  std::vector<std::vector<TageEntry>> Tables;
  std::vector<uint8_t> GHist; ///< newest bit first
  std::vector<unsigned> SCLengths;
  std::vector<std::vector<int8_t>> SCTables;
  std::vector<LoopEntry> Loops;
  int8_t UseAltOnNA = 0;
  int8_t WithLoop = 0;
  uint64_t UpdateCount = 0;
  Prediction Pre;
};

} // namespace

std::unique_ptr<BranchPredictor>
cpr::makeTageScLPredictor(const PredictorConfig &C) {
  return std::make_unique<TageScLPredictor>(C);
}

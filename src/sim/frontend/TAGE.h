//===- sim/frontend/TAGE.h - TAGE-SC-L branch predictor ---------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A TAGE-SC-L-class conditional branch predictor (Seznec's CBP family)
/// behind the repository's BranchPredictor interface:
///
///  - a bimodal base table of 2-bit counters;
///  - N tagged tables indexed by branch id hashed with geometrically
///    increasing global-history lengths, each entry carrying a partial
///    tag, a 3-bit signed prediction counter, and a 2-bit usefulness
///    counter; the longest-history tag match provides the prediction,
///    the next match (or bimodal) provides the alternate;
///  - a use-alt-on-newly-allocated counter that prefers the alternate
///    prediction while a freshly allocated entry is still untrained;
///  - a loop predictor that learns constant trip counts and overrides
///    the TAGE prediction once confident;
///  - a statistical corrector (GEHL-style adder tree of signed counters
///    over several short history lengths) that reverses statistically
///    biased low-confidence TAGE predictions.
///
/// The reference implementations allocate tagged entries with a random
/// table choice; this one is strictly deterministic -- allocation scans
/// for the first not-useful entry above the provider -- because every
/// simulator stage must be byte-identical at any --threads setting.
/// There is no randomness, no wall clock, and no global state: two
/// instances fed the same branch stream stay bit-identical.
///
/// Sizing comes from PredictorConfig's Tage* knobs (BranchPredictor.h);
/// the defaults are scaled for the repository's OpId-keyed kernel traces
/// rather than a 64-kilobyte hardware budget.
///
//===----------------------------------------------------------------------===//

#ifndef SIM_FRONTEND_TAGE_H
#define SIM_FRONTEND_TAGE_H

#include "sim/BranchPredictor.h"

namespace cpr {

/// Builds the deterministic TAGE-SC-L predictor described above, sized by
/// \p C's Tage* knobs. Equivalent to
/// makePredictor(PredictorKind::TageScL, C).
std::unique_ptr<BranchPredictor>
makeTageScLPredictor(const PredictorConfig &C = PredictorConfig());

/// The geometric history-length series the tagged tables use: \p Tables
/// lengths from \p MinHist to \p MaxHist inclusive. Exposed so tests can
/// pin the table geometry.
std::vector<unsigned> tageHistoryLengths(unsigned Tables, unsigned MinHist,
                                         unsigned MaxHist);

} // namespace cpr

#endif // SIM_FRONTEND_TAGE_H

//===- sim/BranchPredictor.h - Pluggable branch predictors ------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Branch direction predictors for the trace-driven simulator. The paper's
/// performance methodology charges no misprediction cost at all; these
/// models let the repository quantify control CPR's central dynamic
/// trade-off -- collapsing several highly predictable exit branches into
/// one combined bypass branch whose direction is harder to learn.
///
/// Five models, in increasing sophistication:
///
///  - Static:    profile-based predict-taken heuristic, one fixed direction
///               per branch (the strongest model the paper's static
///               methodology implicitly assumes);
///  - Bimodal:   per-branch 2-bit saturating counters in a hashed table;
///  - Gshare:    2-bit counters indexed by branch id XOR global history
///               (McFarling-style);
///  - Local:     two-level with per-branch history registers selecting a
///               pattern table of 2-bit counters;
///  - TageScL:   TAGE-SC-L-class predictor (sim/frontend/TAGE.h): bimodal
///               base plus tagged geometric-history tables with usefulness
///               counters, a statistical corrector, and a loop predictor --
///               the production-grade model the modern-relevance question
///               of ROADMAP O2 needs.
///
/// Branches are keyed by OpId -- the IR has no instruction addresses, and
/// ids survive transformation, so baseline and treated traces index
/// predictor state the same way a PC would.
///
//===----------------------------------------------------------------------===//

#ifndef SIM_BRANCHPREDICTOR_H
#define SIM_BRANCHPREDICTOR_H

#include "analysis/ProfileData.h"

#include <memory>
#include <string>

namespace cpr {

/// The available predictor models.
enum class PredictorKind {
  Static,  ///< profile-based fixed direction per branch
  Bimodal, ///< hashed table of 2-bit counters
  Gshare,  ///< global-history XOR indexing
  Local,   ///< two-level local-history predictor
  TageScL, ///< TAGE-SC-L class (tagged geometric tables + SC + loop)
};

/// One registered predictor model: the single source of truth tools and
/// benches enumerate (names, parsing, factory dispatch all derive from
/// this table).
struct PredictorInfo {
  PredictorKind Kind;
  const char *Name;    ///< stable CLI/report name, e.g. "tage-sc-l"
  const char *Summary; ///< one-line description for --help and docs
};

/// The registry of all predictor models, in definition order.
const std::vector<PredictorInfo> &predictorRegistry();

/// Comma-separated registered predictor names, for diagnostics
/// ("static, bimodal, gshare, local, tage-sc-l").
std::string predictorNamesList();

/// Printable name of \p K ("static", "bimodal", "gshare", "local",
/// "tage-sc-l").
const char *predictorKindName(PredictorKind K);

/// Parses a predictor name as printed by predictorKindName.
/// Returns false on an unknown name.
bool parsePredictorKind(const std::string &Name, PredictorKind &Out);

/// All registered kinds, in definition order.
std::vector<PredictorKind> allPredictorKinds();

/// Sizing and seeding for makePredictor.
struct PredictorConfig {
  /// log2 of the counter-table size for bimodal/gshare and of the
  /// history-table size for local.
  unsigned TableBits = 10;
  /// Global history length for gshare, in bits.
  unsigned HistoryBits = 8;
  /// Per-branch history length for the local predictor, in bits (also
  /// log2 of its pattern table size).
  unsigned LocalHistoryBits = 6;
  /// Profile consulted by the static predictor; unknown or unprofiled
  /// branches are predicted not taken (superblock fall-through bias).
  const ProfileData *Profile = nullptr;
  /// A branch whose profiled taken ratio meets this threshold is
  /// statically predicted taken.
  double PredictTakenThreshold = 0.5;

  /// --- TAGE-SC-L sizing (sim/frontend/TAGE.h) -------------------------
  /// Number of tagged geometric-history tables.
  unsigned TageTables = 4;
  /// log2 entries per tagged table.
  unsigned TageTableBits = 9;
  /// Partial-tag width per tagged-table entry, in bits.
  unsigned TageTagBits = 8;
  /// Shortest and longest global-history lengths; the lengths of the
  /// tables in between follow a geometric series.
  unsigned TageMinHistory = 4;
  unsigned TageMaxHistory = 64;
  /// Enable the statistical-corrector and loop-predictor side predictors.
  bool TageUseSC = true;
  bool TageUseLoop = true;
  /// log2 entries of the loop-predictor table.
  unsigned LoopTableBits = 6;
};

/// Aggregate prediction accuracy counters.
struct PredictorStats {
  uint64_t Lookups = 0;
  uint64_t Mispredicts = 0;

  /// Mispredictions per lookup; 0 when never consulted.
  double missRate() const {
    return Lookups == 0 ? 0.0
                        : static_cast<double>(Mispredicts) /
                              static_cast<double>(Lookups);
  }
  /// Mispredicts per 1000 dispatched operations (\p DynOps).
  double mpki(uint64_t DynOps) const {
    return DynOps == 0 ? 0.0
                       : 1000.0 * static_cast<double>(Mispredicts) /
                             static_cast<double>(DynOps);
  }
};

/// A dynamic branch direction predictor.
class BranchPredictor {
public:
  virtual ~BranchPredictor() = default;

  virtual const char *name() const = 0;

  /// Predicted direction for branch \p Br (true = taken).
  virtual bool predict(OpId Br) = 0;

  /// Trains tables and advances history with the resolved direction.
  virtual void update(OpId Br, bool Taken) = 0;

  /// Clears all learned state and the stats.
  virtual void reset() = 0;

  /// Predict, count the outcome in stats(), then train. Returns the
  /// prediction made.
  bool observe(OpId Br, bool Taken) {
    bool Predicted = predict(Br);
    ++Stats.Lookups;
    if (Predicted != Taken)
      ++Stats.Mispredicts;
    update(Br, Taken);
    return Predicted;
  }

  const PredictorStats &stats() const { return Stats; }

protected:
  void clearStats() { Stats = PredictorStats(); }

private:
  PredictorStats Stats;
};

/// Table index of branch \p Br in a 2^\p Bits-entry table: the id folded
/// over itself and masked. Exposed so aliasing tests can construct
/// deliberately colliding ids.
uint32_t predictorTableIndex(OpId Br, unsigned Bits);

/// Builds a predictor of kind \p K. The static kind requires
/// \p C.Profile to be useful; without one it predicts fall-through
/// everywhere.
std::unique_ptr<BranchPredictor>
makePredictor(PredictorKind K, const PredictorConfig &C = PredictorConfig());

} // namespace cpr

#endif // SIM_BRANCHPREDICTOR_H

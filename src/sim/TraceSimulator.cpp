//===- sim/TraceSimulator.cpp - Trace-driven cycle simulation -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sim/TraceSimulator.h"

#include "analysis/CFG.h"
#include "analysis/DepGraph.h"
#include "analysis/Liveness.h"
#include "analysis/PQS.h"
#include "sched/ListScheduler.h"

#include <optional>

using namespace cpr;

namespace {

/// Lazily scheduled blocks: only blocks the trace actually enters pay the
/// scheduling cost, and loop bodies are scheduled once.
class ScheduleCache {
public:
  ScheduleCache(const Function &F, const MachineDesc &MD, bool Speculation)
      : F(F), MD(MD), Speculation(Speculation), LV(F),
        Cache(F.numBlocks()) {}

  const Schedule &get(size_t LayoutIdx) {
    std::optional<Schedule> &Slot = Cache[LayoutIdx];
    if (!Slot) {
      const Block &B = F.block(LayoutIdx);
      if (B.empty()) {
        Slot.emplace();
      } else {
        RegionPQS PQS(F, B);
        DepGraphOptions DOpts;
        DOpts.AllowSpeculation = Speculation;
        DepGraph DG(F, B, MD, PQS, LV, DOpts);
        Slot = scheduleBlock(B, DG, MD);
      }
    }
    return *Slot;
  }

private:
  const Function &F;
  const MachineDesc &MD;
  bool Speculation;
  Liveness LV;
  std::vector<std::optional<Schedule>> Cache;
};

} // namespace

SimEstimate cpr::simulateTrace(const Function &F, const MachineDesc &MD,
                               const BranchTrace &Trace,
                               BranchPredictor &Pred,
                               const SimOptions &Opts) {
  SimEstimate Est;
  std::vector<SimBlockStats> BlockStats(F.numBlocks());
  std::optional<BTB> TargetBuffer;
  auto finish = [&]() -> SimEstimate & {
    Est.Pred = Pred.stats();
    if (TargetBuffer) {
      Est.BTBLookups = TargetBuffer->stats().Lookups;
      Est.BTBHits = TargetBuffer->stats().Hits;
      Est.BTBMisses = TargetBuffer->stats().Misses;
    }
    for (SimBlockStats &BS : BlockStats)
      if (BS.Entries != 0)
        Est.Blocks.push_back(std::move(BS));
    return Est;
  };
  auto fail = [&](const std::string &Msg) -> SimEstimate & {
    Est.Error = Msg;
    return finish();
  };

  if (F.numBlocks() == 0)
    return fail("function has no blocks");
  if (Trace.droppedEvents() != 0)
    return fail("trace is incomplete: ring dropped " +
                std::to_string(Trace.droppedEvents()) + " event(s)");
  if (!Trace.hasTerminal())
    return fail("trace has no terminal marker (run did not halt?)");

  int Penalty =
      Opts.MispredictPenalty >= 0 ? Opts.MispredictPenalty
                                  : MD.mispredictPenalty();
  const FrontendOptions &FE = Opts.Frontend;
  int BTBMissPenalty = FE.BTBMissPenalty >= 0 ? FE.BTBMissPenalty
                                              : MD.btbMissPenalty();
  int FetchWidth = FE.FetchWidth > 0 ? FE.FetchWidth : MD.fetchWidth();
  if (FE.UseBTB)
    TargetBuffer.emplace(FE.BTB);
  ScheduleCache Schedules(F, MD, Opts.AllowSpeculation);

  // Decoupled frontend: a block entry that dispatches N operations needs
  // ceil(N / FetchWidth) fetch cycles (the taken branch or halt that ends
  // the entry also ends its last fetch packet); when the schedule retires
  // faster than that, the backend stalls for the difference.
  auto chargeFetch = [&](SimBlockStats &BS, double BackendCycles,
                         uint64_t OpsFetched) {
    if (!FE.Decoupled || OpsFetched == 0)
      return;
    uint64_t FetchCycles =
        (OpsFetched + static_cast<uint64_t>(FetchWidth) - 1) /
        static_cast<uint64_t>(FetchWidth);
    double Backend = BackendCycles;
    if (static_cast<double>(FetchCycles) > Backend) {
      uint64_t Stall = FetchCycles - static_cast<uint64_t>(Backend);
      BS.FetchStallCycles += Stall;
      BS.Cycles += static_cast<double>(Stall);
      Est.FetchStallCycles += Stall;
      Est.TotalCycles += static_cast<double>(Stall);
    }
  };

  size_t Cursor = 0; // next unconsumed trace event
  size_t BI = 0;     // layout index of the current block

  while (true) {
    const Block &B = F.block(BI);
    const Schedule &S = Schedules.get(BI);
    SimBlockStats &BS = BlockStats[BI];
    if (BS.Entries == 0) {
      BS.Id = B.getId();
      BS.Name = B.getName();
    }
    ++BS.Entries;
    ++Est.BlockEntries;

    bool Transferred = false;
    for (size_t OI = 0, OE = B.size(); OI != OE; ++OI) {
      const Operation &Op = B.ops()[OI];

      if (Op.getId() == Trace.terminalOp() &&
          (Op.getOpcode() == Opcode::Halt ||
           Op.getOpcode() == Opcode::Trap)) {
        // The run ended on this operation. Like the ExitAware performance
        // model, a halt exit is charged the full block length.
        double C = static_cast<double>(S.length());
        BS.Cycles += C;
        Est.TotalCycles += C;
        Est.OpsDispatched += OI + 1;
        chargeFetch(BS, C, OI + 1);
        if (Cursor != Trace.size())
          return fail("trace has " + std::to_string(Trace.size() - Cursor) +
                      " event(s) past the terminal operation");
        return finish();
      }

      if (Op.getOpcode() == Opcode::Halt || Op.getOpcode() == Opcode::Trap) {
        // A non-terminal halt/trap on the replayed path must have been
        // nullified by its guard; an unguarded one means the trace does
        // not belong to this function.
        if (Op.getGuard().isTruePred())
          return fail("trace diverged: unguarded " +
                      std::string(Op.getOpcode() == Opcode::Halt ? "halt"
                                                                 : "trap") +
                      " in @" + B.getName() + " is not the trace terminal");
        continue;
      }

      if (!Op.isBranch())
        continue;

      if (Cursor >= Trace.size())
        return fail("trace exhausted at branch id " +
                    std::to_string(Op.getId()) + " in @" + B.getName());
      const BranchEvent &Ev = Trace.event(Cursor++);
      if (Ev.Op != Op.getId())
        return fail("trace diverged in @" + B.getName() + ": event id " +
                    std::to_string(Ev.Op) + " vs branch id " +
                    std::to_string(Op.getId()));

      ++Est.Branches;
      bool Predicted = Pred.observe(Ev.Op, Ev.Taken);
      if (Predicted != Ev.Taken) {
        ++Est.Mispredicts;
        ++BS.Mispredicts;
        Est.PenaltyCycles += static_cast<uint64_t>(Penalty);
        BS.Cycles += Penalty;
        Est.TotalCycles += Penalty;
      }

      if (Ev.Taken) {
        double C = static_cast<double>(S.departureCycle(OI, B, MD));
        BS.Cycles += C;
        Est.TotalCycles += C;
        Est.OpsDispatched += OI + 1;
        BlockId Target = resolveBranchTarget(B, OI);
        if (Target == InvalidBlockId)
          return fail("branch id " + std::to_string(Op.getId()) +
                      " in @" + B.getName() + " has no resolvable target");
        if (TargetBuffer) {
          // The frontend needs the target to redirect without a bubble.
          // A direction mispredict already paid the full restart above;
          // only a direction-correct target miss costs extra here.
          bool Hit = TargetBuffer->access(Op.getId(), Target);
          if (!Hit && Predicted == Ev.Taken) {
            ++BS.BTBMisses;
            Est.BTBPenaltyCycles += static_cast<uint64_t>(BTBMissPenalty);
            BS.Cycles += BTBMissPenalty;
            Est.TotalCycles += BTBMissPenalty;
          }
        }
        chargeFetch(BS, C, OI + 1);
        int TargetIdx = F.layoutIndex(Target);
        if (TargetIdx < 0)
          return fail("branch id " + std::to_string(Op.getId()) +
                      " targets a block outside the function");
        BI = static_cast<size_t>(TargetIdx);
        Transferred = true;
        break;
      }
    }
    if (Transferred)
      continue;

    // Fell through the end of the block.
    double C = static_cast<double>(S.length());
    BS.Cycles += C;
    Est.TotalCycles += C;
    Est.OpsDispatched += B.size();
    chargeFetch(BS, C, B.size());
    if (BI + 1 >= F.numBlocks())
      return fail("control fell off the end of the function in @" +
                  B.getName());
    ++BI;
  }
}

//===- sim/TraceSimulator.h - Trace-driven cycle simulation -----*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A trace-driven cycle-level simulator: replays one interpreter run's
/// branch stream (interp/BranchTrace.h) over the scheduled blocks of a
/// function, charging schedule-accurate cycles per block entry -- the same
/// departure-cycle accounting as the ExitAware performance model -- plus a
/// configurable pipeline-restart penalty on every branch a pluggable
/// predictor gets wrong.
///
/// With a zero penalty (and the frontend model off) the produced
/// SimEstimate::TotalCycles is exactly the ExitAware
/// PerfEstimate::TotalCycles for the same run: the simulator is the
/// dynamic refinement of the paper's Section 7 static formula, not a
/// different model. The delta between the two is therefore purely the
/// misprediction cost the paper ignores -- the quantity of interest when
/// judging control CPR's predictable-branches-for-one-bypass trade.
///
/// The optional decoupled-frontend model (FrontendOptions) refines the
/// flat penalty further, charging three separate cost classes
/// (docs/SIMULATOR.md):
///
///  - direction mispredicts: the full MispredictPenalty, as before;
///  - BTB target misses: a taken branch whose target is not resident in
///    the set-associative BTB (sim/frontend/BTB.h) pays the (smaller)
///    BTB-miss redirect penalty even when its direction was right;
///  - fetch-bandwidth stalls: each block entry can dispatch at most
///    FetchWidth operations per cycle and a taken branch ends its fetch
///    packet, so a block whose schedule finishes faster than its
///    operations can be fetched stalls for the difference.
///
//===----------------------------------------------------------------------===//

#ifndef SIM_TRACESIMULATOR_H
#define SIM_TRACESIMULATOR_H

#include "interp/BranchTrace.h"
#include "machine/MachineDesc.h"
#include "sim/BranchPredictor.h"
#include "sim/frontend/BTB.h"

#include <string>
#include <vector>

namespace cpr {

/// The decoupled-frontend cost model, off by default (the legacy flat
/// mispredict-penalty accounting, which preserves the penalty-0 ==
/// ExitAware invariant above).
struct FrontendOptions {
  /// Model fetch bandwidth: every block entry is limited to FetchWidth
  /// operations fetched per cycle, and a taken branch breaks the fetch
  /// packet (the block entry's fetch ends there).
  bool Decoupled = false;
  /// Operations fetched per cycle; non-positive selects the machine's
  /// fetchWidth() knob.
  int FetchWidth = 0;
  /// Model a branch target buffer: taken branches look their targets up
  /// and pay BTBMissPenalty on a target miss that a correct direction
  /// prediction would otherwise have hidden.
  bool UseBTB = false;
  /// BTB geometry when UseBTB is set.
  BTBConfig BTB;
  /// Cycles charged per BTB target miss on a direction-correct taken
  /// branch. Negative selects the machine's btbMissPenalty() knob.
  int BTBMissPenalty = -1;
};

/// Simulation options.
struct SimOptions {
  /// Cycles charged per misprediction (fetch redirect + pipeline refill).
  /// Negative selects the machine's own penalty knob.
  int MispredictPenalty = -1;
  /// Passed through to block scheduling (superblock speculation).
  bool AllowSpeculation = true;
  /// Decoupled-frontend refinement (BTB + fetch bandwidth).
  FrontendOptions Frontend;
};

/// Per-block simulation detail.
struct SimBlockStats {
  BlockId Id = InvalidBlockId;
  std::string Name;
  uint64_t Entries = 0;
  uint64_t Mispredicts = 0;
  uint64_t BTBMisses = 0;
  uint64_t FetchStallCycles = 0;
  double Cycles = 0.0; ///< includes penalty cycles charged in this block
};

/// Whole-run dynamic estimate, parallel to sched/PerfModel.h's
/// PerfEstimate.
struct SimEstimate {
  double TotalCycles = 0.0;
  /// Cycles of TotalCycles attributable to misprediction penalties.
  uint64_t PenaltyCycles = 0;
  /// Operations dispatched along the replayed path (the denominator of
  /// MPKI; equals the interpreter's DynStats::OpsDispatched).
  uint64_t OpsDispatched = 0;
  uint64_t Branches = 0;
  uint64_t Mispredicts = 0;
  uint64_t BlockEntries = 0;
  /// --- Decoupled-frontend counters (zero when the model is off) ------
  /// Target lookups/hits/misses of taken branches in the BTB.
  uint64_t BTBLookups = 0;
  uint64_t BTBHits = 0;
  uint64_t BTBMisses = 0;
  /// Cycles of TotalCycles charged for direction-correct BTB misses.
  uint64_t BTBPenaltyCycles = 0;
  /// Cycles of TotalCycles where the backend waited on fetch bandwidth.
  uint64_t FetchStallCycles = 0;
  /// Final predictor counters (Lookups == Branches on success).
  PredictorStats Pred;
  std::vector<SimBlockStats> Blocks;
  /// Non-empty when the trace could not be replayed against the function
  /// (diverged ids, dropped ring events, missing terminal, ...).
  std::string Error;

  bool ok() const { return Error.empty(); }
  /// Mispredicts per 1000 dispatched operations.
  double mpki() const {
    return OpsDispatched == 0 ? 0.0
                              : 1000.0 * static_cast<double>(Mispredicts) /
                                    static_cast<double>(OpsDispatched);
  }
  /// BTB target misses per 1000 dispatched operations.
  double btbMpki() const {
    return OpsDispatched == 0 ? 0.0
                              : 1000.0 * static_cast<double>(BTBMisses) /
                                    static_cast<double>(OpsDispatched);
  }
};

/// Replays \p Trace through \p F's schedules for \p MD, predicting every
/// branch with \p Pred (which is trained in place; reset it between runs).
/// The trace must be complete (no ring drops) and carry a terminal marker,
/// i.e. come from a halted interpreter run of exactly this function.
SimEstimate simulateTrace(const Function &F, const MachineDesc &MD,
                          const BranchTrace &Trace, BranchPredictor &Pred,
                          const SimOptions &Opts = SimOptions());

} // namespace cpr

#endif // SIM_TRACESIMULATOR_H

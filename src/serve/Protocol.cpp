//===- serve/Protocol.cpp - The cprd-v1 wire protocol ----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Protocol.h"

#include "support/JSON.h"

using namespace cpr;
using namespace cpr::serve;

namespace {

/// Registered `cmd` values. One row per RequestKind; decode, encode and
/// the unknown-command diagnostic all read this table so they can never
/// drift apart.
struct CommandRow {
  const char *Name;
  RequestKind Kind;
};
const CommandRow Commands[] = {
    {"compile", RequestKind::Compile},
    {"ping", RequestKind::Ping},
    {"stats", RequestKind::Stats},
};

Diagnostic frameError(std::string Msg) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = DiagCode::ParseError;
  D.Message = std::move(Msg);
  D.Site = "cprd.frame";
  return D;
}

/// Type-checked field extraction for the strict request decoder.
bool wantString(const JSONValue &V, const std::string &Key, std::string &Out,
                std::string &Err) {
  if (!V.isString()) {
    Err = "field \"" + Key + "\" must be a string";
    return false;
  }
  Out = V.getString();
  return true;
}

bool wantNumber(const JSONValue &V, const std::string &Key, double &Out,
                std::string &Err) {
  if (!V.isNumber()) {
    Err = "field \"" + Key + "\" must be a number";
    return false;
  }
  Out = V.getNumber();
  return true;
}

bool wantBool(const JSONValue &V, const std::string &Key, bool &Out,
              std::string &Err) {
  if (V.kind() != JSONValue::Kind::Bool) {
    Err = "field \"" + Key + "\" must be a boolean";
    return false;
  }
  Out = V.getBool();
  return true;
}

/// Applies one "options" member; unknown keys are an error.
bool applyOption(const std::string &Key, const JSONValue &V,
                 CompileRequest &Req, std::string &Err) {
  double N = 0.0;
  bool B = false;
  if (Key == "exit_weight")
    return wantNumber(V, Key, Req.CPR.ExitWeightThreshold, Err);
  if (Key == "predict_taken")
    return wantNumber(V, Key, Req.CPR.PredictTakenThreshold, Err);
  if (Key == "max_branches") {
    if (!wantNumber(V, Key, N, Err))
      return false;
    Req.CPR.MaxBranchesPerBlock = static_cast<unsigned>(N);
    return true;
  }
  if (Key == "min_branches") {
    if (!wantNumber(V, Key, N, Err))
      return false;
    Req.CPR.MinBranchesPerBlock = static_cast<unsigned>(N);
    return true;
  }
  if (Key == "speculation") {
    if (!wantBool(V, Key, B, Err))
      return false;
    Req.CPR.EnablePredicateSpeculation = B;
    return true;
  }
  if (Key == "taken_variation") {
    if (!wantBool(V, Key, B, Err))
      return false;
    Req.CPR.EnableTakenVariation = B;
    return true;
  }
  if (Key == "unroll") {
    if (!wantNumber(V, Key, N, Err))
      return false;
    Req.UnrollFactor = static_cast<unsigned>(N);
    return true;
  }
  if (Key == "lint")
    return wantBool(V, Key, Req.Lint, Err);
  if (Key == "region_equivalence")
    return wantBool(V, Key, Req.RegionEquivalence, Err);
  if (Key == "interp_max_steps") {
    if (!wantNumber(V, Key, N, Err))
      return false;
    Req.InterpMaxSteps = static_cast<uint64_t>(N);
    return true;
  }
  if (Key == "budget_steps") {
    if (!wantNumber(V, Key, N, Err))
      return false;
    Req.TransformBudget.MaxSteps = static_cast<uint64_t>(N);
    return true;
  }
  if (Key == "budget_wall_ms")
    return wantNumber(V, Key, Req.TransformBudget.MaxWallMs, Err);
  if (Key == "deadline_ms")
    return wantNumber(V, Key, Req.DeadlineMs, Err);
  Err = "unknown option \"" + Key + "\"";
  return false;
}

} // namespace

std::string serve::requestCommandList() {
  std::string Out;
  for (const CommandRow &C : Commands) {
    if (!Out.empty())
      Out += ", ";
    Out += C.Name;
  }
  return Out;
}

WireDiagnostic serve::toWire(const Diagnostic &D) {
  WireDiagnostic W;
  W.Severity = diagSeverityName(D.Severity);
  W.Code = diagCodeName(D.Code);
  W.Message = D.Message;
  W.Site = D.Site;
  return W;
}

CompileResponse serve::errorResponse(std::string Id, const Diagnostic &D) {
  CompileResponse Res;
  Res.Id = std::move(Id);
  Res.Status = "error";
  Res.Diagnostics.push_back(toWire(D));
  return Res;
}

std::string serve::encodeRequest(const CompileRequest &Req) {
  JSONValue V = JSONValue::object();
  V.set("proto", JSONValue::str(ProtocolName));
  if (Req.Kind != RequestKind::Compile)
    for (const CommandRow &C : Commands)
      if (C.Kind == Req.Kind)
        V.set("cmd", JSONValue::str(C.Name));
  V.set("id", JSONValue::str(Req.Id));
  if (Req.Kind == RequestKind::Compile) {
    V.set("ir", JSONValue::str(Req.IR));
    JSONValue O = JSONValue::object();
    O.set("exit_weight", JSONValue::number(Req.CPR.ExitWeightThreshold));
    O.set("predict_taken", JSONValue::number(Req.CPR.PredictTakenThreshold));
    O.set("max_branches", JSONValue::number(Req.CPR.MaxBranchesPerBlock));
    O.set("min_branches", JSONValue::number(Req.CPR.MinBranchesPerBlock));
    O.set("speculation",
          JSONValue::boolean(Req.CPR.EnablePredicateSpeculation));
    O.set("taken_variation", JSONValue::boolean(Req.CPR.EnableTakenVariation));
    O.set("unroll", JSONValue::number(Req.UnrollFactor));
    O.set("lint", JSONValue::boolean(Req.Lint));
    O.set("region_equivalence", JSONValue::boolean(Req.RegionEquivalence));
    O.set("interp_max_steps",
          JSONValue::number(static_cast<double>(Req.InterpMaxSteps)));
    O.set("budget_steps",
          JSONValue::number(static_cast<double>(Req.TransformBudget.MaxSteps)));
    O.set("budget_wall_ms", JSONValue::number(Req.TransformBudget.MaxWallMs));
    // Optional on the wire: omitted when unset so pre-deadline frames
    // (fixtures, recorded corpora) stay byte-identical.
    if (Req.DeadlineMs > 0.0)
      O.set("deadline_ms", JSONValue::number(Req.DeadlineMs));
    V.set("options", O);
  }
  return writeJSON(V, /*Pretty=*/false);
}

Expected<CompileRequest> serve::decodeRequest(const std::string &Line) {
  JSONParseResult P = parseJSON(Line);
  if (!P)
    return P.diagnostic("cprd.frame");
  if (!P.Value.isObject())
    return frameError("frame must be a JSON object");

  CompileRequest Req;
  bool SawProto = false, SawIR = false;
  std::string Err;
  for (const auto &M : P.Value.members()) {
    const std::string &Key = M.first;
    const JSONValue &V = M.second;
    if (Key == "proto") {
      std::string Proto;
      if (!wantString(V, Key, Proto, Err))
        return frameError(std::move(Err));
      if (Proto != ProtocolName)
        return frameError("unsupported protocol \"" + Proto + "\" (want \"" +
                          ProtocolName + "\")");
      SawProto = true;
    } else if (Key == "cmd") {
      std::string Cmd;
      if (!wantString(V, Key, Cmd, Err))
        return frameError(std::move(Err));
      bool Known = false;
      for (const CommandRow &C : Commands)
        if (Cmd == C.Name) {
          Req.Kind = C.Kind;
          Known = true;
          break;
        }
      if (!Known)
        return frameError("unknown cmd \"" + Cmd +
                          "\"; registered commands: " + requestCommandList());
    } else if (Key == "id") {
      if (!wantString(V, Key, Req.Id, Err))
        return frameError(std::move(Err));
    } else if (Key == "ir") {
      if (!wantString(V, Key, Req.IR, Err))
        return frameError(std::move(Err));
      SawIR = true;
    } else if (Key == "options") {
      if (!V.isObject())
        return frameError("field \"options\" must be an object");
      for (const auto &O : V.members())
        if (!applyOption(O.first, O.second, Req, Err))
          return frameError(std::move(Err));
    } else {
      return frameError("unknown field \"" + Key + "\"");
    }
  }
  if (!SawProto)
    return frameError("missing \"proto\" field");
  if (Req.Kind == RequestKind::Compile && !SawIR)
    return frameError("missing \"ir\" field");
  return Req;
}

std::string serve::encodeResponse(const CompileResponse &Res) {
  JSONValue V = JSONValue::object();
  V.set("proto", JSONValue::str(ProtocolName));
  V.set("id", JSONValue::str(Res.Id));
  V.set("status", JSONValue::str(Res.Status));
  if (Res.Status == "ok") {
    V.set("ir", JSONValue::str(Res.IR));
    V.set("fell_back", JSONValue::boolean(Res.FellBack));
    JSONValue C = JSONValue::object();
    C.set("regions_processed", JSONValue::number(Res.CPR.RegionsProcessed));
    C.set("cpr_blocks_formed", JSONValue::number(Res.CPR.CPRBlocksFormed));
    C.set("cpr_blocks_transformed",
          JSONValue::number(Res.CPR.CPRBlocksTransformed));
    C.set("taken_variants", JSONValue::number(Res.CPR.TakenVariants));
    C.set("branches_covered", JSONValue::number(Res.CPR.BranchesCovered));
    C.set("promoted", JSONValue::number(Res.CPR.Promoted));
    C.set("demoted", JSONValue::number(Res.CPR.Demoted));
    C.set("lookaheads_inserted",
          JSONValue::number(Res.CPR.LookaheadsInserted));
    C.set("ops_moved_off_trace", JSONValue::number(Res.CPR.OpsMovedOffTrace));
    C.set("ops_split", JSONValue::number(Res.CPR.OpsSplit));
    C.set("dce_ops_removed", JSONValue::number(Res.CPR.DCE.OpsRemoved));
    C.set("dce_dests_removed", JSONValue::number(Res.CPR.DCE.DestsRemoved));
    C.set("blocks_rolled_back", JSONValue::number(Res.CPR.BlocksRolledBack));
    C.set("regions_rolled_back", JSONValue::number(Res.CPR.RegionsRolledBack));
    C.set("regions_skipped_budget",
          JSONValue::number(Res.CPR.RegionsSkippedBudget));
    C.set("budget_exhausted", JSONValue::boolean(Res.CPR.BudgetExhausted));
    V.set("cpr", C);
    JSONValue Cache = JSONValue::object();
    Cache.set("hits", JSONValue::number(static_cast<double>(Res.CacheHits)));
    Cache.set("misses",
              JSONValue::number(static_cast<double>(Res.CacheMisses)));
    V.set("cache", Cache);
  }
  if (!Res.Diagnostics.empty()) {
    JSONValue A = JSONValue::array();
    for (const WireDiagnostic &W : Res.Diagnostics) {
      JSONValue D = JSONValue::object();
      D.set("severity", JSONValue::str(W.Severity));
      D.set("code", JSONValue::str(W.Code));
      D.set("message", JSONValue::str(W.Message));
      D.set("site", JSONValue::str(W.Site));
      A.append(D);
    }
    V.set("diagnostics", A);
  }
  if (!Res.Extra.empty()) {
    JSONValue E = JSONValue::object();
    for (const auto &KV : Res.Extra)
      E.set(KV.first, JSONValue::number(KV.second));
    V.set("extra", E);
  }
  // WallMs deliberately stays off the wire: a response frame is a pure
  // function of the request, so cached and cold compiles are
  // byte-identical; clients measure latency themselves.
  return writeJSON(V, /*Pretty=*/false);
}

Expected<CompileResponse> serve::decodeResponse(const std::string &Line) {
  JSONParseResult P = parseJSON(Line);
  if (!P)
    return P.diagnostic("cprd.frame");
  if (!P.Value.isObject())
    return frameError("frame must be a JSON object");
  const JSONValue &V = P.Value;

  auto Str = [&](const char *Key) -> std::string {
    const JSONValue *F = V.find(Key);
    return F && F->isString() ? F->getString() : std::string();
  };
  auto Num = [](const JSONValue *Obj, const char *Key) -> double {
    if (!Obj)
      return 0.0;
    const JSONValue *F = Obj->find(Key);
    return F && F->isNumber() ? F->getNumber() : 0.0;
  };
  auto Flag = [](const JSONValue *Obj, const char *Key) -> bool {
    if (!Obj)
      return false;
    const JSONValue *F = Obj->find(Key);
    return F && F->kind() == JSONValue::Kind::Bool && F->getBool();
  };

  if (Str("proto") != ProtocolName)
    return frameError("unsupported or missing \"proto\"");
  CompileResponse Res;
  Res.Id = Str("id");
  Res.Status = Str("status");
  if (Res.Status.empty())
    return frameError("missing \"status\" field");
  Res.IR = Str("ir");
  Res.FellBack = Flag(&V, "fell_back");

  const JSONValue *C = V.find("cpr");
  if (C && C->isObject()) {
    Res.CPR.RegionsProcessed =
        static_cast<unsigned>(Num(C, "regions_processed"));
    Res.CPR.CPRBlocksFormed =
        static_cast<unsigned>(Num(C, "cpr_blocks_formed"));
    Res.CPR.CPRBlocksTransformed =
        static_cast<unsigned>(Num(C, "cpr_blocks_transformed"));
    Res.CPR.TakenVariants = static_cast<unsigned>(Num(C, "taken_variants"));
    Res.CPR.BranchesCovered =
        static_cast<unsigned>(Num(C, "branches_covered"));
    Res.CPR.Promoted = static_cast<unsigned>(Num(C, "promoted"));
    Res.CPR.Demoted = static_cast<unsigned>(Num(C, "demoted"));
    Res.CPR.LookaheadsInserted =
        static_cast<unsigned>(Num(C, "lookaheads_inserted"));
    Res.CPR.OpsMovedOffTrace =
        static_cast<unsigned>(Num(C, "ops_moved_off_trace"));
    Res.CPR.OpsSplit = static_cast<unsigned>(Num(C, "ops_split"));
    Res.CPR.DCE.OpsRemoved = static_cast<unsigned>(Num(C, "dce_ops_removed"));
    Res.CPR.DCE.DestsRemoved =
        static_cast<unsigned>(Num(C, "dce_dests_removed"));
    Res.CPR.BlocksRolledBack =
        static_cast<unsigned>(Num(C, "blocks_rolled_back"));
    Res.CPR.RegionsRolledBack =
        static_cast<unsigned>(Num(C, "regions_rolled_back"));
    Res.CPR.RegionsSkippedBudget =
        static_cast<unsigned>(Num(C, "regions_skipped_budget"));
    Res.CPR.BudgetExhausted = Flag(C, "budget_exhausted");
  }
  const JSONValue *Cache = V.find("cache");
  if (Cache && Cache->isObject()) {
    Res.CacheHits = static_cast<uint64_t>(Num(Cache, "hits"));
    Res.CacheMisses = static_cast<uint64_t>(Num(Cache, "misses"));
  }
  const JSONValue *Diags = V.find("diagnostics");
  if (Diags && Diags->isArray()) {
    for (const JSONValue &D : Diags->items()) {
      if (!D.isObject())
        continue;
      WireDiagnostic W;
      auto DS = [&](const char *Key) -> std::string {
        const JSONValue *F = D.find(Key);
        return F && F->isString() ? F->getString() : std::string();
      };
      W.Severity = DS("severity");
      W.Code = DS("code");
      W.Message = DS("message");
      W.Site = DS("site");
      Res.Diagnostics.push_back(std::move(W));
    }
  }
  const JSONValue *Extra = V.find("extra");
  if (Extra && Extra->isObject())
    for (const auto &M : Extra->members())
      if (M.second.isNumber())
        Res.Extra.emplace_back(M.first, M.second.getNumber());
  return Res;
}

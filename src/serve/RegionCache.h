//===- serve/RegionCache.h - LRU region memo cache --------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compile service's implementation of cpr::RegionMemoStore: a
/// thread-safe, content-addressed LRU cache of per-region ICBM results
/// with a configurable memory budget.
///
/// Determinism of the hit/miss counters at any thread count comes from
/// *in-flight coalescing*: the first lookup of an uncached key claims it
/// (one miss) and concurrent lookups of the same key block until the
/// claimant commits (they become hits) or abandons (one waiter inherits
/// the claim and the miss). A key that always compiles unclean (never
/// commits) therefore counts one miss per attempt, and a key that commits
/// counts exactly one miss -- regardless of scheduling. Eviction is
/// triggered only by commit, so eviction counts are deterministic for any
/// serial request sequence; under concurrency they stay deterministic as
/// long as the budget does not force still-live keys out mid-run (the
/// regression tests pin both regimes).
///
/// Entries are stored and returned by value: a returned entry is the
/// caller's copy, never invalidated by eviction.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_REGIONCACHE_H
#define SERVE_REGIONCACHE_H

#include "cpr/RegionMemo.h"

#include <condition_variable>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace cpr {
namespace serve {

/// Counter snapshot for `cpr-stats-v1.3` / the `cache` section of cprd
/// responses.
struct RegionCacheStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t CoalescedWaits = 0; ///< lookups that blocked on a claim (timing-dependent)
  uint64_t Entries = 0;        ///< resident entries
  uint64_t Bytes = 0;          ///< resident approximate bytes
  uint64_t MaxBytes = 0;       ///< configured budget (0 = unlimited)
};

/// Thread-safe LRU RegionMemoStore (see file comment).
class RegionCache : public RegionMemoStore {
public:
  /// \p MaxBytes bounds the resident entries' approximate footprint;
  /// 0 means unlimited.
  explicit RegionCache(size_t MaxBytes = 64u << 20);

  std::optional<RegionMemoEntry> lookup(uint64_t Key) override;
  void commit(uint64_t Key, RegionMemoEntry Entry) override;
  void abandon(uint64_t Key) override;

  RegionCacheStats stats() const;

  /// Drops every resident entry (claims are unaffected). Counters keep
  /// their values; evictions are not counted for a clear().
  void clear();

private:
  struct Node {
    uint64_t Key;
    RegionMemoEntry Entry;
    size_t Bytes;
  };
  /// Resolution state of one in-flight claim, shared with its waiters.
  struct Claim {
    bool Done = false;
    bool Committed = false;
    RegionMemoEntry Entry; ///< valid when Committed
  };

  /// Inserts under the lock and evicts from the LRU tail past the budget.
  void insertLocked(uint64_t Key, RegionMemoEntry Entry);

  mutable std::mutex Mu;
  std::condition_variable CV;
  std::list<Node> LRU; ///< front = most recently used
  std::unordered_map<uint64_t, std::list<Node>::iterator> Map;
  std::unordered_map<uint64_t, std::shared_ptr<Claim>> Claims;
  size_t MaxBytes;
  size_t TotalBytes = 0;
  uint64_t NHits = 0, NMisses = 0, NEvictions = 0, NCoalesced = 0;
};

} // namespace serve
} // namespace cpr

#endif // SERVE_REGIONCACHE_H

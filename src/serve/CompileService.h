//===- serve/CompileService.h - One compile request, isolated ---*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent core of the cprd daemon: compile() turns one
/// decoded cprd-v1 request into one response, with
///
///  - per-request *failure isolation*: the request runs under a
///    ScopedFatalErrorTrap and the fail-safe pipeline (FailSafe=true), so
///    a malformed program, a non-halting profile run, or an internal
///    fault produces an error response with diagnostics -- never a dead
///    daemon, and never cross-request contamination (every request gets
///    its own DiagnosticEngine and BudgetTrackers);
///
///  - per-request *admission control* via support/Budget.h: the payload
///    size, interpreter step cap and transform budget are clamped to the
///    service ceilings before any work starts, so one hostile request
///    cannot monopolize a worker;
///
///  - *content-addressed memoization*: all requests share one
///    RegionCache; the per-request salt (requestFingerprint) covers the
///    program text, inputs, options and resolved budgets, so equal
///    regions of equal requests replay byte-identically.
///
/// compile() is thread-safe: the server calls it concurrently from its
/// ThreadPool workers. See docs/SERVICE.md.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_COMPILESERVICE_H
#define SERVE_COMPILESERVICE_H

#include "serve/Protocol.h"
#include "serve/RegionCache.h"

#include <atomic>

namespace cpr {
namespace serve {

/// Service-level knobs (the daemon's command line maps onto these).
struct ServiceOptions {
  /// Region cache memory budget in bytes; 0 = unlimited.
  size_t CacheBytes = 64u << 20;
  /// Interpreter step cap applied when a request does not set one.
  uint64_t DefaultInterpMaxSteps = 2000000;
  /// Admission ceiling on the per-request interpreter step cap
  /// (requests asking for more are clamped); 0 = no ceiling.
  uint64_t MaxInterpSteps = 20000000;
  /// Transform budget applied when a request does not set one.
  /// Zero-initialized = unlimited.
  Budget DefaultTransformBudget;
  /// Admission ceiling on the per-request transform step budget; 0 = no
  /// ceiling. (An unlimited request budget stays unlimited only when
  /// this is 0.)
  uint64_t MaxTransformSteps = 0;
  /// Admission cap on the request IR payload; 0 = no cap.
  size_t MaxIRBytes = 4u << 20;
};

/// The request fingerprint used as the region-memo salt: a stable hash
/// over the protocol version, the program text (including its input
/// directives), every CPR/pipeline option, and the *resolved* budgets
/// (after service defaults and admission clamps). Exposed for tests.
std::string requestFingerprint(const CompileRequest &Req,
                               uint64_t InterpMaxSteps,
                               const Budget &TransformBudget);

/// Transport-independent compile service; one instance per daemon.
class CompileService {
public:
  explicit CompileService(ServiceOptions Opts = ServiceOptions());

  /// Handles one request (Compile, Ping or Stats). Thread-safe.
  ///
  /// The request's relative deadline (Req.DeadlineMs) is anchored to the
  /// steady clock *here* -- queueing time before the call does not count.
  /// \p Cancel, when non-null, is the caller's cooperative cancellation
  /// flag (the server sets it when the requesting connection dies);
  /// expiry and cancellation degrade through the fail-safe pipeline like
  /// budget exhaustion (DiagCode::DeadlineExceeded / DiagCode::Cancelled).
  CompileResponse compile(const CompileRequest &Req,
                          const std::atomic<bool> *Cancel = nullptr);

  /// Shared region-cache counters (for `cmd:"stats"` and the bench).
  RegionCacheStats cacheStats() const { return Cache.stats(); }

  const ServiceOptions &options() const { return Opts; }

private:
  CompileResponse compileLocked(const CompileRequest &Req,
                                DiagnosticEngine &Diags,
                                const std::atomic<bool> *Cancel);

  ServiceOptions Opts;
  RegionCache Cache;
};

} // namespace serve
} // namespace cpr

#endif // SERVE_COMPILESERVICE_H

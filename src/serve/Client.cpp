//===- serve/Client.cpp - cprd-v1 client -----------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Client.h"

#include "support/Deadline.h"
#include "support/RNG.h"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <thread>
#include <unistd.h>

using namespace cpr;
using namespace cpr::serve;

namespace {

Diagnostic ioError(std::string Msg) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = DiagCode::IOError;
  D.Message = std::move(Msg);
  D.Site = "cprd.client";
  return D;
}

} // namespace

Client::Client(int FD) : FD(FD), Reader(std::make_unique<LineReader>(FD)) {}

Client::Client(Client &&O) noexcept
    : FD(O.FD), Reader(std::move(O.Reader)) {
  O.FD = -1;
}

Client &Client::operator=(Client &&O) noexcept {
  if (this != &O) {
    if (FD >= 0)
      ::close(FD);
    FD = O.FD;
    Reader = std::move(O.Reader);
    O.FD = -1;
  }
  return *this;
}

Client::~Client() {
  if (FD >= 0)
    ::close(FD);
}

Expected<Client> Client::connect(const std::string &SocketPath) {
  int FD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (FD < 0)
    return ioError(std::string("socket: ") + std::strerror(errno));
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (SocketPath.size() >= sizeof(Addr.sun_path)) {
    ::close(FD);
    return ioError("socket path too long: " + SocketPath);
  }
  std::memcpy(Addr.sun_path, SocketPath.c_str(), SocketPath.size() + 1);
  if (::connect(FD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0) {
    int E = errno;
    ::close(FD);
    return ioError("connect " + SocketPath + ": " + std::strerror(E));
  }
  return Client(FD);
}

Expected<CompileResponse> Client::roundTrip(const CompileRequest &Req) {
  if (FD < 0)
    return ioError("client is not connected");
  if (!writeAll(FD, encodeRequest(Req) + "\n"))
    return ioError("send failed (daemon gone?)");
  std::string Line;
  for (;;) {
    if (!Reader->readLine(Line)) {
      if (!Reader->error().empty())
        return ioError("receive failed: " + Reader->error());
      return ioError("connection closed before a response arrived");
    }
    Expected<CompileResponse> Res = decodeResponse(Line);
    if (!Res)
      return Res;
    // Responses correlate by id; skip frames for other requests (a
    // pipelined peer sharing the connection).
    if (Res->Id == Req.Id)
      return Res;
  }
}

Expected<CompileResponse>
Client::callWithRetry(const std::string &SocketPath,
                      const CompileRequest &Req, const RetryPolicy &Policy) {
  Deadline DL = Policy.DeadlineMs > 0.0 ? Deadline::afterMs(Policy.DeadlineMs)
                                        : Deadline::never();
  RNG Jitter(Policy.JitterSeed);
  double BackoffMs = Policy.InitialBackoffMs;
  Expected<CompileResponse> Last = ioError("no attempt was made");

  for (unsigned Attempt = 0;; ++Attempt) {
    // Fresh connection per attempt: after an IO error the old framing
    // state cannot be trusted, and `busy` connections are cheap here
    // (Unix-domain, no handshake).
    Expected<Client> C = Client::connect(SocketPath);
    if (C) {
      Expected<CompileResponse> Res = C->roundTrip(Req);
      if (Res && Res->Status != "busy")
        return Res; // ok / error / pong / stats -- all terminal
      Last = std::move(Res);
    } else {
      Last = C.takeDiagnostic();
    }

    if (Attempt >= Policy.MaxRetries)
      return Last;

    // Exponential backoff with deterministic jitter in [0.5, 1.0]; the
    // daemon's retry_after_ms hint floors the sleep so clients never
    // come back earlier than the shed policy asked them to.
    double SleepMs = BackoffMs * (0.5 + 0.5 * Jitter.nextDouble());
    if (Last.ok())
      for (const auto &KV : Last->Extra)
        if (KV.first == "retry_after_ms" && KV.second > SleepMs)
          SleepMs = KV.second;
    if (DL.active() && DL.remainingMs() <= SleepMs)
      return Last; // sleeping would blow the deadline: give up now
    std::this_thread::sleep_for(
        std::chrono::duration<double, std::milli>(SleepMs));
    BackoffMs = BackoffMs * 2.0 > Policy.MaxBackoffMs ? Policy.MaxBackoffMs
                                                      : BackoffMs * 2.0;
  }
}

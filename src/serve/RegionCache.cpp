//===- serve/RegionCache.cpp - LRU region memo cache -----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/RegionCache.h"

#include "support/FaultInjector.h"

#include <cassert>

using namespace cpr;
using namespace cpr::serve;

RegionCache::RegionCache(size_t MaxBytes) : MaxBytes(MaxBytes) {}

std::optional<RegionMemoEntry> RegionCache::lookup(uint64_t Key) {
  std::unique_lock<std::mutex> Lock(Mu);
  for (;;) {
    auto It = Map.find(Key);
    if (It != Map.end()) {
      LRU.splice(LRU.begin(), LRU, It->second);
      ++NHits;
      return It->second->Entry;
    }
    auto CIt = Claims.find(Key);
    if (CIt == Claims.end()) {
      Claims.emplace(Key, std::make_shared<Claim>());
      ++NMisses;
      return std::nullopt;
    }
    // Coalesce: wait for the claimant instead of compiling the same
    // region twice. shared_ptr keeps the claim alive past its erasure.
    std::shared_ptr<Claim> C = CIt->second;
    ++NCoalesced;
    CV.wait(Lock, [&] { return C->Done; });
    if (C->Committed) {
      ++NHits;
      return C->Entry;
    }
    // Abandoned: loop -- the first waiter through takes over the claim.
  }
}

void RegionCache::commit(uint64_t Key, RegionMemoEntry Entry) {
  // Injected insert failure (docs/ROBUSTNESS.md site catalog): the clean
  // entry is dropped as if the commit never happened. Waiters inherit
  // the claim and recompute -- correctness must not depend on an insert
  // ever succeeding.
  if (fault::shouldFail("serve.cache.insert")) {
    abandon(Key);
    return;
  }
  std::lock_guard<std::mutex> Lock(Mu);
  auto CIt = Claims.find(Key);
  assert(CIt != Claims.end() && "commit without a lookup miss");
  if (CIt != Claims.end()) {
    CIt->second->Entry = Entry;
    CIt->second->Committed = true;
    CIt->second->Done = true;
    Claims.erase(CIt);
  }
  insertLocked(Key, std::move(Entry));
  CV.notify_all();
}

void RegionCache::abandon(uint64_t Key) {
  std::lock_guard<std::mutex> Lock(Mu);
  auto CIt = Claims.find(Key);
  assert(CIt != Claims.end() && "abandon without a lookup miss");
  if (CIt != Claims.end()) {
    CIt->second->Done = true;
    Claims.erase(CIt);
  }
  CV.notify_all();
}

void RegionCache::insertLocked(uint64_t Key, RegionMemoEntry Entry) {
  // A racing commit for the same key cannot happen (the claim serializes
  // producers), but be safe against double insertion anyway.
  if (Map.count(Key))
    return;
  size_t Bytes = Entry.approximateBytes();
  LRU.push_front(Node{Key, std::move(Entry), Bytes});
  Map[Key] = LRU.begin();
  TotalBytes += Bytes;
  // Evict strictly past the budget, oldest first. An entry larger than
  // the whole budget evicts immediately (waiters already hold copies via
  // the claim), keeping TotalBytes <= MaxBytes invariant.
  while (MaxBytes != 0 && TotalBytes > MaxBytes && !LRU.empty()) {
    Node &Victim = LRU.back();
    TotalBytes -= Victim.Bytes;
    Map.erase(Victim.Key);
    LRU.pop_back();
    ++NEvictions;
  }
}

RegionCacheStats RegionCache::stats() const {
  std::lock_guard<std::mutex> Lock(Mu);
  RegionCacheStats S;
  S.Hits = NHits;
  S.Misses = NMisses;
  S.Evictions = NEvictions;
  S.CoalescedWaits = NCoalesced;
  S.Entries = Map.size();
  S.Bytes = TotalBytes;
  S.MaxBytes = MaxBytes;
  return S;
}

void RegionCache::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  LRU.clear();
  Map.clear();
  TotalBytes = 0;
}

//===- serve/Server.h - The cprd daemon's transport loop --------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cprd daemon: accepts cprd-v1 frames over a Unix-domain stream
/// socket or over the stdin/stdout pipe, dispatches each request to a
/// shared ThreadPool, and writes one response frame per request
/// (responses correlate by "id", not by order).
///
/// Concurrency model: one reader thread per connection decodes frames and
/// submits compile tasks; the tasks write their own responses under a
/// per-connection write mutex. Admission control caps the number of
/// requests queued-or-running (MaxQueue) and the number in flight per
/// connection (MaxPipeline); excess requests are refused immediately with
/// status "busy" carrying a `retry_after_ms` hint derived from queue
/// depth, rather than queued without bound.
///
/// Connection hygiene (docs/SERVICE.md "Resilience"): read descriptors
/// are non-blocking and poll()-driven, so a connection that stops sending
/// mid-frame trips the idle timeout instead of parking a reader thread
/// forever; the frame cap is enforced *while reading* (a slowloris or
/// oversized frame costs O(cap) memory, never O(input)); a write timeout
/// (SO_SNDTIMEO) bounds slow readers. A failed response write marks the
/// connection gone -- its remaining in-flight compiles are cancelled
/// cooperatively (CompileService observes the flag through the budget
/// machinery) and `connections_dropped` counts it in `stats`.
///
/// Graceful shutdown (the SIGTERM path): requestStop() is safe to call
/// from a signal handler. The server then stops accepting connections,
/// stops reading new frames, and drains -- ThreadPool::stop() lets every
/// queued compile finish and write its response before the descriptors
/// close. In-flight work is never dropped.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_SERVER_H
#define SERVE_SERVER_H

#include "serve/CompileService.h"
#include "support/Framing.h"

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cpr {
class ThreadPool;

namespace serve {

/// Daemon-level knobs (cprd's command line maps onto these).
struct ServerOptions {
  /// Unix-domain socket path for runSocket(); a stale socket file at the
  /// path is replaced.
  std::string SocketPath;
  /// Worker threads compiling concurrently; 0 = one per hardware thread.
  unsigned Threads = 0;
  /// Admission cap: requests queued-or-running before new ones are
  /// refused with status "busy". 0 = unbounded.
  size_t MaxQueue = 256;
  /// Per-connection cap on pipelined in-flight requests; excess frames
  /// are refused with "busy" (a flooding client cannot monopolize the
  /// queue). 0 = unbounded.
  size_t MaxPipeline = 0;
  /// Drop a connection when no complete frame arrives for this long
  /// (covers both idle connections and slowloris half-frames). 0 = never.
  double IdleTimeoutMs = 0.0;
  /// SO_SNDTIMEO on accepted sockets: a response write blocked this long
  /// by a slow reader fails and drops the connection. 0 = never.
  double WriteTimeoutMs = 0.0;
  /// Per-frame byte cap, enforced while reading.
  size_t MaxFrameBytes = LineReader::DefaultMaxLineBytes;
  ServiceOptions Service;
};

/// Monotonic counters the server adds to `cmd:"stats"` responses.
struct ServerStats {
  uint64_t Accepted = 0;  ///< requests dispatched to the pool
  uint64_t Shed = 0;      ///< busy refusals (capacity, pipeline, stop)
  uint64_t Dropped = 0;   ///< connections lost mid-response or timed out
  size_t QueueDepth = 0;  ///< dispatched but not yet running
  size_t InFlight = 0;    ///< running right now
};

/// One daemon instance. Construct, then call exactly one of runStdio()
/// or runSocket(); both return an exit_codes value when the serve loop
/// ends (EOF / requestStop()).
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Serves frames from stdin, responses to stdout, until EOF or
  /// requestStop(); drains before returning.
  int runStdio();

  /// Binds SocketPath and serves connections until requestStop();
  /// drains, closes and unlinks the socket before returning.
  int runSocket();

  /// Initiates graceful shutdown. Async-signal-safe (an atomic store):
  /// call it from the SIGTERM/SIGINT handler.
  void requestStop() { StopFlag.store(true); }

  bool stopRequested() const { return StopFlag.load(); }

  /// The shared compile service (cache counters for tests/tools).
  CompileService &service() { return Service; }

  /// Snapshot of the server-level counters (also shipped in `stats`).
  ServerStats stats() const;

private:
  struct Connection;

  /// Reads frames from \p ReadFD until EOF, error, idle timeout, or
  /// stop; dispatches each via handleLine.
  void serveConnection(const std::shared_ptr<Connection> &Conn, int ReadFD);
  void handleLine(const std::shared_ptr<Connection> &Conn, std::string Line);

  /// Encodes, counts and writes one response. A failed write marks the
  /// connection gone (dropping it exactly once in the counters/log).
  void writeResponse(const std::shared_ptr<Connection> &Conn,
                     const CompileResponse &Res);
  /// Marks \p Conn dead; first caller wins the Dropped count and the
  /// stderr log line.
  void dropConnection(const std::shared_ptr<Connection> &Conn,
                      const char *Why);
  /// "busy" + retry_after_ms derived from the current queue depth.
  CompileResponse shedResponse(std::string Id, std::string Why);
  /// Appends queue/shed/drop and per-status/per-code counters to a
  /// `stats` response.
  void augmentStats(CompileResponse &Res);

  ServerOptions Opts;
  CompileService Service;
  std::unique_ptr<ThreadPool> Pool;
  std::atomic<bool> StopFlag{false};
  std::atomic<size_t> Pending{0}; ///< dispatched: queued or running
  std::atomic<size_t> Running{0}; ///< actually executing
  std::atomic<uint64_t> Accepted{0};
  std::atomic<uint64_t> Shed{0};
  std::atomic<uint64_t> Dropped{0};
  /// Response counters keyed "responses/<status>" and "diag/<code>".
  mutable std::mutex CountMu;
  std::map<std::string, uint64_t> ResponseCounts;
};

} // namespace serve
} // namespace cpr

#endif // SERVE_SERVER_H

//===- serve/Server.h - The cprd daemon's transport loop --------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cprd daemon: accepts cprd-v1 frames over a Unix-domain stream
/// socket or over the stdin/stdout pipe, dispatches each request to a
/// shared ThreadPool, and writes one response frame per request
/// (responses correlate by "id", not by order).
///
/// Concurrency model: one reader thread per connection decodes frames and
/// submits compile tasks; the tasks write their own responses under a
/// per-connection write mutex. Admission control caps the number of
/// requests queued-or-running (MaxQueue); excess requests are refused
/// immediately with status "busy" rather than queued without bound.
///
/// Graceful shutdown (the SIGTERM path): requestStop() is safe to call
/// from a signal handler. The server then stops accepting connections,
/// stops reading new frames, and drains -- ThreadPool::stop() lets every
/// queued compile finish and write its response before the descriptors
/// close. In-flight work is never dropped.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_SERVER_H
#define SERVE_SERVER_H

#include "serve/CompileService.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace cpr {
class ThreadPool;

namespace serve {

/// Daemon-level knobs (cprd's command line maps onto these).
struct ServerOptions {
  /// Unix-domain socket path for runSocket(); a stale socket file at the
  /// path is replaced.
  std::string SocketPath;
  /// Worker threads compiling concurrently; 0 = one per hardware thread.
  unsigned Threads = 0;
  /// Admission cap: requests queued-or-running before new ones are
  /// refused with status "busy". 0 = unbounded.
  size_t MaxQueue = 256;
  ServiceOptions Service;
};

/// One daemon instance. Construct, then call exactly one of runStdio()
/// or runSocket(); both return an exit_codes value when the serve loop
/// ends (EOF / requestStop()).
class Server {
public:
  explicit Server(ServerOptions Opts);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Serves frames from stdin, responses to stdout, until EOF or
  /// requestStop(); drains before returning.
  int runStdio();

  /// Binds SocketPath and serves connections until requestStop();
  /// drains, closes and unlinks the socket before returning.
  int runSocket();

  /// Initiates graceful shutdown. Async-signal-safe (an atomic store):
  /// call it from the SIGTERM/SIGINT handler.
  void requestStop() { StopFlag.store(true); }

  bool stopRequested() const { return StopFlag.load(); }

  /// The shared compile service (cache counters for tests/tools).
  CompileService &service() { return Service; }

private:
  struct Connection;

  /// Reads frames from \p ReadFD until EOF, error, or stop; dispatches
  /// each via handleLine.
  void serveConnection(const std::shared_ptr<Connection> &Conn, int ReadFD);
  void handleLine(const std::shared_ptr<Connection> &Conn, std::string Line);

  ServerOptions Opts;
  CompileService Service;
  std::unique_ptr<ThreadPool> Pool;
  std::atomic<bool> StopFlag{false};
  std::atomic<size_t> Pending{0};
};

} // namespace serve
} // namespace cpr

#endif // SERVE_SERVER_H

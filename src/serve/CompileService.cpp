//===- serve/CompileService.cpp - One compile request, isolated ------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/CompileService.h"

#include "fuzz/Corpus.h"
#include "ir/Verifier.h"
#include "pipeline/PipelineRun.h"
#include "support/Error.h"
#include "support/Hash.h"

#include <chrono>

using namespace cpr;
using namespace cpr::serve;

namespace {

/// Per-request view of the shared cache: forwards everything, counts this
/// request's hits and misses (the shared counters aggregate across
/// requests and would race).
class CountingMemoStore : public RegionMemoStore {
public:
  explicit CountingMemoStore(RegionMemoStore &Inner) : Inner(Inner) {}

  std::optional<RegionMemoEntry> lookup(uint64_t Key) override {
    std::optional<RegionMemoEntry> R = Inner.lookup(Key);
    if (R)
      ++NHits;
    else
      ++NMisses;
    return R;
  }
  void commit(uint64_t Key, RegionMemoEntry Entry) override {
    Inner.commit(Key, std::move(Entry));
  }
  void abandon(uint64_t Key) override { Inner.abandon(Key); }

  uint64_t hits() const { return NHits; }
  uint64_t misses() const { return NMisses; }

private:
  RegionMemoStore &Inner;
  uint64_t NHits = 0, NMisses = 0;
};

Diagnostic requestError(DiagCode Code, std::string Msg, std::string Site) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = Code;
  D.Message = std::move(Msg);
  D.Site = std::move(Site);
  return D;
}

} // namespace

std::string serve::requestFingerprint(const CompileRequest &Req,
                                      uint64_t InterpMaxSteps,
                                      const Budget &TransformBudget) {
  Hasher H;
  H.str(ProtocolName);
  H.str(Req.IR);
  H.f64(Req.CPR.ExitWeightThreshold);
  H.f64(Req.CPR.PredictTakenThreshold);
  H.u64(Req.CPR.MaxBranchesPerBlock);
  H.u64(Req.CPR.MinBranchesPerBlock);
  H.u64(Req.CPR.EnablePredicateSpeculation ? 1 : 0);
  H.u64(Req.CPR.EnableTakenVariation ? 1 : 0);
  H.u64(Req.UnrollFactor);
  H.u64(Req.Lint ? 1 : 0);
  H.u64(Req.RegionEquivalence ? 1 : 0);
  H.u64(InterpMaxSteps);
  H.u64(TransformBudget.MaxSteps);
  H.f64(TransformBudget.MaxWallMs);
  return H.hex();
}

CompileService::CompileService(ServiceOptions Opts)
    : Opts(Opts), Cache(Opts.CacheBytes) {}

CompileResponse CompileService::compile(const CompileRequest &Req,
                                        const std::atomic<bool> *Cancel) {
  auto T0 = std::chrono::steady_clock::now();

  CompileResponse Res;
  Res.Id = Req.Id;
  if (Req.Kind == RequestKind::Ping) {
    Res.Status = "pong";
    return Res;
  }
  if (Req.Kind == RequestKind::Stats) {
    RegionCacheStats S = Cache.stats();
    Res.Status = "stats";
    Res.Extra.emplace_back("cache_hits", static_cast<double>(S.Hits));
    Res.Extra.emplace_back("cache_misses", static_cast<double>(S.Misses));
    Res.Extra.emplace_back("cache_evictions",
                           static_cast<double>(S.Evictions));
    Res.Extra.emplace_back("cache_entries", static_cast<double>(S.Entries));
    Res.Extra.emplace_back("cache_bytes", static_cast<double>(S.Bytes));
    Res.Extra.emplace_back("cache_max_bytes",
                           static_cast<double>(S.MaxBytes));
    return Res;
  }

  // Admission: bound the payload before any parsing work.
  if (Opts.MaxIRBytes != 0 && Req.IR.size() > Opts.MaxIRBytes) {
    Res = errorResponse(
        Req.Id,
        requestError(DiagCode::BudgetExhausted,
                     "request rejected: ir payload (" +
                         std::to_string(Req.IR.size()) + " bytes) exceeds " +
                         std::to_string(Opts.MaxIRBytes) + " byte cap",
                     "cprd.admission"));
    return Res;
  }

  // Failure isolation: everything below runs trapped -- an internal
  // fatal error becomes an error response, not a dead worker.
  DiagnosticEngine Diags;
  try {
    ScopedFatalErrorTrap Trap;
    Res = compileLocked(Req, Diags, Cancel);
  } catch (const FatalError &E) {
    Res = errorResponse(Req.Id,
                        requestError(DiagCode::Internal,
                                     std::string("internal fault: ") +
                                         E.message(),
                                     "cprd.request"));
  }

  // Attach every diagnostic the request produced (rollback remarks,
  // budget warnings, lint findings, ...), after any error placed by the
  // handlers above.
  for (const Diagnostic &D : Diags.diagnostics())
    Res.Diagnostics.push_back(toWire(D));
  Res.WallMs = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - T0)
                   .count();
  return Res;
}

CompileResponse CompileService::compileLocked(const CompileRequest &Req,
                                              DiagnosticEngine &Diags,
                                              const std::atomic<bool> *Cancel) {
  // Anchor the request's relative deadline to this host's steady clock.
  // It deliberately does NOT enter the fingerprint: the deadline is
  // wall-clock-dependent, and a deadline-truncated compile diverges in
  // its downstream per-region keys anyway (the memo key hashes the
  // evolving function text and allocator state), so equal-fingerprint
  // replays stay sound.
  Deadline DL = Req.DeadlineMs > 0.0 ? Deadline::afterMs(Req.DeadlineMs)
                                     : Deadline::never();
  // Parse the fuzz-program payload (IR + input directives).
  FuzzParseResult FP = parseFuzzProgram(Req.IR);
  if (!FP)
    return errorResponse(Req.Id,
                         requestError(DiagCode::ParseError, FP.Error,
                                      "cprd.request.ir"));
  std::vector<std::string> Violations = verifyFunction(*FP.Program.Func);
  if (!Violations.empty()) {
    std::string Msg = "request IR failed verification: " + Violations.front();
    if (Violations.size() > 1)
      Msg += " (+" + std::to_string(Violations.size() - 1) + " more)";
    return errorResponse(Req.Id, requestError(DiagCode::VerifyFailed,
                                              std::move(Msg),
                                              "cprd.request.ir"));
  }

  // Admission: resolve the request budgets against the service defaults
  // and ceilings. The resolved values feed the fingerprint -- two
  // requests clamped to the same effective budgets share cache entries.
  uint64_t InterpSteps = Req.InterpMaxSteps != 0 ? Req.InterpMaxSteps
                                                 : Opts.DefaultInterpMaxSteps;
  if (Opts.MaxInterpSteps != 0 &&
      (InterpSteps == 0 || InterpSteps > Opts.MaxInterpSteps))
    InterpSteps = Opts.MaxInterpSteps;
  Budget TB = Req.TransformBudget.unlimited() ? Opts.DefaultTransformBudget
                                              : Req.TransformBudget;
  if (Opts.MaxTransformSteps != 0 &&
      (TB.MaxSteps == 0 || TB.MaxSteps > Opts.MaxTransformSteps))
    TB.MaxSteps = Opts.MaxTransformSteps;

  PipelineOptions PO;
  PO.CPR = Req.CPR;
  PO.UnrollFactor = Req.UnrollFactor;
  PO.Machines.clear(); // the service transforms; it does not estimate
  PO.CheckEquivalence = false;
  PO.Simulate = false;
  PO.FailSafe = true;
  PO.Lint = Req.Lint;
  PO.RegionEquivalence = Req.RegionEquivalence;
  PO.InterpMaxSteps = InterpSteps;
  PO.TransformBudget = TB;
  PO.RequestDeadline = DL;
  PO.CancelFlag = Cancel;
  PO.Diags = &Diags;

  CountingMemoStore Counting(Cache);
  PO.Memo = &Counting;
  PO.MemoSalt = requestFingerprint(Req, InterpSteps, TB);

  // Keep the inputs: the response echoes them so it is itself a runnable
  // corpus entry.
  std::vector<RegBinding> InitRegs = FP.Program.InitRegs;
  Memory InitMem = FP.Program.InitMem;
  std::string Description = FP.Program.Description;

  PipelineRun Run(std::move(FP.Program), PO);
  if (Status S = Run.tryPrepare(); !S) {
    Diagnostic D = S.takeDiagnostic();
    Diags.report(D);
    CompileResponse Res;
    Res.Id = Req.Id;
    Res.Status = "error";
    return Res; // the engine snapshot carries the details
  }

  CompileResponse Res;
  Res.Id = Req.Id;
  Res.Status = "ok";
  KernelProgram Out;
  Out.Func = Run.treated().clone();
  Out.InitRegs = std::move(InitRegs);
  Out.InitMem = std::move(InitMem);
  Out.Description = std::move(Description);
  Res.IR = serializeFuzzProgram(Out);
  Res.CPR = Run.cprResult();
  Res.FellBack = Run.fellBack();
  Res.CacheHits = Counting.hits();
  Res.CacheMisses = Counting.misses();
  return Res;
}

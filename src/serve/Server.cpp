//===- serve/Server.cpp - The cprd daemon's transport loop -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "support/Framing.h"
#include "support/ThreadPool.h"

#include <cstring>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cpr;
using namespace cpr::serve;

/// One client connection: the descriptor plus the write lock that keeps
/// concurrently finishing tasks from interleaving their frames. Tasks
/// hold the Connection via shared_ptr, so the descriptor stays open until
/// the last response is written.
struct Server::Connection {
  int FD;
  bool OwnsFD;
  std::mutex WriteMu;

  Connection(int FD, bool OwnsFD) : FD(FD), OwnsFD(OwnsFD) {}
  ~Connection() {
    if (OwnsFD && FD >= 0)
      ::close(FD);
  }

  bool writeLine(const std::string &Frame) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    return writeAll(FD, Frame + "\n");
  }
};

Server::Server(ServerOptions Opts)
    : Opts(std::move(Opts)), Service(this->Opts.Service) {}

Server::~Server() = default;

namespace {

CompileResponse busyResponse(std::string Id, std::string Why) {
  CompileResponse Res;
  Res.Id = std::move(Id);
  Res.Status = "busy";
  WireDiagnostic W;
  W.Severity = "warning";
  W.Code = diagCodeName(DiagCode::BudgetExhausted);
  W.Message = std::move(Why);
  W.Site = "cprd.admission";
  Res.Diagnostics.push_back(std::move(W));
  return Res;
}

/// Waits until \p FD is readable, polling \p Stop every 200 ms. Returns
/// false when stopped or on a poll error.
bool waitReadable(int FD, const std::atomic<bool> &Stop) {
  for (;;) {
    if (Stop.load())
      return false;
    pollfd P;
    P.fd = FD;
    P.events = POLLIN;
    P.revents = 0;
    int R = ::poll(&P, 1, 200);
    if (R > 0)
      return true;
    if (R < 0 && errno != EINTR)
      return false;
  }
}

} // namespace

void Server::handleLine(const std::shared_ptr<Connection> &Conn,
                        std::string Line) {
  // Tolerate blank lines between frames (e.g. hand-typed stdio input).
  if (Line.find_first_not_of(" \t\r") == std::string::npos)
    return;
  Expected<CompileRequest> Req = decodeRequest(Line);
  if (!Req) {
    // Malformed frame: a clean protocol-level error response with no id
    // to correlate -- the client sees exactly what was wrong.
    Conn->writeLine(encodeResponse(errorResponse("", Req.diagnostic())));
    return;
  }
  if (StopFlag.load()) {
    Conn->writeLine(encodeResponse(
        busyResponse(Req->Id, "server is shutting down")));
    return;
  }
  if (Opts.MaxQueue != 0 && Pending.load() >= Opts.MaxQueue) {
    Conn->writeLine(encodeResponse(busyResponse(
        Req->Id, "server at capacity (" + std::to_string(Opts.MaxQueue) +
                     " requests queued or running)")));
    return;
  }
  ++Pending;
  Pool->submit([this, Conn, R = Req.takeValue()] {
    // compile() already traps per-request faults; the belt-and-braces
    // catch keeps an unexpected exception from leaking Pending or the
    // response.
    CompileResponse Res;
    try {
      Res = Service.compile(R);
    } catch (const std::exception &E) {
      Diagnostic D;
      D.Severity = DiagSeverity::Error;
      D.Code = DiagCode::Internal;
      D.Message = std::string("unhandled exception: ") + E.what();
      D.Site = "cprd.request";
      Res = errorResponse(R.Id, D);
    }
    Conn->writeLine(encodeResponse(Res));
    --Pending;
  });
}

void Server::serveConnection(const std::shared_ptr<Connection> &Conn,
                             int ReadFD) {
  LineReader Reader(ReadFD);
  std::string Line;
  for (;;) {
    if (!Reader.hasBuffered() && !waitReadable(ReadFD, StopFlag))
      break;
    if (!Reader.readLine(Line))
      break;
    handleLine(Conn, std::move(Line));
  }
  if (!Reader.error().empty()) {
    Diagnostic D;
    D.Severity = DiagSeverity::Error;
    D.Code = DiagCode::ParseError;
    D.Message = "frame rejected: " + Reader.error();
    D.Site = "cprd.frame";
    Conn->writeLine(encodeResponse(errorResponse("", D)));
  }
}

int Server::runStdio() {
  Pool = std::make_unique<ThreadPool>(Opts.Threads);
  auto Conn = std::make_shared<Connection>(STDOUT_FILENO, /*OwnsFD=*/false);
  serveConnection(Conn, STDIN_FILENO);
  // EOF or stop: drain every queued request; each writes its response.
  Pool->stop();
  return exit_codes::Success;
}

int Server::runSocket() {
  int ListenFD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFD < 0)
    return exit_codes::Failure;
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    ::close(ListenFD);
    return exit_codes::UsageError;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);
  ::unlink(Opts.SocketPath.c_str()); // replace a stale socket file
  if (::bind(ListenFD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFD, 64) < 0) {
    ::close(ListenFD);
    return exit_codes::Failure;
  }

  Pool = std::make_unique<ThreadPool>(Opts.Threads);
  std::vector<std::thread> Readers;
  std::mutex ConnMu;
  std::vector<std::weak_ptr<Connection>> Conns;

  while (!StopFlag.load()) {
    if (!waitReadable(ListenFD, StopFlag))
      break;
    int CFd = ::accept(ListenFD, nullptr, nullptr);
    if (CFd < 0)
      continue;
    auto Conn = std::make_shared<Connection>(CFd, /*OwnsFD=*/true);
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      Conns.push_back(Conn);
    }
    Readers.emplace_back(
        [this, Conn, CFd] { serveConnection(Conn, CFd); });
  }

  // Graceful drain: no new connections, no new frames (SHUT_RD wakes the
  // readers with EOF), then let every queued compile finish and write its
  // response before the descriptors close.
  ::close(ListenFD);
  ::unlink(Opts.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const std::weak_ptr<Connection> &W : Conns)
      if (std::shared_ptr<Connection> C = W.lock())
        ::shutdown(C->FD, SHUT_RD);
  }
  for (std::thread &T : Readers)
    T.join();
  Pool->stop();
  return exit_codes::Success;
}

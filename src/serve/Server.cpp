//===- serve/Server.cpp - The cprd daemon's transport loop -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "support/Deadline.h"
#include "support/FaultInjector.h"
#include "support/ThreadPool.h"

#include <cstdio>
#include <cstring>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

using namespace cpr;
using namespace cpr::serve;

/// One client connection: the descriptor plus the write lock that keeps
/// concurrently finishing tasks from interleaving their frames. Tasks
/// hold the Connection via shared_ptr, so the descriptor stays open until
/// the last response is written.
struct Server::Connection {
  int FD;
  bool OwnsFD;
  std::mutex WriteMu;
  /// Set once a response write fails or the connection times out: the
  /// reader stops, further writes are skipped, and in-flight compiles
  /// observe it as their cancel flag (CompileService::compile).
  std::atomic<bool> Gone{false};
  /// Requests dispatched on this connection and not yet answered
  /// (the MaxPipeline admission cap).
  std::atomic<size_t> InFlight{0};

  Connection(int FD, bool OwnsFD) : FD(FD), OwnsFD(OwnsFD) {}
  ~Connection() {
    if (OwnsFD && FD >= 0)
      ::close(FD);
  }

  bool writeLine(const std::string &Frame) {
    std::lock_guard<std::mutex> Lock(WriteMu);
    if (Gone.load(std::memory_order_relaxed))
      return false;
    // Injected write failure: behave exactly as if the peer vanished
    // (EPIPE) -- the frame is dropped and the connection is torn down
    // through the same dropConnection path.
    if (fault::shouldFail("serve.socket.write"))
      return false;
    return writeAll(FD, Frame + "\n");
  }
};

Server::Server(ServerOptions Opts)
    : Opts(std::move(Opts)), Service(this->Opts.Service) {}

Server::~Server() = default;

namespace {

/// Waits until \p FD is readable, polling \p Stop (and \p Gone when
/// non-null) every slice. Returns false when stopped, gone, on a poll
/// error, or -- with an active deadline -- once \p Idle expires.
bool waitReadable(int FD, const std::atomic<bool> &Stop,
                  const std::atomic<bool> *Gone, const Deadline &Idle,
                  bool &TimedOut) {
  for (;;) {
    if (Stop.load() || (Gone && Gone->load()))
      return false;
    int Slice = 200;
    if (Idle.active()) {
      double Rem = Idle.remainingMs();
      if (Rem <= 0.0) {
        TimedOut = true;
        return false;
      }
      if (Rem < Slice)
        Slice = static_cast<int>(Rem) + 1;
    }
    pollfd P;
    P.fd = FD;
    P.events = POLLIN;
    P.revents = 0;
    int R = ::poll(&P, 1, Slice);
    if (R > 0)
      return true;
    if (R < 0 && errno != EINTR)
      return false;
  }
}

void setNonBlocking(int FD) {
  int Flags = ::fcntl(FD, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(FD, F_SETFL, Flags | O_NONBLOCK);
}

} // namespace

ServerStats Server::stats() const {
  ServerStats S;
  S.Accepted = Accepted.load();
  S.Shed = Shed.load();
  S.Dropped = Dropped.load();
  size_t P = Pending.load(), R = Running.load();
  S.InFlight = R;
  S.QueueDepth = P > R ? P - R : 0;
  return S;
}

CompileResponse Server::shedResponse(std::string Id, std::string Why) {
  ++Shed;
  CompileResponse Res;
  Res.Id = std::move(Id);
  Res.Status = "busy";
  WireDiagnostic W;
  W.Severity = "warning";
  W.Code = diagCodeName(DiagCode::BudgetExhausted);
  W.Message = std::move(Why);
  W.Site = "cprd.admission";
  Res.Diagnostics.push_back(std::move(W));
  // Backoff hint, linear in how oversubscribed the queue is: an idle
  // daemon says "come right back", a saturated one spreads retries out.
  // Deterministic in the observed depth (no randomness server-side; the
  // client adds its own seeded jitter).
  double Depth = static_cast<double>(Pending.load());
  double Cap = static_cast<double>(Opts.MaxQueue != 0 ? Opts.MaxQueue : 1);
  double Ms = 10.0 + 90.0 * (Depth / Cap);
  Res.Extra.emplace_back("retry_after_ms", Ms > 2000.0 ? 2000.0 : Ms);
  return Res;
}

void Server::dropConnection(const std::shared_ptr<Connection> &Conn,
                            const char *Why) {
  if (Conn->Gone.exchange(true))
    return; // already counted
  ++Dropped;
  std::fprintf(stderr, "cprd: connection dropped (%s), %zu request(s) in flight\n",
               Why, Conn->InFlight.load());
}

void Server::augmentStats(CompileResponse &Res) {
  ServerStats S = stats();
  Res.Extra.emplace_back("queue_depth", static_cast<double>(S.QueueDepth));
  Res.Extra.emplace_back("in_flight", static_cast<double>(S.InFlight));
  Res.Extra.emplace_back("accepted", static_cast<double>(S.Accepted));
  Res.Extra.emplace_back("shed", static_cast<double>(S.Shed));
  Res.Extra.emplace_back("connections_dropped",
                         static_cast<double>(S.Dropped));
  Res.Extra.emplace_back("max_queue", static_cast<double>(Opts.MaxQueue));
  std::lock_guard<std::mutex> Lock(CountMu);
  for (const auto &KV : ResponseCounts)
    Res.Extra.emplace_back(KV.first, static_cast<double>(KV.second));
}

void Server::writeResponse(const std::shared_ptr<Connection> &Conn,
                           const CompileResponse &Res) {
  {
    std::lock_guard<std::mutex> Lock(CountMu);
    ++ResponseCounts["responses/" + Res.Status];
    for (const WireDiagnostic &W : Res.Diagnostics)
      ++ResponseCounts["diag/" + W.Code];
  }
  if (!Conn->writeLine(encodeResponse(Res)))
    dropConnection(Conn, "response write failed");
}

void Server::handleLine(const std::shared_ptr<Connection> &Conn,
                        std::string Line) {
  // Tolerate blank lines between frames (e.g. hand-typed stdio input).
  if (Line.find_first_not_of(" \t\r") == std::string::npos)
    return;
  // Injected decode failure: a well-formed frame is reported exactly like
  // a malformed one -- clients must treat parse errors as per-frame, not
  // connection-fatal.
  if (fault::shouldFail("serve.frame.decode")) {
    Diagnostic D;
    D.Severity = DiagSeverity::Error;
    D.Code = DiagCode::ParseError;
    D.Message = "injected frame-decode fault";
    D.Site = "cprd.frame";
    writeResponse(Conn, errorResponse("", D));
    return;
  }
  Expected<CompileRequest> Req = decodeRequest(Line);
  if (!Req) {
    // Malformed frame: a clean protocol-level error response with no id
    // to correlate -- the client sees exactly what was wrong.
    writeResponse(Conn, errorResponse("", Req.diagnostic()));
    return;
  }
  if (StopFlag.load()) {
    writeResponse(Conn, shedResponse(Req->Id, "server is shutting down"));
    return;
  }
  if (Opts.MaxQueue != 0 && Pending.load() >= Opts.MaxQueue) {
    writeResponse(Conn, shedResponse(
        Req->Id, "server at capacity (" + std::to_string(Opts.MaxQueue) +
                     " requests queued or running)"));
    return;
  }
  if (Opts.MaxPipeline != 0 && Conn->InFlight.load() >= Opts.MaxPipeline) {
    writeResponse(Conn, shedResponse(
        Req->Id, "connection pipeline cap (" +
                     std::to_string(Opts.MaxPipeline) +
                     " requests in flight) reached"));
    return;
  }
  // Injected admission failure: shed a request the queue had room for.
  if (fault::shouldFail("serve.dispatch.enqueue")) {
    writeResponse(Conn, shedResponse(Req->Id, "injected admission fault"));
    return;
  }
  ++Accepted;
  ++Pending;
  ++Conn->InFlight;
  Pool->submit([this, Conn, R = Req.takeValue()] {
    ++Running;
    // compile() already traps per-request faults; the belt-and-braces
    // catch keeps an unexpected exception from leaking Pending or the
    // response.
    CompileResponse Res;
    try {
      // The connection's Gone flag doubles as the request's cancel flag:
      // compiles for a vanished client degrade at the next stage
      // boundary instead of running to completion.
      Res = Service.compile(R, &Conn->Gone);
    } catch (const std::exception &E) {
      Diagnostic D;
      D.Severity = DiagSeverity::Error;
      D.Code = DiagCode::Internal;
      D.Message = std::string("unhandled exception: ") + E.what();
      D.Site = "cprd.request";
      Res = errorResponse(R.Id, D);
    }
    if (R.Kind == RequestKind::Stats)
      augmentStats(Res);
    writeResponse(Conn, Res);
    --Conn->InFlight;
    --Running;
    --Pending;
  });
}

void Server::serveConnection(const std::shared_ptr<Connection> &Conn,
                             int ReadFD) {
  // Non-blocking reads: next() never parks the thread, so the idle
  // deadline is enforced even against a peer that sends half a frame and
  // stalls (the slowloris case).
  setNonBlocking(ReadFD);
  LineReader Reader(ReadFD, Opts.MaxFrameBytes);
  std::string Line;
  auto freshIdle = [this] {
    return Opts.IdleTimeoutMs > 0.0 ? Deadline::afterMs(Opts.IdleTimeoutMs)
                                    : Deadline::never();
  };
  Deadline Idle = freshIdle();
  for (;;) {
    if (StopFlag.load() || Conn->Gone.load())
      return;
    switch (Reader.next(Line)) {
    case LineReader::Result::Frame:
      handleLine(Conn, std::move(Line));
      Idle = freshIdle(); // the clock measures gaps between frames
      continue;
    case LineReader::Result::Eof:
      return;
    case LineReader::Result::Error: {
      // Oversized frame or read failure: one protocol-level error
      // response, then the connection ends (the byte stream is no
      // longer frame-aligned, so parsing cannot resume).
      Diagnostic D;
      D.Severity = DiagSeverity::Error;
      D.Code = DiagCode::ParseError;
      D.Message = "frame rejected: " + Reader.error();
      D.Site = "cprd.frame";
      writeResponse(Conn, errorResponse("", D));
      return;
    }
    case LineReader::Result::NeedMore: {
      bool TimedOut = false;
      if (!waitReadable(ReadFD, StopFlag, &Conn->Gone, Idle, TimedOut)) {
        if (TimedOut && Conn->InFlight.load() != 0) {
          // Not idle abuse: the client is quietly waiting for responses
          // it is owed. Restart the window and keep listening.
          Idle = freshIdle();
          continue;
        }
        if (TimedOut) {
          // Best-effort notice, then tear down: a slowloris never ties
          // up the reader or the buffer past the idle window.
          Diagnostic D;
          D.Severity = DiagSeverity::Error;
          D.Code = DiagCode::DeadlineExceeded;
          D.Message = "connection idle timeout (" +
                      std::to_string(Opts.IdleTimeoutMs) + " ms)";
          D.Site = "cprd.connection";
          writeResponse(Conn, errorResponse("", D));
          dropConnection(Conn, "idle timeout");
        }
        return;
      }
      continue;
    }
    }
  }
}

int Server::runStdio() {
  Pool = std::make_unique<ThreadPool>(Opts.Threads);
  auto Conn = std::make_shared<Connection>(STDOUT_FILENO, /*OwnsFD=*/false);
  serveConnection(Conn, STDIN_FILENO);
  // EOF or stop: drain every queued request; each writes its response.
  Pool->stop();
  return exit_codes::Success;
}

int Server::runSocket() {
  int ListenFD = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFD < 0)
    return exit_codes::Failure;
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Opts.SocketPath.size() >= sizeof(Addr.sun_path)) {
    ::close(ListenFD);
    return exit_codes::UsageError;
  }
  std::memcpy(Addr.sun_path, Opts.SocketPath.c_str(),
              Opts.SocketPath.size() + 1);
  ::unlink(Opts.SocketPath.c_str()); // replace a stale socket file
  if (::bind(ListenFD, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
          0 ||
      ::listen(ListenFD, 64) < 0) {
    ::close(ListenFD);
    return exit_codes::Failure;
  }

  Pool = std::make_unique<ThreadPool>(Opts.Threads);
  std::vector<std::thread> Readers;
  std::mutex ConnMu;
  std::vector<std::weak_ptr<Connection>> Conns;

  while (!StopFlag.load()) {
    bool TimedOut = false;
    if (!waitReadable(ListenFD, StopFlag, nullptr, Deadline::never(),
                      TimedOut))
      break;
    int CFd = ::accept(ListenFD, nullptr, nullptr);
    if (CFd < 0)
      continue;
    // Bound slow readers: a response write blocked past the timeout
    // fails with EAGAIN, and writeAll treats that as the peer vanishing.
    if (Opts.WriteTimeoutMs > 0.0) {
      timeval TV;
      TV.tv_sec = static_cast<time_t>(Opts.WriteTimeoutMs / 1000.0);
      TV.tv_usec = static_cast<suseconds_t>(
          (Opts.WriteTimeoutMs - static_cast<double>(TV.tv_sec) * 1000.0) *
          1000.0);
      ::setsockopt(CFd, SOL_SOCKET, SO_SNDTIMEO, &TV, sizeof(TV));
    }
    auto Conn = std::make_shared<Connection>(CFd, /*OwnsFD=*/true);
    {
      std::lock_guard<std::mutex> Lock(ConnMu);
      Conns.push_back(Conn);
    }
    Readers.emplace_back(
        [this, Conn, CFd] { serveConnection(Conn, CFd); });
  }

  // Graceful drain: no new connections, no new frames (SHUT_RD wakes the
  // readers with EOF), then let every queued compile finish and write its
  // response before the descriptors close.
  ::close(ListenFD);
  ::unlink(Opts.SocketPath.c_str());
  {
    std::lock_guard<std::mutex> Lock(ConnMu);
    for (const std::weak_ptr<Connection> &W : Conns)
      if (std::shared_ptr<Connection> C = W.lock())
        ::shutdown(C->FD, SHUT_RD);
  }
  for (std::thread &T : Readers)
    T.join();
  Pool->stop();
  return exit_codes::Success;
}

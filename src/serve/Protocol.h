//===- serve/Protocol.h - The cprd-v1 wire protocol -------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `cprd-v1` protocol: newline-delimited JSON frames between a client
/// and the cprd compile daemon (docs/SERVICE.md has the full spec). One
/// request frame:
///
/// \code
/// {"proto":"cprd-v1","id":"r1","ir":"; cpr-fuzz-program-v1\n...",
///  "options":{"exit_weight":0.2,"interp_max_steps":200000,...}}
/// \endcode
///
/// and one response frame per request, correlated by "id" (responses may
/// arrive out of request order -- the daemon compiles concurrently):
///
/// \code
/// {"proto":"cprd-v1","id":"r1","status":"ok","ir":"func @f {...}",
///  "cpr":{...},"cache":{"hits":3,"misses":1},"diagnostics":[...]}
/// \endcode
///
/// Requests cross a trust boundary, so decoding is strict: the JSON
/// parser already rejects duplicate keys and unterminated strings
/// (support/JSON.h), and decodeRequest() additionally rejects unknown
/// fields and wrong types -- every failure is a recoverable Diagnostic,
/// never a fatal error. Response decoding is deliberately lenient about
/// unknown fields so newer daemons can extend frames without breaking
/// older clients.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_PROTOCOL_H
#define SERVE_PROTOCOL_H

#include "cpr/ControlCPR.h"
#include "cpr/CPROptions.h"
#include "support/Budget.h"
#include "support/Diagnostic.h"

#include <string>
#include <vector>

namespace cpr {
namespace serve {

/// Protocol magic; every frame carries {"proto":"cprd-v1"}.
inline constexpr const char *ProtocolName = "cprd-v1";

/// What the client asks for.
enum class RequestKind {
  Compile, ///< compile "ir" (the default when "cmd" is absent)
  Ping,    ///< liveness probe; answered with status "pong"
  Stats,   ///< server/cache counter snapshot
};

/// One decoded request frame.
struct CompileRequest {
  RequestKind Kind = RequestKind::Compile;
  std::string Id; ///< client correlation id, echoed verbatim
  /// The program: fuzz-program-v1 text (IR plus `; reg`/`; mem` input
  /// directives) or plain IR (empty inputs).
  std::string IR;
  CPROptions CPR;
  unsigned UnrollFactor = 1;
  bool Lint = false;
  bool RegionEquivalence = false;
  /// Interpreter step cap for the profiling runs; 0 takes the service
  /// default, and the service clamps to its admission ceiling either way.
  uint64_t InterpMaxSteps = 0;
  /// Transform budget; zero-initialized takes the service default.
  Budget TransformBudget;
  /// Whole-request deadline in milliseconds, relative to the moment the
  /// *service* decodes the frame (never an absolute time -- clocks don't
  /// cross the wire); 0 means none. An expiring request degrades like
  /// budget exhaustion: fail-safe fallback plus a `deadline-exceeded`
  /// diagnostic. Deliberately excluded from the cache fingerprint -- it
  /// is wall-clock-dependent, and divergent deadline-truncated compiles
  /// already diverge in their downstream per-region keys.
  double DeadlineMs = 0.0;
};

/// One diagnostic as it crosses the wire (names, not enums, so clients
/// need no enum tables).
struct WireDiagnostic {
  std::string Severity; ///< "remark" | "warning" | "error" | "fatal"
  std::string Code;     ///< diagCodeName(), e.g. "parse-error"
  std::string Message;
  std::string Site;
};

/// One response frame.
struct CompileResponse {
  std::string Id;
  /// "ok" | "error" | "busy" (admission refused) | "pong" | "stats".
  std::string Status;
  /// Treated function + inputs in fuzz-program-v1 text (status "ok").
  std::string IR;
  bool FellBack = false;
  CPRResult CPR; ///< transform counters (status "ok")
  uint64_t CacheHits = 0;   ///< this request's region-cache hits
  uint64_t CacheMisses = 0; ///< this request's region-cache misses
  std::vector<WireDiagnostic> Diagnostics;
  /// Service-side wall time. In-process only -- encodeResponse omits it
  /// so a response frame is a pure function of the request (cached and
  /// cold compiles are byte-identical on the wire).
  double WallMs = 0.0;
  /// Extra payload for status "stats" (server-defined key/number pairs).
  std::vector<std::pair<std::string, double>> Extra;

  bool ok() const { return Status == "ok"; }
};

/// Renders one request frame (a single line, no trailing newline).
std::string encodeRequest(const CompileRequest &Req);

/// Parses and validates one request frame. Failures carry
/// DiagCode::ParseError (malformed JSON / wrong types / unknown fields)
/// with Site "cprd.frame".
Expected<CompileRequest> decodeRequest(const std::string &Line);

/// Renders one response frame (a single line, no trailing newline).
std::string encodeResponse(const CompileResponse &Res);

/// Parses one response frame (lenient about unknown fields).
Expected<CompileResponse> decodeResponse(const std::string &Line);

/// Builds an error response carrying \p D (echoing \p Id).
CompileResponse errorResponse(std::string Id, const Diagnostic &D);

/// "compile, ping, stats" -- the registered `cmd` values, for the
/// unknown-command diagnostic (mirrors the predictor registry's
/// unknown-name message so clients see what *is* supported).
std::string requestCommandList();

/// Converts an engine diagnostic to its wire form.
WireDiagnostic toWire(const Diagnostic &D);

} // namespace serve
} // namespace cpr

#endif // SERVE_PROTOCOL_H

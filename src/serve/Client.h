//===- serve/Client.h - cprd-v1 client --------------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronous cprd-v1 client over a Unix-domain socket, used by
/// `cprc --server=` and the serve smoke tests. One roundTrip() writes a
/// request frame and blocks for the matching response (correlated by id,
/// skipping unrelated frames a pipelined peer might interleave).
///
/// Thread-safety: one Client per thread; the connection carries no
/// framing state that could be shared safely.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_CLIENT_H
#define SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Framing.h"

#include <memory>

namespace cpr {
namespace serve {

/// Blocking cprd-v1 client connection.
class Client {
public:
  /// Connects to the daemon at \p SocketPath. Failures (no daemon,
  /// refused) come back as IOError diagnostics.
  static Expected<Client> connect(const std::string &SocketPath);

  Client(Client &&O) noexcept;
  Client &operator=(Client &&O) noexcept;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  ~Client();

  /// Sends \p Req and blocks for the response with the same id.
  Expected<CompileResponse> roundTrip(const CompileRequest &Req);

private:
  explicit Client(int FD);

  int FD = -1;
  std::unique_ptr<LineReader> Reader;
};

} // namespace serve
} // namespace cpr

#endif // SERVE_CLIENT_H

//===- serve/Client.h - cprd-v1 client --------------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Synchronous cprd-v1 client over a Unix-domain socket, used by
/// `cprc --server=` and the serve smoke tests. One roundTrip() writes a
/// request frame and blocks for the matching response (correlated by id,
/// skipping unrelated frames a pipelined peer might interleave).
///
/// callWithRetry() wraps connect+roundTrip in the client-side half of the
/// resilience contract (docs/SERVICE.md "Resilience"): deadline-bounded
/// exponential backoff with deterministic seeded jitter on `busy`
/// refusals and transient connect/IO errors, honoring the daemon's
/// `retry_after_ms` hint as a floor. Retries are safe by construction --
/// compiles are pure functions of the request, and a `busy` or
/// connect-refused request did no work server-side.
///
/// Thread-safety: one Client per thread; the connection carries no
/// framing state that could be shared safely.
///
//===----------------------------------------------------------------------===//

#ifndef SERVE_CLIENT_H
#define SERVE_CLIENT_H

#include "serve/Protocol.h"
#include "support/Framing.h"

#include <memory>

namespace cpr {
namespace serve {

/// Backoff policy for Client::callWithRetry.
struct RetryPolicy {
  /// Retries after the first attempt (MaxRetries=3 means <= 4 attempts).
  unsigned MaxRetries = 3;
  /// First backoff; doubles per retry up to MaxBackoffMs. The daemon's
  /// `retry_after_ms` hint, when present, floors the computed backoff.
  double InitialBackoffMs = 10.0;
  double MaxBackoffMs = 2000.0;
  /// Whole-call deadline across every attempt and sleep; 0 = none. When
  /// the remaining time cannot fit the next backoff, the call gives up
  /// with the last failure instead of sleeping past the deadline.
  double DeadlineMs = 0.0;
  /// Seed for the deterministic jitter (support/RNG.h): each sleep is
  /// scaled by a factor in [0.5, 1.0] drawn from this seed, decorrelating
  /// a retry stampede without sacrificing reproducibility.
  uint64_t JitterSeed = 1;
};

/// Blocking cprd-v1 client connection.
class Client {
public:
  /// Connects to the daemon at \p SocketPath. Failures (no daemon,
  /// refused) come back as IOError diagnostics.
  static Expected<Client> connect(const std::string &SocketPath);

  Client(Client &&O) noexcept;
  Client &operator=(Client &&O) noexcept;
  Client(const Client &) = delete;
  Client &operator=(const Client &) = delete;
  ~Client();

  /// Sends \p Req and blocks for the response with the same id.
  Expected<CompileResponse> roundTrip(const CompileRequest &Req);

  /// One logical call with retries: connects, round-trips, and retries
  /// on `busy` responses and transient connect/IO failures per \p Policy
  /// (fresh connection each attempt -- an IO error poisons framing
  /// state). Non-retryable outcomes (ok / error / pong / stats, or
  /// deadline exhaustion) return immediately.
  static Expected<CompileResponse> callWithRetry(const std::string &SocketPath,
                                                 const CompileRequest &Req,
                                                 const RetryPolicy &Policy);

private:
  explicit Client(int FD);

  int FD = -1;
  std::unique_ptr<LineReader> Reader;
};

} // namespace serve
} // namespace cpr

#endif // SERVE_CLIENT_H

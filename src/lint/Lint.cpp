//===- lint/Lint.cpp - Lint framework --------------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "analysis/CFG.h"
#include "analysis/Liveness.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <sstream>

using namespace cpr;

std::string LintFinding::str() const {
  std::string Out = diagSeverityName(Severity);
  Out += " [";
  Out += diagCodeName(Code);
  Out += "]";
  if (!Block.empty()) {
    Out += " @";
    Out += Block;
  }
  if (Op != InvalidOpId)
    Out += " op %" + std::to_string(Op);
  Out += ": ";
  Out += Message;
  return Out;
}

Diagnostic LintFinding::toDiagnostic() const {
  Diagnostic D;
  D.Severity = Severity;
  D.Code = Code;
  D.Site = "lint." + Check;
  D.Message = Message;
  if (!Block.empty()) {
    D.Message += " in block @" + Block;
    if (Op != InvalidOpId)
      D.Message += " at op %" + std::to_string(Op);
  }
  return D;
}

unsigned LintResult::countAtLeast(DiagSeverity S) const {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (static_cast<unsigned>(F.Severity) >= static_cast<unsigned>(S))
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// LintContext
//===----------------------------------------------------------------------===//

struct LintContext::Impl {
  std::unique_ptr<Liveness> LV;
  /// Reach[I] = layout indices reachable from block I via one or more
  /// control-flow edges (successor closure; includes I itself only when I
  /// sits on a cycle).
  std::vector<std::vector<bool>> Reach;
  /// Layout indices of the blocks defining each register.
  std::map<Reg, std::vector<size_t>> DefBlocks;
  bool GraphBuilt = false;
};

LintContext::LintContext(const Function &F, const LintOptions &Opts)
    : F(F), Opts(Opts), I(new Impl) {}

LintContext::~LintContext() = default;

Liveness &LintContext::liveness() {
  if (!I->LV)
    I->LV.reset(new Liveness(F));
  return *I->LV;
}

bool LintContext::defReachesEntry(Reg R, size_t LayoutIdx) {
  if (!I->GraphBuilt) {
    size_t N = F.numBlocks();
    std::vector<std::vector<size_t>> Succ(N);
    for (size_t B = 0; B < N; ++B)
      for (BlockId S : blockSuccessors(F, B)) {
        int L = F.layoutIndex(S);
        if (L >= 0)
          Succ[B].push_back(static_cast<size_t>(L));
      }
    I->Reach.assign(N, std::vector<bool>(N, false));
    for (size_t B = 0; B < N; ++B) {
      std::vector<size_t> Work = Succ[B];
      while (!Work.empty()) {
        size_t Cur = Work.back();
        Work.pop_back();
        if (I->Reach[B][Cur])
          continue;
        I->Reach[B][Cur] = true;
        for (size_t S : Succ[Cur])
          Work.push_back(S);
      }
    }
    for (size_t B = 0; B < N; ++B)
      for (const Operation &Op : F.block(B).ops())
        for (const DefSlot &D : Op.defs())
          I->DefBlocks[D.R].push_back(B);
    for (auto &Entry : I->DefBlocks) {
      std::sort(Entry.second.begin(), Entry.second.end());
      Entry.second.erase(
          std::unique(Entry.second.begin(), Entry.second.end()),
          Entry.second.end());
    }
    I->GraphBuilt = true;
  }
  auto It = I->DefBlocks.find(R);
  if (It == I->DefBlocks.end())
    return false;
  for (size_t D : It->second)
    if (I->Reach[D][LayoutIdx])
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// LintDriver
//===----------------------------------------------------------------------===//

LintDriver::LintDriver(LintOptions Opts) : Opts(std::move(Opts)) {}
LintDriver::~LintDriver() = default;
LintDriver::LintDriver(LintDriver &&) = default;
LintDriver &LintDriver::operator=(LintDriver &&) = default;

void LintDriver::addPass(std::unique_ptr<LintPass> P) {
  Passes.push_back(std::move(P));
}

const std::vector<std::unique_ptr<LintPass>> &LintDriver::passes() const {
  return Passes;
}

LintDriver LintDriver::withBuiltinPasses(LintOptions Opts) {
  LintDriver D(std::move(Opts));
  addBuiltinLintPasses(D);
  return D;
}

LintResult LintDriver::run(const Function &F) const {
  LintResult R;
  LintContext Ctx(F, Opts);
  for (const std::unique_ptr<LintPass> &P : Passes) {
    if (!Opts.OnlyChecks.empty() &&
        std::find(Opts.OnlyChecks.begin(), Opts.OnlyChecks.end(),
                  P->name()) == Opts.OnlyChecks.end())
      continue;
    P->run(Ctx, R.Findings);
    R.ChecksRun.push_back(P->name());
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

void cpr::reportLintFindings(const LintResult &R, DiagnosticEngine &Diags) {
  for (const LintFinding &F : R.Findings)
    Diags.report(F.toDiagnostic());
}

JSONValue cpr::lintResultToJSON(const std::string &FunctionName,
                                const LintResult &R) {
  JSONValue Root = JSONValue::object();
  Root.set("function", JSONValue::str(FunctionName));
  JSONValue Checks = JSONValue::array();
  for (const std::string &C : R.ChecksRun)
    Checks.append(JSONValue::str(C));
  Root.set("checks", std::move(Checks));
  JSONValue Findings = JSONValue::array();
  for (const LintFinding &F : R.Findings) {
    JSONValue J = JSONValue::object();
    J.set("check", JSONValue::str(F.Check));
    J.set("severity", JSONValue::str(diagSeverityName(F.Severity)));
    J.set("code", JSONValue::str(diagCodeName(F.Code)));
    J.set("block", JSONValue::str(F.Block));
    J.set("op", F.Op == InvalidOpId
                    ? JSONValue::null()
                    : JSONValue::number(static_cast<double>(F.Op)));
    J.set("op_index", F.OpIndex < 0
                          ? JSONValue::null()
                          : JSONValue::number(static_cast<double>(F.OpIndex)));
    J.set("message", JSONValue::str(F.Message));
    Findings.append(std::move(J));
  }
  Root.set("findings", std::move(Findings));
  JSONValue Counts = JSONValue::object();
  unsigned NRemark = 0, NWarning = 0, NError = 0;
  for (const LintFinding &F : R.Findings) {
    if (F.Severity == DiagSeverity::Remark)
      ++NRemark;
    else if (F.Severity == DiagSeverity::Warning)
      ++NWarning;
    else
      ++NError;
  }
  Counts.set("remark", JSONValue::number(NRemark));
  Counts.set("warning", JSONValue::number(NWarning));
  Counts.set("error", JSONValue::number(NError));
  Root.set("counts", std::move(Counts));
  return Root;
}

Status cpr::lintStatus(const LintResult &R, bool Werror) {
  DiagSeverity Floor = Werror ? DiagSeverity::Warning : DiagSeverity::Error;
  for (const LintFinding &F : R.Findings)
    if (static_cast<unsigned>(F.Severity) >= static_cast<unsigned>(Floor)) {
      Diagnostic D = F.toDiagnostic();
      D.Severity = DiagSeverity::Error;
      return Status::failure(std::move(D));
    }
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Sidecar schedule directives
//===----------------------------------------------------------------------===//

Status cpr::parseInjectedSchedules(const std::string &Text,
                                   std::vector<InjectedSchedule> &Out) {
  std::istringstream In(Text);
  std::string Line;
  const std::string Tag = "; lint-schedule(";
  while (std::getline(In, Line)) {
    size_t Pos = Line.find(Tag);
    if (Pos == std::string::npos)
      continue;
    std::string Rest = Line.substr(Pos + Tag.size());
    size_t Close = Rest.find(')');
    size_t At = Rest.find('@');
    size_t Colon = Rest.find(':');
    if (Close == std::string::npos || At == std::string::npos ||
        Colon == std::string::npos || At < Close || Colon < At)
      return Status::error(DiagCode::ParseError,
                           "malformed lint-schedule directive: " + Line);
    InjectedSchedule S;
    S.MachineName = Rest.substr(0, Close);
    S.BlockName = Rest.substr(At + 1, Colon - At - 1);
    while (!S.BlockName.empty() && S.BlockName.back() == ' ')
      S.BlockName.pop_back();
    std::istringstream Cycles(Rest.substr(Colon + 1));
    int C;
    while (Cycles >> C)
      S.Cycles.push_back(C);
    if (!Cycles.eof())
      return Status::error(DiagCode::ParseError,
                           "non-integer cycle in lint-schedule directive: " +
                               Line);
    Out.push_back(std::move(S));
  }
  return Status::success();
}

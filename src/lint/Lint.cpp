//===- lint/Lint.cpp - Lint framework --------------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "analysis/AnalysisCache.h"
#include "analysis/Dataflow.h"
#include "analysis/Liveness.h"
#include "interp/Interpreter.h"
#include "lint/Witness.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

using namespace cpr;

std::string LintFinding::str() const {
  std::string Out = diagSeverityName(Severity);
  Out += " [";
  Out += diagCodeName(Code);
  Out += "]";
  if (!Block.empty()) {
    Out += " @";
    Out += Block;
  }
  if (Op != InvalidOpId)
    Out += " op %" + std::to_string(Op);
  Out += ": ";
  Out += Message;
  return Out;
}

Diagnostic LintFinding::toDiagnostic() const {
  Diagnostic D;
  D.Severity = Severity;
  D.Code = Code;
  D.Site = "lint." + Check;
  D.Message = Message;
  if (!Block.empty()) {
    D.Message += " in block @" + Block;
    if (Op != InvalidOpId)
      D.Message += " at op %" + std::to_string(Op);
  }
  return D;
}

unsigned LintResult::countAtLeast(DiagSeverity S) const {
  unsigned N = 0;
  for (const LintFinding &F : Findings)
    if (static_cast<unsigned>(F.Severity) >= static_cast<unsigned>(S))
      ++N;
  return N;
}

//===----------------------------------------------------------------------===//
// LintContext
//===----------------------------------------------------------------------===//

struct LintContext::Impl {
  /// Borrowed pre-solved analyses; null when this context owns its own.
  FunctionAnalyses *Shared = nullptr;
  /// Caller-declared environment inputs; null when none were declared.
  const std::vector<RegBinding> *Inputs = nullptr;
  std::unique_ptr<Liveness> LV;
  std::unique_ptr<RegNumbering> N;
  std::unique_ptr<ReachingDefBlocks> Reach;
  std::unique_ptr<DefiniteAssignment> Definite;
};

LintContext::LintContext(const Function &F, const LintOptions &Opts,
                         FunctionAnalyses *Shared,
                         const std::vector<RegBinding> *Inputs)
    : F(F), Opts(Opts), I(new Impl) {
  I->Shared = Shared;
  I->Inputs = Inputs;
}

LintContext::~LintContext() = default;

Liveness &LintContext::liveness() {
  if (I->Shared)
    return I->Shared->LV;
  if (!I->LV)
    I->LV.reset(new Liveness(F));
  return *I->LV;
}

const ReachingDefBlocks &LintContext::reachingDefs() {
  if (I->Shared)
    return I->Shared->Reach;
  if (!I->Reach) {
    I->N.reset(new RegNumbering(F));
    I->Reach.reset(new ReachingDefBlocks(F, *I->N));
  }
  return *I->Reach;
}

const DefiniteAssignment &LintContext::definiteAssignment() {
  if (!I->Definite)
    I->Definite.reset(
        new DefiniteAssignment(F, reachingDefs().numbering()));
  return *I->Definite;
}

bool LintContext::defReachesEntry(Reg R, size_t LayoutIdx) {
  return reachingDefs().reachesEntry(R, LayoutIdx);
}

bool LintContext::isDeclaredInput(Reg R) const {
  if (!I->Inputs)
    return false;
  for (const RegBinding &B : *I->Inputs)
    if (B.R == R)
      return true;
  return false;
}

//===----------------------------------------------------------------------===//
// LintDriver
//===----------------------------------------------------------------------===//

LintDriver::LintDriver(LintOptions Opts) : Opts(std::move(Opts)) {}
LintDriver::~LintDriver() = default;
LintDriver::LintDriver(LintDriver &&) = default;
LintDriver &LintDriver::operator=(LintDriver &&) = default;

void LintDriver::addPass(std::unique_ptr<LintPass> P) {
  Passes.push_back(std::move(P));
}

const std::vector<std::unique_ptr<LintPass>> &LintDriver::passes() const {
  return Passes;
}

LintDriver LintDriver::withBuiltinPasses(LintOptions Opts) {
  LintDriver D(std::move(Opts));
  addBuiltinLintPasses(D);
  return D;
}

LintResult LintDriver::run(const Function &F, FunctionAnalyses *Shared,
                           const std::vector<RegBinding> *Inputs) const {
  LintResult R;
  LintContext Ctx(F, Opts, Shared, Inputs);
  for (const std::unique_ptr<LintPass> &P : Passes) {
    if (!Opts.OnlyChecks.empty() &&
        std::find(Opts.OnlyChecks.begin(), Opts.OnlyChecks.end(),
                  P->name()) == Opts.OnlyChecks.end())
      continue;
    P->run(Ctx, R.Findings);
    R.ChecksRun.push_back(P->name());
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Reporting
//===----------------------------------------------------------------------===//

void cpr::reportLintFindings(const LintResult &R, DiagnosticEngine &Diags) {
  for (const LintFinding &F : R.Findings)
    Diags.report(F.toDiagnostic());
}

JSONValue cpr::lintResultToJSON(const std::string &FunctionName,
                                const LintResult &R) {
  JSONValue Root = JSONValue::object();
  Root.set("function", JSONValue::str(FunctionName));
  JSONValue Checks = JSONValue::array();
  for (const std::string &C : R.ChecksRun)
    Checks.append(JSONValue::str(C));
  Root.set("checks", std::move(Checks));
  JSONValue Findings = JSONValue::array();
  for (const LintFinding &F : R.Findings) {
    JSONValue J = JSONValue::object();
    J.set("check", JSONValue::str(F.Check));
    J.set("severity", JSONValue::str(diagSeverityName(F.Severity)));
    J.set("code", JSONValue::str(diagCodeName(F.Code)));
    J.set("block", JSONValue::str(F.Block));
    J.set("op", F.Op == InvalidOpId
                    ? JSONValue::null()
                    : JSONValue::number(static_cast<double>(F.Op)));
    J.set("op_index", F.OpIndex < 0
                          ? JSONValue::null()
                          : JSONValue::number(static_cast<double>(F.OpIndex)));
    J.set("message", JSONValue::str(F.Message));
    J.set("witness",
          F.Witness ? witnessToJSON(*F.Witness) : JSONValue::null());
    Findings.append(std::move(J));
  }
  Root.set("findings", std::move(Findings));
  JSONValue Counts = JSONValue::object();
  unsigned NRemark = 0, NWarning = 0, NError = 0;
  for (const LintFinding &F : R.Findings) {
    if (F.Severity == DiagSeverity::Remark)
      ++NRemark;
    else if (F.Severity == DiagSeverity::Warning)
      ++NWarning;
    else
      ++NError;
  }
  Counts.set("remark", JSONValue::number(NRemark));
  Counts.set("warning", JSONValue::number(NWarning));
  Counts.set("error", JSONValue::number(NError));
  Root.set("counts", std::move(Counts));
  return Root;
}

Status cpr::lintStatus(const LintResult &R, bool Werror) {
  DiagSeverity Floor = Werror ? DiagSeverity::Warning : DiagSeverity::Error;
  for (const LintFinding &F : R.Findings)
    if (static_cast<unsigned>(F.Severity) >= static_cast<unsigned>(Floor)) {
      Diagnostic D = F.toDiagnostic();
      D.Severity = DiagSeverity::Error;
      return Status::failure(std::move(D));
    }
  return Status::success();
}

//===----------------------------------------------------------------------===//
// Sidecar schedule directives
//===----------------------------------------------------------------------===//

Status cpr::parseInjectedSchedules(const std::string &Text,
                                   std::vector<InjectedSchedule> &Out) {
  std::istringstream In(Text);
  std::string Line;
  const std::string Tag = "; lint-schedule(";
  while (std::getline(In, Line)) {
    size_t Pos = Line.find(Tag);
    if (Pos == std::string::npos)
      continue;
    std::string Rest = Line.substr(Pos + Tag.size());
    size_t Close = Rest.find(')');
    size_t At = Rest.find('@');
    size_t Colon = Rest.find(':');
    if (Close == std::string::npos || At == std::string::npos ||
        Colon == std::string::npos || At < Close || Colon < At)
      return Status::error(DiagCode::ParseError,
                           "malformed lint-schedule directive: " + Line);
    InjectedSchedule S;
    S.MachineName = Rest.substr(0, Close);
    size_t Comma = S.MachineName.find(',');
    if (Comma != std::string::npos) {
      std::string Attr = S.MachineName.substr(Comma + 1);
      S.MachineName.resize(Comma);
      const std::string FetchKey = "fetch=";
      if (Attr.compare(0, FetchKey.size(), FetchKey) != 0)
        return Status::error(DiagCode::ParseError,
                             "unknown lint-schedule attribute '" + Attr +
                                 "' (expected fetch=<N>): " + Line);
      std::istringstream Fetch(Attr.substr(FetchKey.size()));
      if (!(Fetch >> S.FetchWidth) || !Fetch.eof() || S.FetchWidth <= 0)
        return Status::error(DiagCode::ParseError,
                             "malformed fetch width in lint-schedule "
                             "directive: " +
                                 Line);
    }
    S.BlockName = Rest.substr(At + 1, Colon - At - 1);
    while (!S.BlockName.empty() && S.BlockName.back() == ' ')
      S.BlockName.pop_back();
    std::istringstream Cycles(Rest.substr(Colon + 1));
    int C;
    while (Cycles >> C)
      S.Cycles.push_back(C);
    if (!Cycles.eof())
      return Status::error(DiagCode::ParseError,
                           "non-integer cycle in lint-schedule directive: " +
                               Line);
    Out.push_back(std::move(S));
  }
  return Status::success();
}

//===- lint/LintInternal.h - Shared check machinery -------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the built-in checks (LintPasses.cpp) and the
/// whole-region v2 checks (LintPassesV2.cpp): post-hoc recognition of
/// CPR-transformed structure, the synthetic off-trace path block, and the
/// PQS expressions common to several proofs. Internal to src/lint/; not
/// part of the lint API surface.
///
//===----------------------------------------------------------------------===//

#ifndef LINT_LINTINTERNAL_H
#define LINT_LINTINTERNAL_H

#include "analysis/BDD.h"
#include "lint/Lint.h"

#include <vector>

namespace cpr {

class RegionPQS;

namespace lint_detail {

/// One recognized bypass branch of a CPR-transformed block.
struct Bypass {
  size_t BranchIdx;        ///< index of the bypass branch in its block
  const Block *Comp;       ///< the compensation block it targets
  Reg OffPred;             ///< the bypass branch predicate (off-trace FRP)
  Reg OnPred;              ///< the wired-and twin (on-trace FRP); may be
                           ///< invalid when the structure is unrecognized
  std::vector<size_t> Lookaheads; ///< cmpps accumulating OffPred wired-or
  size_t FirstLookahead = 0;
};

/// Recognizes every bypass branch of \p B: a branch whose resolved target
/// is a compensation block, with its wired-or lookahead cmpps.
std::vector<Bypass> findBypasses(const Function &F, const Block &B);

/// The instruction sequence an off-trace execution retires: the on-trace
/// prefix up to and including the bypass, then the compensation code.
Block makePathBlock(const Block &B, const Bypass &BP);

/// A finding at op \p OpIdx of \p B (negative for block-level findings).
LintFinding makeFinding(DiagCode Code, const char *Check, const Block &B,
                        int OpIdx, std::string Message,
                        DiagSeverity Sev = DiagSeverity::Error);

/// OR of the conditions under which the exits of the compensation portion
/// of \p Path (indices > BP.BranchIdx) leave the program or the block.
BDD::NodeRef compExitCond(RegionPQS &PQS, const Block &Path,
                          const Bypass &BP);

/// Condition under which the definition slots of \p Op write register
/// \p R, as an expression over \p PQS.
BDD::NodeRef writeCond(RegionPQS &PQS, const Operation &Op, size_t OpIdx,
                       Reg R);

/// reachCond (lint/Witness.h) strengthened with the not-executed
/// conditions of earlier halts and traps: a linear dispatch only arrives
/// at the anchor when no earlier branch took *and* no earlier halt or
/// trap retired. The strengthening makes witness replays land on the
/// anchor instead of terminating early.
BDD::NodeRef dispatchCond(RegionPQS &PQS, const Block &B, size_t AnchorIdx,
                          size_t ExceptIdx);

/// Factories for the whole-region v2 checks (LintPassesV2.cpp), consumed
/// by addBuiltinLintPasses.
std::unique_ptr<LintPass> makeDeadUnderPredicatePass();
std::unique_ptr<LintPass> makeRedundantCompensationPass();
std::unique_ptr<LintPass> makeUninitReadPass();
std::unique_ptr<LintPass> makeResourceOversubscriptionPass();

} // namespace lint_detail
} // namespace cpr

#endif // LINT_LINTINTERNAL_H

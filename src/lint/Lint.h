//===- lint/Lint.h - Static semantic checks for CPR IR ----------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// cpr-lint: a pluggable static-analysis framework that proves the paper's
/// structural correctness invariants (Sections 4-6) on concrete IR, pre-
/// and post-transformation, without executing it (docs/LINT.md). Where the
/// interpreter-based equivalence oracle checks one input, these checks use
/// PQS/BDD predicate reasoning to cover *all* inputs of the properties
/// they encode:
///
///  - frp-consistency          the bypass branch's fully-resolved predicate
///                             is implied by the OR of the branch conditions
///                             the compensation block re-executes, and the
///                             on-/off-trace FRPs are disjoint and exhaust
///                             the root predicate (paper Section 4);
///  - use-before-def           a register read under predicate p has a
///                             definition on every path where p can be true
///                             (predicate-aware dataflow, [JS96]);
///  - speculation-safety       promoted (guard-weakened) operations are
///                             side-effect free and do not clobber values
///                             the bypass path still needs (Section 6);
///  - compensation-completeness every exit collapsed into the bypass is
///                             re-established off-trace, and every register
///                             an off-trace exit needs is defined on the
///                             off-trace path (Section 5);
///  - schedule-legality        emitted schedules respect the dependence
///                             latencies and per-unit resource limits of
///                             the machine model (Section 7);
///  - dead-under-predicate     an operation's guard (or a branch's taken
///                             condition) is provably unsatisfiable;
///  - redundant-compensation   a compensation block recomputes a value the
///                             on-trace path already produced unclobbered;
///  - uninit-read              a register is read before any definition in
///                             the whole function can reach it;
///  - resource-oversubscription a schedule issues more operations in one
///                             cycle than the machine fetches.
///
/// Findings carry a stable DiagCode, severity, operation location, and a
/// *witness* (lint/Witness.h): a satisfying assignment of the violated
/// property from the BDD plus concrete replay inputs the interpreter can
/// confirm (`cpr-lint --confirm-witnesses`). Results render both as text
/// and as `cpr-lint-v2` JSON. The driver is wired into
/// three layers: the standalone cpr-lint tool, the PipelineOptions::Lint
/// stage of PipelineRun (post-transform findings on a fail-safe region
/// trigger RegionTransaction rollback), and cpr-fuzz's static-oracle mode.
///
/// Conservatism contract: a check reports a finding only when the BDD
/// proof of the violated property is exact; on node-budget exhaustion
/// (BDD::Invalid) the check stays silent rather than guessing. Lint
/// findings are therefore high-confidence, but silence is not a proof.
///
/// Thread-safety: LintDriver is immutable after construction and may be
/// shared across threads; run() builds all per-function analyses locally.
///
//===----------------------------------------------------------------------===//

#ifndef LINT_LINT_H
#define LINT_LINT_H

#include "ir/Function.h"
#include "machine/MachineDesc.h"
#include "support/Diagnostic.h"
#include "support/JSON.h"

#include <memory>
#include <string>
#include <vector>

namespace cpr {

class DefiniteAssignment;
struct FunctionAnalyses;
class Liveness;
struct LintWitness;
class ReachingDefBlocks;
struct RegBinding;
class RegNumbering;

/// One lint finding: a violated invariant at a program location.
struct LintFinding {
  DiagSeverity Severity = DiagSeverity::Error;
  /// Stable machine-checkable code (one of the DiagCode::Lint* values).
  DiagCode Code = DiagCode::None;
  /// Name of the check that produced it ("frp-consistency", ...).
  std::string Check;
  /// Name of the block the finding is in.
  std::string Block;
  /// Id of the anchoring operation; InvalidOpId for block-level findings.
  OpId Op = InvalidOpId;
  /// Index of the anchoring operation in its block; -1 for block-level.
  int OpIndex = -1;
  std::string Message;
  /// The finding's witness (lint/Witness.h): a satisfying assignment of
  /// the violated property plus concrete replay inputs. Shared so copies
  /// of a finding stay cheap; null only for findings of external passes
  /// that predate witness production.
  std::shared_ptr<LintWitness> Witness;

  /// "error [lint-frp] @Loop op %12: <message>".
  std::string str() const;
  /// The finding as a reportable Diagnostic (Site = "lint.<check>").
  Diagnostic toDiagnostic() const;
};

/// An externally supplied (pinned) schedule to validate instead of the
/// list scheduler's own output, e.g. parsed from a `; lint-schedule`
/// sidecar directive in a fixture file.
struct InjectedSchedule {
  std::string BlockName;
  std::string MachineName;
  std::vector<int> Cycles; // one issue cycle per operation, in block order
  /// Fetch-width override from a `fetch=N` directive attribute; 0 keeps
  /// the machine model's own fetch width. Resource-oversubscription
  /// validates total issue per cycle against this.
  int FetchWidth = 0;
};

/// Options shared by all checks of one driver.
struct LintOptions {
  /// Machine models schedule-legality validates against.
  std::vector<MachineDesc> Machines = {MachineDesc::medium()};
  /// When non-empty, only checks whose name appears here run.
  std::vector<std::string> OnlyChecks;
  /// Pinned schedules to validate instead of scheduling from scratch.
  std::vector<InjectedSchedule> Schedules;
};

/// Result of linting one function.
struct LintResult {
  std::vector<LintFinding> Findings;
  /// Names of the checks that ran, in order.
  std::vector<std::string> ChecksRun;

  bool clean() const { return Findings.empty(); }
  unsigned countAtLeast(DiagSeverity S) const;
  unsigned errorCount() const { return countAtLeast(DiagSeverity::Error); }
};

/// Shared per-function state handed to every check. Function-level
/// analyses (liveness, reaching definitions) are hosted on the dense
/// dataflow framework (analysis/Dataflow.h); when the caller already
/// solved them -- the pipeline's cached stage artifacts
/// (analysis/AnalysisCache.h) -- the context borrows instead of
/// recomputing.
class LintContext {
public:
  LintContext(const Function &F, const LintOptions &Opts,
              FunctionAnalyses *Shared = nullptr,
              const std::vector<RegBinding> *Inputs = nullptr);
  ~LintContext();

  const Function &func() const { return F; }
  const LintOptions &options() const { return Opts; }

  /// Lazily built (or borrowed) function-level liveness.
  Liveness &liveness();

  /// Lazily built (or borrowed) cross-block reaching definitions.
  const ReachingDefBlocks &reachingDefs();

  /// Lazily built forward/intersection definite assignment, the
  /// uninit-read check's pruning accelerator.
  const DefiniteAssignment &definiteAssignment();

  /// True when a definition of \p R in some block can reach the entry of
  /// block \p LayoutIdx (including around loops). Reads of such registers
  /// are conservatively treated as initialized by use-before-def and
  /// compensation-completeness.
  bool defReachesEntry(Reg R, size_t LayoutIdx);

  /// True when the caller declared \p R an environment-initialized input
  /// (an InitRegs binding: the kernel's arguments, a fuzz case's `; reg`
  /// directives, cprc's --reg flags). uninit-read treats such registers
  /// as defined at function entry even when the function also redefines
  /// them later (strcpy's cursor-bump pattern).
  bool isDeclaredInput(Reg R) const;

private:
  const Function &F;
  const LintOptions &Opts;
  struct Impl;
  std::unique_ptr<Impl> I;
};

/// One pluggable check.
class LintPass {
public:
  virtual ~LintPass() = default;
  /// Stable check name ("frp-consistency", ...).
  virtual const char *name() const = 0;
  /// One-line description for --help and docs.
  virtual const char *description() const = 0;
  /// Appends findings for Ctx.func() to \p Out.
  virtual void run(LintContext &Ctx, std::vector<LintFinding> &Out) = 0;
};

/// Runs an ordered list of checks over functions.
class LintDriver {
public:
  explicit LintDriver(LintOptions Opts = LintOptions());
  ~LintDriver();
  LintDriver(LintDriver &&);
  LintDriver &operator=(LintDriver &&);

  void addPass(std::unique_ptr<LintPass> P);
  const std::vector<std::unique_ptr<LintPass>> &passes() const;

  /// A driver loaded with the built-in checks.
  static LintDriver withBuiltinPasses(LintOptions Opts = LintOptions());

  /// Runs every (enabled) pass over \p F. When \p Shared is non-null its
  /// pre-solved analyses are used instead of rebuilding them. \p Inputs
  /// optionally declares the environment-initialized registers the
  /// function starts with (see LintContext::isDeclaredInput).
  LintResult run(const Function &F, FunctionAnalyses *Shared = nullptr,
                 const std::vector<RegBinding> *Inputs = nullptr) const;

private:
  LintOptions Opts;
  std::vector<std::unique_ptr<LintPass>> Passes;
};

/// Registers the built-in checks, in their canonical order: the five
/// original checks (lint/LintPasses.cpp) followed by the four
/// whole-region v2 checks (lint/LintPassesV2.cpp).
void addBuiltinLintPasses(LintDriver &D);

/// Reports every finding of \p R into \p Diags.
void reportLintFindings(const LintResult &R, DiagnosticEngine &Diags);

/// Renders \p R as one per-function entry of the `cpr-lint-v2` report
/// (docs/LINT.md): {"function", "checks", "findings", "counts"}, each
/// finding now carrying a "witness" object (null for witness-less
/// findings of external passes). Tools wrap entries in the
/// {"schema": "cpr-lint-v2", "functions": [...]} envelope.
JSONValue lintResultToJSON(const std::string &FunctionName,
                           const LintResult &R);

/// Success when no finding reaches error severity (warning severity with
/// \p Werror). The diagnostic carries the first offending finding.
Status lintStatus(const LintResult &R, bool Werror = false);

/// Parses `; lint-schedule(<machine>[,fetch=<N>]) @<block>: <c0> <c1> ...`
/// sidecar directives from raw fixture text (the IR tokenizer skips them
/// as comments). Returns an error Status on a malformed directive.
Status parseInjectedSchedules(const std::string &Text,
                              std::vector<InjectedSchedule> &Out);

} // namespace cpr

#endif // LINT_LINT_H

//===- lint/LintPasses.cpp - The five built-in checks -----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in checks (docs/LINT.md). Each encodes one of the paper's
/// structural invariants as an exact BDD proof over the PQS predicate
/// expressions of the block under inspection; on BDD node-budget
/// exhaustion a check silently skips the obligation it cannot decide
/// (silence is not a proof, findings are).
///
/// The CPR-specific checks recognize transformed structure post hoc: a
/// *bypass* is a branch whose resolved target is a compensation block, and
/// its *lookaheads* are the earlier cmpps accumulating the branch predicate
/// through wired-or actions (the paper's fully-resolved off-trace
/// predicate), with the wired-and twin forming the on-trace FRP. To relate
/// the lookahead conditions with the original compares re-executed in the
/// compensation block, checks build a synthetic *path block* -- the
/// on-trace prefix up to the bypass followed by the compensation code,
/// which is exactly the instruction sequence an off-trace execution
/// retires -- and run PQS over it, so value numbering assigns the same
/// atom to a lookahead and to the re-executed original compare whenever
/// their sources are provably the same values.
///
//===----------------------------------------------------------------------===//

#include "lint/LintInternal.h"

#include "analysis/CFG.h"
#include "analysis/DepGraph.h"
#include "analysis/Liveness.h"
#include "analysis/PQS.h"
#include "ir/CmppAction.h"
#include "lint/Witness.h"
#include "sched/ListScheduler.h"

#include <string>
#include <vector>

using namespace cpr;
using namespace cpr::lint_detail;

namespace cpr {
namespace lint_detail {

//===----------------------------------------------------------------------===//
// CPR structure recognition
//===----------------------------------------------------------------------===//

std::vector<Bypass> findBypasses(const Function &F, const Block &B) {
  std::vector<Bypass> Out;
  const std::vector<Operation> &Ops = B.ops();
  for (size_t I = 0; I < Ops.size(); ++I) {
    if (!Ops[I].isBranch())
      continue;
    BlockId Target = resolveBranchTarget(B, I);
    const Block *Comp = Target == InvalidBlockId ? nullptr : F.blockById(Target);
    if (!Comp || !Comp->isCompensation())
      continue;
    Bypass BP;
    BP.BranchIdx = I;
    BP.Comp = Comp;
    BP.OffPred = Ops[I].branchPred();
    BP.OnPred = Reg();
    bool OnConsistent = true;
    for (size_t J = 0; J < I; ++J) {
      if (!Ops[J].isCmpp())
        continue;
      bool Accumulates = false;
      for (const DefSlot &D : Ops[J].defs())
        if (D.R == BP.OffPred && isWiredOrAction(D.Act))
          Accumulates = true;
      if (!Accumulates)
        continue;
      BP.Lookaheads.push_back(J);
      for (const DefSlot &D : Ops[J].defs())
        if (isWiredAndAction(D.Act)) {
          if (!BP.OnPred.isValid())
            BP.OnPred = D.R;
          else if (BP.OnPred != D.R)
            OnConsistent = false;
        }
    }
    if (!OnConsistent)
      BP.OnPred = Reg();
    if (!BP.Lookaheads.empty())
      BP.FirstLookahead = BP.Lookaheads.front();
    Out.push_back(std::move(BP));
  }
  return Out;
}

Block makePathBlock(const Block &B, const Bypass &BP) {
  Block Path(B.getId(), B.getName() + ".offtrace-path");
  for (size_t I = 0; I <= BP.BranchIdx; ++I)
    Path.ops().push_back(B.ops()[I]);
  for (const Operation &Op : BP.Comp->ops())
    Path.ops().push_back(Op);
  return Path;
}

LintFinding makeFinding(DiagCode Code, const char *Check, const Block &B,
                        int OpIdx, std::string Message, DiagSeverity Sev) {
  LintFinding F;
  F.Severity = Sev;
  F.Code = Code;
  F.Check = Check;
  F.Block = B.getName();
  if (OpIdx >= 0 && static_cast<size_t>(OpIdx) < B.size()) {
    F.Op = B.ops()[OpIdx].getId();
    F.OpIndex = OpIdx;
  }
  F.Message = std::move(Message);
  return F;
}

/// OR of the conditions under which the exits of the compensation portion
/// of \p Path (indices > BP.BranchIdx) leave the program or the block:
/// branch taken conditions plus halt execution conditions. Trap does not
/// count -- reaching it means the off-trace path lost an exit.
BDD::NodeRef compExitCond(RegionPQS &PQS, const Block &Path,
                          const Bypass &BP) {
  BDD::NodeRef Cond = BDD::False;
  for (size_t K = BP.BranchIdx + 1; K < Path.size(); ++K) {
    const Operation &Op = Path.ops()[K];
    BDD::NodeRef E = BDD::Invalid;
    if (Op.isBranch())
      E = PQS.takenExpr(K);
    else if (Op.getOpcode() == Opcode::Halt)
      E = PQS.execExpr(K);
    else
      continue;
    Cond = PQS.bdd().mkOr(Cond, E);
    if (!PQS.bdd().isValid(Cond))
      return BDD::Invalid;
  }
  return Cond;
}

BDD::NodeRef writeCond(RegionPQS &PQS, const Operation &Op, size_t OpIdx,
                       Reg R) {
  BDD::NodeRef Cond = BDD::False;
  for (const DefSlot &D : Op.defs()) {
    if (D.R != R)
      continue;
    BDD::NodeRef E;
    if (D.Act == CmppAction::UN || D.Act == CmppAction::UC)
      E = BDD::True; // unconditional cmpp targets write under a false guard
    else if (isWiredAction(D.Act))
      continue;
    else
      E = PQS.guardExpr(OpIdx);
    Cond = PQS.bdd().mkOr(Cond, E);
  }
  return Cond;
}

BDD::NodeRef dispatchCond(RegionPQS &PQS, const Block &B, size_t AnchorIdx,
                          size_t ExceptIdx) {
  BDD &Mgr = PQS.bdd();
  BDD::NodeRef Cond = reachCond(PQS, B, AnchorIdx, ExceptIdx);
  for (size_t I = 0; I < AnchorIdx && I < B.size(); ++I) {
    Opcode OC = B.ops()[I].getOpcode();
    if (OC != Opcode::Halt && OC != Opcode::Trap)
      continue;
    Cond = Mgr.mkAnd(Cond, Mgr.mkNot(PQS.execExpr(I)));
    if (!Mgr.isValid(Cond))
      return BDD::Invalid;
  }
  return Cond;
}

} // namespace lint_detail
} // namespace cpr

namespace {

/// True when the bypass path through \p Comp can read the value register
/// \p R holds at the bypass point. Sharper than liveIn(Comp): the trailing
/// trap keeps every observable register live in the dataflow sense, but
/// frp-consistency separately proves the trap unreachable, so a value
/// only matters off-trace if a compensation op reads it, an exit leaves
/// with it live, or a halt makes it observable first.
bool compNeedsValue(const Function &F, Liveness &LV, const Block &Comp,
                    Reg R) {
  for (size_t K = 0; K < Comp.size(); ++K) {
    const Operation &Op = Comp.ops()[K];
    if (Op.getOpcode() == Opcode::Trap)
      continue;
    if (Op.readsReg(R))
      return true;
    if (Op.getOpcode() == Opcode::Halt) {
      for (Reg Obs : F.observableRegs())
        if (Obs == R)
          return true;
      continue;
    }
    if (Op.isBranch()) {
      BlockId T = resolveBranchTarget(Comp, K);
      if (T == InvalidBlockId || !F.blockById(T) || LV.liveIn(T).count(R))
        return true; // unknown target: stay conservative
      continue;      // fall-through keeps scanning
    }
    // Only an unguarded redefinition kills the incoming value on every
    // remaining off-trace path.
    if (Op.getGuard().isTruePred() && Op.definesReg(R))
      return false;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Check 1: frp-consistency
//===----------------------------------------------------------------------===//

class FRPConsistencyPass : public LintPass {
public:
  const char *name() const override { return "frp-consistency"; }
  const char *description() const override {
    return "bypass FRP covers the re-executed branch conditions; on-/off-"
           "trace FRPs disjoint and exhaustive (paper Section 4)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.isCompensation())
        continue;
      for (const Bypass &BP : findBypasses(F, B)) {
        if (BP.Lookaheads.empty()) {
          LintFinding Fd = makeFinding(
              DiagCode::LintFRP, name(), B, static_cast<int>(BP.BranchIdx),
              "branch to compensation block @" + BP.Comp->getName() +
                  " is not guarded by a recognizable wired-or FRP "
                  "accumulation",
              DiagSeverity::Warning);
          RegionPQS BQ(F, B);
          BDD::NodeRef V = BQ.bdd().mkAnd(
              BQ.takenExpr(BP.BranchIdx),
              dispatchCond(BQ, B, BP.BranchIdx, B.size()));
          Fd.Witness =
              buildWitness(F, B, BQ, V, LintWitness::Expect::BranchTaken);
          Fd.Witness->AnchorOp = B.ops()[BP.BranchIdx].getId();
          Out.push_back(std::move(Fd));
          continue;
        }
        Block Path = makePathBlock(B, BP);
        RegionPQS PQS(F, Path);
        BDD &Mgr = PQS.bdd();
        BDD::NodeRef Reach =
            dispatchCond(PQS, Path, BP.BranchIdx, Path.size());

        // Soundness: everything the compensation block does must be
        // justified by the bypass -- the OR of the re-executed branch
        // conditions may not exceed the bypass predicate. (The converse
        // direction, completeness, is compensation-completeness's job.)
        BDD::NodeRef OffTaken = PQS.takenExpr(BP.BranchIdx);
        BDD::NodeRef Exits = compExitCond(PQS, Path, BP);
        if (Mgr.isValid(OffTaken) && Mgr.isValid(Exits) &&
            !PQS.implies(Exits, OffTaken)) {
          LintFinding Fd = makeFinding(
              DiagCode::LintFRP, name(), B, static_cast<int>(BP.BranchIdx),
              "off-trace FRP is not the OR of the collapsed branch "
              "conditions: compensation block @" + BP.Comp->getName() +
                  " can take an exit on executions that do not satisfy "
                  "the bypass predicate " + BP.OffPred.str());
          // An execution where some re-executed exit fires while the
          // bypass does not take; replay on the path function, where the
          // compensation code is reachable without the bypass.
          BDD::NodeRef V =
              Mgr.mkAnd(Mgr.mkAnd(Exits, Mgr.mkNot(OffTaken)), Reach);
          Fd.Witness = buildWitness(F, Path, PQS, V,
                                    LintWitness::Expect::ExitNotBypass);
          LintWitness &W = *Fd.Witness;
          W.AnchorOp = B.ops()[BP.BranchIdx].getId();
          for (size_t K = BP.BranchIdx + 1; K < Path.size(); ++K)
            if (Path.ops()[K].isBranch() ||
                Path.ops()[K].getOpcode() == Opcode::Halt)
              W.AuxOps.push_back(Path.ops()[K].getId());
          W.UsePathFunction = true;
          W.PathBlock = B.getName();
          W.PathBranchIdx = static_cast<int>(BP.BranchIdx);
          W.PathComp = BP.Comp->getName();
          Out.push_back(std::move(Fd));
        }

        // Disjointness and exhaustiveness of the on-/off-trace pair at the
        // bypass point (wired-and vs wired-or twins of the lookaheads).
        if (!BP.OnPred.isValid())
          continue;
        BDD::NodeRef OnE = PQS.predValueAfter(BP.BranchIdx, BP.OnPred);
        BDD::NodeRef OffE = PQS.predValueAfter(BP.BranchIdx, BP.OffPred);
        if (Mgr.isValid(OnE) && Mgr.isValid(OffE) &&
            !PQS.disjoint(OnE, OffE)) {
          LintFinding Fd = makeFinding(
              DiagCode::LintFRP, name(), B, static_cast<int>(BP.BranchIdx),
              "on-trace FRP " + BP.OnPred.str() + " and off-trace FRP " +
                  BP.OffPred.str() + " are not disjoint at the bypass");
          BDD::NodeRef V = Mgr.mkAnd(Mgr.mkAnd(OnE, OffE), Reach);
          Fd.Witness =
              buildWitness(F, Path, PQS, V, LintWitness::Expect::PredValues);
          Fd.Witness->AnchorOp = B.ops()[BP.BranchIdx].getId();
          Fd.Witness->WatchRegs = {BP.OnPred, BP.OffPred};
          Fd.Witness->ExpectVals = {1, 1};
          Out.push_back(std::move(Fd));
        }
        BDD::NodeRef Root = PQS.guardExpr(BP.FirstLookahead);
        BDD::NodeRef Either = Mgr.mkOr(OnE, OffE);
        if (Mgr.isValid(Root) && Mgr.isValid(Either) &&
            !PQS.implies(Root, Either)) {
          LintFinding Fd = makeFinding(
              DiagCode::LintFRP, name(), B, static_cast<int>(BP.BranchIdx),
              "on-trace FRP " + BP.OnPred.str() + " and off-trace FRP " +
                  BP.OffPred.str() +
                  " do not exhaust the root predicate at the bypass");
          BDD::NodeRef V = Mgr.mkAnd(
              Mgr.mkAnd(Root, Mgr.mkAnd(Mgr.mkNot(OnE), Mgr.mkNot(OffE))),
              Reach);
          Fd.Witness =
              buildWitness(F, Path, PQS, V, LintWitness::Expect::PredValues);
          Fd.Witness->AnchorOp = B.ops()[BP.BranchIdx].getId();
          Fd.Witness->WatchRegs = {BP.OnPred, BP.OffPred};
          Fd.Witness->ExpectVals = {0, 0};
          Out.push_back(std::move(Fd));
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Check 2: use-before-def
//===----------------------------------------------------------------------===//

class UseBeforeDefPass : public LintPass {
public:
  const char *name() const override { return "use-before-def"; }
  const char *description() const override {
    return "a register read under predicate p is defined wherever p can "
           "be true (predicate-aware dataflow, [JS96])";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.empty())
        continue;
      RegionPQS PQS(F, B);
      BDD &Mgr = PQS.bdd();
      for (size_t I = 0; I < B.size(); ++I) {
        const Operation &Op = B.ops()[I];
        std::vector<Reg> Reads;
        if (!Op.getGuard().isTruePred())
          Reads.push_back(Op.getGuard());
        for (const Operand &S : Op.srcs())
          if (S.isReg() && !S.getReg().isTruePred())
            Reads.push_back(S.getReg());
        for (Reg R : Reads) {
          // Registers whose definitions can reach the block entry (from
          // other blocks or around a loop) and registers never defined
          // before the use (function inputs by convention) are exempt;
          // the check targets *partial* in-block definitions whose
          // predicate is weaker than the use's.
          if (Ctx.defReachesEntry(R, L))
            continue;
          BDD::NodeRef DefCond = BDD::False;
          bool AnyDef = false;
          for (size_t J = 0; J < I; ++J)
            if (B.ops()[J].definesReg(R)) {
              AnyDef = true;
              DefCond =
                  Mgr.mkOr(DefCond, writeCond(PQS, B.ops()[J], J, R));
            }
          if (!AnyDef)
            continue;
          BDD::NodeRef UseE = PQS.guardExpr(I);
          if (!Mgr.isValid(UseE) || !Mgr.isValid(DefCond))
            continue;
          if (!PQS.implies(UseE, DefCond)) {
            LintFinding Fd = makeFinding(
                DiagCode::LintUseBeforeDef, name(), B, static_cast<int>(I),
                "register " + R.str() +
                    " is read under a predicate that can be true where no "
                    "prior definition of it has executed",
                DiagSeverity::Error);
            BDD::NodeRef V =
                Mgr.mkAnd(Mgr.mkAnd(UseE, Mgr.mkNot(DefCond)),
                          dispatchCond(PQS, B, I, B.size()));
            Fd.Witness = buildWitness(F, B, PQS, V,
                                      LintWitness::Expect::UseWithoutDef);
            Fd.Witness->AnchorOp = Op.getId();
            // Wired cmpps legitimately write under a false guard; only
            // plain prior definitions count as "a definition executed".
            for (size_t J = 0; J < I; ++J)
              if (!B.ops()[J].isCmpp() && B.ops()[J].definesReg(R))
                Fd.Witness->AuxOps.push_back(B.ops()[J].getId());
            Out.push_back(std::move(Fd));
          }
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Check 3: speculation-safety
//===----------------------------------------------------------------------===//

class SpeculationSafetyPass : public LintPass {
public:
  const char *name() const override { return "speculation-safety"; }
  const char *description() const override {
    return "unguarded operations in the bypass window are side-effect "
           "free and clobber nothing the bypass path needs (Section 6)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    Liveness &LV = Ctx.liveness();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.isCompensation())
        continue;
      for (const Bypass &BP : findBypasses(F, B)) {
        if (BP.Lookaheads.empty())
          continue;
        const RegSet &BlockLive = LV.liveIn(B.getId());
        // The off-trace path PQS, built on the first finding: witnesses
        // need the bypass-taken condition and the compensation guards.
        Block Path = makePathBlock(B, BP);
        std::unique_ptr<RegionPQS> PPQ;
        auto PathPQS = [&]() -> RegionPQS & {
          if (!PPQ)
            PPQ.reset(new RegionPQS(F, Path));
          return *PPQ;
        };
        // The bypass window: between the first lookahead (where the
        // collapsed branches conceptually begin) and the bypass branch.
        for (size_t I = BP.FirstLookahead; I < BP.BranchIdx; ++I) {
          const Operation &Op = B.ops()[I];
          if (Op.isCmpp() || Op.isControl() || Op.getOpcode() == Opcode::Pbr)
            continue;
          if (!Op.getGuard().isTruePred())
            continue; // still guarded: not (or faithfully) promoted
          if (Op.hasSideEffects()) {
            LintFinding Fd = makeFinding(
                DiagCode::LintSpeculation, name(), B, static_cast<int>(I),
                "side-effecting operation executes unguarded inside the "
                "bypass window; it also runs on executions that take the "
                "bypass to @" + BP.Comp->getName());
            RegionPQS &Q = PathPQS();
            BDD::NodeRef V = Q.bdd().mkAnd(
                Q.takenExpr(BP.BranchIdx),
                dispatchCond(Q, Path, BP.BranchIdx, Path.size()));
            Fd.Witness = buildWitness(F, Path, Q, V,
                                      LintWitness::Expect::BranchTaken);
            Fd.Witness->AnchorOp = B.ops()[BP.BranchIdx].getId();
            Fd.Witness->Path.push_back(BP.Comp->getName());
            Out.push_back(std::move(Fd));
            continue;
          }
          for (const DefSlot &D : Op.defs()) {
            Reg R = D.R;
            if (!compNeedsValue(F, LV, *BP.Comp, R))
              continue; // the bypass path never reads it
            if (Op.readsReg(R))
              continue; // self-update: the path sees the updated value,
                        // exactly as the re-executed compares expect
            bool HadValue = BlockLive.count(R) != 0;
            for (size_t J = 0; J < I && !HadValue; ++J)
              if (B.ops()[J].definesReg(R))
                HadValue = true;
            if (HadValue) {
              LintFinding Fd = makeFinding(
                  DiagCode::LintSpeculation, name(), B,
                  static_cast<int>(I),
                  "promoted operation overwrites " + R.str() +
                      ", whose previous value is still live on the bypass "
                      "path through @" + BP.Comp->getName());
              RegionPQS &Q = PathPQS();
              BDD &QM = Q.bdd();
              // First off-trace reader of R, if any: witness an execution
              // where the bypass takes, the clobber ran first, and the
              // compensation code reads the clobbered register.
              int Reader = -1;
              for (size_t K = 0; K < BP.Comp->size(); ++K)
                if (BP.Comp->ops()[K].getOpcode() != Opcode::Trap &&
                    BP.Comp->ops()[K].readsReg(R)) {
                  Reader = static_cast<int>(K);
                  break;
                }
              if (Reader >= 0) {
                size_t PathIdx =
                    BP.BranchIdx + 1 + static_cast<size_t>(Reader);
                BDD::NodeRef V = QM.mkAnd(
                    QM.mkAnd(Q.takenExpr(BP.BranchIdx),
                             Q.guardExpr(PathIdx)),
                    dispatchCond(Q, Path, PathIdx, BP.BranchIdx));
                Fd.Witness = buildWitness(
                    F, Path, Q, V, LintWitness::Expect::ClobberThenUse);
                Fd.Witness->AnchorOp = BP.Comp->ops()[Reader].getId();
                Fd.Witness->AuxOps.push_back(Op.getId());
              } else {
                BDD::NodeRef V = QM.mkAnd(
                    Q.takenExpr(BP.BranchIdx),
                    dispatchCond(Q, Path, BP.BranchIdx, Path.size()));
                Fd.Witness = buildWitness(F, Path, Q, V,
                                          LintWitness::Expect::BranchTaken);
                Fd.Witness->AnchorOp = B.ops()[BP.BranchIdx].getId();
              }
              Fd.Witness->Path.push_back(BP.Comp->getName());
              Out.push_back(std::move(Fd));
            }
          }
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Check 4: compensation-completeness
//===----------------------------------------------------------------------===//

class CompensationCompletenessPass : public LintPass {
public:
  const char *name() const override { return "compensation-completeness"; }
  const char *description() const override {
    return "every exit collapsed into a bypass is re-established off-"
           "trace, with every register it needs defined (Section 5)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    Liveness &LV = Ctx.liveness();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.isCompensation())
        continue;
      for (const Bypass &BP : findBypasses(F, B)) {
        if (BP.Lookaheads.empty())
          continue;
        Block Path = makePathBlock(B, BP);
        RegionPQS PQS(F, Path);
        BDD &Mgr = PQS.bdd();
        BDD::NodeRef OffTaken = PQS.takenExpr(BP.BranchIdx);
        BDD::NodeRef Exits = compExitCond(PQS, Path, BP);

        // Completeness: whenever the bypass is taken, some re-executed
        // exit must fire; otherwise the off-trace path falls through to
        // the trailing trap (the planted compensation-skip defect).
        if (Mgr.isValid(OffTaken) && Mgr.isValid(Exits) &&
            !PQS.implies(OffTaken, Exits)) {
          int Anchor = BP.Comp->empty()
                           ? -1
                           : static_cast<int>(BP.Comp->size()) - 1;
          LintFinding Fd = makeFinding(
              DiagCode::LintCompensation, name(), *BP.Comp, Anchor,
              "bypass predicate " + BP.OffPred.str() +
                  " can be true with no re-established exit taken: the "
                  "off-trace path loses the branch closure moved on its "
                  "behalf");
          // An execution taking the bypass with every re-executed exit
          // dead falls through to the compensation block's trailing trap.
          BDD::NodeRef V = Mgr.mkAnd(
              Mgr.mkAnd(OffTaken, Mgr.mkNot(Exits)),
              dispatchCond(PQS, Path, BP.BranchIdx, Path.size()));
          Fd.Witness =
              buildWitness(F, Path, PQS, V, LintWitness::Expect::Trapped);
          Fd.Witness->AnchorOp = Fd.Op;
          Fd.Witness->Path.push_back(BP.Comp->getName());
          Out.push_back(std::move(Fd));
        }

        // Definition completeness: every register live at an off-trace
        // exit must be defined along the off-trace path under the exit's
        // condition (or be available at the region entry already).
        for (size_t K = BP.BranchIdx + 1; K < Path.size(); ++K) {
          const Operation &Op = Path.ops()[K];
          if (!Op.isBranch() && Op.getOpcode() != Opcode::Halt)
            continue;
          BDD::NodeRef ExitE =
              Op.isBranch() ? PQS.takenExpr(K) : PQS.execExpr(K);
          if (!Mgr.isValid(ExitE))
            continue;
          RegSet Need = LV.liveAtExit(F, Path, K);
          int CompIdx = static_cast<int>(K - (BP.BranchIdx + 1));
          for (Reg R : sorted(Need)) {
            // Same conventions as use-before-def: the true predicate is
            // always available, registers defined in predecessor blocks
            // (or around a loop) arrive at the region entry, and a
            // register with no definition on the path at all is a region
            // input. The target is a *partial* re-establishment -- a def
            // present on the path but under too weak a predicate.
            if (R.isTruePred() || Ctx.defReachesEntry(R, L))
              continue;
            BDD::NodeRef DefCond = BDD::False;
            bool AnyDef = false;
            for (size_t J = 0; J < K; ++J)
              if (Path.ops()[J].definesReg(R)) {
                AnyDef = true;
                DefCond =
                    Mgr.mkOr(DefCond, writeCond(PQS, Path.ops()[J], J, R));
              }
            if (!AnyDef || !Mgr.isValid(DefCond))
              continue;
            if (!PQS.implies(ExitE, DefCond)) {
              LintFinding Fd = makeFinding(
                  DiagCode::LintCompensation, name(), *BP.Comp, CompIdx,
                  "register " + R.str() +
                      " is live at this off-trace exit but is not "
                      "re-established on the off-trace path");
              BDD::NodeRef V = Mgr.mkAnd(
                  Mgr.mkAnd(ExitE, Mgr.mkNot(DefCond)),
                  Mgr.mkAnd(PQS.takenExpr(BP.BranchIdx),
                            dispatchCond(PQS, Path, K, BP.BranchIdx)));
              Fd.Witness = buildWitness(F, Path, PQS, V,
                                        LintWitness::Expect::UseWithoutDef);
              Fd.Witness->AnchorOp = Path.ops()[K].getId();
              for (size_t J = 0; J < K; ++J)
                if (!Path.ops()[J].isCmpp() && Path.ops()[J].definesReg(R))
                  Fd.Witness->AuxOps.push_back(Path.ops()[J].getId());
              Fd.Witness->Path.push_back(BP.Comp->getName());
              Out.push_back(std::move(Fd));
            }
          }
        }
      }
    }
  }

private:
  /// Deterministic iteration order over an unordered register set.
  static std::vector<Reg> sorted(const RegSet &S) {
    std::vector<Reg> V(S.begin(), S.end());
    std::sort(V.begin(), V.end());
    return V;
  }
};

//===----------------------------------------------------------------------===//
// Check 5: schedule-legality
//===----------------------------------------------------------------------===//

class ScheduleLegalityPass : public LintPass {
public:
  const char *name() const override { return "schedule-legality"; }
  const char *description() const override {
    return "emitted schedules respect dependence latencies and per-unit "
           "resource limits of the machine model (Section 7)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    Liveness &LV = Ctx.liveness();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.empty())
        continue;
      RegionPQS PQS(F, B);
      for (const MachineDesc &MD : Ctx.options().Machines) {
        DepGraph DG(F, B, MD, PQS, LV);
        Schedule S = scheduleBlock(B, DG, MD);
        validate(B, DG, MD, S, Out);
      }
      for (const InjectedSchedule &Inj : Ctx.options().Schedules) {
        if (Inj.BlockName != B.getName())
          continue;
        const MachineDesc *MD = nullptr;
        static const std::vector<MachineDesc> Models =
            MachineDesc::paperModels();
        for (const MachineDesc &M : Models)
          if (M.getName() == Inj.MachineName)
            MD = &M;
        if (!MD) {
          LintFinding Fd = makeFinding(
              DiagCode::LintSchedule, name(), B, -1,
              "pinned schedule names unknown machine '" + Inj.MachineName +
                  "'");
          Fd.Witness = directiveWitness();
          Out.push_back(std::move(Fd));
          continue;
        }
        if (Inj.Cycles.size() != B.size()) {
          LintFinding Fd = makeFinding(
              DiagCode::LintSchedule, name(), B, -1,
              "pinned schedule has " + std::to_string(Inj.Cycles.size()) +
                  " cycles for a block of " + std::to_string(B.size()) +
                  " operations");
          Fd.Witness = directiveWitness();
          Out.push_back(std::move(Fd));
          continue;
        }
        DepGraph DG(F, B, *MD, PQS, LV);
        Schedule S(Inj.Cycles, B, *MD);
        validate(B, DG, *MD, S, Out);
      }
    }
  }

private:
  static const char *unitName(UnitKind K) {
    switch (K) {
    case UnitKind::Int:
      return "integer";
    case UnitKind::Float:
      return "float";
    case UnitKind::Mem:
      return "memory";
    case UnitKind::Branch:
      return "branch";
    }
    return "unknown";
  }

  /// A solved ScheduleRecount witness carrying the full schedule under
  /// test; callers fill the specific latency or occupancy claim.
  static std::shared_ptr<LintWitness> recountWitness(const Block &B,
                                                     const Schedule &S) {
    auto W = std::make_shared<LintWitness>();
    W->Kind = LintWitness::Expect::ScheduleRecount;
    W->Solved = true;
    W->SchedBlock = B.getName();
    W->Path.push_back(B.getName());
    for (size_t I = 0; I < S.size(); ++I)
      W->SchedCycles.push_back(S.cycleOf(I));
    return W;
  }

  /// For findings about a malformed pinned-schedule directive: there is no
  /// schedule to recount, so the witness stays honestly unsolved.
  static std::shared_ptr<LintWitness> directiveWitness() {
    auto W = std::make_shared<LintWitness>();
    W->Kind = LintWitness::Expect::ScheduleRecount;
    W->UnsolvedWhy =
        "malformed pinned-schedule directive; nothing to recount";
    return W;
  }

  void validate(const Block &B, const DepGraph &DG, const MachineDesc &MD,
                const Schedule &S, std::vector<LintFinding> &Out) {
    for (const DepEdge &E : DG.edges())
      if (S.cycleOf(E.To) < S.cycleOf(E.From) + E.Latency) {
        LintFinding Fd = makeFinding(
            DiagCode::LintSchedule, name(), B, static_cast<int>(E.To),
            "operation issues in cycle " + std::to_string(S.cycleOf(E.To)) +
                " before its " + depKindName(E.Kind) + " dependence on op %" +
                std::to_string(B.ops()[E.From].getId()) + " (cycle " +
                std::to_string(S.cycleOf(E.From)) + " + latency " +
                std::to_string(E.Latency) + ") is satisfied on machine '" +
                MD.getName() + "'");
        auto W = recountWitness(B, S);
        W->SchedFrom = static_cast<int>(E.From);
        W->SchedTo = static_cast<int>(E.To);
        W->SchedLatency = E.Latency;
        Fd.Witness = std::move(W);
        Out.push_back(std::move(Fd));
      }
    int MaxCycle = 0;
    for (size_t I = 0; I < S.size(); ++I)
      MaxCycle = std::max(MaxCycle, S.cycleOf(I));
    for (int C = 0; C <= MaxCycle; ++C) {
      int PerKind[4] = {0, 0, 0, 0};
      int Total = 0;
      for (size_t I = 0; I < S.size(); ++I) {
        if (S.cycleOf(I) != C)
          continue;
        ++Total;
        UnitKind K = opcodeUnit(B.ops()[I].getOpcode());
        ++PerKind[static_cast<unsigned>(K)];
        if (MD.isSequential()) {
          if (Total == 2) {
            LintFinding Fd = makeFinding(
                DiagCode::LintSchedule, name(), B, static_cast<int>(I),
                "sequential machine issues more than one operation in "
                "cycle " + std::to_string(C));
            auto W = recountWitness(B, S);
            W->SchedCycle = C;
            W->SchedUnit = -1;
            W->SchedCap = 1;
            Fd.Witness = std::move(W);
            Out.push_back(std::move(Fd));
          }
          continue;
        }
        int Cap = MD.unitCount(K);
        if (PerKind[static_cast<unsigned>(K)] == Cap + 1) {
          LintFinding Fd = makeFinding(
              DiagCode::LintSchedule, name(), B, static_cast<int>(I),
              std::string("issue slot oversubscribed: more than ") +
                  std::to_string(Cap) + " " + unitName(K) +
                  "-unit operations in cycle " + std::to_string(C) +
                  " on machine '" + MD.getName() + "'");
          auto W = recountWitness(B, S);
          W->SchedCycle = C;
          W->SchedUnit = static_cast<int>(K);
          W->SchedCap = Cap;
          Fd.Witness = std::move(W);
          Out.push_back(std::move(Fd));
        }
      }
    }
  }
};

} // namespace

void cpr::addBuiltinLintPasses(LintDriver &D) {
  D.addPass(std::make_unique<FRPConsistencyPass>());
  D.addPass(std::make_unique<UseBeforeDefPass>());
  D.addPass(std::make_unique<SpeculationSafetyPass>());
  D.addPass(std::make_unique<CompensationCompletenessPass>());
  D.addPass(std::make_unique<ScheduleLegalityPass>());
  D.addPass(lint_detail::makeDeadUnderPredicatePass());
  D.addPass(lint_detail::makeRedundantCompensationPass());
  D.addPass(lint_detail::makeUninitReadPass());
  D.addPass(lint_detail::makeResourceOversubscriptionPass());
}

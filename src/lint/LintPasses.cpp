//===- lint/LintPasses.cpp - The five built-in checks -----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The built-in checks (docs/LINT.md). Each encodes one of the paper's
/// structural invariants as an exact BDD proof over the PQS predicate
/// expressions of the block under inspection; on BDD node-budget
/// exhaustion a check silently skips the obligation it cannot decide
/// (silence is not a proof, findings are).
///
/// The CPR-specific checks recognize transformed structure post hoc: a
/// *bypass* is a branch whose resolved target is a compensation block, and
/// its *lookaheads* are the earlier cmpps accumulating the branch predicate
/// through wired-or actions (the paper's fully-resolved off-trace
/// predicate), with the wired-and twin forming the on-trace FRP. To relate
/// the lookahead conditions with the original compares re-executed in the
/// compensation block, checks build a synthetic *path block* -- the
/// on-trace prefix up to the bypass followed by the compensation code,
/// which is exactly the instruction sequence an off-trace execution
/// retires -- and run PQS over it, so value numbering assigns the same
/// atom to a lookahead and to the re-executed original compare whenever
/// their sources are provably the same values.
///
//===----------------------------------------------------------------------===//

#include "lint/Lint.h"

#include "analysis/CFG.h"
#include "analysis/DepGraph.h"
#include "analysis/Liveness.h"
#include "analysis/PQS.h"
#include "ir/CmppAction.h"
#include "sched/ListScheduler.h"

#include <string>
#include <vector>

using namespace cpr;

namespace {

//===----------------------------------------------------------------------===//
// CPR structure recognition
//===----------------------------------------------------------------------===//

/// One recognized bypass branch of a CPR-transformed block.
struct Bypass {
  size_t BranchIdx;        ///< index of the bypass branch in its block
  const Block *Comp;       ///< the compensation block it targets
  Reg OffPred;             ///< the bypass branch predicate (off-trace FRP)
  Reg OnPred;              ///< the wired-and twin (on-trace FRP); may be
                           ///< invalid when the structure is unrecognized
  std::vector<size_t> Lookaheads; ///< cmpps accumulating OffPred wired-or
  size_t FirstLookahead = 0;
};

std::vector<Bypass> findBypasses(const Function &F, const Block &B) {
  std::vector<Bypass> Out;
  const std::vector<Operation> &Ops = B.ops();
  for (size_t I = 0; I < Ops.size(); ++I) {
    if (!Ops[I].isBranch())
      continue;
    BlockId Target = resolveBranchTarget(B, I);
    const Block *Comp = Target == InvalidBlockId ? nullptr : F.blockById(Target);
    if (!Comp || !Comp->isCompensation())
      continue;
    Bypass BP;
    BP.BranchIdx = I;
    BP.Comp = Comp;
    BP.OffPred = Ops[I].branchPred();
    BP.OnPred = Reg();
    bool OnConsistent = true;
    for (size_t J = 0; J < I; ++J) {
      if (!Ops[J].isCmpp())
        continue;
      bool Accumulates = false;
      for (const DefSlot &D : Ops[J].defs())
        if (D.R == BP.OffPred && isWiredOrAction(D.Act))
          Accumulates = true;
      if (!Accumulates)
        continue;
      BP.Lookaheads.push_back(J);
      for (const DefSlot &D : Ops[J].defs())
        if (isWiredAndAction(D.Act)) {
          if (!BP.OnPred.isValid())
            BP.OnPred = D.R;
          else if (BP.OnPred != D.R)
            OnConsistent = false;
        }
    }
    if (!OnConsistent)
      BP.OnPred = Reg();
    if (!BP.Lookaheads.empty())
      BP.FirstLookahead = BP.Lookaheads.front();
    Out.push_back(std::move(BP));
  }
  return Out;
}

/// The instruction sequence an off-trace execution retires: the on-trace
/// prefix up to and including the bypass, then the compensation code.
Block makePathBlock(const Block &B, const Bypass &BP) {
  Block Path(B.getId(), B.getName() + ".offtrace-path");
  for (size_t I = 0; I <= BP.BranchIdx; ++I)
    Path.ops().push_back(B.ops()[I]);
  for (const Operation &Op : BP.Comp->ops())
    Path.ops().push_back(Op);
  return Path;
}

LintFinding makeFinding(DiagCode Code, const char *Check, const Block &B,
                        int OpIdx, std::string Message,
                        DiagSeverity Sev = DiagSeverity::Error) {
  LintFinding F;
  F.Severity = Sev;
  F.Code = Code;
  F.Check = Check;
  F.Block = B.getName();
  if (OpIdx >= 0 && static_cast<size_t>(OpIdx) < B.size()) {
    F.Op = B.ops()[OpIdx].getId();
    F.OpIndex = OpIdx;
  }
  F.Message = std::move(Message);
  return F;
}

/// OR of the conditions under which the exits of the compensation portion
/// of \p Path (indices > BP.BranchIdx) leave the program or the block:
/// branch taken conditions plus halt execution conditions. Trap does not
/// count -- reaching it means the off-trace path lost an exit.
BDD::NodeRef compExitCond(RegionPQS &PQS, const Block &Path,
                          const Bypass &BP) {
  BDD::NodeRef Cond = BDD::False;
  for (size_t K = BP.BranchIdx + 1; K < Path.size(); ++K) {
    const Operation &Op = Path.ops()[K];
    BDD::NodeRef E = BDD::Invalid;
    if (Op.isBranch())
      E = PQS.takenExpr(K);
    else if (Op.getOpcode() == Opcode::Halt)
      E = PQS.execExpr(K);
    else
      continue;
    Cond = PQS.bdd().mkOr(Cond, E);
    if (!PQS.bdd().isValid(Cond))
      return BDD::Invalid;
  }
  return Cond;
}

/// True when the bypass path through \p Comp can read the value register
/// \p R holds at the bypass point. Sharper than liveIn(Comp): the trailing
/// trap keeps every observable register live in the dataflow sense, but
/// frp-consistency separately proves the trap unreachable, so a value
/// only matters off-trace if a compensation op reads it, an exit leaves
/// with it live, or a halt makes it observable first.
bool compNeedsValue(const Function &F, Liveness &LV, const Block &Comp,
                    Reg R) {
  for (size_t K = 0; K < Comp.size(); ++K) {
    const Operation &Op = Comp.ops()[K];
    if (Op.getOpcode() == Opcode::Trap)
      continue;
    if (Op.readsReg(R))
      return true;
    if (Op.getOpcode() == Opcode::Halt) {
      for (Reg Obs : F.observableRegs())
        if (Obs == R)
          return true;
      continue;
    }
    if (Op.isBranch()) {
      BlockId T = resolveBranchTarget(Comp, K);
      if (T == InvalidBlockId || !F.blockById(T) || LV.liveIn(T).count(R))
        return true; // unknown target: stay conservative
      continue;      // fall-through keeps scanning
    }
    // Only an unguarded redefinition kills the incoming value on every
    // remaining off-trace path.
    if (Op.getGuard().isTruePred() && Op.definesReg(R))
      return false;
  }
  return false;
}

/// Condition under which the definition slots of \p Op write register
/// \p R, as an expression over \p PQS. Wired cmpp targets are
/// conservatively treated as not writing (their accumulators are
/// mov-initialized in well-formed code, so this only under-approximates).
BDD::NodeRef writeCond(RegionPQS &PQS, const Operation &Op, size_t OpIdx,
                       Reg R) {
  BDD::NodeRef Cond = BDD::False;
  for (const DefSlot &D : Op.defs()) {
    if (D.R != R)
      continue;
    BDD::NodeRef E;
    if (D.Act == CmppAction::UN || D.Act == CmppAction::UC)
      E = BDD::True; // unconditional cmpp targets write under a false guard
    else if (isWiredAction(D.Act))
      continue;
    else
      E = PQS.guardExpr(OpIdx);
    Cond = PQS.bdd().mkOr(Cond, E);
  }
  return Cond;
}

//===----------------------------------------------------------------------===//
// Check 1: frp-consistency
//===----------------------------------------------------------------------===//

class FRPConsistencyPass : public LintPass {
public:
  const char *name() const override { return "frp-consistency"; }
  const char *description() const override {
    return "bypass FRP covers the re-executed branch conditions; on-/off-"
           "trace FRPs disjoint and exhaustive (paper Section 4)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.isCompensation())
        continue;
      for (const Bypass &BP : findBypasses(F, B)) {
        if (BP.Lookaheads.empty()) {
          Out.push_back(makeFinding(
              DiagCode::LintFRP, name(), B, static_cast<int>(BP.BranchIdx),
              "branch to compensation block @" + BP.Comp->getName() +
                  " is not guarded by a recognizable wired-or FRP "
                  "accumulation",
              DiagSeverity::Warning));
          continue;
        }
        Block Path = makePathBlock(B, BP);
        RegionPQS PQS(F, Path);
        BDD &Mgr = PQS.bdd();

        // Soundness: everything the compensation block does must be
        // justified by the bypass -- the OR of the re-executed branch
        // conditions may not exceed the bypass predicate. (The converse
        // direction, completeness, is compensation-completeness's job.)
        BDD::NodeRef OffTaken = PQS.takenExpr(BP.BranchIdx);
        BDD::NodeRef Exits = compExitCond(PQS, Path, BP);
        if (Mgr.isValid(OffTaken) && Mgr.isValid(Exits) &&
            !PQS.implies(Exits, OffTaken))
          Out.push_back(makeFinding(
              DiagCode::LintFRP, name(), B, static_cast<int>(BP.BranchIdx),
              "off-trace FRP is not the OR of the collapsed branch "
              "conditions: compensation block @" + BP.Comp->getName() +
                  " can take an exit on executions that do not satisfy "
                  "the bypass predicate " + BP.OffPred.str()));

        // Disjointness and exhaustiveness of the on-/off-trace pair at the
        // bypass point (wired-and vs wired-or twins of the lookaheads).
        if (!BP.OnPred.isValid())
          continue;
        BDD::NodeRef OnE = PQS.predValueAfter(BP.BranchIdx, BP.OnPred);
        BDD::NodeRef OffE = PQS.predValueAfter(BP.BranchIdx, BP.OffPred);
        if (Mgr.isValid(OnE) && Mgr.isValid(OffE) && !PQS.disjoint(OnE, OffE))
          Out.push_back(makeFinding(
              DiagCode::LintFRP, name(), B, static_cast<int>(BP.BranchIdx),
              "on-trace FRP " + BP.OnPred.str() + " and off-trace FRP " +
                  BP.OffPred.str() + " are not disjoint at the bypass"));
        BDD::NodeRef Root = PQS.guardExpr(BP.FirstLookahead);
        BDD::NodeRef Either = Mgr.mkOr(OnE, OffE);
        if (Mgr.isValid(Root) && Mgr.isValid(Either) &&
            !PQS.implies(Root, Either))
          Out.push_back(makeFinding(
              DiagCode::LintFRP, name(), B, static_cast<int>(BP.BranchIdx),
              "on-trace FRP " + BP.OnPred.str() + " and off-trace FRP " +
                  BP.OffPred.str() +
                  " do not exhaust the root predicate at the bypass"));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Check 2: use-before-def
//===----------------------------------------------------------------------===//

class UseBeforeDefPass : public LintPass {
public:
  const char *name() const override { return "use-before-def"; }
  const char *description() const override {
    return "a register read under predicate p is defined wherever p can "
           "be true (predicate-aware dataflow, [JS96])";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.empty())
        continue;
      RegionPQS PQS(F, B);
      BDD &Mgr = PQS.bdd();
      for (size_t I = 0; I < B.size(); ++I) {
        const Operation &Op = B.ops()[I];
        std::vector<Reg> Reads;
        if (!Op.getGuard().isTruePred())
          Reads.push_back(Op.getGuard());
        for (const Operand &S : Op.srcs())
          if (S.isReg() && !S.getReg().isTruePred())
            Reads.push_back(S.getReg());
        for (Reg R : Reads) {
          // Registers whose definitions can reach the block entry (from
          // other blocks or around a loop) and registers never defined
          // before the use (function inputs by convention) are exempt;
          // the check targets *partial* in-block definitions whose
          // predicate is weaker than the use's.
          if (Ctx.defReachesEntry(R, L))
            continue;
          BDD::NodeRef DefCond = BDD::False;
          bool AnyDef = false;
          for (size_t J = 0; J < I; ++J)
            if (B.ops()[J].definesReg(R)) {
              AnyDef = true;
              DefCond =
                  Mgr.mkOr(DefCond, writeCond(PQS, B.ops()[J], J, R));
            }
          if (!AnyDef)
            continue;
          BDD::NodeRef UseE = PQS.guardExpr(I);
          if (!Mgr.isValid(UseE) || !Mgr.isValid(DefCond))
            continue;
          if (!PQS.implies(UseE, DefCond))
            Out.push_back(makeFinding(
                DiagCode::LintUseBeforeDef, name(), B, static_cast<int>(I),
                "register " + R.str() +
                    " is read under a predicate that can be true where no "
                    "prior definition of it has executed"));
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Check 3: speculation-safety
//===----------------------------------------------------------------------===//

class SpeculationSafetyPass : public LintPass {
public:
  const char *name() const override { return "speculation-safety"; }
  const char *description() const override {
    return "unguarded operations in the bypass window are side-effect "
           "free and clobber nothing the bypass path needs (Section 6)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    Liveness &LV = Ctx.liveness();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.isCompensation())
        continue;
      for (const Bypass &BP : findBypasses(F, B)) {
        if (BP.Lookaheads.empty())
          continue;
        const RegSet &BlockLive = LV.liveIn(B.getId());
        // The bypass window: between the first lookahead (where the
        // collapsed branches conceptually begin) and the bypass branch.
        for (size_t I = BP.FirstLookahead; I < BP.BranchIdx; ++I) {
          const Operation &Op = B.ops()[I];
          if (Op.isCmpp() || Op.isControl() || Op.getOpcode() == Opcode::Pbr)
            continue;
          if (!Op.getGuard().isTruePred())
            continue; // still guarded: not (or faithfully) promoted
          if (Op.hasSideEffects()) {
            Out.push_back(makeFinding(
                DiagCode::LintSpeculation, name(), B, static_cast<int>(I),
                "side-effecting operation executes unguarded inside the "
                "bypass window; it also runs on executions that take the "
                "bypass to @" + BP.Comp->getName()));
            continue;
          }
          for (const DefSlot &D : Op.defs()) {
            Reg R = D.R;
            if (!compNeedsValue(F, LV, *BP.Comp, R))
              continue; // the bypass path never reads it
            if (Op.readsReg(R))
              continue; // self-update: the path sees the updated value,
                        // exactly as the re-executed compares expect
            bool HadValue = BlockLive.count(R) != 0;
            for (size_t J = 0; J < I && !HadValue; ++J)
              if (B.ops()[J].definesReg(R))
                HadValue = true;
            if (HadValue)
              Out.push_back(makeFinding(
                  DiagCode::LintSpeculation, name(), B,
                  static_cast<int>(I),
                  "promoted operation overwrites " + R.str() +
                      ", whose previous value is still live on the bypass "
                      "path through @" + BP.Comp->getName()));
          }
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Check 4: compensation-completeness
//===----------------------------------------------------------------------===//

class CompensationCompletenessPass : public LintPass {
public:
  const char *name() const override { return "compensation-completeness"; }
  const char *description() const override {
    return "every exit collapsed into a bypass is re-established off-"
           "trace, with every register it needs defined (Section 5)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    Liveness &LV = Ctx.liveness();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.isCompensation())
        continue;
      for (const Bypass &BP : findBypasses(F, B)) {
        if (BP.Lookaheads.empty())
          continue;
        Block Path = makePathBlock(B, BP);
        RegionPQS PQS(F, Path);
        BDD &Mgr = PQS.bdd();
        BDD::NodeRef OffTaken = PQS.takenExpr(BP.BranchIdx);
        BDD::NodeRef Exits = compExitCond(PQS, Path, BP);

        // Completeness: whenever the bypass is taken, some re-executed
        // exit must fire; otherwise the off-trace path falls through to
        // the trailing trap (the planted compensation-skip defect).
        if (Mgr.isValid(OffTaken) && Mgr.isValid(Exits) &&
            !PQS.implies(OffTaken, Exits)) {
          int Anchor = BP.Comp->empty()
                           ? -1
                           : static_cast<int>(BP.Comp->size()) - 1;
          Out.push_back(makeFinding(
              DiagCode::LintCompensation, name(), *BP.Comp, Anchor,
              "bypass predicate " + BP.OffPred.str() +
                  " can be true with no re-established exit taken: the "
                  "off-trace path loses the branch closure moved on its "
                  "behalf"));
        }

        // Definition completeness: every register live at an off-trace
        // exit must be defined along the off-trace path under the exit's
        // condition (or be available at the region entry already).
        for (size_t K = BP.BranchIdx + 1; K < Path.size(); ++K) {
          const Operation &Op = Path.ops()[K];
          if (!Op.isBranch() && Op.getOpcode() != Opcode::Halt)
            continue;
          BDD::NodeRef ExitE =
              Op.isBranch() ? PQS.takenExpr(K) : PQS.execExpr(K);
          if (!Mgr.isValid(ExitE))
            continue;
          RegSet Need = LV.liveAtExit(F, Path, K);
          int CompIdx = static_cast<int>(K - (BP.BranchIdx + 1));
          for (Reg R : sorted(Need)) {
            // Same conventions as use-before-def: the true predicate is
            // always available, registers defined in predecessor blocks
            // (or around a loop) arrive at the region entry, and a
            // register with no definition on the path at all is a region
            // input. The target is a *partial* re-establishment -- a def
            // present on the path but under too weak a predicate.
            if (R.isTruePred() || Ctx.defReachesEntry(R, L))
              continue;
            BDD::NodeRef DefCond = BDD::False;
            bool AnyDef = false;
            for (size_t J = 0; J < K; ++J)
              if (Path.ops()[J].definesReg(R)) {
                AnyDef = true;
                DefCond =
                    Mgr.mkOr(DefCond, writeCond(PQS, Path.ops()[J], J, R));
              }
            if (!AnyDef || !Mgr.isValid(DefCond))
              continue;
            if (!PQS.implies(ExitE, DefCond))
              Out.push_back(makeFinding(
                  DiagCode::LintCompensation, name(), *BP.Comp, CompIdx,
                  "register " + R.str() +
                      " is live at this off-trace exit but is not "
                      "re-established on the off-trace path"));
          }
        }
      }
    }
  }

private:
  /// Deterministic iteration order over an unordered register set.
  static std::vector<Reg> sorted(const RegSet &S) {
    std::vector<Reg> V(S.begin(), S.end());
    std::sort(V.begin(), V.end());
    return V;
  }
};

//===----------------------------------------------------------------------===//
// Check 5: schedule-legality
//===----------------------------------------------------------------------===//

class ScheduleLegalityPass : public LintPass {
public:
  const char *name() const override { return "schedule-legality"; }
  const char *description() const override {
    return "emitted schedules respect dependence latencies and per-unit "
           "resource limits of the machine model (Section 7)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    Liveness &LV = Ctx.liveness();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.empty())
        continue;
      RegionPQS PQS(F, B);
      for (const MachineDesc &MD : Ctx.options().Machines) {
        DepGraph DG(F, B, MD, PQS, LV);
        Schedule S = scheduleBlock(B, DG, MD);
        validate(B, DG, MD, S, Out);
      }
      for (const InjectedSchedule &Inj : Ctx.options().Schedules) {
        if (Inj.BlockName != B.getName())
          continue;
        const MachineDesc *MD = nullptr;
        static const std::vector<MachineDesc> Models =
            MachineDesc::paperModels();
        for (const MachineDesc &M : Models)
          if (M.getName() == Inj.MachineName)
            MD = &M;
        if (!MD) {
          Out.push_back(makeFinding(
              DiagCode::LintSchedule, name(), B, -1,
              "pinned schedule names unknown machine '" + Inj.MachineName +
                  "'"));
          continue;
        }
        if (Inj.Cycles.size() != B.size()) {
          Out.push_back(makeFinding(
              DiagCode::LintSchedule, name(), B, -1,
              "pinned schedule has " + std::to_string(Inj.Cycles.size()) +
                  " cycles for a block of " + std::to_string(B.size()) +
                  " operations"));
          continue;
        }
        DepGraph DG(F, B, *MD, PQS, LV);
        Schedule S(Inj.Cycles, B, *MD);
        validate(B, DG, *MD, S, Out);
      }
    }
  }

private:
  static const char *unitName(UnitKind K) {
    switch (K) {
    case UnitKind::Int:
      return "integer";
    case UnitKind::Float:
      return "float";
    case UnitKind::Mem:
      return "memory";
    case UnitKind::Branch:
      return "branch";
    }
    return "unknown";
  }

  void validate(const Block &B, const DepGraph &DG, const MachineDesc &MD,
                const Schedule &S, std::vector<LintFinding> &Out) {
    for (const DepEdge &E : DG.edges())
      if (S.cycleOf(E.To) < S.cycleOf(E.From) + E.Latency)
        Out.push_back(makeFinding(
            DiagCode::LintSchedule, name(), B, static_cast<int>(E.To),
            "operation issues in cycle " + std::to_string(S.cycleOf(E.To)) +
                " before its " + depKindName(E.Kind) + " dependence on op %" +
                std::to_string(B.ops()[E.From].getId()) + " (cycle " +
                std::to_string(S.cycleOf(E.From)) + " + latency " +
                std::to_string(E.Latency) + ") is satisfied on machine '" +
                MD.getName() + "'"));
    int MaxCycle = 0;
    for (size_t I = 0; I < S.size(); ++I)
      MaxCycle = std::max(MaxCycle, S.cycleOf(I));
    for (int C = 0; C <= MaxCycle; ++C) {
      int PerKind[4] = {0, 0, 0, 0};
      int Total = 0;
      for (size_t I = 0; I < S.size(); ++I) {
        if (S.cycleOf(I) != C)
          continue;
        ++Total;
        UnitKind K = opcodeUnit(B.ops()[I].getOpcode());
        ++PerKind[static_cast<unsigned>(K)];
        if (MD.isSequential()) {
          if (Total == 2)
            Out.push_back(makeFinding(
                DiagCode::LintSchedule, name(), B, static_cast<int>(I),
                "sequential machine issues more than one operation in "
                "cycle " + std::to_string(C)));
          continue;
        }
        int Cap = MD.unitCount(K);
        if (PerKind[static_cast<unsigned>(K)] == Cap + 1)
          Out.push_back(makeFinding(
              DiagCode::LintSchedule, name(), B, static_cast<int>(I),
              std::string("issue slot oversubscribed: more than ") +
                  std::to_string(Cap) + " " + unitName(K) +
                  "-unit operations in cycle " + std::to_string(C) +
                  " on machine '" + MD.getName() + "'"));
      }
    }
  }
};

} // namespace

void cpr::addBuiltinLintPasses(LintDriver &D) {
  D.addPass(std::make_unique<FRPConsistencyPass>());
  D.addPass(std::make_unique<UseBeforeDefPass>());
  D.addPass(std::make_unique<SpeculationSafetyPass>());
  D.addPass(std::make_unique<CompensationCompletenessPass>());
  D.addPass(std::make_unique<ScheduleLegalityPass>());
}

//===- lint/Witness.h - Witness extraction and replay -----------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Witness production for cpr-lint v2 (docs/LINT.md). Every finding is a
/// BDD proof that some *violating condition* -- an expression over PQS
/// atoms -- is satisfiable. A witness turns that proof into evidence a
/// human (or the interpreter) can check:
///
///  1. satOne() extracts one satisfying assignment of the violating
///     condition, strengthened with the in-block reachability of the
///     finding's anchor (earlier side exits not taken);
///  2. a small symbolic evaluator maps each assigned compare atom back to
///     the live-in registers and memory cells its sources value-number to,
///     and interval constraint solving picks concrete initial values;
///  3. replay runs the function (or, for properties of the off-trace
///     instruction sequence that the on-trace control flow cannot reach,
///     a synthesized *path function*) under those inputs with OpWatch
///     instrumentation and checks the expectation the finding encodes --
///     a trap fires, a use executes with no prior definition, a clobbered
///     value reaches its off-trace reader, and so on.
///
/// Solving is best-effort and honest: a witness whose condition involves
/// opaque atoms (live-in state the region cannot see, BDD budget
/// fallbacks) or value flow beyond the evaluator's fragment is marked
/// unsolved with a reason, never guessed. On the golden fixture corpus
/// every finding's witness solves and replays to confirmation
/// (tests/lint/WitnessTest.cpp holds that bar).
///
//===----------------------------------------------------------------------===//

#ifndef LINT_WITNESS_H
#define LINT_WITNESS_H

#include "analysis/BDD.h"
#include "interp/Interpreter.h"
#include "ir/Function.h"
#include "support/JSON.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cpr {

class RegionPQS;

/// One atom of a witness's satisfying assignment, in the human-readable
/// form the PQS recorded ("lt(r11, 2)", "live-in p4").
struct WitnessAtomAssignment {
  std::string Atom;
  bool Value = false;
};

/// A finding's witness: the satisfying assignment, solved concrete inputs,
/// and the replay expectation that confirms the finding dynamically.
struct LintWitness {
  /// What a confirming replay must observe.
  enum class Expect {
    Trapped,          ///< the run ends at a trap (lost off-trace exit)
    BranchTaken,      ///< AnchorOp takes at least once
    BranchNeverTaken, ///< AnchorOp dispatches but never takes
    OpIneffective,    ///< AnchorOp dispatches but its guard never holds
    UseWithoutDef,    ///< AnchorOp effective; no AuxOp effective before it
    ClobberThenUse,   ///< AuxOps[0] effective strictly before AnchorOp
    ExitNotBypass,    ///< path function: AnchorOp (bypass) never takes,
                      ///< yet some AuxOp exit fires
    PredValues,       ///< WatchRegs sampled at AnchorOp equal ExpectVals
    RegUnchanged,     ///< WatchRegs[0] at AnchorOp == at AuxOps[0], and
                      ///< AnchorOp effective (the recomputation is a no-op)
    ScheduleRecount,  ///< no replay: recount the stored schedule occupancy
  };

  Expect Kind = Expect::Trapped;
  /// Concrete inputs were found; replay is meaningful.
  bool Solved = false;
  /// When !Solved: why (opaque atom, non-entry region, ...).
  std::string UnsolvedWhy;

  std::vector<WitnessAtomAssignment> Assignment;
  /// Block names the confirming execution traverses (region first).
  std::vector<std::string> Path;
  std::vector<RegBinding> InitRegs;
  /// (address, value) cells of the initial memory image.
  std::vector<std::pair<int64_t, int64_t>> InitMem;

  /// Replay anchors: ids of the operations the expectation talks about.
  OpId AnchorOp = InvalidOpId;
  std::vector<OpId> AuxOps;
  std::vector<Reg> WatchRegs;
  std::vector<int64_t> ExpectVals;

  /// Expect::ExitNotBypass replays a synthesized path function: block
  /// \c PathBlock's ops are replaced by its prefix through op index
  /// \c PathBranchIdx followed by the ops of compensation block
  /// \c PathComp -- the exact instruction sequence the finding's PQS
  /// reasoned over.
  bool UsePathFunction = false;
  std::string PathBlock;
  int PathBranchIdx = -1;
  std::string PathComp;

  /// Expect::ScheduleRecount payload: the full schedule under test plus
  /// the claim. SchedFrom >= 0 claims a latency violation
  /// (cycle(To) < cycle(From) + Latency); otherwise an occupancy claim
  /// (more than SchedCap ops of SchedUnit -- -1 for any unit -- in
  /// SchedCycle).
  std::string SchedBlock;
  std::vector<int> SchedCycles;
  int SchedCycle = -1;
  int SchedUnit = -1;
  int SchedCap = -1;
  int SchedFrom = -1;
  int SchedTo = -1;
  int SchedLatency = -1;
};

/// The condition under which in-block control reaches op \p AnchorIdx of
/// \p Blk: the conjunction of the not-taken conditions of every earlier
/// branch, excluding \p ExceptIdx (pass Blk.size() to exclude none --
/// callers whose violating condition requires an earlier branch, e.g. the
/// bypass, to take pass its index). Returns BDD::Invalid on budget
/// exhaustion.
BDD::NodeRef reachCond(RegionPQS &PQS, const Block &Blk, size_t AnchorIdx,
                       size_t ExceptIdx);

/// Builds a witness for \p Violating, the violating condition of a finding
/// anchored in \p Blk -- the block \p PQS was built over: the region
/// itself, or the synthetic off-trace path block. Extracts an assignment
/// and solves for concrete inputs; the caller fills the replay anchors
/// (Kind-specific fields) afterwards. Never returns null.
std::shared_ptr<LintWitness> buildWitness(const Function &F, const Block &Blk,
                                          RegionPQS &PQS,
                                          BDD::NodeRef Violating,
                                          LintWitness::Expect Kind);

/// Outcome of one witness replay.
struct WitnessConfirmation {
  /// A replay (or recount) was attempted; false for unsolved witnesses.
  bool Ran = false;
  bool Confirmed = false;
  std::string Detail;
};

/// Replays \p W against \p F (or its synthesized path function) with
/// OpWatch instrumentation and checks the expectation;
/// Expect::ScheduleRecount witnesses are confirmed by an independent
/// occupancy/latency recount of the stored schedule instead.
WitnessConfirmation confirmWitness(const Function &F, const LintWitness &W);

/// The witness as the "witness" object of a cpr-lint-v2 finding.
JSONValue witnessToJSON(const LintWitness &W);

} // namespace cpr

#endif // LINT_WITNESS_H

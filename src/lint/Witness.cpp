//===- lint/Witness.cpp - Witness extraction and replay -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "lint/Witness.h"

#include "analysis/PQS.h"
#include "interp/Memory.h"
#include "ir/CompareCond.h"

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <unordered_set>

using namespace cpr;

BDD::NodeRef cpr::reachCond(RegionPQS &PQS, const Block &Blk,
                            size_t AnchorIdx, size_t ExceptIdx) {
  BDD &Mgr = PQS.bdd();
  BDD::NodeRef Cond = BDD::True;
  for (size_t I = 0; I < AnchorIdx && I < Blk.size(); ++I) {
    if (!Blk.ops()[I].isBranch() || I == ExceptIdx)
      continue;
    BDD::NodeRef Taken = PQS.takenExpr(I);
    Cond = Mgr.mkAnd(Cond, Mgr.mkNot(Taken));
    if (!Mgr.isValid(Cond))
      return BDD::Invalid;
  }
  return Cond;
}

namespace {

//===----------------------------------------------------------------------===//
// Concrete-input solving
//===----------------------------------------------------------------------===//

/// Symbolic value of a GPR (or operand) at one point of the block walk.
struct SymVal {
  enum Kind { Const, LiveIn, MemCell, Opaque } K = Opaque;
  int64_t C = 0;
  /// LiveIn: the live-in register itself; MemCell: the live-in base
  /// register whose initial value addresses the cell.
  Reg Base;
};

/// An input cell the solver assigns: a live-in GPR (IsMem = false) or the
/// memory word addressed by a live-in base register (IsMem = true).
using CellKey = std::pair<bool, Reg>;

struct CellInfo {
  bool Fixed = false;
  int64_t FixVal = 0;
  int64_t Lo = INT32_MIN;
  int64_t Hi = INT32_MAX;
  std::vector<int64_t> Excluded;
  /// The cell is a live-in GPR whose value addresses memory: prefer a
  /// pool address so distinct bases land on distinct cells.
  bool IsBase = false;
  bool HasValue = false;
  int64_t Value = 0;
};

/// One atom constraint: canonical comparison over operand values at the
/// atom's defining cmpp must evaluate to Value.
struct Constraint {
  CompareCond Cond;
  SymVal A;
  SymVal B;
  bool Value;
};

bool evalCanon(CompareCond C, int64_t A, int64_t B) {
  switch (C) {
  case CompareCond::EQ:
    return A == B;
  case CompareCond::LT:
    return A < B;
  case CompareCond::LE:
    return A <= B;
  default:
    return false; // canonical conds only
  }
}

class InputSolver {
public:
  InputSolver(const Block &Blk, const RegionPQS &PQSAtoms)
      : Blk(Blk), Atoms(PQSAtoms.atoms()) {}

  /// Feeds one straight-line predecessor block through the symbolic
  /// transfer, so the anchor block's walk starts from the GPR state its
  /// fall-through entry actually sees.
  void prelude(const Block &B) {
    for (const Operation &Op : B.ops())
      step(Op);
  }

  /// Applies the satisfying assignment \p Assign ((BDD var, value) pairs)
  /// and solves. On success fills \p W's InitRegs/InitMem and returns
  /// true; on failure sets \p W.UnsolvedWhy.
  bool solve(const std::vector<std::pair<uint32_t, bool>> &Assign,
             LintWitness &W) {
    // Partition the assignment: live-in predicates bind directly, compare
    // atoms become value constraints, opaque atoms are unsolvable.
    std::multimap<size_t, std::pair<uint32_t, bool>> ByOp;
    for (const auto &[Var, Value] : Assign) {
      if (Var >= Atoms.size())
        return fail(W, "assignment names an unknown atom");
      const PQSAtom &A = Atoms[Var];
      switch (A.K) {
      case PQSAtom::Kind::LiveInPred:
        W.InitRegs.push_back(RegBinding{A.PredReg, Value ? 1 : 0});
        break;
      case PQSAtom::Kind::Opaque:
        return fail(W, "violating condition depends on an opaque atom");
      case PQSAtom::Kind::Compare:
        ByOp.emplace(A.CmppOp, std::make_pair(Var, Value));
        break;
      }
    }

    // Symbolic walk: capture each constrained atom's operand values at
    // its defining cmpp, in program order.
    std::vector<Constraint> Cs;
    for (size_t I = 0; I < Blk.size(); ++I) {
      const Operation &Op = Blk.ops()[I];
      auto Range = ByOp.equal_range(I);
      for (auto It = Range.first; It != Range.second; ++It) {
        if (!Op.isCmpp() || Op.srcs().size() < 2)
          return fail(W, "atom's defining op is not a comparison");
        Constraint C;
        C.Cond = canonicalCompareCond(Op.getCond()).first;
        C.A = valueOf(Op.srcs()[0]);
        C.B = valueOf(Op.srcs()[1]);
        C.Value = It->second.second;
        Cs.push_back(C);
      }
      step(Op);
    }

    // Two constraint passes: the second resolves cell-to-cell comparisons
    // once the first has fixed one side.
    std::vector<Constraint> Deferred;
    for (const Constraint &C : Cs)
      if (!apply(C, W, &Deferred))
        return false;
    for (const Constraint &C : Deferred)
      if (!apply(C, W, nullptr))
        return false;

    return assign(W);
  }

private:
  const Block &Blk;
  const std::vector<PQSAtom> &Atoms;
  std::unordered_map<Reg, SymVal> Gprs;
  bool StoreSeen = false;
  std::map<CellKey, CellInfo> Cells;

  bool fail(LintWitness &W, std::string Why) {
    W.UnsolvedWhy = std::move(Why);
    return false;
  }

  SymVal valueOf(const Operand &O) {
    if (O.isImm())
      return SymVal{SymVal::Const, O.getImm(), Reg()};
    if (!O.isReg() || O.getReg().getClass() != RegClass::GPR)
      return SymVal{};
    Reg R = O.getReg();
    auto It = Gprs.find(R);
    if (It != Gprs.end())
      return It->second;
    SymVal V{SymVal::LiveIn, 0, R};
    Gprs.emplace(R, V);
    Cells[CellKey{false, R}]; // materialize the input cell
    return V;
  }

  /// Forward transfer of one op through the GPR symbolic state. Only the
  /// fragment witness inputs flow through is modeled exactly (unguarded
  /// movs, first-load-from-live-in-base, add/sub constant folding);
  /// everything else degrades the destination to Opaque.
  void step(const Operation &Op) {
    if (Op.isStore()) {
      StoreSeen = true;
      return;
    }
    bool Sure = Op.getGuard().isTruePred() || Op.isFrpGuard();
    for (const DefSlot &D : Op.defs()) {
      if (D.R.getClass() != RegClass::GPR)
        continue;
      SymVal V; // Opaque default
      if (Sure) {
        if (Op.getOpcode() == Opcode::Mov) {
          V = valueOf(Op.srcs()[0]);
        } else if (Op.isLoad()) {
          SymVal Addr = valueOf(Op.srcs()[0]);
          if (!StoreSeen && Addr.K == SymVal::LiveIn) {
            V = SymVal{SymVal::MemCell, 0, Addr.Base};
            CellInfo &Base = Cells[CellKey{false, Addr.Base}];
            Base.IsBase = true;
            Cells[CellKey{true, Addr.Base}];
          }
        } else if (Op.getOpcode() == Opcode::Add ||
                   Op.getOpcode() == Opcode::Sub) {
          SymVal A = valueOf(Op.srcs()[0]);
          SymVal B = valueOf(Op.srcs()[1]);
          if (A.K == SymVal::Const && B.K == SymVal::Const)
            V = SymVal{SymVal::Const,
                       Op.getOpcode() == Opcode::Add ? A.C + B.C : A.C - B.C,
                       Reg()};
        }
      }
      Gprs[D.R] = V;
    }
  }

  std::optional<CellKey> cellOf(const SymVal &V) const {
    if (V.K == SymVal::LiveIn)
      return CellKey{false, V.Base};
    if (V.K == SymVal::MemCell)
      return CellKey{true, V.Base};
    return std::nullopt;
  }

  /// Substitutes an already-fixed cell by its constant.
  SymVal resolved(const SymVal &V) {
    auto Key = cellOf(V);
    if (!Key)
      return V;
    const CellInfo &C = Cells[*Key];
    if (C.Fixed)
      return SymVal{SymVal::Const, C.FixVal, Reg()};
    return V;
  }

  bool fix(CellInfo &C, int64_t Val, LintWitness &W) {
    if (C.Fixed)
      return C.FixVal == Val || fail(W, "conflicting equality constraints");
    if (Val < C.Lo || Val > C.Hi)
      return fail(W, "equality constraint outside the feasible interval");
    if (std::find(C.Excluded.begin(), C.Excluded.end(), Val) !=
        C.Excluded.end())
      return fail(W, "equality constraint hits an excluded value");
    C.Fixed = true;
    C.FixVal = Val;
    return true;
  }

  /// Applies one constraint with the cell on the \p CellLeft side:
  /// CellLeft ? cond(x, c) : cond(c, x) must equal \p Value.
  bool bound(CellInfo &C, CompareCond Cond, bool CellLeft, int64_t K,
             bool Value, LintWitness &W) {
    switch (Cond) {
    case CompareCond::EQ:
      if (Value)
        return fix(C, K, W);
      C.Excluded.push_back(K);
      break;
    case CompareCond::LT:
      if (CellLeft)
        Value ? (void)(C.Hi = std::min(C.Hi, K - 1))
              : (void)(C.Lo = std::max(C.Lo, K));
      else
        Value ? (void)(C.Lo = std::max(C.Lo, K + 1))
              : (void)(C.Hi = std::min(C.Hi, K));
      break;
    case CompareCond::LE:
      if (CellLeft)
        Value ? (void)(C.Hi = std::min(C.Hi, K))
              : (void)(C.Lo = std::max(C.Lo, K + 1));
      else
        Value ? (void)(C.Lo = std::max(C.Lo, K))
              : (void)(C.Hi = std::min(C.Hi, K - 1));
      break;
    default:
      return fail(W, "non-canonical constraint condition");
    }
    if (C.Lo > C.Hi)
      return fail(W, "constraints leave an empty interval");
    if (C.Fixed && (C.FixVal < C.Lo || C.FixVal > C.Hi))
      return fail(W, "bound excludes an already-fixed value");
    return true;
  }

  bool apply(const Constraint &Raw, LintWitness &W,
             std::vector<Constraint> *Deferred) {
    Constraint C = Raw;
    C.A = resolved(C.A);
    C.B = resolved(C.B);
    if (C.A.K == SymVal::Opaque || C.B.K == SymVal::Opaque)
      return fail(W, "constraint operand outside the solvable fragment");
    if (C.A.K == SymVal::Const && C.B.K == SymVal::Const) {
      if (evalCanon(C.Cond, C.A.C, C.B.C) != C.Value)
        return fail(W, "contradictory constant comparison");
      return true;
    }
    if (C.A.K != SymVal::Const && C.B.K != SymVal::Const) {
      if (Deferred) {
        Deferred->push_back(Raw);
        return true;
      }
      return fail(W, "constraint relates two unconstrained inputs");
    }
    bool CellLeft = C.A.K != SymVal::Const;
    const SymVal &Cell = CellLeft ? C.A : C.B;
    int64_t K = CellLeft ? C.B.C : C.A.C;
    return bound(Cells[*cellOf(Cell)], C.Cond, CellLeft, K, C.Value, W);
  }

  bool pick(CellInfo &C, LintWitness &W) {
    if (C.Fixed) {
      C.HasValue = true;
      C.Value = C.FixVal;
      return true;
    }
    auto Bad = [&](int64_t V) {
      return std::find(C.Excluded.begin(), C.Excluded.end(), V) !=
             C.Excluded.end();
    };
    int64_t V = std::clamp<int64_t>(0, C.Lo, C.Hi);
    int64_t Up = V;
    while (Up <= C.Hi && Bad(Up))
      ++Up;
    if (Up <= C.Hi)
      V = Up;
    else {
      int64_t Down = std::clamp<int64_t>(0, C.Lo, C.Hi) - 1;
      while (Down >= C.Lo && Bad(Down))
        --Down;
      if (Down < C.Lo)
        return fail(W, "no feasible value in the constrained interval");
      V = Down;
    }
    C.HasValue = true;
    C.Value = V;
    return true;
  }

  bool assign(LintWitness &W) {
    // Base registers first: they prefer distinct pool addresses, and the
    // memory cells they address need their values.
    constexpr int64_t PoolStart = 0x5000000;
    int64_t Pool = PoolStart;
    std::unordered_set<int64_t> UsedAddrs;
    for (auto &[Key, C] : Cells) {
      if (Key.first || !C.IsBase)
        continue;
      if (!C.Fixed) {
        int64_t Cand = Pool;
        while ((Cand <= C.Hi && Cand >= C.Lo &&
                std::find(C.Excluded.begin(), C.Excluded.end(), Cand) !=
                    C.Excluded.end()) ||
               UsedAddrs.count(Cand))
          Cand += 16;
        if (Cand >= C.Lo && Cand <= C.Hi) {
          C.Fixed = true;
          C.FixVal = Cand;
          Pool = Cand + 16;
        }
      }
      if (!pick(C, W))
        return false;
      if (UsedAddrs.count(C.Value))
        return fail(W, "two memory bases collide on one address");
      UsedAddrs.insert(C.Value);
    }
    for (auto &[Key, C] : Cells) {
      if (Key.first || C.IsBase)
        continue;
      if (!pick(C, W))
        return false;
    }
    for (auto &[Key, C] : Cells) {
      if (!Key.first)
        continue;
      if (!pick(C, W))
        return false;
      const CellInfo &Base = Cells[CellKey{false, Key.second}];
      W.InitMem.emplace_back(Base.Value, C.Value);
    }
    for (auto &[Key, C] : Cells)
      if (!Key.first)
        W.InitRegs.push_back(RegBinding{Key.second, C.Value});
    return true;
  }
};

} // namespace

std::shared_ptr<LintWitness>
cpr::buildWitness(const Function &F, const Block &Blk, RegionPQS &PQS,
                  BDD::NodeRef Violating, LintWitness::Expect Kind) {
  auto W = std::make_shared<LintWitness>();
  W->Kind = Kind;
  W->Path.push_back(F.blockById(Blk.getId())
                        ? F.blockById(Blk.getId())->getName()
                        : Blk.getName());

  std::vector<std::pair<uint32_t, bool>> Assign;
  if (!PQS.bdd().isValid(Violating)) {
    W->UnsolvedWhy = "violating condition exceeded the BDD node budget";
    return W;
  }
  if (!PQS.bdd().satOne(Violating, Assign) && Violating != BDD::True) {
    W->UnsolvedWhy = "violating condition is unsatisfiable after "
                     "reachability strengthening";
    return W;
  }
  const std::vector<PQSAtom> &Atoms = PQS.atoms();
  for (const auto &[Var, Value] : Assign) {
    WitnessAtomAssignment A;
    A.Atom = Var < Atoms.size() ? Atoms[Var].Desc
                                : "atom#" + std::to_string(Var);
    A.Value = Value;
    W->Assignment.push_back(std::move(A));
  }

  // Replay starts at the function entry. When the region is not the
  // entry block the replay traverses every layout-earlier block first,
  // which is deterministic only when each of them is straight-line: no
  // branches and no terminators (so it always falls through) and no
  // predicate definitions (which would shadow a live-in binding the
  // assignment relies on).
  std::vector<const Block *> Prefix;
  bool StraightLine = F.numBlocks() > 0;
  size_t AnchorL = StraightLine ? F.layoutIndex(Blk.getId()) : 0;
  for (size_t L = 0; StraightLine && L < AnchorL; ++L) {
    const Block &P = F.block(L);
    for (const Operation &Op : P.ops()) {
      if (Op.isBranch() || Op.getOpcode() == Opcode::Halt ||
          Op.getOpcode() == Opcode::Trap) {
        StraightLine = false;
        break;
      }
      for (const DefSlot &D : Op.defs())
        if (D.R.getClass() == RegClass::PR) {
          StraightLine = false;
          break;
        }
    }
    Prefix.push_back(&P);
  }
  if (!StraightLine) {
    W->UnsolvedWhy = "region is not reachable from the entry by "
                     "straight-line fall-through; replay would traverse "
                     "a control decision";
    return W;
  }
  W->Path.clear();
  for (const Block *P : Prefix)
    W->Path.push_back(P->getName());
  W->Path.push_back(Blk.getName());

  InputSolver Solver(Blk, PQS);
  for (const Block *P : Prefix)
    Solver.prelude(*P);
  if (Solver.solve(Assign, *W))
    W->Solved = true;
  else {
    W->InitRegs.clear();
    W->InitMem.clear();
  }
  return W;
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

namespace {

const Block *blockNamed(const Function &F, const std::string &Name) {
  for (size_t L = 0; L < F.numBlocks(); ++L)
    if (F.block(L).getName() == Name)
      return &F.block(L);
  return nullptr;
}

WitnessConfirmation recountSchedule(const Function &F, const LintWitness &W) {
  WitnessConfirmation R;
  R.Ran = true;
  if (W.SchedFrom >= 0) {
    // Latency claim: To issues before From's result is ready.
    if (W.SchedTo < 0 ||
        static_cast<size_t>(W.SchedTo) >= W.SchedCycles.size() ||
        static_cast<size_t>(W.SchedFrom) >= W.SchedCycles.size()) {
      R.Detail = "latency recount indices out of range";
      return R;
    }
    R.Confirmed = W.SchedCycles[W.SchedTo] <
                  W.SchedCycles[W.SchedFrom] + W.SchedLatency;
    R.Detail = "recount: cycle(to)=" + std::to_string(W.SchedCycles[W.SchedTo]) +
               " cycle(from)=" + std::to_string(W.SchedCycles[W.SchedFrom]) +
               " latency=" + std::to_string(W.SchedLatency);
    return R;
  }
  const Block *B = blockNamed(F, W.SchedBlock);
  if (!B || W.SchedCycles.size() != B->size()) {
    R.Detail = "schedule recount block mismatch";
    return R;
  }
  int Count = 0;
  for (size_t I = 0; I < B->size(); ++I) {
    if (W.SchedCycles[I] != W.SchedCycle)
      continue;
    if (W.SchedUnit >= 0 &&
        static_cast<int>(opcodeUnit(B->ops()[I].getOpcode())) != W.SchedUnit)
      continue;
    ++Count;
  }
  R.Confirmed = Count > W.SchedCap;
  R.Detail = "recount: " + std::to_string(Count) + " ops in cycle " +
             std::to_string(W.SchedCycle) + " against a cap of " +
             std::to_string(W.SchedCap);
  return R;
}

} // namespace

WitnessConfirmation cpr::confirmWitness(const Function &F,
                                        const LintWitness &W) {
  WitnessConfirmation R;
  if (!W.Solved) {
    R.Detail = "witness unsolved: " + W.UnsolvedWhy;
    return R;
  }
  if (W.Kind == LintWitness::Expect::ScheduleRecount)
    return recountSchedule(F, W);

  std::unique_ptr<Function> Synth;
  const Function *Target = &F;
  if (W.UsePathFunction) {
    Synth = F.clone();
    Block *B = Synth->blockByName(W.PathBlock);
    Block *Comp = Synth->blockByName(W.PathComp);
    if (!B || !Comp || W.PathBranchIdx < 0 ||
        static_cast<size_t>(W.PathBranchIdx) >= B->size()) {
      R.Detail = "path function synthesis failed";
      return R;
    }
    std::vector<Operation> PathOps(
        B->ops().begin(), B->ops().begin() + W.PathBranchIdx + 1);
    PathOps.insert(PathOps.end(), Comp->ops().begin(), Comp->ops().end());
    B->ops() = std::move(PathOps);
    Target = Synth.get();
  }

  std::vector<OpWatch> Watches;
  auto Watch = [&](OpId Op, Reg Sample = Reg()) -> size_t {
    OpWatch Wt;
    Wt.Op = Op;
    Wt.SampleReg = Sample;
    Watches.push_back(Wt);
    return Watches.size() - 1;
  };

  size_t Anchor = Watch(W.AnchorOp, W.WatchRegs.empty() ? Reg()
                                                        : W.WatchRegs[0]);
  std::vector<size_t> Aux;
  switch (W.Kind) {
  case LintWitness::Expect::PredValues:
    Watches.clear();
    for (Reg Rg : W.WatchRegs)
      Watch(W.AnchorOp, Rg);
    break;
  case LintWitness::Expect::UseWithoutDef:
  case LintWitness::Expect::ClobberThenUse:
  case LintWitness::Expect::ExitNotBypass:
  case LintWitness::Expect::RegUnchanged:
    for (OpId Op : W.AuxOps)
      Aux.push_back(Watch(Op, W.Kind == LintWitness::Expect::RegUnchanged &&
                                  !W.WatchRegs.empty()
                              ? W.WatchRegs[0]
                              : Reg()));
    break;
  default:
    break;
  }

  Memory Mem;
  for (const auto &[Addr, Value] : W.InitMem)
    Mem.store(Addr, Value);
  InterpOptions IO;
  IO.MaxSteps = 1'000'000;
  IO.Watches = &Watches;
  RunResult Run = interpret(*Target, Mem, W.InitRegs, IO);
  R.Ran = true;

  bool Terminated = Run.St == RunResult::Status::Halted ||
                    Run.St == RunResult::Status::Trapped;
  auto Fail = [&](std::string Why) {
    R.Confirmed = false;
    R.Detail = std::move(Why);
    return R;
  };

  switch (W.Kind) {
  case LintWitness::Expect::Trapped:
    R.Confirmed = Run.St == RunResult::Status::Trapped;
    R.Detail = R.Confirmed ? Run.ErrorMsg
                           : "replay did not trap (status " +
                                 std::to_string(static_cast<int>(Run.St)) +
                                 ")";
    return R;
  case LintWitness::Expect::BranchTaken:
    if (Watches[Anchor].Taken < 1)
      return Fail("anchor branch never took");
    break;
  case LintWitness::Expect::BranchNeverTaken:
    if (!Terminated)
      return Fail("replay did not terminate cleanly");
    if (Watches[Anchor].Dispatched < 1)
      return Fail("anchor branch never dispatched");
    if (Watches[Anchor].Taken != 0)
      return Fail("anchor branch took");
    break;
  case LintWitness::Expect::OpIneffective:
    if (!Terminated)
      return Fail("replay did not terminate cleanly");
    if (Watches[Anchor].Dispatched < 1)
      return Fail("anchor op never dispatched");
    if (Watches[Anchor].Effective != 0)
      return Fail("anchor op's guard held");
    break;
  case LintWitness::Expect::UseWithoutDef: {
    if (Watches[Anchor].Effective < 1)
      return Fail("anchor use never executed");
    uint64_t UseStep = Watches[Anchor].FirstEffectiveStep;
    for (size_t I : Aux)
      if (Watches[I].FirstEffectiveStep != 0 &&
          Watches[I].FirstEffectiveStep < UseStep)
        return Fail("a prior definition executed before the use");
    break;
  }
  case LintWitness::Expect::ClobberThenUse: {
    if (Aux.empty() || Watches[Aux[0]].Effective < 1)
      return Fail("clobbering op never executed");
    if (Watches[Anchor].Effective < 1)
      return Fail("off-trace reader never executed");
    if (Watches[Aux[0]].FirstEffectiveStep >=
        Watches[Anchor].FirstEffectiveStep)
      return Fail("clobber did not precede the off-trace read");
    break;
  }
  case LintWitness::Expect::ExitNotBypass: {
    if (Watches[Anchor].Dispatched < 1)
      return Fail("bypass branch never dispatched");
    if (Watches[Anchor].Taken != 0)
      return Fail("bypass branch took");
    bool ExitFired = false;
    for (size_t I : Aux) {
      auto [BIdx, OIdx] = Target->findOp(Watches[I].Op);
      bool IsBranch = BIdx >= 0 &&
                      Target->block(static_cast<size_t>(BIdx))
                          .ops()[static_cast<size_t>(OIdx)]
                          .isBranch();
      if (IsBranch ? Watches[I].Taken >= 1 : Watches[I].Effective >= 1)
        ExitFired = true;
    }
    if (!ExitFired)
      return Fail("no re-executed exit fired on the path function");
    break;
  }
  case LintWitness::Expect::PredValues: {
    if (Watches.size() != W.ExpectVals.size())
      return Fail("watch/expectation arity mismatch");
    for (size_t I = 0; I < Watches.size(); ++I) {
      if (!Watches[I].Sampled)
        return Fail("anchor op never dispatched");
      if (Watches[I].FirstValue != W.ExpectVals[I])
        return Fail("predicate " + W.WatchRegs[I].str() + " held " +
                    std::to_string(Watches[I].FirstValue) + ", expected " +
                    std::to_string(W.ExpectVals[I]));
    }
    break;
  }
  case LintWitness::Expect::RegUnchanged: {
    if (Watches[Anchor].Effective < 1)
      return Fail("recomputing op never executed");
    if (Aux.empty() || !Watches[Aux[0]].Sampled || !Watches[Anchor].Sampled)
      return Fail("value samples missing");
    if (Watches[Anchor].FirstValue != Watches[Aux[0]].FirstValue)
      return Fail("recomputation changed the value from " +
                  std::to_string(Watches[Anchor].FirstValue) + " to " +
                  std::to_string(Watches[Aux[0]].FirstValue));
    break;
  }
  case LintWitness::Expect::ScheduleRecount:
    break; // handled above
  }
  R.Confirmed = true;
  R.Detail = "replay confirmed in " + std::to_string(Run.Steps) + " steps";
  return R;
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

namespace {
const char *expectName(LintWitness::Expect K) {
  switch (K) {
  case LintWitness::Expect::Trapped:
    return "trapped";
  case LintWitness::Expect::BranchTaken:
    return "branch-taken";
  case LintWitness::Expect::BranchNeverTaken:
    return "branch-never-taken";
  case LintWitness::Expect::OpIneffective:
    return "op-ineffective";
  case LintWitness::Expect::UseWithoutDef:
    return "use-without-def";
  case LintWitness::Expect::ClobberThenUse:
    return "clobber-then-use";
  case LintWitness::Expect::ExitNotBypass:
    return "exit-not-bypass";
  case LintWitness::Expect::PredValues:
    return "pred-values";
  case LintWitness::Expect::RegUnchanged:
    return "reg-unchanged";
  case LintWitness::Expect::ScheduleRecount:
    return "schedule-recount";
  }
  return "unknown";
}
} // namespace

JSONValue cpr::witnessToJSON(const LintWitness &W) {
  JSONValue Root = JSONValue::object();
  Root.set("expect", JSONValue::str(expectName(W.Kind)));
  Root.set("solved", JSONValue::boolean(W.Solved));
  if (!W.Solved)
    Root.set("unsolved_why", JSONValue::str(W.UnsolvedWhy));
  JSONValue Assign = JSONValue::array();
  for (const WitnessAtomAssignment &A : W.Assignment) {
    JSONValue J = JSONValue::object();
    J.set("atom", JSONValue::str(A.Atom));
    J.set("value", JSONValue::boolean(A.Value));
    Assign.append(std::move(J));
  }
  Root.set("assignment", std::move(Assign));
  JSONValue Path = JSONValue::array();
  for (const std::string &B : W.Path)
    Path.append(JSONValue::str(B));
  Root.set("path", std::move(Path));
  JSONValue Regs = JSONValue::array();
  for (const RegBinding &B : W.InitRegs) {
    JSONValue J = JSONValue::object();
    J.set("reg", JSONValue::str(B.R.str()));
    J.set("value", JSONValue::number(static_cast<double>(B.Value)));
    Regs.append(std::move(J));
  }
  Root.set("init_regs", std::move(Regs));
  JSONValue MemJ = JSONValue::array();
  for (const auto &[Addr, Value] : W.InitMem) {
    JSONValue J = JSONValue::object();
    J.set("addr", JSONValue::number(static_cast<double>(Addr)));
    J.set("value", JSONValue::number(static_cast<double>(Value)));
    MemJ.append(std::move(J));
  }
  Root.set("init_mem", std::move(MemJ));
  Root.set("replay",
           JSONValue::str(W.Kind == LintWitness::Expect::ScheduleRecount
                              ? "schedule-recount"
                              : (W.UsePathFunction ? "path-function"
                                                   : "function")));
  if (W.AnchorOp != InvalidOpId)
    Root.set("anchor_op", JSONValue::number(static_cast<double>(W.AnchorOp)));
  return Root;
}

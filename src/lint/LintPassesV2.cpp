//===- lint/LintPassesV2.cpp - The whole-region v2 checks -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The four whole-region checks added with the cpr-lint v2 schema
/// (docs/LINT.md), built on the dense dataflow framework
/// (analysis/Dataflow.h) and the same PQS/BDD proofs as the original five:
///
///  - dead-under-predicate      an operation's guard (or a branch's taken
///                              condition) is provably unsatisfiable;
///  - redundant-compensation    a compensation block unconditionally
///                              recomputes a value the on-trace prefix
///                              already produced and nothing clobbered;
///  - uninit-read               a register is read although no definition
///                              anywhere in the function can reach it;
///  - resource-oversubscription a schedule issues more operations in one
///                              cycle than the machine front end fetches.
///
/// Same conservatism contract as LintPasses.cpp: findings are exact
/// proofs; BDD budget exhaustion silences the obligation.
///
//===----------------------------------------------------------------------===//

#include "lint/LintInternal.h"

#include "analysis/Dataflow.h"
#include "analysis/DepGraph.h"
#include "analysis/Liveness.h"
#include "analysis/PQS.h"
#include "ir/CmppAction.h"
#include "lint/Witness.h"
#include "sched/ListScheduler.h"

#include <memory>
#include <string>
#include <vector>

using namespace cpr;
using namespace cpr::lint_detail;

namespace {

//===----------------------------------------------------------------------===//
// Check 6: dead-under-predicate
//===----------------------------------------------------------------------===//

class DeadUnderPredicatePass : public LintPass {
public:
  const char *name() const override { return "dead-under-predicate"; }
  const char *description() const override {
    return "an operation's guard (or a branch's taken condition) is "
           "provably unsatisfiable: the operation can never take effect";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.empty())
        continue;
      RegionPQS PQS(F, B);
      BDD &Mgr = PQS.bdd();
      for (size_t I = 0; I < B.size(); ++I) {
        const Operation &Op = B.ops()[I];
        if (Op.isBranch()) {
          BDD::NodeRef Taken = PQS.takenExpr(I);
          if (!Mgr.isValid(Taken) || Taken != BDD::False)
            continue;
          LintFinding Fd = makeFinding(
              DiagCode::LintDeadUnderPred, name(), B, static_cast<int>(I),
              "branch can never take: its taken condition is provably "
              "false",
              DiagSeverity::Warning);
          Fd.Witness =
              buildWitness(F, B, PQS, dispatchCond(PQS, B, I, B.size()),
                           LintWitness::Expect::BranchNeverTaken);
          Fd.Witness->AnchorOp = Op.getId();
          Out.push_back(std::move(Fd));
          continue;
        }
        if (Op.isControl() || Op.getOpcode() == Opcode::Pbr ||
            Op.getOpcode() == Opcode::Nop)
          continue;
        if (Op.isCmpp()) {
          // A cmpp is inert under a false guard only when every target is
          // wired: UN/UC targets write (a zero) even when the guard does
          // not hold.
          bool AllWired = !Op.defs().empty();
          for (const DefSlot &D : Op.defs())
            if (!isWiredAction(D.Act))
              AllWired = false;
          if (!AllWired)
            continue;
        }
        BDD::NodeRef G = PQS.guardExpr(I);
        if (!Mgr.isValid(G) || G != BDD::False)
          continue;
        LintFinding Fd = makeFinding(
            DiagCode::LintDeadUnderPred, name(), B, static_cast<int>(I),
            "operation's guard " + Op.getGuard().str() +
                " is provably unsatisfiable: the operation is dead",
            DiagSeverity::Warning);
        Fd.Witness =
            buildWitness(F, B, PQS, dispatchCond(PQS, B, I, B.size()),
                         LintWitness::Expect::OpIneffective);
        Fd.Witness->AnchorOp = Op.getId();
        Out.push_back(std::move(Fd));
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Check 7: redundant-compensation
//===----------------------------------------------------------------------===//

class RedundantCompensationPass : public LintPass {
public:
  const char *name() const override { return "redundant-compensation"; }
  const char *description() const override {
    return "a compensation block unconditionally recomputes a value the "
           "on-trace prefix already produced and nothing clobbered";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.isCompensation())
        continue;
      for (const Bypass &BP : findBypasses(F, B)) {
        if (BP.Lookaheads.empty())
          continue;
        Block Path = makePathBlock(B, BP);
        std::unique_ptr<RegionPQS> PPQ;
        for (size_t K = 0; K < BP.Comp->size(); ++K) {
          const Operation &C = BP.Comp->ops()[K];
          if (C.isCmpp() || C.isControl() || C.hasSideEffects() ||
              C.getOpcode() == Opcode::Pbr || C.defs().empty() ||
              !C.getGuard().isTruePred())
            continue;
          int Twin = findOnTraceTwin(B, BP, Path, K, C);
          if (Twin < 0)
            continue;
          Reg R = C.defs().front().R;
          LintFinding Fd = makeFinding(
              DiagCode::LintRedundantComp, name(), *BP.Comp,
              static_cast<int>(K),
              "compensation recomputes " + R.str() +
                  ", already produced on-trace by op %" +
                  std::to_string(B.ops()[Twin].getId()) +
                  " and unclobbered on the off-trace path",
              DiagSeverity::Warning);
          if (!PPQ)
            PPQ.reset(new RegionPQS(F, Path));
          size_t PathIdx = BP.BranchIdx + 1 + K;
          BDD::NodeRef V = PPQ->bdd().mkAnd(
              PPQ->takenExpr(BP.BranchIdx),
              dispatchCond(*PPQ, Path, PathIdx, BP.BranchIdx));
          // Sampled just before the recomputation and just before the
          // next op: equal values prove the recomputation changed
          // nothing.
          if (K + 1 < BP.Comp->size()) {
            Fd.Witness = buildWitness(F, Path, *PPQ, V,
                                      LintWitness::Expect::RegUnchanged);
            Fd.Witness->AnchorOp = C.getId();
            Fd.Witness->AuxOps.push_back(BP.Comp->ops()[K + 1].getId());
            Fd.Witness->WatchRegs.push_back(R);
          } else {
            Fd.Witness = buildWitness(F, Path, *PPQ, V,
                                      LintWitness::Expect::BranchTaken);
            Fd.Witness->AnchorOp = B.ops()[BP.BranchIdx].getId();
          }
          Fd.Witness->Path.push_back(BP.Comp->getName());
          Out.push_back(std::move(Fd));
        }
      }
    }
  }

private:
  /// Index in \p B of an unguarded on-trace op before the bypass that is
  /// textually identical to compensation op \p C, with no op between the
  /// twin and \p C (in off-trace path order) redefining any source or
  /// destination register of the pair, and no intervening store when the
  /// pair loads. Returns -1 when no such twin exists.
  static int findOnTraceTwin(const Block &B, const Bypass &BP,
                             const Block &Path, size_t CompIdx,
                             const Operation &C) {
    for (size_t J = 0; J < BP.BranchIdx; ++J) {
      const Operation &O = B.ops()[J];
      if (O.getOpcode() != C.getOpcode() || O.getCond() != C.getCond() ||
          !O.getGuard().isTruePred() || !(O.defs() == C.defs()) ||
          !(O.srcs() == C.srcs()))
        continue;
      bool Clobbered = false;
      size_t PathEnd = BP.BranchIdx + 1 + CompIdx;
      for (size_t M = J + 1; M < PathEnd && !Clobbered; ++M) {
        const Operation &Mid = Path.ops()[M];
        if (C.isLoad() && Mid.isStore())
          Clobbered = true;
        for (const DefSlot &D : Mid.defs()) {
          if (C.readsReg(D.R) || C.definesReg(D.R))
            Clobbered = true;
        }
      }
      if (!Clobbered)
        return static_cast<int>(J);
    }
    return -1;
  }
};

//===----------------------------------------------------------------------===//
// Check 8: uninit-read
//===----------------------------------------------------------------------===//

class UninitReadPass : public LintPass {
public:
  const char *name() const override { return "uninit-read"; }
  const char *description() const override {
    return "a register is read although no definition anywhere in the "
           "function can reach the reading block";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    const ReachingDefBlocks &Reach = Ctx.reachingDefs();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.empty())
        continue;
      std::unique_ptr<RegionPQS> BQ;
      for (size_t I = 0; I < B.size(); ++I) {
        const Operation &Op = B.ops()[I];
        std::vector<Reg> Reads;
        if (!Op.getGuard().isTruePred())
          Reads.push_back(Op.getGuard());
        for (const Operand &S : Op.srcs())
          if (S.isReg() && !S.getReg().isTruePred())
            Reads.push_back(S.getReg());
        for (Reg R : Reads) {
          // A register with no definition anywhere is a function input by
          // convention; the check targets reads that *look* locally
          // defined (a definition exists somewhere) but provably are not.
          // Caller-declared inputs (InitRegs bindings) are initialized by
          // the environment even when the function also redefines them.
          if (!Reach.hasAnyDef(R) || Ctx.isDeclaredInput(R))
            continue;
          // Pruning accelerator: definitely-assigned registers need no
          // exact treatment (forward/intersection subsumes the rest).
          if (Ctx.definiteAssignment().assignedAtEntry(R, L))
            continue;
          bool DefBefore = false;
          for (size_t J = 0; J < I && !DefBefore; ++J)
            if (B.ops()[J].definesReg(R))
              DefBefore = true;
          if (DefBefore || Ctx.defReachesEntry(R, L))
            continue; // in-block partial defs are use-before-def's job
          LintFinding Fd = makeFinding(
              DiagCode::LintUninitRead, name(), B, static_cast<int>(I),
              "register " + R.str() +
                  " is read but no definition of it can reach this block");
          if (!BQ)
            BQ.reset(new RegionPQS(F, B));
          BDD::NodeRef V = BQ->bdd().mkAnd(
              BQ->guardExpr(I), dispatchCond(*BQ, B, I, B.size()));
          Fd.Witness = buildWitness(F, B, *BQ, V,
                                    LintWitness::Expect::UseWithoutDef);
          Fd.Witness->AnchorOp = Op.getId();
          for (size_t M = 0; M < F.numBlocks(); ++M)
            for (const Operation &Def : F.block(M).ops())
              if (!Def.isCmpp() && Def.definesReg(R))
                Fd.Witness->AuxOps.push_back(Def.getId());
          Out.push_back(std::move(Fd));
        }
      }
    }
  }
};

//===----------------------------------------------------------------------===//
// Check 9: resource-oversubscription
//===----------------------------------------------------------------------===//

class ResourceOversubscriptionPass : public LintPass {
public:
  const char *name() const override { return "resource-oversubscription"; }
  const char *description() const override {
    return "a schedule issues more operations in one cycle than the "
           "machine front end fetches (fetch-width occupancy)";
  }

  void run(LintContext &Ctx, std::vector<LintFinding> &Out) override {
    const Function &F = Ctx.func();
    Liveness &LV = Ctx.liveness();
    for (size_t L = 0; L < F.numBlocks(); ++L) {
      const Block &B = F.block(L);
      if (B.empty())
        continue;
      RegionPQS PQS(F, B);
      for (const MachineDesc &MD : Ctx.options().Machines) {
        DepGraph DG(F, B, MD, PQS, LV);
        Schedule S = scheduleBlock(B, DG, MD);
        validate(B, MD, S, MD.fetchWidth(), Out);
      }
      for (const InjectedSchedule &Inj : Ctx.options().Schedules) {
        if (Inj.BlockName != B.getName() || Inj.Cycles.size() != B.size())
          continue; // structural errors are schedule-legality's findings
        const MachineDesc *MD = nullptr;
        static const std::vector<MachineDesc> Models =
            MachineDesc::paperModels();
        for (const MachineDesc &M : Models)
          if (M.getName() == Inj.MachineName)
            MD = &M;
        if (!MD)
          continue;
        int Fetch = Inj.FetchWidth > 0 ? Inj.FetchWidth : MD->fetchWidth();
        Schedule S(Inj.Cycles, B, *MD);
        validate(B, *MD, S, Fetch, Out);
      }
    }
  }

private:
  void validate(const Block &B, const MachineDesc &MD, const Schedule &S,
                int Fetch, std::vector<LintFinding> &Out) {
    if (Fetch <= 0)
      return;
    int MaxCycle = 0;
    for (size_t I = 0; I < S.size(); ++I)
      MaxCycle = std::max(MaxCycle, S.cycleOf(I));
    for (int C = 0; C <= MaxCycle; ++C) {
      int Total = 0;
      for (size_t I = 0; I < S.size(); ++I) {
        if (S.cycleOf(I) != C)
          continue;
        ++Total;
        if (Total != Fetch + 1)
          continue;
        LintFinding Fd = makeFinding(
            DiagCode::LintResourceOversub, name(), B, static_cast<int>(I),
            "fetch width oversubscribed: more than " +
                std::to_string(Fetch) + " operations issue in cycle " +
                std::to_string(C) + " on machine '" + MD.getName() + "'");
        auto W = std::make_shared<LintWitness>();
        W->Kind = LintWitness::Expect::ScheduleRecount;
        W->Solved = true;
        W->SchedBlock = B.getName();
        W->Path.push_back(B.getName());
        for (size_t J = 0; J < S.size(); ++J)
          W->SchedCycles.push_back(S.cycleOf(J));
        W->SchedCycle = C;
        W->SchedUnit = -1;
        W->SchedCap = Fetch;
        Fd.Witness = std::move(W);
        Out.push_back(std::move(Fd));
      }
    }
  }
};

} // namespace

std::unique_ptr<LintPass> cpr::lint_detail::makeDeadUnderPredicatePass() {
  return std::make_unique<DeadUnderPredicatePass>();
}
std::unique_ptr<LintPass> cpr::lint_detail::makeRedundantCompensationPass() {
  return std::make_unique<RedundantCompensationPass>();
}
std::unique_ptr<LintPass> cpr::lint_detail::makeUninitReadPass() {
  return std::make_unique<UninitReadPass>();
}
std::unique_ptr<LintPass> cpr::lint_detail::makeResourceOversubscriptionPass() {
  return std::make_unique<ResourceOversubscriptionPass>();
}

//===- pipeline/CompilerPipeline.h - End-to-end harness ---------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The end-to-end experimental harness reproducing the paper's methodology
/// (Section 7): given a runnable program, it
///
///  1. profiles the baseline superblock code in the interpreter;
///  2. produces the height-reduced version (FRP conversion + ICBM + DCE);
///  3. checks baseline/treated observational equivalence (not part of the
///     paper -- cheap insurance unique to having an interpreter);
///  4. re-profiles the treated code and gathers dynamic operation counts;
///  5. schedules both versions for each requested machine model and
///     estimates cycles, yielding the speedups of Table 2 and the
///     static/dynamic ratios of Table 3.
///
/// runPipeline() is the one-shot convenience wrapper over the staged
/// session API in pipeline/PipelineRun.h -- stage-level access, artifact
/// reuse/injection, and concurrent per-machine / per-predictor execution
/// live there (see docs/PIPELINE.md).
///
//===----------------------------------------------------------------------===//

#ifndef PIPELINE_COMPILERPIPELINE_H
#define PIPELINE_COMPILERPIPELINE_H

#include "cpr/ControlCPR.h"
#include "sched/PerfModel.h"
#include "sim/TraceSimulator.h"
#include "workloads/Kernels.h"

#include <atomic>
#include <string>
#include <vector>

namespace cpr {

class StatsRegistry;

/// Options for one pipeline run.
struct PipelineOptions {
  CPROptions CPR;
  PerfModelOptions Perf;
  /// When >= 2, self-loop blocks of the input are unrolled by this factor
  /// in BOTH the baseline and the treated code before anything else --
  /// the paper's inputs are unrolled superblocks prepared by the IMPACT
  /// compiler, so unrolling is part of the common substrate, not of the
  /// ICBM treatment.
  unsigned UnrollFactor = 1;
  /// Machines to estimate for; defaults to the paper's five.
  std::vector<MachineDesc> Machines = MachineDesc::paperModels();
  /// Abort if the treated code is not observationally equivalent.
  bool CheckEquivalence = true;
  /// When true, the profiling runs also record branch traces and the
  /// pipeline fills PipelineResult::Sim with trace-driven dynamic
  /// estimates (the "Table 2-dyn" data) for every machine x predictor.
  bool Simulate = false;
  /// Predictors simulated when Simulate is set; defaults to the whole
  /// registry (sim/BranchPredictor.h), tage-sc-l included.
  std::vector<PredictorKind> Predictors = allPredictorKinds();
  /// Misprediction penalty in cycles; negative uses each machine's knob.
  int MispredictPenalty = -1;
  /// Decoupled-frontend refinement for the simulator (fetch bandwidth,
  /// BTB target misses -- see sim/TraceSimulator.h). Off by default,
  /// which preserves the legacy flat-penalty accounting and the
  /// penalty-0 == ExitAware invariant.
  FrontendOptions Frontend;
  /// Worker threads for the independent stages (per-machine estimates,
  /// machine x predictor simulations, and -- in runSuite -- whole
  /// benchmarks). 1 = serial; 0 = one per hardware thread. Results and
  /// reported counters are identical at every setting.
  unsigned Threads = 1;
  /// When non-null, every stage reports wall times and outcome counters
  /// here (see support/Statistics.h). Not owned.
  StatsRegistry *Stats = nullptr;

  /// --- Fail-safe compilation (docs/ROBUSTNESS.md) ---------------------
  /// When true, stage failures degrade instead of aborting: a failing
  /// CPR-block transform rolls back just its region (the rest of the
  /// function keeps its treatment), an equivalence mismatch falls the
  /// whole session back to the baseline, and budget exhaustion leaves
  /// remaining regions untreated. Off by default: the differential
  /// fuzzer and legacy callers rely on strict (process-fatal) behavior
  /// to observe compiler defects.
  bool FailSafe = false;
  /// With FailSafe: re-run the observational-equivalence oracle after
  /// every committed region transaction and roll back diverging regions.
  /// Catches verifier-clean miscompiles (e.g. a dropped compensation
  /// copy) at the cost of one interpreter run per CPR block.
  bool RegionEquivalence = false;
  /// Step cap for the tryPrepare() profiling runs; 0 keeps the
  /// interpreter's default. Exhaustion is a BudgetExhausted diagnostic.
  uint64_t InterpMaxSteps = 0;
  /// Budget for the transform stage (steps = CPR-block transforms, plus
  /// an optional wall-clock cap). Zero-initialized = unlimited.
  Budget TransformBudget;
  /// Whole-request deadline (support/Deadline.h). Checked at stage
  /// boundaries and inside the transform's budget polls: expiry degrades
  /// exactly like budget exhaustion but reports
  /// DiagCode::DeadlineExceeded. Inactive by default.
  Deadline RequestDeadline;
  /// Cooperative cancellation (e.g. the requesting client disconnected).
  /// Observed at the same points as the deadline; reports
  /// DiagCode::Cancelled. Not owned; may be set from any thread.
  const std::atomic<bool> *CancelFlag = nullptr;
  /// Run the static semantic checks of src/lint/ (docs/LINT.md) around
  /// the transform: the baseline is linted before CPR and the treated
  /// function after it, with findings reported to Diags and counted in
  /// Stats. When the baseline is lint-clean, post-transform error
  /// findings mean the transform broke an invariant: with FailSafe each
  /// offending region rolls back as its transaction commits (via
  /// CPRContext::RegionLint) and a finding that still survives falls the
  /// session back to the baseline; in strict mode it is fatal. Purely
  /// static -- no interpreter runs, unlike RegionEquivalence.
  bool Lint = false;
  /// Optional sink for stage diagnostics and rollback remarks. Not
  /// owned; may be shared across sessions (it is thread-safe).
  DiagnosticEngine *Diags = nullptr;
  /// Optional content-addressed region memo store (cpr/RegionMemo.h),
  /// shared across sessions (thread-safe; not owned). MemoSalt must
  /// fingerprint the whole request -- program text including inputs,
  /// options, budgets, validation mode -- or cache hits are unsound; the
  /// compile service computes it with serve::requestFingerprint. Null
  /// (the default) compiles cold.
  RegionMemoStore *Memo = nullptr;
  std::string MemoSalt;
};

/// Per-machine timing comparison.
struct MachineComparison {
  std::string MachineName;
  double BaselineCycles = 0.0;
  double TreatedCycles = 0.0;
  double speedup() const {
    return TreatedCycles > 0.0 ? BaselineCycles / TreatedCycles : 0.0;
  }
};

/// Per-machine, per-predictor dynamic timing comparison.
struct SimComparison {
  std::string MachineName;
  std::string PredictorName;
  SimEstimate Baseline;
  SimEstimate Treated;
  double speedup() const {
    return Treated.TotalCycles > 0.0
               ? Baseline.TotalCycles / Treated.TotalCycles
               : 0.0;
  }
};

/// Everything measured for one program.
struct PipelineResult {
  std::string Name;

  // Static operation counts ("S tot" / "S br" of Table 3).
  size_t StaticOpsBaseline = 0;
  size_t StaticOpsTreated = 0;
  size_t StaticBranchesBaseline = 0;
  size_t StaticBranchesTreated = 0;

  // Dynamic operation counts ("D tot" / "D br" of Table 3).
  DynStats DynBaseline;
  DynStats DynTreated;

  // Per-machine cycle estimates (Table 2).
  std::vector<MachineComparison> Machines;

  // Trace-driven dynamic estimates (machine x predictor), filled only
  // when PipelineOptions::Simulate is set.
  std::vector<SimComparison> Sim;

  CPRResult CPR;

  /// The treated function, for inspection/printing.
  std::unique_ptr<Function> Treated;

  double staticOpRatio() const {
    return StaticOpsBaseline
               ? static_cast<double>(StaticOpsTreated) /
                     static_cast<double>(StaticOpsBaseline)
               : 0.0;
  }
  double staticBranchRatio() const {
    return StaticBranchesBaseline
               ? static_cast<double>(StaticBranchesTreated) /
                     static_cast<double>(StaticBranchesBaseline)
               : 0.0;
  }
  double dynOpRatio() const {
    return DynBaseline.OpsDispatched
               ? static_cast<double>(DynTreated.OpsDispatched) /
                     static_cast<double>(DynBaseline.OpsDispatched)
               : 0.0;
  }
  double dynBranchRatio() const {
    return DynBaseline.BranchesDispatched
               ? static_cast<double>(DynTreated.BranchesDispatched) /
                     static_cast<double>(DynBaseline.BranchesDispatched)
               : 0.0;
  }

  /// Speedup on the machine named \p Name, or 0 if absent.
  double speedupOn(const std::string &MachineName) const;

  /// The simulated comparison for (\p MachineName, \p PredictorName), or
  /// nullptr if absent.
  const SimComparison *simOn(const std::string &MachineName,
                             const std::string &PredictorName) const;
};

/// Produces the height-reduced (FRP + ICBM + DCE) version of \p Baseline,
/// profiled with \p Profile. Returns the treated function and fills
/// \p CPROut when non-null.
std::unique_ptr<Function> applyControlCPR(const Function &Baseline,
                                          const ProfileData &Profile,
                                          const CPROptions &Opts,
                                          CPRResult *CPROut = nullptr);

/// Runs the full measurement pipeline on \p Program. Thin compatibility
/// wrapper over a PipelineRun session: the program is cloned (the caller's
/// function is no longer unrolled in place), the serial stages run once,
/// and the per-machine / per-predictor stages fan out over Opts.Threads.
PipelineResult runPipeline(const KernelProgram &Program,
                           const PipelineOptions &Opts = PipelineOptions());

/// Counts static branch operations in \p F.
size_t countStaticBranches(const Function &F);

} // namespace cpr

#endif // PIPELINE_COMPILERPIPELINE_H

//===- pipeline/CompilerPipeline.cpp - End-to-end harness ------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"

#include "interp/Profiler.h"
#include "ir/Verifier.h"
#include "regions/FRPConversion.h"
#include "regions/LoopUnroller.h"
#include "regions/Simplify.h"
#include "support/Error.h"

using namespace cpr;

size_t cpr::countStaticBranches(const Function &F) {
  size_t N = 0;
  for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI)
    for (const Operation &Op : F.block(BI).ops())
      if (Op.isBranch())
        ++N;
  return N;
}

double PipelineResult::speedupOn(const std::string &MachineName) const {
  for (const MachineComparison &M : Machines)
    if (M.MachineName == MachineName)
      return M.speedup();
  return 0.0;
}

const SimComparison *
PipelineResult::simOn(const std::string &MachineName,
                      const std::string &PredictorName) const {
  for (const SimComparison &S : Sim)
    if (S.MachineName == MachineName && S.PredictorName == PredictorName)
      return &S;
  return nullptr;
}

std::unique_ptr<Function> cpr::applyControlCPR(const Function &Baseline,
                                               const ProfileData &Profile,
                                               const CPROptions &Opts,
                                               CPRResult *CPROut) {
  std::unique_ptr<Function> Treated = Baseline.clone();
  // FRP conversion happens per region inside the ICBM driver, which
  // restores regions where the transformation does not apply.
  CPRResult R = runControlCPR(*Treated, Profile, Opts);
  if (CPROut)
    *CPROut = R;
  return Treated;
}

PipelineResult cpr::runPipeline(const KernelProgram &Program,
                                const PipelineOptions &Opts) {
  PipelineResult Res;
  Function &Baseline = *Program.Func;
  Res.Name = Baseline.getName();
  verifyOrDie(Baseline, "pipeline input");

  // Optional preparation: unroll self-loop blocks (applies to the shared
  // baseline, like the paper's IMPACT preprocessing).
  if (Opts.UnrollFactor >= 2) {
    for (size_t I = 0; I < Baseline.numBlocks(); ++I)
      unrollLoop(Baseline, Baseline.block(I), Opts.UnrollFactor);
    // "Unrolling and other traditional code optimizations" (paper
    // Section 6): clean the materialized offset arithmetic.
    simplifyFunction(Baseline);
    eliminateDeadCode(Baseline);
    verifyOrDie(Baseline, "after unrolling");
  }

  // 1. Profile the baseline (recording its branch stream when the
  // dynamic simulation is requested).
  Memory MemBase = Program.InitMem;
  DynStats BaseStats;
  BranchTrace BaseTrace;
  ProfileData BaseProfile =
      profileRun(Baseline, MemBase, Program.InitRegs, &BaseStats,
                 Opts.Simulate ? &BaseTrace : nullptr);
  Res.DynBaseline = BaseStats;

  // 2. Transform.
  Res.Treated = applyControlCPR(Baseline, BaseProfile, Opts.CPR, &Res.CPR);

  // 3. Equivalence oracle.
  if (Opts.CheckEquivalence) {
    EquivResult E = checkEquivalence(Baseline, *Res.Treated, Program.InitMem,
                                     Program.InitRegs);
    if (!E.Equivalent)
      reportFatalError("control CPR changed observable behavior of @" +
                       Baseline.getName() + ": " + E.Detail);
  }

  // 4. Re-profile the treated code (schedule weights must describe the
  // code being scheduled).
  Memory MemTreated = Program.InitMem;
  DynStats TreatedStats;
  BranchTrace TreatedTrace;
  ProfileData TreatedProfile =
      profileRun(*Res.Treated, MemTreated, Program.InitRegs, &TreatedStats,
                 Opts.Simulate ? &TreatedTrace : nullptr);
  Res.DynTreated = TreatedStats;

  // Static counts.
  Res.StaticOpsBaseline = Baseline.totalOps();
  Res.StaticOpsTreated = Res.Treated->totalOps();
  Res.StaticBranchesBaseline = countStaticBranches(Baseline);
  Res.StaticBranchesTreated = countStaticBranches(*Res.Treated);

  // 5. Schedule and estimate per machine.
  for (const MachineDesc &MD : Opts.Machines) {
    MachineComparison MC;
    MC.MachineName = MD.getName();
    MC.BaselineCycles =
        estimatePerformance(Baseline, MD, BaseProfile, Opts.Perf).TotalCycles;
    MC.TreatedCycles =
        estimatePerformance(*Res.Treated, MD, TreatedProfile, Opts.Perf)
            .TotalCycles;
    Res.Machines.push_back(MC);
  }

  // 6. Optional dynamic refinement: replay both traces through each
  // predictor on each machine, with misprediction penalties charged.
  if (Opts.Simulate) {
    SimOptions SO;
    SO.MispredictPenalty = Opts.MispredictPenalty;
    SO.AllowSpeculation = Opts.Perf.AllowSpeculation;
    for (const MachineDesc &MD : Opts.Machines) {
      for (PredictorKind K : Opts.Predictors) {
        SimComparison SC;
        SC.MachineName = MD.getName();
        SC.PredictorName = predictorKindName(K);

        PredictorConfig CB;
        CB.Profile = &BaseProfile;
        std::unique_ptr<BranchPredictor> PB = makePredictor(K, CB);
        SC.Baseline = simulateTrace(Baseline, MD, BaseTrace, *PB, SO);

        PredictorConfig CT;
        CT.Profile = &TreatedProfile;
        std::unique_ptr<BranchPredictor> PT = makePredictor(K, CT);
        SC.Treated = simulateTrace(*Res.Treated, MD, TreatedTrace, *PT, SO);

        if (!SC.Baseline.ok() || !SC.Treated.ok())
          reportFatalError("trace simulation of @" + Baseline.getName() +
                           " failed: " +
                           (SC.Baseline.ok() ? SC.Treated.Error
                                             : SC.Baseline.Error));
        Res.Sim.push_back(std::move(SC));
      }
    }
  }
  return Res;
}

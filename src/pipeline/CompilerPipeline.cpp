//===- pipeline/CompilerPipeline.cpp - End-to-end harness ------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"

#include "interp/Profiler.h"
#include "ir/Verifier.h"
#include "regions/FRPConversion.h"
#include "regions/LoopUnroller.h"
#include "regions/Simplify.h"
#include "support/Error.h"

using namespace cpr;

size_t cpr::countStaticBranches(const Function &F) {
  size_t N = 0;
  for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI)
    for (const Operation &Op : F.block(BI).ops())
      if (Op.isBranch())
        ++N;
  return N;
}

double PipelineResult::speedupOn(const std::string &MachineName) const {
  for (const MachineComparison &M : Machines)
    if (M.MachineName == MachineName)
      return M.speedup();
  return 0.0;
}

std::unique_ptr<Function> cpr::applyControlCPR(const Function &Baseline,
                                               const ProfileData &Profile,
                                               const CPROptions &Opts,
                                               CPRResult *CPROut) {
  std::unique_ptr<Function> Treated = Baseline.clone();
  // FRP conversion happens per region inside the ICBM driver, which
  // restores regions where the transformation does not apply.
  CPRResult R = runControlCPR(*Treated, Profile, Opts);
  if (CPROut)
    *CPROut = R;
  return Treated;
}

PipelineResult cpr::runPipeline(const KernelProgram &Program,
                                const PipelineOptions &Opts) {
  PipelineResult Res;
  Function &Baseline = *Program.Func;
  Res.Name = Baseline.getName();
  verifyOrDie(Baseline, "pipeline input");

  // Optional preparation: unroll self-loop blocks (applies to the shared
  // baseline, like the paper's IMPACT preprocessing).
  if (Opts.UnrollFactor >= 2) {
    for (size_t I = 0; I < Baseline.numBlocks(); ++I)
      unrollLoop(Baseline, Baseline.block(I), Opts.UnrollFactor);
    // "Unrolling and other traditional code optimizations" (paper
    // Section 6): clean the materialized offset arithmetic.
    simplifyFunction(Baseline);
    eliminateDeadCode(Baseline);
    verifyOrDie(Baseline, "after unrolling");
  }

  // 1. Profile the baseline.
  Memory MemBase = Program.InitMem;
  DynStats BaseStats;
  ProfileData BaseProfile =
      profileRun(Baseline, MemBase, Program.InitRegs, &BaseStats);
  Res.DynBaseline = BaseStats;

  // 2. Transform.
  Res.Treated = applyControlCPR(Baseline, BaseProfile, Opts.CPR, &Res.CPR);

  // 3. Equivalence oracle.
  if (Opts.CheckEquivalence) {
    EquivResult E = checkEquivalence(Baseline, *Res.Treated, Program.InitMem,
                                     Program.InitRegs);
    if (!E.Equivalent)
      reportFatalError("control CPR changed observable behavior of @" +
                       Baseline.getName() + ": " + E.Detail);
  }

  // 4. Re-profile the treated code (schedule weights must describe the
  // code being scheduled).
  Memory MemTreated = Program.InitMem;
  DynStats TreatedStats;
  ProfileData TreatedProfile =
      profileRun(*Res.Treated, MemTreated, Program.InitRegs, &TreatedStats);
  Res.DynTreated = TreatedStats;

  // Static counts.
  Res.StaticOpsBaseline = Baseline.totalOps();
  Res.StaticOpsTreated = Res.Treated->totalOps();
  Res.StaticBranchesBaseline = countStaticBranches(Baseline);
  Res.StaticBranchesTreated = countStaticBranches(*Res.Treated);

  // 5. Schedule and estimate per machine.
  for (const MachineDesc &MD : Opts.Machines) {
    MachineComparison MC;
    MC.MachineName = MD.getName();
    MC.BaselineCycles =
        estimatePerformance(Baseline, MD, BaseProfile, Opts.Perf).TotalCycles;
    MC.TreatedCycles =
        estimatePerformance(*Res.Treated, MD, TreatedProfile, Opts.Perf)
            .TotalCycles;
    Res.Machines.push_back(MC);
  }
  return Res;
}

//===- pipeline/CompilerPipeline.cpp - End-to-end harness ------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/CompilerPipeline.h"

#include "pipeline/PipelineRun.h"
#include "support/ThreadPool.h"

using namespace cpr;

size_t cpr::countStaticBranches(const Function &F) {
  size_t N = 0;
  for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI)
    for (const Operation &Op : F.block(BI).ops())
      if (Op.isBranch())
        ++N;
  return N;
}

double PipelineResult::speedupOn(const std::string &MachineName) const {
  for (const MachineComparison &M : Machines)
    if (M.MachineName == MachineName)
      return M.speedup();
  return 0.0;
}

const SimComparison *
PipelineResult::simOn(const std::string &MachineName,
                      const std::string &PredictorName) const {
  for (const SimComparison &S : Sim)
    if (S.MachineName == MachineName && S.PredictorName == PredictorName)
      return &S;
  return nullptr;
}

std::unique_ptr<Function> cpr::applyControlCPR(const Function &Baseline,
                                               const ProfileData &Profile,
                                               const CPROptions &Opts,
                                               CPRResult *CPROut) {
  std::unique_ptr<Function> Treated = Baseline.clone();
  // FRP conversion happens per region inside the ICBM driver, which
  // restores regions where the transformation does not apply.
  CPRResult R = runControlCPR(*Treated, Profile, Opts);
  if (CPROut)
    *CPROut = R;
  return Treated;
}

PipelineResult cpr::runPipeline(const KernelProgram &Program,
                                const PipelineOptions &Opts) {
  KernelProgram Copy;
  Copy.Func = Program.Func->clone();
  Copy.InitRegs = Program.InitRegs;
  Copy.InitMem = Program.InitMem;
  Copy.Description = Program.Description;

  PipelineRun Run(std::move(Copy), Opts, Opts.Stats,
                  Program.Func->getName() + "/");
  if (Opts.Threads == 1)
    return Run.finish();
  ThreadPool Pool(Opts.Threads);
  return Run.finish(&Pool);
}

//===- pipeline/Reports.cpp - Suite-level report rendering -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Reports.h"

#include "support/Statistics.h"
#include "support/TableFormat.h"

using namespace cpr;

std::vector<SuiteRow> cpr::runSuite(const PipelineOptions &Opts) {
  std::vector<SuiteRow> Rows;
  for (const BenchmarkSpec &Spec : paperBenchmarkSuite()) {
    KernelProgram P = Spec.Build();
    SuiteRow Row;
    Row.Name = Spec.Name;
    Row.InSpec95Mean = Spec.InSpec95Mean;
    Row.Result = runPipeline(P, Opts);
    Rows.push_back(std::move(Row));
  }
  return Rows;
}

std::string cpr::renderTable2(const std::vector<SuiteRow> &Rows) {
  if (Rows.empty())
    return "";
  const std::vector<MachineComparison> &Machines = Rows[0].Result.Machines;

  TextTable T;
  std::vector<std::string> Header{"Benchmark"};
  for (const MachineComparison &M : Machines)
    Header.push_back(M.MachineName.substr(0, 3));
  T.setHeader(Header);

  size_t NumM = Machines.size();
  std::vector<std::vector<double>> All(NumM), Spec95(NumM);
  for (const SuiteRow &Row : Rows) {
    std::vector<std::string> Cells{Row.Name};
    for (size_t M = 0; M < NumM; ++M) {
      double S = Row.Result.Machines[M].speedup();
      Cells.push_back(TextTable::fmt(S));
      All[M].push_back(S);
      if (Row.InSpec95Mean)
        Spec95[M].push_back(S);
    }
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> GS{"Gmean-spec95"}, GA{"Gmean-all"};
  for (size_t M = 0; M < NumM; ++M) {
    GS.push_back(TextTable::fmt(geometricMean(Spec95[M])));
    GA.push_back(TextTable::fmt(geometricMean(All[M])));
  }
  T.addRow(GS);
  T.addRow(GA);
  return T.render();
}

std::string cpr::renderTable3(const std::vector<SuiteRow> &Rows) {
  TextTable T;
  T.setHeader({"Benchmark", "S tot", "S br", "D tot", "D br"});
  std::vector<std::vector<double>> All(4), Spec95(4);
  for (const SuiteRow &Row : Rows) {
    const PipelineResult &R = Row.Result;
    double Vals[4] = {R.staticOpRatio(), R.staticBranchRatio(),
                      R.dynOpRatio(), R.dynBranchRatio()};
    std::vector<std::string> Cells{Row.Name};
    for (int C = 0; C < 4; ++C) {
      Cells.push_back(TextTable::fmt(Vals[C]));
      All[static_cast<size_t>(C)].push_back(Vals[C]);
      if (Row.InSpec95Mean)
        Spec95[static_cast<size_t>(C)].push_back(Vals[C]);
    }
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> GS{"Gmean-spec95"}, GA{"Gmean-all"};
  for (int C = 0; C < 4; ++C) {
    GS.push_back(TextTable::fmt(geometricMean(Spec95[static_cast<size_t>(C)])));
    GA.push_back(TextTable::fmt(geometricMean(All[static_cast<size_t>(C)])));
  }
  T.addRow(GS);
  T.addRow(GA);
  return T.render();
}

//===- pipeline/Reports.cpp - Suite-level report rendering -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Reports.h"

#include "pipeline/PipelineRun.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace cpr;

std::vector<SuiteRow> cpr::runSuite(const PipelineOptions &Opts) {
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  std::vector<SuiteRow> Rows(Suite.size());

  // Each benchmark is one task: its session runs serially inside the
  // task (coarse-grained work keeps the pool saturated with 24 rows) and
  // reports into a per-row registry. Rows land in preallocated slots and
  // registries merge in suite order, so tables and stats are identical
  // at every thread count.
  PipelineOptions TaskOpts = Opts;
  TaskOpts.Threads = 1;
  TaskOpts.Stats = nullptr;
  std::vector<StatsRegistry> RowStats(Opts.Stats ? Suite.size() : 0);

  auto RunOne = [&](size_t I) {
    KernelProgram P = Suite[I].Build();
    PipelineRun Run(std::move(P), TaskOpts,
                    Opts.Stats ? &RowStats[I] : nullptr,
                    Suite[I].Name + "/");
    Rows[I].Name = Suite[I].Name;
    Rows[I].InSpec95Mean = Suite[I].InSpec95Mean;
    Rows[I].Result = Run.finish();
  };

  if (Opts.Threads != 1) {
    ThreadPool Pool(Opts.Threads);
    parallelFor(&Pool, Suite.size(), RunOne);
  } else {
    for (size_t I = 0; I < Suite.size(); ++I)
      RunOne(I);
  }

  if (Opts.Stats)
    for (const StatsRegistry &R : RowStats)
      Opts.Stats->mergeFrom(R);
  return Rows;
}

std::string cpr::renderTable2(const std::vector<SuiteRow> &Rows) {
  if (Rows.empty())
    return "";
  const std::vector<MachineComparison> &Machines = Rows[0].Result.Machines;

  TextTable T;
  std::vector<std::string> Header{"Benchmark"};
  for (const MachineComparison &M : Machines)
    Header.push_back(M.MachineName.substr(0, 3));
  T.setHeader(Header);

  size_t NumM = Machines.size();
  std::vector<std::vector<double>> All(NumM), Spec95(NumM);
  for (const SuiteRow &Row : Rows) {
    std::vector<std::string> Cells{Row.Name};
    for (size_t M = 0; M < NumM; ++M) {
      double S = Row.Result.Machines[M].speedup();
      Cells.push_back(TextTable::fmt(S));
      All[M].push_back(S);
      if (Row.InSpec95Mean)
        Spec95[M].push_back(S);
    }
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> GS{"Gmean-spec95"}, GA{"Gmean-all"};
  for (size_t M = 0; M < NumM; ++M) {
    GS.push_back(TextTable::fmt(geometricMean(Spec95[M])));
    GA.push_back(TextTable::fmt(geometricMean(All[M])));
  }
  T.addRow(GS);
  T.addRow(GA);
  return T.render();
}

std::string cpr::renderTable2Dyn(const std::vector<SuiteRow> &Rows) {
  if (Rows.empty() || Rows[0].Result.Sim.empty())
    return "";
  // Collect the distinct machine and predictor names in first-seen order.
  std::vector<std::string> Machines, Predictors;
  for (const SimComparison &S : Rows[0].Result.Sim) {
    if (std::find(Machines.begin(), Machines.end(), S.MachineName) ==
        Machines.end())
      Machines.push_back(S.MachineName);
    if (std::find(Predictors.begin(), Predictors.end(), S.PredictorName) ==
        Predictors.end())
      Predictors.push_back(S.PredictorName);
  }

  std::string Out;
  for (const std::string &P : Predictors) {
    TextTable T;
    std::vector<std::string> Header{"Benchmark"};
    for (const std::string &M : Machines)
      Header.push_back(M.substr(0, 3));
    T.setHeader(Header);

    std::vector<std::vector<double>> All(Machines.size());
    for (const SuiteRow &Row : Rows) {
      std::vector<std::string> Cells{Row.Name};
      for (size_t M = 0; M < Machines.size(); ++M) {
        const SimComparison *S = Row.Result.simOn(Machines[M], P);
        double Speedup = S ? S->speedup() : 0.0;
        Cells.push_back(TextTable::fmt(Speedup));
        All[M].push_back(Speedup);
      }
      T.addRow(Cells);
    }
    T.addSeparator();
    std::vector<std::string> GA{"Gmean-all"};
    for (size_t M = 0; M < Machines.size(); ++M)
      GA.push_back(TextTable::fmt(geometricMean(All[M])));
    T.addRow(GA);

    Out += "Table 2-dyn (" + P + " predictor):\n" + T.render() + "\n";
  }
  return Out;
}

std::string cpr::renderSimMPKI(const std::vector<SuiteRow> &Rows) {
  if (Rows.empty() || Rows[0].Result.Sim.empty())
    return "";
  const std::string &Machine = Rows[0].Result.Sim[0].MachineName;
  std::vector<std::string> Predictors;
  for (const SimComparison &S : Rows[0].Result.Sim)
    if (S.MachineName == Machine &&
        std::find(Predictors.begin(), Predictors.end(), S.PredictorName) ==
            Predictors.end())
      Predictors.push_back(S.PredictorName);

  TextTable T;
  std::vector<std::string> Header{"Benchmark"};
  for (const std::string &P : Predictors)
    Header.push_back(P + " base>cpr");
  T.setHeader(Header);
  for (const SuiteRow &Row : Rows) {
    std::vector<std::string> Cells{Row.Name};
    for (const std::string &P : Predictors) {
      const SimComparison *S = Row.Result.simOn(Machine, P);
      Cells.push_back(S ? TextTable::fmt(S->Baseline.mpki()) + ">" +
                              TextTable::fmt(S->Treated.mpki())
                        : "-");
    }
    T.addRow(Cells);
  }
  return T.render();
}

std::string cpr::renderTable3(const std::vector<SuiteRow> &Rows) {
  TextTable T;
  T.setHeader({"Benchmark", "S tot", "S br", "D tot", "D br"});
  std::vector<std::vector<double>> All(4), Spec95(4);
  for (const SuiteRow &Row : Rows) {
    const PipelineResult &R = Row.Result;
    double Vals[4] = {R.staticOpRatio(), R.staticBranchRatio(),
                      R.dynOpRatio(), R.dynBranchRatio()};
    std::vector<std::string> Cells{Row.Name};
    for (int C = 0; C < 4; ++C) {
      Cells.push_back(TextTable::fmt(Vals[C]));
      All[static_cast<size_t>(C)].push_back(Vals[C]);
      if (Row.InSpec95Mean)
        Spec95[static_cast<size_t>(C)].push_back(Vals[C]);
    }
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> GS{"Gmean-spec95"}, GA{"Gmean-all"};
  for (int C = 0; C < 4; ++C) {
    GS.push_back(TextTable::fmt(geometricMean(Spec95[static_cast<size_t>(C)])));
    GA.push_back(TextTable::fmt(geometricMean(All[static_cast<size_t>(C)])));
  }
  T.addRow(GS);
  T.addRow(GA);
  return T.render();
}

//===- pipeline/Reports.cpp - Suite-level report rendering -----------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/Reports.h"

#include "pipeline/PipelineRun.h"
#include "support/Statistics.h"
#include "support/TableFormat.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <memory>

using namespace cpr;

std::vector<SuiteRow> cpr::runSuite(const PipelineOptions &Opts) {
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  std::vector<SuiteRow> Rows(Suite.size());

  // Each benchmark is one task: its session runs serially inside the
  // task (coarse-grained work keeps the pool saturated with 24 rows) and
  // reports into a per-row registry. Rows land in preallocated slots and
  // registries merge in suite order, so tables and stats are identical
  // at every thread count.
  PipelineOptions TaskOpts = Opts;
  TaskOpts.Threads = 1;
  TaskOpts.Stats = nullptr;
  std::vector<StatsRegistry> RowStats(Opts.Stats ? Suite.size() : 0);

  auto RunOne = [&](size_t I) {
    KernelProgram P = Suite[I].Build();
    PipelineRun Run(std::move(P), TaskOpts,
                    Opts.Stats ? &RowStats[I] : nullptr,
                    Suite[I].Name + "/");
    Rows[I].Name = Suite[I].Name;
    Rows[I].InSpec95Mean = Suite[I].InSpec95Mean;
    Rows[I].Result = Run.finish();
  };

  if (Opts.Threads != 1) {
    ThreadPool Pool(Opts.Threads);
    parallelFor(&Pool, Suite.size(), RunOne);
  } else {
    for (size_t I = 0; I < Suite.size(); ++I)
      RunOne(I);
  }

  if (Opts.Stats)
    for (const StatsRegistry &R : RowStats)
      Opts.Stats->mergeFrom(R);
  return Rows;
}

std::string cpr::renderTable2(const std::vector<SuiteRow> &Rows) {
  if (Rows.empty())
    return "";
  const std::vector<MachineComparison> &Machines = Rows[0].Result.Machines;

  TextTable T;
  std::vector<std::string> Header{"Benchmark"};
  for (const MachineComparison &M : Machines)
    Header.push_back(M.MachineName.substr(0, 3));
  T.setHeader(Header);

  size_t NumM = Machines.size();
  std::vector<std::vector<double>> All(NumM), Spec95(NumM);
  for (const SuiteRow &Row : Rows) {
    std::vector<std::string> Cells{Row.Name};
    for (size_t M = 0; M < NumM; ++M) {
      double S = Row.Result.Machines[M].speedup();
      Cells.push_back(TextTable::fmt(S));
      All[M].push_back(S);
      if (Row.InSpec95Mean)
        Spec95[M].push_back(S);
    }
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> GS{"Gmean-spec95"}, GA{"Gmean-all"};
  for (size_t M = 0; M < NumM; ++M) {
    GS.push_back(TextTable::fmt(geometricMean(Spec95[M])));
    GA.push_back(TextTable::fmt(geometricMean(All[M])));
  }
  T.addRow(GS);
  T.addRow(GA);
  return T.render();
}

std::string cpr::renderTable2Dyn(const std::vector<SuiteRow> &Rows) {
  if (Rows.empty() || Rows[0].Result.Sim.empty())
    return "";
  // Collect the distinct machine and predictor names in first-seen order.
  std::vector<std::string> Machines, Predictors;
  for (const SimComparison &S : Rows[0].Result.Sim) {
    if (std::find(Machines.begin(), Machines.end(), S.MachineName) ==
        Machines.end())
      Machines.push_back(S.MachineName);
    if (std::find(Predictors.begin(), Predictors.end(), S.PredictorName) ==
        Predictors.end())
      Predictors.push_back(S.PredictorName);
  }

  std::string Out;
  for (const std::string &P : Predictors) {
    TextTable T;
    std::vector<std::string> Header{"Benchmark"};
    for (const std::string &M : Machines)
      Header.push_back(M.substr(0, 3));
    T.setHeader(Header);

    std::vector<std::vector<double>> All(Machines.size());
    for (const SuiteRow &Row : Rows) {
      std::vector<std::string> Cells{Row.Name};
      for (size_t M = 0; M < Machines.size(); ++M) {
        const SimComparison *S = Row.Result.simOn(Machines[M], P);
        double Speedup = S ? S->speedup() : 0.0;
        Cells.push_back(TextTable::fmt(Speedup));
        All[M].push_back(Speedup);
      }
      T.addRow(Cells);
    }
    T.addSeparator();
    std::vector<std::string> GA{"Gmean-all"};
    for (size_t M = 0; M < Machines.size(); ++M)
      GA.push_back(TextTable::fmt(geometricMean(All[M])));
    T.addRow(GA);

    Out += "Table 2-dyn (" + P + " predictor):\n" + T.render() + "\n";
  }
  return Out;
}

std::string cpr::renderSimMPKI(const std::vector<SuiteRow> &Rows) {
  if (Rows.empty() || Rows[0].Result.Sim.empty())
    return "";
  const std::string &Machine = Rows[0].Result.Sim[0].MachineName;
  std::vector<std::string> Predictors;
  for (const SimComparison &S : Rows[0].Result.Sim)
    if (S.MachineName == Machine &&
        std::find(Predictors.begin(), Predictors.end(), S.PredictorName) ==
            Predictors.end())
      Predictors.push_back(S.PredictorName);

  TextTable T;
  std::vector<std::string> Header{"Benchmark"};
  for (const std::string &P : Predictors)
    Header.push_back(P + " base>cpr");
  T.setHeader(Header);
  for (const SuiteRow &Row : Rows) {
    std::vector<std::string> Cells{Row.Name};
    for (const std::string &P : Predictors) {
      const SimComparison *S = Row.Result.simOn(Machine, P);
      Cells.push_back(S ? TextTable::fmt(S->Baseline.mpki()) + ">" +
                              TextTable::fmt(S->Treated.mpki())
                        : "-");
    }
    T.addRow(Cells);
  }
  return T.render();
}

std::vector<FrontendCellConfig> cpr::defaultFrontendConfigs() {
  std::vector<FrontendCellConfig> Configs(2);
  Configs[0].Name = "flat";
  Configs[1].Name = "fetch4.btb64x4";
  Configs[1].Frontend.Decoupled = true;
  Configs[1].Frontend.FetchWidth = 4;
  Configs[1].Frontend.UseBTB = true;
  Configs[1].Frontend.BTB.SetBits = 6;
  Configs[1].Frontend.BTB.Ways = 4;
  return Configs;
}

FrontendSweepResult cpr::runFrontendSweep(const FrontendSweepOptions &Opts) {
  std::vector<BenchmarkSpec> Suite = paperBenchmarkSuite();
  if (Opts.MaxWorkloads != 0 && Suite.size() > Opts.MaxWorkloads)
    Suite.resize(Opts.MaxWorkloads);

  FrontendSweepResult Res;
  for (const BenchmarkSpec &S : Suite)
    Res.Workloads.push_back(S.Name);

  size_t PerWorkload =
      Opts.Machines.size() * Opts.Predictors.size() * Opts.Frontends.size();
  Res.Cells.resize(Suite.size() * PerWorkload);

  // One task per workload, like runSuite: the session's serial stages run
  // once and every cell of the workload reuses them. Cells land in
  // preallocated slots and per-row registries merge in suite order, so
  // the result is byte-identical at every thread count.
  PipelineOptions TaskOpts;
  TaskOpts.Simulate = true;
  TaskOpts.Machines = Opts.Machines;
  TaskOpts.Predictors = Opts.Predictors;
  std::vector<StatsRegistry> RowStats(Opts.Stats ? Suite.size() : 0);

  auto RunOne = [&](size_t I) {
    KernelProgram P = Suite[I].Build();
    PipelineRun Run(std::move(P), TaskOpts,
                    Opts.Stats ? &RowStats[I] : nullptr,
                    Suite[I].Name + "/");
    Run.prepare();
    size_t Cell = I * PerWorkload;
    for (const MachineDesc &MD : Opts.Machines)
      for (PredictorKind K : Opts.Predictors)
        for (const FrontendCellConfig &FC : Opts.Frontends) {
          FrontendCell &C = Res.Cells[Cell++];
          C.Workload = Suite[I].Name;
          C.Machine = MD.getName();
          C.Predictor = predictorKindName(K);
          C.Frontend = FC.Name;
          C.Sim = Run.simulate(MD, K, FC.Frontend, FC.Name);
        }
  };

  if (Opts.Threads != 1) {
    ThreadPool Pool(Opts.Threads);
    parallelFor(&Pool, Suite.size(), RunOne);
  } else {
    for (size_t I = 0; I < Suite.size(); ++I)
      RunOne(I);
  }

  if (Opts.Stats)
    for (const StatsRegistry &R : RowStats)
      Opts.Stats->mergeFrom(R);
  return Res;
}

namespace {

/// Distinct values of \p Get over \p Cells, in first-seen order.
template <typename GetFn>
std::vector<std::string> distinctValues(const std::vector<FrontendCell> &Cells,
                                        GetFn Get) {
  std::vector<std::string> Out;
  for (const FrontendCell &C : Cells)
    if (std::find(Out.begin(), Out.end(), Get(C)) == Out.end())
      Out.push_back(Get(C));
  return Out;
}

const FrontendCell *findCell(const FrontendSweepResult &R,
                             const std::string &W, const std::string &M,
                             const std::string &P, const std::string &F) {
  for (const FrontendCell &C : R.Cells)
    if (C.Workload == W && C.Machine == M && C.Predictor == P &&
        C.Frontend == F)
      return &C;
  return nullptr;
}

} // namespace

std::string cpr::renderFrontendSweep(const FrontendSweepResult &R) {
  if (R.Cells.empty())
    return "";
  std::vector<std::string> Machines =
      distinctValues(R.Cells, [](const FrontendCell &C) { return C.Machine; });
  std::vector<std::string> Predictors = distinctValues(
      R.Cells, [](const FrontendCell &C) { return C.Predictor; });
  std::vector<std::string> Frontends = distinctValues(
      R.Cells, [](const FrontendCell &C) { return C.Frontend; });

  std::string Out;
  for (const std::string &F : Frontends)
    for (const std::string &P : Predictors) {
      TextTable T;
      std::vector<std::string> Header{"Benchmark"};
      for (const std::string &M : Machines)
        Header.push_back(M.substr(0, 3));
      T.setHeader(Header);

      std::vector<std::vector<double>> All(Machines.size());
      for (const std::string &W : R.Workloads) {
        std::vector<std::string> Cells{W};
        for (size_t M = 0; M < Machines.size(); ++M) {
          const FrontendCell *C = findCell(R, W, Machines[M], P, F);
          double Speedup = C ? C->Sim.speedup() : 0.0;
          Cells.push_back(TextTable::fmt(Speedup));
          All[M].push_back(Speedup);
        }
        T.addRow(Cells);
      }
      T.addSeparator();
      std::vector<std::string> GA{"Gmean-all"};
      for (size_t M = 0; M < Machines.size(); ++M)
        GA.push_back(TextTable::fmt(geometricMean(All[M])));
      T.addRow(GA);

      Out += "Table 2-dyn (" + P + " predictor, " + F + " frontend):\n" +
             T.render() + "\n";
    }
  return Out;
}

std::string cpr::renderFrontendDetail(const FrontendSweepResult &R) {
  if (R.Cells.empty())
    return "";
  std::vector<std::string> Machines =
      distinctValues(R.Cells, [](const FrontendCell &C) { return C.Machine; });
  std::vector<std::string> Predictors = distinctValues(
      R.Cells, [](const FrontendCell &C) { return C.Predictor; });
  std::vector<std::string> Frontends = distinctValues(
      R.Cells, [](const FrontendCell &C) { return C.Frontend; });
  const std::string &M = Machines.back();
  const std::string &P = Predictors.back();

  std::string Out;
  for (const std::string &F : Frontends) {
    TextTable T;
    T.setHeader({"Benchmark", "MPKI b>c", "BTB-MPKI b>c", "stalls b>c"});
    for (const std::string &W : R.Workloads) {
      const FrontendCell *C = findCell(R, W, M, P, F);
      if (!C) {
        T.addRow({W, "-", "-", "-"});
        continue;
      }
      T.addRow({W,
                TextTable::fmt(C->Sim.Baseline.mpki()) + ">" +
                    TextTable::fmt(C->Sim.Treated.mpki()),
                TextTable::fmt(C->Sim.Baseline.btbMpki()) + ">" +
                    TextTable::fmt(C->Sim.Treated.btbMpki()),
                std::to_string(C->Sim.Baseline.FetchStallCycles) + ">" +
                    std::to_string(C->Sim.Treated.FetchStallCycles)});
    }
    Out += "Frontend detail (" + F + " frontend, " + M + " machine, " + P +
           " predictor):\n" + T.render() + "\n";
  }
  return Out;
}

std::string cpr::renderTable3(const std::vector<SuiteRow> &Rows) {
  TextTable T;
  T.setHeader({"Benchmark", "S tot", "S br", "D tot", "D br"});
  std::vector<std::vector<double>> All(4), Spec95(4);
  for (const SuiteRow &Row : Rows) {
    const PipelineResult &R = Row.Result;
    double Vals[4] = {R.staticOpRatio(), R.staticBranchRatio(),
                      R.dynOpRatio(), R.dynBranchRatio()};
    std::vector<std::string> Cells{Row.Name};
    for (int C = 0; C < 4; ++C) {
      Cells.push_back(TextTable::fmt(Vals[C]));
      All[static_cast<size_t>(C)].push_back(Vals[C]);
      if (Row.InSpec95Mean)
        Spec95[static_cast<size_t>(C)].push_back(Vals[C]);
    }
    T.addRow(Cells);
  }
  T.addSeparator();
  std::vector<std::string> GS{"Gmean-spec95"}, GA{"Gmean-all"};
  for (int C = 0; C < 4; ++C) {
    GS.push_back(TextTable::fmt(geometricMean(Spec95[static_cast<size_t>(C)])));
    GA.push_back(TextTable::fmt(geometricMean(All[static_cast<size_t>(C)])));
  }
  T.addRow(GS);
  T.addRow(GA);
  return T.render();
}

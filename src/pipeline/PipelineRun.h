//===- pipeline/PipelineRun.h - Stage-based pipeline session ----*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The staged form of the experimental harness. A PipelineRun is one
/// measurement session over one program, decomposed into explicit stages
/// whose intermediate artifacts are computed once and then shared by
/// every downstream consumer:
///
///   prepare (unroll)                           [serial]
///     -> profileBaseline  (profile + trace)    [serial]
///     -> transform        (FRP + ICBM + DCE)   [serial]
///     -> checkEquivalence (interpreter oracle) [serial]
///     -> profileTreated   (profile + trace)    [serial]
///     -> estimateMachine(M)                    [parallel over machines]
///     -> simulate(M, P)                        [parallel over machine x
///                                               predictor]
///
/// Stage accessors are lazy: asking for an artifact runs the stages it
/// depends on (once) and caches the result, so a caller that only wants
/// a profile pays for nothing else. Artifacts can also be injected
/// (setBaselineProfile, setTreated) to resume a session from externally
/// produced inputs -- a saved profile, or a transformation done by other
/// means -- with the untouched stages still usable.
///
/// Thread-safety contract: the serial stage accessors and prepare() must
/// be called from one thread at a time. After prepare() has returned (or
/// all serial artifacts have been forced), estimateMachine() and
/// simulate() are const over shared immutable artifacts and safe to call
/// concurrently from many threads; each call builds its own schedules
/// and predictor state. finish() is terminal: it forces everything,
/// optionally fanning the per-machine / per-predictor stages out on a
/// ThreadPool, and moves the treated function into the returned
/// PipelineResult.
///
/// Every stage reports wall time and outcome counters into an optional
/// StatsRegistry (see support/Statistics.h for the determinism rules).
///
//===----------------------------------------------------------------------===//

#ifndef PIPELINE_PIPELINERUN_H
#define PIPELINE_PIPELINERUN_H

#include "interp/Profiler.h"
#include "pipeline/CompilerPipeline.h"

namespace cpr {

struct FunctionAnalyses;
class ThreadPool;

/// One stage-based measurement session over one program.
class PipelineRun {
public:
  /// Takes ownership of \p Program. \p Stats (optional, may outlive many
  /// sessions) receives counters/times under keys prefixed with
  /// \p StatsPrefix.
  explicit PipelineRun(KernelProgram Program,
                       PipelineOptions Opts = PipelineOptions(),
                       StatsRegistry *Stats = nullptr,
                       std::string StatsPrefix = "");
  /// Out of line: members hold types only PipelineRun.cpp completes.
  ~PipelineRun();

  const PipelineOptions &options() const { return Opts; }
  const std::string &name() const { return Name; }

  /// --- Artifact injection (before the corresponding stage runs) -------
  /// Supplies a profile for the baseline (e.g. parsed from ProfileIO
  /// text), skipping the baseline profiling run. Dynamic baseline stats
  /// and the baseline trace are then unavailable unless re-profiled by a
  /// later stage; simulation requires traced profiling runs, so sessions
  /// with injected profiles cannot simulate the baseline.
  void setBaselineProfile(ProfileData Profile);

  /// Supplies the treated function (e.g. a phase experiment's output),
  /// skipping the transform stage; cprResult() is then all-zero.
  void setTreated(std::unique_ptr<Function> Treated);

  /// --- Serial stages (lazy, cached, single-threaded) ------------------
  /// The prepared baseline: the input after optional unrolling.
  const Function &baseline();
  /// Profile of the prepared baseline (stage: profile-baseline).
  const ProfileData &baselineProfile();
  /// Dynamic op counts of the baseline profiling run.
  const DynStats &baselineDynStats();
  /// Branch trace of the baseline profiling run (Opts.Simulate only).
  const BranchTrace &baselineTrace();
  /// The height-reduced function (stage: transform).
  const Function &treated();
  /// Transformation outcome counters (zero when treated was injected).
  const CPRResult &cprResult();
  /// Runs the observational-equivalence oracle once; fatal on mismatch.
  void checkEquivalence();
  /// Non-fatal form of the oracle for callers that triage mismatches
  /// themselves (the differential fuzzer). Cached like every stage.
  const EquivResult &checkEquivalenceResult();
  /// Profile of the treated function (stage: profile-treated).
  const ProfileData &treatedProfile();
  const DynStats &treatedDynStats();
  const BranchTrace &treatedTrace();

  /// Solved whole-function dataflow analyses (analysis/AnalysisCache.h)
  /// of the prepared baseline / treated function: computed once,
  /// serially, then shared const by the lint stage, the performance
  /// model, and the scheduler. Pure functions of the IR, so sharing
  /// never changes any downstream output.
  const FunctionAnalyses &baselineAnalyses();
  const FunctionAnalyses &treatedAnalyses();

  /// Forces every serial stage above (honoring Opts.CheckEquivalence).
  void prepare();

  /// Fail-safe form of prepare() (docs/ROBUSTNESS.md): profiling runs are
  /// budgeted (Opts.InterpMaxSteps) and non-halting runs come back as a
  /// diagnostic instead of aborting. A failed *baseline* profile makes
  /// the whole session unusable and is returned; everything downstream
  /// degrades -- failing CPR regions roll back, an equivalence mismatch
  /// or unprofilable treated function falls back to the baseline -- and
  /// still returns success. Most useful with Opts.FailSafe; in strict
  /// mode only the profiling runs gain the non-fatal treatment.
  Status tryPrepare();

  /// Whether a fail-safe stage fell the session back to the untreated
  /// baseline (the treated function is a baseline clone).
  bool fellBack() const { return FellBack; }

  /// --- Concurrent stages (const; require prepare()) -------------------
  /// Static-schedule cycle comparison on \p MD.
  MachineComparison estimateMachine(const MachineDesc &MD) const;
  /// Trace-driven dynamic comparison on \p MD under predictor \p K,
  /// using Opts.Frontend for the frontend cost model.
  SimComparison simulate(const MachineDesc &MD, PredictorKind K) const;
  /// Same, with an explicit frontend configuration -- lets one prepared
  /// session sweep several BTB/fetch geometries without re-profiling
  /// (pipeline/Reports.h's runFrontendSweep). \p CellName, when
  /// non-empty, distinguishes the stats keys of different frontend
  /// configurations of the same (machine, predictor) pair.
  SimComparison simulate(const MachineDesc &MD, PredictorKind K,
                         const FrontendOptions &FE,
                         const std::string &CellName = "") const;

  /// --- Terminal -------------------------------------------------------
  /// Runs the whole cross-product (machines, and machine x predictor
  /// when Opts.Simulate) -- on \p Pool when given, inline otherwise --
  /// and assembles the legacy PipelineResult. The treated function is
  /// moved into the result; the session is then *poisoned* -- any further
  /// stage access (or a second finish()) is a fatal error rather than a
  /// silent use-after-move.
  PipelineResult finish(ThreadPool *Pool = nullptr);

private:
  void recordTransformStats();
  /// Fatal if finish() already ran (the poison check).
  void requireLive(const char *Stage) const;
  /// Degrades the session to the untreated baseline: reports \p Msg (and
  /// a recovery remark) to Opts.Diags, replaces the treated function with
  /// a baseline clone, zeroes the CPR counters, and invalidates the
  /// treated-side artifacts.
  void fallbackToBaseline(DiagCode Code, std::string Msg,
                          const char *Site);

  KernelProgram Program;
  PipelineOptions Opts;
  StatsRegistry *Stats;
  std::string Prefix;
  std::string Name;

  bool Prepared = false;
  bool Finished = false;
  bool FellBack = false;
  bool HaveBaselineProfile = false;
  bool BaselineProfileInjected = false;
  bool HaveTreated = false;
  bool TreatedInjected = false;
  bool EquivalenceDone = false;
  bool HaveTreatedProfile = false;
  EquivResult Equivalence;

  ProfileData BaseProfile;
  DynStats BaseStats;
  BranchTrace BaseTrace;
  std::unique_ptr<Function> Treated;
  std::unique_ptr<FunctionAnalyses> BaseFA;
  std::unique_ptr<FunctionAnalyses> TreatedFA;
  CPRResult CPR;
  ProfileData TreatedProf;
  DynStats TreatedStats;
  BranchTrace TreatedTraceData;
};

} // namespace cpr

#endif // PIPELINE_PIPELINERUN_H

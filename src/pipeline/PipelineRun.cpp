//===- pipeline/PipelineRun.cpp - Stage-based pipeline session -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "pipeline/PipelineRun.h"

#include "analysis/AnalysisCache.h"
#include "interp/Profiler.h"
#include "ir/Verifier.h"
#include "lint/Lint.h"
#include "regions/DeadCodeElim.h"
#include "regions/LoopUnroller.h"
#include "regions/Simplify.h"
#include "support/Error.h"
#include "support/FaultInjector.h"
#include "support/Statistics.h"
#include "support/ThreadPool.h"

#include <cassert>

using namespace cpr;

PipelineRun::PipelineRun(KernelProgram ProgramIn, PipelineOptions OptsIn,
                         StatsRegistry *StatsIn, std::string StatsPrefix)
    : Program(std::move(ProgramIn)), Opts(std::move(OptsIn)), Stats(StatsIn),
      Prefix(std::move(StatsPrefix)) {
  if (!Program.Func)
    reportFatalError("PipelineRun requires a program with a function");
  Name = Program.Func->getName();
  verifyOrDie(*Program.Func, "pipeline input");
}

PipelineRun::~PipelineRun() = default;

void PipelineRun::setBaselineProfile(ProfileData Profile) {
  if (HaveBaselineProfile)
    reportFatalError("PipelineRun: baseline profile already computed");
  BaseProfile = std::move(Profile);
  HaveBaselineProfile = true;
  BaselineProfileInjected = true;
}

void PipelineRun::setTreated(std::unique_ptr<Function> TreatedIn) {
  if (HaveTreated)
    reportFatalError("PipelineRun: treated function already present");
  if (!TreatedIn)
    reportFatalError("PipelineRun: setTreated requires a function");
  verifyOrDie(*TreatedIn, "injected treated function");
  Treated = std::move(TreatedIn);
  HaveTreated = true;
  TreatedInjected = true;
}

void PipelineRun::requireLive(const char *Stage) const {
  if (Finished)
    reportFatalError(std::string("PipelineRun: ") + Stage +
                     " called after finish(); the session is terminal and "
                     "its treated function has been moved out");
}

void PipelineRun::fallbackToBaseline(DiagCode Code, std::string Msg,
                                     const char *Site) {
  if (Opts.Diags) {
    Opts.Diags->report(DiagSeverity::Error, Code, Msg, Site);
    Opts.Diags->report(DiagSeverity::Remark, DiagCode::RegionRolledBack,
                       "@" + Name + " fell back to the untreated baseline",
                       Site);
  }
  Treated = baseline().clone();
  HaveTreated = true;
  TreatedInjected = false;
  TreatedFA.reset(); // described the abandoned function
  CPR = CPRResult();
  FellBack = true;
  // Invalidate the treated-side artifacts: they described the abandoned
  // function.
  HaveTreatedProfile = false;
  TreatedProf = ProfileData();
  TreatedStats = DynStats();
  TreatedTraceData = BranchTrace();
  EquivalenceDone = false;
  if (Stats)
    Stats->addCount(Prefix + "cpr/fallback_baseline", 1);
}

const Function &PipelineRun::baseline() {
  requireLive("baseline");
  if (!Prepared) {
    Prepared = true;
    Function &Baseline = *Program.Func;
    // Optional preparation: unroll self-loop blocks (applies to the
    // shared baseline, like the paper's IMPACT preprocessing).
    if (Opts.UnrollFactor >= 2) {
      PassTimer T(Stats, Prefix + "prepare");
      for (size_t I = 0; I < Baseline.numBlocks(); ++I)
        unrollLoop(Baseline, Baseline.block(I), Opts.UnrollFactor);
      // "Unrolling and other traditional code optimizations" (paper
      // Section 6): clean the materialized offset arithmetic.
      simplifyFunction(Baseline);
      eliminateDeadCode(Baseline);
      verifyOrDie(Baseline, "after unrolling");
    }
  }
  return *Program.Func;
}

const FunctionAnalyses &PipelineRun::baselineAnalyses() {
  requireLive("baselineAnalyses");
  if (!BaseFA) {
    const Function &Base = baseline();
    PassTimer T(Stats, Prefix + "analyses_baseline");
    BaseFA = std::make_unique<FunctionAnalyses>(Base);
  }
  return *BaseFA;
}

const FunctionAnalyses &PipelineRun::treatedAnalyses() {
  requireLive("treatedAnalyses");
  if (!TreatedFA) {
    const Function &TreatedF = treated();
    PassTimer T(Stats, Prefix + "analyses_treated");
    TreatedFA = std::make_unique<FunctionAnalyses>(TreatedF);
  }
  return *TreatedFA;
}

const ProfileData &PipelineRun::baselineProfile() {
  requireLive("baselineProfile");
  if (!HaveBaselineProfile) {
    const Function &Baseline = baseline();
    PassTimer T(Stats, Prefix + "profile_baseline");
    Memory Mem = Program.InitMem;
    BaseProfile = profileRun(Baseline, Mem, Program.InitRegs, &BaseStats,
                             Opts.Simulate ? &BaseTrace : nullptr);
    HaveBaselineProfile = true;
    if (Stats) {
      Stats->addCount(Prefix + "dyn_ops_baseline",
                      static_cast<double>(BaseStats.OpsDispatched));
      Stats->addCount(Prefix + "dyn_branches_baseline",
                      static_cast<double>(BaseStats.BranchesDispatched));
    }
  }
  return BaseProfile;
}

const DynStats &PipelineRun::baselineDynStats() {
  baselineProfile();
  return BaseStats;
}

const BranchTrace &PipelineRun::baselineTrace() {
  if (!Opts.Simulate)
    reportFatalError("PipelineRun: baselineTrace requires Opts.Simulate");
  if (BaselineProfileInjected)
    reportFatalError("PipelineRun: no trace for an injected profile");
  baselineProfile();
  return BaseTrace;
}

void PipelineRun::recordTransformStats() {
  if (!Stats)
    return;
  Stats->addCount(Prefix + "cpr/regions", CPR.RegionsProcessed);
  Stats->addCount(Prefix + "cpr/blocks_formed", CPR.CPRBlocksFormed);
  Stats->addCount(Prefix + "cpr/blocks_transformed",
                  CPR.CPRBlocksTransformed);
  Stats->addCount(Prefix + "cpr/branches_merged", CPR.BranchesCovered);
  Stats->addCount(Prefix + "cpr/ops_moved_off_trace", CPR.OpsMovedOffTrace);
  Stats->addCount(Prefix + "cpr/ops_split", CPR.OpsSplit);
  Stats->addCount(Prefix + "cpr/blocks_rolled_back", CPR.BlocksRolledBack);
  Stats->addCount(Prefix + "cpr/regions_rolled_back", CPR.RegionsRolledBack);
  Stats->addCount(Prefix + "cpr/regions_skipped_budget",
                  CPR.RegionsSkippedBudget);
  Stats->addCount(Prefix + "budget/transform_exhausted",
                  CPR.BudgetExhausted ? 1 : 0);
  Stats->addCount(Prefix + "static_ops_baseline",
                  static_cast<double>(baseline().totalOps()));
  Stats->addCount(Prefix + "static_ops_treated",
                  static_cast<double>(Treated->totalOps()));
  Stats->addCount(Prefix + "static_branches_baseline",
                  static_cast<double>(countStaticBranches(baseline())));
  Stats->addCount(Prefix + "static_branches_treated",
                  static_cast<double>(countStaticBranches(*Treated)));
}

const Function &PipelineRun::treated() {
  requireLive("treated");
  if (!HaveTreated) {
    const ProfileData &Profile = baselineProfile();
    const Function &Base = baseline();
    PassTimer T(Stats, Prefix + "transform");
    Treated = Base.clone();
    HaveTreated = true;
    if (Opts.FailSafe && fault::shouldFail("pipeline.transform")) {
      // Stage-level fault: skip the transform entirely; the baseline
      // clone *is* the (untreated) result.
      T.stop();
      fallbackToBaseline(DiagCode::TransformFault,
                         "injected fault in the transform stage",
                         "pipeline.transform");
      recordTransformStats();
      return *Treated;
    }
    CPRContext Ctx;
    Ctx.FailSafe = Opts.FailSafe;
    Ctx.Diags = Opts.Diags;
    Ctx.Memo = Opts.Memo;
    Ctx.MemoSalt = Opts.MemoSalt;
    BudgetTracker TransformBudget(Opts.TransformBudget, Opts.RequestDeadline,
                                  Opts.CancelFlag);
    // The tracker is live whenever *any* limit can trip: a plain budget,
    // a request deadline, or a cancel flag -- they all surface through
    // the same per-region exhaustion poll in runControlCPR.
    if (!Opts.TransformBudget.unlimited() || Opts.RequestDeadline.active() ||
        Opts.CancelFlag)
      Ctx.Budget = &TransformBudget;
    // Static-lint stage (docs/LINT.md). The baseline result gates the
    // post-transform policy: findings the input already had are not the
    // transform's fault, so regression detection is differential.
    LintOptions LintOpts;
    LintOpts.Machines = Opts.Machines;
    LintDriver Linter = LintDriver::withBuiltinPasses(std::move(LintOpts));
    bool BaselineLintClean = true;
    if (Opts.Lint) {
      baselineAnalyses(); // shared with estimateMachine; computed once
      PassTimer LT(Stats, Prefix + "lint_baseline");
      LintResult LR = Linter.run(Base, BaseFA.get(), &Program.InitRegs);
      if (Opts.Diags)
        reportLintFindings(LR, *Opts.Diags);
      if (Stats)
        Stats->addCount(Prefix + "lint/baseline_findings",
                        static_cast<double>(LR.Findings.size()));
      BaselineLintClean = LR.errorCount() == 0;
    }
    if (Opts.Lint && Opts.FailSafe && BaselineLintClean)
      Ctx.RegionLint = [this, &Linter](const Function &Candidate) -> Status {
        return lintStatus(Linter.run(Candidate, nullptr, &Program.InitRegs));
      };
    if (Opts.FailSafe && Opts.RegionEquivalence)
      Ctx.RegionOracle = [this, &Base](const Function &Candidate) -> Status {
        if (fault::shouldFail("interp.oracle"))
          return Status::error(DiagCode::OracleMismatch, "injected fault",
                               "interp.oracle");
        EquivResult E = cpr::checkEquivalence(
            Base, Candidate, Program.InitMem, Program.InitRegs);
        if (!E.Equivalent)
          return Status::error(DiagCode::OracleMismatch,
                               "region equivalence re-check failed [" +
                                   std::string(divergenceName(E.Kind)) +
                                   "]: " + E.Detail,
                               "interp.oracle");
        return Status::success();
      };
    CPR = runControlCPR(*Treated, Profile, Opts.CPR, Ctx);
    T.stop();
    if (Opts.Lint) {
      treatedAnalyses(); // the transform is done mutating *Treated
      PassTimer LT(Stats, Prefix + "lint_treated");
      LintResult LR =
          Linter.run(*Treated, TreatedFA.get(), &Program.InitRegs);
      if (Opts.Diags)
        reportLintFindings(LR, *Opts.Diags);
      if (Stats)
        Stats->addCount(Prefix + "lint/treated_findings",
                        static_cast<double>(LR.Findings.size()));
      if (BaselineLintClean && LR.errorCount() > 0) {
        const LintFinding *First = nullptr;
        for (const LintFinding &F : LR.Findings)
          if (F.Severity == DiagSeverity::Error && !First)
            First = &F;
        std::string Msg = "post-transform lint found " +
                          std::to_string(LR.errorCount()) +
                          " invariant violation(s) in @" + Name + "; first: " +
                          First->str();
        if (!Opts.FailSafe)
          reportFatalError(Msg);
        LT.stop();
        fallbackToBaseline(First->Code, std::move(Msg),
                           "lint.pipeline");
      }
    }
    recordTransformStats();
  }
  return *Treated;
}

const CPRResult &PipelineRun::cprResult() {
  treated();
  return CPR;
}

const EquivResult &PipelineRun::checkEquivalenceResult() {
  requireLive("checkEquivalenceResult");
  if (!EquivalenceDone) {
    const Function &TreatedF = treated();
    PassTimer T(Stats, Prefix + "equivalence");
    Equivalence = cpr::checkEquivalence(baseline(), TreatedF,
                                        Program.InitMem, Program.InitRegs);
    EquivalenceDone = true;
  }
  return Equivalence;
}

void PipelineRun::checkEquivalence() {
  const EquivResult &E = checkEquivalenceResult();
  if (E.Equivalent)
    return;
  std::string Msg = "control CPR changed observable behavior of @" + Name +
                    " [" + divergenceName(E.Kind) + "]: " + E.Detail;
  if (!Opts.FailSafe)
    reportFatalError(Msg);
  // Fail-safe degradation: the treated function is abandoned for a
  // baseline clone, so finish() still yields a runnable result.
  fallbackToBaseline(DiagCode::OracleMismatch, std::move(Msg),
                     "interp.oracle");
}

const ProfileData &PipelineRun::treatedProfile() {
  requireLive("treatedProfile");
  if (!HaveTreatedProfile) {
    const Function &TreatedF = treated();
    PassTimer T(Stats, Prefix + "profile_treated");
    Memory Mem = Program.InitMem;
    TreatedProf =
        profileRun(TreatedF, Mem, Program.InitRegs, &TreatedStats,
                   Opts.Simulate ? &TreatedTraceData : nullptr);
    HaveTreatedProfile = true;
    if (Stats) {
      Stats->addCount(Prefix + "dyn_ops_treated",
                      static_cast<double>(TreatedStats.OpsDispatched));
      Stats->addCount(Prefix + "dyn_branches_treated",
                      static_cast<double>(TreatedStats.BranchesDispatched));
    }
  }
  return TreatedProf;
}

const DynStats &PipelineRun::treatedDynStats() {
  treatedProfile();
  return TreatedStats;
}

const BranchTrace &PipelineRun::treatedTrace() {
  if (!Opts.Simulate)
    reportFatalError("PipelineRun: treatedTrace requires Opts.Simulate");
  treatedProfile();
  return TreatedTraceData;
}

void PipelineRun::prepare() {
  baselineProfile();
  treated();
  if (Opts.CheckEquivalence)
    checkEquivalence();
  treatedProfile();
  // Solve the shared analysis bundles serially, before the concurrent
  // per-machine stages consume them.
  baselineAnalyses();
  treatedAnalyses();
}

Status PipelineRun::tryPrepare() {
  requireLive("tryPrepare");

  // Request deadline / client cancellation, polled at stage boundaries
  // (docs/SERVICE.md "Resilience"). In fail-safe mode an expired or
  // cancelled request degrades to the baseline right away instead of
  // starting work its requester will never wait for; the transform
  // itself polls the same limits per region through Ctx.Budget, and the
  // profiling runs stay bounded by InterpMaxSteps.
  auto ExpiryCode = [this] {
    if (Opts.CancelFlag && Opts.CancelFlag->load(std::memory_order_relaxed))
      return DiagCode::Cancelled;
    if (Opts.RequestDeadline.expired())
      return DiagCode::DeadlineExceeded;
    return DiagCode::None;
  };
  auto ExpiryMsg = [this](DiagCode Code) {
    return Code == DiagCode::Cancelled
               ? std::string("request cancelled by client")
               : Opts.RequestDeadline.describeExpiry();
  };
  // Degrades an expired session: baseline clone as the result, and the
  // baseline artifacts double as the treated ones (the clone is the same
  // function on the same inputs, so the profiles are identical by
  // construction -- no second interpreter run).
  auto DegradeExpired = [this, &ExpiryMsg](DiagCode Code) {
    fallbackToBaseline(Code, ExpiryMsg(Code), "pipeline.deadline");
    TreatedProf = BaseProfile;
    TreatedStats = BaseStats;
    TreatedTraceData = BaseTrace;
    HaveTreatedProfile = true;
    return Status::success();
  };

  // Baseline profile, budgeted and non-fatal: without it nothing
  // downstream can run, so a failure here fails the session.
  if (!HaveBaselineProfile) {
    const Function &Base = baseline();
    PassTimer T(Stats, Prefix + "profile_baseline");
    Memory Mem = Program.InitMem;
    Expected<ProfileData> P =
        tryProfileRun(Base, Mem, Program.InitRegs, &BaseStats,
                      Opts.Simulate ? &BaseTrace : nullptr,
                      Opts.InterpMaxSteps);
    if (!P) {
      Diagnostic D = P.takeDiagnostic();
      if (Opts.Diags)
        Opts.Diags->report(D);
      return Status::failure(std::move(D));
    }
    BaseProfile = P.takeValue();
    HaveBaselineProfile = true;
    if (Stats) {
      Stats->addCount(Prefix + "dyn_ops_baseline",
                      static_cast<double>(BaseStats.OpsDispatched));
      Stats->addCount(Prefix + "dyn_branches_baseline",
                      static_cast<double>(BaseStats.BranchesDispatched));
    }
  }

  // Stage boundary: degrade before the transform even starts.
  if (Opts.FailSafe && !HaveTreated)
    if (DiagCode Code = ExpiryCode(); Code != DiagCode::None)
      return DegradeExpired(Code);

  treated();
  if (Opts.CheckEquivalence)
    checkEquivalence(); // falls back (never fatal) when Opts.FailSafe

  // Stage boundary: the deadline may have expired mid-transform; skip
  // the treated profiling run the requester will not wait for.
  if (Opts.FailSafe && !FellBack && !HaveTreatedProfile)
    if (DiagCode Code = ExpiryCode(); Code != DiagCode::None)
      return DegradeExpired(Code);

  // Treated profile, budgeted: an unprofilable treated function degrades
  // to the baseline (whose profile succeeded above) in fail-safe mode.
  for (int Attempt = 0; !HaveTreatedProfile; ++Attempt) {
    const Function &TreatedF = treated();
    PassTimer T(Stats, Prefix + "profile_treated");
    Memory Mem = Program.InitMem;
    Expected<ProfileData> P =
        tryProfileRun(TreatedF, Mem, Program.InitRegs, &TreatedStats,
                      Opts.Simulate ? &TreatedTraceData : nullptr,
                      Opts.InterpMaxSteps);
    if (!P) {
      Diagnostic D = P.takeDiagnostic();
      if (!Opts.FailSafe || FellBack || Attempt > 0) {
        if (Opts.Diags)
          Opts.Diags->report(D);
        return Status::failure(std::move(D));
      }
      T.stop();
      fallbackToBaseline(D.Code, D.Message, "interp.profile");
      continue;
    }
    TreatedProf = P.takeValue();
    HaveTreatedProfile = true;
    if (Stats) {
      Stats->addCount(Prefix + "dyn_ops_treated",
                      static_cast<double>(TreatedStats.OpsDispatched));
      Stats->addCount(Prefix + "dyn_branches_treated",
                      static_cast<double>(TreatedStats.BranchesDispatched));
    }
  }
  baselineAnalyses();
  treatedAnalyses();
  return Status::success();
}

MachineComparison PipelineRun::estimateMachine(const MachineDesc &MD) const {
  assert(HaveBaselineProfile && HaveTreated && HaveTreatedProfile &&
         "estimateMachine requires prepare()");
  PassTimer T(Stats, Prefix + "estimate/" + MD.getName());
  MachineComparison MC;
  MC.MachineName = MD.getName();
  // The shared analysis bundles were solved serially by prepare(); a
  // caller that forced the stages by hand may not have them, in which
  // case the estimator computes its own liveness (same result -- the
  // analysis is a pure function of the IR).
  MC.BaselineCycles =
      estimatePerformance(*Program.Func, MD, BaseProfile, Opts.Perf,
                          BaseFA ? &BaseFA->LV : nullptr)
          .TotalCycles;
  MC.TreatedCycles =
      estimatePerformance(*Treated, MD, TreatedProf, Opts.Perf,
                          TreatedFA ? &TreatedFA->LV : nullptr)
          .TotalCycles;
  T.stop();
  if (Stats) {
    Stats->addCount(Prefix + "estimate/" + MD.getName() + "/cycles_baseline",
                    MC.BaselineCycles);
    Stats->addCount(Prefix + "estimate/" + MD.getName() + "/cycles_treated",
                    MC.TreatedCycles);
  }
  return MC;
}

SimComparison PipelineRun::simulate(const MachineDesc &MD,
                                    PredictorKind K) const {
  return simulate(MD, K, Opts.Frontend);
}

SimComparison PipelineRun::simulate(const MachineDesc &MD, PredictorKind K,
                                    const FrontendOptions &FE,
                                    const std::string &CellName) const {
  assert(Opts.Simulate && "simulate requires Opts.Simulate");
  assert(HaveBaselineProfile && HaveTreated && HaveTreatedProfile &&
         "simulate requires prepare()");
  std::string Key =
      Prefix + "sim/" + MD.getName() + "/" + predictorKindName(K);
  if (!CellName.empty())
    Key += "/" + CellName;
  PassTimer T(Stats, Key);
  SimOptions SO;
  SO.MispredictPenalty = Opts.MispredictPenalty;
  SO.AllowSpeculation = Opts.Perf.AllowSpeculation;
  SO.Frontend = FE;

  SimComparison SC;
  SC.MachineName = MD.getName();
  SC.PredictorName = predictorKindName(K);

  PredictorConfig CB;
  CB.Profile = &BaseProfile;
  std::unique_ptr<BranchPredictor> PB = makePredictor(K, CB);
  SC.Baseline = simulateTrace(*Program.Func, MD, BaseTrace, *PB, SO);

  PredictorConfig CT;
  CT.Profile = &TreatedProf;
  std::unique_ptr<BranchPredictor> PT = makePredictor(K, CT);
  SC.Treated = simulateTrace(*Treated, MD, TreatedTraceData, *PT, SO);

  if (!SC.Baseline.ok() || !SC.Treated.ok())
    reportFatalError(
        "trace simulation of @" + Name + " failed: " +
        (SC.Baseline.ok() ? SC.Treated.Error : SC.Baseline.Error));
  T.stop();
  if (Stats) {
    Stats->addCount(Key + "/cycles_baseline", SC.Baseline.TotalCycles);
    Stats->addCount(Key + "/cycles_treated", SC.Treated.TotalCycles);
    Stats->addCount(Key + "/mispredicts_baseline",
                    static_cast<double>(SC.Baseline.Mispredicts));
    Stats->addCount(Key + "/mispredicts_treated",
                    static_cast<double>(SC.Treated.Mispredicts));
    Stats->addCount(Key + "/pred_lookups_baseline",
                    static_cast<double>(SC.Baseline.Pred.Lookups));
    Stats->addCount(Key + "/pred_lookups_treated",
                    static_cast<double>(SC.Treated.Pred.Lookups));
    if (FE.UseBTB) {
      Stats->addCount(Key + "/btb_hits_baseline",
                      static_cast<double>(SC.Baseline.BTBHits));
      Stats->addCount(Key + "/btb_hits_treated",
                      static_cast<double>(SC.Treated.BTBHits));
      Stats->addCount(Key + "/btb_misses_baseline",
                      static_cast<double>(SC.Baseline.BTBMisses));
      Stats->addCount(Key + "/btb_misses_treated",
                      static_cast<double>(SC.Treated.BTBMisses));
    }
    if (FE.Decoupled) {
      Stats->addCount(Key + "/fetch_stalls_baseline",
                      static_cast<double>(SC.Baseline.FetchStallCycles));
      Stats->addCount(Key + "/fetch_stalls_treated",
                      static_cast<double>(SC.Treated.FetchStallCycles));
    }
  }
  return SC;
}

PipelineResult PipelineRun::finish(ThreadPool *Pool) {
  requireLive("finish");
  prepare();

  PipelineResult Res;
  Res.Name = Name;
  Res.DynBaseline = BaseStats;
  Res.DynTreated = TreatedStats;
  Res.CPR = CPR;
  Res.StaticOpsBaseline = Program.Func->totalOps();
  Res.StaticOpsTreated = Treated->totalOps();
  Res.StaticBranchesBaseline = countStaticBranches(*Program.Func);
  Res.StaticBranchesTreated = countStaticBranches(*Treated);

  // Per-machine estimates: independent, read-only stages; results land
  // in preallocated slots so the output order (and every downstream
  // table) is identical at any thread count.
  Res.Machines.resize(Opts.Machines.size());
  parallelFor(Pool, Opts.Machines.size(), [&](size_t I) {
    Res.Machines[I] = estimateMachine(Opts.Machines[I]);
  });

  // Machine x predictor dynamic refinement, machine-major like the
  // serial pipeline always produced.
  if (Opts.Simulate) {
    size_t NumP = Opts.Predictors.size();
    Res.Sim.resize(Opts.Machines.size() * NumP);
    parallelFor(Pool, Res.Sim.size(), [&](size_t I) {
      Res.Sim[I] =
          simulate(Opts.Machines[I / NumP], Opts.Predictors[I % NumP]);
    });
  }

  Res.Treated = std::move(Treated);
  // Poison the session: Treated is gone, so any further stage access
  // would be a use-after-move. requireLive turns that into a loud error.
  Finished = true;
  HaveTreated = false;
  return Res;
}

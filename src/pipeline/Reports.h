//===- pipeline/Reports.h - Suite-level report rendering --------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper's Table 2 and Table 3 from a set of pipeline results,
/// including the geometric-mean rows over the SPEC-95 subset and over the
/// whole suite. Shared by the benchmark binaries and usable from client
/// code to compare configurations.
///
//===----------------------------------------------------------------------===//

#ifndef PIPELINE_REPORTS_H
#define PIPELINE_REPORTS_H

#include "pipeline/CompilerPipeline.h"
#include "workloads/BenchmarkSuite.h"

#include <string>
#include <vector>

namespace cpr {

/// One suite row: benchmark name + its pipeline result.
struct SuiteRow {
  std::string Name;
  bool InSpec95Mean = false;
  PipelineResult Result;
};

/// Runs the whole paper suite under \p Opts: one staged PipelineRun
/// session per benchmark, executed on a work-queue thread pool when
/// Opts.Threads != 1 (0 = hardware concurrency). Row order, table
/// output, and the counters reported into Opts.Stats are identical at
/// every thread count; only wall times vary.
std::vector<SuiteRow> runSuite(const PipelineOptions &Opts =
                                   PipelineOptions());

/// Renders Table 2 (speedups per machine, Gmean rows). The machine list
/// is taken from the first row's results.
std::string renderTable2(const std::vector<SuiteRow> &Rows);

/// Renders Table 3 (static/dynamic operation-count ratios, Gmean rows).
std::string renderTable3(const std::vector<SuiteRow> &Rows);

/// Renders the dynamic variant of Table 2: one sub-table per simulated
/// predictor, speedups computed from trace-driven cycle estimates with
/// misprediction penalties (requires rows produced with
/// PipelineOptions::Simulate). Empty when no simulation data is present.
std::string renderTable2Dyn(const std::vector<SuiteRow> &Rows);

/// Renders baseline -> treated MPKI per benchmark and predictor.
/// Misprediction counts are machine-independent, so one table covers all
/// machines. Empty when no simulation data is present.
std::string renderSimMPKI(const std::vector<SuiteRow> &Rows);

/// --- The Table 2-dyn frontend sweep ----------------------------------
///
/// The deliverable of the frontend-fidelity subsystem (docs/SIMULATOR.md):
/// workloads x machines x predictors x frontend configurations, each cell
/// a trace-driven CPR speedup with MPKI, BTB-MPKI, and fetch-stall
/// detail. One prepared session per workload is reused across all of its
/// cells, so the sweep costs one profile/transform per workload no matter
/// how many frontend geometries it covers.

/// One named frontend configuration of the sweep.
struct FrontendCellConfig {
  std::string Name; ///< stable cell label, e.g. "flat" or "fetch4.btb64x4"
  FrontendOptions Frontend;
};

/// The default configurations: "flat" (the legacy flat-penalty model)
/// and "fetch4.btb64x4" (4-wide decoupled fetch with a 64-set 4-way BTB).
std::vector<FrontendCellConfig> defaultFrontendConfigs();

/// Sweep shape and execution options.
struct FrontendSweepOptions {
  std::vector<MachineDesc> Machines = {MachineDesc::medium(),
                                       MachineDesc::wide()};
  std::vector<PredictorKind> Predictors = allPredictorKinds();
  std::vector<FrontendCellConfig> Frontends = defaultFrontendConfigs();
  /// Worker threads (1 = serial, 0 = hardware concurrency). Cell order,
  /// rendered tables, and reported counters are identical at every
  /// setting.
  unsigned Threads = 1;
  /// Cap on paper-suite workloads (front of the suite); 0 = all.
  size_t MaxWorkloads = 0;
  /// When non-null, per-session stage counters land here (merged in
  /// suite order, deterministically).
  StatsRegistry *Stats = nullptr;
};

/// One sweep cell.
struct FrontendCell {
  std::string Workload;
  std::string Machine;
  std::string Predictor;
  std::string Frontend;
  SimComparison Sim;
};

/// The sweep result: cells in workload-major, then machine, predictor,
/// frontend order -- a stable order every renderer and serializer keeps.
struct FrontendSweepResult {
  std::vector<std::string> Workloads;
  std::vector<FrontendCell> Cells;
};

/// Runs the sweep over the paper benchmark suite.
FrontendSweepResult
runFrontendSweep(const FrontendSweepOptions &Opts = FrontendSweepOptions());

/// Renders one Table 2-dyn speedup table per (predictor, frontend) pair.
std::string renderFrontendSweep(const FrontendSweepResult &R);

/// Renders per-workload MPKI / BTB-MPKI / fetch-stall detail for every
/// frontend configuration, on the last machine and the last predictor of
/// the sweep (the most modern pairing).
std::string renderFrontendDetail(const FrontendSweepResult &R);

} // namespace cpr

#endif // PIPELINE_REPORTS_H

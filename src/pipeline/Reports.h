//===- pipeline/Reports.h - Suite-level report rendering --------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders the paper's Table 2 and Table 3 from a set of pipeline results,
/// including the geometric-mean rows over the SPEC-95 subset and over the
/// whole suite. Shared by the benchmark binaries and usable from client
/// code to compare configurations.
///
//===----------------------------------------------------------------------===//

#ifndef PIPELINE_REPORTS_H
#define PIPELINE_REPORTS_H

#include "pipeline/CompilerPipeline.h"
#include "workloads/BenchmarkSuite.h"

#include <string>
#include <vector>

namespace cpr {

/// One suite row: benchmark name + its pipeline result.
struct SuiteRow {
  std::string Name;
  bool InSpec95Mean = false;
  PipelineResult Result;
};

/// Runs the whole paper suite under \p Opts: one staged PipelineRun
/// session per benchmark, executed on a work-queue thread pool when
/// Opts.Threads != 1 (0 = hardware concurrency). Row order, table
/// output, and the counters reported into Opts.Stats are identical at
/// every thread count; only wall times vary.
std::vector<SuiteRow> runSuite(const PipelineOptions &Opts =
                                   PipelineOptions());

/// Renders Table 2 (speedups per machine, Gmean rows). The machine list
/// is taken from the first row's results.
std::string renderTable2(const std::vector<SuiteRow> &Rows);

/// Renders Table 3 (static/dynamic operation-count ratios, Gmean rows).
std::string renderTable3(const std::vector<SuiteRow> &Rows);

/// Renders the dynamic variant of Table 2: one sub-table per simulated
/// predictor, speedups computed from trace-driven cycle estimates with
/// misprediction penalties (requires rows produced with
/// PipelineOptions::Simulate). Empty when no simulation data is present.
std::string renderTable2Dyn(const std::vector<SuiteRow> &Rows);

/// Renders baseline -> treated MPKI per benchmark and predictor.
/// Misprediction counts are machine-independent, so one table covers all
/// machines. Empty when no simulation data is present.
std::string renderSimMPKI(const std::vector<SuiteRow> &Rows);

} // namespace cpr

#endif // PIPELINE_REPORTS_H

//===- analysis/BDD.h - Reduced ordered binary decision diagrams -*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small reduced-ordered-BDD package used by the Predicate Query System.
/// Predicate expressions in FRP-converted and CPR-transformed code are
/// conjunction/disjunction chains over compare-condition atoms; BDDs decide
/// disjointness and implication between such expressions exactly and
/// cheaply. A node budget guards against pathological growth; when the
/// budget is exhausted, operations return Invalid and clients must fall
/// back to conservative answers.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_BDD_H
#define ANALYSIS_BDD_H

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace cpr {

/// A BDD manager. NodeRefs are indices into the manager's node table and
/// are only meaningful for the manager that produced them.
class BDD {
public:
  using NodeRef = uint32_t;

  /// The constant-false and constant-true terminals.
  static constexpr NodeRef False = 0;
  static constexpr NodeRef True = 1;
  /// Returned when the node budget is exhausted.
  static constexpr NodeRef Invalid = ~0u;

  /// \param MaxNodes node budget; Invalid is returned past it.
  explicit BDD(size_t MaxNodes = 1u << 20);

  /// Returns the function of the single variable \p Var.
  NodeRef var(uint32_t Var);

  /// Logical negation. Returns Invalid on budget exhaustion or if \p F is
  /// Invalid (Invalid propagates through all operations).
  NodeRef mkNot(NodeRef F);

  NodeRef mkAnd(NodeRef F, NodeRef G);
  NodeRef mkOr(NodeRef F, NodeRef G);

  /// If-then-else: F ? G : H.
  NodeRef ite(NodeRef F, NodeRef G, NodeRef H);

  bool isFalse(NodeRef F) const { return F == False; }
  bool isTrue(NodeRef F) const { return F == True; }
  bool isValid(NodeRef F) const { return F != Invalid; }

  /// Exact query: F and G can never be true together. Returns false
  /// (conservative) when either input is Invalid or the budget runs out.
  bool disjoint(NodeRef F, NodeRef G);

  /// Exact query: F implies G. Conservatively false on Invalid/budget.
  bool implies(NodeRef F, NodeRef G);

  /// Extracts one satisfying assignment of \p F into \p Out as
  /// (variable, value) pairs, in variable order. Variables absent from
  /// the result are don't-cares. Returns false (leaving \p Out empty)
  /// for the False terminal and for Invalid. This is the witness
  /// extraction primitive of cpr-lint v2 (docs/LINT.md): a check's
  /// violating condition, fed through satOne, names concrete predicate
  /// outcomes under which the violation executes.
  bool satOne(NodeRef F, std::vector<std::pair<uint32_t, bool>> &Out) const;

  /// Number of allocated nodes (terminals included).
  size_t numNodes() const { return Nodes.size(); }

private:
  struct Node {
    uint32_t Var;
    NodeRef Low;
    NodeRef High;
  };

  NodeRef mkNode(uint32_t Var, NodeRef Low, NodeRef High);
  uint32_t varOf(NodeRef F) const;

  std::vector<Node> Nodes;
  size_t MaxNodes;
  // Unique table: (Var, Low, High) -> node.
  std::unordered_map<uint64_t, NodeRef> Unique;
  // ITE memo: (F, G, H) -> result.
  std::unordered_map<uint64_t, NodeRef> IteMemo;
};

} // namespace cpr

#endif // ANALYSIS_BDD_H

//===- analysis/Liveness.h - Register liveness ------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two liveness analyses:
///
///  - Function-level set liveness (iterative dataflow over blocks), used by
///    the scheduler's speculation legality check and by dead-code
///    elimination. Predicated definitions under a non-true guard do not
///    kill (conservative).
///
///  - Predicated (expression-valued) intra-block liveness, following the
///    predicate-aware dataflow of [JS96] that the paper's predicate
///    speculation phase depends on: the liveness of each register at each
///    point is a boolean expression (BDD) over the region's predicate
///    atoms, so "would promoting this operation's guard overwrite a live
///    value" is an exact query.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_LIVENESS_H
#define ANALYSIS_LIVENESS_H

#include "analysis/PQS.h"
#include "ir/Function.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cpr {

/// A set of registers.
using RegSet = std::unordered_set<Reg>;

/// Function-level set liveness.
class Liveness {
public:
  explicit Liveness(const Function &F);

  const RegSet &liveIn(BlockId B) const;
  const RegSet &liveOut(BlockId B) const;

  /// Registers live when the branch/halt at op \p OpIdx of block \p B
  /// leaves the block (the live-in of its target, or the observable set
  /// for halt).
  RegSet liveAtExit(const Function &F, const Block &B, size_t OpIdx) const;

private:
  std::unordered_map<BlockId, RegSet> LiveInMap;
  std::unordered_map<BlockId, RegSet> LiveOutMap;
  RegSet ObservableSet;
  static const RegSet EmptySet;
};

/// Predicated intra-block liveness: per operation index, a map from
/// register to the BDD condition under which it is live *before* the
/// operation executes.
class PredicatedLiveness {
public:
  /// \param F the function; \p B the analyzed block; \p PQS expressions
  /// for \p B; \p L function-level liveness (for exit live sets).
  PredicatedLiveness(const Function &F, const Block &B, RegionPQS &PQS,
                     const Liveness &L);

  /// The condition under which \p R is live immediately after op \p OpIdx.
  /// Returns BDD::False when \p R is dead there.
  BDD::NodeRef liveAfter(size_t OpIdx, Reg R) const;

  /// The condition under which \p R is live immediately before op \p OpIdx.
  BDD::NodeRef liveBefore(size_t OpIdx, Reg R) const;

private:
  using LiveMap = std::unordered_map<Reg, BDD::NodeRef>;
  static BDD::NodeRef get(const LiveMap &M, Reg R);

  // LiveBeforeOp[I] = liveness map at the program point before op I.
  // An extra trailing entry holds the block-end (fall-through) map.
  std::vector<LiveMap> LiveBeforeOp;
};

} // namespace cpr

#endif // ANALYSIS_LIVENESS_H

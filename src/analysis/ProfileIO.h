//===- analysis/ProfileIO.h - Profile serialization -------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Text serialization of branch/block profiles. The paper's methodology
/// (and [FF92], which it cites for profile stability across data sets)
/// separates profile collection from profile use; this module provides
/// that separation: collect once with the interpreter, save, and feed the
/// saved profile to ICBM on later runs or different inputs.
///
/// Format (line oriented, '#' comments):
///
///   profile v1
///   block <blockId> <entries>
///   branch <opId> <reached> <taken>
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_PROFILEIO_H
#define ANALYSIS_PROFILEIO_H

#include "analysis/ProfileData.h"

#include <string>

namespace cpr {

/// Serializes \p P. Ids are emitted in ascending order so the output is
/// deterministic.
std::string serializeProfile(const ProfileData &P, const Function &F);

/// Parse result for profiles.
struct ProfileParseResult {
  ProfileData Profile;
  std::string Error; ///< empty on success
  explicit operator bool() const { return Error.empty(); }
};

/// Parses a profile serialized by serializeProfile.
ProfileParseResult parseProfile(const std::string &Text);

} // namespace cpr

#endif // ANALYSIS_PROFILEIO_H

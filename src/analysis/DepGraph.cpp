//===- analysis/DepGraph.cpp - Region dependence graph --------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/DepGraph.h"

#include "support/Error.h"

#include <algorithm>

using namespace cpr;

const char *cpr::depKindName(DepKind K) {
  switch (K) {
  case DepKind::Flow:
    return "flow";
  case DepKind::Anti:
    return "anti";
  case DepKind::Output:
    return "output";
  case DepKind::Mem:
    return "mem";
  case DepKind::Control:
    return "control";
  }
  CPR_UNREACHABLE("bad dep kind");
}

void DepGraph::addEdge(uint32_t From, uint32_t To, DepKind Kind,
                       int Latency) {
  assert(From < To && "dependence edges follow program order");
  // Deduplicate: keep only the strongest (max latency) edge per (From,To)
  // pair per kind class. A simple linear scan over the destination's preds
  // suffices at region sizes.
  for (uint32_t EI : PredIdx[To]) {
    DepEdge &E = Edges[EI];
    if (E.From == From && E.Kind == Kind) {
      E.Latency = std::max(E.Latency, Latency);
      return;
    }
  }
  uint32_t Idx = static_cast<uint32_t>(Edges.size());
  Edges.push_back(DepEdge{From, To, Kind, Latency});
  SuccIdx[From].push_back(Idx);
  PredIdx[To].push_back(Idx);
}

DepGraph::DepGraph(const Function &F, const Block &B, const MachineDesc &MD,
                   RegionPQS &PQS, const Liveness &LV,
                   const DepGraphOptions &Opts) {
  const std::vector<Operation> &Ops = B.ops();
  NumNodes = Ops.size();
  SuccIdx.resize(NumNodes);
  PredIdx.resize(NumNodes);
  NodeLatency.resize(NumNodes);
  for (size_t I = 0; I < NumNodes; ++I)
    NodeLatency[I] = MD.latency(Ops[I]);

  // --- Register dependences -------------------------------------------
  // For each register track: the current strong (killing) definition, the
  // set of wired writes since the last strong definition, and the uses
  // since the last strong definition.
  struct RegState {
    int StrongDef = -1;
    std::vector<uint32_t> WiredDefs;
    std::vector<uint32_t> Uses;
  };
  std::unordered_map<Reg, RegState> RS;

  auto Disjoint = [&](size_t I, size_t J) {
    return PQS.disjoint(PQS.guardExpr(I), PQS.guardExpr(J));
  };

  auto RecordUse = [&](uint32_t I, Reg R) {
    RegState &S = RS[R];
    if (S.StrongDef >= 0) {
      const Operation &DefOp = Ops[static_cast<size_t>(S.StrongDef)];
      int Lat = MD.latency(DefOp);
      addEdge(static_cast<uint32_t>(S.StrongDef), I, DepKind::Flow, Lat);
    }
    for (uint32_t W : S.WiredDefs)
      addEdge(W, I, DepKind::Flow, MD.latency(Ops[W]));
    S.Uses.push_back(I);
  };

  auto RecordDef = [&](uint32_t I, Reg R, bool Wired, bool AlwaysWrites) {
    RegState &S = RS[R];
    // Anti dependences from earlier uses (an op reading and writing the
    // same register, e.g. "r1 = add(r1, 1)", needs no self edge).
    for (uint32_t U : S.Uses)
      if (U != I && (AlwaysWrites || !Disjoint(U, I)))
        addEdge(U, I, DepKind::Anti, 0);
    if (Wired) {
      // A wired write reads-modifies-writes: it depends on the previous
      // strong definition (the initializer) but is unordered with respect
      // to other wired writes of the same register.
      if (S.StrongDef >= 0)
        addEdge(static_cast<uint32_t>(S.StrongDef), I, DepKind::Flow,
                MD.latency(Ops[static_cast<size_t>(S.StrongDef)]));
      S.WiredDefs.push_back(I);
      return;
    }
    // Output dependences.
    if (S.StrongDef >= 0) {
      const Operation &Prev = Ops[static_cast<size_t>(S.StrongDef)];
      if (AlwaysWrites || !Disjoint(static_cast<uint32_t>(S.StrongDef), I)) {
        int Lat = std::max(1, MD.latency(Prev) - NodeLatency[I] + 1);
        addEdge(static_cast<uint32_t>(S.StrongDef), I, DepKind::Output, Lat);
      }
    }
    for (uint32_t W : S.WiredDefs)
      addEdge(W, I, DepKind::Output, 1);
    if (AlwaysWrites) {
      // Kills: later uses see only this definition.
      S.StrongDef = static_cast<int>(I);
      S.WiredDefs.clear();
      S.Uses.clear();
    } else {
      // A conditional (guarded, non-wired) definition merges with the
      // previous value; treat it like a wired write for def-use purposes
      // so later uses depend on both it and the previous definition.
      S.WiredDefs.push_back(I);
    }
  };

  // --- Memory state ----------------------------------------------------
  struct MemState {
    std::vector<uint32_t> Stores; // since last barrier
    std::vector<uint32_t> Loads;
  };
  // Key: alias class (0 aliases everything).
  std::unordered_map<unsigned, MemState> MS;

  // Symbolic address disambiguation: an address of the form
  // "add(base, imm)" computed by an unguarded operation is tracked as
  // (value number of base, offset). Two accesses with the same base value
  // and different offsets cannot alias -- this recovers the base+offset
  // disambiguation the paper's compiler relies on for unrolled loops.
  struct AddrKey {
    bool Valid = false;
    uint64_t BaseVN = 0;
    int64_t Offset = 0;
  };
  std::unordered_map<Reg, uint64_t> ValueNum;
  uint64_t NextVN = 1;
  auto VNOf = [&](Reg R) {
    auto [It, Inserted] = ValueNum.try_emplace(R, 0);
    if (Inserted)
      It->second = NextVN++;
    return It->second;
  };
  // Register -> symbolic address, invalidated on redefinition.
  std::unordered_map<Reg, AddrKey> SymAddr;
  std::vector<AddrKey> MemAddr(NumNodes);

  auto AddrsMayAlias = [](const AddrKey &A, const AddrKey &Bk) {
    if (!A.Valid || !Bk.Valid)
      return true;
    if (A.BaseVN != Bk.BaseVN)
      return true; // unrelated bases: defer to alias classes
    return A.Offset == Bk.Offset;
  };

  auto MayAlias = [](uint8_t A, uint8_t Bc) {
    return A == 0 || Bc == 0 || A == Bc;
  };

  // --- Control state ----------------------------------------------------
  std::vector<uint32_t> PriorBranches; // branch/halt/trap indices so far
  int BrLat = MD.branchLatency();

  for (uint32_t I = 0; I < NumNodes; ++I) {
    const Operation &Op = Ops[I];

    // Uses: guard first, then register sources.
    if (!Op.getGuard().isTruePred())
      RecordUse(I, Op.getGuard());
    for (const Operand &S : Op.srcs())
      if (S.isReg())
        RecordUse(I, S.getReg());

    // Memory dependences.
    if (opcodeIsMemory(Op.getOpcode())) {
      bool IsStore = Op.isStore();
      // Resolve this access's symbolic address.
      Reg AddrReg = Op.srcs()[0].getReg();
      auto SA = SymAddr.find(AddrReg);
      if (SA != SymAddr.end())
        MemAddr[I] = SA->second;
      else
        MemAddr[I] = AddrKey{true, VNOf(AddrReg), 0};

      auto Independent = [&](uint32_t Other) {
        return !AddrsMayAlias(MemAddr[I], MemAddr[Other]) || Disjoint(Other, I);
      };
      for (auto &[Class, State] : MS) {
        if (!MayAlias(Op.getAliasClass(), static_cast<uint8_t>(Class)))
          continue;
        if (IsStore) {
          for (uint32_t S : State.Stores)
            if (!Independent(S))
              addEdge(S, I, DepKind::Mem, 1);
          for (uint32_t L : State.Loads)
            if (!Independent(L))
              addEdge(L, I, DepKind::Mem, 0);
        } else {
          for (uint32_t S : State.Stores)
            if (!Independent(S))
              addEdge(S, I, DepKind::Mem, 1);
        }
      }
      MemState &Own = MS[Op.getAliasClass()];
      if (IsStore) {
        Own.Stores.push_back(I);
      } else {
        Own.Loads.push_back(I);
      }
    }

    // Control dependences from earlier branches/terminators. The relevant
    // execution condition of the dependent operation is its guard -- or,
    // for a branch, its taken condition: a branch whose taken predicate
    // cannot be true together with a prior branch's may overlap with it
    // (the PlayDoh branch-overlap rule the paper describes in Section 3).
    bool SideEffects = Op.hasSideEffects();
    BDD::NodeRef MyCond =
        Op.isBranch() ? PQS.takenExpr(I) : PQS.guardExpr(I);
    for (uint32_t Br : PriorBranches) {
      const Operation &BrOp = Ops[Br];
      BDD::NodeRef ExitCond = BrOp.isBranch() ? PQS.takenExpr(Br)
                                              : PQS.guardExpr(Br);
      bool GuardDisjoint =
          Opts.AllowSpeculation && PQS.disjoint(MyCond, ExitCond);
      int Lat = BrOp.isBranch() ? BrLat : 1;
      if (SideEffects) {
        if (!GuardDisjoint)
          addEdge(Br, I, DepKind::Control, Lat);
        continue;
      }
      if (!Opts.AllowSpeculation) {
        addEdge(Br, I, DepKind::Control, Lat);
        continue;
      }
      if (GuardDisjoint)
        continue;
      // Safe operation: control dependent only if it would clobber a value
      // live on the exit path. Unconditional cmpp targets write even under
      // a false guard, so the guard-disjointness exemption above does not
      // apply to them; re-check per destination.
      RegSet ExitLive = LV.liveAtExit(F, B, Br);
      for (const DefSlot &D : Op.defs()) {
        bool Clobbers = ExitLive.count(D.R) != 0;
        if (!Clobbers)
          continue;
        bool AlwaysWrites =
            Op.isCmpp()
                ? (D.Act == CmppAction::UN || D.Act == CmppAction::UC)
                : Op.getGuard().isTruePred();
        // Wired/guarded writes under a disjoint guard cannot fire on the
        // exit path; unconditional writes always fire.
        if (AlwaysWrites || !GuardDisjoint) {
          addEdge(Br, I, DepKind::Control, Lat);
          break;
        }
      }
    }

    // Side-effecting operations may sink at most into the delay region of
    // a later branch; record the constraint when the branch appears.
    if (Op.isControl()) {
      // Every earlier side effect must complete before (or within the
      // delay region of) this exit.
      BDD::NodeRef MyExitCond =
          Op.isBranch() ? PQS.takenExpr(I) : PQS.guardExpr(I);
      for (uint32_t J = 0; J < I; ++J) {
        const Operation &Prev = Ops[J];
        if (!Prev.hasSideEffects() || Prev.isControl())
          continue;
        // A side effect whose guard is disjoint from the exit condition
        // never fires on the taken path; it may sink freely below.
        if (PQS.disjoint(PQS.guardExpr(J), MyExitCond))
          continue;
        // cycle(branch) >= cycle(sideeffect) - (branchLat - 1)
        int ExitLat = Op.isBranch() ? BrLat : 1;
        addEdge(J, I, DepKind::Control, 1 - ExitLat);
      }
      PriorBranches.push_back(I);
    }

    // Definitions.
    for (const DefSlot &D : Op.defs()) {
      bool Wired = isWiredAction(D.Act);
      bool AlwaysWrites =
          Op.isCmpp() ? (D.Act == CmppAction::UN || D.Act == CmppAction::UC)
                      : Op.getGuard().isTruePred();
      RecordDef(I, D.R, Wired, AlwaysWrites);
    }

    // Symbolic address bookkeeping: capture "dst = add(base, imm)" before
    // refreshing value numbers (the base may equal the destination, as in
    // induction updates "r1 = add(r1, 4)").
    {
      AddrKey NewKey;
      if (Op.getOpcode() == Opcode::Add && Op.getGuard().isTruePred() &&
          Op.srcs().size() == 2 && Op.srcs()[0].isReg() &&
          Op.srcs()[1].isImm()) {
        Reg Base = Op.srcs()[0].getReg();
        auto BaseSym = SymAddr.find(Base);
        if (BaseSym != SymAddr.end() && BaseSym->second.Valid) {
          NewKey = BaseSym->second;
          NewKey.Offset += Op.srcs()[1].getImm();
        } else {
          NewKey = AddrKey{true, VNOf(Base), Op.srcs()[1].getImm()};
        }
      }
      for (const DefSlot &D : Op.defs()) {
        if (D.R.getClass() != RegClass::GPR)
          continue;
        ValueNum[D.R] = NextVN++;
        SymAddr.erase(D.R);
      }
      if (NewKey.Valid && Op.getGuard().isTruePred())
        SymAddr[Op.defs()[0].R] = NewKey;
    }
  }
}

std::vector<int> DepGraph::depths() const {
  std::vector<int> D(NumNodes, 0);
  // Nodes are in program order, and all edges go forward, so one pass
  // suffices.
  for (const DepEdge &E : Edges) {
    int Cand = D[E.From] + std::max(0, E.Latency);
    if (Cand > D[E.To])
      D[E.To] = Cand;
  }
  return D;
}

std::vector<int> DepGraph::heights() const {
  std::vector<int> H(NumNodes);
  for (size_t I = NumNodes; I-- > 0;) {
    H[I] = NodeLatency[I];
    for (uint32_t EI : SuccIdx[I]) {
      const DepEdge &E = Edges[EI];
      int Cand = std::max(0, E.Latency) + H[E.To];
      if (Cand > H[I])
        H[I] = Cand;
    }
  }
  return H;
}

int DepGraph::criticalPathLength() const {
  std::vector<int> D = depths();
  int Max = 0;
  for (size_t I = 0; I < NumNodes; ++I)
    Max = std::max(Max, D[I] + NodeLatency[I]);
  return Max;
}

std::vector<uint32_t> DepGraph::transitiveSuccessors(uint32_t Start,
                                                     bool IncludeMem,
                                                     bool IncludeControl) const {
  std::vector<bool> Visited(NumNodes, false);
  std::vector<uint32_t> Stack{Start};
  std::vector<uint32_t> Result;
  while (!Stack.empty()) {
    uint32_t N = Stack.back();
    Stack.pop_back();
    for (uint32_t EI : SuccIdx[N]) {
      const DepEdge &E = Edges[EI];
      bool Follow = E.Kind == DepKind::Flow ||
                    (IncludeMem && E.Kind == DepKind::Mem) ||
                    (IncludeControl && E.Kind == DepKind::Control);
      if (!Follow || Visited[E.To])
        continue;
      Visited[E.To] = true;
      Result.push_back(E.To);
      Stack.push_back(E.To);
    }
  }
  std::sort(Result.begin(), Result.end());
  return Result;
}

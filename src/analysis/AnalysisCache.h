//===- analysis/AnalysisCache.h - Shared per-function analyses --*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A bundle of the solved whole-function dataflow analyses several
/// pipeline stages consume: lint (predicate-aware checks), the CPR
/// transformation's liveness queries, the list scheduler's dependence
/// construction, and the performance model. PipelineRun computes one
/// FunctionAnalyses per treated function *serially, before any parallel
/// stage*, and hands const references to every consumer -- so the work is
/// done once, and the pipeline's output stays byte-identical at any
/// `--threads` (the analyses are pure functions of the IR; sharing them
/// removes per-stage recomputation, not determinism).
///
/// Invalidation is by construction: the bundle describes the function
/// text it was built from, and every mutation point (region transform,
/// scheduling) rebuilds downstream analyses it needs itself. Callers must
/// not reuse a bundle across a mutation of the function.
///
/// Thread-safety: immutable after construction; share across threads
/// freely through const access.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_ANALYSISCACHE_H
#define ANALYSIS_ANALYSISCACHE_H

#include "analysis/Dataflow.h"
#include "analysis/Liveness.h"

namespace cpr {

/// The solved analyses of one function at one point in time.
struct FunctionAnalyses {
  explicit FunctionAnalyses(const Function &F)
      : LV(F), N(F), Reach(F, N) {}

  FunctionAnalyses(const FunctionAnalyses &) = delete;
  FunctionAnalyses &operator=(const FunctionAnalyses &) = delete;

  /// Backward/union liveness over the dense solver.
  Liveness LV;
  /// The dense register universe the dataflow clients share.
  RegNumbering N;
  /// Forward/union cross-block reaching definitions.
  ReachingDefBlocks Reach;
};

} // namespace cpr

#endif // ANALYSIS_ANALYSISCACHE_H

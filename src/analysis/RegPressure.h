//===- analysis/RegPressure.h - Register pressure analysis ------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Register-pressure measurement: the maximum number of simultaneously
/// live registers per class at any program point of a block (and across a
/// function). The paper cites "improved predicate sensitive register
/// allocation" as a second-order benefit of predicate demotion
/// (Section 5.1), and control CPR's lookahead predicates and split
/// operations change pressure; this module quantifies both effects (see
/// the pressure report in bench_fig4_schema-style audits and
/// tests/analysis/RegPressureTest.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_REGPRESSURE_H
#define ANALYSIS_REGPRESSURE_H

#include "analysis/Liveness.h"
#include "ir/Function.h"

#include <array>

namespace cpr {

/// Peak simultaneous liveness per register class.
struct PressureReport {
  std::array<unsigned, NumRegClasses> Peak = {0, 0, 0, 0};

  unsigned gpr() const { return Peak[static_cast<unsigned>(RegClass::GPR)]; }
  unsigned fpr() const { return Peak[static_cast<unsigned>(RegClass::FPR)]; }
  unsigned pred() const { return Peak[static_cast<unsigned>(RegClass::PR)]; }
  unsigned btr() const { return Peak[static_cast<unsigned>(RegClass::BTR)]; }

  /// Element-wise maximum.
  void mergeMax(const PressureReport &O) {
    for (unsigned I = 0; I < NumRegClasses; ++I)
      Peak[I] = Peak[I] > O.Peak[I] ? Peak[I] : O.Peak[I];
  }
};

/// Measures peak pressure within block \p B of \p F (walking backward
/// from the block's live-out through every operation point).
PressureReport measureBlockPressure(const Function &F, const Block &B,
                                    const Liveness &LV);

/// Peak pressure across all blocks of \p F.
PressureReport measureFunctionPressure(const Function &F);

} // namespace cpr

#endif // ANALYSIS_REGPRESSURE_H

//===- analysis/CFG.cpp - Control-flow queries over superblocks -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CFG.h"

#include "support/Error.h"

#include <algorithm>

using namespace cpr;

BlockId cpr::resolveBranchTarget(const Block &B, size_t OpIdx) {
  const Operation &Br = B.ops()[OpIdx];
  assert(Br.isBranch() && "not a branch");
  int PbrIdx = B.lastDefBefore(Br.branchTargetReg(), OpIdx);
  if (PbrIdx < 0)
    return InvalidBlockId;
  const Operation &Pbr = B.ops()[static_cast<size_t>(PbrIdx)];
  if (Pbr.getOpcode() != Opcode::Pbr)
    return InvalidBlockId;
  return Pbr.pbrTarget();
}

std::vector<BlockExit> cpr::blockExits(const Function &F, size_t LayoutIdx) {
  const Block &B = F.block(LayoutIdx);
  std::vector<BlockExit> Exits;
  bool FallsThrough = true;
  for (size_t I = 0, E = B.size(); I != E; ++I) {
    const Operation &Op = B.ops()[I];
    if (Op.isBranch()) {
      Exits.push_back(BlockExit{static_cast<int>(I),
                                resolveBranchTarget(B, I)});
      continue;
    }
    if (Op.getOpcode() == Opcode::Halt || Op.getOpcode() == Opcode::Trap) {
      Exits.push_back(BlockExit{static_cast<int>(I), InvalidBlockId});
      // Operations after an unguarded halt/trap are unreachable.
      if (Op.getGuard().isTruePred()) {
        FallsThrough = false;
        break;
      }
    }
  }
  if (FallsThrough) {
    BlockId Next = LayoutIdx + 1 < F.numBlocks()
                       ? F.block(LayoutIdx + 1).getId()
                       : InvalidBlockId;
    Exits.push_back(BlockExit{-1, Next});
  }
  return Exits;
}

std::vector<BlockId> cpr::blockSuccessors(const Function &F,
                                          size_t LayoutIdx) {
  std::vector<BlockId> Succs;
  for (const BlockExit &E : blockExits(F, LayoutIdx)) {
    if (E.Target == InvalidBlockId)
      continue;
    if (std::find(Succs.begin(), Succs.end(), E.Target) == Succs.end())
      Succs.push_back(E.Target);
  }
  return Succs;
}

//===- analysis/CFG.h - Control-flow queries over superblocks ---*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Control-flow utilities over the superblock-style IR: resolving each
/// branch's target through its preparing pbr, and enumerating block
/// successors (interior branch targets plus the layout fall-through).
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_CFG_H
#define ANALYSIS_CFG_H

#include "ir/Function.h"

#include <vector>

namespace cpr {

/// Returns the target block of the Branch at \p OpIdx of \p B, resolved by
/// scanning backwards for the pbr that wrote its BTR operand. Returns
/// InvalidBlockId when no preparing pbr exists (rejected by the verifier).
BlockId resolveBranchTarget(const Block &B, size_t OpIdx);

/// One control-flow exit of a block.
struct BlockExit {
  /// Index of the exiting operation, or -1 for the layout fall-through.
  int OpIdx;
  /// Target block, or InvalidBlockId for halt/trap/fall-off-end.
  BlockId Target;
  bool isFallThrough() const { return OpIdx < 0; }
};

/// Enumerates the exits of block \p LayoutIdx of \p F: one entry per
/// interior branch (in program order), one per halt/trap, and a trailing
/// fall-through entry to the next layout block when control can reach the
/// end of the block.
std::vector<BlockExit> blockExits(const Function &F, size_t LayoutIdx);

/// Returns the successor block ids of block \p LayoutIdx (deduplicated,
/// excluding InvalidBlockId).
std::vector<BlockId> blockSuccessors(const Function &F, size_t LayoutIdx);

} // namespace cpr

#endif // ANALYSIS_CFG_H

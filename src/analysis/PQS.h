//===- analysis/PQS.h - Predicate Query System ------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Predicate Query System: symbolic boolean expressions for predicate
/// registers within a linear region, with exact disjointness / implication
/// queries. This is the project's stand-in for the predicate-cognizant
/// analysis infrastructure the paper's compiler (Elcor) relies on, after
/// Johnson & Schlansker, "Analysis Techniques for Predicated Code"
/// (MICRO-29, 1996) [JS96].
///
/// The analysis walks a block once, assigning each predicate definition a
/// BDD over *atoms*. An atom is one value-numbered comparison: two cmpp
/// operations evaluating the same condition over the same (unmodified)
/// source values share an atom, which is what lets the system see that the
/// lookahead compares ICBM inserts are correlated with the original branch
/// compares they mirror. Predicates live into the region are opaque atoms.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_PQS_H
#define ANALYSIS_PQS_H

#include "analysis/BDD.h"
#include "ir/Function.h"

#include <unordered_map>
#include <utility>
#include <vector>

namespace cpr {

/// Canonicalizes a condition to one of {EQ, LT, LE} plus a negation flag,
/// so that e.g. "ne(a,b)" and "eq(a,b)" share an atom. Witness solving
/// (lint/Witness.h) uses the same canonicalization to interpret atom
/// polarities.
std::pair<CompareCond, bool> canonicalCompareCond(CompareCond C);

/// Metadata for one BDD variable (atom) of a RegionPQS, recorded so that
/// witness extraction (lint/Witness.h) can turn a satisfying assignment
/// of a violating condition back into concrete program inputs.
struct PQSAtom {
  enum class Kind {
    LiveInPred, ///< value of a predicate register live into the region
    Compare,    ///< a value-numbered canonical comparison
    Opaque,     ///< fresh fallback atom (BDD node-budget exhaustion)
  };
  Kind K = Kind::Opaque;
  /// LiveInPred: the predicate register whose incoming value this is.
  Reg PredReg;
  /// Compare: block op index of the first cmpp that evaluated this atom.
  /// The atom's polarity is the *canonical* comparison of that cmpp
  /// (canonicalCond maps NE/GE/GT onto negated EQ/LT/LE).
  size_t CmppOp = 0;
  /// Human-readable description ("lt(r11, 2)", "live-in p4", "opaque").
  std::string Desc;
};

/// Predicate expressions for every point of one block.
class RegionPQS {
public:
  /// Builds expressions for every operation of \p B in \p F.
  RegionPQS(const Function &F, const Block &B);

  /// The underlying BDD manager (valid for this object's lifetime).
  BDD &bdd() { return Mgr; }

  /// Expression of operation \p OpIdx's guard predicate as read.
  BDD::NodeRef guardExpr(size_t OpIdx) const { return GuardExprs[OpIdx]; }

  /// Expression of the execution condition of op \p OpIdx: its guard for
  /// most operations. (Unconditional cmpp targets still write under a false
  /// guard; clients that care use defExpr instead.)
  BDD::NodeRef execExpr(size_t OpIdx) const { return GuardExprs[OpIdx]; }

  /// Expression of predicate source \p SrcIdx of op \p OpIdx as read.
  /// Returns BDD::Invalid if that source is not a predicate register.
  BDD::NodeRef predSrcExpr(size_t OpIdx, size_t SrcIdx) const;

  /// For a Branch at \p OpIdx: expression of its taken condition.
  BDD::NodeRef takenExpr(size_t OpIdx) const;

  /// Expression of the value of predicate register \p R *after* op \p OpIdx
  /// has executed. Equals the expression before the op unless the op
  /// defines \p R.
  BDD::NodeRef predValueAfter(size_t OpIdx, Reg R) const;

  /// Exact disjointness (conservatively false on BDD budget exhaustion).
  bool disjoint(BDD::NodeRef A, BDD::NodeRef B) { return Mgr.disjoint(A, B); }

  /// Exact implication (conservatively false on budget exhaustion).
  bool implies(BDD::NodeRef A, BDD::NodeRef B) { return Mgr.implies(A, B); }

  /// Metadata for every atom allocated so far, indexed by BDD variable.
  const std::vector<PQSAtom> &atoms() const { return AtomInfo; }

private:
  struct PredSnapshot {
    Reg R;
    BDD::NodeRef Expr;
  };

  BDD Mgr;
  std::vector<PQSAtom> AtomInfo; // per BDD variable
  std::vector<BDD::NodeRef> GuardExprs;           // per op
  std::vector<std::vector<BDD::NodeRef>> SrcPred; // per op, per src
  // Per op: values of predicates it defines, after the op.
  std::vector<std::vector<PredSnapshot>> DefAfter;
  // Per op: values of predicates it defines, before the op (for wired reads).
  std::vector<std::vector<PredSnapshot>> DefBefore;
};

} // namespace cpr

#endif // ANALYSIS_PQS_H

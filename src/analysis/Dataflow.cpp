//===- analysis/Dataflow.cpp - Generic dense dataflow solver --------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Dataflow.h"

#include "analysis/CFG.h"
#include "analysis/PQS.h"
#include "ir/CmppAction.h"

using namespace cpr;

//===----------------------------------------------------------------------===//
// RegNumbering
//===----------------------------------------------------------------------===//

RegNumbering::RegNumbering(const Function &F) {
  auto Add = [&](Reg R) {
    // The always-true predicate is never defined and never tracked by any
    // client (every transfer skips it as a guard), so it earns no bit.
    if (!R.isValid() || R.isTruePred())
      return;
    if (Index.emplace(R, Regs.size()).second)
      Regs.push_back(R);
  };
  for (Reg R : F.observableRegs())
    Add(R);
  for (size_t L = 0, E = F.numBlocks(); L != E; ++L)
    for (const Operation &Op : F.block(L).ops()) {
      Add(Op.getGuard());
      for (const Operand &S : Op.srcs())
        if (S.isReg())
          Add(S.getReg());
      for (const DefSlot &D : Op.defs())
        Add(D.R);
    }
}

//===----------------------------------------------------------------------===//
// Predicate-partitioned write classification
//===----------------------------------------------------------------------===//

WriteKind cpr::predicatedWriteKind(const Operation &Op, const DefSlot &D,
                                   const RegionPQS *PQS, size_t OpIdx) {
  if (Op.isCmpp()) {
    // UN/UC targets write even under a false guard (Table 1); wired
    // targets write only when guard and condition agree, which a False
    // guard rules out entirely.
    if (D.Act == CmppAction::UN || D.Act == CmppAction::UC)
      return WriteKind::Always;
    if (PQS && PQS->guardExpr(OpIdx) == BDD::False)
      return WriteKind::Never;
    return WriteKind::Maybe;
  }
  if (Op.getGuard().isTruePred() || Op.isFrpGuard())
    return WriteKind::Always;
  if (PQS) {
    BDD::NodeRef G = PQS->guardExpr(OpIdx);
    if (G == BDD::True)
      return WriteKind::Always;
    if (G == BDD::False)
      return WriteKind::Never;
    // BDD::Invalid (budget exhaustion) falls through to Maybe.
  }
  return WriteKind::Maybe;
}

//===----------------------------------------------------------------------===//
// DataflowSolver
//===----------------------------------------------------------------------===//

DataflowSolver::DataflowSolver(const Function &F, const DataflowProblem &P) {
  const size_t NBlocks = F.numBlocks();
  const size_t Universe = P.universeSize();
  const bool Forward = P.direction() == DataflowProblem::Direction::Forward;
  const bool Union = P.meet() == DataflowProblem::Meet::Union;

  BitVector Boundary(Universe);
  P.boundary(Boundary);
  BitVector Full(Universe);
  if (!Union)
    for (size_t I = 0; I < Universe; ++I)
      Full.set(I);

  // Merge inputs per block: predecessors (forward) or exits (backward,
  // with function-leaving exits contributing the boundary value).
  std::vector<std::vector<size_t>> Preds(NBlocks);
  // Per block: layout indices of exit targets; -1 = boundary (halt/trap/
  // fall-off-end).
  std::vector<std::vector<int>> ExitTargets(NBlocks);
  for (size_t L = 0; L < NBlocks; ++L) {
    for (const BlockExit &E : blockExits(F, L)) {
      int T = E.Target == InvalidBlockId ? -1 : F.layoutIndex(E.Target);
      ExitTargets[L].push_back(T);
      if (T >= 0)
        Preds[static_cast<size_t>(T)].push_back(L);
    }
  }

  // Intersection problems start interior blocks at top (full) so the meet
  // can only descend; union problems start empty. A no-predecessor,
  // non-entry block keeps its initial value (vacuous: it never executes).
  InSets.assign(NBlocks, Union ? BitVector(Universe) : Full);
  OutSets.assign(NBlocks, Union ? BitVector(Universe) : Full);
  if (NBlocks > 0 && Forward)
    InSets[0] = Boundary;

  BitVector Merged(Universe);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    ++Iterations;
    for (size_t Step = 0; Step < NBlocks; ++Step) {
      size_t L = Forward ? Step : NBlocks - 1 - Step;
      if (Forward) {
        // In = meet over predecessors' out (entry adds the boundary).
        if (L == 0 || !Preds[L].empty()) {
          bool First = true;
          if (L == 0) {
            Merged = Boundary;
            First = false;
          }
          for (size_t Pr : Preds[L]) {
            if (First) {
              Merged = OutSets[Pr];
              First = false;
            } else if (Union) {
              Merged.orWith(OutSets[Pr]);
            } else {
              Merged.andWith(OutSets[Pr]);
            }
          }
          if (Merged != InSets[L]) {
            InSets[L] = Merged;
            Changed = true;
          }
        }
        Merged = InSets[L];
        P.transfer(L, Merged, InSets);
        if (Merged != OutSets[L]) {
          OutSets[L] = std::move(Merged);
          Merged = BitVector(Universe);
          Changed = true;
        }
      } else {
        // Out = meet over exits' in (function-leaving exits contribute
        // the boundary).
        bool First = true;
        for (int T : ExitTargets[L]) {
          const BitVector &V = T < 0 ? Boundary : InSets[static_cast<size_t>(T)];
          if (First) {
            Merged = V;
            First = false;
          } else if (Union) {
            Merged.orWith(V);
          } else {
            Merged.andWith(V);
          }
        }
        if (First)
          Merged.reset(); // no exits at all: empty contribution
        if (Merged != OutSets[L]) {
          OutSets[L] = Merged;
          Changed = true;
        }
        Merged = OutSets[L];
        P.transfer(L, Merged, InSets);
        if (Merged != InSets[L]) {
          InSets[L] = std::move(Merged);
          Merged = BitVector(Universe);
          Changed = true;
        }
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// ReachingDefBlocks
//===----------------------------------------------------------------------===//

namespace {

/// Forward/union: In[L] = U over preds P of (In[P] | Gen[P]) — the set of
/// registers some other-position definition can reach. Gen is every
/// definition in the block, guarded or not, matching the reachability
/// closure semantics this replaces.
class ReachingDefProblem : public DataflowProblem {
public:
  ReachingDefProblem(const Function &F, const RegNumbering &N)
      : Universe(N.size()), Gen(F.numBlocks(), BitVector(N.size())) {
    for (size_t L = 0, E = F.numBlocks(); L != E; ++L)
      for (const Operation &Op : F.block(L).ops())
        for (const DefSlot &D : Op.defs()) {
          int I = N.indexOf(D.R);
          if (I >= 0)
            Gen[L].set(static_cast<size_t>(I));
        }
  }

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::Union; }
  size_t universeSize() const override { return Universe; }
  void transfer(size_t LayoutIdx, BitVector &V,
                const std::vector<BitVector> &) const override {
    V.orWith(Gen[LayoutIdx]);
  }

  const std::vector<BitVector> &gen() const { return Gen; }

private:
  size_t Universe;
  std::vector<BitVector> Gen;
};

} // namespace

ReachingDefBlocks::ReachingDefBlocks(const Function &F, const RegNumbering &N)
    : N(N), AnyDef(N.size()) {
  ReachingDefProblem P(F, N);
  DataflowSolver S(F, P);
  ReachIn.reserve(F.numBlocks());
  for (size_t L = 0, E = F.numBlocks(); L != E; ++L) {
    ReachIn.push_back(S.in(L));
    AnyDef.orWith(P.gen()[L]);
  }
}

bool ReachingDefBlocks::reachesEntry(Reg R, size_t LayoutIdx) const {
  int I = N.indexOf(R);
  if (I < 0 || LayoutIdx >= ReachIn.size())
    return false;
  return ReachIn[LayoutIdx].test(static_cast<size_t>(I));
}

bool ReachingDefBlocks::hasAnyDef(Reg R) const {
  int I = N.indexOf(R);
  return I >= 0 && AnyDef.test(static_cast<size_t>(I));
}

//===----------------------------------------------------------------------===//
// DefiniteAssignment
//===----------------------------------------------------------------------===//

namespace {

/// Forward/intersection: In[L] = meet over preds of (In[P] | SureGen[P]),
/// where SureGen holds only definitions that write whenever control
/// reaches them (unguarded, FRP-positional, or cmpp UN/UC).
class DefiniteAssignmentProblem : public DataflowProblem {
public:
  DefiniteAssignmentProblem(const Function &F, const RegNumbering &N)
      : Universe(N.size()), SureGen(F.numBlocks(), BitVector(N.size())) {
    for (size_t L = 0, E = F.numBlocks(); L != E; ++L)
      for (const Operation &Op : F.block(L).ops())
        for (const DefSlot &D : Op.defs())
          if (predicatedWriteKind(Op, D, nullptr, 0) == WriteKind::Always) {
            int I = N.indexOf(D.R);
            if (I >= 0)
              SureGen[L].set(static_cast<size_t>(I));
          }
  }

  Direction direction() const override { return Direction::Forward; }
  Meet meet() const override { return Meet::Intersection; }
  size_t universeSize() const override { return Universe; }
  void transfer(size_t LayoutIdx, BitVector &V,
                const std::vector<BitVector> &) const override {
    V.orWith(SureGen[LayoutIdx]);
  }

private:
  size_t Universe;
  std::vector<BitVector> SureGen;
};

} // namespace

DefiniteAssignment::DefiniteAssignment(const Function &F,
                                       const RegNumbering &N)
    : N(N) {
  DefiniteAssignmentProblem P(F, N);
  DataflowSolver S(F, P);
  AssignedIn.reserve(F.numBlocks());
  for (size_t L = 0, E = F.numBlocks(); L != E; ++L)
    AssignedIn.push_back(S.in(L));
}

bool DefiniteAssignment::assignedAtEntry(Reg R, size_t LayoutIdx) const {
  int I = N.indexOf(R);
  if (I < 0 || LayoutIdx >= AssignedIn.size())
    return false;
  return AssignedIn[LayoutIdx].test(static_cast<size_t>(I));
}

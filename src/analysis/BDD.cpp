//===- analysis/BDD.cpp - Reduced ordered binary decision diagrams --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/BDD.h"

#include <cassert>

using namespace cpr;

namespace {
/// Variable index of the terminals: larger than any real variable, so the
/// top-variable computation in ite() ignores terminals.
constexpr uint32_t TerminalVar = ~0u;

/// Packs three 21-bit values into one 64-bit key.
uint64_t pack3(uint64_t A, uint64_t B, uint64_t C) {
  assert(A < (1u << 21) && B < (1u << 21) && C < (1u << 21));
  return (A << 42) | (B << 21) | C;
}
} // namespace

BDD::BDD(size_t MaxNodes) : MaxNodes(MaxNodes) {
  assert(MaxNodes < (1u << 21) && "node budget exceeds key packing range");
  Nodes.push_back(Node{TerminalVar, False, False}); // False terminal
  Nodes.push_back(Node{TerminalVar, True, True});   // True terminal
}

uint32_t BDD::varOf(NodeRef F) const { return Nodes[F].Var; }

BDD::NodeRef BDD::mkNode(uint32_t Var, NodeRef Low, NodeRef High) {
  if (Low == Invalid || High == Invalid)
    return Invalid;
  if (Low == High)
    return Low; // reduction rule
  uint64_t Key = pack3(Var, Low, High);
  auto It = Unique.find(Key);
  if (It != Unique.end())
    return It->second;
  if (Nodes.size() >= MaxNodes)
    return Invalid;
  NodeRef R = static_cast<NodeRef>(Nodes.size());
  Nodes.push_back(Node{Var, Low, High});
  Unique.emplace(Key, R);
  return R;
}

BDD::NodeRef BDD::var(uint32_t Var) {
  assert(Var < (1u << 20) && "variable index out of packing range");
  return mkNode(Var, False, True);
}

BDD::NodeRef BDD::ite(NodeRef F, NodeRef G, NodeRef H) {
  if (F == Invalid || G == Invalid || H == Invalid)
    return Invalid;
  // Terminal cases.
  if (F == True)
    return G;
  if (F == False)
    return H;
  if (G == H)
    return G;
  if (G == True && H == False)
    return F;

  uint64_t Key = pack3(F, G, H);
  auto It = IteMemo.find(Key);
  if (It != IteMemo.end())
    return It->second;

  uint32_t Top = varOf(F);
  if (varOf(G) < Top)
    Top = varOf(G);
  if (varOf(H) < Top)
    Top = varOf(H);

  auto Cofactor = [&](NodeRef N, bool High) -> NodeRef {
    if (varOf(N) != Top)
      return N;
    return High ? Nodes[N].High : Nodes[N].Low;
  };

  NodeRef HighRes = ite(Cofactor(F, true), Cofactor(G, true), Cofactor(H, true));
  NodeRef LowRes =
      ite(Cofactor(F, false), Cofactor(G, false), Cofactor(H, false));
  NodeRef R = mkNode(Top, LowRes, HighRes);
  if (R != Invalid)
    IteMemo.emplace(Key, R);
  return R;
}

BDD::NodeRef BDD::mkNot(NodeRef F) { return ite(F, False, True); }

BDD::NodeRef BDD::mkAnd(NodeRef F, NodeRef G) { return ite(F, G, False); }

BDD::NodeRef BDD::mkOr(NodeRef F, NodeRef G) { return ite(F, True, G); }

bool BDD::disjoint(NodeRef F, NodeRef G) {
  NodeRef R = mkAnd(F, G);
  return R == False; // Invalid is conservatively "maybe overlapping".
}

bool BDD::implies(NodeRef F, NodeRef G) {
  NodeRef NotG = mkNot(G);
  if (NotG == Invalid)
    return false;
  return mkAnd(F, NotG) == False;
}

bool BDD::satOne(NodeRef F, std::vector<std::pair<uint32_t, bool>> &Out) const {
  Out.clear();
  if (F == Invalid || F == False)
    return false;
  // In a reduced BDD every node other than the False terminal has a path
  // to True (a node whose children were equal was never allocated), so a
  // greedy walk preferring any non-False child terminates at True.
  NodeRef N = F;
  while (N != True) {
    const Node &Nd = Nodes[N];
    if (Nd.High != False) {
      Out.emplace_back(Nd.Var, true);
      N = Nd.High;
    } else {
      Out.emplace_back(Nd.Var, false);
      N = Nd.Low;
    }
  }
  return true;
}

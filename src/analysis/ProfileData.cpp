//===- analysis/ProfileData.cpp - Branch and block profiles ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ProfileData.h"

using namespace cpr;

void ProfileData::merge(const ProfileData &Other) {
  for (const auto &[B, N] : Other.BlockEntries)
    BlockEntries[B] += N;
  for (const auto &[Op, N] : Other.BranchReached)
    BranchReached[Op] += N;
  for (const auto &[Op, N] : Other.BranchTaken)
    BranchTaken[Op] += N;
}

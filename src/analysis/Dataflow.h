//===- analysis/Dataflow.h - Generic dense dataflow solver ------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A generic forward/backward iterative dataflow solver over dense
/// bitsets (support/BitVector.h), the analysis substrate ROADMAP O3 calls
/// for. A DataflowProblem names the direction, the meet (union or
/// intersection), a dense universe, and an in-place per-block transfer;
/// the solver owns the block ordering, the meet over CFG edges, and the
/// fixed-point loop.
///
/// Predicate partitioning: transfers that depend on guard predicates
/// consult PQS/BDD through predicatedWriteKind() — a definition kills a
/// fact only when its write condition is provably True, generates it
/// unless provably False, and on BDD node-budget exhaustion (Invalid)
/// both answers degrade to Maybe, which every client must treat
/// conservatively (no kill, possible gen). The exact BDD-valued
/// refinement of the same partition lives in PredicatedLiveness
/// (analysis/Liveness.h); this layer is its dense block-level companion.
///
/// Clients in this file:
///  - RegNumbering       dense Reg <-> index mapping for one function
///  - ReachingDefBlocks  "some def of R in another block reaches this
///                       block's entry" (forward/union), the framework
///                       host for lint's defReachesEntry exemption
///  - DefiniteAssignment "R is surely written on every path to this
///                       block's entry" (forward/intersection), used by
///                       the uninit-read check to prune proven-safe reads
///
/// Function-level liveness (analysis/Liveness.cpp) runs on the same
/// solver with a backward/union problem.
///
/// Thread-safety: all classes are immutable after construction and may be
/// shared across threads.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_DATAFLOW_H
#define ANALYSIS_DATAFLOW_H

#include "ir/Function.h"
#include "support/BitVector.h"

#include <unordered_map>
#include <vector>

namespace cpr {

class RegionPQS;

/// Dense numbering of every register mentioned by one function (guards,
/// sources, definitions, observables), in first-appearance order over the
/// layout. The numbering is the bit universe of every dataflow problem
/// below.
class RegNumbering {
public:
  explicit RegNumbering(const Function &F);

  size_t size() const { return Regs.size(); }
  /// Dense index of \p R, or -1 when \p R does not appear in the function.
  int indexOf(Reg R) const {
    auto It = Index.find(R);
    return It == Index.end() ? -1 : static_cast<int>(It->second);
  }
  Reg regOf(size_t I) const { return Regs[I]; }

private:
  std::unordered_map<Reg, size_t> Index;
  std::vector<Reg> Regs;
};

/// How a definition slot behaves for dataflow purposes once its guard
/// predicate is taken into account.
enum class WriteKind {
  Always, ///< writes whenever control reaches the op (kills + gens)
  Maybe,  ///< may or may not write (gens, never kills)
  Never,  ///< provably never writes (neither kills nor gens)
};

/// Classifies definition slot \p D of op \p OpIdx of the block \p PQS was
/// built over. Consults the PQS/BDD guard expression when one is
/// available: a guard equal to BDD::True upgrades a predicated write to
/// Always, a guard equal to BDD::False (an unsatisfiable predicate)
/// downgrades it to Never, and BDD::Invalid (node-budget exhaustion)
/// yields the conservative Maybe. Passing null \p PQS uses the purely
/// syntactic classification (unguarded / FRP-positional => Always).
WriteKind predicatedWriteKind(const Operation &Op, const DefSlot &D,
                              const RegionPQS *PQS, size_t OpIdx);

/// One dataflow problem instance. The same object may be handed to many
/// solvers; it must not alias the solver's state.
class DataflowProblem {
public:
  enum class Direction { Forward, Backward };
  enum class Meet { Union, Intersection };

  virtual ~DataflowProblem() = default;

  virtual Direction direction() const = 0;
  virtual Meet meet() const = 0;
  /// Number of bits in every set.
  virtual size_t universeSize() const = 0;

  /// Value at the boundary: the entry block's in-set (Forward) or the
  /// contribution of function-leaving exits (Backward). Defaults to the
  /// empty set. \p V arrives sized and cleared.
  virtual void boundary(BitVector &V) const { (void)V; }

  /// In-place transfer through block \p LayoutIdx: \p V arrives holding
  /// the merged in-set (Forward) or merged out-set (Backward) and must
  /// leave holding the out-set (Forward) or in-set (Backward). The
  /// current global solution is readable through \p InSets (per-block
  /// in-sets, indexed by layout), which backward problems use to fold
  /// interior-exit contributions at their op positions.
  virtual void transfer(size_t LayoutIdx, BitVector &V,
                        const std::vector<BitVector> &InSets) const = 0;
};

/// Runs \p P over \p F to a fixed point. Results are per layout index.
class DataflowSolver {
public:
  DataflowSolver(const Function &F, const DataflowProblem &P);

  const BitVector &in(size_t LayoutIdx) const { return InSets[LayoutIdx]; }
  const BitVector &out(size_t LayoutIdx) const { return OutSets[LayoutIdx]; }
  /// Number of full passes over the block list until the fixed point.
  unsigned iterations() const { return Iterations; }

private:
  std::vector<BitVector> InSets;
  std::vector<BitVector> OutSets;
  unsigned Iterations = 0;
};

/// Forward/union client: bit (L, R) set iff some block other than the
/// program point itself holds a definition of R with a control-flow path
/// of at least one edge to the entry of block L — the exemption
/// use-before-def and compensation-completeness apply to registers that
/// "arrive from elsewhere" (including around loops). Unreachable blocks
/// participate exactly like the reachability closure it replaces: any
/// def-holding block seeds its successors.
class ReachingDefBlocks {
public:
  ReachingDefBlocks(const Function &F, const RegNumbering &N);

  /// True when a definition of \p R in some block can reach the entry of
  /// block \p LayoutIdx.
  bool reachesEntry(Reg R, size_t LayoutIdx) const;
  /// True when \p R has at least one definition anywhere in the function.
  bool hasAnyDef(Reg R) const;

  const RegNumbering &numbering() const { return N; }

private:
  const RegNumbering &N;
  std::vector<BitVector> ReachIn;
  BitVector AnyDef;
};

/// Forward/intersection client: bit (L, R) set iff every path from the
/// function entry to the entry of block L passes a definition that
/// surely writes R (predicate-aware: guarded writes under a non-True,
/// non-FRP predicate do not count). Blocks unreachable from the entry
/// keep the vacuous top value (everything assigned): no path from the
/// entry reaches them, so the universally-quantified claim holds — and
/// clients only use this analysis to *prune* candidate violations, never
/// to report them.
class DefiniteAssignment {
public:
  DefiniteAssignment(const Function &F, const RegNumbering &N);

  /// True when \p R is surely written on every entry path of block
  /// \p LayoutIdx.
  bool assignedAtEntry(Reg R, size_t LayoutIdx) const;

private:
  const RegNumbering &N;
  std::vector<BitVector> AssignedIn;
};

} // namespace cpr

#endif // ANALYSIS_DATAFLOW_H

//===- analysis/ProfileIO.cpp - Profile serialization ----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/ProfileIO.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

using namespace cpr;

std::string cpr::serializeProfile(const ProfileData &P, const Function &F) {
  std::string Out = "profile v1\n";
  char Line[128];
  // Walk the function so ids come out in a stable order and only entities
  // that exist are emitted.
  for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
    const Block &B = F.block(BI);
    uint64_t Entries = P.blockEntries(B.getId());
    if (Entries != 0) {
      std::snprintf(Line, sizeof(Line), "block %u %" PRIu64 "\n", B.getId(),
                    Entries);
      Out += Line;
    }
  }
  for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
    for (const Operation &Op : F.block(BI).ops()) {
      if (!Op.isBranch())
        continue;
      uint64_t Reached = P.branchReached(Op.getId());
      uint64_t Taken = P.branchTaken(Op.getId());
      if (Reached == 0 && Taken == 0)
        continue;
      std::snprintf(Line, sizeof(Line), "branch %u %" PRIu64 " %" PRIu64 "\n",
                    Op.getId(), Reached, Taken);
      Out += Line;
    }
  }
  return Out;
}

ProfileParseResult cpr::parseProfile(const std::string &Text) {
  ProfileParseResult Res;
  std::istringstream In(Text);
  std::string LineStr;
  unsigned LineNo = 0;
  bool SawHeader = false;
  while (std::getline(In, LineStr)) {
    ++LineNo;
    // Strip comments and whitespace-only lines.
    size_t Hash = LineStr.find('#');
    if (Hash != std::string::npos)
      LineStr.resize(Hash);
    std::istringstream L(LineStr);
    std::string Kind;
    if (!(L >> Kind))
      continue;
    if (!SawHeader) {
      std::string Version;
      if (Kind != "profile" || !(L >> Version) || Version != "v1") {
        Res.Error = "line " + std::to_string(LineNo) +
                    ": expected 'profile v1' header";
        return Res;
      }
      SawHeader = true;
      continue;
    }
    if (Kind == "block") {
      uint64_t Id, Entries;
      if (!(L >> Id >> Entries)) {
        Res.Error = "line " + std::to_string(LineNo) + ": bad block record";
        return Res;
      }
      Res.Profile.addBlockEntry(static_cast<BlockId>(Id), Entries);
    } else if (Kind == "branch") {
      uint64_t Id, Reached, Taken;
      if (!(L >> Id >> Reached >> Taken)) {
        Res.Error = "line " + std::to_string(LineNo) + ": bad branch record";
        return Res;
      }
      if (Taken > Reached) {
        Res.Error = "line " + std::to_string(LineNo) +
                    ": taken count exceeds reached count";
        return Res;
      }
      Res.Profile.addBranchReached(static_cast<OpId>(Id), Reached);
      Res.Profile.addBranchTaken(static_cast<OpId>(Id), Taken);
    } else {
      Res.Error =
          "line " + std::to_string(LineNo) + ": unknown record '" + Kind +
          "'";
      return Res;
    }
  }
  if (!SawHeader)
    Res.Error = "missing 'profile v1' header";
  return Res;
}

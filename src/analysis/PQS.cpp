//===- analysis/PQS.cpp - Predicate Query System ---------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/PQS.h"

#include "support/Error.h"

#include <map>

using namespace cpr;

std::pair<CompareCond, bool> cpr::canonicalCompareCond(CompareCond C) {
  switch (C) {
  case CompareCond::EQ:
    return {CompareCond::EQ, false};
  case CompareCond::NE:
    return {CompareCond::EQ, true};
  case CompareCond::LT:
    return {CompareCond::LT, false};
  case CompareCond::GE:
    return {CompareCond::LT, true};
  case CompareCond::LE:
    return {CompareCond::LE, false};
  case CompareCond::GT:
    return {CompareCond::LE, true};
  case CompareCond::None:
    break;
  }
  CPR_UNREACHABLE("canonicalCompareCond on None");
}

namespace {

/// A value number for a comparison source: either an immediate constant or
/// a (register, defining-op-sequence-number) pair.
struct SrcVN {
  bool IsImm;
  int64_t Imm;
  Reg R;
  uint64_t DefSeq;

  bool operator<(const SrcVN &O) const {
    if (IsImm != O.IsImm)
      return IsImm < O.IsImm;
    if (IsImm)
      return Imm < O.Imm;
    if (R != O.R)
      return R < O.R;
    return DefSeq < O.DefSeq;
  }
};

/// Key identifying one comparison atom.
struct AtomKey {
  CompareCond Cond;
  SrcVN A;
  SrcVN B;

  bool operator<(const AtomKey &O) const {
    if (Cond != O.Cond)
      return Cond < O.Cond;
    if (A < O.A || O.A < A)
      return A < O.A;
    return B < O.B;
  }
};

} // namespace

RegionPQS::RegionPQS(const Function &F, const Block &B) {
  (void)F;
  const std::vector<Operation> &Ops = B.ops();
  GuardExprs.resize(Ops.size(), BDD::Invalid);
  SrcPred.resize(Ops.size());
  DefAfter.resize(Ops.size());
  DefBefore.resize(Ops.size());

  // Current symbolic value per predicate register; absent = not yet bound.
  std::unordered_map<Reg, BDD::NodeRef> PredVal;
  // Value numbering for GPR sources: sequence number of the last def.
  std::unordered_map<Reg, uint64_t> GprDefSeq;
  uint64_t NextSeq = 1;
  // Atom table.
  std::map<AtomKey, BDD::NodeRef> Atoms;
  uint32_t NextVar = 0;

  auto FreshAtom = [&](PQSAtom Info) {
    AtomInfo.push_back(std::move(Info));
    return Mgr.var(NextVar++);
  };
  auto OpaqueAtom = [&]() {
    PQSAtom A;
    A.K = PQSAtom::Kind::Opaque;
    A.Desc = "opaque";
    return FreshAtom(std::move(A));
  };

  auto PredExpr = [&](Reg R) -> BDD::NodeRef {
    if (R.isTruePred())
      return BDD::True;
    auto It = PredVal.find(R);
    if (It != PredVal.end())
      return It->second;
    // Live-in predicate: opaque atom.
    PQSAtom Info;
    Info.K = PQSAtom::Kind::LiveInPred;
    Info.PredReg = R;
    Info.Desc = "live-in " + R.str();
    BDD::NodeRef A = FreshAtom(std::move(Info));
    PredVal.emplace(R, A);
    return A;
  };

  auto SrcText = [](const Operand &O) -> std::string {
    return O.isImm() ? std::to_string(O.getImm()) : O.getReg().str();
  };

  auto SrcValueNumber = [&](const Operand &O) -> SrcVN {
    if (O.isImm())
      return SrcVN{true, O.getImm(), Reg(), 0};
    Reg R = O.getReg();
    auto It = GprDefSeq.find(R);
    uint64_t Seq = It == GprDefSeq.end() ? 0 : It->second;
    return SrcVN{false, 0, R, Seq};
  };

  for (size_t I = 0, E = Ops.size(); I != E; ++I) {
    const Operation &Op = Ops[I];
    BDD::NodeRef G = PredExpr(Op.getGuard());
    GuardExprs[I] = G;

    // Record predicate source expressions as read.
    SrcPred[I].resize(Op.srcs().size(), BDD::Invalid);
    for (size_t S = 0; S < Op.srcs().size(); ++S) {
      const Operand &O = Op.srcs()[S];
      if (O.isReg() && O.getReg().isPred())
        SrcPred[I][S] = PredExpr(O.getReg());
    }

    switch (Op.getOpcode()) {
    case Opcode::Cmpp: {
      // Build (or reuse) the comparison atom.
      auto [CanonCond, Negated] = canonicalCompareCond(Op.getCond());
      AtomKey Key{CanonCond, SrcValueNumber(Op.srcs()[0]),
                  SrcValueNumber(Op.srcs()[1])};
      auto [It, Inserted] = Atoms.try_emplace(Key, BDD::Invalid);
      if (Inserted) {
        PQSAtom Info;
        Info.K = PQSAtom::Kind::Compare;
        Info.CmppOp = I;
        Info.Desc = std::string(compareCondName(CanonCond)) + "(" +
                    SrcText(Op.srcs()[0]) + ", " + SrcText(Op.srcs()[1]) +
                    ")";
        It->second = FreshAtom(std::move(Info));
      }
      BDD::NodeRef C = It->second;
      if (Negated)
        C = Mgr.mkNot(C);

      for (const DefSlot &D : Op.defs()) {
        BDD::NodeRef Old = PredExpr(D.R);
        DefBefore[I].push_back(PredSnapshot{D.R, Old});
        BDD::NodeRef New = BDD::Invalid;
        switch (D.Act) {
        case CmppAction::UN:
          New = Mgr.mkAnd(G, C);
          break;
        case CmppAction::UC:
          New = Mgr.mkAnd(G, Mgr.mkNot(C));
          break;
        case CmppAction::ON:
          New = Mgr.mkOr(Old, Mgr.mkAnd(G, C));
          break;
        case CmppAction::OC:
          New = Mgr.mkOr(Old, Mgr.mkAnd(G, Mgr.mkNot(C)));
          break;
        case CmppAction::AN:
          New = Mgr.mkAnd(Old, Mgr.mkOr(Mgr.mkNot(G), C));
          break;
        case CmppAction::AC:
          New = Mgr.mkAnd(Old, Mgr.mkOr(Mgr.mkNot(G), Mgr.mkNot(C)));
          break;
        case CmppAction::None:
          CPR_UNREACHABLE("cmpp destination without action");
        }
        if (New == BDD::Invalid)
          New = OpaqueAtom(); // budget exhausted: opaque, conservative
        PredVal[D.R] = New;
        DefAfter[I].push_back(PredSnapshot{D.R, New});
      }
      break;
    }
    case Opcode::Mov: {
      const DefSlot &D = Op.defs()[0];
      if (D.R.isPred()) {
        BDD::NodeRef Old = PredExpr(D.R);
        DefBefore[I].push_back(PredSnapshot{D.R, Old});
        const Operand &Src = Op.srcs()[0];
        BDD::NodeRef SrcE =
            Src.isImm() ? (Src.getImm() ? BDD::True : BDD::False)
                        : PredExpr(Src.getReg());
        // Guarded move: dest = guard ? src : old.
        BDD::NodeRef New = Mgr.ite(G, SrcE, Old);
        if (New == BDD::Invalid)
          New = OpaqueAtom();
        PredVal[D.R] = New;
        DefAfter[I].push_back(PredSnapshot{D.R, New});
      } else if (D.R.getClass() == RegClass::GPR) {
        GprDefSeq[D.R] = NextSeq++;
      }
      break;
    }
    default:
      // Any GPR definition invalidates value numbers built on it.
      for (const DefSlot &D : Op.defs())
        if (D.R.getClass() == RegClass::GPR)
          GprDefSeq[D.R] = NextSeq++;
      break;
    }
  }
}

BDD::NodeRef RegionPQS::predSrcExpr(size_t OpIdx, size_t SrcIdx) const {
  assert(OpIdx < SrcPred.size() && SrcIdx < SrcPred[OpIdx].size());
  return SrcPred[OpIdx][SrcIdx];
}

BDD::NodeRef RegionPQS::takenExpr(size_t OpIdx) const {
  return predSrcExpr(OpIdx, 0);
}

BDD::NodeRef RegionPQS::predValueAfter(size_t OpIdx, Reg R) const {
  // Walk backwards from OpIdx looking for the most recent definition.
  for (size_t I = OpIdx + 1; I-- > 0;) {
    for (const PredSnapshot &S : DefAfter[I])
      if (S.R == R)
        return S.Expr;
  }
  if (R.isTruePred())
    return BDD::True;
  return BDD::Invalid; // live-in; caller should not need this.
}

//===- analysis/ProfileData.h - Branch and block profiles -------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Execution profiles: per-block entry counts and per-branch reach/taken
/// counts, keyed by ids that survive transformation. The ICBM match
/// heuristics (exit-weight and predict-taken tests) and the performance
/// model both consume this structure; the interpreter-based profiler and
/// the synthetic workload generators both produce it.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_PROFILEDATA_H
#define ANALYSIS_PROFILEDATA_H

#include "ir/Function.h"

#include <unordered_map>

namespace cpr {

/// Branch and block execution frequencies.
class ProfileData {
public:
  void addBlockEntry(BlockId B, uint64_t N = 1) { BlockEntries[B] += N; }
  void addBranchReached(OpId Op, uint64_t N = 1) { BranchReached[Op] += N; }
  void addBranchTaken(OpId Op, uint64_t N = 1) { BranchTaken[Op] += N; }

  uint64_t blockEntries(BlockId B) const { return lookup(BlockEntries, B); }
  uint64_t branchReached(OpId Op) const { return lookup(BranchReached, Op); }
  uint64_t branchTaken(OpId Op) const { return lookup(BranchTaken, Op); }

  /// Fraction of executions of the branch that take; 0 when never reached.
  double takenRatio(OpId Op) const {
    uint64_t R = branchReached(Op);
    return R == 0 ? 0.0
                  : static_cast<double>(branchTaken(Op)) /
                        static_cast<double>(R);
  }

  bool empty() const { return BlockEntries.empty(); }

  /// Merges \p Other into this profile (summing counts).
  void merge(const ProfileData &Other);

private:
  template <typename K>
  static uint64_t lookup(const std::unordered_map<K, uint64_t> &M, K Key) {
    auto It = M.find(Key);
    return It == M.end() ? 0 : It->second;
  }

  std::unordered_map<BlockId, uint64_t> BlockEntries;
  std::unordered_map<OpId, uint64_t> BranchReached;
  std::unordered_map<OpId, uint64_t> BranchTaken;
};

} // namespace cpr

#endif // ANALYSIS_PROFILEDATA_H

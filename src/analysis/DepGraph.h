//===- analysis/DepGraph.h - Region dependence graph ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dependence graph over one linear region (block). Nodes are the
/// block's operation indices; edges carry a kind and a latency constraint
/// cycle(To) >= cycle(From) + Latency (latencies may be non-positive for
/// relaxed ordering constraints such as sinking side effects into branch
/// delay slots).
///
/// The construction is *predicate cognizant*: register and memory
/// dependences between operations with provably disjoint guard predicates
/// are pruned using the Predicate Query System, and same-register wired
/// cmpp writes are unordered among themselves (the PlayDoh property ICBM's
/// height-reduced FRP evaluation relies on). Control dependences implement
/// superblock speculation rules: an operation may move above an earlier
/// branch unless it has side effects or clobbers a register live at that
/// branch's target, in both cases unless its guard is disjoint from the
/// branch's taken condition.
///
//===----------------------------------------------------------------------===//

#ifndef ANALYSIS_DEPGRAPH_H
#define ANALYSIS_DEPGRAPH_H

#include "analysis/Liveness.h"
#include "analysis/PQS.h"
#include "ir/Function.h"
#include "machine/MachineDesc.h"

#include <vector>

namespace cpr {

/// Kind of a dependence edge.
enum class DepKind : uint8_t {
  Flow,    ///< register def -> use (true dependence)
  Anti,    ///< register use -> def
  Output,  ///< register def -> def
  Mem,     ///< memory ordering (store/store, store/load, load/store)
  Control, ///< branch/terminator ordering
};

/// Returns a printable name for \p K.
const char *depKindName(DepKind K);

/// One dependence edge: cycle(To) >= cycle(From) + Latency.
struct DepEdge {
  uint32_t From;
  uint32_t To;
  DepKind Kind;
  int Latency;
};

/// Options controlling dependence graph construction.
struct DepGraphOptions {
  /// Allow speculation of safe operations above branches (superblock
  /// scheduling). When false, every later operation is control dependent
  /// on every earlier branch.
  bool AllowSpeculation = true;
};

/// The dependence graph of one block.
class DepGraph {
public:
  /// Builds the graph for block \p B of \p F under machine \p MD.
  /// \p PQS and \p LV must be built for the same block/function.
  DepGraph(const Function &F, const Block &B, const MachineDesc &MD,
           RegionPQS &PQS, const Liveness &LV,
           const DepGraphOptions &Opts = DepGraphOptions());

  size_t numNodes() const { return NumNodes; }
  const std::vector<DepEdge> &edges() const { return Edges; }

  /// Outgoing / incoming adjacency (edge indices).
  const std::vector<uint32_t> &succs(uint32_t Node) const {
    return SuccIdx[Node];
  }
  const std::vector<uint32_t> &preds(uint32_t Node) const {
    return PredIdx[Node];
  }
  const DepEdge &edge(uint32_t EdgeIdx) const { return Edges[EdgeIdx]; }

  /// Longest-path distance from any source to each node, counting edge
  /// latencies clamped below at 0 (an operation never *needs* to start
  /// before its predecessors). Index = node.
  std::vector<int> depths() const;

  /// Longest-path distance from each node to any sink, including the
  /// node's own latency. This is the scheduler's priority function.
  std::vector<int> heights() const;

  /// The region's dependence height: max over nodes of depth + latency.
  /// Matches the paper's notion of height (schedule length on a machine
  /// with unbounded resources).
  int criticalPathLength() const;

  /// Transitive data-dependence successors of node \p Start (Flow edges
  /// only, optionally including Mem and Control), as a sorted list of
  /// nodes. Used by ICBM's separability test and off-trace motion.
  std::vector<uint32_t> transitiveSuccessors(uint32_t Start,
                                             bool IncludeMem = true,
                                             bool IncludeControl = true) const;

  /// Latency of node \p N on the construction machine.
  int nodeLatency(uint32_t N) const { return NodeLatency[N]; }

private:
  void addEdge(uint32_t From, uint32_t To, DepKind Kind, int Latency);

  size_t NumNodes;
  std::vector<DepEdge> Edges;
  std::vector<std::vector<uint32_t>> SuccIdx;
  std::vector<std::vector<uint32_t>> PredIdx;
  std::vector<int> NodeLatency;
};

} // namespace cpr

#endif // ANALYSIS_DEPGRAPH_H

//===- analysis/RegPressure.cpp - Register pressure analysis ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/RegPressure.h"

#include "analysis/CFG.h"

using namespace cpr;

namespace {

PressureReport snapshot(const RegSet &Live) {
  PressureReport R;
  for (Reg Reg : Live)
    ++R.Peak[static_cast<unsigned>(Reg.getClass())];
  return R;
}

} // namespace

PressureReport cpr::measureBlockPressure(const Function &F, const Block &B,
                                         const Liveness &LV) {
  PressureReport Peak;

  // Backward walk mirroring the liveness transfer, taking a pressure
  // snapshot at every program point.
  RegSet Live = LV.liveOut(B.getId());
  Peak.mergeMax(snapshot(Live));

  int LayoutIdx = F.layoutIndex(B.getId());
  std::vector<BlockExit> Exits =
      LayoutIdx >= 0 ? blockExits(F, static_cast<size_t>(LayoutIdx))
                     : std::vector<BlockExit>();

  for (size_t OI = B.size(); OI-- > 0;) {
    const Operation &Op = B.ops()[OI];
    if (Op.isControl()) {
      for (const BlockExit &E : Exits) {
        if (E.OpIdx != static_cast<int>(OI) || E.Target == InvalidBlockId)
          continue;
        const RegSet &SuccIn = LV.liveIn(E.Target);
        Live.insert(SuccIn.begin(), SuccIn.end());
      }
      if (Op.getOpcode() == Opcode::Halt || Op.getOpcode() == Opcode::Trap)
        for (Reg R : F.observableRegs())
          Live.insert(R);
    }
    for (const DefSlot &D : Op.defs()) {
      bool AlwaysWrites =
          Op.isCmpp() ? (D.Act == CmppAction::UN || D.Act == CmppAction::UC)
                      : (Op.getGuard().isTruePred() || Op.isFrpGuard());
      if (AlwaysWrites)
        Live.erase(D.R);
    }
    if (!Op.getGuard().isTruePred())
      Live.insert(Op.getGuard());
    for (const Operand &S : Op.srcs())
      if (S.isReg())
        Live.insert(S.getReg());
    Peak.mergeMax(snapshot(Live));
  }
  return Peak;
}

PressureReport cpr::measureFunctionPressure(const Function &F) {
  Liveness LV(F);
  PressureReport Peak;
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I)
    Peak.mergeMax(measureBlockPressure(F, F.block(I), LV));
  return Peak;
}

//===- analysis/Liveness.cpp - Register liveness ---------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/Liveness.h"

#include "analysis/CFG.h"
#include "analysis/Dataflow.h"
#include "support/Error.h"

using namespace cpr;

const RegSet Liveness::EmptySet;

namespace {

/// Returns true if \p Op always writes destination slot \p D when control
/// reaches it (so the definition kills liveness even in set analysis).
/// FRP-positional guards (isFrpGuard) are true whenever control reaches
/// the operation in program order, so such definitions kill as well.
bool defAlwaysWrites(const Operation &Op, const DefSlot &D) {
  if (Op.isCmpp())
    // UN/UC targets always write (Table 1); wired targets may not.
    return D.Act == CmppAction::UN || D.Act == CmppAction::UC;
  return Op.getGuard().isTruePred() || Op.isFrpGuard();
}

/// Backward/union liveness over the dense dataflow solver
/// (analysis/Dataflow.h). The transfer folds interior exits at their op
/// positions — the same precision the per-register-set implementation
/// had — but runs on BitVector words instead of hash-set elements
/// (ROADMAP O3; see bench/bench_liveness.cpp for the before/after).
class LivenessProblem : public DataflowProblem {
public:
  LivenessProblem(const Function &F, const RegNumbering &N)
      : F(F), N(N), Observable(N.size()) {
    for (Reg R : F.observableRegs()) {
      int I = N.indexOf(R);
      if (I >= 0)
        Observable.set(static_cast<size_t>(I));
    }
  }

  Direction direction() const override { return Direction::Backward; }
  Meet meet() const override { return Meet::Union; }
  size_t universeSize() const override { return N.size(); }
  void boundary(BitVector &V) const override { V.orWith(Observable); }

  void transfer(size_t LayoutIdx, BitVector &V,
                const std::vector<BitVector> &InSets) const override {
    const Block &B = F.block(LayoutIdx);
    std::vector<BlockExit> Exits = blockExits(F, LayoutIdx);
    for (size_t OI = B.size(); OI-- > 0;) {
      const Operation &Op = B.ops()[OI];
      // Interior exits add their targets' live-ins at the exit point.
      if (Op.isControl()) {
        for (const BlockExit &E : Exits) {
          if (E.OpIdx != static_cast<int>(OI))
            continue;
          if (E.Target == InvalidBlockId) {
            V.orWith(Observable);
          } else {
            int T = F.layoutIndex(E.Target);
            if (T >= 0)
              V.orWith(InSets[static_cast<size_t>(T)]);
          }
        }
      }
      // Backward transfer: kill sure definitions, then gen reads.
      for (const DefSlot &D : Op.defs())
        if (defAlwaysWrites(Op, D)) {
          int I = N.indexOf(D.R);
          if (I >= 0)
            V.reset(static_cast<size_t>(I));
        }
      if (!Op.getGuard().isTruePred()) {
        int I = N.indexOf(Op.getGuard());
        if (I >= 0)
          V.set(static_cast<size_t>(I));
      }
      for (const Operand &S : Op.srcs())
        if (S.isReg()) {
          int I = N.indexOf(S.getReg());
          if (I >= 0)
            V.set(static_cast<size_t>(I));
        }
    }
  }

private:
  const Function &F;
  const RegNumbering &N;
  BitVector Observable;
};

} // namespace

Liveness::Liveness(const Function &F) {
  for (Reg R : F.observableRegs())
    ObservableSet.insert(R);

  RegNumbering N(F);
  LivenessProblem P(F, N);
  DataflowSolver S(F, P);

  // Materialize the dense solution into the RegSet API every existing
  // client (scheduler, DCE, off-trace motion, perf model) consumes.
  auto ToSet = [&](const BitVector &V) {
    RegSet Out;
    for (size_t I = V.findFirst(); I != BitVector::npos; I = V.findNext(I + 1))
      Out.insert(N.regOf(I));
    return Out;
  };
  for (size_t L = 0, E = F.numBlocks(); L != E; ++L) {
    BlockId Id = F.block(L).getId();
    LiveInMap[Id] = ToSet(S.in(L));
    LiveOutMap[Id] = ToSet(S.out(L));
  }
}

const RegSet &Liveness::liveIn(BlockId B) const {
  auto It = LiveInMap.find(B);
  return It == LiveInMap.end() ? EmptySet : It->second;
}

const RegSet &Liveness::liveOut(BlockId B) const {
  auto It = LiveOutMap.find(B);
  return It == LiveOutMap.end() ? EmptySet : It->second;
}

RegSet Liveness::liveAtExit(const Function &F, const Block &B,
                            size_t OpIdx) const {
  const Operation &Op = B.ops()[OpIdx];
  assert(Op.isControl() && "liveAtExit requires a control operation");
  if (Op.isBranch()) {
    BlockId Target = resolveBranchTarget(B, OpIdx);
    if (Target != InvalidBlockId)
      return liveIn(Target);
    (void)F;
    return ObservableSet;
  }
  return ObservableSet; // halt/trap observe the observable registers
}

//===----------------------------------------------------------------------===//
// PredicatedLiveness
//===----------------------------------------------------------------------===//

BDD::NodeRef PredicatedLiveness::get(const LiveMap &M, Reg R) {
  auto It = M.find(R);
  return It == M.end() ? BDD::False : It->second;
}

PredicatedLiveness::PredicatedLiveness(const Function &F, const Block &B,
                                       RegionPQS &PQS, const Liveness &L) {
  BDD &Mgr = PQS.bdd();
  const std::vector<Operation> &Ops = B.ops();
  LiveBeforeOp.resize(Ops.size() + 1);

  // Block-end map: the layout successor's live-in, but only when control
  // can actually reach the end of the block (an unguarded halt/trap makes
  // the fall-through point unreachable).
  LiveMap Cur;
  int LayoutIdx = F.layoutIndex(B.getId());
  bool FallsThrough = false;
  if (LayoutIdx >= 0) {
    for (const BlockExit &E : blockExits(F, static_cast<size_t>(LayoutIdx)))
      if (E.isFallThrough())
        FallsThrough = true;
  }
  if (FallsThrough && LayoutIdx >= 0 &&
      static_cast<size_t>(LayoutIdx) + 1 < F.numBlocks()) {
    for (Reg R : L.liveIn(F.block(static_cast<size_t>(LayoutIdx) + 1).getId()))
      Cur[R] = BDD::True;
  } else if (FallsThrough) {
    for (Reg R : F.observableRegs())
      Cur[R] = BDD::True;
  }
  LiveBeforeOp[Ops.size()] = Cur;

  auto OrInto = [&](LiveMap &M, Reg R, BDD::NodeRef Cond) {
    BDD::NodeRef Old = get(M, R);
    BDD::NodeRef New = Mgr.mkOr(Old, Cond);
    if (New == BDD::Invalid)
      New = BDD::True; // conservative: live
    M[R] = New;
  };

  for (size_t I = Ops.size(); I-- > 0;) {
    const Operation &Op = Ops[I];
    BDD::NodeRef G = PQS.guardExpr(I);

    // Exits merge in their target's live set under the exit condition.
    if (Op.isBranch()) {
      RegSet ExitLive = L.liveAtExit(F, B, I);
      BDD::NodeRef Taken = PQS.takenExpr(I);
      for (Reg R : ExitLive)
        OrInto(Cur, R, Taken);
    } else if (Op.getOpcode() == Opcode::Halt ||
               Op.getOpcode() == Opcode::Trap) {
      for (Reg R : F.observableRegs())
        OrInto(Cur, R, G);
    }

    // Kill definitions under their write conditions.
    for (const DefSlot &D : Op.defs()) {
      BDD::NodeRef WriteCond = BDD::False;
      if (Op.isCmpp()) {
        switch (D.Act) {
        case CmppAction::UN:
        case CmppAction::UC:
          WriteCond = BDD::True; // unconditional targets always write
          break;
        default:
          WriteCond = BDD::False; // wired writes: conservative no-kill
          break;
        }
      } else {
        // Positional (FRP) guards are true whenever the op is reached.
        WriteCond = Op.isFrpGuard() ? BDD::True : G;
      }
      if (WriteCond != BDD::False) {
        BDD::NodeRef Old = get(Cur, D.R);
        BDD::NodeRef New = Mgr.mkAnd(Old, Mgr.mkNot(WriteCond));
        if (New == BDD::Invalid)
          New = Old; // conservative: keep live
        if (New == BDD::False)
          Cur.erase(D.R);
        else
          Cur[D.R] = New;
      }
    }

    // Uses become live under the guard condition (even a cmpp's
    // unconditional targets write a value independent of the sources when
    // the guard is false); the guard register itself is read
    // unconditionally to decide nullification.
    if (!Op.getGuard().isTruePred())
      OrInto(Cur, Op.getGuard(), BDD::True);
    if (Op.isBranch()) {
      // The predicate decides whether the branch takes (read whenever the
      // branch issues); the target register matters only when it takes.
      OrInto(Cur, Op.branchPred(), BDD::True);
      OrInto(Cur, Op.branchTargetReg(), PQS.takenExpr(I));
    } else {
      for (const Operand &S : Op.srcs())
        if (S.isReg())
          OrInto(Cur, S.getReg(), G);
    }

    LiveBeforeOp[I] = Cur;
  }
}

BDD::NodeRef PredicatedLiveness::liveAfter(size_t OpIdx, Reg R) const {
  assert(OpIdx + 1 < LiveBeforeOp.size() + 1);
  return get(LiveBeforeOp[OpIdx + 1], R);
}

BDD::NodeRef PredicatedLiveness::liveBefore(size_t OpIdx, Reg R) const {
  assert(OpIdx < LiveBeforeOp.size());
  return get(LiveBeforeOp[OpIdx], R);
}

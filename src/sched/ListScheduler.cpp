//===- sched/ListScheduler.cpp - EPIC list scheduling ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/ListScheduler.h"

#include "support/Error.h"

#include <algorithm>
#include <memory>

using namespace cpr;

Schedule::Schedule(std::vector<int> InCycles, const Block &B,
                   const MachineDesc &MD)
    : Cycles(std::move(InCycles)) {
  assert(Cycles.size() == B.size());
  for (size_t I = 0; I < Cycles.size(); ++I)
    Length = std::max(Length, Cycles[I] + std::max(1, MD.latency(B.ops()[I])));
}

int Schedule::departureCycle(size_t OpIdx, const Block &B,
                             const MachineDesc &MD) const {
  const Operation &Op = B.ops()[OpIdx];
  assert(Op.isControl() && "departure cycle is defined for exits");
  if (Op.isBranch())
    return Cycles[OpIdx] + MD.branchLatency();
  return Cycles[OpIdx] + 1; // halt/trap
}

Schedule cpr::scheduleBlock(const Block &B, const DepGraph &DG,
                            const MachineDesc &MD) {
  size_t N = DG.numNodes();
  assert(N == B.size());
  std::vector<int> Cycle(N, -1);
  if (N == 0)
    return Schedule({}, B, MD);

  std::vector<int> Height = DG.heights();
  // Exit-order priority boost: a branch's scheduling priority is at least
  // that of everything after it in program order. Dependence height alone
  // would sink side exits (which have no data successors) to the end of
  // the schedule, delaying taken departures -- real superblock schedulers
  // keep exits near their program position. Legality is untouched; this
  // only biases the ready-list order.
  {
    int RunningMax = 0;
    for (size_t I = N; I-- > 0;) {
      if (B.ops()[I].isBranch() && Height[I] < RunningMax)
        Height[I] = RunningMax;
      RunningMax = std::max(RunningMax, Height[I]);
    }
  }
  std::vector<unsigned> UnscheduledPreds(N, 0);
  for (const DepEdge &E : DG.edges())
    ++UnscheduledPreds[E.To];

  // Earliest legal cycle per op, refined as predecessors schedule.
  std::vector<int> Earliest(N, 0);

  // Candidate pool: ops whose predecessors are all scheduled.
  std::vector<uint32_t> Pool;
  for (uint32_t I = 0; I < N; ++I)
    if (UnscheduledPreds[I] == 0)
      Pool.push_back(I);

  size_t Remaining = N;
  int Cur = 0;
  constexpr unsigned NumUnitKinds = 4;

  while (Remaining > 0) {
    // Resource budget for this cycle.
    int Budget[NumUnitKinds];
    for (unsigned K = 0; K < NumUnitKinds; ++K)
      Budget[K] = MD.unitCount(static_cast<UnitKind>(K));
    int TotalBudget = MD.isSequential() ? 1 : MD.issueWidth();

    // Ready = pool ops whose earliest cycle has arrived; highest height
    // first, program order as tie-break (stable since pool is sorted).
    std::sort(Pool.begin(), Pool.end());
    std::vector<uint32_t> Ready;
    for (uint32_t I : Pool)
      if (Earliest[I] <= Cur)
        Ready.push_back(I);
    std::stable_sort(Ready.begin(), Ready.end(),
                     [&](uint32_t A, uint32_t Bn) {
                       return Height[A] > Height[Bn];
                     });

    bool PlacedAny = false;
    for (uint32_t I : Ready) {
      if (TotalBudget == 0)
        break;
      unsigned K = static_cast<unsigned>(opcodeUnit(B.ops()[I].getOpcode()));
      if (!MD.isSequential() && Budget[K] == 0)
        continue;
      // Place op I at cycle Cur.
      Cycle[I] = Cur;
      --TotalBudget;
      --Budget[K];
      PlacedAny = true;
      --Remaining;
      Pool.erase(std::find(Pool.begin(), Pool.end(), I));
      for (uint32_t EI : DG.succs(I)) {
        const DepEdge &E = DG.edge(EI);
        Earliest[E.To] = std::max(Earliest[E.To], Cur + E.Latency);
        if (--UnscheduledPreds[E.To] == 0)
          Pool.push_back(E.To);
      }
    }
    (void)PlacedAny;
    ++Cur;
  }
  return Schedule(std::move(Cycle), B, MD);
}

Schedule cpr::scheduleBlockWithAnalyses(const Function &F, const Block &B,
                                        const MachineDesc &MD,
                                        bool AllowSpeculation,
                                        const Liveness *LV) {
  RegionPQS PQS(F, B);
  std::unique_ptr<Liveness> Owned;
  if (!LV) {
    Owned = std::make_unique<Liveness>(F);
    LV = Owned.get();
  }
  DepGraphOptions Opts;
  Opts.AllowSpeculation = AllowSpeculation;
  DepGraph DG(F, B, MD, PQS, *LV, Opts);
  return scheduleBlock(B, DG, MD);
}

std::vector<std::string> cpr::checkScheduleLegality(const Block &B,
                                                    const DepGraph &DG,
                                                    const MachineDesc &MD,
                                                    const Schedule &S) {
  std::vector<std::string> Errors;
  if (S.size() != B.size()) {
    Errors.push_back("schedule size mismatch");
    return Errors;
  }
  for (const DepEdge &E : DG.edges()) {
    if (S.cycleOf(E.To) < S.cycleOf(E.From) + E.Latency)
      Errors.push_back("edge " + std::string(depKindName(E.Kind)) + " " +
                       std::to_string(E.From) + "->" + std::to_string(E.To) +
                       " violated: " + std::to_string(S.cycleOf(E.From)) +
                       " + " + std::to_string(E.Latency) + " > " +
                       std::to_string(S.cycleOf(E.To)));
  }
  // Resource check per cycle.
  int MaxCycle = 0;
  for (size_t I = 0; I < S.size(); ++I)
    MaxCycle = std::max(MaxCycle, S.cycleOf(I));
  for (int C = 0; C <= MaxCycle; ++C) {
    int PerKind[4] = {0, 0, 0, 0};
    int Total = 0;
    for (size_t I = 0; I < S.size(); ++I) {
      if (S.cycleOf(I) != C)
        continue;
      ++Total;
      ++PerKind[static_cast<unsigned>(opcodeUnit(B.ops()[I].getOpcode()))];
    }
    if (MD.isSequential()) {
      if (Total > 1)
        Errors.push_back("sequential machine issued " + std::to_string(Total) +
                         " ops in cycle " + std::to_string(C));
      continue;
    }
    for (unsigned K = 0; K < 4; ++K)
      if (PerKind[K] > MD.unitCount(static_cast<UnitKind>(K)))
        Errors.push_back("unit kind " + std::to_string(K) + " oversubscribed " +
                         "in cycle " + std::to_string(C));
  }
  return Errors;
}

//===- sched/PerfModel.h - Compiler-estimation performance model -*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's performance methodology (Section 7): code is scheduled for a
/// processor configuration and execution time is estimated from static
/// schedule lengths weighted by profiled execution frequencies, ignoring
/// dynamic effects (caches, predictors).
///
/// Two weighting modes are provided:
///  - BlockLength: the paper's literal formula, sum over blocks of
///    scheduleLength * entryFrequency;
///  - ExitAware (default): an entry that departs through a taken exit is
///    charged up to that exit's departure cycle instead of the full block
///    length. This realizes the exit-delay penalties Section 7 discusses
///    (delayed exit branches hurting narrow machines) that the literal
///    formula cannot express.
///
//===----------------------------------------------------------------------===//

#ifndef SCHED_PERFMODEL_H
#define SCHED_PERFMODEL_H

#include "analysis/ProfileData.h"
#include "machine/MachineDesc.h"
#include "sched/Schedule.h"

#include <string>
#include <vector>

namespace cpr {

class Liveness;

/// Cycle-estimation options.
struct PerfModelOptions {
  enum class Mode {
    BlockLength, ///< schedule length x entry frequency (paper's formula)
    ExitAware,   ///< charge taken exits their departure cycle
  };
  Mode WeightMode = Mode::ExitAware;
  bool AllowSpeculation = true;
};

/// Per-block detail of one estimate.
struct BlockEstimate {
  BlockId Id;
  std::string Name;
  uint64_t Entries = 0;
  int ScheduleLength = 0;
  int CriticalPath = 0;
  double Cycles = 0.0;
};

/// A whole-function estimate.
struct PerfEstimate {
  double TotalCycles = 0.0;
  std::vector<BlockEstimate> Blocks;
};

/// Schedules every block of \p F for \p MD and estimates total cycles
/// under profile \p Profile. \p LV, when given, is a pre-solved liveness
/// for \p F (e.g. from a shared analysis/AnalysisCache.h bundle);
/// otherwise one is computed. Liveness is a pure function of the IR, so
/// sharing never changes the estimate.
PerfEstimate estimatePerformance(const Function &F, const MachineDesc &MD,
                                 const ProfileData &Profile,
                                 const PerfModelOptions &Opts =
                                     PerfModelOptions(),
                                 const Liveness *LV = nullptr);

} // namespace cpr

#endif // SCHED_PERFMODEL_H

//===- sched/ListScheduler.h - EPIC list scheduling -------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cycle-driven list scheduler for one linear region on a regular EPIC
/// machine. Priority is dependence height (longest latency path to a sink).
/// Resources are the machine's per-unit-kind counts (or one operation per
/// cycle for the sequential model). Legality comes entirely from the
/// predicate-cognizant dependence graph, which encodes the superblock
/// speculation rules and PlayDoh's branch-overlap restrictions.
///
//===----------------------------------------------------------------------===//

#ifndef SCHED_LISTSCHEDULER_H
#define SCHED_LISTSCHEDULER_H

#include "analysis/DepGraph.h"
#include "sched/Schedule.h"

namespace cpr {

/// Schedules block \p B (whose dependence graph is \p DG) on machine \p MD.
Schedule scheduleBlock(const Block &B, const DepGraph &DG,
                       const MachineDesc &MD);

/// Convenience: builds the analyses and dependence graph for block \p B,
/// then schedules it. \p AllowSpeculation selects superblock speculation.
/// \p LV, when given, is a pre-solved liveness for \p F (e.g. from a
/// shared analysis/AnalysisCache.h bundle); otherwise one is computed.
Schedule scheduleBlockWithAnalyses(const Function &F, const Block &B,
                                   const MachineDesc &MD,
                                   bool AllowSpeculation = true,
                                   const Liveness *LV = nullptr);

/// Checks that \p S respects every edge of \p DG and the resource limits of
/// \p MD; returns a list of violations (empty when legal). Test helper.
std::vector<std::string> checkScheduleLegality(const Block &B,
                                               const DepGraph &DG,
                                               const MachineDesc &MD,
                                               const Schedule &S);

} // namespace cpr

#endif // SCHED_LISTSCHEDULER_H

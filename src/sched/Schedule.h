//===- sched/Schedule.h - Cycle assignments for one region ------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The result of scheduling one block: an issue cycle per operation and the
/// derived timing queries the performance model needs (block length and
/// per-exit departure cycles).
///
//===----------------------------------------------------------------------===//

#ifndef SCHED_SCHEDULE_H
#define SCHED_SCHEDULE_H

#include "ir/Function.h"
#include "machine/MachineDesc.h"

#include <vector>

namespace cpr {

/// Issue cycles for one block.
class Schedule {
public:
  Schedule() = default;
  Schedule(std::vector<int> Cycles, const Block &B, const MachineDesc &MD);

  /// Issue cycle of operation index \p OpIdx.
  int cycleOf(size_t OpIdx) const { return Cycles[OpIdx]; }

  /// Completion-based schedule length: max over operations of
  /// issue cycle + latency. This is the block's contribution for an entry
  /// that falls through.
  int length() const { return Length; }

  /// Cycle at which control leaves through the exit at \p OpIdx if it is
  /// taken: issue cycle + branch latency (fetch redirect point).
  int departureCycle(size_t OpIdx, const Block &B,
                     const MachineDesc &MD) const;

  bool empty() const { return Cycles.empty(); }
  size_t size() const { return Cycles.size(); }

private:
  std::vector<int> Cycles;
  int Length = 0;
};

} // namespace cpr

#endif // SCHED_SCHEDULE_H

//===- sched/PerfModel.cpp - Compiler-estimation performance model --------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "sched/PerfModel.h"

#include "analysis/CFG.h"
#include "sched/ListScheduler.h"
#include "support/Error.h"

#include <algorithm>
#include <memory>

using namespace cpr;

PerfEstimate cpr::estimatePerformance(const Function &F,
                                      const MachineDesc &MD,
                                      const ProfileData &Profile,
                                      const PerfModelOptions &Opts,
                                      const Liveness *SharedLV) {
  PerfEstimate Est;
  std::unique_ptr<Liveness> Owned;
  if (!SharedLV) {
    Owned = std::make_unique<Liveness>(F);
    SharedLV = Owned.get();
  }
  const Liveness &LV = *SharedLV;

  for (size_t BI = 0, BE = F.numBlocks(); BI != BE; ++BI) {
    const Block &B = F.block(BI);
    BlockEstimate BEst;
    BEst.Id = B.getId();
    BEst.Name = B.getName();
    BEst.Entries = Profile.blockEntries(B.getId());
    if (B.empty()) {
      Est.Blocks.push_back(BEst);
      continue;
    }

    RegionPQS PQS(F, B);
    DepGraphOptions DOpts;
    DOpts.AllowSpeculation = Opts.AllowSpeculation;
    DepGraph DG(F, B, MD, PQS, LV, DOpts);
    Schedule S = scheduleBlock(B, DG, MD);
    BEst.ScheduleLength = S.length();
    BEst.CriticalPath = DG.criticalPathLength();

    if (BEst.Entries == 0) {
      Est.Blocks.push_back(BEst);
      continue;
    }

    if (Opts.WeightMode == PerfModelOptions::Mode::BlockLength) {
      BEst.Cycles = static_cast<double>(BEst.Entries) *
                    static_cast<double>(S.length());
    } else {
      // Exit-aware: entries that depart through a taken interior branch are
      // charged up to its departure cycle; the rest pay the full length.
      uint64_t Departed = 0;
      double Cycles = 0.0;
      for (const BlockExit &E : blockExits(F, BI)) {
        if (E.isFallThrough())
          continue;
        const Operation &Op = B.ops()[static_cast<size_t>(E.OpIdx)];
        if (!Op.isBranch())
          continue; // halt/trap handled as block end below
        uint64_t Taken = Profile.branchTaken(Op.getId());
        if (Taken == 0)
          continue;
        Cycles += static_cast<double>(Taken) *
                  static_cast<double>(
                      S.departureCycle(static_cast<size_t>(E.OpIdx), B, MD));
        Departed += Taken;
      }
      uint64_t FallThrough =
          BEst.Entries > Departed ? BEst.Entries - Departed : 0;
      Cycles += static_cast<double>(FallThrough) *
                static_cast<double>(S.length());
      BEst.Cycles = Cycles;
    }
    Est.TotalCycles += BEst.Cycles;
    Est.Blocks.push_back(BEst);
  }
  return Est;
}

//===- support/TableFormat.cpp - Plain-text table rendering ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TableFormat.h"

#include <cassert>
#include <cstdio>

using namespace cpr;

void TextTable::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TextTable::addRow(std::vector<std::string> Cells) {
  assert(Header.empty() || Cells.size() == Header.size());
  Rows.push_back(Row{std::move(Cells), /*Separator=*/false});
}

void TextTable::addSeparator() {
  Rows.push_back(Row{{}, /*Separator=*/true});
}

std::string TextTable::fmt(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string TextTable::render() const {
  size_t NumCols = Header.size();
  for (const Row &R : Rows)
    if (R.Cells.size() > NumCols)
      NumCols = R.Cells.size();

  std::vector<size_t> Widths(NumCols, 0);
  auto Measure = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < Cells.size(); ++I)
      if (Cells[I].size() > Widths[I])
        Widths[I] = Cells[I].size();
  };
  Measure(Header);
  for (const Row &R : Rows)
    Measure(R.Cells);

  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W + 2;

  std::string Out;
  auto Emit = [&](const std::vector<std::string> &Cells) {
    for (size_t I = 0; I < NumCols; ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : "";
      size_t Pad = Widths[I] >= Cell.size() ? Widths[I] - Cell.size() : 0;
      if (I == 0) {
        Out += Cell;
        Out.append(Pad, ' ');
      } else {
        Out.append(Pad, ' ');
        Out += Cell;
      }
      if (I + 1 != NumCols)
        Out += "  ";
    }
    // Trim trailing spaces.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  if (!Header.empty()) {
    Emit(Header);
    Out.append(TotalWidth, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.Separator) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    Emit(R.Cells);
  }
  return Out;
}

//===- support/OptionParser.cpp - Declarative CLI option table -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/OptionParser.h"

#include <algorithm>
#include <cstdlib>

using namespace cpr;

void OptionTable::add(OptionSpec Spec) { Specs.push_back(std::move(Spec)); }

void OptionTable::addFlag(const std::string &Name, const std::string &Help,
                          bool &Target, bool Value) {
  add({Name, OptArg::None, "", Help, [&Target, Value](const std::string &) {
         Target = Value;
         return true;
       }});
}

void OptionTable::addString(const std::string &Name, const std::string &Meta,
                            const std::string &Help, std::string &Target) {
  add({Name, OptArg::Joined, Meta, Help, [&Target](const std::string &V) {
         Target = V;
         return true;
       }});
}

void OptionTable::addUnsigned(const std::string &Name,
                              const std::string &Meta,
                              const std::string &Help, unsigned &Target) {
  add({Name, OptArg::Joined, Meta, Help, [&Target](const std::string &V) {
         char *End = nullptr;
         unsigned long N = std::strtoul(V.c_str(), &End, 10);
         if (V.empty() || *End != '\0')
           return false;
         Target = static_cast<unsigned>(N);
         return true;
       }});
}

void OptionTable::addDouble(const std::string &Name, const std::string &Meta,
                            const std::string &Help, double &Target) {
  add({Name, OptArg::Joined, Meta, Help, [&Target](const std::string &V) {
         char *End = nullptr;
         double D = std::strtod(V.c_str(), &End);
         if (V.empty() || *End != '\0')
           return false;
         Target = D;
         return true;
       }});
}

bool OptionTable::parse(int argc, char **argv, std::string &Error,
                        std::vector<std::string> *Positional,
                        std::vector<std::string> *Unknown) const {
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.empty() || Arg[0] != '-') {
      if (Positional)
        Positional->push_back(Arg);
      continue;
    }
    const OptionSpec *Match = nullptr;
    std::string Value;
    bool HaveValue = false;
    for (const OptionSpec &S : Specs) {
      if (S.Kind == OptArg::Joined &&
          Arg.compare(0, S.Name.size() + 1, S.Name + "=") == 0) {
        Match = &S;
        Value = Arg.substr(S.Name.size() + 1);
        HaveValue = true;
        break;
      }
      if (Arg == S.Name) {
        Match = &S;
        break;
      }
    }
    if (!Match) {
      if (Unknown) {
        Unknown->push_back(Arg);
        continue;
      }
      Error = "unknown option '" + Arg + "'";
      return false;
    }
    switch (Match->Kind) {
    case OptArg::None:
      break;
    case OptArg::Joined:
      if (!HaveValue) {
        Error = "option '" + Match->Name + "' requires " + Match->Name +
                "=" + (Match->Meta.empty() ? "<value>" : Match->Meta);
        return false;
      }
      break;
    case OptArg::Separate:
      if (I + 1 >= argc) {
        Error = "option '" + Match->Name + "' requires an argument";
        return false;
      }
      Value = argv[++I];
      break;
    }
    if (!Match->Set(Value)) {
      Error = "bad value '" + Value + "' for option '" + Match->Name + "'";
      return false;
    }
  }
  return true;
}

std::string OptionTable::help(const std::string &UsageLine) const {
  std::string Out = UsageLine;
  if (!Out.empty() && Out.back() != '\n')
    Out += '\n';
  size_t Width = 0;
  auto Lhs = [](const OptionSpec &S) {
    switch (S.Kind) {
    case OptArg::None:
      return S.Name;
    case OptArg::Joined:
      return S.Name + "=" + (S.Meta.empty() ? "<value>" : S.Meta);
    case OptArg::Separate:
      return S.Name + " " + (S.Meta.empty() ? "<value>" : S.Meta);
    }
    return S.Name;
  };
  for (const OptionSpec &S : Specs)
    Width = std::max(Width, Lhs(S).size());
  for (const OptionSpec &S : Specs) {
    std::string L = Lhs(S);
    Out += "  " + L + std::string(Width - L.size() + 2, ' ') + S.Help + "\n";
  }
  return Out;
}

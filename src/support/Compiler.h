//===- support/Compiler.h - Compiler abstraction macros ---------*- C++ -*-===//
//
// Part of the control-cpr project, a reproduction of "Control CPR: A Branch
// Height Reduction Optimization for EPIC Architectures" (Schlansker, Mahlke,
// Johnson; PLDI 1999).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small compiler abstraction macros shared by every library in the project.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_COMPILER_H
#define SUPPORT_COMPILER_H

#if defined(__GNUC__) || defined(__clang__)
#define CPR_LIKELY(x) __builtin_expect(!!(x), 1)
#define CPR_UNLIKELY(x) __builtin_expect(!!(x), 0)
#else
#define CPR_LIKELY(x) (x)
#define CPR_UNLIKELY(x) (x)
#endif

#endif // SUPPORT_COMPILER_H

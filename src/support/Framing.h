//===- support/Framing.h - Newline-delimited frame I/O ----------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Byte-level framing for the `cprd-v1` protocol (docs/SERVICE.md): one
/// frame is one newline-terminated line, read from and written to POSIX
/// file descriptors, so the same code serves Unix-domain sockets and the
/// daemon's stdin/stdout pipe mode.
///
/// The reader is defensive by design -- frames come from untrusted
/// clients: a line longer than the configured cap is an error *detected
/// while reading* (the reader holds at most O(cap) bytes no matter how
/// much the peer sends), EINTR is retried, and a final unterminated line
/// is delivered as a frame so `printf '...' | cprd --stdio` works without
/// a trailing newline.
///
/// Two read APIs share one buffer:
///
///  - next(Out) is incremental: it performs at most one read() and
///    reports Frame / NeedMore / Eof / Error. NeedMore covers both
///    would-block (EAGAIN under a SO_RCVTIMEO read timeout) and
///    "read some bytes, no newline yet", which is what the server's
///    idle/read-deadline loop needs.
///  - readLine(Out) is the blocking convenience wrapper used by clients
///    and tools: it loops next() until a frame or end of input.
///
/// Thread-safety: a LineReader is single-owner (one reader thread per
/// connection). writeAll() performs one complete write but callers that
/// share a descriptor must serialize calls themselves (the server holds a
/// per-connection write mutex).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_FRAMING_H
#define SUPPORT_FRAMING_H

#include <cstddef>
#include <string>

namespace cpr {

/// Buffered line reader over a POSIX file descriptor (not owned).
class LineReader {
public:
  /// Default cap on one line, including the newline (16 MiB -- generous
  /// for any realistic request IR, small enough to bound a hostile peer).
  static constexpr size_t DefaultMaxLineBytes = 16u << 20;

  explicit LineReader(int FD, size_t MaxLineBytes = DefaultMaxLineBytes)
      : FD(FD), MaxLineBytes(MaxLineBytes) {}

  /// Outcome of one next() step.
  enum class Result {
    Frame,    ///< Out holds a complete line (newline stripped)
    NeedMore, ///< no complete line buffered; read() would block or
              ///< returned partial data -- call next() again
    Eof,      ///< clean end of input, every frame delivered
    Error,    ///< read failure or over-long line; see error()
  };

  /// Incremental step: delivers a buffered frame if one is complete,
  /// otherwise performs at most one read(). A non-empty final line
  /// without a terminating newline is delivered as a frame before Eof.
  /// Once the buffered tail exceeds the cap the reader stops consuming
  /// input and reports Error -- the peer's remaining bytes are never
  /// buffered.
  Result next(std::string &Out);

  /// Blocking wrapper: loops next() until Frame (returns true) or
  /// Eof/Error (returns false; clean EOF leaves error() empty). Treats
  /// NeedMore-without-progress under a descriptor read timeout as an
  /// error ("read timed out").
  bool readLine(std::string &Out);

  /// Empty unless a read failed or a line exceeded the cap.
  const std::string &error() const { return Err; }

  /// True when unconsumed bytes are buffered -- next()/readLine() may
  /// complete without touching the descriptor, so callers that poll()
  /// before reading must drain buffered data first.
  bool hasBuffered() const { return Pos < Buf.size(); }

private:
  int FD;
  size_t MaxLineBytes;
  std::string Buf;   ///< bytes read but not yet returned
  size_t Pos = 0;    ///< consumed prefix of Buf
  bool Eof = false;
  std::string Err;
};

/// Writes all of \p Data to \p FD, retrying short writes and EINTR.
/// Returns false on a write error (e.g. the peer hung up, or a
/// SO_SNDTIMEO write timeout expired against a slow reader).
bool writeAll(int FD, const std::string &Data);

} // namespace cpr

#endif // SUPPORT_FRAMING_H

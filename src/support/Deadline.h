//===- support/Deadline.h - Monotonic request deadlines ---------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A monotonic deadline for request-scoped work (docs/SERVICE.md
/// "Resilience"). A Deadline is either inactive (the default: never
/// expires) or a point on the steady clock; holders poll expired() at
/// stage boundaries and inside budgeted loops, and an expiring request
/// degrades exactly like budget exhaustion -- DiagCode::DeadlineExceeded,
/// fail-safe fallback -- instead of running past its caller's patience.
///
/// The steady clock is deliberate: a deadline must not jump when the wall
/// clock is adjusted. Deadlines therefore never cross the wire as
/// absolute times; the cprd-v1 protocol carries a relative "deadline_ms"
/// and each side anchors it to its own monotonic clock on receipt.
///
/// Thread-safety: a Deadline is an immutable value after construction;
/// sharing a copy across threads is safe.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_DEADLINE_H
#define SUPPORT_DEADLINE_H

#include <chrono>
#include <string>

namespace cpr {

/// A point on the steady clock that request-scoped work must not run
/// past. Default-constructed deadlines are inactive and never expire.
class Deadline {
public:
  using Clock = std::chrono::steady_clock;

  /// Inactive: never expires.
  Deadline() = default;

  /// A deadline that never expires (same as default construction,
  /// spelled out for call sites).
  static Deadline never() { return Deadline(); }

  /// Expires \p Ms milliseconds from now. Ms <= 0 is already expired
  /// (but still active -- callers use it to force the expiry path).
  static Deadline afterMs(double Ms) {
    Deadline D;
    D.Active = true;
    D.BudgetMs = Ms;
    D.At = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                              std::chrono::duration<double, std::milli>(Ms));
    return D;
  }

  /// True when this deadline can expire at all.
  bool active() const { return Active; }

  /// True when the deadline has passed. Inactive deadlines never expire.
  bool expired() const { return Active && Clock::now() >= At; }

  /// Milliseconds until expiry (negative once past). Meaningless for
  /// inactive deadlines; callers check active() first.
  double remainingMs() const {
    return std::chrono::duration<double, std::milli>(At - Clock::now())
        .count();
  }

  /// The relative budget this deadline was created with, for messages
  /// ("request deadline (250 ms) exceeded").
  double budgetMs() const { return BudgetMs; }

  /// "request deadline (N ms) exceeded", for DeadlineExceeded
  /// diagnostics.
  std::string describeExpiry() const {
    return "request deadline (" + std::to_string(BudgetMs) +
           " ms) exceeded";
  }

private:
  bool Active = false;
  double BudgetMs = 0.0;
  Clock::time_point At{};
};

} // namespace cpr

#endif // SUPPORT_DEADLINE_H

//===- support/TestHooks.h - Fault injection for self-tests -----*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hidden fault-injection hooks used to validate the correctness tooling
/// itself: the differential fuzzer (src/fuzz/) must demonstrably *catch* a
/// miscompile, so its self-tests plant one here and check that the oracle
/// flags it and the reducer shrinks it. Production code paths never set
/// these; they are not exposed through cprc.
///
/// This bool is the legacy form of the generalized fault-site registry in
/// support/FaultInjector.h (site "cpr.restructure.compensation" plants
/// the same defect with deterministic nth-hit selection). It is kept
/// because the fuzzer's self-test wants the defect in *every* CPR block
/// of a campaign, not at one armed hit.
///
/// Thread-safety: plain globals read on hot paths without locking. Set a
/// hook only while no worker threads are running (before a ThreadPool is
/// constructed); creation of the pool's threads publishes the value.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TESTHOOKS_H
#define SUPPORT_TESTHOOKS_H

namespace cpr {
namespace test_hooks {

/// When true, ICBM off-trace motion "forgets" to insert the moved
/// operations into the compensation block of a fall-through CPR block --
/// a deliberate miscompile: off-trace exits lose the compare/branch
/// closure that was moved on their behalf. The differential oracle must
/// report a mismatch whenever such an exit is actually taken.
extern bool SkipCompensationInsertion;

/// RAII setter used by tests; restores the previous value.
class ScopedSkipCompensation {
public:
  explicit ScopedSkipCompensation(bool Value)
      : Saved(SkipCompensationInsertion) {
    SkipCompensationInsertion = Value;
  }
  ~ScopedSkipCompensation() { SkipCompensationInsertion = Saved; }
  ScopedSkipCompensation(const ScopedSkipCompensation &) = delete;
  ScopedSkipCompensation &operator=(const ScopedSkipCompensation &) = delete;

private:
  bool Saved;
};

} // namespace test_hooks
} // namespace cpr

#endif // SUPPORT_TESTHOOKS_H

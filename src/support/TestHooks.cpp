//===- support/TestHooks.cpp - Fault injection for self-tests -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/TestHooks.h"

namespace cpr {
namespace test_hooks {

bool SkipCompensationInsertion = false;

} // namespace test_hooks
} // namespace cpr

//===- support/ThreadPool.h - Work-queue thread pool ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small fixed-size work-queue thread pool used to execute the
/// embarrassingly parallel parts of the experimental methodology: the
/// per-benchmark pipeline sessions of a suite run and the per-machine /
/// per-predictor estimation stages within one session.
///
/// Thread-safety contract: submit() and parallelFor() may be called from
/// any thread. Tasks must not submit to the pool they run on (the pool
/// does not grow, so nested waits can deadlock); nest parallelism by
/// running inner stages inline instead. Task results and exceptions are
/// delivered through std::future, so a task that throws surfaces its
/// exception at future::get() rather than killing the worker.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_THREADPOOL_H
#define SUPPORT_THREADPOOL_H

#include <cassert>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace cpr {

/// Fixed-size FIFO work-queue thread pool. Workers are started in the
/// constructor and joined in the destructor; queued tasks all run before
/// destruction completes.
class ThreadPool {
public:
  /// A sensible default worker count: hardware concurrency, at least 1.
  static unsigned defaultThreads();

  /// Creates a pool with \p Threads workers; 0 selects defaultThreads().
  explicit ThreadPool(unsigned Threads = 0);

  /// Drains the queue and joins all workers (equivalent to stop()).
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Graceful, drain-safe shutdown: rejects further submissions, lets the
  /// workers finish every task already queued, then joins them. Blocks
  /// until the drain completes; idempotent, and safe to call from any
  /// thread that is not itself a pool worker (a worker calling stop()
  /// would join itself). This is the daemon's SIGTERM path: in-flight and
  /// queued requests complete, new ones are refused.
  void stop();

  /// True once stop() has begun (or the destructor has). submit() on a
  /// stopping pool is a programming error.
  bool stopping() const;

  unsigned numThreads() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p F and returns a future for its result. Tasks are
  /// dispatched in FIFO order (with one worker this is strict submission
  /// order). An exception thrown by \p F is captured and rethrown from
  /// future::get().
  template <typename Fn>
  auto submit(Fn &&F) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(F));
    std::future<R> Fut = Task->get_future();
    {
      std::lock_guard<std::mutex> Lock(Mu);
      assert(!Stopping && "submit on a stopping pool");
      Queue.push_back([Task] { (*Task)(); });
    }
    CV.notify_one();
    return Fut;
  }

private:
  void workerLoop();

  mutable std::mutex Mu;
  std::condition_variable CV;
  std::deque<std::function<void()>> Queue;
  bool Stopping = false;
  /// Serializes the join phase of concurrent stop() calls.
  std::mutex JoinMu;
  std::vector<std::thread> Workers;
};

/// Runs \p Fn(0), ..., \p Fn(N-1) and blocks until all complete. When
/// \p Pool is null or has a single worker the calls run inline on the
/// caller, in index order; otherwise they are submitted to \p Pool in
/// index order and may run concurrently. If any call throws, the
/// remaining calls still complete and the lowest-index exception is
/// rethrown. \p Fn must be safe to invoke concurrently for distinct
/// indices (write only to per-index state or mutex-guarded sinks).
void parallelFor(ThreadPool *Pool, size_t N,
                 const std::function<void(size_t)> &Fn);

} // namespace cpr

#endif // SUPPORT_THREADPOOL_H

//===- support/Diagnostic.cpp - Recoverable diagnostics --------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostic.h"

#include "support/Statistics.h"

using namespace cpr;

const char *cpr::diagSeverityName(DiagSeverity S) {
  switch (S) {
  case DiagSeverity::Remark:
    return "remark";
  case DiagSeverity::Warning:
    return "warning";
  case DiagSeverity::Error:
    return "error";
  case DiagSeverity::Fatal:
    return "fatal";
  }
  return "unknown";
}

const char *cpr::diagCodeName(DiagCode C) {
  switch (C) {
  case DiagCode::None:
    return "none";
  case DiagCode::ParseError:
    return "parse-error";
  case DiagCode::VerifyFailed:
    return "verify-failed";
  case DiagCode::OracleMismatch:
    return "oracle-mismatch";
  case DiagCode::BudgetExhausted:
    return "budget-exhausted";
  case DiagCode::DeadlineExceeded:
    return "deadline-exceeded";
  case DiagCode::Cancelled:
    return "cancelled";
  case DiagCode::TransformFault:
    return "transform-fault";
  case DiagCode::RegionRolledBack:
    return "region-rolled-back";
  case DiagCode::RunFailed:
    return "run-failed";
  case DiagCode::UsageError:
    return "usage-error";
  case DiagCode::IOError:
    return "io-error";
  case DiagCode::Internal:
    return "internal";
  case DiagCode::LintFRP:
    return "lint-frp";
  case DiagCode::LintUseBeforeDef:
    return "lint-use-before-def";
  case DiagCode::LintSpeculation:
    return "lint-speculation";
  case DiagCode::LintCompensation:
    return "lint-compensation";
  case DiagCode::LintSchedule:
    return "lint-schedule";
  case DiagCode::LintDeadUnderPred:
    return "lint-dead-under-predicate";
  case DiagCode::LintRedundantComp:
    return "lint-redundant-compensation";
  case DiagCode::LintUninitRead:
    return "lint-uninit-read";
  case DiagCode::LintResourceOversub:
    return "lint-resource-oversubscription";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::string Out = diagSeverityName(Severity);
  if (!Site.empty() || Line != 0) {
    Out += " [";
    Out += Site;
    if (Line != 0) {
      if (!Site.empty())
        Out += ":";
      Out += std::to_string(Line);
    }
    Out += "]";
  }
  Out += ": ";
  Out += Message;
  return Out;
}

Status Status::error(DiagCode Code, std::string Message, std::string Site) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = Code;
  D.Message = std::move(Message);
  D.Site = std::move(Site);
  return failure(std::move(D));
}

void DiagnosticEngine::report(Diagnostic D) {
  DiagSeverity Severity = D.Severity;
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Counts[static_cast<unsigned>(Severity)];
    if (Kept.size() == MaxKept)
      Kept.erase(Kept.begin());
    Kept.push_back(std::move(D));
  }
  // StatsRegistry is itself thread-safe; report outside our lock to keep
  // the lock order trivial.
  if (Stats)
    Stats->addCount(Prefix + "diag/" + diagSeverityName(Severity));
}

void DiagnosticEngine::report(DiagSeverity Severity, DiagCode Code,
                              std::string Message, std::string Site) {
  Diagnostic D;
  D.Severity = Severity;
  D.Code = Code;
  D.Message = std::move(Message);
  D.Site = std::move(Site);
  report(std::move(D));
}

bool DiagnosticEngine::report(Status S) {
  if (S.ok())
    return true;
  report(S.takeDiagnostic());
  return false;
}

unsigned DiagnosticEngine::count(DiagSeverity S) const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts[static_cast<unsigned>(S)];
}

unsigned DiagnosticEngine::totalCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Counts[0] + Counts[1] + Counts[2] + Counts[3];
}

std::vector<Diagnostic> DiagnosticEngine::diagnostics() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Kept;
}

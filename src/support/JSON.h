//===- support/JSON.h - Minimal JSON document model -------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON value model with a deterministic writer and a
/// strict parser. Used for the machine-readable statistics documents the
/// pipeline emits (`--stats-json=`) and by the tests that round-trip them.
/// No external dependency; no attempt at full spec coverage beyond what
/// those documents need (UTF-8 passthrough, no \u escapes on output).
///
/// Determinism contract: writeJSON() output is a pure function of the
/// value -- member order is insertion order, numbers print as "%lld" when
/// integral and "%.17g" otherwise -- so two runs producing the same values
/// produce byte-identical documents.
///
/// Thread-safety: JSONValue is a plain value type; distinct values may be
/// used from distinct threads freely, one value needs external locking.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_JSON_H
#define SUPPORT_JSON_H

#include "support/Diagnostic.h"

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace cpr {

/// One JSON value (null / bool / number / string / array / object).
/// Objects preserve insertion order and reject duplicate keys via set().
class JSONValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JSONValue() : K(Kind::Null) {}

  static JSONValue null() { return JSONValue(); }
  static JSONValue boolean(bool B) {
    JSONValue V;
    V.K = Kind::Bool;
    V.BoolV = B;
    return V;
  }
  static JSONValue number(double N) {
    JSONValue V;
    V.K = Kind::Number;
    V.NumV = N;
    return V;
  }
  static JSONValue str(std::string S) {
    JSONValue V;
    V.K = Kind::String;
    V.StrV = std::move(S);
    return V;
  }
  static JSONValue array() {
    JSONValue V;
    V.K = Kind::Array;
    return V;
  }
  static JSONValue object() {
    JSONValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }

  bool getBool() const { return BoolV; }
  double getNumber() const { return NumV; }
  const std::string &getString() const { return StrV; }

  /// Array elements / element append.
  const std::vector<JSONValue> &items() const { return Items; }
  void append(JSONValue V) { Items.push_back(std::move(V)); }

  /// Object members, in insertion order.
  const std::vector<std::pair<std::string, JSONValue>> &members() const {
    return Members;
  }
  /// Sets member \p Key (replacing an existing binding in place).
  void set(const std::string &Key, JSONValue V);
  /// Returns the member named \p Key, or null when absent.
  const JSONValue *find(const std::string &Key) const;

private:
  Kind K;
  bool BoolV = false;
  double NumV = 0.0;
  std::string StrV;
  std::vector<JSONValue> Items;
  std::vector<std::pair<std::string, JSONValue>> Members;
};

/// Serializes \p V. With \p Pretty, objects and arrays break across
/// indented lines (2 spaces per level); otherwise the output is compact.
std::string writeJSON(const JSONValue &V, bool Pretty = true);

/// Result of parseJSON. Failures are recoverable data, not fatal errors:
/// protocol frames (`cprd-v1`, docs/SERVICE.md) come from untrusted
/// clients, so a malformed document must flow back as a diagnostic the
/// caller can report, never abort the process.
struct JSONParseResult {
  JSONValue Value;
  std::string Error;                ///< empty on success
  size_t Offset = 0;                ///< byte offset of the error
  DiagCode Code = DiagCode::None;   ///< ParseError on any failure
  explicit operator bool() const { return Error.empty(); }

  /// The failure as a Diagnostic (only meaningful when parsing failed):
  /// error severity, the parse DiagCode, and the offset folded into the
  /// message. \p Site names the input for the report ("cprd.frame", a
  /// file path, ...).
  Diagnostic diagnostic(std::string Site = "") const;
  /// The failure as a Status (success Status when parsing succeeded).
  Status status(std::string Site = "") const;
};

/// Parses \p Text as one JSON document (trailing whitespace allowed,
/// trailing garbage rejected). Strict by design: duplicate object keys
/// and unterminated strings are rejected -- for documents crossing a
/// trust boundary, last-key-wins silently discards data an attacker
/// controls.
JSONParseResult parseJSON(const std::string &Text);

} // namespace cpr

#endif // SUPPORT_JSON_H

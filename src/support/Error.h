//===- support/Error.h - Fatal error reporting ------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and an unreachable marker, in the spirit of LLVM's
/// report_fatal_error / llvm_unreachable. By default unrecoverable
/// conditions abort the process with a message.
///
/// The differential fuzzer (src/fuzz/) needs to survive a crashing
/// transformation and classify it instead of dying with it, so a thread
/// may install a ScopedFatalErrorTrap: while one is active on the calling
/// thread, reportFatalError and CPR_UNREACHABLE throw a FatalError
/// exception instead of aborting. Untrapped threads are unaffected; the
/// trap is strictly thread-local, so concurrent fuzz workers contain their
/// own crashes without perturbing each other.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_ERROR_H
#define SUPPORT_ERROR_H

#include <exception>
#include <string>

namespace cpr {

/// Prints \p Msg to stderr and aborts -- unless a ScopedFatalErrorTrap is
/// active on the calling thread, in which case a FatalError carrying
/// \p Msg is thrown. Used for conditions that can be triggered by
/// malformed user input (e.g. IR parse errors in tools).
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Internal implementation of CPR_UNREACHABLE.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

/// The exception thrown in place of abort() while a ScopedFatalErrorTrap
/// is installed on the current thread.
class FatalError : public std::exception {
public:
  explicit FatalError(std::string Msg) : Msg(std::move(Msg)) {}
  const char *what() const noexcept override { return Msg.c_str(); }
  const std::string &message() const { return Msg; }

private:
  std::string Msg;
};

/// RAII guard converting fatal errors on the current thread into
/// FatalError exceptions. Nests; the conversion stays active until the
/// outermost trap is destroyed. Exception propagation follows the normal
/// C++ rules, so a trap installed inside a worker task contains the
/// failure to that task (the ThreadPool delivers task exceptions through
/// std::future when they escape -- the fuzzer catches them before that).
class ScopedFatalErrorTrap {
public:
  ScopedFatalErrorTrap();
  ~ScopedFatalErrorTrap();
  ScopedFatalErrorTrap(const ScopedFatalErrorTrap &) = delete;
  ScopedFatalErrorTrap &operator=(const ScopedFatalErrorTrap &) = delete;

  /// True when a trap is active on the calling thread.
  static bool active();
};

} // namespace cpr

/// Marks a point in code that must never be reached. Always checks, even in
/// release builds: this project is a research artifact and prefers loud
/// failures over silent miscompiles.
#define CPR_UNREACHABLE(msg)                                                   \
  ::cpr::unreachableInternal(msg, __FILE__, __LINE__)

#endif // SUPPORT_ERROR_H

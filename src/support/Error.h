//===- support/Error.h - Fatal error reporting ------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fatal-error reporting and an unreachable marker, in the spirit of LLVM's
/// report_fatal_error / llvm_unreachable. The project does not use C++
/// exceptions; unrecoverable conditions abort with a message.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_ERROR_H
#define SUPPORT_ERROR_H

#include <string>

namespace cpr {

/// Prints \p Msg to stderr and aborts. Used for conditions that can be
/// triggered by malformed user input (e.g. IR parse errors in tools).
[[noreturn]] void reportFatalError(const std::string &Msg);

/// Internal implementation of CPR_UNREACHABLE.
[[noreturn]] void unreachableInternal(const char *Msg, const char *File,
                                      unsigned Line);

} // namespace cpr

/// Marks a point in code that must never be reached. Always checks, even in
/// release builds: this project is a research artifact and prefers loud
/// failures over silent miscompiles.
#define CPR_UNREACHABLE(msg)                                                   \
  ::cpr::unreachableInternal(msg, __FILE__, __LINE__)

#endif // SUPPORT_ERROR_H

//===- support/FaultInjector.cpp - Named fault-site injection --------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <algorithm>
#include <atomic>
#include <mutex>

using namespace cpr;

namespace {

/// Built-in catalog; campaigns iterate this even for sites the current
/// workload never executes. Keep sorted and in sync with the header
/// comment and docs/ROBUSTNESS.md.
const char *const BuiltinSites[] = {
    "alloc",
    "cpr.offtrace.move",
    "cpr.restructure.compensation",
    "cpr.restructure.plan",
    "interp.oracle",
    "ir.verify",
    "pipeline.transform",
    "serve.cache.insert",
    "serve.dispatch.enqueue",
    "serve.frame.decode",
    "serve.socket.write",
};

struct Registry {
  std::mutex Mu;
  std::vector<std::string> Sites{std::begin(BuiltinSites),
                                 std::end(BuiltinSites)};
  std::string Armed;
  uint64_t Nth = 0;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Fast-path gate: shouldFail() is on hot transform paths, so the
/// disarmed case must not take a lock.
std::atomic<bool> AnyArmed{false};
std::atomic<uint64_t> Hits{0};
std::atomic<bool> Fired{false};

} // namespace

std::vector<std::string> fault::sites() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  std::vector<std::string> Out = R.Sites;
  std::sort(Out.begin(), Out.end());
  return Out;
}

bool fault::isKnownSite(const std::string &Site) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return std::find(R.Sites.begin(), R.Sites.end(), Site) != R.Sites.end();
}

bool fault::arm(const std::string &Site, uint64_t NthHit) {
  if (NthHit == 0)
    return false;
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  if (std::find(R.Sites.begin(), R.Sites.end(), Site) == R.Sites.end())
    R.Sites.push_back(Site);
  R.Armed = Site;
  R.Nth = NthHit;
  Hits.store(0, std::memory_order_relaxed);
  Fired.store(false, std::memory_order_relaxed);
  AnyArmed.store(true, std::memory_order_release);
  return true;
}

void fault::disarm() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  R.Armed.clear();
  R.Nth = 0;
  Hits.store(0, std::memory_order_relaxed);
  Fired.store(false, std::memory_order_relaxed);
  AnyArmed.store(false, std::memory_order_release);
}

std::string fault::armedSite() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.Mu);
  return R.Armed;
}

uint64_t fault::armedHits() { return Hits.load(std::memory_order_relaxed); }

bool fault::fired() { return Fired.load(std::memory_order_relaxed); }

bool fault::shouldFail(const char *Site) {
  if (!AnyArmed.load(std::memory_order_acquire))
    return false;
  uint64_t Nth;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Lock(R.Mu);
    if (R.Armed != Site)
      return false;
    Nth = R.Nth;
  }
  uint64_t Hit = Hits.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Hit != Nth)
    return false;
  Fired.store(true, std::memory_order_relaxed);
  return true;
}

//===- support/OptionParser.h - Declarative CLI option table ----*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small declarative command-line option table shared by `cprc` and the
/// benchmark drivers: each option is one row (name, argument kind, help
/// text, setter), `--help` output is generated from the table, and
/// parsing handles `--name`, `--name=value`, and `--name value` forms
/// uniformly. Unknown options can either be errors (tools) or collected
/// for a downstream parser (the bench drivers forward `--benchmark_*`
/// flags to google-benchmark).
///
/// Thread-safety: an OptionTable is built and used on one thread during
/// startup; it has no global state.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_OPTIONPARSER_H
#define SUPPORT_OPTIONPARSER_H

#include <functional>
#include <string>
#include <vector>

namespace cpr {

/// How an option takes its argument.
enum class OptArg {
  None,     ///< --flag
  Joined,   ///< --name=<value>
  Separate, ///< --name <value>
};

/// One declarative option row.
struct OptionSpec {
  std::string Name; ///< including leading dashes, e.g. "--threads"
  OptArg Kind = OptArg::None;
  std::string Meta; ///< metavariable for help, e.g. "<n>"
  std::string Help;
  /// Receives the argument ("" for OptArg::None); returns false to
  /// report a malformed value.
  std::function<bool(const std::string &)> Set;
};

/// A table of options plus the parse/help drivers over it.
class OptionTable {
public:
  /// Adds a fully specified option row.
  void add(OptionSpec Spec);

  /// Convenience rows for the common shapes.
  void addFlag(const std::string &Name, const std::string &Help,
               bool &Target, bool Value = true);
  void addString(const std::string &Name, const std::string &Meta,
                 const std::string &Help, std::string &Target);
  void addUnsigned(const std::string &Name, const std::string &Meta,
                   const std::string &Help, unsigned &Target);
  void addDouble(const std::string &Name, const std::string &Meta,
                 const std::string &Help, double &Target);

  /// Parses argv[1..argc-1]. Plain arguments append to \p Positional.
  /// Unknown `--options` append to \p Unknown when it is non-null and are
  /// errors otherwise. Returns false with a message in \p Error on any
  /// malformed input. `--help`/`-h` are handled by the caller (add a
  /// flag row for them).
  bool parse(int argc, char **argv, std::string &Error,
             std::vector<std::string> *Positional,
             std::vector<std::string> *Unknown = nullptr) const;

  /// Renders the generated help text: \p UsageLine, then one aligned row
  /// per option in registration order.
  std::string help(const std::string &UsageLine) const;

private:
  std::vector<OptionSpec> Specs;
};

} // namespace cpr

#endif // SUPPORT_OPTIONPARSER_H

//===- support/BitVector.h - Dense dynamic bitset ---------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A dense dynamically-sized bitset for dataflow sets (ROADMAP O3): one
/// bit per universe element packed into 64-bit words, with the word-wise
/// bulk operations iterative dataflow spends its time in (|=, &=, andNot,
/// equality). All set-algebra operations require operands of the same
/// size(); the analysis that owns the universe numbering sizes every
/// vector once up front.
///
/// Thread-safety: const operations are safe concurrently; mutation
/// requires external synchronization (same contract as std::vector).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_BITVECTOR_H
#define SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace cpr {

class BitVector {
public:
  BitVector() = default;
  /// A vector of \p N bits, all clear.
  explicit BitVector(size_t N)
      : NumBits(N), Words((N + WordBits - 1) / WordBits, 0) {}

  /// Number of bits in the universe (not the number set).
  size_t size() const { return NumBits; }

  /// Grows (or shrinks) to \p N bits; new bits are clear.
  void resize(size_t N) {
    Words.resize((N + WordBits - 1) / WordBits, 0);
    NumBits = N;
    clearTail();
  }

  bool test(size_t I) const {
    assert(I < NumBits && "bit index out of range");
    return (Words[I / WordBits] >> (I % WordBits)) & 1;
  }

  void set(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / WordBits] |= uint64_t(1) << (I % WordBits);
  }

  void reset(size_t I) {
    assert(I < NumBits && "bit index out of range");
    Words[I / WordBits] &= ~(uint64_t(1) << (I % WordBits));
  }

  /// Clears every bit.
  void reset() {
    for (uint64_t &W : Words)
      W = 0;
  }

  /// Number of set bits.
  size_t count() const {
    size_t N = 0;
    for (uint64_t W : Words)
      N += static_cast<size_t>(__builtin_popcountll(W));
    return N;
  }

  bool none() const {
    for (uint64_t W : Words)
      if (W)
        return false;
    return true;
  }
  bool any() const { return !none(); }

  /// Index of the first set bit at or after \p From, or npos.
  static constexpr size_t npos = ~size_t(0);
  size_t findNext(size_t From) const {
    if (From >= NumBits)
      return npos;
    size_t WI = From / WordBits;
    uint64_t W = Words[WI] & (~uint64_t(0) << (From % WordBits));
    while (true) {
      if (W)
        return WI * WordBits + static_cast<size_t>(__builtin_ctzll(W));
      if (++WI >= Words.size())
        return npos;
      W = Words[WI];
    }
  }
  size_t findFirst() const { return findNext(0); }

  /// Set union; returns true if this vector changed.
  bool orWith(const BitVector &O) {
    assert(NumBits == O.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t New = Words[I] | O.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// Set intersection; returns true if this vector changed.
  bool andWith(const BitVector &O) {
    assert(NumBits == O.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t New = Words[I] & O.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// Set difference (this &= ~O); returns true if this vector changed.
  bool andNot(const BitVector &O) {
    assert(NumBits == O.NumBits && "universe size mismatch");
    bool Changed = false;
    for (size_t I = 0, E = Words.size(); I != E; ++I) {
      uint64_t New = Words[I] & ~O.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  bool operator==(const BitVector &O) const {
    return NumBits == O.NumBits && Words == O.Words;
  }
  bool operator!=(const BitVector &O) const { return !(*this == O); }

private:
  static constexpr size_t WordBits = 64;

  /// Bits past NumBits in the last word must stay clear so that count()
  /// and operator== see a canonical representation.
  void clearTail() {
    size_t Tail = NumBits % WordBits;
    if (Tail && !Words.empty())
      Words.back() &= (uint64_t(1) << Tail) - 1;
  }

  size_t NumBits = 0;
  std::vector<uint64_t> Words;
};

} // namespace cpr

#endif // SUPPORT_BITVECTOR_H

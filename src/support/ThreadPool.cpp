//===- support/ThreadPool.cpp - Work-queue thread pool ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace cpr;

unsigned ThreadPool::defaultThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultThreads();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { stop(); }

void ThreadPool::stop() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  CV.notify_all();
  // Workers only exit once the queue is empty, so joining here *is* the
  // drain: every task submitted before stop() runs to completion. JoinMu
  // makes concurrent stop() calls safe: the second caller blocks until
  // the first finishes joining, then sees non-joinable workers.
  std::lock_guard<std::mutex> JoinLock(JoinMu);
  for (std::thread &W : Workers)
    if (W.joinable())
      W.join();
}

bool ThreadPool::stopping() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Stopping;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      CV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // packaged_task captures any exception for the future
  }
}

void cpr::parallelFor(ThreadPool *Pool, size_t N,
                      const std::function<void(size_t)> &Fn) {
  if (!Pool || Pool->numThreads() <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::vector<std::future<void>> Futures;
  Futures.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Futures.push_back(Pool->submit([&Fn, I] { Fn(I); }));
  // Wait for everything first so that a throwing task cannot leave
  // siblings running against destroyed caller state, then surface the
  // lowest-index exception.
  for (std::future<void> &F : Futures)
    F.wait();
  for (std::future<void> &F : Futures)
    F.get();
}

//===- support/ThreadPool.cpp - Work-queue thread pool ---------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

using namespace cpr;

unsigned ThreadPool::defaultThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(unsigned Threads) {
  if (Threads == 0)
    Threads = defaultThreads();
  Workers.reserve(Threads);
  for (unsigned I = 0; I < Threads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopping = true;
  }
  CV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Lock(Mu);
      CV.wait(Lock, [this] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      Task = std::move(Queue.front());
      Queue.pop_front();
    }
    Task(); // packaged_task captures any exception for the future
  }
}

void cpr::parallelFor(ThreadPool *Pool, size_t N,
                      const std::function<void(size_t)> &Fn) {
  if (!Pool || Pool->numThreads() <= 1) {
    for (size_t I = 0; I < N; ++I)
      Fn(I);
    return;
  }
  std::vector<std::future<void>> Futures;
  Futures.reserve(N);
  for (size_t I = 0; I < N; ++I)
    Futures.push_back(Pool->submit([&Fn, I] { Fn(I); }));
  // Wait for everything first so that a throwing task cannot leave
  // siblings running against destroyed caller state, then surface the
  // lowest-index exception.
  for (std::future<void> &F : Futures)
    F.wait();
  for (std::future<void> &F : Futures)
    F.get();
}

//===- support/Diagnostic.h - Recoverable diagnostics -----------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable-diagnostic layer of the fail-safe compilation model
/// (docs/ROBUSTNESS.md). Historically every internal failure went through
/// reportFatalError and killed the process; production callers instead
/// want *degradation*: leave the failing region or stage untreated, emit a
/// diagnostic, and keep going. This header provides the vocabulary:
///
///  - Diagnostic      one emitted message (severity, code, site, text);
///  - Status          success-or-Diagnostic, for stage entry points;
///  - Expected<T>     value-or-Diagnostic, for producing stages;
///  - DiagnosticEngine thread-safe sink with severity counters that can
///                    mirror into a StatsRegistry (keys "diag/<severity>",
///                    part of the cpr-stats-v1.3 schema) and echo remarks
///                    to a stream;
///  - exit codes      the tools' distinct nonzero exit codes.
///
/// reportFatalError (support/Error.h) remains as the thin shim for
/// genuinely-unreachable states; anything reachable from user input or a
/// failing transformation should flow through these types instead.
///
/// Thread-safety: Diagnostic/Status/Expected are plain values.
/// DiagnosticEngine is internally mutex-guarded; concurrent stages may
/// report into one shared engine.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_DIAGNOSTIC_H
#define SUPPORT_DIAGNOSTIC_H

#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace cpr {

class StatsRegistry;

/// Severity of one diagnostic. Remarks narrate recovery (e.g. a region
/// rollback); errors mean a stage failed but the session degraded
/// gracefully; Fatal is reserved for the reportFatalError shim's records.
enum class DiagSeverity { Remark, Warning, Error, Fatal };

/// Name of \p S for messages and counter keys ("remark", "error", ...).
const char *diagSeverityName(DiagSeverity S);

/// Machine-checkable classification of what went wrong.
enum class DiagCode {
  None,            ///< unset (success Status)
  ParseError,      ///< textual IR / profile / corpus input rejected
  VerifyFailed,    ///< IR verifier violations
  OracleMismatch,  ///< equivalence oracle found diverging behavior
  BudgetExhausted, ///< a stage ran out of its step/time budget
  DeadlineExceeded,///< the request's deadline passed mid-stage
  Cancelled,       ///< the requester went away; work abandoned
  TransformFault,  ///< a transformation phase failed internally
  RegionRolledBack,///< a region transaction was rolled back (remark)
  RunFailed,       ///< an interpreter run did not halt cleanly
  UsageError,      ///< bad tool invocation / options
  IOError,         ///< file could not be read or written
  Internal,        ///< invariant violation caught on a recoverable path
  // Static-semantic lint findings (src/lint/, docs/LINT.md). One stable
  // code per check so tools and tests can match findings exactly.
  LintFRP,          ///< bypass FRP not equal to the ORed branch conditions
  LintUseBeforeDef, ///< read under a predicate with no dominating def
  LintSpeculation,  ///< unsafe promoted (guard-weakened) operation
  LintCompensation, ///< compensation block misses a moved definition/exit
  LintSchedule,     ///< schedule violates latency or resource limits
  LintDeadUnderPred,///< operation's guard is provably unsatisfiable
  LintRedundantComp,///< compensation recomputes an unclobbered on-trace value
  LintUninitRead,   ///< read of a register no definition can reach
  LintResourceOversub, ///< schedule exceeds the machine's fetch width
};

/// Name of \p C for messages ("parse-error", "budget-exhausted", ...).
const char *diagCodeName(DiagCode C);

/// One emitted diagnostic.
struct Diagnostic {
  DiagSeverity Severity = DiagSeverity::Error;
  DiagCode Code = DiagCode::None;
  /// Human-readable message (no trailing newline).
  std::string Message;
  /// Where it happened: a fault-site-style dotted path
  /// ("cpr.offtrace.move"), a stage name, or a file path.
  std::string Site;
  /// 1-based source line for parse errors; 0 when not applicable.
  unsigned Line = 0;

  /// "error [cpr.offtrace.move]: <message>" (site/line omitted if unset).
  std::string str() const;
};

/// Success-or-diagnostic result of a stage entry point. Contextually
/// converts to bool (true = success), like llvm::Error inverted.
class [[nodiscard]] Status {
public:
  /// Success.
  Status() = default;
  static Status success() { return Status(); }

  /// Failure carrying \p D.
  static Status failure(Diagnostic D) {
    Status S;
    S.Diag = std::move(D);
    return S;
  }
  /// Shorthand for an error-severity failure.
  static Status error(DiagCode Code, std::string Message,
                      std::string Site = "");

  explicit operator bool() const { return !Diag.has_value(); }
  bool ok() const { return !Diag.has_value(); }

  /// The diagnostic; only valid when !ok().
  const Diagnostic &diagnostic() const { return *Diag; }
  Diagnostic takeDiagnostic() { return std::move(*Diag); }

private:
  std::optional<Diagnostic> Diag;
};

/// Value-or-diagnostic result of a producing stage.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Diagnostic D) : Diag(std::move(D)) {}
  /// From a failed Status (asserting it is indeed failed is the caller's
  /// job; a success Status produces an Internal diagnostic).
  Expected(Status S) {
    if (S.ok())
      Diag = Diagnostic{DiagSeverity::Error, DiagCode::Internal,
                        "Expected constructed from a success Status", "", 0};
    else
      Diag = S.takeDiagnostic();
  }

  explicit operator bool() const { return Value.has_value(); }
  bool ok() const { return Value.has_value(); }

  T &operator*() { return *Value; }
  const T &operator*() const { return *Value; }
  T *operator->() { return &*Value; }
  const T *operator->() const { return &*Value; }
  T takeValue() { return std::move(*Value); }

  /// The diagnostic; only valid when !ok().
  const Diagnostic &diagnostic() const { return *Diag; }
  Diagnostic takeDiagnostic() { return std::move(*Diag); }
  /// This failure as a Status (only valid when !ok()).
  Status status() const { return Status::failure(*Diag); }

private:
  std::optional<T> Value;
  std::optional<Diagnostic> Diag;
};

/// Thread-safe diagnostic sink. Keeps every reported diagnostic (bounded
/// by MaxKept, oldest dropped first), maintains per-severity counters,
/// and optionally mirrors the counters into a StatsRegistry under
/// "<prefix>diag/<severity>" keys -- the cpr.diag.* counters of the
/// cpr-stats-v1.3 schema.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(StatsRegistry *Stats = nullptr,
                            std::string StatsPrefix = "")
      : Stats(Stats), Prefix(std::move(StatsPrefix)) {}

  /// Records \p D. Safe from any thread.
  void report(Diagnostic D);
  /// Convenience: build and record.
  void report(DiagSeverity Severity, DiagCode Code, std::string Message,
              std::string Site = "");
  /// Records the diagnostic of a failed \p S; no-op on success. Returns
  /// S.ok() so callers can gate on it.
  bool report(Status S);

  /// Number of diagnostics of \p S reported so far.
  unsigned count(DiagSeverity S) const;
  unsigned errorCount() const { return count(DiagSeverity::Error); }
  /// Total across severities.
  unsigned totalCount() const;
  bool empty() const { return totalCount() == 0; }

  /// Snapshot of the kept diagnostics, oldest first.
  std::vector<Diagnostic> diagnostics() const;

  /// Upper bound on kept diagnostics (counters are unaffected).
  static constexpr size_t MaxKept = 256;

private:
  mutable std::mutex Mu;
  StatsRegistry *Stats;
  std::string Prefix;
  std::vector<Diagnostic> Kept;
  unsigned Counts[4] = {0, 0, 0, 0};
};

/// Distinct process exit codes shared by cprc and cpr-fuzz. Anything a
/// script needs to tell apart gets its own code; 1 remains the generic
/// "work found a failure" code (fuzz findings, equivalence mismatches).
namespace exit_codes {
inline constexpr int Success = 0;
inline constexpr int Failure = 1;     ///< generic failure (findings, I/O)
inline constexpr int UsageError = 2;  ///< bad command line
inline constexpr int ParseError = 3;  ///< malformed textual IR / input
inline constexpr int VerifyError = 4; ///< input IR failed verification
} // namespace exit_codes

} // namespace cpr

#endif // SUPPORT_DIAGNOSTIC_H

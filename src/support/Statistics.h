//===- support/Statistics.h - Simple numeric helpers ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numeric aggregation helpers used when reducing per-benchmark results to
/// the geometric-mean rows of the paper's tables.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STATISTICS_H
#define SUPPORT_STATISTICS_H

#include <cassert>
#include <cmath>
#include <vector>

namespace cpr {

/// Geometric mean of \p Values. All values must be positive. Returns 0 for
/// an empty input.
inline double geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Arithmetic mean of \p Values. Returns 0 for an empty input.
inline double arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

} // namespace cpr

#endif // SUPPORT_STATISTICS_H

//===- support/Statistics.h - Simple numeric helpers ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Numeric aggregation helpers used when reducing per-benchmark results to
/// the geometric-mean rows of the paper's tables, plus the pass-level
/// observability layer: a StatsRegistry that every pipeline stage reports
/// counters and wall times into, and the RAII PassTimer that feeds it.
///
/// Thread-safety contract: StatsRegistry is internally mutex-guarded --
/// concurrent stages may report into one shared registry. Determinism:
/// counter keys and values are pure functions of the work performed, so
/// two runs of the same workload produce byte-identical counter
/// sections regardless of thread count; recorded *times* are wall-clock
/// and inherently nondeterministic, which is why toJSON() can exclude
/// them (the determinism tests compare documents without times).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STATISTICS_H
#define SUPPORT_STATISTICS_H

#include <cassert>
#include <chrono>
#include <cmath>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace cpr {

/// Geometric mean of \p Values. All values must be positive. Returns 0 for
/// an empty input.
inline double geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    assert(V > 0.0 && "geometric mean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

/// Arithmetic mean of \p Values. Returns 0 for an empty input.
inline double arithmeticMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double Sum = 0.0;
  for (double V : Values)
    Sum += V;
  return Sum / static_cast<double>(Values.size());
}

class JSONValue;

/// A sink for pass-level observability data. Stages report named counters
/// (deterministic facts: operation counts, branches merged, mispredicts,
/// estimated cycles) and named wall times; keys are hierarchical
/// slash-separated paths ("008.espresso/estimate/wide/cycles_treated").
///
/// All member functions are safe to call concurrently; iteration-order
/// determinism comes from the sorted key maps, so the emitted document
/// does not depend on the order in which threads reported.
class StatsRegistry {
public:
  /// Adds \p Delta to counter \p Key (creating it at 0).
  void addCount(const std::string &Key, double Delta = 1.0);

  /// Adds \p Ms to the accumulated wall time of \p Key.
  void recordTimeMs(const std::string &Key, double Ms);

  /// Current value of counter \p Key (0 when absent).
  double count(const std::string &Key) const;

  /// Accumulated wall time of \p Key in milliseconds (0 when absent).
  double timeMs(const std::string &Key) const;

  /// Snapshots of the counter / time maps, sorted by key.
  std::vector<std::pair<std::string, double>> counters() const;
  std::vector<std::pair<std::string, double>> timesMs() const;

  /// Folds \p Other into this registry, prepending \p Prefix to every key.
  /// Merging per-task registries in a fixed order yields a deterministic
  /// result even when the tasks themselves ran concurrently.
  void mergeFrom(const StatsRegistry &Other, const std::string &Prefix = "");

  /// Builds the machine-readable stats document:
  ///   { "schema": "cpr-stats-v1.3",
  ///     "counters": { <key>: <number>, ... },   // sorted, deterministic
  ///     "times_ms": { <key>: <number>, ... } }  // sorted, wall-clock
  /// "times_ms" is omitted when \p IncludeTimes is false, making the
  /// document a deterministic function of the work performed.
  JSONValue toJSON(bool IncludeTimes = true) const;

  /// writeJSON(toJSON(IncludeTimes)).
  std::string toJSONText(bool IncludeTimes = true) const;

  /// Drops all data.
  void clear();

private:
  mutable std::mutex Mu;
  std::map<std::string, double> Counts;
  std::map<std::string, double> Times;
};

/// Writes \p Registry's document to \p Path; returns false (and leaves a
/// message in \p Error when non-null) on I/O failure.
bool writeStatsJSONFile(const StatsRegistry &Registry,
                        const std::string &Path,
                        std::string *Error = nullptr);

/// RAII wall-clock timer: records the elapsed time into \p Registry under
/// \p Key on destruction (or at stop()). A null registry disables it.
class PassTimer {
public:
  PassTimer(StatsRegistry *Registry, std::string Key)
      : Registry(Registry), Key(std::move(Key)),
        Start(std::chrono::steady_clock::now()) {}
  PassTimer(const PassTimer &) = delete;
  PassTimer &operator=(const PassTimer &) = delete;
  ~PassTimer() { stop(); }

  /// Stops the timer and reports; idempotent. Returns elapsed ms.
  double stop() {
    if (Stopped)
      return LastMs;
    Stopped = true;
    LastMs = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - Start)
                 .count();
    if (Registry)
      Registry->recordTimeMs(Key, LastMs);
    return LastMs;
  }

private:
  StatsRegistry *Registry;
  std::string Key;
  std::chrono::steady_clock::time_point Start;
  bool Stopped = false;
  double LastMs = 0.0;
};

} // namespace cpr

#endif // SUPPORT_STATISTICS_H

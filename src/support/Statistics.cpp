//===- support/Statistics.cpp - Pass-level stats registry ------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Statistics.h"

#include "support/JSON.h"

#include <fstream>

using namespace cpr;

void StatsRegistry::addCount(const std::string &Key, double Delta) {
  std::lock_guard<std::mutex> Lock(Mu);
  Counts[Key] += Delta;
}

void StatsRegistry::recordTimeMs(const std::string &Key, double Ms) {
  std::lock_guard<std::mutex> Lock(Mu);
  Times[Key] += Ms;
}

double StatsRegistry::count(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Counts.find(Key);
  return It == Counts.end() ? 0.0 : It->second;
}

double StatsRegistry::timeMs(const std::string &Key) const {
  std::lock_guard<std::mutex> Lock(Mu);
  auto It = Times.find(Key);
  return It == Times.end() ? 0.0 : It->second;
}

std::vector<std::pair<std::string, double>> StatsRegistry::counters() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return {Counts.begin(), Counts.end()};
}

std::vector<std::pair<std::string, double>> StatsRegistry::timesMs() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return {Times.begin(), Times.end()};
}

void StatsRegistry::mergeFrom(const StatsRegistry &Other,
                              const std::string &Prefix) {
  // Snapshot first so that merging a registry into itself (or a registry
  // another thread is still writing) stays well-defined.
  std::vector<std::pair<std::string, double>> OtherCounts = Other.counters();
  std::vector<std::pair<std::string, double>> OtherTimes = Other.timesMs();
  std::lock_guard<std::mutex> Lock(Mu);
  for (const auto &KV : OtherCounts)
    Counts[Prefix + KV.first] += KV.second;
  for (const auto &KV : OtherTimes)
    Times[Prefix + KV.first] += KV.second;
}

JSONValue StatsRegistry::toJSON(bool IncludeTimes) const {
  JSONValue Doc = JSONValue::object();
  // v1.1 added the fail-safe counter families (<prefix>diag/<severity>,
  // cpr/blocks_rolled_back, budget/*, fault/*; docs/ROBUSTNESS.md).
  // Purely additive over v1: consumers keyed on "counters" need no change.
  Doc.set("schema", JSONValue::str("cpr-stats-v1.3"));
  JSONValue CountsObj = JSONValue::object();
  for (const auto &KV : counters())
    CountsObj.set(KV.first, JSONValue::number(KV.second));
  Doc.set("counters", std::move(CountsObj));
  if (IncludeTimes) {
    JSONValue TimesObj = JSONValue::object();
    for (const auto &KV : timesMs())
      TimesObj.set(KV.first, JSONValue::number(KV.second));
    Doc.set("times_ms", std::move(TimesObj));
  }
  return Doc;
}

std::string StatsRegistry::toJSONText(bool IncludeTimes) const {
  return writeJSON(toJSON(IncludeTimes));
}

void StatsRegistry::clear() {
  std::lock_guard<std::mutex> Lock(Mu);
  Counts.clear();
  Times.clear();
}

bool cpr::writeStatsJSONFile(const StatsRegistry &Registry,
                             const std::string &Path, std::string *Error) {
  std::ofstream Out(Path);
  if (!Out) {
    if (Error)
      *Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  Out << Registry.toJSONText();
  Out.flush();
  if (!Out) {
    if (Error)
      *Error = "write to '" + Path + "' failed";
    return false;
  }
  return true;
}

//===- support/Budget.h - Unified stage budgets -----------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One budget vocabulary for every bounded stage: the interpreter's step
/// cap, the transform stage's wall-clock cap, and the reducer's oracle-run
/// cap all express their limits as a Budget and check them through a
/// BudgetTracker. Exhaustion is an ordinary recoverable diagnostic
/// (DiagCode::BudgetExhausted, docs/ROBUSTNESS.md): the stage stops,
/// reports, and the session falls back to the baseline-preserving path.
///
/// Thread-safety: Budget is a plain value. A BudgetTracker instance is
/// meant for one stage on one thread (steps are not atomic); share
/// budgets, not trackers.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_BUDGET_H
#define SUPPORT_BUDGET_H

#include <chrono>
#include <cstdint>
#include <string>

namespace cpr {

/// Declarative limit for one stage. Zero means unlimited for either
/// dimension; "steps" are whatever discrete unit the stage consumes
/// (interpreter steps, oracle runs, regions).
struct Budget {
  uint64_t MaxSteps = 0;
  double MaxWallMs = 0.0;

  bool unlimited() const { return MaxSteps == 0 && MaxWallMs == 0.0; }
};

/// Consumes a Budget: count steps with step()/consume(), poll
/// exhausted(). The wall clock starts at construction.
class BudgetTracker {
public:
  explicit BudgetTracker(Budget Limit = Budget())
      : Limit(Limit), Start(std::chrono::steady_clock::now()) {}

  /// Consumes \p N steps if the budget is not already exhausted. Returns
  /// true when the steps were granted: a budget of MaxSteps=K grants
  /// exactly K unit steps.
  bool consume(uint64_t N = 1) {
    if (exhausted())
      return false;
    Steps += N;
    return true;
  }

  uint64_t steps() const { return Steps; }

  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

  bool stepsExhausted() const {
    return Limit.MaxSteps != 0 && Steps >= Limit.MaxSteps;
  }
  bool wallExhausted() const {
    return Limit.MaxWallMs != 0.0 && elapsedMs() >= Limit.MaxWallMs;
  }
  bool exhausted() const { return stepsExhausted() || wallExhausted(); }

  const Budget &limit() const { return Limit; }

  /// "step budget (N) exhausted" / "wall-clock budget (X ms) exhausted",
  /// for BudgetExhausted diagnostics.
  std::string describeExhaustion() const {
    if (stepsExhausted())
      return "step budget (" + std::to_string(Limit.MaxSteps) +
             ") exhausted";
    return "wall-clock budget (" + std::to_string(Limit.MaxWallMs) +
           " ms) exhausted";
  }

private:
  Budget Limit;
  uint64_t Steps = 0;
  std::chrono::steady_clock::time_point Start;
};

} // namespace cpr

#endif // SUPPORT_BUDGET_H

//===- support/Budget.h - Unified stage budgets -----------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One budget vocabulary for every bounded stage: the interpreter's step
/// cap, the transform stage's wall-clock cap, and the reducer's oracle-run
/// cap all express their limits as a Budget and check them through a
/// BudgetTracker. Exhaustion is an ordinary recoverable diagnostic
/// (DiagCode::BudgetExhausted, docs/ROBUSTNESS.md): the stage stops,
/// reports, and the session falls back to the baseline-preserving path.
///
/// A tracker can additionally carry a request Deadline and a cancel flag
/// (docs/SERVICE.md "Resilience"): both fold into the same exhausted()
/// poll, so every stage that honors budgets honors deadlines and
/// client-disconnect cancellation for free. exhaustionCode() says which
/// limit tripped (Cancelled > DeadlineExceeded > BudgetExhausted).
///
/// Thread-safety: Budget is a plain value. A BudgetTracker instance is
/// meant for one stage on one thread (steps are not atomic); share
/// budgets, not trackers. The cancel flag is an atomic owned by the
/// caller and may be set from any thread.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_BUDGET_H
#define SUPPORT_BUDGET_H

#include "support/Deadline.h"
#include "support/Diagnostic.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace cpr {

/// Declarative limit for one stage. Zero means unlimited for either
/// dimension; "steps" are whatever discrete unit the stage consumes
/// (interpreter steps, oracle runs, regions).
struct Budget {
  uint64_t MaxSteps = 0;
  double MaxWallMs = 0.0;

  bool unlimited() const { return MaxSteps == 0 && MaxWallMs == 0.0; }
};

/// Consumes a Budget: count steps with step()/consume(), poll
/// exhausted(). The wall clock starts at construction.
class BudgetTracker {
public:
  explicit BudgetTracker(Budget Limit = Budget(),
                         Deadline RequestDeadline = Deadline(),
                         const std::atomic<bool> *Cancel = nullptr)
      : Limit(Limit), RequestDeadline(RequestDeadline), Cancel(Cancel),
        Start(std::chrono::steady_clock::now()) {}

  /// Consumes \p N steps if the budget is not already exhausted. Returns
  /// true when the steps were granted: a budget of MaxSteps=K grants
  /// exactly K unit steps.
  bool consume(uint64_t N = 1) {
    if (exhausted())
      return false;
    Steps += N;
    return true;
  }

  uint64_t steps() const { return Steps; }

  double elapsedMs() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - Start)
        .count();
  }

  bool stepsExhausted() const {
    return Limit.MaxSteps != 0 && Steps >= Limit.MaxSteps;
  }
  bool wallExhausted() const {
    return Limit.MaxWallMs != 0.0 && elapsedMs() >= Limit.MaxWallMs;
  }
  bool deadlineExpired() const { return RequestDeadline.expired(); }
  bool cancelled() const {
    return Cancel && Cancel->load(std::memory_order_relaxed);
  }
  bool exhausted() const {
    return stepsExhausted() || wallExhausted() || deadlineExpired() ||
           cancelled();
  }

  const Budget &limit() const { return Limit; }
  const Deadline &deadline() const { return RequestDeadline; }

  /// Which limit tripped. Cancellation beats the deadline (the requester
  /// is gone; the deadline is moot), and both beat plain budget
  /// exhaustion. Only meaningful once exhausted().
  DiagCode exhaustionCode() const {
    if (cancelled())
      return DiagCode::Cancelled;
    if (deadlineExpired())
      return DiagCode::DeadlineExceeded;
    return DiagCode::BudgetExhausted;
  }

  /// "step budget (N) exhausted" / "wall-clock budget (X ms) exhausted" /
  /// "request deadline (X ms) exceeded" / "request cancelled by client",
  /// matching exhaustionCode()'s priority order.
  std::string describeExhaustion() const {
    if (cancelled())
      return "request cancelled by client";
    if (deadlineExpired())
      return RequestDeadline.describeExpiry();
    if (stepsExhausted())
      return "step budget (" + std::to_string(Limit.MaxSteps) +
             ") exhausted";
    return "wall-clock budget (" + std::to_string(Limit.MaxWallMs) +
           " ms) exhausted";
  }

private:
  Budget Limit;
  Deadline RequestDeadline;
  const std::atomic<bool> *Cancel = nullptr;
  uint64_t Steps = 0;
  std::chrono::steady_clock::time_point Start;
};

} // namespace cpr

#endif // SUPPORT_BUDGET_H

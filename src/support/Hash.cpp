//===- support/Hash.cpp - Stable content hashing ---------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Hash.h"

#include <cstdio>
#include <cstring>

using namespace cpr;

Hasher &Hasher::f64(double V) {
  // +0.0 and -0.0 have distinct bit patterns but compare equal; canonical
  // keys should not depend on the sign of a zero.
  if (V == 0.0)
    V = 0.0;
  uint64_t Bits;
  static_assert(sizeof(Bits) == sizeof(V), "double must be 64-bit");
  std::memcpy(&Bits, &V, sizeof(Bits));
  return u64(Bits);
}

std::string Hasher::hex() const {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(State));
  return Buf;
}

uint64_t cpr::hashString(const std::string &S) {
  Hasher H;
  H.bytes(S.data(), S.size());
  return H.digest();
}

//===- support/Framing.cpp - Newline-delimited frame I/O -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Framing.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace cpr;

LineReader::Result LineReader::next(std::string &Out) {
  if (!Err.empty())
    return Result::Error;
  bool ReadOnce = false;
  for (;;) {
    // Deliver a buffered frame first: poll()-driven callers must see
    // every complete line before the descriptor is touched again.
    size_t NL = Buf.find('\n', Pos);
    if (NL != std::string::npos) {
      Out.assign(Buf, Pos, NL - Pos);
      Pos = NL + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (Pos > (MaxLineBytes >> 1)) {
        Buf.erase(0, Pos);
        Pos = 0;
      }
      return Result::Frame;
    }
    if (Eof) {
      if (Pos < Buf.size()) {
        // Final unterminated line.
        Out.assign(Buf, Pos, Buf.size() - Pos);
        Pos = Buf.size();
        return Result::Frame;
      }
      return Result::Eof;
    }
    // Enforce the cap before reading more: past this point the line
    // cannot complete legally, so the peer's remaining bytes are never
    // buffered.
    if (Buf.size() - Pos >= MaxLineBytes) {
      Err = "line exceeds " + std::to_string(MaxLineBytes) + " bytes";
      return Result::Error;
    }
    if (ReadOnce)
      return Result::NeedMore; // incremental contract: one read per call
    ReadOnce = true;

    char Chunk[65536];
    size_t Want = sizeof(Chunk);
    if (size_t Room = MaxLineBytes - (Buf.size() - Pos); Want > Room)
      Want = Room;
    ssize_t N = ::read(FD, Chunk, Want);
    if (N < 0) {
      if (errno == EINTR)
        return Result::NeedMore;
      if (errno == EAGAIN || errno == EWOULDBLOCK)
        return Result::NeedMore; // SO_RCVTIMEO expired / nonblocking fd
      Err = std::string("read failed: ") + std::strerror(errno);
      return Result::Error;
    }
    if (N == 0)
      Eof = true; // loop delivers any final unterminated line
    else
      Buf.append(Chunk, static_cast<size_t>(N));
  }
}

bool LineReader::readLine(std::string &Out) {
  for (;;) {
    errno = 0; // NeedMore consults errno; don't trust a stale value
    switch (next(Out)) {
    case Result::Frame:
      return true;
    case Result::Eof:
      return false;
    case Result::Error:
      return false;
    case Result::NeedMore:
      // A blocking descriptor only lands here on EINTR or an expired
      // SO_RCVTIMEO. EINTR retry is invisible; a timeout would spin, so
      // surface it as an error -- blocking callers (Client, tools) set
      // no read timeout unless they mean it as a hard bound.
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        Err = "read timed out";
        return false;
      }
      continue;
    }
  }
}

bool cpr::writeAll(int FD, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(FD, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

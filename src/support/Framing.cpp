//===- support/Framing.cpp - Newline-delimited frame I/O -------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Framing.h"

#include <cerrno>
#include <cstring>
#include <unistd.h>

using namespace cpr;

bool LineReader::readLine(std::string &Out) {
  if (!Err.empty())
    return false;
  for (;;) {
    // Scan the buffered bytes for a newline.
    size_t NL = Buf.find('\n', Pos);
    if (NL != std::string::npos) {
      Out.assign(Buf, Pos, NL - Pos);
      Pos = NL + 1;
      // Compact once the consumed prefix dominates the buffer.
      if (Pos > (MaxLineBytes >> 1)) {
        Buf.erase(0, Pos);
        Pos = 0;
      }
      return true;
    }
    if (Eof) {
      if (Pos < Buf.size()) {
        // Final unterminated line.
        Out.assign(Buf, Pos, Buf.size() - Pos);
        Pos = Buf.size();
        return true;
      }
      return false;
    }
    if (Buf.size() - Pos >= MaxLineBytes) {
      Err = "line exceeds " + std::to_string(MaxLineBytes) + " bytes";
      return false;
    }

    char Chunk[65536];
    ssize_t N = ::read(FD, Chunk, sizeof(Chunk));
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Err = std::string("read failed: ") + std::strerror(errno);
      return false;
    }
    if (N == 0) {
      Eof = true;
      continue;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
  }
}

bool cpr::writeAll(int FD, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::write(FD, Data.data() + Off, Data.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Off += static_cast<size_t>(N);
  }
  return true;
}

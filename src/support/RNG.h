//===- support/RNG.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small, deterministic, seedable random number generator (SplitMix64).
/// All randomized components of the project (workload generation, property
/// tests, input data) use this generator so that every run is reproducible
/// from a seed. std::mt19937 is avoided because its distributions are not
/// guaranteed identical across standard library implementations.
///
/// Thread-safety: an RNG is a single mutable 64-bit state with no internal
/// locking and no global/shared state anywhere in this header. Each
/// concurrent task must own its own RNG instance (seeded deterministically,
/// e.g. from the task index); sharing one instance across threads would
/// both race and destroy reproducibility. The benchmark-suite Build()
/// factories follow this rule: each constructs its generators locally, so
/// suite rows can build concurrently on the pipeline thread pool.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_RNG_H
#define SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace cpr {

/// Deterministic 64-bit pseudo-random generator (SplitMix64).
class RNG {
public:
  explicit RNG(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a uniform value in [0, Bound). \p Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound != 0 && "nextBelow requires a nonzero bound");
    // Modulo bias is irrelevant for workload generation purposes.
    return next() % Bound;
  }

  /// Returns a uniform value in [Lo, Hi] inclusive.
  int64_t nextRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "invalid range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace cpr

#endif // SUPPORT_RNG_H

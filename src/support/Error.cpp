//===- support/Error.cpp - Fatal error reporting --------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace cpr;

void cpr::reportFatalError(const std::string &Msg) {
  std::fprintf(stderr, "fatal error: %s\n", Msg.c_str());
  std::fflush(stderr);
  std::abort();
}

void cpr::unreachableInternal(const char *Msg, const char *File,
                              unsigned Line) {
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line,
               Msg ? Msg : "");
  std::fflush(stderr);
  std::abort();
}

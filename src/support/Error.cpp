//===- support/Error.cpp - Fatal error reporting --------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Error.h"

#include <cstdio>
#include <cstdlib>

using namespace cpr;

namespace {
/// Depth of nested ScopedFatalErrorTraps on this thread.
thread_local unsigned TrapDepth = 0;
} // namespace

ScopedFatalErrorTrap::ScopedFatalErrorTrap() { ++TrapDepth; }

ScopedFatalErrorTrap::~ScopedFatalErrorTrap() { --TrapDepth; }

bool ScopedFatalErrorTrap::active() { return TrapDepth > 0; }

void cpr::reportFatalError(const std::string &Msg) {
  if (TrapDepth > 0)
    throw FatalError(Msg);
  std::fprintf(stderr, "fatal error: %s\n", Msg.c_str());
  std::fflush(stderr);
  std::abort();
}

void cpr::unreachableInternal(const char *Msg, const char *File,
                              unsigned Line) {
  if (TrapDepth > 0)
    throw FatalError(std::string("UNREACHABLE at ") + File + ":" +
                     std::to_string(Line) + ": " + (Msg ? Msg : ""));
  std::fprintf(stderr, "UNREACHABLE executed at %s:%u: %s\n", File, Line,
               Msg ? Msg : "");
  std::fflush(stderr);
  std::abort();
}

//===- support/TableFormat.h - Plain-text table rendering -------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal column-aligned plain-text table renderer. The benchmark
/// binaries use it to print reproductions of the paper's Tables 1-3 in a
/// layout close to the original.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_TABLEFORMAT_H
#define SUPPORT_TABLEFORMAT_H

#include <string>
#include <vector>

namespace cpr {

/// Accumulates rows of string cells and renders them with aligned columns.
class TextTable {
public:
  /// Sets the header row. Column count is fixed by the header.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row; must match the header's column count.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the table. Column 0 is left-aligned, the rest right-aligned.
  std::string render() const;

  /// Formats a double with \p Digits fractional digits ("1.18").
  static std::string fmt(double Value, int Digits = 2);

private:
  struct Row {
    std::vector<std::string> Cells;
    bool Separator = false;
  };
  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace cpr

#endif // SUPPORT_TABLEFORMAT_H

//===- support/Hash.h - Stable content hashing ------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small stable (cross-run, cross-platform) content hasher used to build
/// the content-addressed keys of the compile service's region cache
/// (docs/SERVICE.md): 64-bit FNV-1a over a byte stream, with convenience
/// feeders for strings and integers and a fixed-width hex digest. Not
/// cryptographic -- collisions are guarded by storing the full canonical
/// key text next to the digest where it matters.
///
/// Determinism contract: the digest is a pure function of the fed bytes;
/// integer feeders serialize little-endian with a fixed width so the same
/// logical key hashes identically on every platform the project builds on.
///
/// Thread-safety: Hasher is a plain value type; distinct instances may be
/// used from distinct threads freely.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_HASH_H
#define SUPPORT_HASH_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace cpr {

/// Streaming 64-bit FNV-1a hasher.
class Hasher {
public:
  /// FNV-1a 64-bit offset basis / prime.
  static constexpr uint64_t OffsetBasis = 0xcbf29ce484222325ULL;
  static constexpr uint64_t Prime = 0x100000001b3ULL;

  /// Feeds \p Len raw bytes.
  Hasher &bytes(const void *Data, size_t Len) {
    const unsigned char *P = static_cast<const unsigned char *>(Data);
    for (size_t I = 0; I < Len; ++I) {
      State ^= P[I];
      State *= Prime;
    }
    return *this;
  }

  /// Feeds the characters of \p S followed by a NUL separator, so
  /// ("ab","c") and ("a","bc") hash differently.
  Hasher &str(const std::string &S) {
    bytes(S.data(), S.size());
    unsigned char Sep = 0;
    return bytes(&Sep, 1);
  }

  /// Feeds \p V as 8 little-endian bytes.
  Hasher &u64(uint64_t V) {
    unsigned char Buf[8];
    for (int I = 0; I < 8; ++I)
      Buf[I] = static_cast<unsigned char>(V >> (8 * I));
    return bytes(Buf, 8);
  }

  /// Feeds the IEEE-754 bit pattern of \p V.
  Hasher &f64(double V);

  /// The current digest.
  uint64_t digest() const { return State; }

  /// The current digest as 16 lowercase hex characters.
  std::string hex() const;

private:
  uint64_t State = OffsetBasis;
};

/// One-shot convenience: 64-bit FNV-1a of \p S (no trailing separator).
uint64_t hashString(const std::string &S);

} // namespace cpr

#endif // SUPPORT_HASH_H

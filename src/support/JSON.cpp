//===- support/JSON.cpp - Minimal JSON document model ----------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/JSON.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace cpr;

void JSONValue::set(const std::string &Key, JSONValue V) {
  for (auto &M : Members)
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  Members.emplace_back(Key, std::move(V));
}

const JSONValue *JSONValue::find(const std::string &Key) const {
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

namespace {

void escapeInto(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void numberInto(std::string &Out, double N) {
  char Buf[32];
  if (std::isfinite(N) && N == std::floor(N) && std::fabs(N) < 0x1p53)
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(N));
  else if (std::isfinite(N))
    std::snprintf(Buf, sizeof(Buf), "%.17g", N);
  else
    std::snprintf(Buf, sizeof(Buf), "null"); // JSON has no inf/nan
  Out += Buf;
}

void writeInto(std::string &Out, const JSONValue &V, bool Pretty,
               unsigned Depth) {
  auto Indent = [&](unsigned D) {
    if (Pretty) {
      Out += '\n';
      Out.append(2 * D, ' ');
    }
  };
  switch (V.kind()) {
  case JSONValue::Kind::Null:
    Out += "null";
    break;
  case JSONValue::Kind::Bool:
    Out += V.getBool() ? "true" : "false";
    break;
  case JSONValue::Kind::Number:
    numberInto(Out, V.getNumber());
    break;
  case JSONValue::Kind::String:
    escapeInto(Out, V.getString());
    break;
  case JSONValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JSONValue &E : V.items()) {
      if (!First)
        Out += ',';
      First = false;
      Indent(Depth + 1);
      writeInto(Out, E, Pretty, Depth + 1);
    }
    if (!First)
      Indent(Depth);
    Out += ']';
    break;
  }
  case JSONValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &M : V.members()) {
      if (!First)
        Out += ',';
      First = false;
      Indent(Depth + 1);
      escapeInto(Out, M.first);
      Out += Pretty ? ": " : ":";
      writeInto(Out, M.second, Pretty, Depth + 1);
    }
    if (!First)
      Indent(Depth);
    Out += '}';
    break;
  }
  }
}

} // namespace

std::string cpr::writeJSON(const JSONValue &V, bool Pretty) {
  std::string Out;
  writeInto(Out, V, Pretty, 0);
  if (Pretty)
    Out += '\n';
  return Out;
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

namespace {

class Parser {
public:
  Parser(const std::string &Text, JSONParseResult &Res)
      : Text(Text), Res(Res) {}

  void run() {
    skipWS();
    Res.Value = parseValue();
    if (!Res.Error.empty())
      return;
    skipWS();
    if (Pos != Text.size())
      fail("trailing characters after document");
  }

private:
  const std::string &Text;
  JSONParseResult &Res;
  size_t Pos = 0;

  void fail(const std::string &Msg) {
    if (Res.Error.empty()) {
      Res.Error = Msg;
      Res.Offset = Pos;
      Res.Code = DiagCode::ParseError;
    }
  }

  void skipWS() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool consume(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool literal(const char *Lit) {
    size_t Len = std::char_traits<char>::length(Lit);
    if (Text.compare(Pos, Len, Lit) == 0) {
      Pos += Len;
      return true;
    }
    return false;
  }

  JSONValue parseValue() {
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return JSONValue();
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return JSONValue::str(parseString());
    if (literal("true"))
      return JSONValue::boolean(true);
    if (literal("false"))
      return JSONValue::boolean(false);
    if (literal("null"))
      return JSONValue::null();
    if (C == '-' || (C >= '0' && C <= '9'))
      return parseNumber();
    fail("unexpected character");
    return JSONValue();
  }

  JSONValue parseObject() {
    JSONValue V = JSONValue::object();
    consume('{');
    skipWS();
    if (consume('}'))
      return V;
    for (;;) {
      skipWS();
      if (Pos >= Text.size() || Text[Pos] != '"') {
        fail("expected object key string");
        return V;
      }
      std::string Key = parseString();
      if (!Res.Error.empty())
        return V;
      if (V.find(Key)) {
        fail("duplicate object key \"" + Key + "\"");
        return V;
      }
      skipWS();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return V;
      }
      skipWS();
      V.set(Key, parseValue());
      if (!Res.Error.empty())
        return V;
      skipWS();
      if (consume(','))
        continue;
      if (consume('}'))
        return V;
      fail("expected ',' or '}' in object");
      return V;
    }
  }

  JSONValue parseArray() {
    JSONValue V = JSONValue::array();
    consume('[');
    skipWS();
    if (consume(']'))
      return V;
    for (;;) {
      skipWS();
      V.append(parseValue());
      if (!Res.Error.empty())
        return V;
      skipWS();
      if (consume(','))
        continue;
      if (consume(']'))
        return V;
      fail("expected ',' or ']' in array");
      return V;
    }
  }

  std::string parseString() {
    std::string Out;
    consume('"');
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return Out;
      if (C == '\\') {
        if (Pos >= Text.size())
          break;
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 't':
          Out += '\t';
          break;
        case 'r':
          Out += '\r';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        case 'u': {
          if (Pos + 4 > Text.size()) {
            fail("truncated \\u escape");
            return Out;
          }
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = Text[Pos++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else {
              fail("bad hex digit in \\u escape");
              return Out;
            }
          }
          // The stats documents only ever escape control characters;
          // encode the code point as UTF-8 (BMP only, no surrogates).
          if (Code < 0x80) {
            Out += static_cast<char>(Code);
          } else if (Code < 0x800) {
            Out += static_cast<char>(0xC0 | (Code >> 6));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          } else {
            Out += static_cast<char>(0xE0 | (Code >> 12));
            Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
            Out += static_cast<char>(0x80 | (Code & 0x3F));
          }
          break;
        }
        default:
          fail("unknown escape");
          return Out;
        }
      } else {
        Out += C;
      }
    }
    fail("unterminated string");
    return Out;
  }

  JSONValue parseNumber() {
    size_t Start = Pos;
    if (consume('-')) {
    }
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    std::string Num = Text.substr(Start, Pos - Start);
    char *End = nullptr;
    double V = std::strtod(Num.c_str(), &End);
    if (End == Num.c_str() || *End != '\0') {
      Pos = Start;
      fail("malformed number");
      return JSONValue();
    }
    return JSONValue::number(V);
  }
};

} // namespace

JSONParseResult cpr::parseJSON(const std::string &Text) {
  JSONParseResult Res;
  Parser P(Text, Res);
  P.run();
  return Res;
}

Diagnostic JSONParseResult::diagnostic(std::string Site) const {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = Code == DiagCode::None ? DiagCode::ParseError : Code;
  D.Message = "JSON: " + Error + " at offset " + std::to_string(Offset);
  D.Site = std::move(Site);
  return D;
}

Status JSONParseResult::status(std::string Site) const {
  if (Error.empty())
    return Status::success();
  return Status::failure(diagnostic(std::move(Site)));
}

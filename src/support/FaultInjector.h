//===- support/FaultInjector.h - Named fault-site injection -----*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The generalization of test_hooks::SkipCompensationInsertion: a registry
/// of *named fault sites* planted at the failure-prone seams of the
/// compiler (compensation insertion, off-trace motion, the verifier and
/// oracle steps of a region transaction, allocation, the transform stage
/// entry). Tests and the cpr-fuzz fault campaign arm one site for its
/// N-th hit; the site then fails exactly once, deterministically, and the
/// fail-safe layer (docs/ROBUSTNESS.md) must contain the damage: the
/// invariant under any injected fault is rollback + baseline-equivalent
/// output + a diagnostic, never a crash or miscompile.
///
/// Site catalog (all registered up front so campaigns can iterate the
/// full list even for sites the workload never reaches):
///
///   alloc                         region snapshot allocation fails
///   cpr.restructure.plan          restructure reports a transform fault
///   cpr.restructure.compensation  moved ops never reach the compensation
///                                 block (the planted miscompile -- only
///                                 the equivalence re-check catches it)
///   cpr.offtrace.move             off-trace motion reports a fault
///   ir.verify                     the region transaction's re-verify
///                                 rejects the transformed region
///   interp.oracle                 the equivalence oracle reports a
///                                 spurious mismatch
///   pipeline.transform            the whole transform stage fails
///   serve.frame.decode            a well-formed request frame decodes
///                                 as a parse error (cprd)
///   serve.dispatch.enqueue        admission refuses (busy) a request
///                                 the queue had room for (cprd)
///   serve.cache.insert            a clean region's cache commit is
///                                 abandoned; waiters recompute (cprd)
///   serve.socket.write            a response write fails as if the
///                                 client vanished (cprd)
///
/// Thread-safety: arming is process-global. Arm/disarm strictly while no
/// worker threads are running (the TestHooks contract); shouldFail() is
/// safe from any thread and near-free while nothing is armed (one relaxed
/// atomic load). Hit counting across threads is atomic but which thread
/// observes the firing hit is scheduling-dependent -- deterministic
/// campaigns run single-threaded.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_FAULTINJECTOR_H
#define SUPPORT_FAULTINJECTOR_H

#include <cstdint>
#include <string>
#include <vector>

namespace cpr {
namespace fault {

/// Sorted catalog of every registered site name.
std::vector<std::string> sites();

/// True when \p Site is in the catalog.
bool isKnownSite(const std::string &Site);

/// Arms \p Site to fire on its \p NthHit-th shouldFail() call (1-based).
/// Unknown sites are registered on the fly (tests may plant private
/// sites). Re-arming resets the hit count. Returns false and arms nothing
/// when \p NthHit is 0.
bool arm(const std::string &Site, uint64_t NthHit = 1);

/// Disarms whatever is armed; hit counts reset.
void disarm();

/// Name of the armed site ("" when disarmed).
std::string armedSite();

/// Hits observed at the armed site since arm() (0 when disarmed).
uint64_t armedHits();

/// True when the armed site fired at least once since arm().
bool fired();

/// Called at a fault site: counts a hit when \p Site is armed and returns
/// true exactly on the armed N-th hit. Always false while disarmed.
bool shouldFail(const char *Site);

/// RAII armer: arms on construction, disarms on destruction. Must not
/// nest (one global armed slot).
class ScopedFault {
public:
  explicit ScopedFault(const std::string &Site, uint64_t NthHit = 1) {
    arm(Site, NthHit);
  }
  ~ScopedFault() { disarm(); }
  ScopedFault(const ScopedFault &) = delete;
  ScopedFault &operator=(const ScopedFault &) = delete;
};

} // namespace fault
} // namespace cpr

#endif // SUPPORT_FAULTINJECTOR_H

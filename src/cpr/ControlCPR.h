//===- cpr/ControlCPR.h - The ICBM driver -----------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete ICBM control-CPR pass (paper Section 5): predicate
/// speculation, match, restructure, and off-trace motion over every linear
/// region of a function, followed by dead code elimination. The input is
/// expected to be FRP-converted (regions/FRPConversion.h); the driver
/// leaves regions that do not fit the schema untouched, as the paper does.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_CONTROLCPR_H
#define CPR_CONTROLCPR_H

#include "analysis/ProfileData.h"
#include "cpr/CPROptions.h"
#include "cpr/Match.h"
#include "regions/DeadCodeElim.h"

namespace cpr {

/// Summary of one ICBM run.
struct CPRResult {
  unsigned RegionsProcessed = 0;
  unsigned CPRBlocksFormed = 0;
  unsigned CPRBlocksTransformed = 0;
  unsigned TakenVariants = 0;
  unsigned BranchesCovered = 0; ///< branches inside transformed CPR blocks
  unsigned Promoted = 0;
  unsigned Demoted = 0;
  unsigned LookaheadsInserted = 0;
  unsigned OpsMovedOffTrace = 0;
  unsigned OpsSplit = 0;
  DCEStats DCE;
  /// Stop-reason histogram, indexed by MatchStopReason.
  unsigned StopReasons[6] = {0, 0, 0, 0, 0, 0};
};

/// Runs ICBM over every non-compensation block of \p F, using \p Profile
/// for the match heuristics. \p F is verified after the pass.
CPRResult runControlCPR(Function &F, const ProfileData &Profile,
                        const CPROptions &Opts = CPROptions());

} // namespace cpr

#endif // CPR_CONTROLCPR_H

//===- cpr/ControlCPR.h - The ICBM driver -----------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The complete ICBM control-CPR pass (paper Section 5): predicate
/// speculation, match, restructure, and off-trace motion over every linear
/// region of a function, followed by dead code elimination. The input is
/// expected to be FRP-converted (regions/FRPConversion.h); the driver
/// leaves regions that do not fit the schema untouched, as the paper does.
///
/// Fail-safe operation (docs/ROBUSTNESS.md): each CPR block's restructure
/// plus motion runs inside a RegionTransaction. A TransformFault from a
/// phase, a re-verification failure, an optional equivalence-oracle
/// mismatch, or an exhausted stage budget rolls back just that region --
/// the rest of the function keeps its treatment and the result is always
/// runnable. Strict mode (CPRContext::FailSafe = false, the legacy
/// default) instead escalates the first failure to reportFatalError so the
/// differential fuzzer keeps observing compiler defects as crashes or
/// oracle mismatches rather than silent rollbacks.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_CONTROLCPR_H
#define CPR_CONTROLCPR_H

#include "analysis/ProfileData.h"
#include "cpr/CPROptions.h"
#include "cpr/Match.h"
#include "regions/DeadCodeElim.h"
#include "support/Budget.h"
#include "support/Diagnostic.h"

#include <functional>
#include <string>

namespace cpr {

class RegionMemoStore;

/// Summary of one ICBM run.
struct CPRResult {
  unsigned RegionsProcessed = 0;
  unsigned CPRBlocksFormed = 0;
  unsigned CPRBlocksTransformed = 0;
  unsigned TakenVariants = 0;
  unsigned BranchesCovered = 0; ///< branches inside transformed CPR blocks
  unsigned Promoted = 0;
  unsigned Demoted = 0;
  unsigned LookaheadsInserted = 0;
  unsigned OpsMovedOffTrace = 0;
  unsigned OpsSplit = 0;
  DCEStats DCE;
  /// Stop-reason histogram, indexed by MatchStopReason.
  unsigned StopReasons[6] = {0, 0, 0, 0, 0, 0};
  /// Fail-safe accounting: CPR-block transactions rolled back, regions
  /// with at least one rollback, regions left untreated because the
  /// transform budget ran out, and whether it did.
  unsigned BlocksRolledBack = 0;
  unsigned RegionsRolledBack = 0;
  unsigned RegionsSkippedBudget = 0;
  bool BudgetExhausted = false;
};

/// How the driver reacts to a failing transformation.
struct CPRContext {
  /// Optional sink for rollback remarks and stage errors.
  DiagnosticEngine *Diags = nullptr;
  /// Optional per-region equivalence re-check, run on the whole function
  /// after a transaction re-verifies. Return a failure Status (typically
  /// DiagCode::OracleMismatch) to force a rollback. Expensive: each call
  /// interprets the function; wire it up only when requested
  /// (PipelineOptions::RegionEquivalence).
  std::function<Status(const Function &)> RegionOracle;
  /// Optional static lint re-check (src/lint/), run on the whole function
  /// after a transaction re-verifies and *before* the (more expensive)
  /// RegionOracle. Return a failure Status (typically one of the
  /// DiagCode::Lint* codes) to force a rollback. Unlike the oracle it
  /// never executes the program; wire it up via PipelineOptions::Lint.
  std::function<Status(const Function &)> RegionLint;
  /// Optional transform budget; one step is one CPR-block transform.
  /// Exhaustion skips the remaining regions (baseline fallback).
  BudgetTracker *Budget = nullptr;
  /// true: roll failing regions back and continue (production).
  /// false: escalate the first failure to reportFatalError (legacy strict
  /// behavior; what the differential fuzzer relies on).
  bool FailSafe = true;
  /// Optional content-addressed region memo store (cpr/RegionMemo.h).
  /// When set, each region is looked up before processing and replayed on
  /// a hit -- byte-identical to the cold compile. MemoSalt must
  /// fingerprint the whole request (program text including inputs,
  /// options, budget configuration, validation mode); see RegionMemo.h
  /// for why. Unset (the default) disables memoization.
  RegionMemoStore *Memo = nullptr;
  std::string MemoSalt;
};

/// Runs ICBM over every non-compensation block of \p F, using \p Profile
/// for the match heuristics. \p F is verified after the pass; in
/// fail-safe mode the result is runnable even when regions rolled back.
CPRResult runControlCPR(Function &F, const ProfileData &Profile,
                        const CPROptions &Opts, const CPRContext &Ctx);

/// Legacy strict entry point: FailSafe off, no oracle, no budget.
CPRResult runControlCPR(Function &F, const ProfileData &Profile,
                        const CPROptions &Opts = CPROptions());

} // namespace cpr

#endif // CPR_CONTROLCPR_H

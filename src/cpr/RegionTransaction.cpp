//===- cpr/RegionTransaction.cpp - Per-region rollback --------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/RegionTransaction.h"

#include "ir/Verifier.h"
#include "support/FaultInjector.h"

using namespace cpr;

RegionTransaction::RegionTransaction(Function &F, BlockId Region)
    : F(F), Region(Region) {
  Block *B = F.blockById(Region);
  assert(B && "transaction on a block that does not exist");
  SnapshotOps = B->ops();
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I)
    PreExistingBlocks.insert(F.block(I).getId());
}

Status RegionTransaction::verify(const std::string &Context,
                                 DiagnosticEngine *Diags) const {
  if (fault::shouldFail("ir.verify"))
    return Status::error(DiagCode::VerifyFailed,
                         "injected fault (" + Context + ")", "ir.verify");
  std::vector<std::string> Violations = verifyFunction(F);
  if (Violations.empty())
    return Status::success();
  // The first violation travels in the returned Status (the caller
  // reports it); the rest go straight to the engine so one fail-safe run
  // surfaces the complete list instead of "(+N more)".
  if (Diags)
    for (size_t I = 1; I < Violations.size(); ++I)
      Diags->report(DiagSeverity::Error, DiagCode::VerifyFailed,
                    "IR verification failed (" + Context + "): " +
                        Violations[I],
                    "ir.verify");
  std::string Msg =
      "IR verification failed (" + Context + "): " + Violations.front();
  if (Violations.size() > 1 && !Diags)
    Msg += " (+" + std::to_string(Violations.size() - 1) + " more)";
  return Status::error(DiagCode::VerifyFailed, std::move(Msg), "ir.verify");
}

unsigned RegionTransaction::rollback() {
  if (RolledBack)
    return 0;
  RolledBack = true;

  // Restore the region's operations first so no block references a
  // compensation block while we remove it.
  if (Block *B = F.blockById(Region))
    B->ops() = SnapshotOps;

  // Remove blocks appended since the snapshot (compensation blocks of the
  // failed transform). Collect ids first: removal shifts layout indices.
  std::vector<BlockId> Appended;
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I) {
    BlockId Id = F.block(I).getId();
    if (!PreExistingBlocks.count(Id))
      Appended.push_back(Id);
  }
  unsigned Removed = 0;
  for (BlockId Id : Appended)
    if (F.removeBlock(Id))
      ++Removed;
  return Removed;
}

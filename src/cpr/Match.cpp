//===- cpr/Match.cpp - ICBM phase 2: CPR block identification -------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/Match.h"

#include "analysis/DepGraph.h"
#include "analysis/Liveness.h"
#include "analysis/PQS.h"
#include "support/Error.h"

#include <unordered_set>

using namespace cpr;

const char *cpr::matchStopReasonName(MatchStopReason R) {
  switch (R) {
  case MatchStopReason::NoMoreBranches:
    return "no-more-branches";
  case MatchStopReason::Suitability:
    return "suitability";
  case MatchStopReason::Separability:
    return "separability";
  case MatchStopReason::ExitWeight:
    return "exit-weight";
  case MatchStopReason::PredictTaken:
    return "predict-taken";
  case MatchStopReason::SizeCap:
    return "size-cap";
  }
  CPR_UNREACHABLE("bad stop reason");
}

namespace {

/// Per-branch description gathered in the preliminary pass.
struct BranchDesc {
  size_t BranchIdx;       ///< op index of the branch
  int CmppIdx = -1;       ///< op index of its controlling compare, or -1
  bool CmppIsUN = false;  ///< compare computes the branch pred with UN
  Reg CmppGuard;          ///< guard of the controlling compare
  Reg FallPred;           ///< UC destination of the compare, if any
  bool HasFallPred = false;
};

/// Incremental separability state: the accumulated dependence-successor
/// set ("succ") of compares already committed to the current CPR block.
class SeparabilityState {
public:
  SeparabilityState(const Block &B, const DepGraph &DG,
                    const std::vector<BranchDesc> &Branches)
      : B(B), DG(DG) {
    // Controlling compares of every branch in the region (growth may reach
    // any of them): edges into these via UC-guard chains are the
    // suitability-licensed dependences that append-successors ignores.
    for (const BranchDesc &BD : Branches)
      if (BD.CmppIdx >= 0)
        ChainCmpps.insert(static_cast<uint32_t>(BD.CmppIdx));
  }

  void reset() { Succ.clear(); }

  bool contains(uint32_t OpIdx) const { return Succ.count(OpIdx) != 0; }

  /// append-successors: accumulates the dependence successors of the
  /// compare at \p CmppIdx, ignoring UC-guard-chain edges into other
  /// branch-controlling compares.
  void appendSuccessors(uint32_t CmppIdx) {
    std::vector<uint32_t> Stack{CmppIdx};
    while (!Stack.empty()) {
      uint32_t N = Stack.back();
      Stack.pop_back();
      for (uint32_t EI : DG.succs(N)) {
        const DepEdge &E = DG.edge(EI);
        if (ignorableEdge(E))
          continue;
        if (!Succ.insert(E.To).second)
          continue;
        Stack.push_back(E.To);
      }
    }
  }

private:
  /// True for a flow edge from a compare to a later branch-controlling
  /// compare that exists only because the later compare's *guard* is the
  /// earlier compare's UC (fall-through) output. Suitability guarantees
  /// the schema replaces that guard by the root predicate, so the
  /// dependence disappears after transformation.
  bool ignorableEdge(const DepEdge &E) const {
    if (E.Kind != DepKind::Flow)
      return false;
    const Operation &From = B.ops()[E.From];
    const Operation &To = B.ops()[E.To];
    if (!From.isCmpp() || !To.isCmpp())
      return false;
    if (ChainCmpps.count(E.To) == 0)
      return false;
    // The edge must be purely a guard dependence on a UC destination.
    Reg Guard = To.getGuard();
    bool GuardIsUcOfFrom = false;
    for (const DefSlot &D : From.defs())
      if (D.R == Guard && D.Act == CmppAction::UC)
        GuardIsUcOfFrom = true;
    if (!GuardIsUcOfFrom)
      return false;
    // Data sources must not also depend on the earlier compare.
    for (const Operand &S : To.srcs())
      if (S.isReg() && From.definesReg(S.getReg()))
        return false;
    return true;
  }

  const Block &B;
  const DepGraph &DG;
  std::unordered_set<uint32_t> ChainCmpps;
  std::unordered_set<uint32_t> Succ;
};

} // namespace

std::vector<CPRBlockInfo> cpr::matchCPRBlocks(const Function &F,
                                              const Block &B,
                                              const ProfileData &Profile,
                                              const CPROptions &Opts) {
  std::vector<CPRBlockInfo> Result;

  // Preliminary pass: list branches in sequential order with their
  // controlling compares (reaching-definition within the block).
  std::vector<BranchDesc> Branches;
  for (size_t I = 0, E = B.size(); I != E; ++I) {
    const Operation &Op = B.ops()[I];
    if (!Op.isBranch())
      continue;
    BranchDesc BD;
    BD.BranchIdx = I;
    Reg TakenPred = Op.branchPred();
    int DefIdx = B.lastDefBefore(TakenPred, I);
    if (DefIdx >= 0) {
      const Operation &Def = B.ops()[static_cast<size_t>(DefIdx)];
      if (Def.isCmpp()) {
        BD.CmppIdx = DefIdx;
        BD.CmppGuard = Def.getGuard();
        for (const DefSlot &D : Def.defs()) {
          if (D.R == TakenPred && D.Act == CmppAction::UN)
            BD.CmppIsUN = true;
          if (D.Act == CmppAction::UC) {
            BD.FallPred = D.R;
            BD.HasFallPred = true;
          }
        }
      }
    }
    Branches.push_back(BD);
  }
  if (Branches.empty())
    return Result;

  // Analyses for separability. The machine only affects edge latencies,
  // which the successor closure ignores.
  RegionPQS PQS(F, B);
  Liveness LV(F);
  MachineDesc MD = MachineDesc::medium();
  DepGraph DG(F, B, MD, PQS, LV);
  SeparabilityState Sep(B, DG, Branches);

  size_t Next = 0; // index into Branches of the next seed
  while (Next < Branches.size()) {
    // --- Seed a new CPR block with the next branch ---------------------
    const BranchDesc &Seed = Branches[Next];
    CPRBlockInfo Info;
    Info.BranchIds.push_back(B.ops()[Seed.BranchIdx].getId());
    Info.CmppIds.push_back(
        Seed.CmppIdx >= 0 ? B.ops()[static_cast<size_t>(Seed.CmppIdx)].getId()
                          : InvalidOpId);

    bool SeedSuitable = Seed.CmppIdx >= 0 && Seed.CmppIsUN;
    // Suitable-predicate set (suitability induction state).
    std::unordered_set<Reg> SP;
    if (SeedSuitable) {
      SP.insert(Seed.CmppGuard); // the CPR block's root predicate
      if (Seed.HasFallPred)
        SP.insert(Seed.FallPred);
      Sep.reset();
      Sep.appendSuccessors(static_cast<uint32_t>(Seed.CmppIdx));
    }

    // Entry frequency: how often the seed branch is reached.
    uint64_t EntryFreq =
        Profile.branchReached(B.ops()[Seed.BranchIdx].getId());
    uint64_t CumulativeExits =
        Profile.branchTaken(B.ops()[Seed.BranchIdx].getId());

    // Seed predict-taken: a likely-taken *first* branch cannot anchor a
    // useful fall-through prefix; treat the block as taken-variation of
    // size one (not transformable, but growth must stop).
    bool PredTaken =
        Opts.EnableTakenVariation && EntryFreq > 0 &&
        Profile.takenRatio(B.ops()[Seed.BranchIdx].getId()) >
            Opts.PredictTakenThreshold;
    if (PredTaken)
      Info.TakenVariation = true;

    size_t Cur = Next;
    // --- Grow the CPR block from the seed --------------------------------
    while (true) {
      if (PredTaken) {
        Info.StopReason = MatchStopReason::PredictTaken;
        break;
      }
      size_t Cand = Cur + 1;
      if (Cand >= Branches.size()) {
        Info.StopReason = MatchStopReason::NoMoreBranches;
        break;
      }
      if (Info.size() >= Opts.MaxBranchesPerBlock) {
        Info.StopReason = MatchStopReason::SizeCap;
        break;
      }
      const BranchDesc &CD = Branches[Cand];

      // Suitability: UN-computed branch predicate, compare guarded by SP.
      if (!SeedSuitable || CD.CmppIdx < 0 || !CD.CmppIsUN ||
          SP.count(CD.CmppGuard) == 0) {
        Info.StopReason = MatchStopReason::Suitability;
        break;
      }
      // Separability: the candidate's compare must not depend on compares
      // that move off-trace.
      if (Sep.contains(static_cast<uint32_t>(CD.CmppIdx))) {
        Info.StopReason = MatchStopReason::Separability;
        break;
      }
      // Predict-taken (priority over exit-weight): append and stop.
      OpId CandBranchId = B.ops()[CD.BranchIdx].getId();
      if (Opts.EnableTakenVariation && EntryFreq > 0 &&
          static_cast<double>(Profile.branchTaken(CandBranchId)) /
                  static_cast<double>(EntryFreq) >
              Opts.PredictTakenThreshold) {
        PredTaken = true;
        Info.TakenVariation = true;
        // fall through to append below
      } else if (EntryFreq > 0 &&
                 static_cast<double>(CumulativeExits +
                                     Profile.branchTaken(CandBranchId)) /
                         static_cast<double>(EntryFreq) >
                     Opts.ExitWeightThreshold) {
        // Exit-weight: candidate not appended.
        Info.StopReason = MatchStopReason::ExitWeight;
        break;
      }

      // Passed all tests: append the candidate.
      Info.BranchIds.push_back(CandBranchId);
      Info.CmppIds.push_back(B.ops()[static_cast<size_t>(CD.CmppIdx)].getId());
      CumulativeExits += Profile.branchTaken(CandBranchId);
      if (CD.HasFallPred)
        SP.insert(CD.FallPred);
      Sep.appendSuccessors(static_cast<uint32_t>(CD.CmppIdx));
      Cur = Cand;
    }

    Info.Transformable =
        SeedSuitable && Info.size() >= Opts.MinBranchesPerBlock;
    // A taken-variation block must have a fall-through prefix plus the
    // taken branch; size-1 taken blocks are trivial.
    if (Info.TakenVariation && Info.size() < 2)
      Info.Transformable = false;
    Result.push_back(std::move(Info));
    Next = Cur + 1;
  }
  return Result;
}

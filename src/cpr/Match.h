//===- cpr/Match.h - ICBM phase 2: CPR block identification -----*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ICBM match phase (paper Section 5.2 and Figure 5): partitions a
/// region's branches into CPR blocks by growing a block branch-by-branch
/// until one of four tests ends it:
///
///  - *suitability* (correctness): each appended branch's controlling
///    compare must compute the branch predicate with a UN target and be
///    guarded by a member of the suitable-predicate set SP, which makes
///    the schema's simplified off-trace FRP root & (c1 | ... | cn) exact;
///  - *separability* (correctness): the candidate's controlling compare
///    must not be a dependence successor of any compare that will move
///    off-trace (ignoring the UC-guard chain edges licensed by
///    suitability);
///  - *exit-weight* (heuristic): cumulative exit frequency of the block
///    stays below a threshold fraction of its entry frequency;
///  - *predict-taken* (heuristic): a likely-taken candidate is appended,
///    tags the block as a taken-variation block, and ends growth; this
///    test has priority over exit-weight.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_MATCH_H
#define CPR_MATCH_H

#include "analysis/ProfileData.h"
#include "cpr/CPROptions.h"
#include "ir/Function.h"

#include <vector>

namespace cpr {

/// Why a CPR block stopped growing (for reporting and tests).
enum class MatchStopReason : uint8_t {
  NoMoreBranches,
  Suitability,
  Separability,
  ExitWeight,
  PredictTaken,
  SizeCap,
};

/// Returns a printable name for \p R.
const char *matchStopReasonName(MatchStopReason R);

/// One CPR block: a run of consecutive branches of the region.
struct CPRBlockInfo {
  /// Ids of the branch operations, in program order.
  std::vector<OpId> BranchIds;
  /// Ids of the controlling compares, parallel to BranchIds.
  std::vector<OpId> CmppIds;
  /// Tagged by the predict-taken test: the final branch is likely taken
  /// and restructure uses the taken variation.
  bool TakenVariation = false;
  /// True when the block is big enough and suitable to transform.
  bool Transformable = false;
  /// Why growth ended.
  MatchStopReason StopReason = MatchStopReason::NoMoreBranches;

  size_t size() const { return BranchIds.size(); }
};

/// Runs match over block \p B of \p F, consuming \p Profile.
std::vector<CPRBlockInfo> matchCPRBlocks(const Function &F, const Block &B,
                                         const ProfileData &Profile,
                                         const CPROptions &Opts);

} // namespace cpr

#endif // CPR_MATCH_H

//===- cpr/RegionMemo.cpp - Content-addressed region memoization -----------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/RegionMemo.h"

#include "ir/IRPrinter.h"
#include "support/Hash.h"

using namespace cpr;

RegionMemoStore::~RegionMemoStore() = default;

static size_t opBytes(const Operation &Op) {
  return sizeof(Operation) + Op.defs().capacity() * sizeof(DefSlot) +
         Op.srcs().capacity() * sizeof(Operand);
}

size_t RegionMemoEntry::approximateBytes() const {
  size_t N = sizeof(RegionMemoEntry);
  for (const Operation &Op : RegionOps)
    N += opBytes(Op);
  for (const RegionMemoAppendedBlock &AB : AppendedBlocks) {
    N += sizeof(RegionMemoAppendedBlock) + AB.Name.size();
    for (const Operation &Op : AB.Ops)
      N += opBytes(Op);
  }
  return N;
}

uint64_t cpr::regionMemoKey(const std::string &Salt, unsigned Ordinal,
                            const Function &F, const Block &B,
                            const ProfileData &Profile,
                            const CPROptions &Opts) {
  Hasher H;
  H.str(Salt);
  H.u64(Ordinal);
  H.u64(B.getId());
  H.str(B.getName());

  // Canonical region text with stable op ids: two regions hash equal only
  // when their ops, ids, guards and operands are identical.
  PrintOptions PO;
  PO.ShowOpIds = true;
  H.str(printBlock(F, B, PO));

  // Allocator position: replay reissues ids with addBlock/setAllocatorState,
  // which is only byte-identical from the same starting counters.
  AllocatorState S = F.allocatorState();
  H.u64(S.NextBlockId);
  for (unsigned I = 0; I < NumRegClasses; ++I)
    H.u64(S.NextRegId[I]);
  H.u64(S.NextOpId);

  // Profile slice: the match heuristics read the region's entry count and
  // each branch's reach/taken counts. Hash them in op order (deterministic;
  // non-branch ops contribute zeros).
  H.u64(Profile.blockEntries(B.getId()));
  for (const Operation &Op : B.ops()) {
    H.u64(Op.getId());
    H.u64(Profile.branchReached(Op.getId()));
    H.u64(Profile.branchTaken(Op.getId()));
  }

  // Every CPROptions knob feeds the match / speculation phases.
  H.f64(Opts.ExitWeightThreshold);
  H.f64(Opts.PredictTakenThreshold);
  H.u64(Opts.MaxBranchesPerBlock);
  H.u64(Opts.MinBranchesPerBlock);
  H.u64(Opts.EnablePredicateSpeculation ? 1 : 0);
  H.u64(Opts.EnableTakenVariation ? 1 : 0);
  return H.digest();
}

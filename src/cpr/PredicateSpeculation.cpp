//===- cpr/PredicateSpeculation.cpp - ICBM phase 1 -------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/PredicateSpeculation.h"

#include "analysis/DepGraph.h"
#include "analysis/Liveness.h"
#include "analysis/PQS.h"
#include "machine/MachineDesc.h"

using namespace cpr;

namespace {

/// Returns true if \p Op may have its guard promoted at all.
bool isPromotionCandidate(const Operation &Op) {
  if (Op.getGuard().isTruePred())
    return false; // nothing to do
  switch (Op.getOpcode()) {
  case Opcode::Cmpp:
    // Compare-to-predicate operations are excluded (paper Section 5.1).
    return false;
  case Opcode::Store:
    // Memory liveness is unknown; a promoted store could clobber live
    // memory. The paper's example demotes every promoted store anyway.
    return false;
  case Opcode::Branch:
  case Opcode::Halt:
  case Opcode::Trap:
    return false; // control flow must not be speculated via guards
  default:
    return true;
  }
}

} // namespace

SpeculationStats cpr::speculatePredicates(Function &F, Block &B) {
  SpeculationStats Stats;

  // --- Pass 1: promotion (bottom-up) -----------------------------------
  // Predicate-aware liveness is computed on the original guards; since
  // promotion only widens execution conditions and we test against the
  // original liveness, every individual promotion is safe, and promotions
  // of later (below) operations cannot invalidate the test for earlier
  // ones (a promoted definition only overwrites registers that were
  // provably dead under the complement of its original guard).
  std::vector<Reg> OriginalGuard(B.size());
  std::vector<bool> WasPromoted(B.size(), false);
  {
    RegionPQS PQS(F, B);
    Liveness LV(F);
    PredicatedLiveness PLV(F, B, PQS, LV);
    BDD &Mgr = PQS.bdd();

    // Exit-live sets of the region's branches, in program order. A
    // promoted (true-guarded) operation later survives ICBM's branch
    // removal *above* the original branches, so promotion is speculation:
    // the destination must be dead at the target of every branch that
    // precedes... more precisely, that originally guarded the operation.
    std::vector<std::pair<size_t, RegSet>> BranchExitLive;
    for (size_t I = 0; I < B.size(); ++I)
      if (B.ops()[I].isBranch())
        BranchExitLive.emplace_back(I, LV.liveAtExit(F, B, I));

    for (size_t I = B.size(); I-- > 0;) {
      Operation &Op = B.ops()[I];
      OriginalGuard[I] = Op.getGuard();
      if (!isPromotionCandidate(Op))
        continue;
      BDD::NodeRef GuardE = PQS.guardExpr(I);
      BDD::NodeRef NotGuard = Mgr.mkNot(GuardE);
      if (NotGuard == BDD::Invalid)
        continue; // conservative
      bool Safe = true;
      for (const DefSlot &D : Op.defs()) {
        // Promotion is unsafe if the destination is live (after the op)
        // anywhere the operation would not originally have executed.
        BDD::NodeRef LiveE = PLV.liveAfter(I, D.R);
        if (!Mgr.disjoint(LiveE, NotGuard)) {
          Safe = false;
          break;
        }
        // Speculation safety: once promoted to true, the operation will
        // execute even on entries that leave through an earlier exit
        // (ICBM removes those branches from above it), so its destination
        // must be dead at every earlier exit's target.
        for (const auto &[BrIdx, ExitLive] : BranchExitLive) {
          if (BrIdx >= I)
            break;
          if (ExitLive.count(D.R)) {
            Safe = false;
            break;
          }
        }
        if (!Safe)
          break;
      }
      if (!Safe)
        continue;
      Op.setGuard(Reg::truePred());
      WasPromoted[I] = true;
      ++Stats.Promoted;
    }
  }

  // --- Pass 2: demotion (bottom-up) -------------------------------------
  // Undo promotions that cannot reduce dependence height: if the
  // operation's data-dependence depth (with the promoted guard) already
  // reaches at least to the point where its original guard value is
  // available, the promotion bought nothing and is reverted, recovering
  // the narrower execution condition (fewer spurious executions, better
  // register allocation -- paper Section 5.1).
  {
    RegionPQS PQS(F, B);
    Liveness LV(F);
    MachineDesc MD = MachineDesc::infinite();
    DepGraph DG(F, B, MD, PQS, LV);
    std::vector<int> Depth = DG.depths();

    // Operations on a data path into a branch-controlling compare keep
    // their promotion regardless of the height rule: re-guarding them
    // would recreate the compare -> op -> compare chains that make the
    // separability test fail, defeating the purpose of this phase (paper
    // Section 5.1). Computed as a backward closure from the controlling
    // compares over flow/memory edges.
    std::vector<bool> FeedsControllingCmpp(B.size(), false);
    {
      std::vector<uint32_t> Work;
      for (size_t I = 0; I < B.size(); ++I) {
        if (!B.ops()[I].isBranch())
          continue;
        int C = B.lastDefBefore(B.ops()[I].branchPred(), I);
        if (C >= 0 && B.ops()[static_cast<size_t>(C)].isCmpp() &&
            !FeedsControllingCmpp[static_cast<size_t>(C)]) {
          FeedsControllingCmpp[static_cast<size_t>(C)] = true;
          Work.push_back(static_cast<uint32_t>(C));
        }
      }
      while (!Work.empty()) {
        uint32_t N = Work.back();
        Work.pop_back();
        for (uint32_t EI : DG.preds(N)) {
          const DepEdge &E = DG.edge(EI);
          if (E.Kind != DepKind::Flow && E.Kind != DepKind::Mem)
            continue;
          if (!FeedsControllingCmpp[E.From]) {
            FeedsControllingCmpp[E.From] = true;
            Work.push_back(E.From);
          }
        }
      }
    }

    for (size_t I = B.size(); I-- > 0;) {
      if (!WasPromoted[I] || FeedsControllingCmpp[I])
        continue;
      Reg G = OriginalGuard[I];
      int GuardDef = B.lastDefBefore(G, I);
      if (GuardDef < 0)
        continue; // guard defined outside the block; keep the promotion
      int GuardReady = Depth[static_cast<size_t>(GuardDef)] +
                       DG.nodeLatency(static_cast<uint32_t>(GuardDef));
      if (Depth[I] >= GuardReady) {
        B.ops()[I].setGuard(G);
        B.ops()[I].setFrpGuard(true);
        WasPromoted[I] = false;
        ++Stats.Demoted;
      }
    }
  }
  return Stats;
}

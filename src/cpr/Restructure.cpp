//===- cpr/Restructure.cpp - ICBM phase 3: height reduction ---------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/Restructure.h"

#include "support/FaultInjector.h"

#include <unordered_set>

using namespace cpr;

namespace {

/// A restructure-phase TransformFault diagnostic.
Diagnostic restructureFault(std::string Msg) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = DiagCode::TransformFault;
  D.Message = std::move(Msg);
  D.Site = "cpr.restructure.plan";
  return D;
}

Diagnostic lostTrack(OpId Id) {
  return restructureFault("restructure lost track of operation id " +
                          std::to_string(Id));
}

} // namespace

Expected<RestructurePlan> cpr::restructureCPRBlock(Function &F, Block &B,
                                                   const CPRBlockInfo &Info) {
  assert(Info.Transformable && "restructure requires a transformable block");
  if (fault::shouldFail("cpr.restructure.plan"))
    return restructureFault("injected fault");

  RestructurePlan Plan;
  Plan.TakenVariation = Info.TakenVariation;
  Plan.Region = B.getId();
  Plan.BranchIds = Info.BranchIds;
  Plan.CmppIds = Info.CmppIds;

  size_t N = Info.BranchIds.size();

  // The root predicate is the *current* guard of the first compare: for a
  // second or later CPR block the previous block's re-wiring has already
  // replaced it with that block's on-trace FRP.
  int FirstCmppIdx = B.indexOfOp(Info.CmppIds[0]);
  if (FirstCmppIdx < 0)
    return lostTrack(Info.CmppIds[0]);
  Plan.RootPred = B.ops()[static_cast<size_t>(FirstCmppIdx)].getGuard();

  Plan.OnTracePred = F.newReg(RegClass::PR);
  bool FallThroughVariation = !Info.TakenVariation;
  if (FallThroughVariation)
    Plan.OffTracePred = F.newReg(RegClass::PR);

  // --- Insert the on-trace / off-trace FRP initializers -----------------
  // The off-trace FRP (wired-or) initializes to 0; the on-trace FRP
  // (wired-and) initializes to the root predicate. Both are placed
  // immediately before the first lookahead compare (i.e. right after the
  // first original compare), which dominates every use and follows the
  // root predicate's definition.
  {
    std::vector<Operation> Inits;
    if (FallThroughVariation) {
      Operation OffInit = F.makeOp(Opcode::Mov);
      OffInit.addDef(Plan.OffTracePred);
      OffInit.addSrc(Operand::imm(0));
      Inits.push_back(std::move(OffInit));
    }
    Operation OnInit = F.makeOp(Opcode::Mov);
    OnInit.addDef(Plan.OnTracePred);
    OnInit.addSrc(Plan.RootPred.isTruePred() ? Operand::imm(1)
                                             : Operand::reg(Plan.RootPred));
    Inits.push_back(std::move(OnInit));
    B.ops().insert(B.ops().begin() + FirstCmppIdx, Inits.begin(),
                   Inits.end());
  }

  // --- Insert one lookahead compare after each original compare ---------
  // Each lookahead mirrors the original compare's condition and sources
  // but is guarded by the root predicate (legal by suitability) and
  // accumulates into the wired FRPs. For the taken variation the final
  // compare's sense is inverted and no off-trace target exists.
  for (size_t I = 0; I < N; ++I) {
    int CmppIdx = B.indexOfOp(Info.CmppIds[I]);
    if (CmppIdx < 0)
      return lostTrack(Info.CmppIds[I]);
    const Operation &Orig = B.ops()[static_cast<size_t>(CmppIdx)];
    assert(Orig.isCmpp() && "controlling operation must be a compare");

    Operation Look = F.makeOp(Opcode::Cmpp);
    Look.setGuard(Plan.RootPred);
    bool InvertSense = Info.TakenVariation && I + 1 == N;
    Look.setCond(InvertSense ? invertCompareCond(Orig.getCond())
                             : Orig.getCond());
    Look.addDef(Plan.OnTracePred, CmppAction::AC);
    if (FallThroughVariation)
      Look.addDef(Plan.OffTracePred, CmppAction::ON);
    for (const Operand &S : Orig.srcs())
      Look.addSrc(S);
    Plan.LookaheadIds.push_back(Look.getId());
    B.ops().insert(B.ops().begin() + CmppIdx + 1, std::move(Look));
  }

  int LastBranchIdx = B.indexOfOp(Info.BranchIds[N - 1]);
  if (LastBranchIdx < 0)
    return lostTrack(Info.BranchIds[N - 1]);

  if (FallThroughVariation) {
    // --- Create the compensation block and the bypass branch ------------
    // Site "alloc" models a failed block/resource allocation here -- the
    // one place restructure acquires a function-level resource that
    // rollback must release again.
    if (fault::shouldFail("alloc"))
      return restructureFault(
          "injected allocation failure creating the compensation block");
    Block &Comp = F.addBlock(B.getName() + "_cmp" +
                             std::to_string(B.getId()) + "_" +
                             std::to_string(Info.BranchIds[0]));
    Comp.setCompensation(true);
    Plan.CompBlock = Comp.getId();
    // The suitability theorem guarantees some original branch takes when
    // the bypass is taken; a trap documents (and dynamically checks) that
    // control never falls through the compensation block.
    Operation Trap = F.makeOp(Opcode::Trap);
    Comp.ops().push_back(std::move(Trap));

    Reg Btr = F.newReg(RegClass::BTR);
    Operation Pbr = F.makeOp(Opcode::Pbr);
    Pbr.addDef(Btr);
    Pbr.addSrc(Operand::label(Comp.getId()));
    Operation Bypass = F.makeOp(Opcode::Branch);
    Bypass.addSrc(Operand::reg(Plan.OffTracePred));
    Bypass.addSrc(Operand::reg(Btr));
    Plan.BypassBranchId = Bypass.getId();
    std::vector<Operation> Two;
    Two.push_back(std::move(Pbr));
    Two.push_back(std::move(Bypass));
    B.ops().insert(B.ops().begin() + LastBranchIdx + 1, Two.begin(),
                   Two.end());
  } else {
    // --- Taken variation: the final branch becomes the bypass -----------
    // Its taken direction is the accelerated path; its taken predicate is
    // replaced by the on-trace FRP (whose final lookahead term used the
    // inverted sense, i.e. "the final branch takes").
    Operation &Final = B.ops()[static_cast<size_t>(LastBranchIdx)];
    Final.srcs()[0] = Operand::reg(Plan.OnTracePred);
    Plan.BypassBranchId = Final.getId();
  }

  // --- Re-wire original-predicate uses after the bypass point -----------
  // Registers written by the original compares must have no uses after the
  // bypass branch so the compares can move off-trace. Such uses read a
  // fall-through FRP of the block, whose value on the surviving path
  // equals the on-trace FRP.
  // Fall-through (UC) predicates are true on the surviving path and map
  // to the on-trace FRP; taken (UN) predicates are false there and map to
  // a constant-false predicate (their original value moves off-trace, so
  // leaving the stale register would be wrong).
  std::unordered_set<Reg> FallPreds, TakenPreds;
  for (size_t K = 0; K < Info.CmppIds.size(); ++K) {
    int CI = B.indexOfOp(Info.CmppIds[K]);
    int BI = B.indexOfOp(Info.BranchIds[K]);
    if (CI < 0)
      return lostTrack(Info.CmppIds[K]);
    if (BI < 0)
      return lostTrack(Info.BranchIds[K]);
    const Operation &C = B.ops()[static_cast<size_t>(CI)];
    const Operation &Br = B.ops()[static_cast<size_t>(BI)];
    for (const DefSlot &D : C.defs()) {
      if (D.R == Br.branchPred())
        TakenPreds.insert(D.R);
      else
        FallPreds.insert(D.R);
    }
  }
  int BypassIdxSigned = B.indexOfOp(Plan.BypassBranchId);
  if (BypassIdxSigned < 0)
    return lostTrack(Plan.BypassBranchId);
  size_t BypassIdx = static_cast<size_t>(BypassIdxSigned);
  if (FallThroughVariation) {
    Reg FalsePred;
    auto GetFalsePred = [&]() {
      if (FalsePred.isValid())
        return FalsePred;
      FalsePred = F.newReg(RegClass::PR);
      Operation Init = F.makeOp(Opcode::Mov);
      Init.addDef(FalsePred);
      Init.addSrc(Operand::imm(0));
      B.ops().insert(B.ops().begin(), std::move(Init));
      ++BypassIdx;
      return FalsePred;
    };
    for (size_t I = BypassIdx + 1; I < B.size(); ++I) {
      Operation &Op = B.ops()[I];
      if (FallPreds.count(Op.getGuard())) {
        Op.setGuard(Plan.OnTracePred);
        Op.setFrpGuard(false);
      } else if (TakenPreds.count(Op.getGuard())) {
        Op.setGuard(GetFalsePred());
        Op.setFrpGuard(false);
      }
      for (Operand &S : Op.srcs())
        if (S.isReg() && S.getReg().isPred()) {
          if (FallPreds.count(S.getReg()))
            S = Operand::reg(Plan.OnTracePred);
          else if (TakenPreds.count(S.getReg()))
            S = Operand::reg(GetFalsePred());
        }
    }
  }
  // Taken variation: code after the final branch *is* the off-trace path
  // and keeps the original predicates (their compares move there).

  return Plan;
}

//===- cpr/FullCPR.h - The redundant all-paths baseline ---------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// "Full CPR" after Schlansker & Kathail, "Critical Path Reduction for
/// Scalar Programs" (MICRO-28, 1995) [SK95] -- the prior technique the
/// paper positions ICBM against (Section 4): it "aggressively accelerates
/// all paths within a region at the cost of a quadratic growth in the
/// number of compares".
///
/// This implementation height-reduces every branch of a region
/// independently: branch i's fully resolved predicate
///
///     FRP_i = root & !c_1 & ... & !c_{i-1} & c_i
///
/// is recomputed from scratch with i wired-and lookahead compares (AC
/// terms for the earlier conditions, an AN term for the branch's own
/// condition), all guarded by the root predicate and hence mutually
/// independent and freely re-associable. Every branch's dependence height
/// collapses to the height of its own condition -- on *all* paths, not
/// just the predominant one -- but the static and dynamic compare count
/// grows quadratically with the branch count, which is exactly the
/// trade-off Table 2's sequential/narrow columns punish and the
/// bench_ablation_fullcpr binary measures.
///
/// The transformation needs no profile, produces no compensation code,
/// and performs no code motion: it is the natural redundant baseline.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_FULLCPR_H
#define CPR_FULLCPR_H

#include "ir/Function.h"

namespace cpr {

/// Statistics from one full-CPR run.
struct FullCPRStats {
  unsigned BranchesAccelerated = 0;
  unsigned LookaheadsInserted = 0; ///< grows quadratically with branches
};

/// Applies full CPR to every suitable branch chain of block \p B.
/// Branches whose controlling compare does not match the UN-computed
/// suitability shape are left untouched (and end the chain, as in ICBM's
/// suitability test).
FullCPRStats runFullCPROnBlock(Function &F, Block &B);

/// Applies full CPR to every non-compensation block of \p F, followed by
/// no cleanup (callers run DCE). The input is expected to be original
/// superblock code; the pass performs its own FRP-style analysis.
FullCPRStats runFullCPR(Function &F);

} // namespace cpr

#endif // CPR_FULLCPR_H

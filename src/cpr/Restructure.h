//===- cpr/Restructure.h - ICBM phase 3: height reduction -------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ICBM restructure phase (paper Section 5.3): for each non-trivial
/// CPR block it inserts the on-trace / off-trace FRP computation (lookahead
/// compares with AC/ON wired targets, all guarded by the CPR block's root
/// predicate), adds the bypass branch and its compensation block
/// (fall-through variation) or re-purposes the likely-taken final branch
/// (taken variation), and re-wires uses of the original predicates after
/// the bypass point to the on-trace FRP.
///
/// Failure model: restructure returns a recoverable diagnostic
/// (support/Diagnostic.h) instead of aborting when it loses track of an
/// operation or a fault is injected at site "cpr.restructure.plan"; the
/// driver rolls the region back (cpr/RegionTransaction.h) and leaves it
/// untransformed.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_RESTRUCTURE_H
#define CPR_RESTRUCTURE_H

#include "cpr/Match.h"
#include "ir/Function.h"
#include "support/Diagnostic.h"

namespace cpr {

/// Everything off-trace motion needs to know about one restructured CPR
/// block. Operations are identified by id (stable across the insertions
/// and motions that follow).
struct RestructurePlan {
  bool TakenVariation = false;
  /// Block the CPR block lives in.
  BlockId Region = InvalidBlockId;
  /// Original branches and controlling compares (program order).
  std::vector<OpId> BranchIds;
  std::vector<OpId> CmppIds;
  /// The inserted lookahead compares (program order).
  std::vector<OpId> LookaheadIds;
  /// The on-trace FRP register; guard of the accelerated path.
  Reg OnTracePred;
  /// The off-trace FRP register (fall-through variation only).
  Reg OffTracePred;
  /// Root predicate of the CPR block at restructure time.
  Reg RootPred;
  /// The bypass branch: new for the fall-through variation, the final
  /// original branch for the taken variation.
  OpId BypassBranchId = InvalidOpId;
  /// Compensation block (fall-through variation only).
  BlockId CompBlock = InvalidBlockId;
};

/// Restructures one CPR block of \p B (which must be block \p Info was
/// matched on). Returns the plan for off-trace motion, or a
/// TransformFault diagnostic; on failure \p F may hold a partially
/// restructured region -- callers roll the enclosing transaction back.
Expected<RestructurePlan> restructureCPRBlock(Function &F, Block &B,
                                              const CPRBlockInfo &Info);

} // namespace cpr

#endif // CPR_RESTRUCTURE_H

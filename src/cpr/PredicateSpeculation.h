//===- cpr/PredicateSpeculation.h - ICBM phase 1 ----------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Predicate speculation (paper Section 5.1), the first ICBM phase. Two
/// bottom-up traversals of the region:
///
///  1. *Promotion*: each eligible operation's guard is promoted to true
///     when the promotion cannot overwrite a live value (checked with
///     predicate-aware liveness). Compare-to-predicate operations are not
///     candidates; stores are not promoted (their memory liveness is
///     unknown), matching the paper's example where every promoted store
///     is demoted back.
///
///  2. *Demotion*: promotions that could not reduce dependence height --
///     the operation's data-dependence depth already reaches past the
///     point where its original guard becomes available -- are undone.
///
/// The phase's real purpose for ICBM is separability: FRP-converted code
/// guards address arithmetic and loads with block FRPs, creating
/// compare -> op -> compare chains that would make the separability test
/// fail at almost every block; promotion removes those guards.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_PREDICATESPECULATION_H
#define CPR_PREDICATESPECULATION_H

#include "ir/Function.h"

namespace cpr {

/// Statistics from one speculation run.
struct SpeculationStats {
  unsigned Promoted = 0;
  unsigned Demoted = 0;
};

/// Runs predicate speculation over block \p B of \p F in place.
SpeculationStats speculatePredicates(Function &F, Block &B);

} // namespace cpr

#endif // CPR_PREDICATESPECULATION_H

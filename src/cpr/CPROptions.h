//===- cpr/CPROptions.h - ICBM tuning knobs ---------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tuning parameters for the ICBM control-CPR transformation. As in the
/// paper (Section 7), a single set of thresholds -- tuned for the medium
/// (4,2,2,1) machine -- is used for every processor model; the threshold
/// ablation bench sweeps them.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_CPROPTIONS_H
#define CPR_CPROPTIONS_H

namespace cpr {

/// Options for the ICBM schema.
struct CPROptions {
  /// Exit-weight test: growth of a CPR block stops when the cumulative
  /// taken frequency of its branches exceeds this fraction of the block's
  /// entry frequency (paper Section 5.2).
  double ExitWeightThreshold = 0.20;

  /// Predict-taken test: a candidate branch whose own taken frequency
  /// exceeds this fraction of the CPR block entry frequency ends the block
  /// as a likely-taken CPR block (taken variation).
  double PredictTakenThreshold = 0.60;

  /// Practical cap on CPR block size (number of branches); a blocking
  /// control in the spirit of Section 4.1's blocking discussion.
  unsigned MaxBranchesPerBlock = 16;

  /// Minimum branches for a CPR block to be worth transforming.
  unsigned MinBranchesPerBlock = 2;

  /// Run the predicate speculation phase (ablation knob; without it,
  /// separability fails at almost every block of FRP-converted code).
  bool EnablePredicateSpeculation = true;

  /// Allow the taken variation (likely-taken final branch). When false,
  /// the predict-taken test is disabled and only fall-through CPR blocks
  /// form.
  bool EnableTakenVariation = true;
};

} // namespace cpr

#endif // CPR_CPROPTIONS_H

//===- cpr/OffTraceMotion.h - ICBM phase 4 ----------------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The ICBM off-trace motion phase (paper Section 5.4). Three passes over
/// the restructured region compute:
///
///  - set 1: the original compares and branches of the CPR block plus all
///    their data-dependence successors -- these must move off-trace;
///  - set 2: the subset of set 1 whose effect is also needed on-trace
///    (most commonly stores) -- these are split, leaving a copy on-trace
///    guarded by the on-trace FRP;
///  - set 3: operations outside set 1 whose results are used only by
///    moved operations (typically the pbr operations feeding moved
///    branches) -- moved as a pure benefit to the on-trace path.
///
/// A final step performs the splitting and the motion into the
/// compensation block (fall-through variation) or to the start of the
/// region tail after the final branch (taken variation).
///
/// Failure model: separability violations, lost operation ids, and
/// injected faults (site "cpr.offtrace.move") come back as recoverable
/// TransformFault diagnostics; the driver rolls the region's transaction
/// back. Fault site "cpr.restructure.compensation" (and the legacy
/// test_hooks::SkipCompensationInsertion bool) plants the deliberate
/// miscompile of dropping the moved operations instead of compensating.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_OFFTRACEMOTION_H
#define CPR_OFFTRACEMOTION_H

#include "cpr/Restructure.h"

namespace cpr {

/// Statistics from one motion run.
struct MotionStats {
  unsigned Moved = 0; ///< operations moved off-trace (sets 1 and 3)
  unsigned Split = 0; ///< operations replicated on-trace (set 2)
};

/// Performs off-trace motion for one restructured CPR block. On failure
/// \p F may be left mid-motion -- callers roll the enclosing region
/// transaction back.
Expected<MotionStats> moveOffTrace(Function &F, const RestructurePlan &Plan);

} // namespace cpr

#endif // CPR_OFFTRACEMOTION_H

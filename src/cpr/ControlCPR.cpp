//===- cpr/ControlCPR.cpp - The ICBM driver --------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/ControlCPR.h"

#include "cpr/OffTraceMotion.h"
#include "cpr/PredicateSpeculation.h"
#include "cpr/Restructure.h"
#include "regions/FRPConversion.h"
#include "ir/Verifier.h"

using namespace cpr;

CPRResult cpr::runControlCPR(Function &F, const ProfileData &Profile,
                             const CPROptions &Opts) {
  CPRResult Result;

  // Snapshot the regions to process: restructure appends compensation
  // blocks which must not themselves be processed.
  std::vector<BlockId> Regions;
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I)
    if (!F.block(I).isCompensation())
      Regions.push_back(F.block(I).getId());

  for (BlockId RId : Regions) {
    Block &B = *F.blockById(RId);
    if (B.empty())
      continue;
    ++Result.RegionsProcessed;

    // Snapshot: when no CPR block in this region turns out to be
    // transformable, the region is restored to its pre-pass form -- the
    // paper's "code is left unchanged over an input subregion" policy.
    // (FRP conversion and speculation are only enablers for ICBM; left in
    // place without it they merely unchain exits for no benefit.)
    std::vector<Operation> Snapshot = B.ops();

    // Phase 0: FRP conversion (paper Section 4.1) prepares the region.
    convertToFRP(F, B);

    // Phase 1: predicate speculation.
    SpeculationStats SS;
    if (Opts.EnablePredicateSpeculation) {
      SS = speculatePredicates(F, B);
    }

    // Phase 2: match.
    std::vector<CPRBlockInfo> Blocks = matchCPRBlocks(F, B, Profile, Opts);
    bool AnyTransformable = false;
    for (const CPRBlockInfo &Info : Blocks)
      AnyTransformable |= Info.Transformable;
    if (!AnyTransformable) {
      B.ops() = std::move(Snapshot);
      Result.CPRBlocksFormed += static_cast<unsigned>(Blocks.size());
      for (const CPRBlockInfo &Info : Blocks)
        ++Result.StopReasons[static_cast<unsigned>(Info.StopReason)];
      continue;
    }
    Result.Promoted += SS.Promoted;
    Result.Demoted += SS.Demoted;
    Result.CPRBlocksFormed += static_cast<unsigned>(Blocks.size());
    for (const CPRBlockInfo &Info : Blocks)
      ++Result.StopReasons[static_cast<unsigned>(Info.StopReason)];

    // Phases 3 and 4, CPR block by CPR block in program order: the
    // re-wiring performed by an earlier block's restructure establishes
    // the root predicate the next block's restructure reads.
    for (const CPRBlockInfo &Info : Blocks) {
      if (!Info.Transformable)
        continue;
      RestructurePlan Plan = restructureCPRBlock(F, B, Info);
      MotionStats MS = moveOffTrace(F, Plan);
      ++Result.CPRBlocksTransformed;
      if (Info.TakenVariation)
        ++Result.TakenVariants;
      Result.BranchesCovered += static_cast<unsigned>(Info.size());
      Result.LookaheadsInserted +=
          static_cast<unsigned>(Plan.LookaheadIds.size());
      Result.OpsMovedOffTrace += MS.Moved;
      Result.OpsSplit += MS.Split;
    }
  }

  // Final cleanup, as in the paper: dead code elimination removes
  // operations computing predicates that are no longer referenced.
  Result.DCE = eliminateDeadCode(F);

  verifyOrDie(F, "after control CPR");
  return Result;
}

//===- cpr/ControlCPR.cpp - The ICBM driver --------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/ControlCPR.h"

#include "cpr/OffTraceMotion.h"
#include "cpr/PredicateSpeculation.h"
#include "cpr/RegionTransaction.h"
#include "cpr/Restructure.h"
#include "regions/FRPConversion.h"
#include "ir/Verifier.h"
#include "support/Error.h"

using namespace cpr;

namespace {

/// Reports the failure that triggered a rollback plus a RegionRolledBack
/// remark narrating the recovery.
void reportRollback(const CPRContext &Ctx, BlockId Region, Diagnostic Cause,
                    unsigned BlocksRemoved) {
  if (!Ctx.Diags)
    return;
  Ctx.Diags->report(Cause);
  Ctx.Diags->report(DiagSeverity::Remark, DiagCode::RegionRolledBack,
                    "region " + std::to_string(Region) +
                        " rolled back (removed " +
                        std::to_string(BlocksRemoved) +
                        " compensation block(s)); cause: " + Cause.Message,
                    Cause.Site);
}

} // namespace

CPRResult cpr::runControlCPR(Function &F, const ProfileData &Profile,
                             const CPROptions &Opts, const CPRContext &Ctx) {
  CPRResult Result;

  // Snapshot the regions to process: restructure appends compensation
  // blocks which must not themselves be processed.
  std::vector<BlockId> Regions;
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I)
    if (!F.block(I).isCompensation())
      Regions.push_back(F.block(I).getId());

  for (BlockId RId : Regions) {
    if (Ctx.Budget && Ctx.Budget->exhausted()) {
      // Baseline fallback for everything not yet treated; an ordinary
      // diagnostic, not a failure of the compilation.
      if (!Result.BudgetExhausted && Ctx.Diags)
        Ctx.Diags->report(DiagSeverity::Warning, DiagCode::BudgetExhausted,
                          "transform " + Ctx.Budget->describeExhaustion() +
                              "; remaining regions left untreated",
                          "pipeline.transform");
      Result.BudgetExhausted = true;
      ++Result.RegionsSkippedBudget;
      continue;
    }

    Block &B = *F.blockById(RId);
    if (B.empty())
      continue;
    ++Result.RegionsProcessed;

    // Snapshot: when no CPR block in this region turns out to be
    // transformable, the region is restored to its pre-pass form -- the
    // paper's "code is left unchanged over an input subregion" policy.
    // (FRP conversion and speculation are only enablers for ICBM; left in
    // place without it they merely unchain exits for no benefit.)
    std::vector<Operation> Snapshot = B.ops();

    // Phase 0: FRP conversion (paper Section 4.1) prepares the region.
    convertToFRP(F, B);

    // Phase 1: predicate speculation.
    SpeculationStats SS;
    if (Opts.EnablePredicateSpeculation) {
      SS = speculatePredicates(F, B);
    }

    // Phase 2: match.
    std::vector<CPRBlockInfo> Blocks = matchCPRBlocks(F, B, Profile, Opts);
    bool AnyTransformable = false;
    for (const CPRBlockInfo &Info : Blocks)
      AnyTransformable |= Info.Transformable;
    if (!AnyTransformable) {
      B.ops() = std::move(Snapshot);
      Result.CPRBlocksFormed += static_cast<unsigned>(Blocks.size());
      for (const CPRBlockInfo &Info : Blocks)
        ++Result.StopReasons[static_cast<unsigned>(Info.StopReason)];
      continue;
    }
    Result.Promoted += SS.Promoted;
    Result.Demoted += SS.Demoted;
    Result.CPRBlocksFormed += static_cast<unsigned>(Blocks.size());
    for (const CPRBlockInfo &Info : Blocks)
      ++Result.StopReasons[static_cast<unsigned>(Info.StopReason)];

    // Phases 3 and 4, CPR block by CPR block in program order: the
    // re-wiring performed by an earlier block's restructure establishes
    // the root predicate the next block's restructure reads. Each block
    // transforms inside its own transaction; a failure rolls back just
    // that block's changes (strict mode escalates to a fatal error
    // instead).
    unsigned TransformedHere = 0;
    bool RolledBackHere = false;
    for (const CPRBlockInfo &Info : Blocks) {
      if (!Info.Transformable)
        continue;
      if (Ctx.Budget && !Ctx.Budget->consume()) {
        if (!Result.BudgetExhausted && Ctx.Diags)
          Ctx.Diags->report(DiagSeverity::Warning, DiagCode::BudgetExhausted,
                            "transform " + Ctx.Budget->describeExhaustion() +
                                "; remaining CPR blocks left untreated",
                            "pipeline.transform");
        Result.BudgetExhausted = true;
        break;
      }

      RegionTransaction Txn(F, B.getId());
      auto Fail = [&](Diagnostic Cause) {
        if (!Ctx.FailSafe)
          reportFatalError(Cause.Message);
        unsigned Removed = Txn.rollback();
        ++Result.BlocksRolledBack;
        RolledBackHere = true;
        reportRollback(Ctx, B.getId(), std::move(Cause), Removed);
      };

      Expected<RestructurePlan> Plan = restructureCPRBlock(F, B, Info);
      if (!Plan) {
        Fail(Plan.takeDiagnostic());
        continue;
      }
      Expected<MotionStats> MS = moveOffTrace(F, *Plan);
      if (!MS) {
        Fail(MS.takeDiagnostic());
        continue;
      }
      if (Status V = Txn.verify("after control CPR block transform",
                                Ctx.Diags);
          !V) {
        Fail(V.takeDiagnostic());
        continue;
      }
      if (Ctx.RegionLint) {
        if (Status LS = Ctx.RegionLint(F); !LS) {
          Fail(LS.takeDiagnostic());
          continue;
        }
      }
      if (Ctx.RegionOracle) {
        if (Status E = Ctx.RegionOracle(F); !E) {
          Fail(E.takeDiagnostic());
          continue;
        }
      }

      ++TransformedHere;
      ++Result.CPRBlocksTransformed;
      if (Info.TakenVariation)
        ++Result.TakenVariants;
      Result.BranchesCovered += static_cast<unsigned>(Info.size());
      Result.LookaheadsInserted +=
          static_cast<unsigned>(Plan->LookaheadIds.size());
      Result.OpsMovedOffTrace += MS->Moved;
      Result.OpsSplit += MS->Split;
    }
    if (RolledBackHere)
      ++Result.RegionsRolledBack;
    if (TransformedHere == 0) {
      // Every transformable block failed (or the budget ran out before
      // any committed): restore the pre-pass form, as for untransformable
      // regions -- FRP conversion alone is no benefit.
      B.ops() = std::move(Snapshot);
    }
  }

  // Final cleanup, as in the paper: dead code elimination removes
  // operations computing predicates that are no longer referenced.
  Result.DCE = eliminateDeadCode(F);

  // Unreachable-state shim, not a recoverable path: transactions re-verify
  // before committing, so an invalid function here is a driver bug.
  verifyOrDie(F, "after control CPR");
  return Result;
}

CPRResult cpr::runControlCPR(Function &F, const ProfileData &Profile,
                             const CPROptions &Opts) {
  CPRContext Strict;
  Strict.FailSafe = false;
  return runControlCPR(F, Profile, Opts, Strict);
}

//===- cpr/ControlCPR.cpp - The ICBM driver --------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/ControlCPR.h"

#include "cpr/OffTraceMotion.h"
#include "cpr/PredicateSpeculation.h"
#include "cpr/RegionMemo.h"
#include "cpr/RegionTransaction.h"
#include "cpr/Restructure.h"
#include "regions/FRPConversion.h"
#include "ir/Verifier.h"
#include "support/Error.h"

using namespace cpr;

namespace {

/// Reports the failure that triggered a rollback plus a RegionRolledBack
/// remark narrating the recovery.
void reportRollback(const CPRContext &Ctx, BlockId Region, Diagnostic Cause,
                    unsigned BlocksRemoved) {
  if (!Ctx.Diags)
    return;
  Ctx.Diags->report(Cause);
  Ctx.Diags->report(DiagSeverity::Remark, DiagCode::RegionRolledBack,
                    "region " + std::to_string(Region) +
                        " rolled back (removed " +
                        std::to_string(BlocksRemoved) +
                        " compensation block(s)); cause: " + Cause.Message,
                    Cause.Site);
}

/// Reports the budget-exhaustion warning (once per run). The tracker
/// says which limit actually tripped: a plain step/wall budget, the
/// request deadline, or client cancellation (support/Budget.h).
void reportBudgetExhausted(const CPRContext &Ctx, CPRResult &Result,
                           const char *What) {
  if (!Result.BudgetExhausted && Ctx.Diags)
    Ctx.Diags->report(DiagSeverity::Warning, Ctx.Budget->exhaustionCode(),
                      "transform " + Ctx.Budget->describeExhaustion() + "; " +
                          What,
                      "pipeline.transform");
  Result.BudgetExhausted = true;
}

/// Applies a memoized region result: consume the budget steps the cold
/// compile consumed, install the recorded ops and appended blocks,
/// fast-forward the allocators, add the counter deltas. Returns false if
/// the budget dies mid-replay, in which case the region is left untreated
/// (with equal per-request budgets this cannot happen -- the committing
/// cold run consumed the identical step prefix successfully -- but wall
/// -clock budgets are not reproducible, so the path is kept defensive).
bool replayRegionMemo(Function &F, Block &B, const RegionMemoEntry &E,
                      CPRResult &Result, const CPRContext &Ctx) {
  for (uint64_t I = 0; I < E.BudgetSteps; ++I) {
    if (Ctx.Budget && !Ctx.Budget->consume()) {
      reportBudgetExhausted(Ctx, Result,
                            "remaining CPR blocks left untreated");
      ++Result.RegionsSkippedBudget;
      return false;
    }
  }
  B.ops() = E.RegionOps;
  for (const RegionMemoAppendedBlock &AB : E.AppendedBlocks) {
    Block &NB = F.addBlock(AB.Name);
    NB.setCompensation(AB.Compensation);
    NB.ops() = AB.Ops;
  }
  F.setAllocatorState(E.PostAlloc);
  Result.RegionsProcessed += E.Delta.RegionsProcessed;
  Result.CPRBlocksFormed += E.Delta.CPRBlocksFormed;
  Result.CPRBlocksTransformed += E.Delta.CPRBlocksTransformed;
  Result.TakenVariants += E.Delta.TakenVariants;
  Result.BranchesCovered += E.Delta.BranchesCovered;
  Result.Promoted += E.Delta.Promoted;
  Result.Demoted += E.Delta.Demoted;
  Result.LookaheadsInserted += E.Delta.LookaheadsInserted;
  Result.OpsMovedOffTrace += E.Delta.OpsMovedOffTrace;
  Result.OpsSplit += E.Delta.OpsSplit;
  for (unsigned I = 0; I < 6; ++I)
    Result.StopReasons[I] += E.Delta.StopReasons[I];
  return true;
}

/// Builds the memo entry for a region that just processed cleanly.
/// \p PreNumBlocks is the function's block count before the region ran:
/// everything behind it was appended by this region's restructure.
RegionMemoEntry buildRegionMemoEntry(const Function &F, const Block &B,
                                     const CPRResult &Before,
                                     const CPRResult &After,
                                     size_t PreNumBlocks,
                                     uint64_t StepsUsed) {
  RegionMemoEntry E;
  E.RegionOps = B.ops();
  for (size_t I = PreNumBlocks, N = F.numBlocks(); I != N; ++I) {
    const Block &NB = F.block(I);
    RegionMemoAppendedBlock AB;
    AB.Name = NB.getName();
    AB.Compensation = NB.isCompensation();
    AB.Ops = NB.ops();
    E.AppendedBlocks.push_back(std::move(AB));
  }
  E.PostAlloc = F.allocatorState();
  E.Delta.RegionsProcessed = After.RegionsProcessed - Before.RegionsProcessed;
  E.Delta.CPRBlocksFormed = After.CPRBlocksFormed - Before.CPRBlocksFormed;
  E.Delta.CPRBlocksTransformed =
      After.CPRBlocksTransformed - Before.CPRBlocksTransformed;
  E.Delta.TakenVariants = After.TakenVariants - Before.TakenVariants;
  E.Delta.BranchesCovered = After.BranchesCovered - Before.BranchesCovered;
  E.Delta.Promoted = After.Promoted - Before.Promoted;
  E.Delta.Demoted = After.Demoted - Before.Demoted;
  E.Delta.LookaheadsInserted =
      After.LookaheadsInserted - Before.LookaheadsInserted;
  E.Delta.OpsMovedOffTrace = After.OpsMovedOffTrace - Before.OpsMovedOffTrace;
  E.Delta.OpsSplit = After.OpsSplit - Before.OpsSplit;
  for (unsigned I = 0; I < 6; ++I)
    E.Delta.StopReasons[I] = After.StopReasons[I] - Before.StopReasons[I];
  E.BudgetSteps = StepsUsed;
  return E;
}

} // namespace

CPRResult cpr::runControlCPR(Function &F, const ProfileData &Profile,
                             const CPROptions &Opts, const CPRContext &Ctx) {
  CPRResult Result;

  // Snapshot the regions to process: restructure appends compensation
  // blocks which must not themselves be processed.
  std::vector<BlockId> Regions;
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I)
    if (!F.block(I).isCompensation())
      Regions.push_back(F.block(I).getId());

  for (size_t Ordinal = 0; Ordinal != Regions.size(); ++Ordinal) {
    BlockId RId = Regions[Ordinal];
    if (Ctx.Budget && Ctx.Budget->exhausted()) {
      // Baseline fallback for everything not yet treated; an ordinary
      // diagnostic, not a failure of the compilation.
      reportBudgetExhausted(Ctx, Result, "remaining regions left untreated");
      ++Result.RegionsSkippedBudget;
      continue;
    }

    Block &B = *F.blockById(RId);
    if (B.empty())
      continue;

    // Memoization: on a hit, replay the recorded transform and move on.
    // On a miss we now hold the in-flight claim for MemoKey and must
    // commit (clean region) or abandon (rollback / budget activity) it
    // on every exit from the region body below.
    uint64_t MemoKey = 0;
    bool MemoClaimed = false;
    if (Ctx.Memo) {
      MemoKey = regionMemoKey(Ctx.MemoSalt, static_cast<unsigned>(Ordinal),
                              F, B, Profile, Opts);
      if (std::optional<RegionMemoEntry> E = Ctx.Memo->lookup(MemoKey)) {
        replayRegionMemo(F, B, *E, Result, Ctx);
        continue;
      }
      MemoClaimed = true;
    }
    const CPRResult Before = Result;
    const size_t PreNumBlocks = F.numBlocks();
    bool CleanForMemo = true;
    uint64_t StepsUsed = 0;

    ++Result.RegionsProcessed;

    // Snapshot: when no CPR block in this region turns out to be
    // transformable, the region is restored to its pre-pass form -- the
    // paper's "code is left unchanged over an input subregion" policy.
    // (FRP conversion and speculation are only enablers for ICBM; left in
    // place without it they merely unchain exits for no benefit.)
    std::vector<Operation> Snapshot = B.ops();

    // The region body, with `return` for the old `continue` so the memo
    // claim can be resolved on every exit path.
    [&] {
      // Phase 0: FRP conversion (paper Section 4.1) prepares the region.
      convertToFRP(F, B);

      // Phase 1: predicate speculation.
      SpeculationStats SS;
      if (Opts.EnablePredicateSpeculation) {
        SS = speculatePredicates(F, B);
      }

      // Phase 2: match.
      std::vector<CPRBlockInfo> Blocks = matchCPRBlocks(F, B, Profile, Opts);
      bool AnyTransformable = false;
      for (const CPRBlockInfo &Info : Blocks)
        AnyTransformable |= Info.Transformable;
      if (!AnyTransformable) {
        B.ops() = std::move(Snapshot);
        Result.CPRBlocksFormed += static_cast<unsigned>(Blocks.size());
        for (const CPRBlockInfo &Info : Blocks)
          ++Result.StopReasons[static_cast<unsigned>(Info.StopReason)];
        return;
      }
      Result.Promoted += SS.Promoted;
      Result.Demoted += SS.Demoted;
      Result.CPRBlocksFormed += static_cast<unsigned>(Blocks.size());
      for (const CPRBlockInfo &Info : Blocks)
        ++Result.StopReasons[static_cast<unsigned>(Info.StopReason)];

      // Phases 3 and 4, CPR block by CPR block in program order: the
      // re-wiring performed by an earlier block's restructure establishes
      // the root predicate the next block's restructure reads. Each block
      // transforms inside its own transaction; a failure rolls back just
      // that block's changes (strict mode escalates to a fatal error
      // instead).
      unsigned TransformedHere = 0;
      bool RolledBackHere = false;
      for (const CPRBlockInfo &Info : Blocks) {
        if (!Info.Transformable)
          continue;
        if (Ctx.Budget && !Ctx.Budget->consume()) {
          reportBudgetExhausted(Ctx, Result,
                                "remaining CPR blocks left untreated");
          CleanForMemo = false;
          break;
        }
        ++StepsUsed;

        RegionTransaction Txn(F, B.getId());
        auto Fail = [&](Diagnostic Cause) {
          if (!Ctx.FailSafe)
            reportFatalError(Cause.Message);
          unsigned Removed = Txn.rollback();
          ++Result.BlocksRolledBack;
          RolledBackHere = true;
          reportRollback(Ctx, B.getId(), std::move(Cause), Removed);
        };

        Expected<RestructurePlan> Plan = restructureCPRBlock(F, B, Info);
        if (!Plan) {
          Fail(Plan.takeDiagnostic());
          continue;
        }
        Expected<MotionStats> MS = moveOffTrace(F, *Plan);
        if (!MS) {
          Fail(MS.takeDiagnostic());
          continue;
        }
        if (Status V = Txn.verify("after control CPR block transform",
                                  Ctx.Diags);
            !V) {
          Fail(V.takeDiagnostic());
          continue;
        }
        if (Ctx.RegionLint) {
          if (Status LS = Ctx.RegionLint(F); !LS) {
            Fail(LS.takeDiagnostic());
            continue;
          }
        }
        if (Ctx.RegionOracle) {
          if (Status E = Ctx.RegionOracle(F); !E) {
            Fail(E.takeDiagnostic());
            continue;
          }
        }

        ++TransformedHere;
        ++Result.CPRBlocksTransformed;
        if (Info.TakenVariation)
          ++Result.TakenVariants;
        Result.BranchesCovered += static_cast<unsigned>(Info.size());
        Result.LookaheadsInserted +=
            static_cast<unsigned>(Plan->LookaheadIds.size());
        Result.OpsMovedOffTrace += MS->Moved;
        Result.OpsSplit += MS->Split;
      }
      if (RolledBackHere) {
        ++Result.RegionsRolledBack;
        CleanForMemo = false;
      }
      if (TransformedHere == 0) {
        // Every transformable block failed (or the budget ran out before
        // any committed): restore the pre-pass form, as for
        // untransformable regions -- FRP conversion alone is no benefit.
        B.ops() = std::move(Snapshot);
      }
    }();

    if (MemoClaimed) {
      if (CleanForMemo)
        Ctx.Memo->commit(MemoKey, buildRegionMemoEntry(F, B, Before, Result,
                                                       PreNumBlocks,
                                                       StepsUsed));
      else
        Ctx.Memo->abandon(MemoKey);
    }
  }

  // Final cleanup, as in the paper: dead code elimination removes
  // operations computing predicates that are no longer referenced.
  Result.DCE = eliminateDeadCode(F);

  // Unreachable-state shim, not a recoverable path: transactions re-verify
  // before committing, so an invalid function here is a driver bug.
  verifyOrDie(F, "after control CPR");
  return Result;
}

CPRResult cpr::runControlCPR(Function &F, const ProfileData &Profile,
                             const CPROptions &Opts) {
  CPRContext Strict;
  Strict.FailSafe = false;
  return runControlCPR(F, Profile, Opts, Strict);
}

//===- cpr/OffTraceMotion.cpp - ICBM phase 4 -------------------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/OffTraceMotion.h"

#include "analysis/DepGraph.h"
#include "analysis/Liveness.h"
#include "analysis/PQS.h"
#include "support/FaultInjector.h"
#include "support/TestHooks.h"

#include <unordered_map>
#include <unordered_set>

using namespace cpr;

namespace {

/// A motion-phase TransformFault diagnostic.
Diagnostic motionFault(std::string Msg) {
  Diagnostic D;
  D.Severity = DiagSeverity::Error;
  D.Code = DiagCode::TransformFault;
  D.Message = std::move(Msg);
  D.Site = "cpr.offtrace.move";
  return D;
}

Diagnostic motionLostTrack(OpId Id) {
  return motionFault("off-trace motion lost track of operation id " +
                     std::to_string(Id));
}

} // namespace

Expected<MotionStats> cpr::moveOffTrace(Function &F,
                                        const RestructurePlan &Plan) {
  if (fault::shouldFail("cpr.offtrace.move"))
    return motionFault("injected fault");

  MotionStats Stats;
  Block *RegionPtr = F.blockById(Plan.Region);
  if (!RegionPtr)
    return motionFault("region block " + std::to_string(Plan.Region) +
                       " disappeared");
  Block &B = *RegionPtr;

  // Fresh analyses on the restructured code.
  RegionPQS PQS(F, B);
  Liveness LV(F);
  MachineDesc MD = MachineDesc::medium();
  DepGraph DG(F, B, MD, PQS, LV);

  int BypassIdxSigned = B.indexOfOp(Plan.BypassBranchId);
  if (BypassIdxSigned < 0)
    return motionLostTrack(Plan.BypassBranchId);
  size_t BypassIdx = static_cast<size_t>(BypassIdxSigned);

  // --- Pass 1: set 1 = compares + branches + data-dependence successors --
  std::unordered_set<uint32_t> MoveSet;
  auto AddWithSuccessors = [&](size_t Idx) {
    MoveSet.insert(static_cast<uint32_t>(Idx));
    for (uint32_t S : DG.transitiveSuccessors(static_cast<uint32_t>(Idx),
                                              /*IncludeMem=*/true,
                                              /*IncludeControl=*/false)) {
      // Never move the bypass branch or the lookahead/FRP machinery; their
      // presence in the successor closure would indicate a separability
      // bug, which the checks below catch.
      MoveSet.insert(S);
    }
  };
  for (OpId Id : Plan.CmppIds) {
    int I = B.indexOfOp(Id);
    if (I < 0)
      return motionLostTrack(Id);
    AddWithSuccessors(static_cast<size_t>(I));
  }
  for (OpId Id : Plan.BranchIds) {
    if (Id == Plan.BypassBranchId)
      continue; // taken variation: the final branch stays as the bypass
    int I = B.indexOfOp(Id);
    if (I < 0)
      return motionLostTrack(Id);
    MoveSet.insert(static_cast<uint32_t>(I));
  }

  // The region's terminator and the bypass machinery must never move.
  for (OpId Id : Plan.LookaheadIds) {
    int I = B.indexOfOp(Id);
    if (I < 0)
      return motionLostTrack(Id);
    if (MoveSet.count(static_cast<uint32_t>(I)))
      return motionFault("separability violation: lookahead compare in the "
                         "off-trace move set");
  }
  if (MoveSet.count(static_cast<uint32_t>(BypassIdx)))
    return motionFault("separability violation: bypass branch in the "
                       "off-trace move set");
  // Nothing at or beyond the bypass point may be in the move set for the
  // taken variation (that region *is* the off-trace path already), and for
  // the fall-through variation re-wiring removed such dependences. Filter
  // defensively: later ops are already off-trace or re-wired.
  for (auto It = MoveSet.begin(); It != MoveSet.end();) {
    if (*It > BypassIdx)
      It = MoveSet.erase(It);
    else
      ++It;
  }

  // --- Pass 2: set 2 = moved ops whose value is also needed on-trace ----
  // A moved operation needs an on-trace copy when (a) it is a store whose
  // guard can be true on the surviving path, or (b) it defines a register
  // read by a non-moved operation later in the region or live out of it.
  BDD::NodeRef OnTraceE = BDD::Invalid;
  {
    // Expression of the on-trace FRP after the final lookahead.
    int LastLook = B.indexOfOp(Plan.LookaheadIds.back());
    if (LastLook < 0)
      return motionLostTrack(Plan.LookaheadIds.back());
    OnTraceE = PQS.predValueAfter(static_cast<size_t>(LastLook),
                                  Plan.OnTracePred);
  }
  std::unordered_set<uint32_t> SplitSet;
  const RegSet &FallLive = [&]() -> const RegSet & {
    int LI = F.layoutIndex(B.getId());
    static const RegSet Empty;
    if (LI >= 0 && static_cast<size_t>(LI) + 1 < F.numBlocks())
      return LV.liveIn(F.block(static_cast<size_t>(LI) + 1).getId());
    return Empty;
  }();

  // Indices of the CPR block's controlling compares: their predicates are
  // re-wired to the on-trace FRP, so they never need on-trace copies.
  std::unordered_set<uint32_t> ControllingCmpps;
  for (OpId Id : Plan.CmppIds) {
    int I = B.indexOfOp(Id);
    if (I < 0)
      return motionLostTrack(Id);
    ControllingCmpps.insert(static_cast<uint32_t>(I));
  }

  for (uint32_t Idx : MoveSet) {
    const Operation &Op = B.ops()[Idx];
    if (Op.isBranch() || ControllingCmpps.count(Idx))
      continue; // replaced by the FRP machinery
    // An operation whose guard cannot be true on the surviving path (e.g.
    // an if-converted update guarded by a *taken* predicate) never
    // executes on-trace: no copy.
    {
      BDD::NodeRef G = PQS.guardExpr(Idx);
      if (OnTraceE != BDD::Invalid && PQS.disjoint(G, OnTraceE))
        continue;
    }
    if (Op.isStore()) {
      SplitSet.insert(Idx);
      continue;
    }
    // Register results needed by a non-moved op or live past the block.
    bool Needed = false;
    for (const DefSlot &D : Op.defs()) {
      for (size_t J = Idx + 1; J < B.size() && !Needed; ++J) {
        if (MoveSet.count(static_cast<uint32_t>(J)))
          continue;
        if (B.ops()[J].readsReg(D.R))
          Needed = true;
        if (B.ops()[J].definesReg(D.R) && !B.ops()[J].isCmpp() &&
            B.ops()[J].getGuard().isTruePred())
          break; // killed before any further use
      }
      if (FallLive.count(D.R))
        Needed = true;
      for (Reg R : F.observableRegs())
        if (R == D.R)
          Needed = true;
    }
    if (Needed)
      SplitSet.insert(Idx);
  }

  // --- Pass 3: set 3 = ops used only by moved ops ------------------------
  // Iterate to a fixed point: an operation whose every result use lies in
  // the move set (and which is not live past the region) moves as well.
  // Uses by *split* operations count as on-trace uses: their copies stay.
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (uint32_t Idx = 0; Idx < BypassIdx; ++Idx) {
      if (MoveSet.count(Idx))
        continue;
      const Operation &Op = B.ops()[Idx];
      if (Op.hasSideEffects() || Op.isControl() || Op.defs().empty())
        continue;
      if (Op.isCmpp())
        continue; // FRP machinery stays
      bool OnlyMovedUses = true;
      bool AnyUse = false;
      for (const DefSlot &D : Op.defs()) {
        if (FallLive.count(D.R)) {
          OnlyMovedUses = false;
          break;
        }
        for (size_t J = Idx + 1; J < B.size(); ++J) {
          if (B.ops()[J].readsReg(D.R)) {
            AnyUse = true;
            if (!MoveSet.count(static_cast<uint32_t>(J)) ||
                SplitSet.count(static_cast<uint32_t>(J))) {
              OnlyMovedUses = false;
              break;
            }
          }
          if (B.ops()[J].definesReg(D.R) && !B.ops()[J].isCmpp() &&
              B.ops()[J].getGuard().isTruePred())
            break;
        }
        if (!OnlyMovedUses)
          break;
      }
      if (OnlyMovedUses && AnyUse) {
        MoveSet.insert(Idx);
        Grew = true;
      }
    }
  }

  // A moved branch must carry its preparing pbr into the compensation
  // block (the verifier requires a dominating pbr in the same block). A
  // pbr that set 1/3 did not already move is *split*: the original goes
  // off-trace with its branch and a copy stays on-trace to satisfy any
  // remaining (conservatively computed) liveness; dead copies fall to DCE.
  for (uint32_t Idx : std::vector<uint32_t>(MoveSet.begin(), MoveSet.end())) {
    const Operation &Op = B.ops()[Idx];
    if (!Op.isBranch())
      continue;
    int PbrIdx = B.lastDefBefore(Op.branchTargetReg(), Idx);
    if (PbrIdx < 0)
      return motionFault("moved branch has no preparing pbr");
    uint32_t P = static_cast<uint32_t>(PbrIdx);
    if (!MoveSet.count(P)) {
      MoveSet.insert(P);
      SplitSet.insert(P);
    }
  }

  // Guards written by the moved compares: uses in on-trace copies are
  // re-wired to the on-trace FRP.
  std::unordered_set<Reg> OriginalPreds;
  for (OpId Id : Plan.CmppIds) {
    int I = B.indexOfOp(Id);
    if (I < 0)
      return motionLostTrack(Id);
    for (const DefSlot &D : B.ops()[static_cast<size_t>(I)].defs())
      OriginalPreds.insert(D.R);
  }

  // --- Closure: split moved operations that feed split copies ------------
  // An on-trace copy must find its operand values on-trace: when a split
  // operation reads a register defined by another moved operation, that
  // definition is split as well (the paper's P_i sets are replicated
  // wholesale, which this closure reconstructs bottom-up).
  Grew = true;
  while (Grew) {
    Grew = false;
    for (uint32_t SIdx : std::vector<uint32_t>(SplitSet.begin(),
                                               SplitSet.end())) {
      const Operation &SOp = B.ops()[SIdx];
      auto NeedOnTrace = [&](Reg R) {
        int DIdx = B.lastDefBefore(R, SIdx);
        if (DIdx < 0)
          return;
        uint32_t D = static_cast<uint32_t>(DIdx);
        if (!MoveSet.count(D) || SplitSet.count(D))
          return;
        const Operation &DOp = B.ops()[D];
        if (DOp.isBranch() || ControllingCmpps.count(D))
          return; // controlling predicates are re-wired to the on-trace FRP
        // A definition that cannot fire on the surviving path contributes
        // nothing on-trace: the consumer's copy correctly sees the prior
        // value of the register.
        if (OnTraceE != BDD::Invalid &&
            PQS.disjoint(PQS.guardExpr(D), OnTraceE))
          return;
        SplitSet.insert(D);
        Grew = true;
      };
      for (const Operand &S : SOp.srcs())
        if (S.isReg() && !S.getReg().isPred())
          NeedOnTrace(S.getReg());
      if (!SOp.getGuard().isTruePred() &&
          !OriginalPreds.count(SOp.getGuard()))
        NeedOnTrace(SOp.getGuard());
    }
  }

  // --- Final step: split and move ---------------------------------------
  // Guards of on-trace copies: a guard written by one of the moved
  // compares is replaced by the on-trace FRP (its value on the surviving
  // path); other guards are kept.

  // Build on-trace copies in original program order.
  std::vector<Operation> Copies;
  {
    std::vector<uint32_t> Order(SplitSet.begin(), SplitSet.end());
    std::sort(Order.begin(), Order.end());
    Copies.reserve(Order.size());
    for (uint32_t Idx : Order) {
      Operation Copy = B.ops()[Idx];
      Copy.setId(F.newOpId());
      if (OriginalPreds.count(Copy.getGuard()))
        Copy.setGuard(Plan.OnTracePred);
      // The copy's position differs from the original's, so a positional
      // (FRP) guard marker no longer applies.
      Copy.setFrpGuard(false);
      Copies.push_back(std::move(Copy));
    }
    Stats.Split = static_cast<unsigned>(Copies.size());
  }

  // Collect moved operations in program order.
  std::vector<uint32_t> MovedOrder(MoveSet.begin(), MoveSet.end());
  std::sort(MovedOrder.begin(), MovedOrder.end());
  std::vector<Operation> Moved;
  Moved.reserve(MovedOrder.size());
  for (uint32_t Idx : MovedOrder)
    Moved.push_back(B.ops()[Idx]);
  Stats.Moved = static_cast<unsigned>(Moved.size());

  // Remove moved ops from the region (descending index order).
  for (size_t K = MovedOrder.size(); K-- > 0;)
    B.ops().erase(B.ops().begin() + static_cast<ptrdiff_t>(MovedOrder[K]));

  // Insert on-trace copies just after the bypass branch (fall-through
  // variation) or just before it (taken variation, where the on-trace path
  // continues at the branch's target).
  int NewBypassIdx = B.indexOfOp(Plan.BypassBranchId);
  if (NewBypassIdx < 0)
    return motionLostTrack(Plan.BypassBranchId);
  size_t CopyPos = Plan.TakenVariation
                       ? static_cast<size_t>(NewBypassIdx)
                       : static_cast<size_t>(NewBypassIdx) + 1;
  B.ops().insert(B.ops().begin() + static_cast<ptrdiff_t>(CopyPos),
                 Copies.begin(), Copies.end());

  // Place the moved operations.
  if (!Plan.TakenVariation) {
    Block *Comp = F.blockById(Plan.CompBlock);
    if (!Comp)
      return motionFault("compensation block disappeared");
    // Fault injection (site "cpr.restructure.compensation" and the legacy
    // test-hook bool, support/TestHooks.h): drop the moved operations
    // instead of compensating -- a planted miscompile the differential
    // oracle must catch, and the region equivalence re-check must roll
    // back (docs/ROBUSTNESS.md).
    if (test_hooks::SkipCompensationInsertion ||
        fault::shouldFail("cpr.restructure.compensation"))
      return Stats;
    // Before the trailing trap.
    if (Comp->ops().empty() ||
        Comp->ops().back().getOpcode() != Opcode::Trap)
      return motionFault("compensation block lost its trailing trap");
    Comp->ops().insert(Comp->ops().end() - 1, Moved.begin(), Moved.end());
  } else {
    // Start of the region tail, right after the final (bypass) branch.
    int TailIdx = B.indexOfOp(Plan.BypassBranchId);
    if (TailIdx < 0)
      return motionLostTrack(Plan.BypassBranchId);
    B.ops().insert(B.ops().begin() + TailIdx + 1, Moved.begin(),
                   Moved.end());
  }
  return Stats;
}

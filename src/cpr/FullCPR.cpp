//===- cpr/FullCPR.cpp - The redundant all-paths baseline ------------------===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//

#include "cpr/FullCPR.h"

#include "support/Error.h"

#include <unordered_map>
#include <unordered_set>

using namespace cpr;

namespace {

/// One suitable branch of a chain.
struct ChainLink {
  OpId BranchId;
  OpId CmppId;
  CompareCond Cond;
  std::vector<Operand> Srcs;
};

/// A maximal suitable chain with a common root predicate.
struct Chain {
  Reg Root;
  std::vector<ChainLink> Links;
};

/// Collects maximal suitable chains, using the same UN/SP discipline as
/// ICBM's suitability test.
std::vector<Chain> collectChains(const Block &B) {
  std::vector<Chain> Chains;
  Chain Cur;
  std::unordered_set<Reg> SP;
  bool Open = false;

  auto Close = [&]() {
    if (Open && Cur.Links.size() >= 2)
      Chains.push_back(Cur);
    Cur = Chain();
    SP.clear();
    Open = false;
  };

  for (size_t I = 0; I < B.size(); ++I) {
    const Operation &Op = B.ops()[I];
    if (!Op.isBranch())
      continue;
    Reg Taken = Op.branchPred();
    int DefIdx = B.lastDefBefore(Taken, I);
    bool Suitable = false;
    Reg Guard;
    Reg Fall;
    bool HasFall = false;
    if (DefIdx >= 0) {
      const Operation &C = B.ops()[static_cast<size_t>(DefIdx)];
      if (C.isCmpp()) {
        for (const DefSlot &D : C.defs()) {
          if (D.R == Taken && D.Act == CmppAction::UN)
            Suitable = true;
          if (D.Act == CmppAction::UC) {
            Fall = D.R;
            HasFall = true;
          }
        }
        Guard = C.getGuard();
      }
    }
    if (!Suitable) {
      Close();
      continue;
    }
    const Operation &C = B.ops()[static_cast<size_t>(DefIdx)];
    if (!Open) {
      Cur.Root = Guard;
      SP.insert(Guard);
      Open = true;
    } else if (!SP.count(Guard)) {
      Close();
      Cur.Root = Guard;
      SP.insert(Guard);
      Open = true;
    }
    Cur.Links.push_back(ChainLink{Op.getId(), C.getId(), C.getCond(),
                                  C.srcs()});
    if (HasFall)
      SP.insert(Fall);
  }
  Close();
  return Chains;
}

} // namespace

FullCPRStats cpr::runFullCPROnBlock(Function &F, Block &B) {
  FullCPRStats Stats;
  std::vector<Chain> Chains = collectChains(B);
  if (Chains.empty())
    return Stats;

  // Per original compare id: new operations to insert right after it.
  std::unordered_map<OpId, std::vector<Operation>> After;
  // Per original compare id (first of a chain): initializer movs to
  // insert right before it.
  std::unordered_map<OpId, std::vector<Operation>> Before;
  // Branch id -> its new fully resolved predicate.
  std::unordered_map<OpId, Reg> NewPred;

  for (const Chain &C : Chains) {
    size_t N = C.Links.size();
    std::vector<Reg> Frp(N);
    for (size_t I = 0; I < N; ++I) {
      Frp[I] = F.newReg(RegClass::PR);
      Operation Init = F.makeOp(Opcode::Mov);
      Init.addDef(Frp[I]);
      Init.addSrc(C.Root.isTruePred() ? Operand::imm(1)
                                      : Operand::reg(C.Root));
      Before[C.Links[0].CmppId].push_back(std::move(Init));
      NewPred[C.Links[I].BranchId] = Frp[I];
      ++Stats.BranchesAccelerated;
    }
    // Lookahead terms: after compare j, accumulate its condition into
    // every FRP that needs it -- complemented (AC) into the FRPs of later
    // branches, plain (AN) into branch j's own FRP. This is the quadratic
    // compare growth of the full technique.
    for (size_t J = 0; J < N; ++J) {
      const ChainLink &L = C.Links[J];
      for (size_t I = J; I < N; ++I) {
        Operation Look = F.makeOp(Opcode::Cmpp);
        Look.setGuard(C.Root);
        Look.setCond(L.Cond);
        Look.addDef(Frp[I], I == J ? CmppAction::AN : CmppAction::AC);
        for (const Operand &S : L.Srcs)
          Look.addSrc(S);
        After[L.CmppId].push_back(std::move(Look));
        ++Stats.LookaheadsInserted;
      }
    }
  }

  // Rebuild the block with the insertions applied and branches re-wired.
  std::vector<Operation> Out;
  Out.reserve(B.size() + Stats.LookaheadsInserted +
              Stats.BranchesAccelerated);
  for (Operation &Op : B.ops()) {
    auto BeforeIt = Before.find(Op.getId());
    if (BeforeIt != Before.end())
      for (Operation &NewOp : BeforeIt->second)
        Out.push_back(std::move(NewOp));
    OpId Id = Op.getId();
    if (Op.isBranch()) {
      auto It = NewPred.find(Id);
      if (It != NewPred.end())
        Op.srcs()[0] = Operand::reg(It->second);
    }
    Out.push_back(std::move(Op));
    auto AfterIt = After.find(Id);
    if (AfterIt != After.end())
      for (Operation &NewOp : AfterIt->second)
        Out.push_back(std::move(NewOp));
  }
  B.ops() = std::move(Out);
  return Stats;
}

FullCPRStats cpr::runFullCPR(Function &F) {
  FullCPRStats Total;
  for (size_t I = 0, E = F.numBlocks(); I != E; ++I) {
    Block &B = F.block(I);
    if (B.isCompensation())
      continue;
    FullCPRStats S = runFullCPROnBlock(F, B);
    Total.BranchesAccelerated += S.BranchesAccelerated;
    Total.LookaheadsInserted += S.LookaheadsInserted;
  }
  return Total;
}

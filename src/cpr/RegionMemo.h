//===- cpr/RegionMemo.h - Content-addressed region memoization --*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Content-addressed memoization of per-region ICBM results. The compile
/// service (src/serve/) compiles many near-identical requests; regions
/// whose inputs hash to a previously seen key can skip FRP conversion,
/// speculation, match, restructure and off-trace motion entirely and
/// replay the recorded transform instead -- with byte-identical output.
///
/// Soundness. A region's transform is NOT a pure function of its own
/// text: off-trace motion consults liveness across the whole function,
/// ids come from function-wide allocators, and the validation hooks
/// (RegionLint / RegionOracle) close over whole-request state. The key
/// therefore starts from a caller-provided *salt* that must fingerprint
/// the entire request (serialized program including interpreter inputs,
/// CPROptions, budget configuration, validation mode). Given equal salts,
/// function evolution through the region loop is deterministic, so equal
/// (salt, region ordinal, region text, allocator state, profile slice)
/// implies the whole compilation reached an identical state -- and the
/// recorded result can be replayed verbatim.
///
/// Only *clean* regions are memoized: no rollback, no budget event, no
/// diagnostic emitted. A replayed hit therefore produces the exact ops,
/// ids, counters and (absence of) diagnostics the cold compile produced.
/// Function-level DCE stays outside the memo: it runs identically on the
/// hit and cold paths.
///
/// The store interface lives here (src/cpr/ cannot depend on src/serve/);
/// the LRU implementation with eviction and hit/miss counters is
/// serve/RegionCache.h. docs/SERVICE.md documents the keying contract.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_REGIONMEMO_H
#define CPR_REGIONMEMO_H

#include "analysis/ProfileData.h"
#include "cpr/CPROptions.h"
#include "ir/Function.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace cpr {

/// One block appended while a region was transformed (always a
/// compensation block in the current schema). Replaying addBlock calls in
/// record order against an identical allocator state reissues the
/// identical BlockIds, so ids are not stored.
struct RegionMemoAppendedBlock {
  std::string Name;
  bool Compensation = false;
  std::vector<Operation> Ops;
};

/// CPRResult counter increments contributed by one region. DCE and the
/// fail-safe counters are absent by design: DCE is function-level, and a
/// region with rollback / budget activity is never committed.
struct RegionMemoDelta {
  unsigned RegionsProcessed = 0;
  unsigned CPRBlocksFormed = 0;
  unsigned CPRBlocksTransformed = 0;
  unsigned TakenVariants = 0;
  unsigned BranchesCovered = 0;
  unsigned Promoted = 0;
  unsigned Demoted = 0;
  unsigned LookaheadsInserted = 0;
  unsigned OpsMovedOffTrace = 0;
  unsigned OpsSplit = 0;
  unsigned StopReasons[6] = {0, 0, 0, 0, 0, 0};
};

/// Everything needed to replay one region's transform byte-identically:
/// the region's final ops, the blocks appended behind the function, the
/// post-transform allocator position, the statistics counters the region
/// contributed, and the transform-budget steps it consumed.
struct RegionMemoEntry {
  std::vector<Operation> RegionOps;
  std::vector<RegionMemoAppendedBlock> AppendedBlocks;
  AllocatorState PostAlloc;
  RegionMemoDelta Delta;
  uint64_t BudgetSteps = 0;

  /// Rough heap footprint, used by the cache's memory budget.
  size_t approximateBytes() const;
};

/// Abstract memo store. Implementations must be thread-safe; the contract
/// below makes hit/miss counters deterministic at any thread count.
///
/// lookup() either returns a recorded entry (a hit) or returns nullopt
/// and hands the caller an *in-flight claim* on the key: the caller now
/// owns producing the entry and must call commit() or abandon() exactly
/// once. A lookup racing an in-flight claim blocks until the claim
/// resolves -- commit turns the waiters into hits, abandon lets one
/// waiter take over the claim (its lookup returns nullopt). Each
/// committed key therefore counts exactly one miss no matter how many
/// threads race it.
class RegionMemoStore {
public:
  virtual ~RegionMemoStore();

  /// Hit: returns a copy of the recorded entry. Miss: returns nullopt and
  /// transfers the in-flight claim for \p Key to the caller.
  virtual std::optional<RegionMemoEntry> lookup(uint64_t Key) = 0;

  /// Records \p Entry and releases the claim; pending waiters get hits.
  virtual void commit(uint64_t Key, RegionMemoEntry Entry) = 0;

  /// Drops the claim without recording (unclean region); one pending
  /// waiter inherits the claim.
  virtual void abandon(uint64_t Key) = 0;
};

/// Computes the content-addressed key for region \p B of \p F, about to
/// be processed as the \p Ordinal-th region of the current ICBM run.
/// \p Salt must fingerprint the whole request (see file comment). The
/// machine model is deliberately excluded: it affects cycle estimation,
/// never the transform.
uint64_t regionMemoKey(const std::string &Salt, unsigned Ordinal,
                       const Function &F, const Block &B,
                       const ProfileData &Profile, const CPROptions &Opts);

} // namespace cpr

#endif // CPR_REGIONMEMO_H

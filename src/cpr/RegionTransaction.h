//===- cpr/RegionTransaction.h - Per-region rollback ------------*- C++ -*-===//
//
// Part of the control-cpr project (PLDI 1999 Control CPR reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Transactional wrapper around one region's CPR transformation. The ICBM
/// phases (restructure, off-trace motion) mutate exactly one region block
/// plus any compensation blocks they append at the end of the function;
/// a transaction therefore only needs to snapshot the region's operation
/// list and the set of pre-existing block ids. On failure -- a phase
/// returning a TransformFault, the re-verify rejecting the result, or the
/// optional equivalence oracle observing divergence -- rollback() restores
/// the region's operations and removes the appended blocks, leaving every
/// *other* region's treatment intact. Leaked virtual register and
/// operation ids are harmless (both are monotone allocators).
///
/// The re-verify and oracle steps host the "ir.verify" and caller-side
/// "interp.oracle" fault-injection sites (support/FaultInjector.h), so the
/// rollback path itself is exercised by the fault campaign.
///
//===----------------------------------------------------------------------===//

#ifndef CPR_REGIONTRANSACTION_H
#define CPR_REGIONTRANSACTION_H

#include "ir/Function.h"
#include "support/Diagnostic.h"

#include <unordered_set>

namespace cpr {

/// Snapshot of one region taken before a (possibly failing) transform.
/// Non-owning view of the function; must not outlive it. Rollback is
/// explicit -- destruction without rollback() commits by doing nothing.
class RegionTransaction {
public:
  /// Snapshots region \p Region of \p F (its operation list and the
  /// current set of block ids).
  RegionTransaction(Function &F, BlockId Region);

  RegionTransaction(const RegionTransaction &) = delete;
  RegionTransaction &operator=(const RegionTransaction &) = delete;

  /// Re-verifies \p F after the transform. Returns a VerifyFailed
  /// diagnostic (site "ir.verify") on violations; hosts the "ir.verify"
  /// fault-injection site. \p Context names the phase for the message.
  /// The returned Status carries the first violation; when \p Diags is
  /// non-null, every *further* violation is reported into it as its own
  /// VerifyFailed diagnostic (the caller reports the returned Status),
  /// so a fail-safe compile shows the complete per-region list.
  Status verify(const std::string &Context,
                DiagnosticEngine *Diags = nullptr) const;

  /// Restores the region's operations and removes every block appended
  /// since the snapshot. Idempotent. Returns the number of blocks removed.
  unsigned rollback();

  bool rolledBack() const { return RolledBack; }
  BlockId region() const { return Region; }

private:
  Function &F;
  BlockId Region;
  std::vector<Operation> SnapshotOps;
  std::unordered_set<BlockId> PreExistingBlocks;
  bool RolledBack = false;
};

} // namespace cpr

#endif // CPR_REGIONTRANSACTION_H

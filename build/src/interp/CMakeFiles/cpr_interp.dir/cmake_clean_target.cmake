file(REMOVE_RECURSE
  "libcpr_interp.a"
)

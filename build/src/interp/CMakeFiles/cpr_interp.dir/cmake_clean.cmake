file(REMOVE_RECURSE
  "CMakeFiles/cpr_interp.dir/Interpreter.cpp.o"
  "CMakeFiles/cpr_interp.dir/Interpreter.cpp.o.d"
  "CMakeFiles/cpr_interp.dir/Profiler.cpp.o"
  "CMakeFiles/cpr_interp.dir/Profiler.cpp.o.d"
  "libcpr_interp.a"
  "libcpr_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for cpr_interp.
# This may be replaced when dependencies are built.

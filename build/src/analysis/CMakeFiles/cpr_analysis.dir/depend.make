# Empty dependencies file for cpr_analysis.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cpr_analysis.dir/BDD.cpp.o"
  "CMakeFiles/cpr_analysis.dir/BDD.cpp.o.d"
  "CMakeFiles/cpr_analysis.dir/CFG.cpp.o"
  "CMakeFiles/cpr_analysis.dir/CFG.cpp.o.d"
  "CMakeFiles/cpr_analysis.dir/DepGraph.cpp.o"
  "CMakeFiles/cpr_analysis.dir/DepGraph.cpp.o.d"
  "CMakeFiles/cpr_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/cpr_analysis.dir/Liveness.cpp.o.d"
  "CMakeFiles/cpr_analysis.dir/PQS.cpp.o"
  "CMakeFiles/cpr_analysis.dir/PQS.cpp.o.d"
  "CMakeFiles/cpr_analysis.dir/ProfileData.cpp.o"
  "CMakeFiles/cpr_analysis.dir/ProfileData.cpp.o.d"
  "CMakeFiles/cpr_analysis.dir/ProfileIO.cpp.o"
  "CMakeFiles/cpr_analysis.dir/ProfileIO.cpp.o.d"
  "CMakeFiles/cpr_analysis.dir/RegPressure.cpp.o"
  "CMakeFiles/cpr_analysis.dir/RegPressure.cpp.o.d"
  "libcpr_analysis.a"
  "libcpr_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

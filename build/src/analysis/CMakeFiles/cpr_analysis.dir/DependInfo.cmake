
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/BDD.cpp" "src/analysis/CMakeFiles/cpr_analysis.dir/BDD.cpp.o" "gcc" "src/analysis/CMakeFiles/cpr_analysis.dir/BDD.cpp.o.d"
  "/root/repo/src/analysis/CFG.cpp" "src/analysis/CMakeFiles/cpr_analysis.dir/CFG.cpp.o" "gcc" "src/analysis/CMakeFiles/cpr_analysis.dir/CFG.cpp.o.d"
  "/root/repo/src/analysis/DepGraph.cpp" "src/analysis/CMakeFiles/cpr_analysis.dir/DepGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/cpr_analysis.dir/DepGraph.cpp.o.d"
  "/root/repo/src/analysis/Liveness.cpp" "src/analysis/CMakeFiles/cpr_analysis.dir/Liveness.cpp.o" "gcc" "src/analysis/CMakeFiles/cpr_analysis.dir/Liveness.cpp.o.d"
  "/root/repo/src/analysis/PQS.cpp" "src/analysis/CMakeFiles/cpr_analysis.dir/PQS.cpp.o" "gcc" "src/analysis/CMakeFiles/cpr_analysis.dir/PQS.cpp.o.d"
  "/root/repo/src/analysis/ProfileData.cpp" "src/analysis/CMakeFiles/cpr_analysis.dir/ProfileData.cpp.o" "gcc" "src/analysis/CMakeFiles/cpr_analysis.dir/ProfileData.cpp.o.d"
  "/root/repo/src/analysis/ProfileIO.cpp" "src/analysis/CMakeFiles/cpr_analysis.dir/ProfileIO.cpp.o" "gcc" "src/analysis/CMakeFiles/cpr_analysis.dir/ProfileIO.cpp.o.d"
  "/root/repo/src/analysis/RegPressure.cpp" "src/analysis/CMakeFiles/cpr_analysis.dir/RegPressure.cpp.o" "gcc" "src/analysis/CMakeFiles/cpr_analysis.dir/RegPressure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/cpr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cpr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cpr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcpr_analysis.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cpr_workloads.dir/BenchmarkSuite.cpp.o"
  "CMakeFiles/cpr_workloads.dir/BenchmarkSuite.cpp.o.d"
  "CMakeFiles/cpr_workloads.dir/Kernels.cpp.o"
  "CMakeFiles/cpr_workloads.dir/Kernels.cpp.o.d"
  "CMakeFiles/cpr_workloads.dir/SyntheticProgram.cpp.o"
  "CMakeFiles/cpr_workloads.dir/SyntheticProgram.cpp.o.d"
  "libcpr_workloads.a"
  "libcpr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

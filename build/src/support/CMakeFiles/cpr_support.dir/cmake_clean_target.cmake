file(REMOVE_RECURSE
  "libcpr_support.a"
)

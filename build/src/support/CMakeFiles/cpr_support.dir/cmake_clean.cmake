file(REMOVE_RECURSE
  "CMakeFiles/cpr_support.dir/Error.cpp.o"
  "CMakeFiles/cpr_support.dir/Error.cpp.o.d"
  "CMakeFiles/cpr_support.dir/TableFormat.cpp.o"
  "CMakeFiles/cpr_support.dir/TableFormat.cpp.o.d"
  "libcpr_support.a"
  "libcpr_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cpr_support.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cpr_cpr.dir/ControlCPR.cpp.o"
  "CMakeFiles/cpr_cpr.dir/ControlCPR.cpp.o.d"
  "CMakeFiles/cpr_cpr.dir/FullCPR.cpp.o"
  "CMakeFiles/cpr_cpr.dir/FullCPR.cpp.o.d"
  "CMakeFiles/cpr_cpr.dir/Match.cpp.o"
  "CMakeFiles/cpr_cpr.dir/Match.cpp.o.d"
  "CMakeFiles/cpr_cpr.dir/OffTraceMotion.cpp.o"
  "CMakeFiles/cpr_cpr.dir/OffTraceMotion.cpp.o.d"
  "CMakeFiles/cpr_cpr.dir/PredicateSpeculation.cpp.o"
  "CMakeFiles/cpr_cpr.dir/PredicateSpeculation.cpp.o.d"
  "CMakeFiles/cpr_cpr.dir/Restructure.cpp.o"
  "CMakeFiles/cpr_cpr.dir/Restructure.cpp.o.d"
  "libcpr_cpr.a"
  "libcpr_cpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_cpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcpr_cpr.a"
)

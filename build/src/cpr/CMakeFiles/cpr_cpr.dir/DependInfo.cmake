
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cpr/ControlCPR.cpp" "src/cpr/CMakeFiles/cpr_cpr.dir/ControlCPR.cpp.o" "gcc" "src/cpr/CMakeFiles/cpr_cpr.dir/ControlCPR.cpp.o.d"
  "/root/repo/src/cpr/FullCPR.cpp" "src/cpr/CMakeFiles/cpr_cpr.dir/FullCPR.cpp.o" "gcc" "src/cpr/CMakeFiles/cpr_cpr.dir/FullCPR.cpp.o.d"
  "/root/repo/src/cpr/Match.cpp" "src/cpr/CMakeFiles/cpr_cpr.dir/Match.cpp.o" "gcc" "src/cpr/CMakeFiles/cpr_cpr.dir/Match.cpp.o.d"
  "/root/repo/src/cpr/OffTraceMotion.cpp" "src/cpr/CMakeFiles/cpr_cpr.dir/OffTraceMotion.cpp.o" "gcc" "src/cpr/CMakeFiles/cpr_cpr.dir/OffTraceMotion.cpp.o.d"
  "/root/repo/src/cpr/PredicateSpeculation.cpp" "src/cpr/CMakeFiles/cpr_cpr.dir/PredicateSpeculation.cpp.o" "gcc" "src/cpr/CMakeFiles/cpr_cpr.dir/PredicateSpeculation.cpp.o.d"
  "/root/repo/src/cpr/Restructure.cpp" "src/cpr/CMakeFiles/cpr_cpr.dir/Restructure.cpp.o" "gcc" "src/cpr/CMakeFiles/cpr_cpr.dir/Restructure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/regions/CMakeFiles/cpr_regions.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/cpr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cpr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cpr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cpr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for cpr_cpr.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcpr_regions.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cpr_regions.dir/DeadCodeElim.cpp.o"
  "CMakeFiles/cpr_regions.dir/DeadCodeElim.cpp.o.d"
  "CMakeFiles/cpr_regions.dir/FRPConversion.cpp.o"
  "CMakeFiles/cpr_regions.dir/FRPConversion.cpp.o.d"
  "CMakeFiles/cpr_regions.dir/IfConversion.cpp.o"
  "CMakeFiles/cpr_regions.dir/IfConversion.cpp.o.d"
  "CMakeFiles/cpr_regions.dir/LoopUnroller.cpp.o"
  "CMakeFiles/cpr_regions.dir/LoopUnroller.cpp.o.d"
  "CMakeFiles/cpr_regions.dir/Simplify.cpp.o"
  "CMakeFiles/cpr_regions.dir/Simplify.cpp.o.d"
  "libcpr_regions.a"
  "libcpr_regions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_regions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

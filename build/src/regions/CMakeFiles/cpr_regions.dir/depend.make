# Empty dependencies file for cpr_regions.
# This may be replaced when dependencies are built.

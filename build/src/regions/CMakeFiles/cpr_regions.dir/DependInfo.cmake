
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/regions/DeadCodeElim.cpp" "src/regions/CMakeFiles/cpr_regions.dir/DeadCodeElim.cpp.o" "gcc" "src/regions/CMakeFiles/cpr_regions.dir/DeadCodeElim.cpp.o.d"
  "/root/repo/src/regions/FRPConversion.cpp" "src/regions/CMakeFiles/cpr_regions.dir/FRPConversion.cpp.o" "gcc" "src/regions/CMakeFiles/cpr_regions.dir/FRPConversion.cpp.o.d"
  "/root/repo/src/regions/IfConversion.cpp" "src/regions/CMakeFiles/cpr_regions.dir/IfConversion.cpp.o" "gcc" "src/regions/CMakeFiles/cpr_regions.dir/IfConversion.cpp.o.d"
  "/root/repo/src/regions/LoopUnroller.cpp" "src/regions/CMakeFiles/cpr_regions.dir/LoopUnroller.cpp.o" "gcc" "src/regions/CMakeFiles/cpr_regions.dir/LoopUnroller.cpp.o.d"
  "/root/repo/src/regions/Simplify.cpp" "src/regions/CMakeFiles/cpr_regions.dir/Simplify.cpp.o" "gcc" "src/regions/CMakeFiles/cpr_regions.dir/Simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/cpr_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cpr_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cpr_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/cpr_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libcpr_sched.a"
)

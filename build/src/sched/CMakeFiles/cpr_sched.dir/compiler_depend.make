# Empty compiler generated dependencies file for cpr_sched.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cpr_sched.dir/ListScheduler.cpp.o"
  "CMakeFiles/cpr_sched.dir/ListScheduler.cpp.o.d"
  "CMakeFiles/cpr_sched.dir/PerfModel.cpp.o"
  "CMakeFiles/cpr_sched.dir/PerfModel.cpp.o.d"
  "libcpr_sched.a"
  "libcpr_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

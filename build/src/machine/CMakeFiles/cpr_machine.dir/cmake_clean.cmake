file(REMOVE_RECURSE
  "CMakeFiles/cpr_machine.dir/MachineDesc.cpp.o"
  "CMakeFiles/cpr_machine.dir/MachineDesc.cpp.o.d"
  "libcpr_machine.a"
  "libcpr_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cpr_machine.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcpr_machine.a"
)

file(REMOVE_RECURSE
  "libcpr_pipeline.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/cpr_pipeline.dir/CompilerPipeline.cpp.o"
  "CMakeFiles/cpr_pipeline.dir/CompilerPipeline.cpp.o.d"
  "CMakeFiles/cpr_pipeline.dir/Reports.cpp.o"
  "CMakeFiles/cpr_pipeline.dir/Reports.cpp.o.d"
  "libcpr_pipeline.a"
  "libcpr_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cpr_pipeline.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcpr_ir.a"
)

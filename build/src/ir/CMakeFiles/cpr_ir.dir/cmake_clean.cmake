file(REMOVE_RECURSE
  "CMakeFiles/cpr_ir.dir/Function.cpp.o"
  "CMakeFiles/cpr_ir.dir/Function.cpp.o.d"
  "CMakeFiles/cpr_ir.dir/IRBuilder.cpp.o"
  "CMakeFiles/cpr_ir.dir/IRBuilder.cpp.o.d"
  "CMakeFiles/cpr_ir.dir/IRParser.cpp.o"
  "CMakeFiles/cpr_ir.dir/IRParser.cpp.o.d"
  "CMakeFiles/cpr_ir.dir/IRPrinter.cpp.o"
  "CMakeFiles/cpr_ir.dir/IRPrinter.cpp.o.d"
  "CMakeFiles/cpr_ir.dir/Opcode.cpp.o"
  "CMakeFiles/cpr_ir.dir/Opcode.cpp.o.d"
  "CMakeFiles/cpr_ir.dir/Support.cpp.o"
  "CMakeFiles/cpr_ir.dir/Support.cpp.o.d"
  "CMakeFiles/cpr_ir.dir/Verifier.cpp.o"
  "CMakeFiles/cpr_ir.dir/Verifier.cpp.o.d"
  "libcpr_ir.a"
  "libcpr_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpr_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

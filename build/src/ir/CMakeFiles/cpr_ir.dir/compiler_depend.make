# Empty compiler generated dependencies file for cpr_ir.
# This may be replaced when dependencies are built.

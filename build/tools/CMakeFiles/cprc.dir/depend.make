# Empty dependencies file for cprc.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cprc.dir/cprc.cpp.o"
  "CMakeFiles/cprc.dir/cprc.cpp.o.d"
  "cprc"
  "cprc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cprc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_schema.dir/bench_fig4_schema.cpp.o"
  "CMakeFiles/bench_fig4_schema.dir/bench_fig4_schema.cpp.o.d"
  "bench_fig4_schema"
  "bench_fig4_schema.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_schema.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

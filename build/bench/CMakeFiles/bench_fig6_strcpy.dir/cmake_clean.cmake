file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_strcpy.dir/bench_fig6_strcpy.cpp.o"
  "CMakeFiles/bench_fig6_strcpy.dir/bench_fig6_strcpy.cpp.o.d"
  "bench_fig6_strcpy"
  "bench_fig6_strcpy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_strcpy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig6_strcpy.
# This may be replaced when dependencies are built.

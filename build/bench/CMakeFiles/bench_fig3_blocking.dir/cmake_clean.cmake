file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_blocking.dir/bench_fig3_blocking.cpp.o"
  "CMakeFiles/bench_fig3_blocking.dir/bench_fig3_blocking.cpp.o.d"
  "bench_fig3_blocking"
  "bench_fig3_blocking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_blocking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_branch_latency.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_frp.dir/bench_fig1_frp.cpp.o"
  "CMakeFiles/bench_fig1_frp.dir/bench_fig1_frp.cpp.o.d"
  "bench_fig1_frp"
  "bench_fig1_frp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_frp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

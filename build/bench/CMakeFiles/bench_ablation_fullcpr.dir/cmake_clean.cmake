file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_fullcpr.dir/bench_ablation_fullcpr.cpp.o"
  "CMakeFiles/bench_ablation_fullcpr.dir/bench_ablation_fullcpr.cpp.o.d"
  "bench_ablation_fullcpr"
  "bench_ablation_fullcpr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_fullcpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

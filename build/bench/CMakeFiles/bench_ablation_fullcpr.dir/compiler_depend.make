# Empty compiler generated dependencies file for bench_ablation_fullcpr.
# This may be replaced when dependencies are built.

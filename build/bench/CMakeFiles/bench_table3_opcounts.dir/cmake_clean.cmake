file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_opcounts.dir/bench_table3_opcounts.cpp.o"
  "CMakeFiles/bench_table3_opcounts.dir/bench_table3_opcounts.cpp.o.d"
  "bench_table3_opcounts"
  "bench_table3_opcounts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_opcounts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

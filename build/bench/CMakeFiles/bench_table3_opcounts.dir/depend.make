# Empty dependencies file for bench_table3_opcounts.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig2_bypass.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_bypass.dir/bench_fig2_bypass.cpp.o"
  "CMakeFiles/bench_fig2_bypass.dir/bench_fig2_bypass.cpp.o.d"
  "bench_fig2_bypass"
  "bench_fig2_bypass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_bypass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table1_cmpp.
# This may be replaced when dependencies are built.
